// Registry / spec-parser coverage: construction by name, the spec grammar
// (key=value overrides, composite pipelines), actionable error messages, and
// the RobustReport driver including per-stage composite statistics.

#include <gtest/gtest.h>

#include <stdexcept>

#include "attacks/registry.hpp"
#include "data/registry.hpp"
#include "models/registry.hpp"
#include "train/evaluate.hpp"
#include "train/trainer.hpp"

namespace ibrar::attacks {
namespace {

struct TrainedSetup {
  data::SyntheticData data = data::make_dataset("synth-cifar10", 240, 120);
  models::TapClassifierPtr model;

  TrainedSetup() {
    Rng rng(11);
    models::ModelSpec spec;
    spec.name = "mlp";
    model = models::make_model(spec, rng);
    train::TrainConfig tc;
    tc.epochs = 4;
    tc.batch_size = 60;
    train::Trainer trainer(model, std::make_shared<train::CEObjective>(), tc);
    trainer.fit(data.train);
  }
};

TrainedSetup& setup() {
  static TrainedSetup s;
  return s;
}

/// EXPECT the call throws std::invalid_argument whose message contains every
/// given fragment (actionable-message contract).
template <typename Fn>
void expect_invalid(Fn&& fn, std::initializer_list<const char*> fragments) {
  try {
    fn();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    for (const char* frag : fragments) {
      EXPECT_NE(msg.find(frag), std::string::npos)
          << "message missing '" << frag << "': " << msg;
    }
  }
}

TEST(Registry, MakesEveryRegisteredAttack) {
  AttackConfig cfg;
  cfg.steps = 2;
  for (const auto& name : registered_attacks()) {
    auto atk = make(name, cfg);
    ASSERT_NE(atk, nullptr) << name;
    EXPECT_FALSE(atk->name().empty());
    EXPECT_EQ(atk->config().steps, 2) << name;
  }
}

TEST(Registry, UnknownNameListsRegistry) {
  expect_invalid([] { make("pgdd"); }, {"unknown attack 'pgdd'", "pgd", "cw"});
}

TEST(SpecParser, ParsesKeyValueOverrides) {
  auto atk = parse_spec("pgd:steps=20,restarts=5,eps=0.05,alpha=0.01");
  EXPECT_EQ(atk->name(), "PGD20");
  EXPECT_EQ(atk->config().steps, 20);
  EXPECT_EQ(atk->config().restarts, 5);
  EXPECT_FLOAT_EQ(atk->config().eps, 0.05f);
  EXPECT_FLOAT_EQ(atk->config().alpha, 0.01f);
}

TEST(SpecParser, SchedulingKnobs) {
  auto atk = parse_spec("pgd:steps=4,active_set=1,best=step,random_start=0");
  EXPECT_TRUE(atk->config().active_set);
  EXPECT_EQ(atk->config().track_best, BestMode::kPerStep);
  EXPECT_FALSE(atk->config().random_start);
}

TEST(SpecParser, DefaultsSeedEveryStage) {
  AttackConfig defaults;
  defaults.eps = 0.1f;
  defaults.steps = 3;
  auto atk = parse_spec("fgsm", defaults);
  EXPECT_FLOAT_EQ(atk->config().eps, 0.1f);
}

TEST(SpecParser, UnknownAttackName) {
  expect_invalid([] { parse_spec("pdg:steps=3"); },
                 {"unknown attack 'pdg'", "registered attacks are"});
}

TEST(SpecParser, MalformedKeyValue) {
  expect_invalid([] { parse_spec("pgd:steps"); },
                 {"malformed option 'steps'", "key=value"});
  expect_invalid([] { parse_spec("pgd:=3"); }, {"malformed option"});
  expect_invalid([] { parse_spec("pgd:steps="); }, {"malformed option"});
}

TEST(SpecParser, NonNumericValue) {
  expect_invalid([] { parse_spec("pgd:steps=abc"); },
                 {"not an integer", "'abc'"});
  expect_invalid([] { parse_spec("pgd:eps=huge"); }, {"not a number"});
}

TEST(SpecParser, OutOfRangeEps) {
  expect_invalid([] { parse_spec("pgd:eps=2.0"); },
                 {"eps=2.0 out of range", "8/255"});
  expect_invalid([] { parse_spec("pgd:eps=-0.1"); }, {"out of range"});
  // NaN fails every comparison — it must still be rejected.
  expect_invalid([] { parse_spec("pgd:eps=nan"); }, {"out of range"});
  expect_invalid([] { parse_spec("pgd:eps=inf"); }, {"out of range"});
}

TEST(SpecParser, OutOfRangeBudgets) {
  expect_invalid([] { parse_spec("pgd:restarts=0"); }, {"restarts must be >= 1"});
  expect_invalid([] { parse_spec("pgd:steps=-1"); }, {"steps must be >= 0"});
  expect_invalid([] { parse_spec("pgd:alpha=-0.5"); }, {"alpha must be in"});
  expect_invalid([] { parse_spec("pgd:alpha=nan"); }, {"alpha must be in"});
}

TEST(SpecParser, OverflowingValuesRejected) {
  expect_invalid([] { parse_spec("pgd:steps=99999999999999999999"); },
                 {"overflows int64"});
  expect_invalid([] { parse_spec("cw:c=1e99"); }, {"overflows float"});
}

TEST(SpecParser, FGSMRejectsIterationKeys) {
  expect_invalid([] { parse_spec("fgsm:steps=5"); },
                 {"fgsm ignores 'steps'", "use pgd"});
  expect_invalid([] { parse_spec("fgsm:restarts=3"); }, {"fgsm ignores"});
  expect_invalid([] { parse_spec("fgsm:alpha=0.01"); }, {"fgsm ignores"});
  // eps, best, active_set and seed remain meaningful for FGSM.
  EXPECT_NO_THROW(parse_spec("fgsm:eps=0.05,best=step,active_set=1"));
}

TEST(SpecParser, AttackSpecificKeyOnWrongAttackRejected) {
  expect_invalid([] { parse_spec("pgd:momentum=0.9"); },
                 {"'momentum' belongs to 'nifgsm', not 'pgd'"});
  expect_invalid([] { parse_spec("fgsm:kappa=1"); }, {"belongs to 'cw'"});
}

TEST(SpecParser, AdaptiveIBKnobs) {
  auto atk = parse_spec("adaptive:steps=3,ib_alpha=2,ib_beta=0.5,layers=4+5+6");
  EXPECT_EQ(atk->config().steps, 3);
  expect_invalid([] { parse_spec("adaptive:layers=4+x"); }, {"not an integer"});
  expect_invalid([] { parse_spec("adaptive:layers=-1"); },
                 {"layers indices must be >= 0"});
}

TEST(SpecParser, UnknownKeyListsVocabulary) {
  expect_invalid([] { parse_spec("pgd:stepss=3"); },
                 {"unknown key 'stepss'", "eps, alpha, steps"});
}

TEST(SpecParser, ActiveSetRejectedForBatchCoupledStages) {
  expect_invalid([] { parse_spec("mifgsm:active_set=1"); },
                 {"mifgsm", "active_set"});
  expect_invalid([] { parse_spec("nifgsm:steps=2,active_set=1"); },
                 {"nifgsm"});
  expect_invalid([] { parse_spec("adaptive:active_set=1"); }, {"adaptive"});
}

TEST(SpecParser, UnknownBestMode) {
  expect_invalid([] { parse_spec("pgd:best=bestest"); },
                 {"best=bestest", "auto|last|restart|step"});
}

TEST(SpecParser, CompositeBothArrowFlavours) {
  auto ascii = parse_spec("fgsm->pgd:steps=3->cw:steps=2");
  auto utf8 = parse_spec("fgsm\xe2\x86\x92pgd:steps=3\xe2\x86\x92"
                         "cw:steps=2");
  auto* ca = dynamic_cast<CompositeAttack*>(ascii.get());
  auto* cu = dynamic_cast<CompositeAttack*>(utf8.get());
  ASSERT_NE(ca, nullptr);
  ASSERT_NE(cu, nullptr);
  EXPECT_EQ(ca->num_stages(), 3u);
  EXPECT_EQ(ca->name(), cu->name());
}

TEST(SpecParser, CompositeStageErrorsNameTheStage) {
  expect_invalid([] { parse_spec("fgsm->pgd:steps=oops"); },
                 {"stage 'pgd:steps=oops'"});
  expect_invalid([] { parse_spec("fgsm->"); }, {"empty attack name"});
}

TEST(Composite, SurvivorForwardingAndTrace) {
  auto atk = parse_spec("fgsm->pgd:steps=10,restarts=2");
  auto* comp = dynamic_cast<CompositeAttack*>(atk.get());
  ASSERT_NE(comp, nullptr);
  const auto batch = data::make_batch(setup().data.test, 0, 80);
  const Tensor adv = comp->perturb(*setup().model, batch.x, batch.y);
  ASSERT_EQ(adv.shape(), batch.x.shape());

  const auto& trace = comp->last_trace();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].forwarded, 80);
  // Stage 2 sees exactly the examples stage 1 failed to fool.
  EXPECT_EQ(trace[1].forwarded, 80 - trace[0].fooled);
  EXPECT_GE(trace[0].fooled, 0);

  // The ensemble is at least as strong as its weakest prefix.
  const double acc = accuracy(*setup().model, adv, batch.y);
  auto fgsm_only = parse_spec("fgsm");
  const double fgsm_acc = accuracy(
      *setup().model, fgsm_only->perturb(*setup().model, batch.x, batch.y),
      batch.y);
  EXPECT_LE(acc, fgsm_acc + 1e-9);
}

TEST(Driver, RobustReportSingleAttacks) {
  const auto report = train::evaluate_robust(
      *setup().model, setup().data.test,
      std::vector<std::string>{"fgsm", "pgd:steps=5"}, {50, 100});
  EXPECT_EQ(report.examples, 100);
  ASSERT_EQ(report.per_attack.size(), 2u);
  EXPECT_EQ(report.per_attack[0].name, "FGSM");
  EXPECT_EQ(report.per_attack[1].name, "PGD5");
  EXPECT_EQ(report.worst_case_correct.size(), 100u);
  // Worst case can never beat any single attack or the clean pass.
  for (const auto& a : report.per_attack) {
    EXPECT_LE(report.worst_case_acc, a.robust_acc + 1e-9);
    EXPECT_GT(a.seconds, 0.0);
    EXPECT_GT(a.ns_per_example, 0.0);
  }
  EXPECT_LE(report.worst_case_acc, report.clean_acc + 1e-9);
}

TEST(Driver, MatchesLegacyWrappers) {
  AttackConfig cfg;
  cfg.steps = 5;
  auto a = make("pgd", cfg);
  const double legacy = train::evaluate_adversarial(
      *setup().model, setup().data.test, *a, 50, 100);
  auto b = make("pgd", cfg);
  std::vector<Attack*> suite{b.get()};
  const auto report =
      train::evaluate_robust(*setup().model, setup().data.test, suite, {50, 100});
  EXPECT_DOUBLE_EQ(legacy, report.per_attack.front().robust_acc);
}

TEST(Driver, CompositeEndToEndOnePass) {
  // The acceptance-criteria spec: cheap → strong → expensive, one pass,
  // per-stage + worst-case accuracy in a single report.
  const auto report = train::evaluate_robust(
      *setup().model, setup().data.test,
      std::vector<std::string>{"fgsm\xe2\x86\x92pgd:restarts=3\xe2\x86\x92"
                               "cw:steps=20"},
      {50, 100});
  ASSERT_EQ(report.per_attack.size(), 1u);
  const auto& comp = report.per_attack.front();
  ASSERT_EQ(comp.stages.size(), 3u);
  EXPECT_EQ(comp.stages[0].forwarded, 100);
  double prev = 1.0;
  std::int64_t fooled = 0;
  for (const auto& st : comp.stages) {
    EXPECT_LE(st.robust_acc, prev + 1e-9);  // cumulative accuracy monotone
    prev = st.robust_acc;
    fooled += st.fooled;
  }
  EXPECT_NEAR(comp.stages.back().robust_acc,
              static_cast<double>(100 - fooled) / 100.0, 1e-9);
  // Composite robust accuracy equals the final cumulative stage accuracy.
  EXPECT_NEAR(comp.robust_acc, comp.stages.back().robust_acc, 1e-9);
  EXPECT_LE(report.worst_case_acc, comp.robust_acc + 1e-9);
}

}  // namespace
}  // namespace ibrar::attacks
