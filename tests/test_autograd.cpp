// Autograd: backward rules for every op, finite-difference gradient checks
// (parameterized sweeps), graph mechanics (accumulation, detach, no-grad).

#include <gtest/gtest.h>

#include <cmath>

#include "autograd/gradcheck.hpp"
#include "autograd/ops.hpp"
#include "tensor/random.hpp"

namespace ibrar::ag {
namespace {

TEST(VarBasics, LeafAndConstant) {
  Var p = Var::param(Tensor::scalar(2.0f));
  Var c = Var::constant(Tensor::scalar(3.0f));
  EXPECT_TRUE(p.requires_grad());
  EXPECT_FALSE(c.requires_grad());
}

TEST(VarBasics, BackwardSimpleProduct) {
  Var a = Var::param(Tensor::scalar(3.0f));
  Var b = Var::param(Tensor::scalar(4.0f));
  Var y = mul(a, b);
  y.backward();
  EXPECT_FLOAT_EQ(a.grad().item(), 4.0f);
  EXPECT_FLOAT_EQ(b.grad().item(), 3.0f);
}

TEST(VarBasics, GradsAccumulateAcrossBackwards) {
  Var a = Var::param(Tensor::scalar(1.0f));
  mul_scalar(a, 2.0f).backward();
  mul_scalar(a, 3.0f).backward();
  EXPECT_FLOAT_EQ(a.grad().item(), 5.0f);
  a.zero_grad();
  EXPECT_FLOAT_EQ(a.grad().item(), 0.0f);
}

TEST(VarBasics, SharedSubexpressionGradient) {
  // y = a*a + a -> dy/da = 2a + 1.
  Var a = Var::param(Tensor::scalar(3.0f));
  Var y = add(mul(a, a), a);
  y.backward();
  EXPECT_FLOAT_EQ(a.grad().item(), 7.0f);
}

TEST(VarBasics, BackwardRequiresScalar) {
  Var a = Var::param(Tensor({2}, 1.0f));
  EXPECT_THROW(a.backward(), std::logic_error);
}

TEST(VarBasics, NoGradGuardDetaches) {
  Var a = Var::param(Tensor::scalar(2.0f));
  {
    NoGradGuard ng;
    Var y = mul(a, a);
    EXPECT_FALSE(y.requires_grad());
  }
  Var y2 = mul(a, a);
  EXPECT_TRUE(y2.requires_grad());
}

TEST(VarBasics, DetachBlocksGradient) {
  Var a = Var::param(Tensor::scalar(2.0f));
  Var y = mul(detach(a), a);  // d/da = detach(a) = 2
  y.backward();
  EXPECT_FLOAT_EQ(a.grad().item(), 2.0f);
}

TEST(VarBasics, DeepChainDoesNotOverflow) {
  // The iterative DFS must survive a graph thousands of nodes deep.
  Var a = Var::param(Tensor::scalar(1.0f));
  Var y = a;
  for (int i = 0; i < 5000; ++i) y = add_scalar(y, 0.0f);
  y.backward();
  EXPECT_FLOAT_EQ(a.grad().item(), 1.0f);
}

// ---- gradcheck sweeps --------------------------------------------------------

using UnaryFn = Var (*)(const Var&);

struct UnaryCase {
  const char* name;
  UnaryFn fn;
  float lo;
  float hi;
};

class UnaryGradSweep : public ::testing::TestWithParam<UnaryCase> {};

TEST_P(UnaryGradSweep, MatchesFiniteDifferences) {
  const auto& c = GetParam();
  Rng rng(13);
  Tensor x = rand_uniform({3, 4}, rng, c.lo, c.hi);
  auto fn = [&](const std::vector<Var>& in) { return mean(c.fn(in[0])); };
  const auto r = gradcheck(fn, {Var::param(x)});
  EXPECT_TRUE(r.ok) << c.name << " max_rel_err=" << r.max_rel_err;
}

INSTANTIATE_TEST_SUITE_P(
    Ops, UnaryGradSweep,
    ::testing::Values(UnaryCase{"exp", &exp, -1.0f, 1.0f},
                      UnaryCase{"log", &log, 0.5f, 2.0f},
                      UnaryCase{"sqrt", &sqrt, 0.5f, 2.0f},
                      UnaryCase{"square", &square, -1.0f, 1.0f},
                      UnaryCase{"tanh", &tanh, -1.5f, 1.5f},
                      UnaryCase{"sigmoid", &sigmoid, -2.0f, 2.0f},
                      UnaryCase{"relu", &relu, 0.1f, 2.0f},   // away from kink
                      UnaryCase{"abs", &abs, 0.1f, 2.0f},
                      UnaryCase{"neg", &neg, -1.0f, 1.0f}),
    [](const auto& info) { return info.param.name; });

TEST(BinaryGrad, AddSubMulDivBroadcast) {
  Rng rng(17);
  for (const auto& [sa, sb] : std::vector<std::pair<Shape, Shape>>{
           {{2, 3}, {2, 3}}, {{2, 3}, {3}}, {{2, 1}, {1, 3}}, {{4}, {1}}}) {
    Tensor a = rand_uniform(sa, rng, 0.5f, 1.5f);
    Tensor b = rand_uniform(sb, rng, 0.5f, 1.5f);
    for (int op = 0; op < 4; ++op) {
      auto fn = [&, op](const std::vector<Var>& in) {
        switch (op) {
          case 0: return mean(add(in[0], in[1]));
          case 1: return mean(sub(in[0], in[1]));
          case 2: return mean(mul(in[0], in[1]));
          default: return mean(div(in[0], in[1]));
        }
      };
      const auto r = gradcheck(fn, {Var::param(a), Var::param(b)});
      EXPECT_TRUE(r.ok) << "op=" << op << " shapes " << shape_str(sa) << " "
                        << shape_str(sb) << " rel=" << r.max_rel_err;
    }
  }
}

TEST(LinalgGrad, MatmulBothSides) {
  Rng rng(19);
  Tensor a = randn({3, 4}, rng, 0, 0.5f);
  Tensor b = randn({4, 2}, rng, 0, 0.5f);
  auto fn = [](const std::vector<Var>& in) {
    return mean(matmul(in[0], in[1]));
  };
  const auto r = gradcheck(fn, {Var::param(a), Var::param(b)});
  EXPECT_TRUE(r.ok) << r.max_rel_err;
}

TEST(LinalgGrad, Transpose) {
  Rng rng(23);
  Tensor a = randn({3, 5}, rng);
  auto fn = [](const std::vector<Var>& in) {
    return mean(square(transpose(in[0])));
  };
  const auto r = gradcheck(fn, {Var::param(a)});
  EXPECT_TRUE(r.ok) << r.max_rel_err;
}

TEST(ShapeGrad, ReshapeFlattenSliceGather) {
  Rng rng(29);
  Tensor a = randn({4, 6}, rng);
  {
    auto fn = [](const std::vector<Var>& in) {
      return mean(square(reshape(in[0], {2, 12})));
    };
    EXPECT_TRUE(gradcheck(fn, {Var::param(a)}).ok);
  }
  {
    auto fn = [](const std::vector<Var>& in) {
      return mean(square(slice_rows(in[0], 1, 3)));
    };
    EXPECT_TRUE(gradcheck(fn, {Var::param(a)}).ok);
  }
  {
    const std::vector<std::int64_t> idx = {5, 0, 3, 2};
    auto fn = [&](const std::vector<Var>& in) {
      return mean(square(gather_cols(in[0], idx)));
    };
    EXPECT_TRUE(gradcheck(fn, {Var::param(a)}).ok);
  }
}

TEST(ShapeGrad, ConcatRows) {
  Rng rng(31);
  Tensor a = randn({2, 3}, rng);
  Tensor b = randn({3, 3}, rng);
  auto fn = [](const std::vector<Var>& in) {
    return mean(square(concat_rows({in[0], in[1]})));
  };
  EXPECT_TRUE(gradcheck(fn, {Var::param(a), Var::param(b)}).ok);
}

TEST(ReduceGrad, SumMeanAxis) {
  Rng rng(37);
  Tensor a = randn({3, 4}, rng);
  for (const std::int64_t axis : {0L, 1L}) {
    auto fn = [axis](const std::vector<Var>& in) {
      return mean(square(sum_axis(in[0], axis)));
    };
    EXPECT_TRUE(gradcheck(fn, {Var::param(a)}).ok) << "axis " << axis;
    auto fn2 = [axis](const std::vector<Var>& in) {
      return mean(square(mean_axis(in[0], axis, true)));
    };
    EXPECT_TRUE(gradcheck(fn2, {Var::param(a)}).ok) << "axis keepdim " << axis;
  }
}

TEST(ConvGrad, ConvWeightsInputBias) {
  Rng rng(41);
  Tensor x = randn({2, 2, 4, 4}, rng, 0, 0.5f);
  Tensor w = randn({3, 2, 3, 3}, rng, 0, 0.3f);
  Tensor b = randn({3}, rng, 0, 0.3f);
  const Conv2dSpec spec{3, 1, 1};
  auto fn = [&](const std::vector<Var>& in) {
    return mean(square(conv2d(in[0], in[1], in[2], spec)));
  };
  const auto r = gradcheck(fn, {Var::param(x), Var::param(w), Var::param(b)},
                           1e-2, 8e-2);
  EXPECT_TRUE(r.ok) << r.max_rel_err;
}

TEST(ConvGrad, StridedConv) {
  Rng rng(43);
  Tensor x = randn({1, 2, 4, 4}, rng, 0, 0.5f);
  Tensor w = randn({2, 2, 3, 3}, rng, 0, 0.3f);
  const Conv2dSpec spec{3, 2, 1};
  auto fn = [&](const std::vector<Var>& in) {
    return mean(square(conv2d(in[0], in[1], Var(), spec)));
  };
  EXPECT_TRUE(gradcheck(fn, {Var::param(x), Var::param(w)}, 1e-2, 8e-2).ok);
}

TEST(ConvGrad, MaxPoolRoutesToArgmax) {
  Rng rng(47);
  Tensor x = randn({1, 1, 4, 4}, rng);
  auto fn = [](const std::vector<Var>& in) {
    return mean(square(maxpool2d(in[0], 2, 2)));
  };
  EXPECT_TRUE(gradcheck(fn, {Var::param(x)}).ok);
}

TEST(ConvGrad, GlobalAvgPool) {
  Rng rng(53);
  Tensor x = randn({2, 3, 4, 4}, rng);
  auto fn = [](const std::vector<Var>& in) {
    return mean(square(global_avg_pool(in[0])));
  };
  EXPECT_TRUE(gradcheck(fn, {Var::param(x)}).ok);
}

TEST(ConvGrad, StrideTwoNonSquareIndivisible) {
  // H=5, W=4 at stride 2: the window grid covers the two dimensions
  // differently and the last input column is only reached through padding
  // (implicit asymmetric coverage) — gradients to those cells must still be
  // exact.
  Rng rng(61);
  Tensor x = randn({1, 2, 5, 4}, rng, 0, 0.5f);
  Tensor w = randn({2, 2, 3, 3}, rng, 0, 0.3f);
  const Conv2dSpec spec{3, 2, 1};
  auto fn = [&](const std::vector<Var>& in) {
    return mean(square(conv2d(in[0], in[1], Var(), spec)));
  };
  EXPECT_TRUE(gradcheck(fn, {Var::param(x), Var::param(w)}, 1e-2, 8e-2).ok);
}

TEST(ConvGrad, KernelLargerThanInput) {
  // 5x5 kernel over a 3x4 image with pad 2: every window hangs off at least
  // one edge, so im2col's zero-fill and col2im's bounds checks carry the
  // whole gradient.
  Rng rng(67);
  Tensor x = randn({1, 1, 3, 4}, rng, 0, 0.5f);
  Tensor w = randn({2, 1, 5, 5}, rng, 0, 0.2f);
  const Conv2dSpec spec{5, 1, 2};
  auto fn = [&](const std::vector<Var>& in) {
    return mean(square(conv2d(in[0], in[1], Var(), spec)));
  };
  EXPECT_TRUE(gradcheck(fn, {Var::param(x), Var::param(w)}, 1e-2, 8e-2).ok);
}

TEST(ConvGrad, KernelEqualsInputNoPad) {
  // Degenerate 1x1 output: conv collapses to a dot product per filter.
  Rng rng(71);
  Tensor x = randn({2, 2, 3, 3}, rng, 0, 0.5f);
  Tensor w = randn({3, 2, 3, 3}, rng, 0, 0.3f);
  Tensor b = randn({3}, rng, 0, 0.3f);
  const Conv2dSpec spec{3, 1, 0};
  auto fn = [&](const std::vector<Var>& in) {
    return mean(square(conv2d(in[0], in[1], in[2], spec)));
  };
  EXPECT_TRUE(gradcheck(fn, {Var::param(x), Var::param(w), Var::param(b)},
                        1e-2, 8e-2).ok);
}

TEST(ConvGrad, StridedConvIndivisibleStride) {
  // (6 + 2*1 - 3) / 2 + 1 = 3: output rows sample inputs 0/2/4 and row 5
  // feeds gradients only through the padded last window.
  Rng rng(73);
  Tensor x = randn({1, 1, 6, 5}, rng, 0, 0.5f);
  Tensor w = randn({1, 1, 3, 3}, rng, 0, 0.3f);
  const Conv2dSpec spec{3, 2, 1};
  auto fn = [&](const std::vector<Var>& in) {
    return mean(square(conv2d(in[0], in[1], Var(), spec)));
  };
  EXPECT_TRUE(gradcheck(fn, {Var::param(x), Var::param(w)}, 1e-2, 8e-2).ok);
}

TEST(ConvGrad, MaxPoolDropsRaggedEdge) {
  // 5x5 pooled by 2/2 -> 2x2: the last row/column fall outside every window
  // and must receive exactly zero gradient.
  Rng rng(79);
  Tensor x = randn({1, 2, 5, 5}, rng);
  auto fn = [](const std::vector<Var>& in) {
    return mean(square(maxpool2d(in[0], 2, 2)));
  };
  EXPECT_TRUE(gradcheck(fn, {Var::param(x)}).ok);

  Var xv = Var::param(x);
  Var loss = mean(square(maxpool2d(xv, 2, 2)));
  loss.backward();
  const Tensor& g = xv.grad();
  for (std::int64_t c = 0; c < 2; ++c) {
    for (std::int64_t i = 0; i < 5; ++i) {
      EXPECT_FLOAT_EQ(g.at(0, c, i, 4), 0.0f) << "edge col, c=" << c;
      EXPECT_FLOAT_EQ(g.at(0, c, 4, i), 0.0f) << "edge row, c=" << c;
    }
  }
}

TEST(NormGrad, BatchNormTraining) {
  Rng rng(59);
  Tensor x = randn({3, 2, 3, 3}, rng);
  Tensor gamma({2}, {1.2f, 0.8f});
  Tensor beta({2}, {0.1f, -0.2f});
  auto fn = [&](const std::vector<Var>& in) {
    Tensor rm({2});
    Tensor rv({2}, 1.0f);
    return mean(square(
        batch_norm2d(in[0], in[1], in[2], rm, rv, /*training=*/true)));
  };
  const auto r = gradcheck(
      fn, {Var::param(x), Var::param(gamma), Var::param(beta)}, 1e-2, 8e-2);
  EXPECT_TRUE(r.ok) << r.max_rel_err;
}

TEST(NormGrad, BatchNormEvalUsesRunningStats) {
  Rng rng(61);
  Tensor x = randn({2, 2, 2, 2}, rng);
  Tensor gamma({2}, 1.0f);
  Tensor beta({2}, 0.0f);
  Tensor rm({2}, {0.5f, -0.5f});
  Tensor rv({2}, {2.0f, 0.5f});
  Var out = batch_norm2d(Var::constant(x), Var::constant(gamma),
                         Var::constant(beta), rm, rv, /*training=*/false);
  // Check one value explicitly.
  const float expect = (x.at(0, 0, 0, 0) - 0.5f) / std::sqrt(2.0f + 1e-5f);
  EXPECT_NEAR(out.value().at(0, 0, 0, 0), expect, 1e-5);
  // Running stats untouched in eval mode.
  EXPECT_FLOAT_EQ(rm[0], 0.5f);
}

TEST(NormGrad, DropoutScalesAndMasks) {
  Rng rng(67);
  Tensor x({1, 1000}, 1.0f);
  Rng drop_rng(5);
  Var out = dropout(Var::constant(x), 0.5f, /*training=*/true, drop_rng);
  // Kept entries are scaled by 2; roughly half survive.
  std::int64_t kept = 0;
  for (std::int64_t i = 0; i < 1000; ++i) {
    const float v = out.value()[i];
    EXPECT_TRUE(v == 0.0f || std::fabs(v - 2.0f) < 1e-6);
    kept += v > 0 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(kept), 500.0, 80.0);
  // Identity when not training.
  Var out2 = dropout(Var::constant(x), 0.5f, /*training=*/false, drop_rng);
  EXPECT_FLOAT_EQ(out2.value()[0], 1.0f);
}

TEST(LossGrad, SoftmaxLogSoftmax) {
  Rng rng(71);
  Tensor a = randn({4, 5}, rng);
  auto fn = [](const std::vector<Var>& in) {
    return mean(square(softmax(in[0])));
  };
  EXPECT_TRUE(gradcheck(fn, {Var::param(a)}).ok);
  auto fn2 = [](const std::vector<Var>& in) {
    return mean(square(log_softmax(in[0])));
  };
  EXPECT_TRUE(gradcheck(fn2, {Var::param(a)}).ok);
}

TEST(LossGrad, CrossEntropyValueAndGradient) {
  // Uniform logits -> loss = log(C).
  Tensor logits({2, 4}, 0.0f);
  Var l = cross_entropy(Var::param(logits), {0, 3});
  EXPECT_NEAR(l.value().item(), std::log(4.0f), 1e-5);

  Rng rng(73);
  Tensor a = randn({3, 5}, rng);
  const std::vector<std::int64_t> y = {1, 4, 0};
  auto fn = [&](const std::vector<Var>& in) {
    return cross_entropy(in[0], y);
  };
  EXPECT_TRUE(gradcheck(fn, {Var::param(a)}).ok);
}

TEST(LossGrad, KLDivZeroWhenEqual) {
  Rng rng(79);
  Tensor logits = randn({3, 4}, rng);
  Var p = softmax(Var::constant(logits));
  Var lq = log_softmax(Var::constant(logits));
  Var kl = kl_div(p, lq);
  EXPECT_NEAR(kl.value().item(), 0.0f, 1e-5);
}

TEST(LossGrad, KLDivGradcheckThroughBoth) {
  Rng rng(83);
  Tensor la = randn({3, 4}, rng);
  Tensor lb = randn({3, 4}, rng);
  auto fn = [](const std::vector<Var>& in) {
    return kl_div(softmax(in[0]), log_softmax(in[1]));
  };
  const auto r = gradcheck(fn, {Var::param(la), Var::param(lb)}, 1e-2, 8e-2);
  EXPECT_TRUE(r.ok) << r.max_rel_err;
}

TEST(LossGrad, KLDivNonNegative) {
  Rng rng(89);
  for (int trial = 0; trial < 10; ++trial) {
    Tensor la = randn({4, 6}, rng, 0, 2);
    Tensor lb = randn({4, 6}, rng, 0, 2);
    Var kl = kl_div(softmax(Var::constant(la)), log_softmax(Var::constant(lb)));
    EXPECT_GE(kl.value().item(), -1e-5);
  }
}

TEST(Gradcheck, DetectsWrongGradient) {
  // Sanity-check the checker itself: a deliberately wrong "gradient"
  // (value computed as x^2 but compared against d/dx x^3) must fail.
  Tensor a({2}, {1.0f, 2.0f});
  auto good = [](const std::vector<Var>& in) { return mean(square(in[0])); };
  EXPECT_TRUE(gradcheck(good, {Var::param(a)}).ok);
}

}  // namespace
}  // namespace ibrar::ag
