// Attack-suite invariant sweep at awkward shapes: every attack must return a
// batch of the input's shape, inside the [0,1] image box, and (for the Linf
// family) inside the eps-ball — exercised with an ODD batch size and
// NON-SQUARE images, the shapes most likely to expose stride or rounding bugs
// in per-sample loops. CW is an L2 attack whose eps is interpreted loosely
// (tanh change-of-variables guarantees the box, not a radius), so it is held
// to box + finiteness only.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <string>

#include "attacks/cw.hpp"
#include "attacks/fab.hpp"
#include "attacks/fgsm.hpp"
#include "attacks/mifgsm.hpp"
#include "attacks/nifgsm.hpp"
#include "attacks/pgd.hpp"
#include "attacks/square.hpp"
#include "models/mlp.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"
#include "util/rng.hpp"

namespace ibrar::attacks {
namespace {

// Odd batch, non-square spatial dims, channels != 1.
constexpr std::int64_t kBatch = 9;
constexpr std::int64_t kC = 3, kH = 7, kW = 5;

struct Fixture {
  models::TapClassifierPtr model;
  Tensor x;
  std::vector<std::int64_t> y;

  Fixture() {
    Rng rng(0xbeef);
    models::MLPConfig cfg;
    cfg.in_features = kC * kH * kW;  // MLP flattens, so any H x W works
    cfg.hidden = {24};
    cfg.num_classes = 6;
    model = std::make_shared<models::MLP>(cfg, rng);
    Rng drng(0xf00d);
    x = rand_uniform({kBatch, kC, kH, kW}, drng);
    for (std::int64_t i = 0; i < kBatch; ++i) {
      y.push_back(drng.randint(0, cfg.num_classes - 1));
    }
  }
};

Fixture& fx() {
  static Fixture f;
  return f;
}

AttackConfig quick_cfg() {
  AttackConfig cfg;
  cfg.steps = 4;
  return cfg;
}

struct AttackCase {
  const char* label;
  bool linf_bounded;  ///< eps-ball containment is part of the contract
  std::function<AttackPtr()> make;
};

class AttackInvariantSweep : public ::testing::TestWithParam<AttackCase> {};

TEST_P(AttackInvariantSweep, BoxAndBallAtOddBatchNonSquareImage) {
  const auto& p = GetParam();
  AttackPtr attack = p.make();
  const Tensor& x = fx().x;
  const Tensor adv = attack->perturb(*fx().model, x, fx().y);

  ASSERT_EQ(adv.shape(), x.shape()) << p.label;
  const float eps = attack->config().eps;
  float max_dinf = 0.0f;
  for (std::int64_t i = 0; i < adv.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(adv[i])) << p.label << " idx " << i;
    EXPECT_GE(adv[i], 0.0f) << p.label << " idx " << i;
    EXPECT_LE(adv[i], 1.0f) << p.label << " idx " << i;
    max_dinf = std::max(max_dinf, std::fabs(adv[i] - x[i]));
  }
  if (p.linf_bounded) {
    EXPECT_LE(max_dinf, eps + 1e-5f) << p.label;
    // The attack must actually move (these are all multi-step or full-step
    // gradient/search methods on an untrained but non-degenerate model).
    EXPECT_GT(max_dinf, 0.0f) << p.label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAttacks, AttackInvariantSweep,
    ::testing::Values(
        AttackCase{"FGSM", true,
                   [] { return AttackPtr(std::make_unique<FGSM>(quick_cfg())); }},
        AttackCase{"PGD", true,
                   [] { return AttackPtr(std::make_unique<PGD>(quick_cfg())); }},
        AttackCase{"PGD-restarts", true,
                   [] {
                     AttackConfig cfg = quick_cfg();
                     cfg.restarts = 2;
                     return AttackPtr(std::make_unique<PGD>(cfg));
                   }},
        AttackCase{"MIFGSM", true,
                   [] { return AttackPtr(std::make_unique<MIFGSM>(quick_cfg())); }},
        AttackCase{"NIFGSM", true,
                   [] { return AttackPtr(std::make_unique<NIFGSM>(quick_cfg())); }},
        AttackCase{"CW", false,
                   [] {
                     AttackConfig cfg = quick_cfg();
                     cfg.steps = 8;
                     return AttackPtr(std::make_unique<CW>(cfg));
                   }},
        AttackCase{"FAB", true,
                   [] { return AttackPtr(std::make_unique<FAB>(quick_cfg())); }},
        AttackCase{"Square", true,
                   [] {
                     AttackConfig cfg = quick_cfg();
                     cfg.steps = 12;
                     return AttackPtr(std::make_unique<SquareAttack>(cfg));
                   }}),
    [](const ::testing::TestParamInfo<AttackCase>& info) {
      std::string name = info.param.label;
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(AttackInvariants, BatchOfOneAndSingleChannel) {
  // Degenerate batch: one sample, one channel, 2x3 image through a matching
  // tiny MLP — per-sample bookkeeping must not assume batch > 1 or C == 3.
  Rng rng(42);
  models::MLPConfig cfg;
  cfg.in_features = 1 * 2 * 3;
  cfg.hidden = {8};
  cfg.num_classes = 3;
  models::MLP model(cfg, rng);
  Rng drng(7);
  const Tensor x = rand_uniform({1, 1, 2, 3}, drng);
  PGD pgd(quick_cfg());
  const Tensor adv = pgd.perturb(model, x, {1});
  ASSERT_EQ(adv.shape(), x.shape());
  for (std::int64_t i = 0; i < adv.numel(); ++i) {
    EXPECT_GE(adv[i], 0.0f);
    EXPECT_LE(adv[i], 1.0f);
    EXPECT_LE(std::fabs(adv[i] - x[i]), pgd.config().eps + 1e-5f);
  }
}

TEST(AttackInvariants, CWPerturbationIsMeasurableInL2) {
  // CW's contract: bounded box, finite L2 movement per sample (no radius cap).
  AttackConfig cfg = quick_cfg();
  cfg.steps = 8;
  CW cw(cfg);
  const Tensor& x = fx().x;
  const Tensor adv = cw.perturb(*fx().model, x, fx().y);
  const std::int64_t img = x.numel() / kBatch;
  for (std::int64_t i = 0; i < kBatch; ++i) {
    double l2 = 0.0;
    for (std::int64_t j = 0; j < img; ++j) {
      const double d = adv[i * img + j] - x[i * img + j];
      l2 += d * d;
    }
    EXPECT_TRUE(std::isfinite(l2)) << "sample " << i;
  }
}

}  // namespace
}  // namespace ibrar::attacks
