// MI machinery: kernels, HSIC properties and gradients, the Eq. (1)
// objective, per-channel scores + Eq. (3) mask, binned MI, t-SNE.

#include <gtest/gtest.h>

#include <cmath>

#include "autograd/gradcheck.hpp"
#include "mi/binned_mi.hpp"
#include "mi/channel_score.hpp"
#include "mi/hsic.hpp"
#include "mi/objective.hpp"
#include "mi/tsne.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace ibrar::mi {
namespace {

TEST(Kernels, GramGaussianProperties) {
  Rng rng(1);
  const Tensor x = randn({10, 4}, rng);
  const Tensor k = gram_gaussian(x, 2.0f);
  for (std::int64_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(k.at(i, i), 1.0f, 1e-6);  // zero self-distance
    for (std::int64_t j = 0; j < 10; ++j) {
      EXPECT_NEAR(k.at(i, j), k.at(j, i), 1e-6);  // symmetry
      EXPECT_GE(k.at(i, j), 0.0f);
      EXPECT_LE(k.at(i, j), 1.0f + 1e-6);
    }
  }
}

TEST(Kernels, MedianSigmaPositive) {
  Rng rng(2);
  const Tensor x = randn({20, 6}, rng);
  EXPECT_GT(median_sigma(x), 0.0f);
  // Constant rows give the floor value, not zero / NaN.
  const Tensor c({5, 3}, 1.0f);
  EXPECT_GT(median_sigma(c), 0.0f);
}

TEST(Kernels, ScaledSigmaRule) {
  EXPECT_FLOAT_EQ(scaled_sigma(4, 5.0f), 10.0f);
  EXPECT_FLOAT_EQ(scaled_sigma(1, 1.0f), 1.0f);
}

TEST(Kernels, DifferentiableGramMatchesPlain) {
  Rng rng(3);
  const Tensor x = randn({8, 5}, rng);
  const Tensor plain = gram_gaussian(x, 1.5f);
  const ag::Var var = gram_gaussian(ag::Var::constant(x), 1.5f);
  for (std::int64_t i = 0; i < plain.numel(); ++i) {
    EXPECT_NEAR(plain[i], var.value()[i], 1e-4);
  }
}

TEST(HSIC, IndependentVariablesScoreNearZero) {
  // The biased estimator has O(1/m) bias, so use a larger sample and a
  // proportionate threshold.
  Rng rng(4);
  const Tensor x = randn({200, 3}, rng);
  const Tensor y = randn({200, 3}, rng);  // independent of x
  const float h_indep = hsic_gaussian(x, y, 1.0f, 1.0f);
  const float h_dep = hsic_gaussian(x, x, 1.0f, 1.0f);
  EXPECT_LT(std::fabs(h_indep), 0.25f * h_dep);
  EXPECT_GT(h_dep, 0.0f);
}

TEST(HSIC, DetectsFunctionalDependence) {
  Rng rng(5);
  const Tensor x = randn({50, 2}, rng);
  Tensor y({50, 2});
  for (std::int64_t i = 0; i < 50; ++i) {
    y.at(i, 0) = 2.0f * x.at(i, 0);
    y.at(i, 1) = -x.at(i, 1);
  }
  Tensor z = randn({50, 2}, rng);
  EXPECT_GT(hsic_gaussian(x, y, 1.0f, 1.0f), 3.0f * std::fabs(hsic_gaussian(x, z, 1.0f, 1.0f)));
}

TEST(HSIC, SymmetricInArguments) {
  Rng rng(6);
  const Tensor x = randn({20, 3}, rng);
  const Tensor y = randn({20, 4}, rng);
  const Tensor kx = gram_gaussian(x, 2.0f);
  const Tensor ky = gram_gaussian(y, 2.0f);
  EXPECT_NEAR(hsic(kx, ky), hsic(ky, kx), 1e-6);
}

TEST(HSIC, VarVersionMatchesPlain) {
  Rng rng(7);
  const Tensor x = randn({15, 4}, rng);
  const Tensor y = randn({15, 2}, rng);
  const Tensor kx = gram_gaussian(x, 1.0f);
  const Tensor ky = gram_gaussian(y, 1.0f);
  const float plain = hsic(kx, ky);
  const ag::Var v = hsic(ag::Var::constant(kx), ag::Var::constant(ky));
  EXPECT_NEAR(plain, v.value().item(), 1e-5);
}

TEST(HSIC, GradientFlowsThroughGram) {
  Rng rng(8);
  Tensor x = randn({8, 3}, rng);
  const Tensor y = randn({8, 2}, rng);
  const Tensor ky = gram_gaussian(y, 1.0f);
  auto fn = [&](const std::vector<ag::Var>& in) {
    return hsic(gram_gaussian(in[0], 1.0f), ag::Var::constant(ky));
  };
  const auto r = ag::gradcheck(fn, {ag::Var::param(x)}, 1e-2, 8e-2);
  EXPECT_TRUE(r.ok) << r.max_rel_err;
}

TEST(HSIC, CKASelfSimilarityIsOne) {
  Rng rng(10);
  const Tensor x = randn({30, 4}, rng);
  EXPECT_NEAR(cka(x, x), 1.0f, 1e-4);
  const Tensor y = randn({30, 4}, rng);
  const float c = cka(x, y);
  EXPECT_GE(c, -0.05f);
  EXPECT_LT(c, 0.5f);
}

TEST(IBObjective, SignsOfAlphaAndBeta) {
  // alpha term adds dependence on X; beta term subtracts dependence on Y.
  Rng rng(11);
  const Tensor x = rand_uniform({20, 3, 4, 4}, rng);
  std::vector<std::int64_t> labels(20);
  for (std::size_t i = 0; i < 20; ++i) labels[i] = static_cast<std::int64_t>(i % 4);
  // A tap that IS the input (max dependence on X).
  const ag::Var xv = ag::Var::constant(x);
  const std::vector<ag::Var> taps = {ag::flatten2d(xv)};
  IBObjectiveConfig only_alpha;
  only_alpha.alpha = 1.0f;
  only_alpha.beta = 0.0f;
  const float a_val = ib_objective(xv, taps, labels, 4, only_alpha).value().item();
  EXPECT_GT(a_val, 0.0f);

  IBObjectiveConfig only_beta;
  only_beta.alpha = 0.0f;
  only_beta.beta = 1.0f;
  const float b_val = ib_objective(xv, taps, labels, 4, only_beta).value().item();
  EXPECT_LE(b_val, 1e-6f);  // minus HSIC(Y, T) <= 0
}

TEST(IBObjective, LayerSubsetRestricts) {
  Rng rng(12);
  const Tensor x = rand_uniform({10, 3, 4, 4}, rng);
  std::vector<std::int64_t> labels(10, 0);
  for (std::size_t i = 0; i < 10; ++i) labels[i] = static_cast<std::int64_t>(i % 2);
  const ag::Var xv = ag::Var::constant(x);
  Rng rng2(13);
  const std::vector<ag::Var> taps = {
      ag::flatten2d(xv), ag::Var::constant(randn({10, 6}, rng2))};
  IBObjectiveConfig cfg;
  cfg.alpha = 1.0f;
  cfg.beta = 0.0f;
  cfg.layer_indices = {1};
  const float one = ib_objective(xv, taps, labels, 2, cfg).value().item();
  cfg.layer_indices = {};
  const float both = ib_objective(xv, taps, labels, 2, cfg).value().item();
  EXPECT_GT(both, one);  // tap 0 is x itself, so including it adds HSIC(X,X)
  cfg.layer_indices = {7};
  EXPECT_THROW(ib_objective(xv, taps, labels, 2, cfg), std::out_of_range);
}

TEST(IBObjective, TermsHelperMatchesSigns) {
  Rng rng(14);
  const Tensor x = rand_uniform({12, 3, 4, 4}, rng);
  std::vector<std::int64_t> labels(12);
  for (std::size_t i = 0; i < 12; ++i) labels[i] = static_cast<std::int64_t>(i % 3);
  const Tensor tap = x.reshape({12, 48});
  IBObjectiveConfig cfg;
  const auto [sx, sy] = ib_objective_terms(x, {tap}, labels, 3, cfg);
  EXPECT_GT(sx, 0.0f);
  EXPECT_GE(sy, 0.0f);
}

TEST(ChannelScores, LabelCorrelatedChannelScoresHigher) {
  Rng rng(15);
  const std::int64_t n = 40;
  std::vector<std::int64_t> labels(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) labels[static_cast<std::size_t>(i)] = i % 2;
  // Channel 0 encodes the label, channel 1 is noise.
  Tensor feats({n, 2, 2, 2});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t k = 0; k < 4; ++k) {
      feats.data()[(i * 2 + 0) * 4 + k] =
          labels[static_cast<std::size_t>(i)] == 0 ? -1.0f : 1.0f;
      feats.data()[(i * 2 + 1) * 4 + k] = rng.normal();
    }
  }
  const auto scores = channel_label_scores(feats, labels, 2);
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_GT(scores[0], scores[1]);
}

TEST(ChannelScores, MaskDropsLowestAndKeepsRest) {
  const std::vector<float> scores = {0.5f, 0.1f, 0.9f, 0.2f, 0.8f,
                                     0.7f, 0.6f, 0.3f, 0.4f, 0.05f};
  const Tensor mask = mask_from_scores(scores, 0.2f);  // drop 2 of 10
  EXPECT_FLOAT_EQ(mask[9], 0.0f);  // 0.05
  EXPECT_FLOAT_EQ(mask[1], 0.0f);  // 0.1
  float kept = 0;
  for (std::int64_t i = 0; i < 10; ++i) kept += mask[i];
  EXPECT_FLOAT_EQ(kept, 8.0f);
}

TEST(ChannelScores, MaskAlwaysDropsAtLeastOne) {
  const std::vector<float> scores = {0.5f, 0.6f, 0.7f, 0.8f};
  const Tensor mask = mask_from_scores(scores, 0.05f);  // 5% of 4 rounds to 0
  float kept = 0;
  for (std::int64_t i = 0; i < 4; ++i) kept += mask[i];
  EXPECT_FLOAT_EQ(kept, 3.0f);
}

TEST(ChannelScores, ZeroFractionKeepsAll) {
  const Tensor mask = mask_from_scores({0.1f, 0.2f}, 0.0f);
  EXPECT_FLOAT_EQ(mask[0] + mask[1], 2.0f);
}

TEST(BinnedMI, PerfectCodeHasFullLabelInformation) {
  // T = one distinct constant per class -> I(T;Y) = H(Y) = 1 bit for 2
  // balanced classes; I(X;T) = H(T) = 1 bit.
  const std::int64_t n = 32;
  Tensor t({n, 1});
  std::vector<std::int64_t> y(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    y[static_cast<std::size_t>(i)] = i % 2;
    t.at(i, 0) = static_cast<float>(i % 2);
  }
  const auto p = binned_mi(t, y, 2, 10);
  EXPECT_NEAR(p.i_xt, 1.0, 1e-6);
  EXPECT_NEAR(p.i_ty, 1.0, 1e-6);
}

TEST(BinnedMI, ConstantCodeHasZeroInformation) {
  const std::int64_t n = 16;
  Tensor t({n, 3}, 0.7f);
  std::vector<std::int64_t> y(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) y[static_cast<std::size_t>(i)] = i % 4;
  const auto p = binned_mi(t, y, 4, 10);
  EXPECT_NEAR(p.i_xt, 0.0, 1e-9);
  EXPECT_NEAR(p.i_ty, 0.0, 1e-9);
}

TEST(BinnedMI, RandomCodeHasHighIXTLowITY) {
  Rng rng(16);
  const std::int64_t n = 64;
  const Tensor t = randn({n, 4}, rng);
  std::vector<std::int64_t> y(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) y[static_cast<std::size_t>(i)] = i % 2;
  const auto p = binned_mi(t, y, 2, 30);
  EXPECT_GT(p.i_xt, 4.0);          // nearly all codes distinct -> ~log2(64)
  EXPECT_LT(p.i_ty, p.i_xt);
}

TEST(TSNE, SeparatesWellSeparatedClusters) {
  Rng rng(17);
  const std::int64_t per = 20;
  Tensor x({3 * per, 5});
  std::vector<std::int64_t> labels(static_cast<std::size_t>(3 * per));
  for (std::int64_t c = 0; c < 3; ++c) {
    for (std::int64_t i = 0; i < per; ++i) {
      const auto row = c * per + i;
      labels[static_cast<std::size_t>(row)] = c;
      for (std::int64_t d = 0; d < 5; ++d) {
        x.at(row, d) = 8.0f * static_cast<float>(c == d) + rng.normal(0, 0.3f);
      }
    }
  }
  TSNEConfig cfg;
  cfg.iterations = 150;
  const Tensor emb = tsne(x, cfg);
  EXPECT_EQ(emb.shape(), (Shape{3 * per, 2}));
  EXPECT_TRUE(emb.all_finite());
  const auto m = cluster_metrics(emb, labels);
  EXPECT_GT(m.separation_ratio, 1.5);
  EXPECT_GT(m.silhouette, 0.3);
}

TEST(TSNE, RejectsTinyInputs) {
  EXPECT_THROW(tsne(Tensor({3, 2})), std::invalid_argument);
}

TEST(ClusterMetrics, PerfectVsRandomLabels) {
  Rng rng(18);
  Tensor pts({20, 2});
  std::vector<std::int64_t> good(20), bad(20);
  for (std::int64_t i = 0; i < 20; ++i) {
    const auto c = i < 10 ? 0 : 1;
    good[static_cast<std::size_t>(i)] = c;
    bad[static_cast<std::size_t>(i)] = i % 2;
    pts.at(i, 0) = static_cast<float>(c * 10) + rng.normal(0, 0.2f);
    pts.at(i, 1) = rng.normal(0, 0.2f);
  }
  const auto mg = cluster_metrics(pts, good);
  const auto mb = cluster_metrics(pts, bad);
  EXPECT_GT(mg.separation_ratio, 5.0);
  EXPECT_GT(mg.silhouette, 0.8);
  EXPECT_LT(mb.silhouette, 0.1);
}

}  // namespace
}  // namespace ibrar::mi
