// Training stack: SGD mechanics, StepLR schedule, metrics, objectives
// (CE / PGD-AT / TRADES / MART / HBaR / VIB), trainer loop + hooks.

#include <gtest/gtest.h>

#include "core/ibrar.hpp"
#include "data/registry.hpp"
#include "models/registry.hpp"
#include "train/evaluate.hpp"
#include "train/hbar.hpp"
#include "train/mart.hpp"
#include "train/metrics.hpp"
#include "train/trades.hpp"
#include "train/trainer.hpp"
#include "train/vib.hpp"

namespace ibrar::train {
namespace {

TEST(SGDOpt, GradientDescentStep) {
  ag::Var w = ag::Var::param(Tensor({2}, {1.0f, -2.0f}));
  SGD opt({w}, {/*lr=*/0.1f, /*momentum=*/0.0f, /*weight_decay=*/0.0f});
  w.zero_grad();
  ag::Var loss = ag::mean(ag::square(w));  // dL/dw = w
  loss.backward();
  opt.step();
  EXPECT_NEAR(w.value()[0], 1.0f - 0.1f * 1.0f, 1e-6);
  EXPECT_NEAR(w.value()[1], -2.0f + 0.1f * 2.0f, 1e-6);
}

TEST(SGDOpt, MomentumAccumulates) {
  ag::Var w = ag::Var::param(Tensor({1}, {1.0f}));
  SGD opt({w}, {0.1f, 0.9f, 0.0f});
  for (int i = 0; i < 2; ++i) {
    opt.zero_grad();
    ag::Var loss = ag::sum(w);  // grad = 1
    loss.backward();
    opt.step();
  }
  // step1: v=1, w=1-0.1; step2: v=1.9, w=0.9-0.19.
  EXPECT_NEAR(w.value()[0], 0.71f, 1e-5);
}

TEST(SGDOpt, WeightDecayPullsTowardZero) {
  ag::Var w = ag::Var::param(Tensor({1}, {2.0f}));
  SGD opt({w}, {0.1f, 0.0f, 0.5f});
  opt.zero_grad();  // zero gradient: only decay acts
  opt.step();
  EXPECT_NEAR(w.value()[0], 2.0f - 0.1f * 0.5f * 2.0f, 1e-6);
}

TEST(SGDOpt, ConvergesOnQuadratic) {
  ag::Var w = ag::Var::param(Tensor({3}, {5.0f, -4.0f, 2.0f}));
  SGD opt({w}, {0.2f, 0.5f, 0.0f});
  for (int i = 0; i < 100; ++i) {
    opt.zero_grad();
    ag::Var loss = ag::mean(ag::square(w));
    loss.backward();
    opt.step();
  }
  for (std::int64_t i = 0; i < 3; ++i) EXPECT_NEAR(w.value()[i], 0.0f, 1e-3);
}

TEST(Scheduler, StepLRDecaysOnSchedule) {
  ag::Var w = ag::Var::param(Tensor({1}));
  SGD opt({w}, {1.0f, 0.0f, 0.0f});
  StepLR sched(opt, /*step_size=*/2, /*gamma=*/0.1f);
  sched.epoch_end();
  EXPECT_FLOAT_EQ(opt.lr(), 1.0f);
  sched.epoch_end();
  EXPECT_FLOAT_EQ(opt.lr(), 0.1f);
  sched.epoch_end();
  sched.epoch_end();
  EXPECT_NEAR(opt.lr(), 0.01f, 1e-7);
}

TEST(Metrics, AccuracyAndConfusion) {
  const std::vector<std::int64_t> pred = {0, 1, 1, 2};
  const std::vector<std::int64_t> truth = {0, 1, 2, 2};
  EXPECT_DOUBLE_EQ(accuracy_from_predictions(pred, truth), 0.75);
  const auto counts = confusion_counts(pred, truth, 3);
  EXPECT_EQ(counts[2][1], 1);
  EXPECT_EQ(counts[2][2], 1);
  EXPECT_EQ(counts[0][0], 1);
  const auto top = top_confusions(counts, 2);
  EXPECT_EQ(top[2][0].first, 1);  // class 2 most confused with 1
  EXPECT_EQ(top[2][0].second, 1);
}

TEST(Metrics, SizeMismatchThrows) {
  EXPECT_THROW(accuracy_from_predictions({0}, {0, 1}), std::invalid_argument);
}

struct TrainSetup {
  data::SyntheticData data = data::make_dataset("synth-cifar10", 250, 100);
  models::ModelSpec spec;
  TrainSetup() { spec.name = "mlp"; }

  models::TapClassifierPtr fresh_model(std::uint64_t seed = 1) {
    Rng rng(seed);
    return models::make_model(spec, rng);
  }

  TrainConfig tc(std::int64_t epochs = 3) {
    TrainConfig t;
    t.epochs = epochs;
    t.batch_size = 50;
    return t;
  }
};

TEST(TrainerLoop, CEObjectiveLearnsSeparableData) {
  TrainSetup s;
  auto model = s.fresh_model();
  Trainer trainer(model, std::make_shared<CEObjective>(), s.tc(5));
  const auto hist = trainer.fit(s.data.train, &s.data.test);
  ASSERT_EQ(hist.size(), 5u);
  EXPECT_LT(hist.back().mean_loss, hist.front().mean_loss);
  EXPECT_GT(hist.back().test_acc, 0.5);
  EXPECT_FALSE(model->training());  // left in eval mode
}

TEST(TrainerLoop, EpochAndBatchHooksFire) {
  TrainSetup s;
  auto model = s.fresh_model();
  Trainer trainer(model, std::make_shared<CEObjective>(), s.tc(2));
  std::int64_t epochs_seen = 0, batches_seen = 0;
  trainer.epoch_hook = [&](std::int64_t, models::TapClassifier&) {
    ++epochs_seen;
  };
  trainer.batch_hook = [&](std::int64_t, std::int64_t, models::TapClassifier&,
                           const data::Batch&) { ++batches_seen; };
  trainer.fit(s.data.train);
  EXPECT_EQ(epochs_seen, 2);
  EXPECT_EQ(batches_seen, 2 * 5);  // 250 / 50 per epoch
}

TEST(TrainerLoop, AdversarialEvalRecordedWhenRequested) {
  TrainSetup s;
  auto model = s.fresh_model();
  Trainer trainer(model, std::make_shared<CEObjective>(), s.tc(1));
  attacks::AttackConfig pc;
  pc.steps = 2;
  attacks::PGD pgd(pc);
  const auto hist = trainer.fit(s.data.train, &s.data.test, &pgd, 50);
  ASSERT_EQ(hist.size(), 1u);
  EXPECT_GE(hist[0].adv_acc, 0.0);
  EXPECT_LE(hist[0].adv_acc, hist[0].test_acc + 1e-9);
}

TEST(Objectives, PGDATImprovesRobustnessOverCE) {
  // Conv model + enough data/epochs: PGD-AT needs both to pull ahead of CE
  // on the hard synthetic set (an underfit AT model is not robust).
  const auto data = data::make_dataset("synth-cifar10", 600, 150);
  models::ModelSpec vgg;
  vgg.name = "vgg16";
  attacks::AttackConfig inner;
  inner.steps = 4;
  TrainConfig tc;
  tc.epochs = 6;
  tc.batch_size = 100;

  Rng r1(7), r2(7);
  auto ce_model = models::make_model(vgg, r1);
  Trainer(ce_model, std::make_shared<CEObjective>(), tc).fit(data.train);

  auto at_model = models::make_model(vgg, r2);
  Trainer(at_model, std::make_shared<PGDATObjective>(inner), tc)
      .fit(data.train);

  attacks::AttackConfig ec;
  ec.steps = 10;
  attacks::PGD eval_pgd(ec);
  const double ce_adv =
      evaluate_adversarial(*ce_model, data.test, eval_pgd, 100, 150);
  const double at_adv =
      evaluate_adversarial(*at_model, data.test, eval_pgd, 100, 150);
  EXPECT_GT(at_adv, ce_adv);
}

TEST(Objectives, TRADESProducesFiniteLossAndTrains) {
  TrainSetup s;
  attacks::AttackConfig inner;
  inner.steps = 3;
  auto model = s.fresh_model();
  Trainer trainer(model, std::make_shared<TRADESObjective>(inner), s.tc(4));
  const auto hist = trainer.fit(s.data.train, &s.data.test);
  EXPECT_TRUE(std::isfinite(hist.back().mean_loss));
  // Above-chance (10 classes) learning is what this wiring test pins down.
  EXPECT_GT(hist.back().test_acc, 0.2);
}

TEST(Objectives, MARTProducesFiniteLossAndTrains) {
  TrainSetup s;
  attacks::AttackConfig inner;
  inner.steps = 3;
  auto model = s.fresh_model();
  Trainer trainer(model, std::make_shared<MARTObjective>(inner), s.tc(6));
  const auto hist = trainer.fit(s.data.train, &s.data.test);
  EXPECT_TRUE(std::isfinite(hist.back().mean_loss));
  // MART's weighted objective converges slowest of the AT family; this is a
  // wiring test: the loss must fall and accuracy must clear collapse level.
  EXPECT_LT(hist.back().mean_loss, hist.front().mean_loss);
  EXPECT_GT(hist.back().test_acc, 0.08);
}

TEST(Objectives, HBaRTrains) {
  TrainSetup s;
  auto model = s.fresh_model();
  Trainer trainer(model, std::make_shared<HBaRObjective>(), s.tc(3));
  const auto hist = trainer.fit(s.data.train, &s.data.test);
  EXPECT_GT(hist.back().test_acc, 0.35);
}

TEST(Objectives, VIBSetsNoiseAndTrains) {
  TrainSetup s;
  auto model = s.fresh_model();
  auto vib = std::make_shared<VIBObjective>(*model, 1e-3f, 0.1f);
  EXPECT_FLOAT_EQ(model->penultimate_noise(), 0.1f);
  Trainer trainer(model, vib, s.tc(3));
  const auto hist = trainer.fit(s.data.train, &s.data.test);
  EXPECT_GT(hist.back().test_acc, 0.35);
}

TEST(Objectives, NamesAreStable) {
  attacks::AttackConfig c;
  EXPECT_EQ(CEObjective().name(), "CE");
  EXPECT_EQ(PGDATObjective(c).name(), "PGD-AT");
  EXPECT_EQ(TRADESObjective(c).name(), "TRADES");
  EXPECT_EQ(MARTObjective(c).name(), "MART");
  EXPECT_EQ(HBaRObjective().name(), "HBaR");
}

TEST(TrainerLoop, DeterministicGivenSeeds) {
  TrainSetup s;
  auto m1 = s.fresh_model(5);
  auto m2 = s.fresh_model(5);
  Trainer(m1, std::make_shared<CEObjective>(), s.tc(2)).fit(s.data.train);
  Trainer(m2, std::make_shared<CEObjective>(), s.tc(2)).fit(s.data.train);
  const auto p1 = m1->parameters();
  const auto p2 = m2->parameters();
  for (std::size_t i = 0; i < p1.size(); ++i) {
    for (std::int64_t k = 0; k < p1[i].numel(); ++k) {
      ASSERT_FLOAT_EQ(p1[i].value()[k], p2[i].value()[k]);
    }
  }
}

}  // namespace
}  // namespace ibrar::train
