// Model architectures: tap contracts, channel masks, output shapes,
// determinism, registry, VIB noise injection.

#include <gtest/gtest.h>

#include "models/mlp.hpp"
#include "models/registry.hpp"
#include "models/resnet.hpp"
#include "models/vgg.hpp"
#include "models/wideresnet.hpp"
#include "tensor/random.hpp"

namespace ibrar::models {
namespace {

Tensor test_images(std::int64_t n = 2, std::int64_t size = 16) {
  Rng rng(21);
  return rand_uniform({n, 3, size, size}, rng);
}

class ModelSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(ModelSweep, ForwardShapesAndTaps) {
  Rng rng(1);
  ModelSpec spec;
  spec.name = GetParam();
  auto model = make_model(spec, rng);
  model->set_training(false);
  auto out = model->forward_with_taps(ag::Var::constant(test_images()));
  EXPECT_EQ(out.logits.shape(), (Shape{2, 10}));
  EXPECT_EQ(out.taps.size(), model->tap_names().size());
  for (const auto& t : out.taps) {
    EXPECT_EQ(t.shape()[0], 2);
    EXPECT_TRUE(t.value().all_finite());
  }
}

TEST_P(ModelSweep, DeterministicGivenSeed) {
  ModelSpec spec;
  spec.name = GetParam();
  Rng r1(7), r2(7);
  auto a = make_model(spec, r1);
  auto b = make_model(spec, r2);
  a->set_training(false);
  b->set_training(false);
  const Tensor x = test_images();
  const Tensor ya = a->forward(ag::Var::constant(x)).value();
  const Tensor yb = b->forward(ag::Var::constant(x)).value();
  for (std::int64_t i = 0; i < ya.numel(); ++i) EXPECT_FLOAT_EQ(ya[i], yb[i]);
}

TEST_P(ModelSweep, ChannelMaskZeroesChannels) {
  Rng rng(3);
  ModelSpec spec;
  spec.name = GetParam();
  auto model = make_model(spec, rng);
  model->set_training(false);
  const auto c = model->last_conv_channels();
  Tensor mask({c}, 1.0f);
  mask[0] = 0.0f;  // drop first channel
  model->set_channel_mask(mask);
  auto out = model->forward_with_taps(ag::Var::constant(test_images()));
  const Tensor& feat = out.taps.at(model->last_conv_tap_index()).value();
  // Channel 0 of the masked tap must be exactly zero for all samples.
  const auto spatial = feat.rank() == 4 ? feat.dim(2) * feat.dim(3) : 1;
  for (std::int64_t i = 0; i < feat.dim(0); ++i) {
    for (std::int64_t k = 0; k < spatial; ++k) {
      EXPECT_FLOAT_EQ(feat.data()[(i * c + 0) * spatial + k], 0.0f);
    }
  }
}

TEST_P(ModelSweep, MaskChangesLogits) {
  Rng rng(4);
  ModelSpec spec;
  spec.name = GetParam();
  auto model = make_model(spec, rng);
  model->set_training(false);
  const Tensor x = test_images();
  const Tensor before = model->forward(ag::Var::constant(x)).value();
  Tensor mask({model->last_conv_channels()}, 1.0f);
  for (std::int64_t i = 0; i < mask.numel(); i += 2) mask[i] = 0.0f;
  model->set_channel_mask(mask);
  const Tensor after = model->forward(ag::Var::constant(x)).value();
  double diff = 0;
  for (std::int64_t i = 0; i < before.numel(); ++i) {
    diff += std::fabs(before[i] - after[i]);
  }
  EXPECT_GT(diff, 1e-4);
  model->clear_channel_mask();
  const Tensor restored = model->forward(ag::Var::constant(x)).value();
  for (std::int64_t i = 0; i < before.numel(); ++i) {
    EXPECT_FLOAT_EQ(before[i], restored[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Architectures, ModelSweep,
                         ::testing::Values("vgg16", "resnet18", "wrn28", "mlp"));

TEST(VGG, TapNamesMatchPaperStructure) {
  Rng rng(5);
  VGGConfig cfg;
  MiniVGG vgg(cfg, rng);
  const auto& names = vgg.tap_names();
  ASSERT_EQ(names.size(), 7u);
  EXPECT_EQ(names[0], "conv_block1");
  EXPECT_EQ(names[4], "conv_block5");
  EXPECT_EQ(names[5], "fc1");
  EXPECT_EQ(names[6], "fc2");
  EXPECT_EQ(vgg.last_conv_tap_index(), 4u);
}

TEST(VGG, RejectsWrongBlockCount) {
  Rng rng(6);
  VGGConfig cfg;
  cfg.channels = {8, 8};
  EXPECT_THROW(MiniVGG(cfg, rng), std::invalid_argument);
}

TEST(VGG, MaskValidation) {
  Rng rng(7);
  VGGConfig cfg;
  MiniVGG vgg(cfg, rng);
  EXPECT_THROW(vgg.set_channel_mask(Tensor({3}, 1.0f)), std::invalid_argument);
}

TEST(ResNet, DownsamplingStages) {
  Rng rng(8);
  ResNetConfig cfg;
  MiniResNet net(cfg, rng);
  net.set_training(false);
  auto out = net.forward_with_taps(ag::Var::constant(test_images()));
  // Stages: 16 -> 8 -> 4 -> 2 spatial.
  EXPECT_EQ(out.taps[0].shape()[2], 16);
  EXPECT_EQ(out.taps[1].shape()[2], 8);
  EXPECT_EQ(out.taps[2].shape()[2], 4);
  EXPECT_EQ(out.taps[3].shape()[2], 2);
  EXPECT_EQ(out.taps[4].shape(), (Shape{2, cfg.channels.back()}));
}

TEST(WRN, GroupWidthsFollowWidenFactor) {
  Rng rng(9);
  WRNConfig cfg;
  MiniWRN net(cfg, rng);
  net.set_training(false);
  auto out = net.forward_with_taps(ag::Var::constant(test_images()));
  EXPECT_EQ(out.taps[0].shape()[1], cfg.base_width * cfg.widen);
  EXPECT_EQ(out.taps[2].shape()[1], cfg.base_width * cfg.widen * 4);
  EXPECT_EQ(net.last_conv_channels(), cfg.base_width * cfg.widen * 4);
}

TEST(MLPModel, FlattensImages) {
  Rng rng(10);
  MLPConfig cfg;
  cfg.in_features = 3 * 16 * 16;
  MLP mlp(cfg, rng);
  mlp.set_training(false);
  EXPECT_EQ(mlp.forward(ag::Var::constant(test_images())).shape(),
            (Shape{2, 10}));
}

TEST(Registry, UnknownNameThrows) {
  Rng rng(11);
  ModelSpec spec;
  spec.name = "alexnet";
  EXPECT_THROW(make_model(spec, rng), std::invalid_argument);
  EXPECT_THROW(default_robust_layers("alexnet"), std::invalid_argument);
}

TEST(Registry, DefaultRobustLayers) {
  const auto v = default_robust_layers("vgg16");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], "conv_block5");
  EXPECT_EQ(default_robust_layers("resnet18").back(), "gap");
}

TEST(VIBNoise, InjectedOnlyInTraining) {
  Rng rng(12);
  ModelSpec spec;
  auto model = make_model(spec, rng);
  model->set_penultimate_noise(0.5f);
  const Tensor x = test_images();
  model->set_training(false);
  const Tensor a = model->forward(ag::Var::constant(x)).value();
  const Tensor b = model->forward(ag::Var::constant(x)).value();
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
  model->set_training(true);
  const Tensor c = model->forward(ag::Var::constant(x)).value();
  const Tensor d = model->forward(ag::Var::constant(x)).value();
  double diff = 0;
  for (std::int64_t i = 0; i < c.numel(); ++i) diff += std::fabs(c[i] - d[i]);
  EXPECT_GT(diff, 1e-5);  // dropout + noise make training forwards stochastic
}

TEST(ModelParams, ReasonableParameterCounts) {
  Rng rng(13);
  for (const char* name : {"vgg16", "resnet18", "wrn28"}) {
    ModelSpec spec;
    spec.name = name;
    auto model = make_model(spec, rng);
    EXPECT_GT(model->num_parameters(), 5000) << name;
    EXPECT_LT(model->num_parameters(), 500000) << name;
  }
}

}  // namespace
}  // namespace ibrar::models
