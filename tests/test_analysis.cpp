// The analysis subsystem: tap capture, the unified figure driver's artifact
// helpers, and the training-objective factory the benches delegate to.

#include <gtest/gtest.h>

#include <cstring>

#include "analysis/capture.hpp"
#include "analysis/driver.hpp"
#include "data/registry.hpp"
#include "mi/hsic.hpp"
#include "tensor/ops.hpp"

namespace ibrar::analysis {
namespace {

/// Shared tiny fixture: an untrained MLP over a small synthetic set (capture
/// and the artifact helpers don't care whether the model is trained).
struct Fixture {
  Fixture()
      : data(data::make_dataset("synth-cifar10", 40, 24)) {
    spec.name = "mlp";
    spec.num_classes = data.train.num_classes;
    Rng rng(3);
    model = models::make_model(spec, rng);
    model->set_training(false);
  }
  data::SyntheticData data;
  models::ModelSpec spec;
  models::TapClassifierPtr model;
};

TEST(Capture, ShapesLabelsAndAccuracy) {
  Fixture f;
  const auto dump = capture_taps(*f.model, f.data.test, -1, 10);
  const auto n = f.data.test.size();
  EXPECT_EQ(dump.size(), n);
  EXPECT_EQ(dump.tap_names, f.model->tap_names());
  ASSERT_EQ(dump.taps.size(), dump.tap_names.size());
  ASSERT_EQ(dump.taps.size(), dump.tap_shapes.size());
  for (std::size_t t = 0; t < dump.taps.size(); ++t) {
    EXPECT_EQ(dump.taps[t].dim(0), n);
    EXPECT_EQ(shape_numel(dump.tap_shapes[t]), dump.taps[t].numel());
  }
  EXPECT_EQ(dump.logits.dim(0), n);
  EXPECT_EQ(dump.logits.dim(1), f.model->num_classes());
  EXPECT_EQ(static_cast<std::int64_t>(dump.labels.size()), n);
  // Accuracy must agree with the recorded preds/labels.
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < dump.preds.size(); ++i) {
    if (dump.preds[i] == dump.labels[i]) ++correct;
  }
  EXPECT_DOUBLE_EQ(dump.accuracy,
                   static_cast<double>(correct) / static_cast<double>(n));
}

TEST(Capture, BatchSizeDoesNotChangeTheDump) {
  Fixture f;
  const auto a = capture_taps(*f.model, f.data.test, -1, 7);
  const auto b = capture_taps(*f.model, f.data.test, -1, 24);
  ASSERT_EQ(a.taps.size(), b.taps.size());
  for (std::size_t t = 0; t < a.taps.size(); ++t) {
    ASSERT_TRUE(a.taps[t].same_shape(b.taps[t]));
    EXPECT_EQ(std::memcmp(a.taps[t].data().data(), b.taps[t].data().data(),
                          sizeof(float) *
                              static_cast<std::size_t>(a.taps[t].numel())),
              0);
  }
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
}

TEST(Capture, MaxSamplesClampsAndValidates) {
  Fixture f;
  const auto dump = capture_taps(*f.model, f.data.test, 10, 100);
  EXPECT_EQ(dump.size(), 10);
  EXPECT_THROW(capture_taps(*f.model, f.data.test, 10, 0),
               std::invalid_argument);
}

TEST(Capture, TapFilterSelectsBitIdenticalColumns) {
  Fixture f;
  const auto full = capture_taps(*f.model, f.data.test, 16, 8);
  ASSERT_GE(full.taps.size(), 2u);
  const std::size_t pick = full.taps.size() - 1;
  const auto filtered = capture_taps(*f.model, f.data.test, 16, 8, {pick});
  ASSERT_EQ(filtered.taps.size(), 1u);
  EXPECT_EQ(filtered.tap_names[0], full.tap_names[pick]);
  ASSERT_TRUE(filtered.taps[0].same_shape(full.taps[pick]));
  EXPECT_EQ(std::memcmp(filtered.taps[0].data().data(),
                        full.taps[pick].data().data(),
                        sizeof(float) *
                            static_cast<std::size_t>(filtered.taps[0].numel())),
            0);
  EXPECT_THROW(capture_taps(*f.model, f.data.test, 16, 8, {99}),
               std::out_of_range);
  // Filtered dumps cannot feed the model-indexed channel scorer.
  EXPECT_THROW(last_conv_channel_scores(filtered, *f.model,
                                        f.model->num_classes()),
               std::invalid_argument);
}

TEST(Capture, RestoresTrainingMode) {
  Fixture f;
  f.model->set_training(true);
  (void)capture_taps(*f.model, f.data.test, 8, 8);
  EXPECT_TRUE(f.model->training());
  f.model->set_training(false);
  (void)capture_taps(*f.model, f.data.test, 8, 8);
  EXPECT_FALSE(f.model->training());
}

TEST(Driver, InfoPlaneMatchesDirectHsicWhenUnchunked) {
  Fixture f;
  const auto dump = capture_taps(*f.model, f.data.test, 20, 10);
  InfoPlaneConfig cfg;
  cfg.chunk = 0;  // one chunk == the plain batch estimator
  const auto plane = info_plane(dump, {0}, f.model->num_classes(), cfg);
  ASSERT_EQ(plane.layer.size(), 1u);
  const Tensor& t = dump.taps[0];
  const float sig_t = mi::scaled_sigma(t.dim(1), cfg.sigma_mult);
  const float direct = mi::hsic_gaussian(
      dump.inputs, t, mi::scaled_sigma(dump.inputs.dim(1), cfg.sigma_mult),
      sig_t);
  EXPECT_FLOAT_EQ(static_cast<float>(plane.i_xt[0]), direct);
  const Tensor y = one_hot(dump.labels, f.model->num_classes());
  const float direct_y = mi::hsic_gaussian(
      y, t, mi::scaled_sigma(f.model->num_classes(), cfg.sigma_mult_y), sig_t);
  EXPECT_FLOAT_EQ(static_cast<float>(plane.i_ty[0]), direct_y);
}

TEST(Driver, InfoPlaneDefaultsToAllLayersAndValidates) {
  Fixture f;
  const auto dump = capture_taps(*f.model, f.data.test, 16, 8);
  const auto plane = info_plane(dump, {}, f.model->num_classes());
  EXPECT_EQ(plane.layer.size(), dump.taps.size());
  for (const auto v : plane.i_xt) EXPECT_TRUE(std::isfinite(v));
  for (const auto v : plane.i_ty) EXPECT_TRUE(std::isfinite(v));
  EXPECT_THROW(info_plane(dump, {99}, f.model->num_classes()),
               std::out_of_range);
}

TEST(Driver, ClusterReportShapesAndValidation) {
  Fixture f;
  const auto dump = capture_taps(*f.model, f.data.test, 24, 12);
  mi::TSNEConfig cfg;
  cfg.iterations = 30;  // keep the unit test fast
  const auto rep = cluster_report(dump, dump.taps.size() - 1, cfg);
  EXPECT_EQ(rep.embedding_points.shape(), (Shape{24, 2}));
  EXPECT_TRUE(rep.embedding_points.all_finite());
  EXPECT_GT(rep.feature.mean_inter, 0.0);
  EXPECT_THROW(cluster_report(dump, dump.taps.size(), cfg), std::out_of_range);
}

TEST(Driver, LastConvChannelScoresMatchTapWidth) {
  Fixture f;
  const auto dump = capture_taps(*f.model, f.data.test, 16, 8);
  const auto scores =
      last_conv_channel_scores(dump, *f.model, f.model->num_classes());
  const auto idx = f.model->last_conv_tap_index();
  EXPECT_EQ(static_cast<std::int64_t>(scores.size()),
            dump.tap_shapes[idx][1]);
}

TEST(Driver, ObjectiveFactoryNamesAndErrors) {
  Fixture f;
  for (const char* name : {"CE", "plain", "PGD", "TRADES", "MART", "HBaR",
                           "VIB"}) {
    EXPECT_NE(make_base_objective(name, {}, *f.model), nullptr) << name;
  }
  EXPECT_THROW(make_base_objective("nope", {}, *f.model),
               std::invalid_argument);
}

TEST(Driver, TrainModelProducesHistoryAndWarmStart) {
  Fixture f;
  TrainSpec spec;
  spec.base = "CE";
  spec.train.epochs = 2;
  spec.train.batch_size = 20;
  std::vector<train::EpochStats> history;
  auto model = train_model(f.spec, f.data, spec, 5, &history, &f.data.test);
  ASSERT_NE(model, nullptr);
  EXPECT_FALSE(model->training());
  ASSERT_EQ(history.size(), 2u);
  EXPECT_GE(history[0].test_acc, 0.0);

  // Warm start splits the budget: 1 MI epoch + 1 base epoch, same total.
  TrainSpec warm = spec;
  warm.mi_warm_start_epochs = 1;
  std::vector<train::EpochStats> warm_history;
  (void)train_model(f.spec, f.data, warm, 5, &warm_history);
  EXPECT_EQ(warm_history.size(), 2u);
}

TEST(Driver, AttackStepSweepShapes) {
  Fixture f;
  const auto sweep = attack_step_sweep(*f.model, f.data.test, "fgsm", {1},
                                       {}, 12, 12);
  ASSERT_EQ(sweep.robust_acc.size(), 1u);
  EXPECT_GE(sweep.robust_acc[0], 0.0);
  EXPECT_LE(sweep.robust_acc[0], 1.0);
  EXPECT_THROW(attack_step_sweep(*f.model, f.data.test, "nope", {1}, {}, 12,
                                 12),
               std::invalid_argument);
}

}  // namespace
}  // namespace ibrar::analysis
