// End-to-end integration: the paper's central claims at miniature scale.
// These are slower than unit tests (a few seconds each) but pin the
// qualitative results every bench relies on.

#include <gtest/gtest.h>

#include "attacks/adaptive.hpp"
#include "core/ibrar.hpp"
#include "core/robust_layers.hpp"
#include "data/registry.hpp"
#include "mi/objective.hpp"
#include "mi/tsne.hpp"
#include "models/registry.hpp"
#include "train/evaluate.hpp"

namespace ibrar {
namespace {

struct Env {
  // 800 training samples: the IB-vs-CE robustness gap is scale-sensitive and
  // only emerges once the models actually fit the data (cf. quickstart).
  data::SyntheticData data = data::make_dataset("synth-cifar10", 800, 200);
  models::ModelSpec vgg;

  Env() { vgg.name = "vgg16"; }

  train::TrainConfig tc(std::int64_t epochs = 5) {
    train::TrainConfig t;
    t.epochs = epochs;
    t.batch_size = 100;
    return t;
  }
};

Env& env() {
  static Env e;
  return e;
}

double pgd_acc(models::TapClassifier& m, std::int64_t steps = 10,
               std::int64_t samples = 150) {
  attacks::AttackConfig c;
  c.steps = steps;
  attacks::PGD pgd(c);
  return train::evaluate_adversarial(m, env().data.test, pgd, 100, samples);
}

/// Claim 1 (Table 4 / Fig. 2): IB-RAR without adversarial training is more
/// robust than CE-only training.
TEST(Integration, IBRARBeatsCEUnderPGD) {
  // The per-seed delta at this scale is a few percentage points with noise
  // of similar size, so the claim is pinned on the two-seed mean (the bench
  // harness shows the same averaging caveat; see EXPERIMENTS.md).
  double ce_adv = 0, ib_adv = 0, ce_clean = 0, ib_clean = 0;
  const std::vector<std::uint64_t> seeds = {1, 2};
  for (const auto seed : seeds) {
    auto tc = env().tc(6);
    tc.seed = seed;
    Rng r1(seed);
    auto ce = models::make_model(env().vgg, r1);
    train::Trainer(ce, std::make_shared<train::CEObjective>(), tc)
        .fit(env().data.train);

    Rng r2(seed);
    auto ib = models::make_model(env().vgg, r2);
    {
      auto obj = std::make_shared<core::IBRARObjective>(nullptr,
                                                        core::MILossConfig{});
      train::Trainer t(ib, obj, tc);
      t.epoch_hook = core::make_mask_hook(core::FeatureMaskConfig{},
                                          env().data.train);
      t.fit(env().data.train);
    }
    ce_clean += train::evaluate_clean(*ce, env().data.test);
    ib_clean += train::evaluate_clean(*ib, env().data.test);
    ce_adv += pgd_acc(*ce);
    ib_adv += pgd_acc(*ib);
  }
  const double n = static_cast<double>(seeds.size());
  EXPECT_GT(ib_adv / n, ce_adv / n - 1e-9);      // the robustness delta
  EXPECT_GT(ib_clean / n, ce_clean / n - 0.10);  // no clean-accuracy price
}

/// Claim 2 (Tables 1-2): IB-RAR composes with PGD adversarial training
/// without degrading robustness (paper: it improves it).
TEST(Integration, IBRARComposesWithAdversarialTraining) {
  attacks::AttackConfig inner;
  inner.steps = 4;

  Rng r1(2);
  auto at = models::make_model(env().vgg, r1);
  train::Trainer(at, std::make_shared<train::PGDATObjective>(inner),
                 env().tc())
      .fit(env().data.train);

  Rng r2(2);
  auto at_ib = models::make_model(env().vgg, r2);
  {
    auto base = std::make_shared<train::PGDATObjective>(inner);
    auto obj = std::make_shared<core::IBRARObjective>(base,
                                                      core::MILossConfig{});
    train::Trainer t(at_ib, obj, env().tc());
    t.epoch_hook = core::make_mask_hook(core::FeatureMaskConfig{},
                                        env().data.train);
    t.fit(env().data.train);
  }
  const double at_adv = pgd_acc(*at);
  const double at_ib_adv = pgd_acc(*at_ib);
  // Both must be far above undefended levels; IB-RAR must not break AT.
  EXPECT_GT(at_adv, 0.15);
  EXPECT_GT(at_ib_adv, at_adv - 0.08);
}

/// Claim 3 (Table 3): for VGG-like networks, the deep layers (conv block 5 /
/// fc) are where single-layer IB regularization yields robustness.
TEST(Integration, DeepLayersAreMoreRobustThanShallow) {
  auto probe = [&](const std::string& layer) {
    Rng rng(3);
    auto model = models::make_model(env().vgg, rng);
    core::MILossConfig mi;
    mi.selection = core::LayerSelection::kExplicit;
    mi.layers = {layer};
    auto obj = std::make_shared<core::IBRARObjective>(nullptr, mi);
    train::Trainer(model, obj, env().tc()).fit(env().data.train);
    return pgd_acc(*model, 10, 100);
  };
  const double shallow = probe("conv_block1");
  const double deep_fc = probe("fc1");
  const double deep_conv = probe("conv_block5");
  // The deep layers should not lose to the shallow one (paper: 9.85 / 8.25
  // vs 0.04); ties can occur at this scale, hence >=.
  EXPECT_GE(deep_fc + deep_conv, shallow * 2 - 0.02);
}

/// Claim 4 (Sec. A.2 / Table 6): the adaptive attack on the IB-RAR loss does
/// not break an adversarially-trained IB-RAR model below its PGD level by a
/// large margin.
TEST(Integration, AdaptiveAttackDoesNotCollapseATIBRAR) {
  attacks::AttackConfig inner;
  inner.steps = 4;
  Rng rng(4);
  auto model = models::make_model(env().vgg, rng);
  auto base = std::make_shared<train::PGDATObjective>(inner);
  core::MILossConfig mi;
  auto obj = std::make_shared<core::IBRARObjective>(base, mi);
  train::Trainer t(model, obj, env().tc());
  t.epoch_hook = core::make_mask_hook(core::FeatureMaskConfig{},
                                      env().data.train);
  t.fit(env().data.train);

  attacks::AttackConfig ac;
  ac.steps = 10;
  attacks::AdaptivePGD adaptive(ac, core::to_ib_config(mi, *model));
  const double adaptive_acc = train::evaluate_adversarial(
      *model, env().data.test, adaptive, 100, 120);
  const double pgd = pgd_acc(*model, 10, 120);
  EXPECT_GT(adaptive_acc, pgd - 0.15);
  EXPECT_GT(adaptive_acc, 0.10);
}

/// Claim 5 (Fig. 3): IB-RAR increases feature-space class separation.
TEST(Integration, IBRARImprovesClusterSeparation) {
  Rng r1(5);
  auto ce = models::make_model(env().vgg, r1);
  train::Trainer(ce, std::make_shared<train::CEObjective>(), env().tc())
      .fit(env().data.train);
  Rng r2(5);
  auto ib = models::make_model(env().vgg, r2);
  {
    core::MILossConfig mi;
    mi.beta = 0.5f;  // a stronger relevance term sharpens the effect
    auto obj = std::make_shared<core::IBRARObjective>(nullptr, mi);
    train::Trainer t(ib, obj, env().tc());
    t.fit(env().data.train);
  }
  auto features = [&](models::TapClassifier& m) {
    ag::NoGradGuard ng;
    m.set_training(false);
    std::vector<std::int64_t> idx(100);
    for (std::int64_t i = 0; i < 100; ++i) idx[static_cast<std::size_t>(i)] = i;
    const auto batch = data::make_batch(env().data.test, idx);
    auto out = m.forward_with_taps(ag::Var::constant(batch.x));
    const Tensor& t = out.taps.back().value();
    return std::pair{t.reshape({t.dim(0), t.numel() / t.dim(0)}), batch.y};
  };
  const auto [fce, yce] = features(*ce);
  const auto [fib, yib] = features(*ib);
  const auto mce = mi::cluster_metrics(fce, yce);
  const auto mib = mi::cluster_metrics(fib, yib);
  // Allow slack: at miniature scale the effect is noisy but should not invert
  // badly.
  EXPECT_GT(mib.separation_ratio, mce.separation_ratio * 0.8);
}

/// Checkpointing survives a full train/attack cycle (used by downstream
/// consumers of the library).
TEST(Integration, SaveLoadPreservesBehaviour) {
  Rng rng(6);
  auto model = models::make_model(env().vgg, rng);
  train::Trainer(model, std::make_shared<train::CEObjective>(), env().tc(2))
      .fit(env().data.train);
  const std::string path = "/tmp/ibrar_integration_ckpt.bin";
  nn::save_model(*model, path);

  Rng rng2(77);
  auto clone = models::make_model(env().vgg, rng2);
  nn::load_model(*clone, path);
  std::remove(path.c_str());

  std::vector<std::int64_t> idx(50);
  for (std::int64_t i = 0; i < 50; ++i) idx[static_cast<std::size_t>(i)] = i;
  const auto batch = data::make_batch(env().data.test, idx);
  const auto pa = attacks::predict(*model, batch.x);
  const auto pb = attacks::predict(*clone, batch.x);
  EXPECT_EQ(pa, pb);
}

}  // namespace
}  // namespace ibrar
