// NN layer semantics: shapes, parameter registration, init statistics,
// train/eval mode behaviour, sequential composition, checkpoint round-trips.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "nn/init.hpp"
#include "nn/layers.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace ibrar::nn {
namespace {

TEST(Linear, ShapeAndBias) {
  Rng rng(1);
  Linear fc(8, 4, rng);
  ag::Var x = ag::Var::constant(Tensor({3, 8}, 1.0f));
  ag::Var y = fc.forward(x);
  EXPECT_EQ(y.shape(), (Shape{3, 4}));
  EXPECT_EQ(fc.parameters().size(), 2u);
  Linear no_bias(8, 4, rng, /*bias=*/false);
  EXPECT_EQ(no_bias.parameters().size(), 1u);
}

TEST(Linear, GradientFlowsToParams) {
  Rng rng(2);
  Linear fc(4, 2, rng);
  ag::Var x = ag::Var::constant(Tensor({5, 4}, 0.5f));
  ag::Var loss = ag::mean(ag::square(fc.forward(x)));
  fc.zero_grad();
  loss.backward();
  bool any_nonzero = false;
  for (auto& p : fc.parameters()) {
    for (std::int64_t i = 0; i < p.grad().numel(); ++i) {
      any_nonzero = any_nonzero || p.grad()[i] != 0.0f;
    }
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(Conv2dLayer, OutputShape) {
  Rng rng(3);
  Conv2d conv(3, 8, rng);  // 3x3, stride 1, pad 1
  ag::Var x = ag::Var::constant(Tensor({2, 3, 16, 16}));
  EXPECT_EQ(conv.forward(x).shape(), (Shape{2, 8, 16, 16}));
  Conv2d strided(3, 8, rng, Conv2dSpec{3, 2, 1});
  EXPECT_EQ(strided.forward(x).shape(), (Shape{2, 8, 8, 8}));
  Conv2d one(3, 8, rng, Conv2dSpec{1, 1, 0});
  EXPECT_EQ(one.forward(x).shape(), (Shape{2, 8, 16, 16}));
}

TEST(Init, KaimingScalesWithFanIn) {
  Rng rng(5);
  Tensor w({1000});
  kaiming_normal(w, 50, rng);
  double ss = 0;
  for (std::int64_t i = 0; i < w.numel(); ++i) ss += double(w[i]) * w[i];
  const double stddev = std::sqrt(ss / w.numel());
  EXPECT_NEAR(stddev, std::sqrt(2.0 / 50.0), 0.03);
}

TEST(Init, XavierBounds) {
  Rng rng(6);
  Tensor w({1000});
  xavier_uniform(w, 10, 20, rng);
  const float bound = std::sqrt(6.0f / 30.0f);
  EXPECT_GE(min_all(w), -bound);
  EXPECT_LE(max_all(w), bound);
}

TEST(BatchNormLayer, NormalizesBatchInTraining) {
  Rng rng(7);
  BatchNorm2d bn(4);
  bn.set_training(true);
  Tensor x = randn({8, 4, 5, 5}, rng, 3.0f, 2.0f);
  ag::Var y = bn.forward(ag::Var::constant(x));
  // Per-channel mean ~0, var ~1 after normalization with unit gamma.
  const Tensor& v = y.value();
  for (std::int64_t c = 0; c < 4; ++c) {
    double s = 0, s2 = 0;
    std::int64_t n = 0;
    for (std::int64_t i = 0; i < 8; ++i) {
      for (std::int64_t k = 0; k < 25; ++k) {
        const float val = v.at(i, c, k / 5, k % 5);
        s += val;
        s2 += double(val) * val;
        ++n;
      }
    }
    EXPECT_NEAR(s / n, 0.0, 1e-3);
    EXPECT_NEAR(s2 / n, 1.0, 1e-2);
  }
}

TEST(BatchNormLayer, RunningStatsConvergeAndEvalUsesThem) {
  Rng rng(8);
  BatchNorm2d bn(2);
  bn.set_training(true);
  for (int i = 0; i < 50; ++i) {
    Tensor x = randn({16, 2, 3, 3}, rng, 1.0f, 0.5f);
    bn.forward(ag::Var::constant(x));
  }
  auto buffers = bn.named_buffers();
  ASSERT_EQ(buffers.size(), 2u);
  // running_mean ~1, running_var ~0.25.
  EXPECT_NEAR((*buffers[0].second)[0], 1.0f, 0.15f);
  EXPECT_NEAR((*buffers[1].second)[0], 0.25f, 0.1f);

  bn.set_training(false);
  Tensor x({1, 2, 1, 1}, {1.0f, 1.0f});
  ag::Var y = bn.forward(ag::Var::constant(x));
  // With input == running mean, eval output ~0.
  EXPECT_NEAR(y.value()[0], 0.0f, 0.2f);
}

TEST(DropoutLayer, EvalIsIdentity) {
  Dropout drop(0.5f, 11);
  drop.set_training(false);
  Tensor x({10}, 3.0f);
  ag::Var y = drop.forward(ag::Var::constant(x));
  for (std::int64_t i = 0; i < 10; ++i) EXPECT_FLOAT_EQ(y.value()[i], 3.0f);
}

TEST(SequentialLayer, ComposesAndCollectsParams) {
  Rng rng(12);
  Sequential seq;
  seq.push_back(std::make_shared<Linear>(6, 4, rng));
  seq.push_back(std::make_shared<ReLU>());
  seq.push_back(std::make_shared<Linear>(4, 2, rng));
  EXPECT_EQ(seq.size(), 3u);
  EXPECT_EQ(seq.parameters().size(), 4u);
  ag::Var y = seq.forward(ag::Var::constant(Tensor({1, 6}, 1.0f)));
  EXPECT_EQ(y.shape(), (Shape{1, 2}));
  // Mode propagates to children.
  seq.set_training(false);
  EXPECT_FALSE(seq.training());
}

TEST(ModuleTree, NamedParametersAreQualified) {
  Rng rng(13);
  Sequential seq;
  seq.push_back(std::make_shared<Linear>(3, 3, rng));
  const auto named = seq.named_parameters();
  ASSERT_EQ(named.size(), 2u);
  EXPECT_EQ(named[0].first, "0.weight");
  EXPECT_EQ(named[1].first, "0.bias");
}

TEST(ModuleTree, NumParametersCounts) {
  Rng rng(14);
  Linear fc(10, 5, rng);
  EXPECT_EQ(fc.num_parameters(), 10 * 5 + 5);
}

TEST(Checkpoint, SaveLoadRoundTrip) {
  Rng rng(15);
  Sequential a;
  a.push_back(std::make_shared<Linear>(4, 3, rng));
  a.push_back(std::make_shared<BatchNorm2d>(3));

  const std::string path = "/tmp/ibrar_test_ckpt.bin";
  save_model(a, path);

  Rng rng2(99);
  Sequential b;
  b.push_back(std::make_shared<Linear>(4, 3, rng2));
  b.push_back(std::make_shared<BatchNorm2d>(3));
  load_model(b, path);

  const auto pa = a.named_parameters();
  const auto pb = b.named_parameters();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (std::int64_t k = 0; k < pa[i].second.numel(); ++k) {
      EXPECT_FLOAT_EQ(pa[i].second.value()[k], pb[i].second.value()[k]);
    }
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, LoadRejectsShapeMismatch) {
  Rng rng(16);
  Linear a(4, 3, rng);
  const std::string path = "/tmp/ibrar_test_ckpt2.bin";
  save_model(a, path);
  Linear b(4, 5, rng);
  EXPECT_THROW(load_model(b, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, CopyState) {
  Rng rng(17);
  Linear a(4, 3, rng);
  Linear b(4, 3, rng);
  copy_state(a, b);
  const auto pa = a.parameters();
  const auto pb = b.parameters();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (std::int64_t k = 0; k < pa[i].numel(); ++k) {
      EXPECT_FLOAT_EQ(pa[i].value()[k], pb[i].value()[k]);
    }
  }
}

}  // namespace
}  // namespace ibrar::nn
