// Runtime layer: thread-pool lifecycle, parallel_for/parallel_reduce
// semantics, exception propagation, nested regions, and the bit-exact
// determinism contract (same results at every pool size).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "mi/hsic.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace ibrar {
namespace {

TEST(ThreadPool, StartupShutdown) {
  // Pools of every small size construct, run work, and join cleanly.
  for (std::int64_t lanes = 1; lanes <= 8; ++lanes) {
    runtime::ThreadPool pool(lanes);
    EXPECT_EQ(pool.lanes(), lanes);
    std::atomic<std::int64_t> covered{0};
    pool.run_chunked(0, 1000, lanes, [&](std::int64_t b, std::int64_t e) {
      covered += e - b;
    });
    EXPECT_EQ(covered.load(), 1000);
  }
}

TEST(ThreadPool, LanesClampedToAtLeastOne) {
  runtime::ThreadPool pool(0);
  EXPECT_EQ(pool.lanes(), 1);
}

TEST(ThreadPool, SetNumThreadsRebuildsGlobalPool) {
  runtime::set_num_threads(3);
  EXPECT_EQ(runtime::num_threads(), 3);
  runtime::set_num_threads(1);
  EXPECT_EQ(runtime::num_threads(), 1);
}

TEST(ThreadPool, EnvVarControlsDefaultSize) {
  setenv("IBRAR_NUM_THREADS", "2", 1);
  runtime::set_num_threads(0);  // 0 = re-read the environment
  EXPECT_EQ(runtime::num_threads(), 2);
  unsetenv("IBRAR_NUM_THREADS");
  runtime::set_num_threads(0);
  EXPECT_GE(runtime::num_threads(), 1);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  runtime::set_num_threads(4);
  std::vector<int> hits(1000, 0);
  runtime::parallel_for(0, 1000, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, EmptyAndTinyRanges) {
  runtime::set_num_threads(4);
  int calls = 0;
  runtime::parallel_for(5, 5, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // n <= grain stays a single inline call on the caller.
  std::atomic<int> acalls{0};
  runtime::parallel_for(0, 10, 100, [&](std::int64_t b, std::int64_t e) {
    EXPECT_EQ(b, 0);
    EXPECT_EQ(e, 10);
    ++acalls;
  });
  EXPECT_EQ(acalls.load(), 1);
}

TEST(ParallelFor, SingleLaneFallbackIsOneInlineCall) {
  runtime::set_num_threads(1);
  int calls = 0;
  runtime::parallel_for(0, 100000, 1, [&](std::int64_t b, std::int64_t e) {
    EXPECT_EQ(b, 0);
    EXPECT_EQ(e, 100000);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
  runtime::set_num_threads(4);
}

TEST(ParallelFor, ExceptionPropagates) {
  for (const std::int64_t lanes : {1, 4}) {
    runtime::set_num_threads(lanes);
    EXPECT_THROW(
        runtime::parallel_for(0, 100, 1,
                              [](std::int64_t b, std::int64_t) {
                                if (b >= 0) throw std::runtime_error("boom");
                              }),
        std::runtime_error);
    // The pool survives a throwing region and keeps scheduling work.
    std::atomic<std::int64_t> covered{0};
    runtime::parallel_for(0, 64, 1, [&](std::int64_t b, std::int64_t e) {
      covered += e - b;
    });
    EXPECT_EQ(covered.load(), 64);
  }
}

TEST(ParallelFor, NestedRegionsRunSerially) {
  runtime::set_num_threads(4);
  std::atomic<std::int64_t> total{0};
  runtime::parallel_for(0, 8, 1, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      // Inner call must not deadlock waiting for pool lanes held by outers.
      runtime::parallel_for(0, 10, 1, [&](std::int64_t ib, std::int64_t ie) {
        total += ie - ib;
      });
    }
  });
  EXPECT_EQ(total.load(), 80);
}

TEST(ParallelReduce, MatchesSerialSum) {
  runtime::set_num_threads(4);
  std::vector<double> v(10000);
  std::iota(v.begin(), v.end(), 1.0);
  const double got = runtime::parallel_reduce(
      0, static_cast<std::int64_t>(v.size()), 128, 0.0,
      [&](std::int64_t b, std::int64_t e) {
        double s = 0.0;
        for (std::int64_t i = b; i < e; ++i) s += v[static_cast<std::size_t>(i)];
        return s;
      },
      [](double a, double b) { return a + b; });
  EXPECT_DOUBLE_EQ(got, 10000.0 * 10001.0 / 2.0);
}

TEST(ParallelReduce, BitIdenticalAcrossThreadCounts) {
  Rng rng(7);
  const Tensor a = randn({257, 129}, rng);
  runtime::set_num_threads(1);
  const float serial = dot(a, a);
  runtime::set_num_threads(4);
  const float parallel = dot(a, a);
  EXPECT_EQ(serial, parallel);  // exact: chunking depends on grain only
}

TEST(Determinism, MatmulBitIdenticalAcrossThreadCounts) {
  Rng rng(11);
  const Tensor a = randn({97, 64}, rng);
  const Tensor b = randn({64, 83}, rng);
  const Tensor at = randn({64, 97}, rng);  // matmul_tn input: (k, m)
  const Tensor bt = randn({83, 64}, rng);  // matmul_nt input: (n, k)
  runtime::set_num_threads(1);
  const Tensor c1 = matmul(a, b);
  const Tensor t1 = matmul_tn(at, b);
  const Tensor n1 = matmul_nt(a, bt);
  runtime::set_num_threads(4);
  const Tensor c4 = matmul(a, b);
  const Tensor t4 = matmul_tn(at, b);
  const Tensor n4 = matmul_nt(a, bt);
  for (std::int64_t i = 0; i < c1.numel(); ++i) EXPECT_EQ(c1[i], c4[i]);
  for (std::int64_t i = 0; i < t1.numel(); ++i) EXPECT_EQ(t1[i], t4[i]);
  for (std::int64_t i = 0; i < n1.numel(); ++i) EXPECT_EQ(n1[i], n4[i]);
}

TEST(Determinism, HsicBitIdenticalAcrossThreadCounts) {
  Rng rng(13);
  const Tensor x = randn({100, 32}, rng);
  const Tensor y = randn({100, 10}, rng);
  runtime::set_num_threads(1);
  const float h1 = mi::hsic_gaussian(x, y);
  runtime::set_num_threads(4);
  const float h4 = mi::hsic_gaussian(x, y);
  EXPECT_EQ(h1, h4);
}

TEST(Determinism, ElementwiseBitIdenticalAcrossThreadCounts) {
  Rng rng(17);
  const Tensor a = rand_uniform({33000}, rng, -4.0f, 4.0f);
  runtime::set_num_threads(1);
  const Tensor e1 = ibrar::exp(a);
  runtime::set_num_threads(4);
  const Tensor e4 = ibrar::exp(a);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(e1[i], e4[i]);
}

}  // namespace
}  // namespace ibrar
