// Utilities: RNG determinism/forking, env parsing, table formatting,
// serialization format, stopwatch.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "autograd/var.hpp"
#include "models/registry.hpp"
#include "nn/module.hpp"
#include "tensor/random.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace ibrar {
namespace {

TEST(RngTest, DeterministicStreams) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FLOAT_EQ(a.uniform(), b.uniform());
  }
}

TEST(RngTest, SeedResetsStream) {
  Rng a(1);
  const float first = a.uniform();
  a.uniform();
  a.seed(1);
  EXPECT_FLOAT_EQ(a.uniform(), first);
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(-2.0f, 3.0f);
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 3.0f);
  }
}

TEST(RngTest, RandintInclusive) {
  Rng rng(8);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.randint(-1, 1);
    EXPECT_GE(v, -1);
    EXPECT_LE(v, 1);
    saw_lo = saw_lo || v == -1;
    saw_hi = saw_hi || v == 1;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMoments) {
  Rng rng(9);
  double s = 0, s2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(1.0f, 2.0f);
    s += v;
    s2 += v * v;
  }
  EXPECT_NEAR(s / n, 1.0, 0.1);
  EXPECT_NEAR(s2 / n - (s / n) * (s / n), 4.0, 0.3);
}

TEST(RngTest, PermutationIsBijection) {
  Rng rng(10);
  const auto p = rng.permutation(50);
  std::vector<bool> seen(50, false);
  for (const auto v : p) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 50);
    EXPECT_FALSE(seen[static_cast<std::size_t>(v)]);
    seen[static_cast<std::size_t>(v)] = true;
  }
}

TEST(RngTest, ForkedStreamsDiffer) {
  Rng parent(11);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  bool differs = false;
  for (int i = 0; i < 10; ++i) {
    differs = differs || c1.uniform() != c2.uniform();
  }
  EXPECT_TRUE(differs);
}

TEST(EnvTest, TypedGettersWithFallback) {
  unsetenv("IBRAR_TEST_ENV");
  EXPECT_EQ(env::get_int("IBRAR_TEST_ENV", 7), 7);
  EXPECT_DOUBLE_EQ(env::get_double("IBRAR_TEST_ENV", 1.5), 1.5);
  EXPECT_EQ(env::get_string("IBRAR_TEST_ENV", "x"), "x");
  setenv("IBRAR_TEST_ENV", "42", 1);
  EXPECT_EQ(env::get_int("IBRAR_TEST_ENV", 7), 42);
  setenv("IBRAR_TEST_ENV", "not_a_number", 1);
  EXPECT_EQ(env::get_int("IBRAR_TEST_ENV", 7), 7);
  unsetenv("IBRAR_TEST_ENV");
}

TEST(EnvTest, ScaledIntRespectsOverride) {
  setenv("IBRAR_TEST_SCALED", "99", 1);
  EXPECT_EQ(env::scaled_int("IBRAR_TEST_SCALED", 1, 2), 99);
  unsetenv("IBRAR_TEST_SCALED");
  const long v = env::scaled_int("IBRAR_TEST_SCALED", 1, 2);
  EXPECT_TRUE(v == 1 || v == 2);
}

TEST(TableTest, AlignsColumns) {
  Table t({"a", "long_header"});
  t.add_row({"xx", "1"});
  t.add_row({"y", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| a  | long_header |"), std::string::npos);
  EXPECT_NE(s.find("| xx | 1           |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 2u);
}

TEST(TableTest, NumberFormatters) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::vs_paper(12.3, 45.6, 1), "12.3 (paper 45.6)");
}

TEST(TableTest, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| 1 |"), std::string::npos);
}

TEST(SerializeTest, RoundTrip) {
  const std::string path = "/tmp/ibrar_test_serialize.bin";
  std::vector<serialize::NamedBlob> blobs = {
      {"w", {2, 3}, {1, 2, 3, 4, 5, 6}},
      {"b", {3}, {0.5f, -0.5f, 0.0f}},
  };
  serialize::save(path, blobs);
  const auto loaded = serialize::load(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].name, "w");
  EXPECT_EQ(loaded[0].shape, (std::vector<std::int64_t>{2, 3}));
  EXPECT_EQ(loaded[0].data, blobs[0].data);
  EXPECT_EQ(loaded[1].name, "b");
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsCorruptMagic) {
  const std::string path = "/tmp/ibrar_test_corrupt.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("garbage-not-a-checkpoint", f);
  std::fclose(f);
  EXPECT_THROW(serialize::load(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileThrows) {
  EXPECT_THROW(serialize::load("/tmp/ibrar_does_not_exist.bin"),
               std::runtime_error);
}

TEST(SerializeTest, MiniVGGCheckpointRoundTripBitIdenticalLogits) {
  // Save a MiniVGG, load it into a model built from a DIFFERENT seed, and
  // require the restored logits to match the original bit for bit — the
  // checkpoint must capture every parameter AND buffer (batch-norm running
  // stats) exactly.
  const std::string path = "/tmp/ibrar_test_vgg_roundtrip.ibrr";
  models::ModelSpec spec;
  spec.name = "vgg16";
  spec.image_size = 8;

  Rng rng(123);
  auto model = models::make_model(spec, rng);
  model->set_training(false);
  Rng drng(9);
  const Tensor x = rand_uniform({3, 3, 8, 8}, drng);
  ag::NoGradGuard ng;
  const Tensor logits = model->forward(ag::Var::constant(x)).value();
  nn::save_model(*model, path);

  Rng other_rng(999);  // different init: any leaked state would show up
  auto restored = models::make_model(spec, other_rng);
  restored->set_training(false);
  nn::load_model(*restored, path);
  const Tensor logits2 = restored->forward(ag::Var::constant(x)).value();
  std::remove(path.c_str());

  ASSERT_TRUE(logits2.same_shape(logits));
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    EXPECT_EQ(logits[i], logits2[i]) << "logit " << i;  // exact, not NEAR
  }
}

TEST(SerializeTest, LoadRejectsShapeMismatch) {
  // A checkpoint from a structurally different model must be refused, not
  // silently truncated.
  const std::string path = "/tmp/ibrar_test_vgg_mismatch.ibrr";
  models::ModelSpec small;
  small.name = "mlp";
  Rng rng(5);
  auto mlp = models::make_model(small, rng);
  nn::save_model(*mlp, path);

  models::ModelSpec big;
  big.name = "vgg16";
  big.image_size = 8;
  Rng rng2(6);
  auto vgg = models::make_model(big, rng2);
  EXPECT_THROW(nn::load_model(*vgg, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch sw;
  double x = 0;
  for (int i = 0; i < 1000000; ++i) x += i;
  
  EXPECT_GT(sw.seconds(), 0.0);
  const double t = sw.reset();
  EXPECT_GT(t, 0.0);
  EXPECT_LT(sw.seconds(), t + 1.0);
  (void)x;
}

}  // namespace
}  // namespace ibrar
