// Property/invariant sweep for the rebuilt MI core: the symmetric blocked
// Gram driver, the fused-centering HSIC (plain + differentiable), CKA, and
// the streaming estimators. Complements tests/test_mi.cpp, which covers the
// estimators' statistical behavior.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "autograd/gradcheck.hpp"
#include "mi/binned_mi.hpp"
#include "mi/channel_score.hpp"
#include "mi/hsic.hpp"
#include "mi/streaming.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace ibrar::mi {
namespace {

/// O(n^2 d) reference Gram: per-pair distance accumulated in double.
Tensor naive_gram_gaussian(const Tensor& x, float sigma) {
  const auto n = x.dim(0);
  const auto d = x.dim(1);
  const float scale = -1.0f / (2.0f * sigma * sigma);
  Tensor k({n, n});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::int64_t t = 0; t < d; ++t) {
        const double diff = static_cast<double>(x.at(i, t)) - x.at(j, t);
        s += diff * diff;
      }
      k.at(i, j) = std::exp(static_cast<float>(s) * scale);
    }
  }
  return k;
}

/// Reference HSIC with an explicit H and double-precision trace.
double explicit_center_hsic(const Tensor& kx, const Tensor& ky) {
  const auto m = kx.dim(0);
  std::vector<double> h(static_cast<std::size_t>(m * m));
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < m; ++j) {
      h[static_cast<std::size_t>(i * m + j)] =
          (i == j ? 1.0 : 0.0) - 1.0 / static_cast<double>(m);
    }
  }
  std::vector<double> hk(static_cast<std::size_t>(m * m), 0.0);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t p = 0; p < m; ++p) {
      for (std::int64_t j = 0; j < m; ++j) {
        hk[static_cast<std::size_t>(i * m + j)] +=
            h[static_cast<std::size_t>(i * m + p)] * kx.at(p, j);
      }
    }
  }
  std::vector<double> hkh(static_cast<std::size_t>(m * m), 0.0);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t p = 0; p < m; ++p) {
      for (std::int64_t j = 0; j < m; ++j) {
        hkh[static_cast<std::size_t>(i * m + j)] +=
            hk[static_cast<std::size_t>(i * m + p)] *
            h[static_cast<std::size_t>(p * m + j)];
      }
    }
  }
  double tr = 0.0;
  for (std::int64_t i = 0; i < m * m; ++i) {
    tr += hkh[static_cast<std::size_t>(i)] * ky[i];
  }
  return tr / (static_cast<double>(m - 1) * static_cast<double>(m - 1));
}

TEST(MatmulNtSym, BitIdenticalToMatmulNtAtRaggedSizes) {
  const std::int64_t shapes[][2] = {{1, 3},   {2, 1},   {3, 5},    {5, 17},
                                    {17, 33}, {33, 64}, {64, 130}, {127, 63},
                                    {129, 257}, {200, 40}};
  for (const auto& s : shapes) {
    Rng rng(static_cast<std::uint64_t>(s[0] * 131 + s[1]));
    const Tensor x = randn({s[0], s[1]}, rng);
    const Tensor ref = matmul_nt(x, x);
    const Tensor sym = matmul_nt_sym(x);
    ASSERT_TRUE(ref.same_shape(sym));
    EXPECT_EQ(std::memcmp(ref.data().data(), sym.data().data(),
                          sizeof(float) * static_cast<std::size_t>(ref.numel())),
              0)
        << "shape " << s[0] << "x" << s[1];
  }
}

TEST(MatmulNtSym, ThreadCountBitIdentical) {
  Rng rng(7);
  const Tensor x = randn({150, 70}, rng);
  runtime::set_num_threads(1);
  const Tensor one = matmul_nt_sym(x);
  runtime::set_num_threads(4);
  const Tensor four = matmul_nt_sym(x);
  runtime::set_num_threads(0);  // restore auto
  EXPECT_EQ(std::memcmp(one.data().data(), four.data().data(),
                        sizeof(float) * static_cast<std::size_t>(one.numel())),
            0);
}

TEST(GramBlocked, MatchesNaiveReferenceAtRaggedSizes) {
  const std::int64_t shapes[][2] = {{2, 1},  {3, 7},   {5, 64},
                                    {33, 9}, {65, 33}, {130, 257}};
  for (const auto& s : shapes) {
    Rng rng(static_cast<std::uint64_t>(s[0] * 17 + s[1]));
    const Tensor x = randn({s[0], s[1]}, rng);
    const float sigma = scaled_sigma(s[1]);
    const Tensor ref = naive_gram_gaussian(x, sigma);
    const Tensor got = gram_gaussian(x, sigma);
    for (std::int64_t i = 0; i < ref.numel(); ++i) {
      EXPECT_NEAR(got[i], ref[i], 1e-4f) << "shape " << s[0] << "x" << s[1]
                                         << " elem " << i;
    }
  }
}

TEST(GramBlocked, ThreadCountBitIdentical) {
  Rng rng(9);
  const Tensor x = randn({170, 90}, rng);
  runtime::set_num_threads(1);
  const Tensor one = gram_gaussian(x, 5.0f);
  runtime::set_num_threads(4);
  const Tensor four = gram_gaussian(x, 5.0f);
  runtime::set_num_threads(0);
  EXPECT_EQ(std::memcmp(one.data().data(), four.data().data(),
                        sizeof(float) * static_cast<std::size_t>(one.numel())),
            0);
}

TEST(HsicFused, MatchesExplicitCenterReference) {
  Rng rng(11);
  for (const std::int64_t m : {2, 3, 17, 60}) {
    const Tensor x = randn({m, 6}, rng);
    const Tensor y = randn({m, 4}, rng);
    const Tensor kx = gram_gaussian(x, 2.0f);
    const Tensor ky = gram_gaussian(y, 2.0f);
    const double ref = explicit_center_hsic(kx, ky);
    const float got = hsic(kx, ky);
    EXPECT_NEAR(got, ref, std::max(1e-4 * std::fabs(ref), 1e-7)) << "m=" << m;
  }
}

TEST(HsicFused, SymmetricInArguments) {
  Rng rng(12);
  const Tensor kx = gram_gaussian(randn({40, 3}, rng), 2.0f);
  const Tensor ky = gram_gaussian(randn({40, 5}, rng), 2.0f);
  EXPECT_NEAR(hsic(kx, ky), hsic(ky, kx), 1e-7);
}

TEST(HsicFused, ShiftInvarianceOfGaussianKernel) {
  // The Gaussian kernel sees only pairwise distances, so a constant feature
  // shift must not move HSIC (beyond float rounding in the Gram identity).
  Rng rng(13);
  const Tensor x = randn({60, 8}, rng);
  const Tensor y = randn({60, 5}, rng);
  Tensor x_shift = x;
  for (std::int64_t i = 0; i < x_shift.numel(); ++i) x_shift[i] += 3.0f;
  const float base = hsic_gaussian(x, y, 2.0f, 2.0f);
  const float shifted = hsic_gaussian(x_shift, y, 2.0f, 2.0f);
  EXPECT_NEAR(shifted, base, std::max(1e-4f * std::fabs(base), 1e-7f));
}

TEST(HsicFused, GradcheckOnGramInputs) {
  // The closed-form backward (g * H K H from row/col/grand sums) against
  // numeric differentiation, perturbing Gram entries directly (including
  // asymmetric perturbations — the formula never assumes symmetry).
  Rng rng(14);
  const Tensor kx = gram_gaussian(randn({7, 3}, rng), 1.0f);
  const Tensor ky = gram_gaussian(randn({7, 2}, rng), 1.0f);
  auto fn = [&](const std::vector<ag::Var>& in) {
    return hsic(in[0], in[1]);
  };
  const auto r =
      ag::gradcheck(fn, {ag::Var::param(kx), ag::Var::param(ky)}, 1e-3, 5e-2);
  EXPECT_TRUE(r.ok) << r.max_rel_err;
}

TEST(Cka, BoundsAndSelfSimilarity) {
  Rng rng(15);
  for (int trial = 0; trial < 5; ++trial) {
    const Tensor x = randn({25, 4}, rng);
    const Tensor y = randn({25, 6}, rng);
    const float c = cka(x, y);
    EXPECT_GE(c, -1e-4f);
    EXPECT_LE(c, 1.0f + 1e-4f);
    EXPECT_NEAR(cka(x, x), 1.0f, 1e-4f);
  }
}

TEST(StreamingHsic, SingleChunkEqualsBatch) {
  Rng rng(16);
  const Tensor x = randn({48, 6}, rng);
  const Tensor y = randn({48, 3}, rng);
  StreamingHsic acc(2.0f, 2.0f);
  acc.add(x, y);
  EXPECT_EQ(acc.chunks(), 1);
  EXPECT_EQ(acc.samples(), 48);
  EXPECT_FLOAT_EQ(static_cast<float>(acc.value()),
                  hsic_gaussian(x, y, 2.0f, 2.0f));
  EXPECT_FLOAT_EQ(static_cast<float>(hsic_gaussian_chunked(x, y, 0, 2.0f, 2.0f)),
                  hsic_gaussian(x, y, 2.0f, 2.0f));
}

TEST(StreamingHsic, ChunkedAgreesWithBatchOnDependentData) {
  // Chunked and batch are both biased estimators of the same population
  // quantity; on strongly dependent iid rows they must land close.
  Rng rng(17);
  const std::int64_t n = 240;
  const Tensor x = randn({n, 8}, rng);
  Tensor y({n, 8});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < 8; ++j) y.at(i, j) = 0.5f * x.at(i, j);
  }
  const double batch = hsic_gaussian(x, y, 3.0f, 3.0f);
  const double chunked = hsic_gaussian_chunked(x, y, 60, 3.0f, 3.0f);
  ASSERT_GT(batch, 0.0);
  EXPECT_NEAR(chunked, batch, 0.5 * batch);
}

TEST(StreamingHsic, RejectsBadChunks) {
  Rng rng(18);
  StreamingHsic acc;
  EXPECT_THROW(acc.add(randn({4, 2}, rng), randn({5, 2}, rng)),
               std::invalid_argument);
  EXPECT_THROW(acc.add(randn({1, 2}, rng), randn({1, 2}, rng)),
               std::invalid_argument);
  EXPECT_EQ(acc.value(), 0.0);
}

TEST(StreamingBinnedMi, ChunkedIsExactlyBatchWithPinnedRange) {
  Rng rng(19);
  const std::int64_t n = 90;
  const Tensor t = rand_uniform({n, 3}, rng);
  std::vector<std::int64_t> labels(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) labels[static_cast<std::size_t>(i)] = i % 4;
  const auto batch = binned_mi(t, labels, 4, 12, 0.0f, 1.0f);

  StreamingBinnedMi acc(4, 12, 0.0f, 1.0f);
  // Ragged chunking: 90 = 31 + 31 + 28.
  for (std::int64_t b = 0; b < n; b += 31) {
    const std::int64_t e = std::min<std::int64_t>(n, b + 31);
    Tensor chunk({e - b, 3});
    std::vector<std::int64_t> chunk_labels;
    for (std::int64_t i = b; i < e; ++i) {
      for (std::int64_t j = 0; j < 3; ++j) chunk.at(i - b, j) = t.at(i, j);
      chunk_labels.push_back(labels[static_cast<std::size_t>(i)]);
    }
    acc.add(chunk, chunk_labels);
  }
  const auto streamed = acc.value();
  EXPECT_DOUBLE_EQ(streamed.i_xt, batch.i_xt);
  EXPECT_DOUBLE_EQ(streamed.i_ty, batch.i_ty);
  EXPECT_EQ(acc.samples(), n);
}

TEST(StreamingBinnedMi, AutoRangeOverloadUnchanged) {
  // The two-arg batch form must keep its empirical-range behavior.
  const std::int64_t n = 32;
  Tensor t({n, 1});
  std::vector<std::int64_t> y(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    y[static_cast<std::size_t>(i)] = i % 2;
    t.at(i, 0) = static_cast<float>(i % 2);
  }
  const auto p = binned_mi(t, y, 2, 10);
  EXPECT_NEAR(p.i_xt, 1.0, 1e-6);
  EXPECT_NEAR(p.i_ty, 1.0, 1e-6);
}

// ---- median_sigma (sampled vs exact) ---------------------------------------

TEST(MedianSigma, ExactPathBelowPairThreshold) {
  // Up to kMedianSigmaExactPairs pairs, median_sigma IS the exact median —
  // no sampling, bitwise the same as the reference path.
  Rng rng(3);
  const Tensor x = rand_uniform({64, 8}, rng, -1.0f, 1.0f);  // 2016 pairs
  EXPECT_EQ(median_sigma(x), median_sigma_exact(x));
}

TEST(MedianSigma, SampledEstimateWithinToleranceOfExact) {
  // Above the threshold the sampled median must track the exact one. 200
  // rows = 19900 pairs, well past kMedianSigmaExactPairs.
  Rng rng(11);
  const Tensor x = randn({200, 16}, rng);
  const float exact = median_sigma_exact(x);
  const float sampled = median_sigma(x);
  ASSERT_GT(exact, 0.0f);
  EXPECT_NEAR(sampled / exact, 1.0f, 0.1f);
  // Deterministic: the subsample is a fixed-seed function of the input.
  EXPECT_EQ(sampled, median_sigma(x));
}

// ---- channel_label_scores (parallel per-channel loop) ----------------------

TEST(ChannelScores, BitIdenticalAcrossLaneCounts) {
  Rng rng(21);
  const Tensor feats = randn({24, 6, 4, 4}, rng);
  std::vector<std::int64_t> labels(24);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<std::int64_t>(i) % 3;
  }
  runtime::set_num_threads(1);
  const auto s1 = channel_label_scores(feats, labels, 3);
  runtime::set_num_threads(4);
  const auto s4 = channel_label_scores(feats, labels, 3);
  runtime::set_num_threads(0);
  ASSERT_EQ(s1.size(), s4.size());
  for (std::size_t c = 0; c < s1.size(); ++c) {
    EXPECT_EQ(s1[c], s4[c]) << "channel " << c;  // exact bits, not tolerance
  }
}

TEST(ChannelScores, NcFeaturesAndMaskContractUnchanged) {
  // Rank-2 features keep working after the parallel rewrite, and the Eq. (3)
  // mask still drops the lowest-scoring channels only.
  Rng rng(31);
  Tensor feats = randn({20, 5}, rng);
  std::vector<std::int64_t> labels(20);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<std::int64_t>(i) % 2;
  }
  const auto scores = channel_label_scores(feats, labels, 2);
  ASSERT_EQ(scores.size(), 5u);
  const Tensor mask = mask_from_scores(scores, 0.2f);
  std::int64_t kept = 0;
  for (std::int64_t c = 0; c < 5; ++c) kept += mask[c] == 1.0f ? 1 : 0;
  EXPECT_EQ(kept, 4);  // exactly one channel dropped at 20%
}

}  // namespace
}  // namespace ibrar::mi
