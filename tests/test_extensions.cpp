// Extension features beyond the paper's evaluated battery: MI-FGSM, the
// black-box Square attack (gradient-masking control), and the shared-feature
// distillation pipeline the paper proposes as future work.

#include <gtest/gtest.h>

#include <cmath>

#include "attacks/mifgsm.hpp"
#include "attacks/pgd.hpp"
#include "attacks/square.hpp"
#include "core/shared_features.hpp"
#include "data/registry.hpp"
#include "ibrar.hpp"  // umbrella header must compile standalone
#include "models/registry.hpp"
#include "train/evaluate.hpp"
#include "train/trainer.hpp"

namespace ibrar {
namespace {

struct Setup {
  data::SyntheticData data = data::make_dataset("synth-cifar10", 400, 150);
  models::TapClassifierPtr model;

  Setup() {
    Rng rng(3);
    models::ModelSpec spec;
    spec.name = "vgg16";
    model = models::make_model(spec, rng);
    train::TrainConfig tc;
    tc.epochs = 4;
    tc.batch_size = 100;
    train::Trainer(model, std::make_shared<train::CEObjective>(), tc)
        .fit(data.train);
  }
};

Setup& setup() {
  static Setup s;
  return s;
}

data::Batch probe_batch(std::int64_t n = 60) {
  std::vector<std::int64_t> idx(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) idx[static_cast<std::size_t>(i)] = i;
  return data::make_batch(setup().data.test, idx);
}

void expect_in_ball(const Tensor& adv, const Tensor& x, float eps) {
  for (std::int64_t i = 0; i < adv.numel(); ++i) {
    EXPECT_LE(std::fabs(adv[i] - x[i]), eps + 1e-5);
    EXPECT_GE(adv[i], 0.0f);
    EXPECT_LE(adv[i], 1.0f);
  }
}

TEST(MIFGSMTest, StaysInBallAndAttacks) {
  auto b = probe_batch();
  attacks::AttackConfig cfg;
  cfg.steps = 10;
  attacks::MIFGSM atk(cfg);
  const Tensor adv = atk.perturb(*setup().model, b.x, b.y);
  expect_in_ball(adv, b.x, cfg.eps);
  EXPECT_LT(attacks::accuracy(*setup().model, adv, b.y),
            attacks::accuracy(*setup().model, b.x, b.y));
  EXPECT_EQ(atk.name(), "MIFGSM10");
}

TEST(MIFGSMTest, ComparableToNIFGSMFamily) {
  auto b = probe_batch();
  attacks::AttackConfig cfg;
  cfg.steps = 10;
  attacks::MIFGSM mi_atk(cfg);
  attacks::PGD pgd(cfg);
  const double mi_acc = attacks::accuracy(
      *setup().model, mi_atk.perturb(*setup().model, b.x, b.y), b.y);
  const double pgd_acc = attacks::accuracy(
      *setup().model, pgd.perturb(*setup().model, b.x, b.y), b.y);
  // Momentum FGSM should be in the same effectiveness league as PGD.
  EXPECT_LT(mi_acc, pgd_acc + 0.25);
}

TEST(SquareTest, BlackBoxStaysInBallAndAttacks) {
  auto b = probe_batch();
  attacks::AttackConfig cfg;
  cfg.steps = 150;  // queries
  attacks::SquareAttack atk(cfg);
  const Tensor adv = atk.perturb(*setup().model, b.x, b.y);
  expect_in_ball(adv, b.x, cfg.eps);
  EXPECT_LT(attacks::accuracy(*setup().model, adv, b.y),
            attacks::accuracy(*setup().model, b.x, b.y));
}

TEST(SquareTest, MoreQueriesNoWeaker) {
  auto b = probe_batch(40);
  attacks::AttackConfig c1;
  c1.steps = 30;
  c1.seed = 5;
  attacks::AttackConfig c2 = c1;
  c2.steps = 200;
  attacks::SquareAttack a1(c1), a2(c2);
  const double acc1 = attacks::accuracy(
      *setup().model, a1.perturb(*setup().model, b.x, b.y), b.y);
  const double acc2 = attacks::accuracy(
      *setup().model, a2.perturb(*setup().model, b.x, b.y), b.y);
  EXPECT_LE(acc2, acc1 + 0.08);
}

TEST(SquareTest, NoGradientMaskingInIBRAR) {
  // The gradient-masking control the Square attack exists for: a defense
  // whose white-box (PGD) accuracy vastly exceeds its black-box (Square)
  // accuracy is obfuscating gradients. IB-RAR should not show that pattern:
  // PGD must be at least as strong as (or close to) Square.
  auto b = probe_batch();
  attacks::AttackConfig pc;
  pc.steps = 10;
  attacks::PGD pgd(pc);
  attacks::AttackConfig sc;
  sc.steps = 200;
  attacks::SquareAttack square(sc);
  const double pgd_acc = attacks::accuracy(
      *setup().model, pgd.perturb(*setup().model, b.x, b.y), b.y);
  const double square_acc = attacks::accuracy(
      *setup().model, square.perturb(*setup().model, b.x, b.y), b.y);
  EXPECT_LE(pgd_acc, square_acc + 0.10);
}

TEST(SharedFeatures, PlantedPairsRankMostSimilar) {
  const auto report = core::analyze_shared_features(*setup().model,
                                                    setup().data.train);
  ASSERT_FALSE(report.ranked_pairs.empty());
  // The generator plants car<->truck (1,9), cat<->dog (3,5), bird<->deer
  // (2,4), plane<->ship (0,8), deer<->horse (4,7), cat<->frog (3,6). At
  // least two of the top-4 ranked pairs should be planted ones.
  const std::vector<std::pair<std::int64_t, std::int64_t>> planted = {
      {1, 9}, {3, 5}, {2, 4}, {0, 8}, {4, 7}, {3, 6}};
  // Statistical form of the claim (robust at miniature training scale): the
  // planted pairs' mean similarity exceeds the non-planted pairs' mean.
  auto is_planted = [&](std::int64_t a, std::int64_t b) {
    for (const auto& q : planted) {
      if ((q.first == a && q.second == b) || (q.first == b && q.second == a)) {
        return true;
      }
    }
    return false;
  };
  double planted_sum = 0, other_sum = 0;
  int planted_n = 0, other_n = 0;
  const auto& sim = report.class_similarity;
  for (std::int64_t a = 0; a < sim.dim(0); ++a) {
    for (std::int64_t b = a + 1; b < sim.dim(1); ++b) {
      if (is_planted(a, b)) {
        planted_sum += sim.at(a, b);
        ++planted_n;
      } else {
        other_sum += sim.at(a, b);
        ++other_n;
      }
    }
  }
  EXPECT_GT(planted_sum / planted_n, other_sum / other_n);
}

TEST(SharedFeatures, SimilarityMatrixIsSymmetricWithUnitDiagonal) {
  const auto report = core::analyze_shared_features(*setup().model,
                                                    setup().data.train);
  const auto& s = report.class_similarity;
  for (std::int64_t a = 0; a < s.dim(0); ++a) {
    EXPECT_NEAR(s.at(a, a), 1.0f, 1e-4);
    for (std::int64_t b = 0; b < s.dim(1); ++b) {
      EXPECT_NEAR(s.at(a, b), s.at(b, a), 1e-5);
      EXPECT_LE(std::fabs(s.at(a, b)), 1.0f + 1e-5);
    }
  }
}

TEST(SharedFeatures, MaskDropsHighestSharedChannels) {
  const auto report = core::analyze_shared_features(*setup().model,
                                                    setup().data.train);
  const Tensor mask = core::shared_feature_mask(report, 0.25f);
  ASSERT_EQ(mask.numel(),
            static_cast<std::int64_t>(report.channel_shared_score.size()));
  float max_kept = -1e30f, min_dropped = 1e30f;
  for (std::int64_t i = 0; i < mask.numel(); ++i) {
    const float score = report.channel_shared_score[static_cast<std::size_t>(i)];
    if (mask[i] == 0.0f) {
      min_dropped = std::min(min_dropped, score);
    } else {
      max_kept = std::max(max_kept, score);
    }
  }
  // Dropped = highest shared scores.
  EXPECT_GE(min_dropped, max_kept - 1e-6f);
}

TEST(SharedFeatures, CombineMasksIsConjunction) {
  Tensor a({4}, {1, 0, 1, 1});
  Tensor b({4}, {1, 1, 0, 1});
  const Tensor c = core::combine_masks(a, b);
  EXPECT_FLOAT_EQ(c[0], 1);
  EXPECT_FLOAT_EQ(c[1], 0);
  EXPECT_FLOAT_EQ(c[2], 0);
  EXPECT_FLOAT_EQ(c[3], 1);
  // All-zero conjunction keeps one channel alive.
  Tensor z({2}, {1.0f, 0.0f});
  Tensor z2({2}, {0.0f, 1.0f});
  const Tensor kept = core::combine_masks(z, z2);
  EXPECT_FLOAT_EQ(kept[0] + kept[1], 1.0f);
  EXPECT_THROW(core::combine_masks(a, Tensor({3}, 1.0f)),
               std::invalid_argument);
}

TEST(SharedFeatures, MaskedModelStillClassifies) {
  // Applying the shared-feature mask must not collapse accuracy (the paper's
  // anticipated trade-off: discard shared features, keep enough information).
  auto& model = *setup().model;
  const double before = train::evaluate_clean(model, setup().data.test, 100);
  const auto report = core::analyze_shared_features(model, setup().data.train);
  model.set_channel_mask(core::shared_feature_mask(report, 0.10f));
  const double after = train::evaluate_clean(model, setup().data.test, 100);
  model.clear_channel_mask();
  EXPECT_GT(after, before - 0.25);
}

}  // namespace
}  // namespace ibrar
