// Continuous-telemetry tier: time-series ring exactness (including rate
// across the overwrite boundary), SLO burn-rate state transitions + episode
// monotonicity, registry retire/compact cardinality bounds, drift-detector
// control bands, the EWMA-vs-tumbling telemetry A/B (scripted clean -> PGD
// shift must flip drift within <= 3 windows; all-clean never does), and the
// read-only HTTP admin endpoint.

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "models/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "serve/model_registry.hpp"
#include "serve/net/admin.hpp"
#include "serve/server.hpp"
#include "serve/telemetry.hpp"
#include "tensor/random.hpp"
#include "util/rng.hpp"

namespace ibrar {
namespace {

constexpr std::int64_t kSec = 1'000'000'000;

// ---- time-series store ------------------------------------------------------

TEST(TimeSeries, RingKeepsNewestAndCountsDrops) {
  obs::TimeSeriesConfig cfg;
  cfg.capacity = 4;
  obs::TimeSeriesStore store(cfg);
  for (int i = 0; i < 10; ++i) {
    store.append("r", i * kSec, static_cast<double>(i * 10));
  }
  // 10 appended into a 4-deep ring: the 6 oldest were overwritten, counted.
  EXPECT_EQ(store.dropped_samples(), 6u);
  const auto s = store.series("r");
  ASSERT_EQ(s.size(), 4u);
  // Oldest-first and exactly the newest four.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(s[static_cast<std::size_t>(i)].t_ns, (6 + i) * kSec);
    EXPECT_DOUBLE_EQ(s[static_cast<std::size_t>(i)].value, (6 + i) * 10.0);
  }
  EXPECT_DOUBLE_EQ(store.last("r"), 90.0);
  EXPECT_TRUE(store.series("unknown").empty());
}

TEST(TimeSeries, RateIsExactAcrossOverwriteBoundary) {
  obs::TimeSeriesConfig cfg;
  cfg.capacity = 4;
  obs::TimeSeriesStore store(cfg);
  // A counter climbing 10/s; the ring wraps (only t=6..9 survive).
  for (int i = 0; i < 10; ++i) {
    store.append("c", i * kSec, static_cast<double>(i * 10));
  }
  // A window wider than retained history: the base falls back to the oldest
  // SURVIVING sample, so the delta stays exact over the span actually used.
  EXPECT_DOUBLE_EQ(store.rate("c", 100 * kSec), 10.0);
  // A window inside the ring picks the right base sample (t=7).
  EXPECT_DOUBLE_EQ(store.rate("c", 2 * kSec), 10.0);
  // Fewer than two samples in any window -> 0.
  obs::TimeSeriesStore fresh(cfg);
  fresh.append("c", 0, 5.0);
  EXPECT_DOUBLE_EQ(fresh.rate("c", 100 * kSec), 0.0);
  EXPECT_DOUBLE_EQ(fresh.rate("unknown", kSec), 0.0);
}

TEST(TimeSeries, SampleNowDerivesSeriesFromEveryMetricKind) {
  obs::MetricsRegistry reg;
  reg.counter("t.c").inc(5);
  reg.gauge("t.g").set(2.5);
  for (int i = 1; i <= 100; ++i) {
    reg.histogram("t.h").observe(static_cast<double>(i));
  }
  obs::TimeSeriesStore store;
  store.sample_now(reg, 1 * kSec);
  reg.counter("t.c").inc(3);
  store.sample_now(reg, 2 * kSec);

  const auto c = store.series("t.c");
  ASSERT_EQ(c.size(), 2u);
  EXPECT_DOUBLE_EQ(c[0].value, 5.0);
  EXPECT_DOUBLE_EQ(c[1].value, 8.0);
  EXPECT_DOUBLE_EQ(store.rate("t.c", 10 * kSec), 3.0);  // +3 over 1s
  EXPECT_DOUBLE_EQ(store.last("t.g"), 2.5);
  EXPECT_DOUBLE_EQ(store.last("t.h.count"), 100.0);
  EXPECT_DOUBLE_EQ(store.last("t.h.mean"), 50.5);
  // Percentile track brackets the true order statistic from above.
  const auto p99 = store.percentile_series("t.h", 0.99);
  ASSERT_EQ(p99.size(), 2u);
  EXPECT_GE(p99.back().value, 99.0);
  EXPECT_LE(p99.back().value, 99.0 * 1.1251);
  EXPECT_EQ(store.ticks(), 2u);
  const auto names = store.series_names();
  EXPECT_EQ(names.size(), store.series_count());
}

// ---- SLO state machine ------------------------------------------------------

TEST(Slo, BurnRateStatesEscalateMonotonicallyThenRecover) {
  obs::TimeSeriesConfig cfg;
  cfg.capacity = 128;
  obs::TimeSeriesStore store(cfg);

  obs::SloSpec spec;
  spec.name = "test_reject";
  spec.kind = obs::SloSpec::Kind::kRatio;
  spec.bad_series = {"bad"};
  spec.good_series = "good";
  spec.objective = 0.1;  // 10% bad-event budget
  spec.fast_window_ns = 5 * kSec;
  spec.slow_window_ns = 15 * kSec;
  spec.fast_burn = 2.0;
  spec.slow_burn = 1.0;
  obs::SloMonitor mon(spec);

  double bad = 0.0, good = 0.0;
  std::vector<obs::SloState> states;
  int tick = 0;
  auto run = [&](int n, double bad_per_s, double good_per_s) {
    for (int i = 0; i < n; ++i, ++tick) {
      bad += bad_per_s;
      good += good_per_s;
      store.append("bad", tick * kSec, bad);
      store.append("good", tick * kSec, good);
      states.push_back(mon.evaluate(store, tick * kSec));
    }
  };
  run(10, 0.0, 100.0);   // clean: ratio 0
  run(12, 15.0, 85.0);   // 15% sustained: slow burn 1.5 -> warning
  run(8, 50.0, 50.0);    // 50%: fast burn 5 >= 2, slow >= 1 -> breach
  run(30, 0.0, 100.0);   // recovery: windows drain back to ok

  // All three states were visited, in escalation order.
  auto first = [&](obs::SloState s) {
    for (std::size_t i = 0; i < states.size(); ++i) {
      if (states[i] == s) return static_cast<int>(i);
    }
    return -1;
  };
  const int w = first(obs::SloState::kWarning);
  const int b = first(obs::SloState::kBreach);
  ASSERT_GE(w, 10);
  ASSERT_GT(b, w);
  EXPECT_EQ(states.front(), obs::SloState::kOk);
  EXPECT_EQ(states.back(), obs::SloState::kOk);
  // Episode monotonicity: the state never de-escalates breach -> warning;
  // the only way down is a clean evaluation straight to ok.
  for (std::size_t i = 1; i < states.size(); ++i) {
    if (static_cast<int>(states[i]) < static_cast<int>(states[i - 1])) {
      EXPECT_EQ(states[i], obs::SloState::kOk)
          << "de-escalated to non-ok at tick " << i;
    }
  }
  const auto st = mon.status();
  EXPECT_EQ(st.name, "test_reject");
  EXPECT_GE(st.transitions, 3u);  // ok->warning->breach->ok at minimum
}

TEST(Slo, ValueBelowUsesWindowedMeanOfSeries) {
  obs::TimeSeriesStore store;
  obs::SloSpec spec;
  spec.name = "test_latency";
  spec.kind = obs::SloSpec::Kind::kValueBelow;
  spec.bad_series = {"lat.p99"};
  spec.objective = 100.0;
  spec.fast_window_ns = 5 * kSec;
  spec.slow_window_ns = 10 * kSec;
  spec.fast_burn = 2.0;
  spec.slow_burn = 1.0;
  obs::SloMonitor mon(spec);

  for (int i = 0; i < 12; ++i) store.append("lat.p99", i * kSec, 50.0);
  EXPECT_EQ(mon.evaluate(store, 11 * kSec), obs::SloState::kOk);
  for (int i = 12; i < 30; ++i) store.append("lat.p99", i * kSec, 400.0);
  EXPECT_EQ(mon.evaluate(store, 29 * kSec), obs::SloState::kBreach);
  const auto st = mon.status();
  EXPECT_GE(st.fast_burn_rate, 2.0);
  // The state gauge mirrors the machine.
  const auto snap = obs::registry().snapshot();
  EXPECT_DOUBLE_EQ(snap.gauges.at("obs.slo.test_latency.state"), 2.0);
}

TEST(Slo, RegistryIsIdempotentAndRendersJson) {
  obs::register_default_serve_slos();
  const std::size_t n = obs::slos().size();
  obs::register_default_serve_slos();  // second call adds nothing
  EXPECT_EQ(obs::slos().size(), n);
  EXPECT_GE(n, 3u);
  const std::string json = obs::slos().to_json();
  EXPECT_NE(json.find("\"slos\":["), std::string::npos);
  EXPECT_NE(json.find("serve_compute_p99"), std::string::npos);
  EXPECT_NE(json.find("\"state\":"), std::string::npos);
}

// ---- registry retire/compact ------------------------------------------------

TEST(MetricsRetire, ThousandSwapLoopKeepsRegistryBounded) {
  obs::MetricsRegistry reg;
  for (int v = 1; v <= 1000; ++v) {
    const std::string prefix = "serve.version." + std::to_string(v) + ".";
    reg.counter(prefix + "requests").inc(2);
    reg.counter(prefix + "compute_ns").inc(10);
    if (v > 1) {
      const std::string old =
          "serve.version." + std::to_string(v - 1) + ".";
      EXPECT_EQ(reg.retire_counters(old, "serve.version.retired."), 2u);
    }
  }
  reg.retire_counters("serve.version.1000.", "serve.version.retired.");
  // Live cardinality after 1000 generations: just the two aggregates.
  EXPECT_LE(reg.size(), 4u);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("serve.version.retired.requests"), 2000u);
  EXPECT_EQ(snap.counters.at("serve.version.retired.compute_ns"), 10000u);
  for (const auto& [name, v] : snap.counters) {
    if (name.rfind("serve.version.", 0) == 0) {
      EXPECT_EQ(name.rfind("serve.version.retired.", 0), 0u)
          << "unretired family survived: " << name;
    }
  }
}

TEST(MetricsRetire, StaleHandleStaysValidAndFoldGuardThrows) {
  obs::MetricsRegistry reg;
  obs::Counter& stale = reg.counter("fam.a.requests");
  stale.inc(7);
  EXPECT_EQ(reg.retire_counters("fam.a.", "fam.retired."), 1u);
  stale.inc(100);  // parked storage: no UAF; increment is simply dropped
  EXPECT_EQ(reg.snapshot().counters.at("fam.retired.requests"), 7u);
  // fold_prefix inside the retire range would re-fold its own output.
  EXPECT_THROW(reg.retire_counters("fam.", "fam.x."), std::invalid_argument);
  EXPECT_EQ(reg.retire_counters("", "x."), 0u);
}

// ---- drift detector ---------------------------------------------------------

TEST(Drift, ControlBandsFlipOnShiftAndClearOnReturn) {
  serve::DriftDetector d;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(d.observe(0.10 + 0.001 * (i % 3)), serve::DriftDetector::kStable);
  }
  EXPECT_NEAR(d.mean(), 0.10, 0.01);
  EXPECT_EQ(d.observe(0.90), serve::DriftDetector::kDrift);
  EXPECT_EQ(d.state(), serve::DriftDetector::kDrift);
  // A persistent shift stays flagged: the baseline does not learn it.
  EXPECT_EQ(d.observe(0.90), serve::DriftDetector::kDrift);
  EXPECT_NEAR(d.mean(), 0.10, 0.01);
  // Traffic returns in-band -> state clears.
  EXPECT_EQ(d.observe(0.10), serve::DriftDetector::kStable);
}

// ---- EWMA vs tumbling telemetry A/B -----------------------------------------

// Synthetic last-conv tap rows with a known channel structure:
//  * channels 0..7 carry the label (high HSIC -> robust set),
//  * channels 8..15 are near-silent noise (low HSIC -> suspicious set).
// Clean rows put their energy in the label-carrying channels; "PGD-shifted"
// rows dump it into the suspicious ones — exactly the signature the paper's
// Eq. (3) monitor is built to notice.
constexpr std::int64_t kChans = 16;
constexpr std::int64_t kSpatial = 4;

std::vector<float> clean_row(int i) {
  std::vector<float> row(static_cast<std::size_t>(kChans * kSpatial));
  const int y = i % 2;
  for (std::int64_t c = 0; c < kChans; ++c) {
    float v;
    if (c < 8) {
      v = (c % 2 == y) ? 1.0f : 0.1f;
    } else {
      v = 0.05f + 0.001f * static_cast<float>((i + c) % 3);
    }
    for (std::int64_t s = 0; s < kSpatial; ++s) {
      row[static_cast<std::size_t>(c * kSpatial + s)] = v;
    }
  }
  return row;
}

std::vector<float> adv_row(int i) {
  std::vector<float> row(static_cast<std::size_t>(kChans * kSpatial));
  for (std::int64_t c = 0; c < kChans; ++c) {
    const float v = c < 8 ? 0.1f : 1.0f + 0.001f * static_cast<float>(i % 3);
    for (std::int64_t s = 0; s < kSpatial; ++s) {
      row[static_cast<std::size_t>(c * kSpatial + s)] = v;
    }
  }
  return row;
}

/// Feed `windows` scoring windows of clean or adversarial rows; returns the
/// number of windows fed before drift flipped (or -1 if it never did).
int feed_windows(serve::RobustnessMonitor& mon, int windows, bool adv,
                 int* counter) {
  const std::int64_t w = mon.config().window;
  int flipped_at = -1;
  for (int win = 0; win < windows; ++win) {
    for (std::int64_t s = 0; s < w; ++s) {
      const int i = (*counter)++;
      const auto row = adv ? adv_row(i) : clean_row(i);
      mon.observe(row.data(), kChans, kSpatial, i % 2, 2);
    }
    if (flipped_at < 0 &&
        mon.drift_state() == serve::DriftDetector::kDrift) {
      flipped_at = win + 1;
    }
  }
  return flipped_at;
}

TEST(TelemetryDrift, CleanToPgdShiftFlipsWithinThreeWindowsCleanNever) {
  serve::TelemetryConfig base;
  base.sample_every = 1;
  base.window = 8;
  base.suspicious_fraction = 0.25f;

  for (const bool ewma : {true, false}) {
    serve::TelemetryConfig cfg = base;
    cfg.ewma = ewma;
    // A/B arm 1: scripted clean -> PGD-like shift.
    serve::RobustnessMonitor shifted(cfg);
    int idx = 0;
    ASSERT_EQ(feed_windows(shifted, 8, /*adv=*/false, &idx), -1)
        << "clean warmup must not trip drift (ewma=" << ewma << ")";
    const int flipped = feed_windows(shifted, 3, /*adv=*/true, &idx);
    EXPECT_GE(flipped, 1) << "shift never flipped drift (ewma=" << ewma << ")";
    EXPECT_LE(flipped, 3) << "drift too slow (ewma=" << ewma << ")";
    // (No assertion on the FINAL state: once the monitor re-scores on the
    // shifted traffic its suspicion normalizes against the new mask, and the
    // detector may legitimately clear — the alert is the transition.)

    // A/B arm 2: all-clean control traffic never flips.
    serve::RobustnessMonitor control(cfg);
    int cidx = 0;
    EXPECT_EQ(feed_windows(control, 16, /*adv=*/false, &cidx), -1)
        << "all-clean traffic flipped drift (ewma=" << ewma << ")";
    EXPECT_EQ(control.drift_state(), serve::DriftDetector::kStable);
  }
}

TEST(TelemetryDrift, EwmaBlendsScoresTumblingReplacesThem) {
  serve::TelemetryConfig cfg;
  cfg.sample_every = 1;
  cfg.window = 8;
  cfg.ewma = true;
  cfg.ewma_decay = 0.5f;
  serve::RobustnessMonitor ewma(cfg);
  cfg.ewma = false;
  serve::RobustnessMonitor tumbling(cfg);

  // Identical script through both monitors: clean epochs, then a shift.
  int ia = 0, ib = 0;
  feed_windows(ewma, 4, false, &ia);
  feed_windows(tumbling, 4, false, &ib);
  feed_windows(ewma, 2, true, &ia);
  feed_windows(tumbling, 2, true, &ib);

  const auto sa = ewma.channel_scores();
  const auto sb = tumbling.channel_scores();
  ASSERT_EQ(sa.size(), static_cast<std::size_t>(kChans));
  ASSERT_EQ(sb.size(), sa.size());
  // Tumbling forgot the clean epochs entirely; EWMA carries half of each
  // previous epoch, so the score vectors must have diverged.
  float max_diff = 0.0f;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(sa[i] - sb[i]));
  }
  EXPECT_GT(max_diff, 1e-6f);
  EXPECT_EQ(ewma.score_epoch(), tumbling.score_epoch());
}

// ---- server integration: hot-swap retires the old version family -----------

constexpr std::int64_t kSize = 4;
constexpr std::int64_t kChannels = 3;
constexpr std::int64_t kClasses = 5;

models::TapClassifierPtr tiny_model(std::uint64_t seed) {
  models::ModelSpec spec;
  spec.name = "mlp";
  spec.num_classes = kClasses;
  spec.image_size = kSize;
  spec.in_channels = kChannels;
  Rng rng(seed);
  return models::make_model(spec, rng);
}

Tensor sample_input(std::uint64_t seed) {
  Rng rng(seed);
  return rand_uniform({kChannels, kSize, kSize}, rng, 0.0f, 1.0f);
}

TEST(ServerRetire, HotSwapFoldsOldVersionCountersIntoRetired) {
  serve::ModelRegistry reg;
  reg.publish(tiny_model(1), {kChannels, kSize, kSize});
  serve::ServeConfig cfg;
  cfg.max_batch = 1;
  cfg.deadline_us = 0;
  cfg.queue_capacity = 16;
  serve::Server server(reg, cfg);
  for (int i = 0; i < 3; ++i) server.submit(sample_input(i)).get();
  reg.publish(tiny_model(2), {kChannels, kSize, kSize});
  for (int i = 0; i < 2; ++i) server.submit(sample_input(10 + i)).get();
  server.shutdown();

  const auto snap = obs::registry().snapshot();
  // v1's family was folded into the retired aggregates by the first batch
  // that saw v2; v2's family is live.
  EXPECT_EQ(snap.counters.count("serve.version.1.requests"), 0u);
  EXPECT_GE(snap.counters.at("serve.version.retired.requests"), 3u);
  EXPECT_GE(snap.counters.at("serve.version.2.requests"), 2u);
}

// ---- admin endpoint ---------------------------------------------------------

std::string http_get(std::uint16_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  const std::string req = "GET " + target + " HTTP/1.0\r\n\r\n";
  EXPECT_EQ(::write(fd, req.data(), req.size()),
            static_cast<ssize_t>(req.size()));
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof buf)) > 0) {
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(Admin, ServesMetricsSloAndTimeseriesReadOnly) {
  obs::registry().counter("admin.test.counter").inc(3);
  obs::timeseries().sample_now(obs::registry());
  obs::register_default_serve_slos();
  obs::slos().evaluate(obs::timeseries());

  serve::net::AdminEndpoint admin;  // port 0 -> kernel-assigned
  ASSERT_GT(admin.port(), 0);

  const std::string metrics = http_get(admin.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  // Names are sanitized into the Prometheus charset.
  EXPECT_NE(metrics.find("\nadmin_test_counter 3"), std::string::npos)
      << metrics.substr(0, 400);
  EXPECT_NE(metrics.find("# TYPE admin_test_counter counter"),
            std::string::npos);

  const std::string slo = http_get(admin.port(), "/slo");
  EXPECT_NE(slo.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(slo.find("\"slos\":["), std::string::npos);
  EXPECT_NE(slo.find("serve_reject_rate"), std::string::npos);

  const std::string listing = http_get(admin.port(), "/timeseries");
  EXPECT_NE(listing.find("\"series\":["), std::string::npos);
  const std::string ts =
      http_get(admin.port(), "/timeseries?name=admin.test.counter");
  EXPECT_NE(ts.find("\"name\":\"admin.test.counter\""), std::string::npos);
  EXPECT_NE(ts.find("\"samples\":[{"), std::string::npos);

  EXPECT_NE(http_get(admin.port(), "/bogus").find("HTTP/1.0 404"),
            std::string::npos);
  // Read-only contract: non-GET methods are refused at the door.
  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(admin.port());
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);
    const std::string req = "POST /metrics HTTP/1.0\r\n\r\n";
    ASSERT_EQ(::write(fd, req.data(), req.size()),
              static_cast<ssize_t>(req.size()));
    std::string out;
    char buf[512];
    ssize_t n;
    while ((n = ::read(fd, buf, sizeof buf)) > 0) {
      out.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    EXPECT_NE(out.find("HTTP/1.0 405"), std::string::npos);
  }
  admin.stop();
  admin.stop();  // idempotent
}

TEST(Admin, RenderHandlesUnknownSeriesGracefully) {
  const std::string resp =
      serve::net::render_admin_response("/timeseries?name=no.such.series");
  EXPECT_NE(resp.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(resp.find("\"samples\":[]"), std::string::npos);
}

}  // namespace
}  // namespace ibrar
