// Observability layer: sharded-metric exactness, histogram percentile
// bracketing vs a sorted reference, snapshot determinism, span
// nesting/sampling, the observation-never-changes-computation bit-identity
// contract, and the server's five-stage trace integration.
//
// Tracing and profiling flags are process-global; every test that flips one
// restores it through ObsStateGuard so test order never matters.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "models/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "serve/model_registry.hpp"
#include "serve/net/admin.hpp"
#include "serve/server.hpp"
#include "tensor/im2col.hpp"
#include "tensor/random.hpp"
#include "util/rng.hpp"

namespace ibrar {
namespace {

/// Restore global obs toggles (trace cadence, profiling flag, rings, sites)
/// on scope exit.
struct ObsStateGuard {
  ObsStateGuard()
      : saved_k_(obs::trace_sample_every()),
        saved_prof_(obs::profiling_enabled()) {}
  ~ObsStateGuard() {
    obs::set_trace_sample_every(saved_k_);
    obs::set_profiling_enabled(saved_prof_);
    obs::clear_trace();
    obs::reset_profile();
  }
  std::int64_t saved_k_;
  bool saved_prof_;
};

// ---- metrics ----------------------------------------------------------------

TEST(Metrics, ConcurrentCounterIncrementsSumExactly) {
  obs::Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Metrics, GaugeSetMaxIsMonotone) {
  obs::Gauge g;
  g.set(3.0);
  g.set_max(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.set_max(7.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
  g.set(2.0);  // plain set may lower
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST(Metrics, HistogramPercentilesBracketSortedReference) {
  // Log-uniform values across ~9 decades stress every bucket regime.
  obs::Histogram h;
  Rng rng(42);
  std::vector<double> vals;
  constexpr int kN = 20000;
  vals.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    const double u = static_cast<double>(rng.uniform());  // [0, 1)
    vals.push_back(std::pow(10.0, -2.0 + 9.0 * u));
  }
  for (double v : vals) h.observe(v);
  std::sort(vals.begin(), vals.end());

  const obs::HistogramSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.count, static_cast<std::uint64_t>(kN));
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::max<double>(1.0, std::ceil(q * kN)));
    const double truth = vals[rank - 1];
    const double est = snap.percentile(q);
    // Contract: estimate brackets the true order statistic from above,
    // within one sub-bucket (12.5% relative width; epsilon for fp slack).
    EXPECT_GE(est, truth) << "q=" << q;
    EXPECT_LE(est, truth * 1.1251) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(snap.max, vals.back());
  EXPECT_LE(snap.percentile(1.0), vals.back() * (1.0 + 1e-12));
}

TEST(Metrics, HistogramSnapshotIsDeterministicOnceQuiescent) {
  obs::Histogram h;
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&h, t] {
      for (int i = 0; i < 10000; ++i) {
        h.observe(static_cast<double>((t * 10000 + i) % 977 + 1));
      }
    });
  }
  for (auto& t : ts) t.join();
  const obs::HistogramSnapshot a = h.snapshot();
  const obs::HistogramSnapshot b = h.snapshot();  // merge-on-read, no writers
  EXPECT_EQ(a.count, 40000u);
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.sum, b.sum);
  EXPECT_DOUBLE_EQ(a.max, b.max);
  EXPECT_EQ(a.buckets, b.buckets);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t n : a.buckets) bucket_total += n;
  EXPECT_EQ(bucket_total, a.count);  // every observation lands in one bucket
}

TEST(Metrics, RegistryHandlesAreStableAndSnapshotSeesThem) {
  obs::MetricsRegistry reg;
  obs::Counter& c1 = reg.counter("test.requests");
  obs::Counter& c2 = reg.counter("test.requests");
  EXPECT_EQ(&c1, &c2);  // find-or-create returns the same metric
  c1.inc(5);
  reg.gauge("test.depth").set(3.0);
  reg.histogram("test.lat").observe(4.0);

  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.count("test.requests"), 1u);
  EXPECT_EQ(snap.counters.at("test.requests"), 5u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("test.depth"), 3.0);
  EXPECT_EQ(snap.histograms.at("test.lat").count, 1u);

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"test.requests\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.lat\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);  // one JSON object, one line
}

// ---- tracing ----------------------------------------------------------------

TEST(Trace, SamplingCadenceGatesByIndex) {
  ObsStateGuard guard;
  obs::set_trace_sample_every(0);
  EXPECT_FALSE(obs::trace_enabled());
  EXPECT_FALSE(obs::trace_should_sample(0));
  obs::set_trace_sample_every(3);
  EXPECT_TRUE(obs::trace_should_sample(0));
  EXPECT_FALSE(obs::trace_should_sample(1));
  EXPECT_FALSE(obs::trace_should_sample(2));
  EXPECT_TRUE(obs::trace_should_sample(3));
  EXPECT_TRUE(obs::trace_should_sample(6));
}

TEST(Trace, InactiveSpansRecordNothing) {
  ObsStateGuard guard;
  obs::set_trace_sample_every(0);
  obs::clear_trace();
  {
    obs::Span s("invisible");  // default active = trace_enabled() = false
  }
  EXPECT_TRUE(obs::trace_records().empty());
}

TEST(Trace, NestedSpansRecordOrderedTimestamps) {
  ObsStateGuard guard;
  obs::set_trace_sample_every(1);
  obs::clear_trace();
  {
    obs::Span outer("outer", true, 7);
    obs::Span inner("inner", true, 7);
  }  // inner destructs first, then outer
  const std::vector<obs::SpanRecord> recs = obs::trace_records();
  ASSERT_EQ(recs.size(), 2u);
  const obs::SpanRecord& inner = recs[0];  // recorded first
  const obs::SpanRecord& outer = recs[1];
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_LE(outer.begin_ns, inner.begin_ns);
  EXPECT_LE(inner.begin_ns, inner.end_ns);
  EXPECT_LE(inner.end_ns, outer.end_ns);
  EXPECT_EQ(inner.corr, 7u);
  EXPECT_EQ(inner.tid, outer.tid);
}

TEST(Trace, JsonIsChromeTraceShaped) {
  ObsStateGuard guard;
  obs::set_trace_sample_every(1);
  obs::clear_trace();
  obs::record_span("stage_a", 1000, 2500, 42);
  obs::record_span("stage_b", 2500, 3000, 42);
  const std::string json = obs::trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"stage_a\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"req\":42"), std::string::npos);

  const std::string path = "test_obs_trace.json";
  obs::dump_trace(path);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  EXPECT_GT(std::ftell(f), 0);
  std::fclose(f);
  std::remove(path.c_str());
}

// ---- profiling & the bit-identity contract ---------------------------------

TEST(Profile, DisabledScopeRecordsNothingEnabledAggregates) {
  ObsStateGuard guard;
  obs::reset_profile();
  obs::ProfileSite& site = obs::profile_site("test/obs_site");

  obs::set_profiling_enabled(false);
  {
    obs::ProfileScope s(site);
  }
  for (const auto& e : obs::profile_table()) {
    EXPECT_NE(e.name, "test/obs_site");
  }

  obs::set_profiling_enabled(true);
  for (int i = 0; i < 3; ++i) {
    obs::ProfileScope s(site);
  }
  bool found = false;
  for (const auto& e : obs::profile_table()) {
    if (e.name == "test/obs_site") {
      found = true;
      EXPECT_EQ(e.calls, 3u);
      EXPECT_GE(e.total_ns, 0);
    }
  }
  EXPECT_TRUE(found);
  obs::reset_profile();
  for (const auto& e : obs::profile_table()) {
    EXPECT_NE(e.name, "test/obs_site");
  }
}

TEST(Profile, Conv2dIsBitIdenticalWithProfilingOn) {
  ObsStateGuard guard;
  Rng rng(7);
  const Tensor x = randn({2, 3, 8, 8}, rng);
  const Tensor w = randn({4, 3, 3, 3}, rng);
  Conv2dSpec spec;

  obs::set_profiling_enabled(false);
  const Tensor off = conv2d(x, w, nullptr, spec);
  obs::set_profiling_enabled(true);
  const Tensor on = conv2d(x, w, nullptr, spec);

  ASSERT_TRUE(off.same_shape(on));
  EXPECT_EQ(std::memcmp(off.data().data(), on.data().data(),
                        sizeof(float) * static_cast<std::size_t>(off.numel())),
            0);
  // The profiled run attributed time to the instrumented kernels.
  std::set<std::string> names;
  for (const auto& e : obs::profile_table()) names.insert(e.name);
  EXPECT_TRUE(names.count("tensor/conv2d")) << "profile table missing conv2d";
  EXPECT_TRUE(names.count("tensor/im2col"));
}

// ---- server integration -----------------------------------------------------

constexpr std::int64_t kSize = 4;
constexpr std::int64_t kChannels = 3;
constexpr std::int64_t kClasses = 5;

models::TapClassifierPtr tiny_model(std::uint64_t seed) {
  models::ModelSpec spec;
  spec.name = "mlp";
  spec.num_classes = kClasses;
  spec.image_size = kSize;
  spec.in_channels = kChannels;
  Rng rng(seed);
  return models::make_model(spec, rng);
}

Tensor sample_input(std::uint64_t seed) {
  Rng rng(seed);
  return rand_uniform({kChannels, kSize, kSize}, rng, 0.0f, 1.0f);
}

TEST(ServerObs, TracedRequestEmitsAllServingStageSpans) {
  ObsStateGuard guard;
  obs::set_trace_sample_every(1);  // trace every request
  obs::clear_trace();

  serve::ModelRegistry reg;
  reg.publish(tiny_model(1), {kChannels, kSize, kSize});
  serve::ServeConfig cfg;
  cfg.max_batch = 4;
  cfg.deadline_us = 500;
  cfg.queue_capacity = 64;
  cfg.telemetry.sample_every = 1;  // rescore everything -> span present
  {
    serve::Server server(reg, cfg);
    std::vector<std::future<serve::Reply>> futs;
    for (int i = 0; i < 6; ++i) futs.push_back(server.submit(sample_input(i)));
    for (auto& f : futs) EXPECT_EQ(f.get().status, serve::ReplyStatus::kOk);
    server.shutdown();
  }

  std::set<std::string> names;
  for (const auto& r : obs::trace_records()) names.insert(r.name);
  for (const char* stage : {"admission", "queue_wait", "batch_assembly",
                            "compute", "telemetry_rescore", "reply"}) {
    EXPECT_TRUE(names.count(stage)) << "missing span: " << stage;
  }
}

TEST(ServerObs, StatsAreBaselineDeltaedPerServerInstance) {
  ObsStateGuard guard;
  obs::set_trace_sample_every(0);
  serve::ModelRegistry reg;
  reg.publish(tiny_model(1), {kChannels, kSize, kSize});
  serve::ServeConfig cfg;
  cfg.max_batch = 2;
  cfg.deadline_us = 200;
  cfg.queue_capacity = 64;

  {
    serve::Server a(reg, cfg);
    for (int i = 0; i < 3; ++i) a.submit(sample_input(i)).get();
    a.shutdown();
    const serve::ServerStats sa = a.stats();
    EXPECT_EQ(sa.accepted, 3u);
    EXPECT_EQ(sa.served, 3u);
  }
  {
    // The registry keeps cumulating, but a fresh server reports only its own
    // traffic: the construction-time baseline is subtracted.
    serve::Server b(reg, cfg);
    for (int i = 0; i < 2; ++i) b.submit(sample_input(i)).get();
    b.shutdown();
    const serve::ServerStats sb = b.stats();
    EXPECT_EQ(sb.accepted, 2u);
    EXPECT_EQ(sb.served, 2u);
    EXPECT_GE(sb.batches, 1u);
    EXPECT_EQ(sb.size_triggers + sb.deadline_triggers + sb.drain_triggers,
              sb.batches);
  }
  // The global registry saw both servers.
  const obs::MetricsSnapshot snap = obs::registry().snapshot();
  EXPECT_GE(snap.counters.at("serve.accepted"), 5u);
}

TEST(ServerObs, LogitsBitIdenticalWithEveryObservabilityKnobOn) {
  // The full contract: tracing + profiling + telemetry all on must not
  // change a single output bit vs everything off.
  serve::ModelRegistry reg;
  reg.publish(tiny_model(3), {kChannels, kSize, kSize});
  serve::ServeConfig cfg;
  cfg.max_batch = 1;  // singleton batches -> deterministic batching
  cfg.deadline_us = 0;
  cfg.queue_capacity = 64;

  constexpr int kReqs = 4;
  std::vector<Tensor> off_logits, on_logits;
  {
    ObsStateGuard guard;
    obs::set_trace_sample_every(0);
    obs::set_profiling_enabled(false);
    serve::Server server(reg, cfg);
    for (int i = 0; i < kReqs; ++i) {
      off_logits.push_back(server.submit(sample_input(100 + i)).get().logits);
    }
  }
  {
    ObsStateGuard guard;
    obs::set_trace_sample_every(1);
    obs::set_profiling_enabled(true);
    serve::ServeConfig cfg_on = cfg;
    cfg_on.telemetry.sample_every = 1;
    serve::Server server(reg, cfg_on);
    for (int i = 0; i < kReqs; ++i) {
      on_logits.push_back(server.submit(sample_input(100 + i)).get().logits);
    }
  }
  for (int i = 0; i < kReqs; ++i) {
    const Tensor& a = off_logits[static_cast<std::size_t>(i)];
    const Tensor& b = on_logits[static_cast<std::size_t>(i)];
    ASSERT_TRUE(a.same_shape(b));
    EXPECT_EQ(std::memcmp(a.data().data(), b.data().data(),
                          sizeof(float) * static_cast<std::size_t>(a.numel())),
              0)
        << "logits differ for request " << i;
  }
}

TEST(Metrics, HistogramPercentilesBracketUnderConcurrentWriters) {
  // The shard-merge-on-read path must preserve the bracketing contract when
  // the observations arrive from 8 threads at once (each thread lands on its
  // own shard; snapshot() merges).
  obs::Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4000;
  std::vector<double> vals;
  vals.reserve(kThreads * kPerThread);
  {
    std::mutex mu;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
      ts.emplace_back([&, t] {
        Rng rng(static_cast<std::uint64_t>(1000 + t));
        std::vector<double> mine;
        mine.reserve(kPerThread);
        for (int i = 0; i < kPerThread; ++i) {
          const double u = static_cast<double>(rng.uniform());
          mine.push_back(std::pow(10.0, -2.0 + 9.0 * u));
        }
        for (double v : mine) h.observe(v);
        std::lock_guard<std::mutex> lk(mu);
        vals.insert(vals.end(), mine.begin(), mine.end());
      });
    }
    for (auto& t : ts) t.join();
  }
  std::sort(vals.begin(), vals.end());
  const obs::HistogramSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.count, vals.size());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::max<double>(1.0, std::ceil(q * static_cast<double>(vals.size()))));
    const double truth = vals[rank - 1];
    const double est = snap.percentile(q);
    EXPECT_GE(est, truth) << "q=" << q;
    EXPECT_LE(est, truth * 1.1251) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(snap.max, vals.back());
}

TEST(Metrics, PrometheusExpositionIsWellFormed) {
  obs::MetricsRegistry reg;
  reg.counter("prom.test.requests").inc(42);
  reg.gauge("prom.test.depth").set(-1.5);
  for (int i = 1; i <= 1000; ++i) {
    reg.histogram("prom.test.lat").observe(static_cast<double>(i) * 0.001);
  }
  const std::string text = reg.snapshot().to_prometheus();

  // Every non-comment line is `name{labels} value` with names in the
  // Prometheus charset (dots sanitized to underscores).
  EXPECT_NE(text.find("# TYPE prom_test_requests counter"), std::string::npos);
  EXPECT_NE(text.find("\nprom_test_requests 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE prom_test_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("\nprom_test_depth -1.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE prom_test_lat histogram"), std::string::npos);
  EXPECT_EQ(text.find("prom.test"), std::string::npos);  // names sanitized

  // Histogram contract: le edges strictly ascending, cumulative counts
  // non-decreasing, and the mandatory +Inf bucket equals _count.
  std::vector<double> edges;
  std::vector<std::uint64_t> cums;
  std::uint64_t inf_count = 0, count_line = 0;
  double sum_line = -1.0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string line = text.substr(pos, eol - pos);
    pos = eol == std::string::npos ? text.size() : eol + 1;
    if (line.rfind("prom_test_lat_bucket{le=\"", 0) == 0) {
      const std::size_t q1 = line.find('"') + 1;
      const std::size_t q2 = line.find('"', q1);
      const std::string le = line.substr(q1, q2 - q1);
      const std::uint64_t cum =
          std::strtoull(line.c_str() + line.rfind(' ') + 1, nullptr, 10);
      if (le == "+Inf") {
        inf_count = cum;
      } else {
        edges.push_back(std::strtod(le.c_str(), nullptr));
        cums.push_back(cum);
      }
    } else if (line.rfind("prom_test_lat_sum ", 0) == 0) {
      sum_line = std::strtod(line.c_str() + line.rfind(' ') + 1, nullptr);
    } else if (line.rfind("prom_test_lat_count ", 0) == 0) {
      count_line =
          std::strtoull(line.c_str() + line.rfind(' ') + 1, nullptr, 10);
    }
  }
  ASSERT_GE(edges.size(), 2u);
  for (std::size_t i = 1; i < edges.size(); ++i) {
    EXPECT_LT(edges[i - 1], edges[i]) << "le edges not ascending at " << i;
    EXPECT_LE(cums[i - 1], cums[i]) << "cumulative counts decreased at " << i;
  }
  EXPECT_EQ(count_line, 1000u);
  EXPECT_EQ(inf_count, count_line);  // exactly one +Inf line, riding _count
  EXPECT_EQ(cums.back(), count_line);
  EXPECT_NEAR(sum_line, 1000.0 * 1001.0 / 2.0 * 0.001, 1e-6);
}

TEST(Trace, RingOverwriteCountsDroppedSpansAndExportsThem) {
  ObsStateGuard guard;
  obs::set_trace_sample_every(1);
  obs::clear_trace();
  const std::uint64_t before =
      obs::registry().snapshot().counters.count("obs.trace.dropped_spans")
          ? obs::registry().snapshot().counters.at("obs.trace.dropped_spans")
          : 0;
  // Overflow this thread's ring (default cap 8192 records).
  for (int i = 0; i < 9000; ++i) {
    obs::record_span("overflow_test", i, i + 1,
                     static_cast<std::uint64_t>(i));
  }
  EXPECT_GE(obs::trace_dropped(), 808u);
  // The cumulative registry counter moved by the same amount.
  const std::uint64_t after =
      obs::registry().snapshot().counters.at("obs.trace.dropped_spans");
  EXPECT_EQ(after - before, obs::trace_dropped());
  // The export carries the loss so dashboards can see truncation.
  const std::string json = obs::trace_json();
  EXPECT_NE(json.find("\"droppedSpans\":"), std::string::npos);
  EXPECT_EQ(json.find("\"droppedSpans\":0"), std::string::npos);
}

TEST(ServerObs, LogitsBitIdenticalWithContinuousTelemetryStackOn) {
  // PR-10 extension of the bit-identity contract: four workers, EWMA sliding
  // re-score, the background time-series sampler, SLO evaluation, and a live
  // admin endpoint scraping /metrics — all on — vs everything off.
  serve::ModelRegistry reg;
  reg.publish(tiny_model(7), {kChannels, kSize, kSize});
  serve::ServeConfig cfg;
  cfg.max_batch = 1;  // singleton batches -> deterministic batching
  cfg.deadline_us = 0;
  cfg.queue_capacity = 64;
  cfg.workers = 4;

  constexpr int kReqs = 8;
  std::vector<Tensor> off_logits, on_logits;
  {
    ObsStateGuard guard;
    obs::set_trace_sample_every(0);
    obs::set_profiling_enabled(false);
    serve::Server server(reg, cfg);
    for (int i = 0; i < kReqs; ++i) {
      off_logits.push_back(server.submit(sample_input(200 + i)).get().logits);
    }
  }
  {
    ObsStateGuard guard;
    obs::set_trace_sample_every(1);
    obs::set_profiling_enabled(true);
    obs::register_default_serve_slos();
    obs::start_sampler(10);  // continuous sampling + SLO eval in background
    serve::net::AdminEndpoint admin;  // live scraper on a kernel port
    serve::ServeConfig cfg_on = cfg;
    cfg_on.telemetry.sample_every = 1;
    cfg_on.telemetry.ewma = true;
    cfg_on.telemetry.ewma_decay = 0.5f;
    serve::Server server(reg, cfg_on);
    for (int i = 0; i < kReqs; ++i) {
      on_logits.push_back(server.submit(sample_input(200 + i)).get().logits);
    }
    admin.stop();
    obs::stop_sampler();
  }
  for (int i = 0; i < kReqs; ++i) {
    const Tensor& a = off_logits[static_cast<std::size_t>(i)];
    const Tensor& b = on_logits[static_cast<std::size_t>(i)];
    ASSERT_TRUE(a.same_shape(b));
    EXPECT_EQ(std::memcmp(a.data().data(), b.data().data(),
                          sizeof(float) * static_cast<std::size_t>(a.numel())),
              0)
        << "logits differ for request " << i;
  }
}

}  // namespace
}  // namespace ibrar
