// Duplicate-request reply cache: hit bit-identity vs recompute (telemetry
// on/off, workers 1/4), LRU eviction order under byte-budget pressure,
// hot-swap invalidation, concurrent in-flight dedup (N threads, one
// compute), the serve.cache.bytes gauge-freshness contract, and a
// fixed-seed randomized op-sequence sweep against a naive map+recompute
// reference model.

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <future>
#include <map>
#include <random>
#include <thread>
#include <vector>

#include "models/registry.hpp"
#include "obs/metrics.hpp"
#include "serve/model_registry.hpp"
#include "serve/reply_cache.hpp"
#include "serve/server.hpp"
#include "tensor/random.hpp"
#include "util/rng.hpp"

namespace ibrar {
namespace {

using namespace std::chrono_literals;

constexpr std::int64_t kSize = 4;
constexpr std::int64_t kChannels = 3;
constexpr std::int64_t kClasses = 5;

models::TapClassifierPtr tiny_model(std::uint64_t seed) {
  models::ModelSpec spec;
  spec.name = "mlp";
  spec.num_classes = kClasses;
  spec.image_size = kSize;
  spec.in_channels = kChannels;
  Rng rng(seed);
  return models::make_model(spec, rng);
}

Shape sample_shape() { return {kChannels, kSize, kSize}; }

Tensor sample_input(std::uint64_t seed) {
  Rng rng(seed);
  return rand_uniform({kChannels, kSize, kSize}, rng, 0.0f, 1.0f);
}

bool bits_equal(const Tensor& a, const Tensor& b) {
  return a.numel() == b.numel() &&
         std::memcmp(a.data().data(), b.data().data(),
                     sizeof(float) * static_cast<std::size_t>(a.numel())) == 0;
}

/// Snapshot of the global cache/admission counters, for delta assertions
/// (the registry is cumulative across every server in the test binary).
struct CacheCounters {
  std::uint64_t lookups, hits, misses, joins, evictions, invalidations;

  static CacheCounters now() {
    auto& r = obs::registry();
    return {r.counter("serve.cache.lookups").value(),
            r.counter("serve.cache.hits").value(),
            r.counter("serve.cache.misses").value(),
            r.counter("serve.cache.inflight_joins").value(),
            r.counter("serve.cache.evictions").value(),
            r.counter("serve.cache.invalidations").value()};
  }
  CacheCounters delta_from(const CacheCounters& base) const {
    return {lookups - base.lookups,         hits - base.hits,
            misses - base.misses,           joins - base.joins,
            evictions - base.evictions,     invalidations - base.invalidations};
  }
};

/// Deterministic synthetic "compute" for direct-drive cache tests: a reply
/// whose logits are a fixed function of (input bytes, version), so any hit
/// can be checked against an independent recompute.
serve::Reply fake_reply(const Tensor& input, std::uint64_t version) {
  serve::Reply r;
  r.status = serve::ReplyStatus::kOk;
  r.logits = Tensor({kClasses});
  const auto in = input.data();
  for (std::int64_t j = 0; j < kClasses; ++j) {
    r.logits.data()[static_cast<std::size_t>(j)] =
        in[static_cast<std::size_t>(j) % in.size()] *
            static_cast<float>(j + 1) +
        static_cast<float>(version);
  }
  r.argmax = static_cast<std::int64_t>(version % kClasses);
  r.model_version = version;
  return r;
}

/// Run one full leader cycle against a direct-driven cache: lookup (must be
/// kLeader or kBypass) then complete with the synthetic reply.
serve::ReplyCache::Outcome drive(serve::ReplyCache& cache, const Tensor& x,
                                 std::uint64_t version,
                                 serve::Reply* hit_out = nullptr) {
  std::promise<serve::Reply> pr;
  const std::uint64_t h = serve::ReplyCache::hash_input(x);
  auto lk = cache.lookup_or_join(h, x, version, pr);
  if (lk.outcome == serve::ReplyCache::Outcome::kLeader) {
    cache.complete(h, version, fake_reply(x, version));
  }
  if (hit_out && lk.outcome == serve::ReplyCache::Outcome::kHit) {
    *hit_out = std::move(lk.reply);
  }
  return lk.outcome;
}

// ---- hit bit-identity vs recompute ------------------------------------------

TEST(ReplyCache, HitBitIdenticalToRecomputeAcrossWorkersAndTelemetry) {
  // The hard contract: a cache hit's logits are memcmp-identical to what a
  // fresh recompute (on a cache-off server over the same weights) produces —
  // at 1 and 4 workers, telemetry off and on.
  const Tensor x = sample_input(42);

  // Reference recompute: a separate cache-off server instance.
  std::vector<float> ref;
  {
    serve::ModelRegistry reg;
    reg.publish(tiny_model(1), sample_shape());
    serve::ServeConfig cfg;  // programmatic default: cache OFF
    serve::Server server(reg, cfg);
    const auto r = server.submit(x).get();
    ASSERT_TRUE(r.ok());
    ASSERT_FALSE(r.cached);
    ref.assign(r.logits.data().begin(), r.logits.data().end());
  }

  for (const std::int64_t workers : {std::int64_t{1}, std::int64_t{4}}) {
    for (const std::int64_t sample_every : {std::int64_t{0}, std::int64_t{1}}) {
      serve::ModelRegistry reg;
      reg.publish(tiny_model(1), sample_shape());
      serve::ServeConfig cfg;
      cfg.workers = workers;
      cfg.telemetry.sample_every = sample_every;
      cfg.telemetry.window = 4;
      cfg.cache_bytes = std::size_t{4} << 20;
      serve::Server server(reg, cfg);

      const auto miss = server.submit(x).get();
      ASSERT_TRUE(miss.ok());
      EXPECT_FALSE(miss.cached);
      const auto hit = server.submit(x).get();
      ASSERT_TRUE(hit.ok());
      EXPECT_TRUE(hit.cached);

      // Bit-identity vs BOTH the leader's reply and the fresh recompute.
      EXPECT_TRUE(bits_equal(hit.logits, miss.logits));
      ASSERT_EQ(hit.logits.numel(), static_cast<std::int64_t>(ref.size()));
      EXPECT_EQ(std::memcmp(hit.logits.data().data(), ref.data(),
                            sizeof(float) * ref.size()),
                0)
          << "workers=" << workers << " telemetry=" << sample_every;
      EXPECT_EQ(hit.argmax, miss.argmax);
      EXPECT_EQ(hit.model_version, miss.model_version);
      // No compute was spent on the hit, and sampled telemetry is never
      // replayed onto another request.
      EXPECT_EQ(hit.compute_ns, 0);
      EXPECT_EQ(hit.batch_size, 0);
      EXPECT_FALSE(hit.telemetry.sampled);

      const auto stats = server.stats();
      EXPECT_EQ(stats.cache_lookups, 2u);
      EXPECT_EQ(stats.cache_hits, 1u);
      EXPECT_EQ(stats.cache_misses, 1u);
      EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.cache_lookups);
      EXPECT_EQ(stats.served, 1u);  // one compute covered both requests
    }
  }
}

// ---- LRU eviction under byte pressure ---------------------------------------

TEST(ReplyCache, LruEvictsColdEntriesFirstUnderByteBudget) {
  // One shard so the LRU order is exact and observable. Budget sized for
  // three complete entries (input 48 floats + logits 5 floats + overhead).
  const Tensor a = sample_input(1), b = sample_input(2), c = sample_input(3),
               d = sample_input(4);
  serve::ReplyCacheConfig cfg;
  cfg.shards = 1;
  {
    serve::ReplyCache probe(serve::ReplyCacheConfig{std::size_t{1} << 20, 1});
    probe.on_version(1);
    ASSERT_EQ(drive(probe, a, 1), serve::ReplyCache::Outcome::kLeader);
    cfg.capacity_bytes = probe.bytes() * 3 + probe.bytes() / 2;  // ~3.5 entries
  }
  const auto base = CacheCounters::now();
  serve::ReplyCache cache(cfg);
  cache.on_version(1);
  ASSERT_EQ(drive(cache, a, 1), serve::ReplyCache::Outcome::kLeader);
  ASSERT_EQ(drive(cache, b, 1), serve::ReplyCache::Outcome::kLeader);
  ASSERT_EQ(drive(cache, c, 1), serve::ReplyCache::Outcome::kLeader);
  EXPECT_EQ(cache.entries(), 3u);
  EXPECT_LE(cache.bytes(), cfg.capacity_bytes);

  // Touch `a` so `b` is now the coldest, then overflow with `d`.
  EXPECT_EQ(drive(cache, a, 1), serve::ReplyCache::Outcome::kHit);
  ASSERT_EQ(drive(cache, d, 1), serve::ReplyCache::Outcome::kLeader);

  // The eviction took the LRU victim: b is gone; a, c, d still hit.
  EXPECT_LE(cache.bytes(), cfg.capacity_bytes);
  EXPECT_EQ(cache.entries(), 3u);
  EXPECT_EQ(drive(cache, a, 1), serve::ReplyCache::Outcome::kHit);
  EXPECT_EQ(drive(cache, c, 1), serve::ReplyCache::Outcome::kHit);
  EXPECT_EQ(drive(cache, d, 1), serve::ReplyCache::Outcome::kHit);
  EXPECT_EQ(drive(cache, b, 1), serve::ReplyCache::Outcome::kLeader);

  const auto delta = CacheCounters::now().delta_from(base);
  EXPECT_GE(delta.evictions, 1u);
  EXPECT_EQ(delta.hits + delta.misses, delta.lookups);
}

// ---- hot-swap invalidation --------------------------------------------------

TEST(ReplyCache, VersionChangeInvalidatesAcrossHotSwap) {
  serve::ModelRegistry reg;
  reg.publish(tiny_model(1), sample_shape(), "v1");
  serve::ServeConfig cfg;
  cfg.cache_bytes = std::size_t{4} << 20;
  serve::Server server(reg, cfg);
  auto& g_bytes = obs::registry().gauge("serve.cache.bytes");

  const Tensor x = sample_input(7);
  const auto v1_miss = server.submit(x).get();
  ASSERT_TRUE(v1_miss.ok());
  EXPECT_EQ(v1_miss.model_version, 1u);
  EXPECT_TRUE(server.submit(x).get().cached);
  const double bytes_warm = g_bytes.value();
  EXPECT_GT(server.cache().bytes(), 0u);

  // Hot-swap to different weights: the v1 entry MUST not answer for v2.
  reg.publish(tiny_model(2), sample_shape(), "v2");
  const auto v2_first = server.submit(x).get();
  ASSERT_TRUE(v2_first.ok());
  EXPECT_FALSE(v2_first.cached);  // recomputed, not served from the v1 entry
  EXPECT_EQ(v2_first.model_version, 2u);
  // Different weights -> different logits; a stale hit would have matched v1.
  EXPECT_FALSE(bits_equal(v2_first.logits, v1_miss.logits));

  // And v2 now caches normally, bit-identical to its own recompute.
  const auto v2_hit = server.submit(x).get();
  ASSERT_TRUE(v2_hit.cached);
  EXPECT_TRUE(bits_equal(v2_hit.logits, v2_first.logits));
  EXPECT_EQ(v2_hit.model_version, 2u);

  const auto stats = server.stats();
  EXPECT_GE(stats.cache_invalidations, 1u);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.cache_lookups);
  // Invalidation dropped the v1 bytes before the v2 entry was stored; the
  // gauge never double-counts the dead version.
  EXPECT_LE(g_bytes.value(), bytes_warm);
}

// ---- concurrent in-flight dedup ---------------------------------------------

TEST(ReplyCache, ConcurrentIdenticalRequestsRideOneCompute) {
  // Park the leader in batch assembly (long deadline, single worker), then
  // fire N identical submissions from N threads: every one must join the
  // leader's in-flight entry — ONE compute serves all of them.
  serve::ModelRegistry reg;
  reg.publish(tiny_model(1), sample_shape());
  serve::ServeConfig cfg;
  cfg.max_batch = 64;
  cfg.deadline_us = 200'000;  // the dedup window for this test
  cfg.workers = 1;
  cfg.cache_bytes = std::size_t{4} << 20;
  serve::Server server(reg, cfg);

  const Tensor x = sample_input(99);
  auto leader_fut = server.submit(x);  // installs the in-flight entry

  constexpr int kJoiners = 7;
  std::vector<std::future<serve::Reply>> joined(kJoiners);
  std::vector<std::thread> threads;
  threads.reserve(kJoiners);
  for (int t = 0; t < kJoiners; ++t) {
    threads.emplace_back(
        [&, t] { joined[static_cast<std::size_t>(t)] = server.submit(x); });
  }
  for (auto& t : threads) t.join();

  const auto leader = leader_fut.get();
  ASSERT_TRUE(leader.ok());
  EXPECT_FALSE(leader.cached);
  for (auto& f : joined) {
    const auto r = f.get();
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.cached);
    EXPECT_TRUE(bits_equal(r.logits, leader.logits));
    EXPECT_EQ(r.argmax, leader.argmax);
    EXPECT_EQ(r.model_version, leader.model_version);
  }

  const auto stats = server.stats();
  EXPECT_EQ(stats.cache_inflight_joins, static_cast<std::uint64_t>(kJoiners));
  EXPECT_EQ(stats.cache_hits, static_cast<std::uint64_t>(kJoiners));
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.served, 1u);   // one row computed
  EXPECT_EQ(stats.batches, 1u);  // in one batch
  EXPECT_EQ(stats.accepted, 1u);  // joiners never touched the queue
}

// ---- gauge freshness (the PR 7 queue_depth contract, for cache bytes) -------

TEST(ReplyCache, BytesGaugeFallsOnEvictionInvalidationAndZeroAfterShutdown) {
  auto& g_bytes = obs::registry().gauge("serve.cache.bytes");
  const double before = g_bytes.value();
  {
    serve::ModelRegistry reg;
    reg.publish(tiny_model(1), sample_shape());
    serve::ServeConfig cfg;
    cfg.cache_bytes = 2048;  // a few entries at most — forces eviction
    serve::Server server(reg, cfg);

    double peak = before;
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(
          server.submit(sample_input(static_cast<std::uint64_t>(i))).get()
              .ok());
      peak = std::max(peak, g_bytes.value());
    }
    // The budget held live bytes down even though 12 entries were stored.
    EXPECT_GT(server.stats().cache_evictions, 0u);
    EXPECT_LE(server.cache().bytes(), std::size_t{2048});
    EXPECT_LE(g_bytes.value() - before, 2048.0);

    // Invalidation drops the whole resident set's bytes.
    reg.publish(tiny_model(2), sample_shape());
    server.cache().on_version(2);
    EXPECT_EQ(server.cache().bytes(), 0u);

    server.submit(sample_input(100)).get();
    EXPECT_GT(server.cache().bytes(), 0u);
    server.shutdown();
    EXPECT_EQ(server.cache().bytes(), 0u);
    // After shutdown the gauge is back to its pre-server reading: this
    // server's contribution is exactly zero (no stale residue).
    EXPECT_DOUBLE_EQ(g_bytes.value(), before);
  }
}

// ---- randomized op sequence vs naive reference ------------------------------

TEST(ReplyCache, RandomizedOpSequenceMatchesNaiveReferenceModel) {
  // Fixed-seed sweep with a budget big enough that eviction never fires: the
  // cache's hit/miss/store behavior must then match a naive map keyed on
  // (input index, version) that recomputes on miss — exactly, op for op.
  std::mt19937_64 rng(0x5eed5eed);
  constexpr int kPool = 12;
  constexpr int kOps = 600;
  std::vector<Tensor> pool;
  for (int i = 0; i < kPool; ++i) {
    pool.push_back(sample_input(1000 + static_cast<std::uint64_t>(i)));
  }

  const auto base = CacheCounters::now();
  serve::ReplyCache cache(
      serve::ReplyCacheConfig{std::size_t{16} << 20, 4});
  std::map<std::pair<int, std::uint64_t>, std::vector<float>> naive;
  std::uint64_t version = 1;
  cache.on_version(version);

  for (int op = 0; op < kOps; ++op) {
    if (rng() % 40 == 0) {
      // Hot-swap: bump the version; the naive model forgets other versions
      // exactly like the cache invalidates them.
      ++version;
      cache.on_version(version);
      naive.clear();
    }
    const int idx = static_cast<int>(rng() % kPool);
    const Tensor& x = pool[static_cast<std::size_t>(idx)];

    serve::Reply hit;
    const auto outcome = drive(cache, x, version, &hit);
    const auto key = std::make_pair(idx, version);
    const bool naive_hit = naive.count(key) > 0;
    if (!naive_hit) {
      const auto r = fake_reply(x, version);
      naive[key].assign(r.logits.data().begin(), r.logits.data().end());
    }
    ASSERT_EQ(outcome == serve::ReplyCache::Outcome::kHit, naive_hit)
        << "op " << op << " idx " << idx << " version " << version;
    if (outcome == serve::ReplyCache::Outcome::kHit) {
      // Hit logits match the naive recompute bit for bit.
      const auto& want = naive[key];
      ASSERT_EQ(hit.logits.numel(), static_cast<std::int64_t>(want.size()));
      EXPECT_EQ(std::memcmp(hit.logits.data().data(), want.data(),
                            sizeof(float) * want.size()),
                0)
          << "op " << op;
      EXPECT_EQ(hit.model_version, version);
      EXPECT_TRUE(hit.cached);
    }
  }
  const auto delta = CacheCounters::now().delta_from(base);
  EXPECT_EQ(delta.lookups, static_cast<std::uint64_t>(kOps));
  EXPECT_EQ(delta.hits + delta.misses, delta.lookups);
  EXPECT_EQ(delta.evictions, 0u);  // the budget was never under pressure
  cache.clear();
  EXPECT_EQ(cache.bytes(), 0u);
}

// ---- admission: token bucket + in-flight cap --------------------------------

TEST(Admission, TokenBucketIsolatesTheChattyClient) {
  serve::ModelRegistry reg;
  reg.publish(tiny_model(1), sample_shape());
  serve::ServeConfig cfg;
  cfg.client_rate = 0.001;  // ~no refill within the test
  cfg.client_burst = 3.0;
  serve::Server server(reg, cfg);

  // Client 7 burns its burst; the 4th request is throttled with a hint.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(
        server.submit(sample_input(static_cast<std::uint64_t>(i)), 7).get()
            .ok());
  }
  const auto throttled = server.submit(sample_input(50), 7).get();
  EXPECT_EQ(throttled.status, serve::ReplyStatus::kBusyRetryAfter);
  EXPECT_GE(throttled.retry_after_ms, 1u);
  // Client 8 is untouched by 7's exhaustion — fairness by isolation.
  EXPECT_TRUE(server.submit(sample_input(60), 8).get().ok());

  const auto stats = server.stats();
  EXPECT_EQ(stats.admission_throttled, 1u);
  EXPECT_EQ(stats.admission_busy, 0u);
}

TEST(Admission, ThrottledLeaderFansTheBusyStatusToJoiners) {
  // A leader denied admission must not strand requests that joined its
  // in-flight entry: they all get the same busy reply.
  serve::ModelRegistry reg;
  reg.publish(tiny_model(1), sample_shape());
  serve::ServeConfig cfg;
  cfg.cache_bytes = std::size_t{1} << 20;
  cfg.client_rate = 0.001;
  cfg.client_burst = 1.0;
  cfg.max_batch = 64;
  cfg.deadline_us = 100'000;
  serve::Server server(reg, cfg);

  const Tensor x = sample_input(1);
  ASSERT_TRUE(server.submit(x, 7).get().ok());  // burns the only token

  // A NEW input: its leader gets throttled at the door. A concurrent twin
  // would join the in-flight entry before the abort — simulate the join by
  // submitting from another client id while the leader is being rejected.
  // (Deterministic version: the leader is rejected synchronously, so the
  // abort has already fanned out by the time submit returns. What we assert
  // is that the entry did not leak: the next lookup is a fresh leader, not
  // a join onto a dead entry.)
  const Tensor y = sample_input(2);
  const auto rejected = server.submit(y, 7).get();
  EXPECT_EQ(rejected.status, serve::ReplyStatus::kBusyRetryAfter);
  // Client 8 can now compute y from scratch — the aborted leader's entry is
  // gone (a leaked in-flight entry would make this a join that never
  // resolves).
  const auto fresh = server.submit(y, 8).get();
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh.cached);
}

}  // namespace
}  // namespace ibrar
