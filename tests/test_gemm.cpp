// Packed GEMM invariants: bit-exact agreement with the naive reference chain
// at ragged shapes, IEEE special-value propagation (the zero-skip regression),
// 1-vs-N-thread bit identity, transposed-variant exactness, and the matmul
// shape-error paths.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "runtime/scratch_arena.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/gemm_packed.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace ibrar {
namespace {

constexpr float kQNaN = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  Tensor c({a.dim(0), b.dim(1)});
  gemm_naive(a.data().data(), GemmLayout::kRowMajor, b.data().data(),
             GemmLayout::kRowMajor, c.data().data(), a.dim(0), a.dim(1),
             b.dim(1));
  return c;
}

void expect_bits_equal(const Tensor& x, const Tensor& y, const char* what) {
  ASSERT_TRUE(x.same_shape(y)) << what;
  ASSERT_EQ(std::memcmp(x.data().data(), y.data().data(),
                        sizeof(float) * static_cast<std::size_t>(x.numel())),
            0)
      << what;
}

// ---- packed vs naive exactness ---------------------------------------------

struct GemmShape {
  std::int64_t m, k, n;
};

class PackedVsNaiveSweep : public ::testing::TestWithParam<GemmShape> {};

TEST_P(PackedVsNaiveSweep, BitExactAtAnyShape) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 1000003 + k * 1009 + n));
  const Tensor a = randn({m, k}, rng);
  const Tensor b = randn({k, n}, rng);
  const Tensor ref = naive_matmul(a, b);
  const Tensor out = matmul(a, b);
  expect_bits_equal(ref, out, "matmul vs naive chain");
}

INSTANTIATE_TEST_SUITE_P(
    // Ragged m/k/n around the MR=4 / NR=16 / KC=256 boundaries: below, at,
    // one past, crossing KC, and degenerate single-row/col cases.
    Shapes, PackedVsNaiveSweep,
    ::testing::Values(GemmShape{1, 1, 1}, GemmShape{3, 5, 2},
                      GemmShape{4, 16, 16}, GemmShape{5, 17, 15},
                      GemmShape{33, 33, 33}, GemmShape{64, 64, 64},
                      GemmShape{65, 63, 17}, GemmShape{130, 67, 33},
                      GemmShape{47, 300, 19},   // k crosses one KC block
                      GemmShape{40, 513, 31},   // k crosses two KC blocks
                      GemmShape{129, 40, 140},  // m crosses MC
                      GemmShape{1, 100, 1}, GemmShape{200, 1, 50}));

TEST(PackedGemm, TransposedVariantsBitExact) {
  // matmul_tn / matmul_nt read the operand through its transposed layout;
  // the accumulation chain must match the materialized-transpose product.
  Rng rng(7);
  const Tensor a = randn({37, 53}, rng);    // (k=37, m=53) for tn
  const Tensor b = randn({37, 29}, rng);
  expect_bits_equal(matmul(transpose2d(a), b), matmul_tn(a, b), "tn");

  const Tensor x = randn({41, 37}, rng);
  const Tensor y = randn({23, 37}, rng);    // (n=23, k=37) for nt
  expect_bits_equal(matmul(x, transpose2d(y)), matmul_nt(x, y), "nt");
}

TEST(PackedGemm, AccumulatesIntoExistingC) {
  // gemm_accumulate's contract is +=, not =.
  Rng rng(11);
  const Tensor a = randn({20, 30}, rng);
  const Tensor b = randn({30, 40}, rng);
  Tensor c({20, 40}, 2.5f);
  Tensor ref = c;
  gemm_naive(a.data().data(), GemmLayout::kRowMajor, b.data().data(),
             GemmLayout::kRowMajor, ref.data().data(), 20, 30, 40);
  gemm_accumulate(a.data().data(), b.data().data(), c.data().data(), 20, 30, 40);
  expect_bits_equal(ref, c, "accumulate into nonzero C");
}

TEST(PackedGemm, LargeShapeUsesPackedPathAndMatches) {
  // Big enough that the packed path (not the small-volume fallback) runs,
  // ragged so every edge-tile case is exercised; double-precision reference.
  Rng rng(13);
  const std::int64_t m = 131, k = 261, n = 79;
  const Tensor a = randn({m, k}, rng);
  const Tensor b = randn({k, n}, rng);
  const Tensor out = matmul(a, b);
  for (std::int64_t i = 0; i < m; i += 13) {
    for (std::int64_t j = 0; j < n; j += 7) {
      double s = 0.0;
      for (std::int64_t p = 0; p < k; ++p) s += static_cast<double>(a.at(i, p)) * b.at(p, j);
      EXPECT_NEAR(out.at(i, j), s, 1e-3 * (1.0 + std::fabs(s))) << i << "," << j;
    }
  }
}

// ---- IEEE special values (zero-skip regression) ----------------------------

TEST(GemmIeee, ZeroTimesNaNPropagates) {
  // The seed kernel skipped a == 0.0f rows, silently turning 0 * NaN into 0.
  // IEEE requires NaN: pin the fixed behavior.
  Tensor a({1, 2}, {0.0f, 0.0f});
  Tensor b({2, 1}, {kQNaN, 1.0f});
  EXPECT_TRUE(std::isnan(matmul(a, b)[0]));
}

TEST(GemmIeee, ZeroTimesInfPropagatesNaN) {
  Tensor a({2, 2}, {0.0f, 0.0f, 1.0f, 0.0f});
  Tensor b({2, 2}, {kInf, 2.0f, 3.0f, 4.0f});
  const Tensor c = matmul(a, b);
  EXPECT_TRUE(std::isnan(c.at(0, 0)));  // 0*inf + 0*3
  EXPECT_FLOAT_EQ(c.at(0, 1), 0.0f);    // 0*2 + 0*4
  EXPECT_TRUE(std::isinf(c.at(1, 0)));  // 1*inf + 0*3
}

TEST(GemmIeee, SignedZeroAccumulation) {
  // With the skip, a zero A row left c untouched (so c = -0 stayed -0). The
  // IEEE chain computes -0 + (+0 * b) = -0 + 0 = +0.
  float a[1] = {0.0f};
  float b[1] = {5.0f};
  float c[1] = {-0.0f};
  ASSERT_TRUE(std::signbit(c[0]));
  gemm_accumulate(a, b, c, 1, 1, 1);
  EXPECT_FLOAT_EQ(c[0], 0.0f);
  EXPECT_FALSE(std::signbit(c[0]));
}

TEST(GemmIeee, NaNInputNeverSilentlySkipped) {
  // NaN anywhere in a row of A poisons that whole output row.
  Rng rng(3);
  Tensor a = randn({8, 40}, rng);
  const Tensor b = randn({40, 12}, rng);
  a.at(5, 17) = kQNaN;
  const Tensor c = matmul(a, b);
  for (std::int64_t j = 0; j < 12; ++j) {
    EXPECT_TRUE(std::isnan(c.at(5, j))) << j;
    EXPECT_FALSE(std::isnan(c.at(0, j))) << j;
  }
}

TEST(GemmIeee, SpecialValuesThroughThePackedPath) {
  // The shapes above sit below kGemmSmallVolume and exercise the naive
  // fallback; this one (41*67*43 > 32^3, all dims ragged) runs the packing
  // and micro-kernel code, with specials placed in interior AND edge tiles.
  static_assert(41 * 67 * 43 >= kGemmSmallVolume);
  Rng rng(17);
  Tensor a = randn({41, 67}, rng);
  Tensor b = randn({67, 43}, rng);
  a.at(2, 33) = kQNaN;    // interior MR strip
  a.at(40, 5) = 0.0f;     // last (partial) row tile...
  b.at(5, 42) = kInf;     // ...meets Inf in the last (partial) column tile
  for (std::int64_t p = 0; p < 67; ++p) a.at(7, p) = 0.0f;  // all-zero row
  b.at(31, 19) = kQNaN;
  const Tensor c = matmul(a, b);
  for (std::int64_t j = 0; j < 43; ++j) {
    EXPECT_TRUE(std::isnan(c.at(2, j))) << "NaN row, col " << j;
  }
  EXPECT_TRUE(std::isnan(c.at(40, 42)));  // 0 * inf in the corner edge tile
  EXPECT_TRUE(std::isnan(c.at(7, 19)));   // zero row x NaN: no skip allowed
  EXPECT_TRUE(std::isnan(c.at(7, 42)));   // zero row x inf edge column
  EXPECT_FLOAT_EQ(c.at(7, 0), 0.0f);      // zero row x finite column
  EXPECT_FALSE(std::isnan(c.at(0, 0)));
  // And the packed chain still matches the naive chain bit-for-bit with
  // specials present (NaN payloads compare via memcmp, not ==).
  const Tensor ref = naive_matmul(a, b);
  ASSERT_TRUE(ref.same_shape(c));
  EXPECT_EQ(std::memcmp(ref.data().data(), c.data().data(),
                        sizeof(float) * static_cast<std::size_t>(c.numel())),
            0);
}

// ---- thread-count bit identity ---------------------------------------------

TEST(GemmDeterminism, OneVsManyThreadsBitIdentical) {
  // Ragged sizes (not multiples of MR/NR, k crossing KC) at 1 vs 4 lanes.
  const GemmShape shapes[] = {{130, 300, 67}, {257, 65, 31}, {1000, 37, 16}};
  for (const auto& s : shapes) {
    Rng rng(static_cast<std::uint64_t>(s.m));
    const Tensor a = randn({s.m, s.k}, rng);
    const Tensor b = randn({s.k, s.n}, rng);
    runtime::set_num_threads(1);
    const Tensor ref = matmul(a, b);
    const Tensor ref_tn = matmul_tn(transpose2d(a), b);
    runtime::set_num_threads(4);
    const Tensor par = matmul(a, b);
    const Tensor par_tn = matmul_tn(transpose2d(a), b);
    runtime::set_num_threads(0);
    expect_bits_equal(ref, par, "matmul 1 vs 4 lanes");
    expect_bits_equal(ref_tn, par_tn, "matmul_tn 1 vs 4 lanes");
  }
}

// ---- shape-error paths ------------------------------------------------------

TEST(GemmErrors, MatmulThrowMessagesNameTheShapes) {
  const Tensor a({2, 3});
  const Tensor b({4, 2});
  try {
    matmul(a, b);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("matmul: bad shapes"), std::string::npos) << msg;
    EXPECT_NE(msg.find("[2, 3]"), std::string::npos) << msg;
    EXPECT_NE(msg.find("[4, 2]"), std::string::npos) << msg;
  }
  EXPECT_THROW(matmul(Tensor({2}), Tensor({2, 2})), std::invalid_argument);
  EXPECT_THROW(matmul(Tensor({2, 2, 2}), Tensor({2, 2})), std::invalid_argument);
}

TEST(GemmErrors, TransposedVariantsValidateSharedDim) {
  EXPECT_THROW(matmul_tn(Tensor({3, 2}), Tensor({4, 5})), std::invalid_argument);
  EXPECT_THROW(matmul_nt(Tensor({2, 3}), Tensor({5, 4})), std::invalid_argument);
  try {
    matmul_tn(Tensor({3, 2}), Tensor({4, 5}));
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("matmul_tn: bad shapes"),
              std::string::npos);
  }
}

// ---- scratch arena ----------------------------------------------------------

TEST(ScratchArena, GrowsAndReusesPerSlot) {
  using runtime::Scratch;
  runtime::ScratchArena arena;
  float* p1 = arena.floats(Scratch::kGemmPackA, 100);
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p1) % runtime::kScratchAlign, 0u);
  float* p2 = arena.floats(Scratch::kGemmPackA, 50);  // smaller request reuses
  EXPECT_EQ(p1, p2);
  // Another slot must not disturb the first.
  float* b1 = arena.floats(Scratch::kGemmPackB, 100000);
  EXPECT_NE(b1, p1);
  EXPECT_EQ(arena.floats(Scratch::kGemmPackA, 100), p1);
  EXPECT_GE(arena.capacity_bytes(), 100000 * sizeof(float));
}

TEST(ScratchArena, NamedSlotsAreIndependent) {
  // Every named handle hands out a distinct live buffer: nested consumers
  // (GEMM pack slots under the sym-Gram tile under the telemetry stats) must
  // never alias.
  using runtime::Scratch;
  runtime::ScratchArena arena;
  std::vector<float*> bufs;
  for (std::size_t s = 0; s < static_cast<std::size_t>(Scratch::kCount); ++s) {
    bufs.push_back(arena.floats(static_cast<Scratch>(s), 64));
  }
  for (std::size_t i = 0; i < bufs.size(); ++i) {
    for (std::size_t j = i + 1; j < bufs.size(); ++j) {
      EXPECT_NE(bufs[i], bufs[j]);
    }
  }
}

}  // namespace
}  // namespace ibrar
