// Old-vs-new parity: the engine-composed attacks must reproduce the seed
// implementations bit-exactly at a fixed seed with the active set off, and
// must leave robust accuracy unchanged with the active set on.
//
// The reference functions below are verbatim copies of the pre-refactor
// perturb() bodies (seed commit a1173ce), expressed through the public
// helpers they used (input_gradient, project_linf, margin_loss, randn,
// rand_uniform). If the engine drifts by a single ulp, these tests fail.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "attacks/engine.hpp"
#include "attacks/fgsm.hpp"
#include "attacks/mifgsm.hpp"
#include "attacks/nifgsm.hpp"
#include "attacks/pgd.hpp"
#include "attacks/registry.hpp"
#include "data/registry.hpp"
#include "models/registry.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"
#include "tensor/reduce.hpp"
#include "train/trades.hpp"
#include "train/trainer.hpp"

namespace ibrar::attacks {
namespace {

struct TrainedSetup {
  data::SyntheticData data = data::make_dataset("synth-cifar10", 300, 120);
  models::TapClassifierPtr model;

  TrainedSetup() {
    Rng rng(3);
    models::ModelSpec spec;
    spec.name = "mlp";
    model = models::make_model(spec, rng);
    train::TrainConfig tc;
    tc.epochs = 5;
    tc.batch_size = 50;
    train::Trainer trainer(model, std::make_shared<train::CEObjective>(), tc);
    trainer.fit(data.train);
  }
};

TrainedSetup& setup() {
  static TrainedSetup s;
  return s;
}

data::Batch eval_batch(std::int64_t n = 40) {
  return data::make_batch(setup().data.test, 0, n);
}

void expect_bit_equal(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << " diverges at flat index " << i;
  }
}

// ---- reference (seed) implementations ---------------------------------------

Tensor seed_fgsm(models::TapClassifier& model, const Tensor& x,
                 const std::vector<std::int64_t>& y, const AttackConfig& cfg) {
  AttackModeGuard guard(model);
  const Tensor g = input_gradient(model, x, y);
  Tensor adv = add(x, mul_scalar(sign(g), cfg.eps));
  project_linf(adv, x, cfg.eps, cfg.clip_lo, cfg.clip_hi);
  return adv;
}

Tensor seed_pgd_trajectory(models::TapClassifier& model, const Tensor& x,
                           const std::vector<std::int64_t>& y, Tensor adv,
                           const AttackConfig& cfg) {
  for (std::int64_t s = 0; s < cfg.steps; ++s) {
    const Tensor g = input_gradient(model, adv, y);
    adv = add(adv, mul_scalar(sign(g), cfg.alpha));
    project_linf(adv, x, cfg.eps, cfg.clip_lo, cfg.clip_hi);
  }
  return adv;
}

Tensor seed_pgd(models::TapClassifier& model, const Tensor& x,
                const std::vector<std::int64_t>& y, const AttackConfig& cfg,
                Rng& rng) {
  AttackModeGuard guard(model);
  const std::int64_t restarts =
      cfg.random_start ? std::max<std::int64_t>(1, cfg.restarts) : 1;
  auto start_for_restart = [&]() {
    Tensor adv = x;
    if (cfg.random_start) {
      const Tensor noise = rand_uniform(x.shape(), rng, -cfg.eps, cfg.eps);
      adv = add(adv, noise);
      project_linf(adv, x, cfg.eps, cfg.clip_lo, cfg.clip_hi);
    }
    return adv;
  };
  if (restarts == 1) {
    return seed_pgd_trajectory(model, x, y, start_for_restart(), cfg);
  }
  const auto n = x.dim(0);
  const std::int64_t img = n > 0 ? x.numel() / n : 0;
  Tensor best_adv = x;
  std::vector<float> best(static_cast<std::size_t>(n),
                          std::numeric_limits<float>::infinity());
  for (std::int64_t r = 0; r < restarts; ++r) {
    const Tensor adv = seed_pgd_trajectory(model, x, y, start_for_restart(), cfg);
    std::vector<float> m;
    {
      ag::NoGradGuard ng;
      m = margin_loss(model.forward(ag::Var::constant(adv)).value(), y);
    }
    for (std::int64_t i = 0; i < n; ++i) {
      const auto u = static_cast<std::size_t>(i);
      if (m[u] < best[u]) {
        best[u] = m[u];
        std::copy_n(adv.data().begin() + i * img, img,
                    best_adv.data().begin() + i * img);
      }
    }
  }
  return best_adv;
}

Tensor seed_mifgsm(models::TapClassifier& model, const Tensor& x,
                   const std::vector<std::int64_t>& y, const AttackConfig& cfg,
                   float decay) {
  AttackModeGuard guard(model);
  Tensor adv = x;
  Tensor g_acc(x.shape());
  for (std::int64_t s = 0; s < cfg.steps; ++s) {
    Tensor g = input_gradient(model, adv, y);
    const float l1 = sum_all(abs(g)) / static_cast<float>(g.dim(0));
    if (l1 > 1e-12f) g = mul_scalar(g, 1.0f / l1);
    g_acc = add(mul_scalar(g_acc, decay), g);
    adv = add(adv, mul_scalar(sign(g_acc), cfg.alpha));
    project_linf(adv, x, cfg.eps, cfg.clip_lo, cfg.clip_hi);
  }
  return adv;
}

Tensor seed_nifgsm(models::TapClassifier& model, const Tensor& x,
                   const std::vector<std::int64_t>& y, const AttackConfig& cfg,
                   float momentum) {
  AttackModeGuard guard(model);
  Tensor adv = x;
  Tensor g_acc(x.shape());
  for (std::int64_t s = 0; s < cfg.steps; ++s) {
    Tensor nes = add(adv, mul_scalar(g_acc, cfg.alpha * momentum));
    project_linf(nes, x, cfg.eps, cfg.clip_lo, cfg.clip_hi);
    Tensor g = input_gradient(model, nes, y);
    const float l1 = sum_all(abs(g)) / static_cast<float>(g.dim(0));
    if (l1 > 1e-12f) g = mul_scalar(g, 1.0f / l1);
    g_acc = add(mul_scalar(g_acc, momentum), g);
    adv = add(adv, mul_scalar(sign(g_acc), cfg.alpha));
    project_linf(adv, x, cfg.eps, cfg.clip_lo, cfg.clip_hi);
  }
  return adv;
}

Tensor seed_trades_kl_pgd(models::TapClassifier& model, const Tensor& x,
                          const Tensor& p_clean, const AttackConfig& inner,
                          Rng& rng) {
  AttackModeGuard guard(model);
  Tensor adv = x;
  {
    Tensor noise = randn(x.shape(), rng, 0.0f, 1e-3f);
    adv = add(adv, noise);
    project_linf(adv, x, inner.eps, inner.clip_lo, inner.clip_hi);
  }
  const ag::Var p_const = ag::Var::constant(p_clean);
  for (std::int64_t s = 0; s < inner.steps; ++s) {
    ag::Var input = ag::Var::param(adv);
    ag::Var kl = ag::kl_div(p_const, ag::log_softmax(model.forward(input)));
    kl.backward();
    adv = add(adv, mul_scalar(sign(input.grad()), inner.alpha));
    project_linf(adv, x, inner.eps, inner.clip_lo, inner.clip_hi);
  }
  return adv;
}

// ---- bit-exact parity (active set off) --------------------------------------

TEST(Parity, FGSMBitExact) {
  auto b = eval_batch();
  AttackConfig cfg;
  FGSM fgsm(cfg);
  expect_bit_equal(fgsm.perturb(*setup().model, b.x, b.y),
                   seed_fgsm(*setup().model, b.x, b.y, cfg), "FGSM");
}

TEST(Parity, PGDSingleRestartBitExact) {
  auto b = eval_batch();
  AttackConfig cfg;
  cfg.steps = 10;
  cfg.seed = 1234;
  PGD pgd(cfg);
  Rng ref_rng(cfg.seed);
  expect_bit_equal(pgd.perturb(*setup().model, b.x, b.y),
                   seed_pgd(*setup().model, b.x, b.y, cfg, ref_rng), "PGD10");
}

TEST(Parity, PGDNoRandomStartBitExact) {
  auto b = eval_batch();
  AttackConfig cfg;
  cfg.steps = 5;
  cfg.random_start = false;
  cfg.restarts = 4;  // seed collapses restarts without random start
  PGD pgd(cfg);
  Rng ref_rng(cfg.seed);
  expect_bit_equal(pgd.perturb(*setup().model, b.x, b.y),
                   seed_pgd(*setup().model, b.x, b.y, cfg, ref_rng),
                   "PGD5 deterministic");
}

TEST(Parity, PGDMultiRestartBitExact) {
  auto b = eval_batch();
  AttackConfig cfg;
  cfg.steps = 5;
  cfg.restarts = 3;
  cfg.seed = 99;
  PGD pgd(cfg);
  Rng ref_rng(cfg.seed);
  expect_bit_equal(pgd.perturb(*setup().model, b.x, b.y),
                   seed_pgd(*setup().model, b.x, b.y, cfg, ref_rng),
                   "PGD5x3 restarts");
}

TEST(Parity, PGDStreamPersistsAcrossBatches) {
  // The attack object's RNG stream must keep advancing across perturb calls
  // exactly like the seed implementation's member Rng did.
  auto b1 = eval_batch(20);
  auto b2 = data::make_batch(setup().data.test, 20, 40);
  AttackConfig cfg;
  cfg.steps = 3;
  PGD pgd(cfg);
  Rng ref_rng(cfg.seed);
  expect_bit_equal(pgd.perturb(*setup().model, b1.x, b1.y),
                   seed_pgd(*setup().model, b1.x, b1.y, cfg, ref_rng),
                   "PGD batch 1");
  expect_bit_equal(pgd.perturb(*setup().model, b2.x, b2.y),
                   seed_pgd(*setup().model, b2.x, b2.y, cfg, ref_rng),
                   "PGD batch 2");
}

TEST(Parity, MIFGSMBitExact) {
  auto b = eval_batch();
  AttackConfig cfg;
  cfg.steps = 8;
  MIFGSM mi(cfg);
  expect_bit_equal(mi.perturb(*setup().model, b.x, b.y),
                   seed_mifgsm(*setup().model, b.x, b.y, cfg, 1.0f), "MIFGSM");
}

TEST(Parity, NIFGSMBitExact) {
  auto b = eval_batch();
  AttackConfig cfg;
  cfg.steps = 8;
  NIFGSM ni(cfg);
  expect_bit_equal(ni.perturb(*setup().model, b.x, b.y),
                   seed_nifgsm(*setup().model, b.x, b.y, cfg, 1.0f), "NIFGSM");
}

TEST(Parity, TRADESInnerKLPGDBitExact) {
  auto b = eval_batch(30);
  AttackConfig inner;
  inner.steps = 7;
  inner.seed = 4242;
  Tensor p_clean;
  {
    ag::NoGradGuard ng;
    setup().model->set_training(false);
    p_clean = softmax_rows(
        setup().model->forward(ag::Var::constant(b.x)).value());
  }
  train::TRADESObjective trades(inner);
  Rng ref_rng(inner.seed ^ 0x7d5u);  // the objective's documented stream
  expect_bit_equal(
      trades.kl_pgd(*setup().model, b.x, b.y, p_clean),
      seed_trades_kl_pgd(*setup().model, b.x, p_clean, inner, ref_rng),
      "TRADES inner KL-PGD");
}

// ---- active-set invariance --------------------------------------------------

double robust_acc(Attack& atk, const data::Batch& b) {
  const Tensor adv = atk.perturb(*setup().model, b.x, b.y);
  return accuracy(*setup().model, adv, b.y);
}

TEST(ActiveSet, RobustAccuracyUnchangedPGD) {
  auto b = eval_batch(60);
  AttackConfig cfg;
  cfg.steps = 10;
  cfg.track_best = BestMode::kPerStep;
  PGD full(cfg);
  AttackConfig cfg_as = cfg;
  cfg_as.active_set = true;
  PGD compact(cfg_as);
  EXPECT_DOUBLE_EQ(robust_acc(full, b), robust_acc(compact, b));
}

TEST(ActiveSet, RobustAccuracyUnchangedPGDRestarts) {
  auto b = eval_batch(60);
  AttackConfig cfg;
  cfg.steps = 5;
  cfg.restarts = 3;
  cfg.track_best = BestMode::kPerStep;
  PGD full(cfg);
  AttackConfig cfg_as = cfg;
  cfg_as.active_set = true;
  PGD compact(cfg_as);
  EXPECT_DOUBLE_EQ(robust_acc(full, b), robust_acc(compact, b));
}

TEST(ActiveSet, SurvivorRowsBitExact) {
  // Examples the attack never fools must come back bit-identical with the
  // active set on or off: eval-mode forwards are row-independent, so
  // compaction cannot perturb a survivor's trajectory.
  auto b = eval_batch(60);
  AttackConfig cfg;
  cfg.steps = 10;
  cfg.track_best = BestMode::kPerStep;
  PGD full(cfg);
  const Tensor adv_full = full.perturb(*setup().model, b.x, b.y);
  AttackConfig cfg_as = cfg;
  cfg_as.active_set = true;
  PGD compact(cfg_as);
  const Tensor adv_as = compact.perturb(*setup().model, b.x, b.y);
  const auto pred = predict(*setup().model, adv_as);
  const std::int64_t img = b.x.numel() / b.x.dim(0);
  std::int64_t survivors = 0;
  for (std::int64_t i = 0; i < b.x.dim(0); ++i) {
    if (pred[static_cast<std::size_t>(i)] != b.y[static_cast<std::size_t>(i)]) {
      continue;  // fooled rows legitimately stop at their first success
    }
    ++survivors;
    for (std::int64_t k = 0; k < img; ++k) {
      ASSERT_EQ(adv_full[i * img + k], adv_as[i * img + k])
          << "survivor row " << i << " diverged at offset " << k;
    }
  }
  EXPECT_GT(survivors, 0) << "probe model too weak for the invariance check";
}

TEST(ActiveSet, FullRetirementDoesNotShiftRNGStream) {
  // When every example retires early (here: labels chosen so the whole batch
  // is misclassified from the start), later restarts must still consume
  // their full-batch noise draws — otherwise the attack object's persistent
  // stream shifts and the NEXT batch diverges from the active_set=off run.
  auto wrong = eval_batch(20);
  {
    const auto pred = predict(*setup().model, wrong.x);
    for (std::size_t i = 0; i < wrong.y.size(); ++i) {
      wrong.y[i] = (pred[i] + 1) % 10;  // guaranteed misclassified at start
    }
  }
  auto b2 = data::make_batch(setup().data.test, 20, 60);

  AttackConfig cfg;
  cfg.steps = 3;
  cfg.restarts = 3;
  cfg.track_best = BestMode::kPerStep;
  PGD full(cfg);
  AttackConfig cfg_as = cfg;
  cfg_as.active_set = true;
  PGD compact(cfg_as);

  (void)full.perturb(*setup().model, wrong.x, wrong.y);
  (void)compact.perturb(*setup().model, wrong.x, wrong.y);
  const Tensor adv_full = full.perturb(*setup().model, b2.x, b2.y);
  const Tensor adv_as = compact.perturb(*setup().model, b2.x, b2.y);
  EXPECT_DOUBLE_EQ(accuracy(*setup().model, adv_full, b2.y),
                   accuracy(*setup().model, adv_as, b2.y));
  // Survivors of the second batch must still be bit-identical.
  const auto pred2 = predict(*setup().model, adv_as);
  const std::int64_t img = b2.x.numel() / b2.x.dim(0);
  for (std::int64_t i = 0; i < b2.x.dim(0); ++i) {
    if (pred2[static_cast<std::size_t>(i)] != b2.y[static_cast<std::size_t>(i)]) {
      continue;
    }
    for (std::int64_t k = 0; k < img; ++k) {
      ASSERT_EQ(adv_full[i * img + k], adv_as[i * img + k])
          << "batch-2 survivor row " << i << " diverged at offset " << k;
    }
  }
}

TEST(ActiveSet, RejectedForBatchCoupledAttacks) {
  auto b = eval_batch(10);
  AttackConfig cfg;
  cfg.steps = 2;
  cfg.active_set = true;
  MIFGSM mi(cfg);
  EXPECT_THROW(mi.perturb(*setup().model, b.x, b.y), std::invalid_argument);
  NIFGSM ni(cfg);
  EXPECT_THROW(ni.perturb(*setup().model, b.x, b.y), std::invalid_argument);
}

TEST(ActiveSet, SquareMatchesSeedRNGSchedule) {
  // Square's compaction is always on; determinism across runs of the same
  // object config must hold (the RNG draws only depend on the survivor set,
  // which is itself deterministic).
  auto b = eval_batch(20);
  AttackConfig cfg;
  cfg.steps = 30;
  auto a1 = make("square", cfg);
  auto a2 = make("square", cfg);
  expect_bit_equal(a1->perturb(*setup().model, b.x, b.y),
                   a2->perturb(*setup().model, b.x, b.y), "Square determinism");
}

}  // namespace
}  // namespace ibrar::attacks
