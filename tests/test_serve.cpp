// Serving runtime: queue backpressure + drain, dual batch triggers,
// batched-vs-singleton bit-identity, versioned hot-swap under live load, and
// telemetry sampling cadence.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "models/registry.hpp"
#include "nn/module.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/batcher.hpp"
#include "serve/model_registry.hpp"
#include "serve/request_queue.hpp"
#include "serve/server.hpp"
#include "tensor/random.hpp"
#include "util/rng.hpp"

namespace ibrar {
namespace {

using namespace std::chrono_literals;

constexpr std::int64_t kSize = 4;       // image side
constexpr std::int64_t kChannels = 3;
constexpr std::int64_t kClasses = 5;

models::TapClassifierPtr tiny_model(std::uint64_t seed) {
  models::ModelSpec spec;
  spec.name = "mlp";
  spec.num_classes = kClasses;
  spec.image_size = kSize;
  spec.in_channels = kChannels;
  Rng rng(seed);
  return models::make_model(spec, rng);
}

Shape sample_shape() { return {kChannels, kSize, kSize}; }

Tensor sample_input(std::uint64_t seed) {
  Rng rng(seed);
  return rand_uniform({kChannels, kSize, kSize}, rng, 0.0f, 1.0f);
}

serve::Request make_request(std::uint64_t seed = 1) {
  serve::Request r;
  r.input = sample_input(seed);
  return r;
}

// ---- request queue ----------------------------------------------------------

TEST(RequestQueue, BackpressureRejectsWithoutConsuming) {
  serve::RequestQueue q(2);
  serve::Request a = make_request(1), b = make_request(2), c = make_request(3);
  EXPECT_EQ(q.push(a), serve::PushStatus::kAccepted);
  EXPECT_EQ(q.push(b), serve::PushStatus::kAccepted);
  EXPECT_EQ(q.push(c), serve::PushStatus::kFull);
  // The rejected request was NOT moved from: its promise is still usable.
  auto fut = c.promise.get_future();
  serve::Reply reply;
  reply.status = serve::ReplyStatus::kRejectedQueueFull;
  c.promise.set_value(std::move(reply));
  EXPECT_EQ(fut.get().status, serve::ReplyStatus::kRejectedQueueFull);
  EXPECT_EQ(q.size(), 2u);
}

TEST(RequestQueue, CloseStopsAdmissionButDrainsAcceptedItems) {
  serve::RequestQueue q(8);
  serve::Request a = make_request(1), b = make_request(2);
  EXPECT_EQ(q.push(a), serve::PushStatus::kAccepted);
  EXPECT_EQ(q.push(b), serve::PushStatus::kAccepted);
  q.close();
  serve::Request late = make_request(3);
  EXPECT_EQ(q.push(late), serve::PushStatus::kClosed);
  // Both accepted items drain before kClosed is reported.
  serve::Request out;
  EXPECT_EQ(q.pop(out), serve::PopStatus::kItem);
  EXPECT_EQ(q.pop(out), serve::PopStatus::kItem);
  EXPECT_EQ(q.pop(out), serve::PopStatus::kClosed);
}

TEST(RequestQueue, AdmissionIndicesAreGapFreeAcrossRejections) {
  // The telemetry cadence is "every Kth ADMITTED request": a rejected push
  // must not consume a sequence number.
  serve::RequestQueue q(1);
  serve::Request a = make_request(1), b = make_request(2), c = make_request(3);
  ASSERT_EQ(q.push(a), serve::PushStatus::kAccepted);
  ASSERT_EQ(q.push(b), serve::PushStatus::kFull);  // no index consumed
  serve::Request out;
  ASSERT_EQ(q.pop(out), serve::PopStatus::kItem);
  EXPECT_EQ(out.index, 0u);
  ASSERT_EQ(q.push(c), serve::PushStatus::kAccepted);
  ASSERT_EQ(q.pop(out), serve::PopStatus::kItem);
  EXPECT_EQ(out.index, 1u);  // 1, not 2: the kFull push left no gap
}

TEST(RequestQueue, PopUntilTimesOutOnOpenEmptyQueue) {
  serve::RequestQueue q(4);
  serve::Request out;
  EXPECT_EQ(q.pop_until(out, std::chrono::steady_clock::now() + 5ms),
            serve::PopStatus::kTimeout);
}

// ---- batcher ----------------------------------------------------------------

TEST(Batcher, SizeTriggerReleasesFullBatchWithoutDeadlineWait) {
  serve::RequestQueue q(16);
  for (int i = 0; i < 4; ++i) {
    serve::Request r = make_request(static_cast<std::uint64_t>(i));
    ASSERT_EQ(q.push(r), serve::PushStatus::kAccepted);
  }
  // A 10-second deadline would hang the test if the size trigger waited.
  serve::Batcher batcher(q, /*max_batch=*/4, /*deadline_us=*/10'000'000);
  serve::MicroBatch mb;
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(batcher.next(mb));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(mb.size(), 4);
  EXPECT_EQ(mb.trigger, serve::BatchTrigger::kSize);
  EXPECT_LT(elapsed, 2s);
}

TEST(Batcher, DeadlineTriggerFlushesPartialBatch) {
  serve::RequestQueue q(16);
  for (int i = 0; i < 2; ++i) {
    serve::Request r = make_request(static_cast<std::uint64_t>(i));
    ASSERT_EQ(q.push(r), serve::PushStatus::kAccepted);
  }
  serve::Batcher batcher(q, /*max_batch=*/8, /*deadline_us=*/20'000);
  serve::MicroBatch mb;
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(batcher.next(mb));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(mb.size(), 2);
  EXPECT_EQ(mb.trigger, serve::BatchTrigger::kDeadline);
  EXPECT_GE(elapsed, 15ms);  // it really waited the deadline out
}

TEST(Batcher, DrainTriggerFlushesImmediatelyOnClose) {
  serve::RequestQueue q(16);
  for (int i = 0; i < 3; ++i) {
    serve::Request r = make_request(static_cast<std::uint64_t>(i));
    ASSERT_EQ(q.push(r), serve::PushStatus::kAccepted);
  }
  q.close();
  serve::Batcher batcher(q, /*max_batch=*/8, /*deadline_us=*/10'000'000);
  serve::MicroBatch mb;
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(batcher.next(mb));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(mb.size(), 3);
  EXPECT_EQ(mb.trigger, serve::BatchTrigger::kDrain);
  EXPECT_LT(elapsed, 2s);  // no 10-second deadline wait on shutdown
  EXPECT_FALSE(batcher.next(mb));  // queue closed and drained
}

// ---- model registry ---------------------------------------------------------

TEST(ModelRegistry, PublishBumpsVersionAndSwapsSnapshot) {
  serve::ModelRegistry reg;
  EXPECT_EQ(reg.version(), 0u);
  EXPECT_EQ(reg.current(), nullptr);
  const auto v1 = reg.publish(tiny_model(1), sample_shape(), "v1");
  EXPECT_EQ(v1, 1u);
  const auto snap1 = reg.current();
  ASSERT_NE(snap1, nullptr);
  EXPECT_EQ(snap1->version, 1u);
  EXPECT_EQ(snap1->tag, "v1");
  EXPECT_FALSE(snap1->model->training());  // published in eval mode
  const auto v2 = reg.publish(tiny_model(2), sample_shape(), "v2");
  EXPECT_EQ(v2, 2u);
  // The old snapshot stays alive and unchanged for in-flight holders.
  EXPECT_EQ(snap1->version, 1u);
  EXPECT_EQ(reg.current()->version, 2u);
}

TEST(ModelRegistry, CheckpointHotSwapRoundTripsBitIdentically) {
  const std::string path = "test_serve_ckpt.bin";
  auto original = tiny_model(7);
  original->set_training(false);
  nn::save_model(*original, path);

  models::ModelSpec spec;
  spec.name = "mlp";
  spec.num_classes = kClasses;
  spec.image_size = kSize;
  spec.in_channels = kChannels;
  serve::ModelRegistry reg;
  const auto v = reg.publish_checkpoint(spec, path);
  EXPECT_EQ(v, 1u);

  ag::NoGradGuard ng;
  const Tensor x = sample_input(11).reshape({1, kChannels, kSize, kSize});
  const Tensor a = original->forward(ag::Var::constant(x)).value();
  const Tensor b = reg.current()->forward(x);
  ASSERT_TRUE(a.same_shape(b));
  EXPECT_EQ(std::memcmp(a.data().data(), b.data().data(),
                        sizeof(float) * static_cast<std::size_t>(a.numel())),
            0);
  std::remove(path.c_str());
}

TEST(ModelRegistry, CheckpointLoadFailureLeavesCurrentVersionServing) {
  serve::ModelRegistry reg;
  reg.publish(tiny_model(1), sample_shape(), "v1");
  models::ModelSpec spec;
  spec.name = "mlp";
  spec.num_classes = kClasses;
  spec.image_size = kSize;
  spec.in_channels = kChannels;
  EXPECT_THROW(reg.publish_checkpoint(spec, "does_not_exist.bin"),
               std::runtime_error);
  EXPECT_EQ(reg.version(), 1u);
}

TEST(ModelRegistry, SnapshotBytesGaugeTracksPrepackAcrossHotSwap) {
  // Publishing a conv model prepacks its weights into micro-kernel panels;
  // the bytes live exactly as long as the last pinned snapshot of that
  // version. The gauge is process-global, so assert deltas, not absolutes.
  // Panel sizes are whole byte counts (integers in double), so the sums
  // compare exactly.
  auto& gauge = obs::registry().gauge("serve.snapshot_bytes");
  const double base = gauge.value();
  models::ModelSpec spec;  // vgg16
  spec.image_size = 8;
  {
    serve::ModelRegistry reg;
    Rng rng1(1);
    reg.publish(models::make_model(spec, rng1), {3, 8, 8}, "v1");
    const double v1_bytes = gauge.value() - base;
    EXPECT_GT(v1_bytes, 0.0);
    EXPECT_TRUE(reg.current()->model->fused_eval_ready());

    // Pin v1 like an in-flight batch would, then hot-swap to v2: both
    // versions' panels are live until the pin drops.
    auto pinned_v1 = reg.current();
    Rng rng2(2);
    reg.publish(models::make_model(spec, rng2), {3, 8, 8}, "v2");
    EXPECT_EQ(gauge.value(), base + 2 * v1_bytes);  // same architecture
    pinned_v1.reset();  // last holder of v1 -> its panels release
    EXPECT_EQ(gauge.value(), base + v1_bytes);
  }
  // Registry gone: the final version's panels release too.
  EXPECT_EQ(gauge.value(), base);
}

TEST(ModelRegistry, PublishWithoutPrepackBuildsNoPlans) {
  auto& gauge = obs::registry().gauge("serve.snapshot_bytes");
  const double base = gauge.value();
  models::ModelSpec spec;  // vgg16
  spec.image_size = 8;
  serve::ModelRegistry reg;
  Rng rng(3);
  reg.publish(models::make_model(spec, rng), {3, 8, 8}, "ref",
              /*prepack=*/false);
  EXPECT_EQ(gauge.value(), base);
  EXPECT_FALSE(reg.current()->model->fused_eval_ready());
}

// ---- server -----------------------------------------------------------------

serve::ServeConfig quick_config() {
  // Start from the environment so CI can re-run this whole suite with the
  // worker fan-out forced on (IBRAR_SERVE_WORKERS=4 under ASan/UBSan);
  // tests that need an exact worker count still set cfg.workers themselves.
  serve::ServeConfig cfg = serve::ServeConfig::from_env();
  cfg.max_batch = 4;
  cfg.deadline_us = 1000;
  cfg.queue_capacity = 64;
  return cfg;
}

TEST(Server, ServesAcceptedRequestsAndRejectsBadShapes) {
  serve::ModelRegistry reg;
  reg.publish(tiny_model(1), sample_shape());
  serve::Server server(reg, quick_config());
  auto fut = server.submit(sample_input(3));
  const auto reply = fut.get();
  EXPECT_EQ(reply.status, serve::ReplyStatus::kOk);
  EXPECT_EQ(reply.logits.numel(), kClasses);
  EXPECT_GE(reply.argmax, 0);
  EXPECT_LT(reply.argmax, kClasses);
  EXPECT_EQ(reply.model_version, 1u);
  EXPECT_GE(reply.batch_size, 1);
  EXPECT_GE(reply.compute_ns, 0);
  EXPECT_THROW(server.submit(Tensor({2, 2})), std::invalid_argument);
}

TEST(Server, ShutdownDrainsEveryAcceptedRequest) {
  serve::ModelRegistry reg;
  reg.publish(tiny_model(1), sample_shape());
  auto server = std::make_unique<serve::Server>(reg, quick_config());
  std::vector<std::future<serve::Reply>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(server->submit(sample_input(static_cast<std::uint64_t>(i))));
  }
  server->shutdown();  // close + drain + join
  std::size_t ok = 0, rejected = 0;
  for (auto& f : futures) {
    const auto r = f.get();
    if (r.status == serve::ReplyStatus::kOk) {
      ++ok;
    } else {
      ++rejected;  // backpressure is legal; dropping accepted work is not
      EXPECT_EQ(r.status, serve::ReplyStatus::kBusyRetryAfter);
    }
  }
  const auto stats = server->stats();
  EXPECT_EQ(ok, stats.accepted);
  EXPECT_EQ(ok, stats.served);
  EXPECT_EQ(rejected, stats.rejected_full);
  // Post-shutdown submissions resolve immediately with the shutdown status.
  auto late = server->submit(sample_input(99));
  EXPECT_EQ(late.get().status, serve::ReplyStatus::kRejectedShutdown);
  EXPECT_EQ(server->stats().rejected_shutdown, 1u);
}

TEST(Server, BackpressureRejectsWithStatusUnderFlood) {
  serve::ModelRegistry reg;
  // vgg forward is slow enough (>100us) that a burst of immediate submissions
  // outruns the single worker by a wide margin.
  models::ModelSpec spec;
  spec.name = "vgg16";
  spec.num_classes = kClasses;
  spec.image_size = 8;
  spec.in_channels = kChannels;
  Rng rng(5);
  reg.publish(models::make_model(spec, rng), {kChannels, 8, 8});

  serve::ServeConfig cfg;
  cfg.max_batch = 1;
  cfg.deadline_us = 0;
  cfg.queue_capacity = 4;
  serve::Server server(reg, cfg);
  Rng in_rng(17);
  const Tensor x = rand_uniform({kChannels, 8, 8}, in_rng, 0.0f, 1.0f);
  std::vector<std::future<serve::Reply>> futures;
  for (int i = 0; i < 64; ++i) futures.push_back(server.submit(x));
  std::size_t ok = 0, rejected = 0;
  for (auto& f : futures) {
    const auto r = f.get();
    if (r.status == serve::ReplyStatus::kOk) ++ok;
    else {
      // The default overload answer is busy + retry hint, never a bare
      // queue-full (CUPS server-error-busy semantics).
      EXPECT_EQ(r.status, serve::ReplyStatus::kBusyRetryAfter);
      EXPECT_GE(r.retry_after_ms, 1u);
      EXPECT_LE(r.retry_after_ms, 5000u);
      ++rejected;
    }
  }
  EXPECT_EQ(ok + rejected, 64u);
  EXPECT_GT(rejected, 0u);  // the bounded queue really pushed back
  const auto stats = server.stats();
  EXPECT_EQ(stats.accepted, ok);
  EXPECT_EQ(stats.rejected_full, rejected);
  EXPECT_EQ(stats.admission_busy, rejected);
}

TEST(Server, LegacyQueueFullStatusWhenBusyOnFullDisabled) {
  // Deployments that keyed off kRejectedQueueFull can opt out of the busy
  // protocol; the status (and only the status) reverts.
  serve::ModelRegistry reg;
  models::ModelSpec spec;
  spec.name = "vgg16";
  spec.num_classes = kClasses;
  spec.image_size = 8;
  spec.in_channels = kChannels;
  Rng rng(5);
  reg.publish(models::make_model(spec, rng), {kChannels, 8, 8});

  serve::ServeConfig cfg;
  cfg.max_batch = 1;
  cfg.deadline_us = 0;
  cfg.queue_capacity = 4;
  cfg.busy_on_full = false;
  serve::Server server(reg, cfg);
  Rng in_rng(17);
  const Tensor x = rand_uniform({kChannels, 8, 8}, in_rng, 0.0f, 1.0f);
  std::vector<std::future<serve::Reply>> futures;
  for (int i = 0; i < 64; ++i) futures.push_back(server.submit(x));
  std::size_t rejected = 0;
  for (auto& f : futures) {
    const auto r = f.get();
    if (!r.ok()) {
      EXPECT_EQ(r.status, serve::ReplyStatus::kRejectedQueueFull);
      EXPECT_EQ(r.retry_after_ms, 0u);
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0u);
  EXPECT_EQ(server.stats().admission_busy, 0u);
  EXPECT_EQ(server.stats().rejected_full, rejected);
}

TEST(Server, BatchedLogitsBitIdenticalToSingleton) {
  // The determinism contract: the same input produces the same logits bits
  // whether it rides a micro-batch or a batch of one.
  serve::ModelRegistry reg;
  reg.publish(tiny_model(1), sample_shape());

  const int n = 16;
  std::vector<Tensor> inputs;
  for (int i = 0; i < n; ++i) {
    inputs.push_back(sample_input(100 + static_cast<std::uint64_t>(i)));
  }

  std::vector<Tensor> singleton(n), batched(n);
  {
    serve::ServeConfig cfg;
    cfg.max_batch = 1;
    cfg.queue_capacity = 64;
    serve::Server server(reg, cfg);
    for (int i = 0; i < n; ++i) {
      singleton[static_cast<std::size_t>(i)] =
          server.submit(inputs[static_cast<std::size_t>(i)]).get().logits;
    }
  }
  std::uint64_t max_batch_seen = 0;
  {
    serve::ServeConfig cfg;
    cfg.max_batch = 8;
    cfg.deadline_us = 50'000;  // long enough that the burst coalesces
    cfg.queue_capacity = 64;
    serve::Server server(reg, cfg);
    std::vector<std::future<serve::Reply>> futures;
    for (int i = 0; i < n; ++i) {
      futures.push_back(server.submit(inputs[static_cast<std::size_t>(i)]));
    }
    for (int i = 0; i < n; ++i) {
      batched[static_cast<std::size_t>(i)] =
          futures[static_cast<std::size_t>(i)].get().logits;
    }
    max_batch_seen = server.stats().max_batch_observed;
  }
  EXPECT_GT(max_batch_seen, 1u);  // batching actually happened
  for (int i = 0; i < n; ++i) {
    const Tensor& a = singleton[static_cast<std::size_t>(i)];
    const Tensor& b = batched[static_cast<std::size_t>(i)];
    ASSERT_TRUE(a.same_shape(b));
    EXPECT_EQ(std::memcmp(a.data().data(), b.data().data(),
                          sizeof(float) * static_cast<std::size_t>(a.numel())),
              0)
        << "logits differ for request " << i;
  }
}

TEST(Server, HotSwapUnderLoadFinishesOldVersionThenServesNew) {
  serve::ModelRegistry reg;
  reg.publish(tiny_model(1), sample_shape(), "v1");
  serve::Server server(reg, quick_config());

  std::vector<serve::Reply> replies;
  for (int i = 0; i < 10; ++i) {
    replies.push_back(server.submit(sample_input(static_cast<std::uint64_t>(i)))
                          .get());
  }
  // Everything so far was served by v1.
  for (const auto& r : replies) {
    EXPECT_EQ(r.status, serve::ReplyStatus::kOk);
    EXPECT_EQ(r.model_version, 1u);
  }
  // Swap under live traffic: submissions race the publish from another
  // thread; whichever version a batch grabbed, it must complete OK and
  // versions may only move forward.
  std::thread swapper(
      [&reg] { reg.publish(tiny_model(2), sample_shape(), "v2"); });
  std::vector<serve::Reply> during;
  for (int i = 0; i < 20; ++i) {
    during.push_back(
        server.submit(sample_input(100 + static_cast<std::uint64_t>(i))).get());
  }
  swapper.join();
  std::uint64_t prev = 1;
  for (const auto& r : during) {
    EXPECT_EQ(r.status, serve::ReplyStatus::kOk);
    EXPECT_GE(r.model_version, prev);  // monotone with a single worker
    EXPECT_LE(r.model_version, 2u);
    prev = r.model_version;
  }
  // After the swap completed, the next request is guaranteed v2.
  const auto after = server.submit(sample_input(999)).get();
  EXPECT_EQ(after.status, serve::ReplyStatus::kOk);
  EXPECT_EQ(after.model_version, 2u);
}

TEST(Server, HotSwapToDifferentInputShapeFailsStaleRowsSafely) {
  // Requests validated against v1's (3, 4, 4) can still be queued when a
  // hot-swap publishes a model expecting a different layout. Those rows must
  // never reach the batch memcpy (heap overread); they fail with
  // kRejectedStaleShape while anything served before the swap is plain kOk.
  serve::ModelRegistry reg;
  reg.publish(tiny_model(1), sample_shape(), "v1");
  serve::ServeConfig cfg;
  cfg.max_batch = 2;
  cfg.deadline_us = 1000;
  cfg.queue_capacity = 64;
  serve::Server server(reg, cfg);

  std::vector<std::future<serve::Reply>> futures;
  for (int i = 0; i < 24; ++i) {
    futures.push_back(server.submit(sample_input(static_cast<std::uint64_t>(i))));
  }
  // Swap to a model with twice the spatial size while the queue drains.
  models::ModelSpec wide;
  wide.name = "mlp";
  wide.num_classes = kClasses;
  wide.image_size = 2 * kSize;
  wide.in_channels = kChannels;
  Rng rng(2);
  reg.publish(models::make_model(wide, rng), {kChannels, 2 * kSize, 2 * kSize},
              "v2-wide");

  std::size_t ok = 0, stale = 0;
  for (auto& f : futures) {
    const auto r = f.get();
    if (r.status == serve::ReplyStatus::kOk) {
      EXPECT_EQ(r.model_version, 1u);  // old shape can only be served by v1
      ++ok;
    } else {
      ASSERT_EQ(r.status, serve::ReplyStatus::kRejectedStaleShape);
      EXPECT_EQ(r.model_version, 2u);
      ++stale;
    }
  }
  EXPECT_EQ(ok + stale, 24u);  // every future resolved, whichever side of the
                               // swap its batch landed on
  EXPECT_EQ(server.stats().rejected_stale, stale);
  // New-shape traffic is served by v2.
  Rng in_rng(77);
  const auto wide_reply =
      server.submit(rand_uniform({kChannels, 2 * kSize, 2 * kSize}, in_rng))
          .get();
  EXPECT_EQ(wide_reply.status, serve::ReplyStatus::kOk);
  EXPECT_EQ(wide_reply.model_version, 2u);
}

TEST(Server, MultiWorkerLogitsBitIdenticalToSingleWorker) {
  // The fixed race: telemetry's tap capture used to flip the shared
  // snapshot's train/eval flag, so workers > 1 with telemetry on was
  // rejected at construction. Now every forward is the strictly-const eval
  // path; any worker count must serve memcmp-identical logits whichever
  // worker or micro-batch a request lands on, telemetry on or off.
  serve::ModelRegistry reg;
  reg.publish(tiny_model(1), sample_shape());

  const int n = 32;
  std::vector<Tensor> inputs;
  for (int i = 0; i < n; ++i) {
    inputs.push_back(sample_input(300 + static_cast<std::uint64_t>(i)));
  }

  // Reference: one worker, telemetry off, singleton batches.
  std::vector<Tensor> reference(n);
  {
    serve::ServeConfig cfg;
    cfg.max_batch = 1;
    cfg.queue_capacity = 64;
    serve::Server server(reg, cfg);
    for (int i = 0; i < n; ++i) {
      reference[static_cast<std::size_t>(i)] =
          server.submit(inputs[static_cast<std::size_t>(i)]).get().logits;
    }
  }

  for (const std::int64_t workers : {2, 4}) {
    for (const std::int64_t sample_every : {0, 3}) {
      serve::ServeConfig cfg;
      cfg.max_batch = 4;
      cfg.deadline_us = 1000;
      cfg.queue_capacity = 64;
      cfg.workers = workers;
      cfg.telemetry.sample_every = sample_every;
      cfg.telemetry.window = 4;  // small window: several re-scores mid-flight
      serve::Server server(reg, cfg);  // no longer throws
      std::vector<std::future<serve::Reply>> futures;
      for (int i = 0; i < n; ++i) {
        futures.push_back(server.submit(inputs[static_cast<std::size_t>(i)]));
      }
      for (int i = 0; i < n; ++i) {
        const auto reply = futures[static_cast<std::size_t>(i)].get();
        ASSERT_EQ(reply.status, serve::ReplyStatus::kOk);
        const Tensor& a = reference[static_cast<std::size_t>(i)];
        const Tensor& b = reply.logits;
        ASSERT_TRUE(a.same_shape(b));
        EXPECT_EQ(
            std::memcmp(a.data().data(), b.data().data(),
                        sizeof(float) * static_cast<std::size_t>(a.numel())),
            0)
            << "logits differ for request " << i << " (workers=" << workers
            << ", telemetry sample_every=" << sample_every << ")";
      }
    }
  }
}

TEST(Server, HotSwapUnderMultiWorkerLoadServesPublishedVersionsOnly) {
  serve::ModelRegistry reg;
  reg.publish(tiny_model(1), sample_shape(), "v1");
  serve::ServeConfig cfg = quick_config();
  cfg.workers = 4;
  cfg.telemetry.sample_every = 2;  // exercise concurrent captures too
  cfg.telemetry.window = 4;
  serve::Server server(reg, cfg);

  // Swap races the in-flight burst: with several workers there is no global
  // reply order, so per-request the only guarantees are (a) every request is
  // served OK by a version that was published, and (b) anything submitted
  // after publish() returned is served by the new version.
  std::thread swapper(
      [&reg] { reg.publish(tiny_model(2), sample_shape(), "v2"); });
  std::vector<std::future<serve::Reply>> futures;
  for (int i = 0; i < 48; ++i) {
    futures.push_back(
        server.submit(sample_input(500 + static_cast<std::uint64_t>(i))));
  }
  swapper.join();
  for (auto& f : futures) {
    const auto r = f.get();
    EXPECT_EQ(r.status, serve::ReplyStatus::kOk);
    EXPECT_GE(r.model_version, 1u);
    EXPECT_LE(r.model_version, 2u);
  }
  const auto after = server.submit(sample_input(999)).get();
  EXPECT_EQ(after.status, serve::ReplyStatus::kOk);
  EXPECT_EQ(after.model_version, 2u);
}

TEST(Server, FromEnvReadsWorkersKnob) {
  ASSERT_EQ(::setenv("IBRAR_SERVE_WORKERS", "3", 1), 0);
  EXPECT_EQ(serve::ServeConfig::from_env().workers, 3);
  ASSERT_EQ(::unsetenv("IBRAR_SERVE_WORKERS"), 0);
  EXPECT_EQ(serve::ServeConfig::from_env().workers, 1);
}

TEST(Server, FromEnvReadsCacheAndAdmissionKnobs) {
  // CI pins IBRAR_SERVE_CACHE_MB per sanitizer step, so save whatever is
  // there, clear it to observe the real defaults, and restore afterwards.
  const char* prior = ::getenv("IBRAR_SERVE_CACHE_MB");
  const std::string saved = prior != nullptr ? prior : "";
  ASSERT_EQ(::unsetenv("IBRAR_SERVE_CACHE_MB"), 0);
  // Deployment default: cache ON at 32 MiB, per-client limits off.
  EXPECT_EQ(serve::ServeConfig::from_env().cache_bytes,
            std::size_t{32} << 20);
  EXPECT_EQ(serve::ServeConfig::from_env().client_rate, 0.0);
  EXPECT_EQ(serve::ServeConfig::from_env().max_inflight_per_client, 0);
  ASSERT_EQ(::setenv("IBRAR_SERVE_CACHE_MB", "0", 1), 0);
  ASSERT_EQ(::setenv("IBRAR_SERVE_CLIENT_RATE", "2.5", 1), 0);
  ASSERT_EQ(::setenv("IBRAR_SERVE_MAX_INFLIGHT", "7", 1), 0);
  const auto cfg = serve::ServeConfig::from_env();
  EXPECT_EQ(cfg.cache_bytes, 0u);  // 0 MiB disables the cache entirely
  EXPECT_DOUBLE_EQ(cfg.client_rate, 2.5);
  EXPECT_EQ(cfg.max_inflight_per_client, 7);
  if (prior != nullptr) {
    ASSERT_EQ(::setenv("IBRAR_SERVE_CACHE_MB", saved.c_str(), 1), 0);
  } else {
    ASSERT_EQ(::unsetenv("IBRAR_SERVE_CACHE_MB"), 0);
  }
  ASSERT_EQ(::unsetenv("IBRAR_SERVE_CLIENT_RATE"), 0);
  ASSERT_EQ(::unsetenv("IBRAR_SERVE_MAX_INFLIGHT"), 0);
}

TEST(Server, QueueWaitAndComputeSpansTileExactlyWithReplyFields) {
  // Regression for the accounting mismatch: reply.queue_ns used to stop at
  // the compute-start stamp while the queue_wait trace span stopped at batch
  // assembly, so span durations and reply fields disagreed and the stage
  // spans overlapped the compute span. One definition now feeds both: the
  // queue_wait stage ends exactly where compute begins (assemble_end), and
  // the reply fields are exactly the span durations.
  serve::ModelRegistry reg;
  reg.publish(tiny_model(1), sample_shape());
  obs::clear_trace();
  obs::set_trace_sample_every(1);
  serve::Reply reply;
  {
    serve::Server server(reg, quick_config());
    reply = server.submit(sample_input(42)).get();
  }
  obs::set_trace_sample_every(0);
  ASSERT_EQ(reply.status, serve::ReplyStatus::kOk);

  const obs::SpanRecord* queue_wait = nullptr;
  const obs::SpanRecord* compute = nullptr;
  const auto records = obs::trace_records();
  for (const auto& rec : records) {
    if (std::strcmp(rec.name, "queue_wait") == 0 && rec.corr == 0) {
      queue_wait = &rec;
    }
    if (std::strcmp(rec.name, "compute") == 0 && rec.corr == 0) {
      compute = &rec;
    }
  }
  ASSERT_NE(queue_wait, nullptr);
  ASSERT_NE(compute, nullptr);
  // Stages tile: no gap, no overlap.
  EXPECT_EQ(queue_wait->end_ns, compute->begin_ns);
  // Reply fields are the span durations, same clock, same boundaries.
  EXPECT_EQ(reply.queue_ns, queue_wait->end_ns - queue_wait->begin_ns);
  EXPECT_EQ(reply.compute_ns, compute->end_ns - compute->begin_ns);
}

TEST(Server, QueueDepthGaugeFreshOnRejectionPathsAndZeroAfterShutdown) {
  auto& depth = obs::registry().gauge("serve.queue_depth");
  serve::ModelRegistry reg;
  reg.publish(tiny_model(1), sample_shape());
  auto server = std::make_unique<serve::Server>(reg, quick_config());
  for (int i = 0; i < 8; ++i) {
    server->submit(sample_input(static_cast<std::uint64_t>(i))).get();
  }
  server->shutdown();
  // Drained and stopped: the gauge must read the true (empty) depth, not the
  // last accepted push's snapshot.
  EXPECT_EQ(depth.value(), 0.0);
  // Rejection paths refresh the gauge too (pre-fix they left it stale).
  depth.set(42.0);
  const auto late = server->submit(sample_input(99)).get();
  EXPECT_EQ(late.status, serve::ReplyStatus::kRejectedShutdown);
  EXPECT_EQ(depth.value(), 0.0);
}

TEST(Server, TelemetrySamplesEveryKthRequestAndScoresAfterWindow) {
  serve::ModelRegistry reg;
  reg.publish(tiny_model(1), sample_shape());
  serve::ServeConfig cfg = quick_config();
  cfg.max_batch = 1;  // keep admission order == completion order
  cfg.telemetry.sample_every = 4;
  cfg.telemetry.window = 8;
  serve::Server server(reg, cfg);

  std::vector<serve::Reply> replies;
  for (int i = 0; i < 33; ++i) {
    replies.push_back(server.submit(sample_input(static_cast<std::uint64_t>(i)))
                          .get());
  }
  std::size_t sampled = 0;
  for (std::size_t i = 0; i < replies.size(); ++i) {
    ASSERT_EQ(replies[i].status, serve::ReplyStatus::kOk);
    if (i % 4 == 0) {
      EXPECT_TRUE(replies[i].telemetry.sampled) << "request " << i;
      ++sampled;
    } else {
      EXPECT_FALSE(replies[i].telemetry.sampled) << "request " << i;
    }
  }
  EXPECT_EQ(sampled, 9u);  // indices 0, 4, ..., 32
  EXPECT_EQ(server.stats().telemetry_samples, 9u);
  // The 8th sample (request 28) filled the first window: scores exist from
  // then on, and suspicion becomes a valid [0, 1] energy fraction.
  EXPECT_EQ(server.monitor().score_epoch(), 1u);
  EXPECT_EQ(server.monitor().channel_scores().size(),
            static_cast<std::size_t>(tiny_model(1)->last_conv_channels()));
  EXPECT_LT(replies[24].telemetry.suspicion, 0.0f);  // before the window
  EXPECT_GE(replies[28].telemetry.suspicion, 0.0f);  // window just completed
  EXPECT_LE(replies[28].telemetry.suspicion, 1.0f);
  EXPECT_EQ(replies[28].telemetry.score_epoch, 1u);
  EXPECT_GE(replies[32].telemetry.suspicion, 0.0f);
}

}  // namespace
}  // namespace ibrar
