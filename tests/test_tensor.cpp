// Tensor layer: construction, broadcasting arithmetic, reductions, matmul,
// im2col/conv kernels, pooling, and the broadcast-adjoint reduce_to_shape.

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/im2col.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"
#include "tensor/reduce.hpp"
#include "tensor/tensor.hpp"

namespace ibrar {
namespace {

TEST(TensorBasics, DefaultIsScalarZero) {
  Tensor t;
  EXPECT_EQ(t.numel(), 1);
  EXPECT_EQ(t.rank(), 0);
  EXPECT_FLOAT_EQ(t.item(), 0.0f);
}

TEST(TensorBasics, ShapeAndFill) {
  Tensor t({2, 3}, 1.5f);
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.dim(-1), 3);
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(t[i], 1.5f);
}

TEST(TensorBasics, FromVectorAndAt) {
  Tensor t({2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(t.at(0, 0), 1);
  EXPECT_FLOAT_EQ(t.at(0, 1), 2);
  EXPECT_FLOAT_EQ(t.at(1, 0), 3);
  EXPECT_FLOAT_EQ(t.at(1, 1), 4);
}

TEST(TensorBasics, DataSizeMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, {1.0f, 2.0f}), std::invalid_argument);
}

TEST(TensorBasics, ItemRequiresSingleElement) {
  EXPECT_THROW(Tensor({2}).item(), std::logic_error);
}

TEST(TensorBasics, ReshapeWildcard) {
  Tensor t({2, 6});
  const Tensor r = t.reshape({3, -1});
  EXPECT_EQ(r.shape(), (Shape{3, 4}));
  EXPECT_THROW(t.reshape({5, -1}), std::invalid_argument);
  EXPECT_THROW(t.reshape({-1, -1}), std::invalid_argument);
}

TEST(TensorBasics, EyeAndArange) {
  const Tensor e = Tensor::eye(3);
  EXPECT_FLOAT_EQ(e.at(0, 0), 1);
  EXPECT_FLOAT_EQ(e.at(0, 1), 0);
  const Tensor a = Tensor::arange(4, 1.0f, 0.5f);
  EXPECT_FLOAT_EQ(a[3], 2.5f);
}

TEST(TensorBasics, AllFinite) {
  Tensor t({2});
  EXPECT_TRUE(t.all_finite());
  t[0] = std::numeric_limits<float>::infinity();
  EXPECT_FALSE(t.all_finite());
}

TEST(Broadcast, ShapeRules) {
  EXPECT_EQ(broadcast_shape({2, 3}, {3}), (Shape{2, 3}));
  EXPECT_EQ(broadcast_shape({2, 1}, {1, 4}), (Shape{2, 4}));
  EXPECT_EQ(broadcast_shape({5, 1, 3}, {2, 1}), (Shape{5, 2, 3}));
  EXPECT_THROW(broadcast_shape({2, 3}, {4}), std::invalid_argument);
}

TEST(Broadcast, AddRowVector) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3}, {10, 20, 30});
  const Tensor c = add(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 11);
  EXPECT_FLOAT_EQ(c.at(1, 2), 36);
}

TEST(Broadcast, AddColVsRow) {
  Tensor col({3, 1}, {1, 2, 3});
  Tensor row({1, 3}, {10, 20, 30});
  const Tensor c = add(col, row);
  EXPECT_EQ(c.shape(), (Shape{3, 3}));
  EXPECT_FLOAT_EQ(c.at(2, 1), 23);
}

TEST(Broadcast, ChannelBiasNCHW) {
  Tensor x({2, 3, 2, 2}, 1.0f);
  Tensor bias({1, 3, 1, 1}, {10, 20, 30});
  const Tensor y = add(x, bias);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 11);
  EXPECT_FLOAT_EQ(y.at(1, 2, 1, 1), 31);
}

TEST(Broadcast, ReduceToShapeIsAdjoint) {
  // reduce_to_shape(sum) over the broadcast dims recovers d(broadcast)/dx.
  Tensor g({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor r = reduce_to_shape(g, {3});
  EXPECT_EQ(r.shape(), (Shape{3}));
  EXPECT_FLOAT_EQ(r[0], 5);
  EXPECT_FLOAT_EQ(r[1], 7);
  EXPECT_FLOAT_EQ(r[2], 9);

  const Tensor r2 = reduce_to_shape(g, {2, 1});
  EXPECT_FLOAT_EQ(r2.at(0, 0), 6);
  EXPECT_FLOAT_EQ(r2.at(1, 0), 15);
}

TEST(Elementwise, UnaryMaps) {
  Tensor a({4}, {-1.0f, 0.0f, 1.0f, 2.0f});
  EXPECT_FLOAT_EQ(relu(a)[0], 0.0f);
  EXPECT_FLOAT_EQ(relu(a)[3], 2.0f);
  EXPECT_FLOAT_EQ(sign(a)[0], -1.0f);
  EXPECT_FLOAT_EQ(sign(a)[1], 0.0f);
  EXPECT_FLOAT_EQ(abs(a)[0], 1.0f);
  EXPECT_NEAR(sigmoid(a)[1], 0.5f, 1e-6);
  EXPECT_NEAR(tanh(a)[2], std::tanh(1.0f), 1e-6);
  EXPECT_FLOAT_EQ(square(a)[3], 4.0f);
  EXPECT_FLOAT_EQ(clamp(a, -0.5f, 1.5f)[0], -0.5f);
  EXPECT_FLOAT_EQ(clamp(a, -0.5f, 1.5f)[3], 1.5f);
}

TEST(Elementwise, LogClampsAtZero) {
  Tensor a({2}, {0.0f, 1.0f});
  const Tensor l = log(a);
  EXPECT_TRUE(std::isfinite(l[0]));
  EXPECT_FLOAT_EQ(l[1], 0.0f);
}

TEST(Elementwise, ScalarFolds) {
  Tensor a({3}, {1, 2, 3});
  EXPECT_FLOAT_EQ(sum_all(a), 6);
  EXPECT_FLOAT_EQ(mean_all(a), 2);
  EXPECT_FLOAT_EQ(max_all(a), 3);
  EXPECT_FLOAT_EQ(min_all(a), 1);
  EXPECT_FLOAT_EQ(l2_norm(a), std::sqrt(14.0f));
  EXPECT_FLOAT_EQ(linf_norm(a), 3);
  Tensor b({3}, {1, 0, -1});
  EXPECT_FLOAT_EQ(dot(a, b), -2);
}

TEST(Matmul, SmallKnownProduct) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  const Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154);
}

TEST(Matmul, TransposedVariantsAgree) {
  Rng rng(5);
  const Tensor a = randn({4, 6}, rng);
  const Tensor b = randn({4, 3}, rng);
  // matmul_tn(a, b) == a^T b
  const Tensor ref = matmul(transpose2d(a), b);
  const Tensor out = matmul_tn(a, b);
  for (std::int64_t i = 0; i < ref.numel(); ++i) EXPECT_NEAR(out[i], ref[i], 1e-4);

  const Tensor c = randn({5, 6}, rng);
  const Tensor ref2 = matmul(a, transpose2d(c));
  const Tensor out2 = matmul_nt(a, c);
  for (std::int64_t i = 0; i < ref2.numel(); ++i) EXPECT_NEAR(out2[i], ref2[i], 1e-4);
}

TEST(Matmul, ShapeMismatchThrows) {
  EXPECT_THROW(matmul(Tensor({2, 3}), Tensor({4, 2})), std::invalid_argument);
}

TEST(Reduce, SumMeanAxis) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor s0 = sum_axis(a, 0);
  EXPECT_EQ(s0.shape(), (Shape{3}));
  EXPECT_FLOAT_EQ(s0[0], 5);
  const Tensor s1 = sum_axis(a, 1, true);
  EXPECT_EQ(s1.shape(), (Shape{2, 1}));
  EXPECT_FLOAT_EQ(s1.at(1, 0), 15);
  const Tensor m1 = mean_axis(a, -1);
  EXPECT_FLOAT_EQ(m1[0], 2);
  EXPECT_FLOAT_EQ(m1[1], 5);
}

TEST(Reduce, SoftmaxRowsSumToOne) {
  Rng rng(1);
  const Tensor a = randn({5, 7}, rng, 0, 3);
  const Tensor s = softmax_rows(a);
  for (std::int64_t i = 0; i < 5; ++i) {
    double total = 0;
    for (std::int64_t j = 0; j < 7; ++j) {
      EXPECT_GT(s.at(i, j), 0.0f);
      total += s.at(i, j);
    }
    EXPECT_NEAR(total, 1.0, 1e-5);
  }
}

TEST(Reduce, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(2);
  const Tensor a = randn({3, 4}, rng, 0, 2);
  const Tensor ls = log_softmax_rows(a);
  const Tensor s = softmax_rows(a);
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(ls[i], std::log(s[i]), 1e-5);
  }
}

TEST(Reduce, ArgmaxRows) {
  Tensor a({2, 3}, {1, 5, 2, 9, 0, 3});
  const auto idx = argmax_rows(a);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

TEST(Reduce, PairwiseSqDists) {
  Tensor a({3, 2}, {0, 0, 3, 4, 0, 1});
  const Tensor d = pairwise_sq_dists(a);
  EXPECT_FLOAT_EQ(d.at(0, 0), 0);
  EXPECT_FLOAT_EQ(d.at(0, 1), 25);
  EXPECT_FLOAT_EQ(d.at(1, 0), 25);
  EXPECT_FLOAT_EQ(d.at(0, 2), 1);
  EXPECT_FLOAT_EQ(d.at(1, 2), 18);
}

TEST(Conv, OutDim) {
  EXPECT_EQ(conv_out_dim(16, 3, 1, 1), 16);
  EXPECT_EQ(conv_out_dim(16, 3, 2, 1), 8);
  EXPECT_EQ(conv_out_dim(4, 1, 1, 0), 4);
}

TEST(Conv, IdentityKernelPreservesInput) {
  // 1x1 kernel of value 1 on a single channel copies the image.
  Tensor x({1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor w({1, 1, 1, 1}, {1.0f});
  const Tensor y = conv2d(x, w, nullptr, {1, 1, 0});
  for (std::int64_t i = 0; i < 9; ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv, KnownSmallConvolution) {
  // 2x2 image, 3x3 sum kernel with pad 1: each output = sum of in-bounds
  // neighbours.
  Tensor x({1, 1, 2, 2}, {1, 2, 3, 4});
  Tensor w({1, 1, 3, 3}, std::vector<float>(9, 1.0f));
  const Tensor y = conv2d(x, w, nullptr, {3, 1, 1});
  // Every output position covers the whole 2x2 image.
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(y[i], 10.0f);
}

TEST(Conv, BiasIsAddedPerFilter) {
  Tensor x({1, 1, 2, 2}, 0.0f);
  Tensor w({2, 1, 1, 1}, {1.0f, 1.0f});
  Tensor b({2}, {5.0f, -3.0f});
  const Tensor y = conv2d(x, w, &b, {1, 1, 0});
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 5.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1, 1, 1), -3.0f);
}

TEST(Conv, Col2ImIsAdjointOfIm2Col) {
  // <im2col(x), c> == <x, col2im(c)> for random x, c (adjoint identity).
  Rng rng(3);
  const Conv2dSpec spec{3, 1, 1};
  const Tensor x = randn({2, 3, 5, 5}, rng);
  const Tensor cols = im2col(x, spec);
  const Tensor c = randn(cols.shape(), rng);
  const Tensor back = col2im(c, x.shape(), spec);
  EXPECT_NEAR(dot(cols, c), dot(x, back), 1e-2);
}

TEST(Pool, MaxPoolValuesAndArgmax) {
  Tensor x({1, 1, 4, 4},
           {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
  const auto r = maxpool2d(x, 2, 2);
  EXPECT_EQ(r.out.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(r.out.at(0, 0, 0, 0), 6);
  EXPECT_FLOAT_EQ(r.out.at(0, 0, 1, 1), 16);
  // Gradient routes only to the argmax entries.
  Tensor g({1, 1, 2, 2}, 1.0f);
  const Tensor gx = maxpool2d_backward(g, x.shape(), r.argmax);
  EXPECT_FLOAT_EQ(gx[5], 1.0f);   // value 6
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx[15], 1.0f);  // value 16
}

TEST(Pool, GlobalAvgPool) {
  Tensor x({1, 2, 2, 2}, {1, 2, 3, 4, 10, 20, 30, 40});
  const Tensor y = global_avg_pool(x);
  EXPECT_EQ(y.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(y.at(0, 0), 2.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 25.0f);
  const Tensor g = Tensor({1, 2}, {4.0f, 8.0f});
  const Tensor gx = global_avg_pool_backward(g, x.shape());
  EXPECT_FLOAT_EQ(gx[0], 1.0f);
  EXPECT_FLOAT_EQ(gx[4], 2.0f);
}

TEST(ShapeUtils, TakeRowsAndConcat) {
  Tensor a({3, 2}, {1, 2, 3, 4, 5, 6});
  const Tensor t = take_rows(a, {2, 0});
  EXPECT_FLOAT_EQ(t.at(0, 0), 5);
  EXPECT_FLOAT_EQ(t.at(1, 1), 2);
  const Tensor c = concat_rows({a, t});
  EXPECT_EQ(c.shape(), (Shape{5, 2}));
  EXPECT_FLOAT_EQ(c.at(4, 1), 2);
  EXPECT_THROW(take_rows(a, {3}), std::out_of_range);
}

TEST(ShapeUtils, PutRowsInvertsTakeRows) {
  Tensor a({4, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12});
  const std::vector<std::int64_t> idx{3, 1};
  const Tensor rows = take_rows(a, idx);
  Tensor b({4, 3});
  put_rows(b, idx, rows);
  EXPECT_FLOAT_EQ(b.at(3, 0), 10);
  EXPECT_FLOAT_EQ(b.at(1, 2), 6);
  EXPECT_FLOAT_EQ(b.at(0, 0), 0);  // untouched rows keep their content
  EXPECT_FLOAT_EQ(b.at(2, 1), 0);
  // Round trip: scatter back into a copy reproduces the original.
  Tensor c = a;
  put_rows(c, idx, rows);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(c[i], a[i]);
}

TEST(ShapeUtils, PutRowsValidates) {
  Tensor dst({3, 2});
  const Tensor two({2, 2}, {1, 2, 3, 4});
  EXPECT_THROW(put_rows(dst, {0}, two), std::invalid_argument);  // count
  Tensor wide({1, 3}, {1, 2, 3});
  EXPECT_THROW(put_rows(dst, {0}, wide), std::invalid_argument);  // trailing
  EXPECT_THROW(put_rows(dst, {0, 3}, two), std::out_of_range);    // range
  // 0-row scatter (and 0-row destinations, as empty batches produce) no-op.
  Tensor none({0, 2});
  put_rows(none, {}, Tensor({0, 2}));
  put_rows(dst, {}, Tensor({0, 2}));
  EXPECT_EQ(take_rows(none, {}).dim(0), 0);
  EXPECT_THROW(take_rows(none, {0}), std::out_of_range);
}

TEST(ShapeUtils, OneHot) {
  const Tensor oh = one_hot({1, 0, 2}, 3);
  EXPECT_EQ(oh.shape(), (Shape{3, 3}));
  EXPECT_FLOAT_EQ(oh.at(0, 1), 1);
  EXPECT_FLOAT_EQ(oh.at(0, 0), 0);
  EXPECT_FLOAT_EQ(oh.at(2, 2), 1);
  EXPECT_THROW(one_hot({3}, 3), std::out_of_range);
}

TEST(RandomTensors, Deterministic) {
  Rng a(9), b(9);
  const Tensor x = randn({8}, a);
  const Tensor y = randn({8}, b);
  for (std::int64_t i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(x[i], y[i]);
}

TEST(RandomTensors, UniformRange) {
  Rng rng(4);
  const Tensor u = rand_uniform({1000}, rng, -0.5f, 0.5f);
  EXPECT_GE(min_all(u), -0.5f);
  EXPECT_LE(max_all(u), 0.5f);
  EXPECT_NEAR(mean_all(u), 0.0f, 0.05f);
}

TEST(RandomTensors, SignsAreUnitMagnitude) {
  Rng rng(4);
  const Tensor s = rand_sign({100}, rng);
  for (std::int64_t i = 0; i < 100; ++i) {
    EXPECT_FLOAT_EQ(std::fabs(s[i]), 1.0f);
  }
}

// Parameterized sweep: broadcasting of binary ops across shape pairs.
struct BroadcastCase {
  Shape a;
  Shape b;
  Shape expect;
};

class BroadcastSweep : public ::testing::TestWithParam<BroadcastCase> {};

TEST_P(BroadcastSweep, MulMatchesManual) {
  const auto& c = GetParam();
  Rng rng(11);
  const Tensor a = randn(c.a, rng);
  const Tensor b = randn(c.b, rng);
  const Tensor out = mul(a, b);
  ASSERT_EQ(out.shape(), c.expect);
  // Verify against explicit broadcast_to.
  const Tensor ax = broadcast_to(a, c.expect);
  const Tensor bx = broadcast_to(b, c.expect);
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_NEAR(out[i], ax[i] * bx[i], 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BroadcastSweep,
    ::testing::Values(BroadcastCase{{2, 3}, {2, 3}, {2, 3}},
                      BroadcastCase{{2, 3}, {3}, {2, 3}},
                      BroadcastCase{{2, 1}, {1, 5}, {2, 5}},
                      BroadcastCase{{4, 1, 3}, {2, 3}, {4, 2, 3}},
                      BroadcastCase{{1}, {3, 2}, {3, 2}},
                      BroadcastCase{{2, 3, 1, 1}, {1, 3, 2, 2}, {2, 3, 2, 2}}));

}  // namespace
}  // namespace ibrar
