// IB-RAR core: layer resolution, MI loss wiring, feature mask lifecycle,
// robust-layer selector, and the combined objective.

#include <gtest/gtest.h>

#include "core/feature_mask.hpp"
#include "core/ibrar.hpp"
#include "core/mi_loss.hpp"
#include "core/robust_layers.hpp"
#include "data/registry.hpp"
#include "models/registry.hpp"
#include "train/evaluate.hpp"

namespace ibrar::core {
namespace {

models::TapClassifierPtr make_vgg(std::uint64_t seed = 1) {
  Rng rng(seed);
  models::ModelSpec spec;
  spec.name = "vgg16";
  return models::make_model(spec, rng);
}

TEST(MILoss, ResolveAllLayers) {
  auto model = make_vgg();
  MILossConfig cfg;
  cfg.selection = LayerSelection::kAll;
  const auto idx = resolve_layer_indices(cfg, *model);
  EXPECT_EQ(idx.size(), model->tap_names().size());
}

TEST(MILoss, ResolveRobustDefaultsForVGG) {
  auto model = make_vgg();
  MILossConfig cfg;  // kRobust
  const auto idx = resolve_layer_indices(cfg, *model);
  // conv_block5, fc1, fc2 -> taps 4, 5, 6.
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx[0], 4u);
  EXPECT_EQ(idx[1], 5u);
  EXPECT_EQ(idx[2], 6u);
}

TEST(MILoss, ResolveExplicitAndUnknownName) {
  auto model = make_vgg();
  MILossConfig cfg;
  cfg.selection = LayerSelection::kExplicit;
  cfg.layers = {"fc1"};
  const auto idx = resolve_layer_indices(cfg, *model);
  ASSERT_EQ(idx.size(), 1u);
  EXPECT_EQ(idx[0], 5u);
  cfg.layers = {"nope"};
  EXPECT_THROW(resolve_layer_indices(cfg, *model), std::invalid_argument);
}

TEST(MILoss, ResolveRobustForResNetAndWRN) {
  Rng rng(2);
  models::ModelSpec spec;
  spec.name = "resnet18";
  auto resnet = models::make_model(spec, rng);
  MILossConfig cfg;
  EXPECT_EQ(resolve_layer_indices(cfg, *resnet).size(), 2u);
  spec.name = "wrn28";
  auto wrn = models::make_model(spec, rng);
  EXPECT_EQ(resolve_layer_indices(cfg, *wrn).size(), 2u);
}

TEST(MILoss, TermIsFiniteAndDifferentiable) {
  auto model = make_vgg();
  model->set_training(true);
  const auto data = data::make_dataset("synth-cifar10", 40, 10);
  const auto batch = data::make_batch(data.train, {0, 1, 2, 3, 4, 5, 6, 7});

  ag::Var input = ag::Var::constant(batch.x);
  auto out = model->forward_with_taps(input);
  MILossConfig cfg;
  ag::Var term = mi_loss_term(cfg, *model, input, out.taps, batch.y);
  EXPECT_TRUE(term.value().all_finite());
  model->zero_grad();
  term.backward();
  // Some parameter upstream of the taps must receive gradient.
  double g = 0;
  for (auto& p : model->parameters()) {
    for (std::int64_t i = 0; i < p.grad().numel(); ++i) {
      g += std::fabs(p.grad()[i]);
    }
  }
  EXPECT_GT(g, 0.0);
}

TEST(FeatureMaskTest, UpdateInstallsMaskWithCorrectDropCount) {
  auto model = make_vgg();
  const auto data = data::make_dataset("synth-cifar10", 60, 10);
  FeatureMaskConfig cfg;
  cfg.drop_fraction = 0.25f;  // 24 channels -> 6 dropped
  cfg.scoring_samples = 50;
  FeatureMask mask(cfg);
  const auto scores = mask.update(*model, data.train);
  EXPECT_EQ(static_cast<std::int64_t>(scores.size()),
            model->last_conv_channels());
  const Tensor& m = model->channel_mask();
  ASSERT_EQ(m.numel(), model->last_conv_channels());
  float kept = 0;
  for (std::int64_t i = 0; i < m.numel(); ++i) kept += m[i];
  EXPECT_FLOAT_EQ(kept, static_cast<float>(model->last_conv_channels() - 6));
}

TEST(FeatureMaskTest, DroppedChannelsAreLowestScoring) {
  auto model = make_vgg();
  const auto data = data::make_dataset("synth-cifar10", 60, 10);
  FeatureMask mask(FeatureMaskConfig{0.10f, 50});
  const auto scores = mask.update(*model, data.train);
  const Tensor& m = model->channel_mask();
  float max_dropped = -1e30f, min_kept = 1e30f;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (m[static_cast<std::int64_t>(i)] == 0.0f) {
      max_dropped = std::max(max_dropped, scores[i]);
    } else {
      min_kept = std::min(min_kept, scores[i]);
    }
  }
  EXPECT_LE(max_dropped, min_kept + 1e-9f);
}

TEST(FeatureMaskTest, RepeatedUpdateRescoresAllChannels) {
  // The score pass must unmask first, so a channel dropped once can recover.
  auto model = make_vgg();
  const auto data = data::make_dataset("synth-cifar10", 60, 10);
  FeatureMask mask(FeatureMaskConfig{0.10f, 50});
  const auto s1 = mask.update(*model, data.train);
  const auto s2 = mask.update(*model, data.train);
  // Identical network + batch -> identical scores both times.
  for (std::size_t i = 0; i < s1.size(); ++i) EXPECT_NEAR(s1[i], s2[i], 1e-5f);
}

TEST(IBRARObjectiveTest, PlainModeComputesFiniteLoss) {
  auto model = make_vgg();
  model->set_training(true);
  const auto data = data::make_dataset("synth-cifar10", 30, 10);
  const auto batch = data::make_batch(data.train, {0, 1, 2, 3, 4, 5, 6, 7});
  IBRARObjective obj(nullptr, MILossConfig{});
  ag::Var loss = obj.compute(*model, batch);
  EXPECT_TRUE(loss.value().all_finite());
  EXPECT_EQ(obj.name(), "plain (IB-RAR)");
}

TEST(IBRARObjectiveTest, WrapsBaseObjective) {
  auto model = make_vgg();
  model->set_training(true);
  const auto data = data::make_dataset("synth-cifar10", 30, 10);
  const auto batch = data::make_batch(data.train, {0, 1, 2, 3});
  attacks::AttackConfig inner;
  inner.steps = 2;
  auto base = std::make_shared<train::PGDATObjective>(inner);
  IBRARObjective obj(base, MILossConfig{});
  ag::Var loss = obj.compute(*model, batch);
  EXPECT_TRUE(loss.value().all_finite());
  EXPECT_EQ(obj.name(), "PGD-AT (IB-RAR)");
}

TEST(IBRARObjectiveTest, MILossChangesGradientsVsCE) {
  const auto data = data::make_dataset("synth-cifar10", 30, 10);
  const auto batch = data::make_batch(data.train, {0, 1, 2, 3, 4, 5, 6, 7});

  auto m1 = make_vgg(3);
  auto m2 = make_vgg(3);
  m1->set_training(false);  // disable dropout so the comparison is exact
  m2->set_training(false);

  train::CEObjective ce;
  m1->zero_grad();
  ce.compute(*m1, batch).backward();

  MILossConfig strong;
  strong.alpha = 5.0f;
  strong.beta = 0.5f;
  IBRARObjective ib(nullptr, strong);
  m2->zero_grad();
  ib.compute(*m2, batch).backward();

  const auto p1 = m1->parameters();
  const auto p2 = m2->parameters();
  double diff = 0;
  for (std::size_t i = 0; i < p1.size(); ++i) {
    for (std::int64_t k = 0; k < p1[i].numel(); ++k) {
      diff += std::fabs(p1[i].grad()[k] - p2[i].grad()[k]);
    }
  }
  EXPECT_GT(diff, 1e-6);
}

TEST(MaskHook, SkipsFirstEpochThenInstalls) {
  auto model = make_vgg();
  const auto data = data::make_dataset("synth-cifar10", 60, 10);
  auto hook = make_mask_hook(FeatureMaskConfig{0.10f, 40}, data.train,
                             /*first_epoch=*/2);
  hook(0, *model);  // epoch 0 -> epoch+1 = 1 < 2: no mask yet
  EXPECT_EQ(model->channel_mask().numel(), 0);
  hook(1, *model);  // epoch 1 -> 2 >= 2: mask installed
  EXPECT_EQ(model->channel_mask().numel(), model->last_conv_channels());
}

TEST(RobustLayerSelectorTest, FindsRobustLayersOnMLP) {
  // Small end-to-end probe run (MLP keeps it fast). The contract under test:
  // a report with one probe per tap, a baseline, and a non-empty robust set.
  const auto data = data::make_dataset("synth-cifar10", 200, 80);
  models::ModelSpec spec;
  spec.name = "mlp";
  RobustLayerConfig cfg;
  cfg.train.epochs = 3;
  cfg.train.batch_size = 50;
  cfg.eval_attack.steps = 5;
  cfg.eval_samples = 80;
  RobustLayerSelector selector(
      [&](Rng& rng) { return models::make_model(spec, rng); }, cfg);
  const auto report = selector.select(data.train, data.test);
  EXPECT_EQ(report.per_layer.size(), 2u);  // MLP has 2 taps
  EXPECT_FALSE(report.robust_layers.empty());
  EXPECT_GE(report.baseline_test_acc, 0.0);
  for (const auto& r : report.per_layer) {
    EXPECT_GE(r.adv_acc, 0.0);
    EXPECT_LE(r.adv_acc, 1.0);
  }
}

TEST(ToIBConfig, TranslatesFields) {
  auto model = make_vgg();
  MILossConfig cfg;
  cfg.alpha = 2.5f;
  cfg.beta = 0.3f;
  const auto ib = to_ib_config(cfg, *model);
  EXPECT_FLOAT_EQ(ib.alpha, 2.5f);
  EXPECT_FLOAT_EQ(ib.beta, 0.3f);
  EXPECT_EQ(ib.layer_indices.size(), 3u);
}

}  // namespace
}  // namespace ibrar::core
