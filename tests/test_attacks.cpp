// Attack suite invariants: eps-ball containment, [0,1] clipping, loss/error
// increase, step monotonicity, determinism, and the adaptive attack.

#include <gtest/gtest.h>

#include <cmath>

#include "attacks/adaptive.hpp"
#include "attacks/cw.hpp"
#include "attacks/fab.hpp"
#include "attacks/fgsm.hpp"
#include "attacks/nifgsm.hpp"
#include "attacks/pgd.hpp"
#include "data/registry.hpp"
#include "models/registry.hpp"
#include "tensor/ops.hpp"
#include "train/evaluate.hpp"
#include "train/trainer.hpp"

namespace ibrar::attacks {
namespace {

/// Shared fixture: a small model trained briefly on synthetic data so attacks
/// have real gradients to follow. Built once for the whole test binary.
struct TrainedSetup {
  data::SyntheticData data = data::make_dataset("synth-cifar10", 300, 120);
  models::TapClassifierPtr model;

  TrainedSetup() {
    Rng rng(3);
    models::ModelSpec spec;
    spec.name = "mlp";  // fast; attacks only need differentiable logits
    model = models::make_model(spec, rng);
    train::TrainConfig tc;
    tc.epochs = 5;
    tc.batch_size = 50;
    train::Trainer trainer(model, std::make_shared<train::CEObjective>(), tc);
    trainer.fit(data.train);
  }
};

TrainedSetup& setup() {
  static TrainedSetup s;
  return s;
}

data::Batch eval_batch(std::int64_t n = 60) {
  std::vector<std::int64_t> idx(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) idx[static_cast<std::size_t>(i)] = i;
  return data::make_batch(setup().data.test, idx);
}

void expect_in_ball(const Tensor& adv, const Tensor& x, float eps) {
  float max_d = 0;
  for (std::int64_t i = 0; i < adv.numel(); ++i) {
    max_d = std::max(max_d, std::fabs(adv[i] - x[i]));
    EXPECT_GE(adv[i], 0.0f);
    EXPECT_LE(adv[i], 1.0f);
  }
  EXPECT_LE(max_d, eps + 1e-5);
}

TEST(Common, ProjectLinf) {
  Tensor x({4}, {0.5f, 0.0f, 1.0f, 0.2f});
  Tensor adv({4}, {0.9f, -0.5f, 1.5f, 0.21f});
  project_linf(adv, x, 0.1f, 0.0f, 1.0f);
  EXPECT_FLOAT_EQ(adv[0], 0.6f);
  EXPECT_FLOAT_EQ(adv[1], 0.0f);
  EXPECT_FLOAT_EQ(adv[2], 1.0f);
  EXPECT_FLOAT_EQ(adv[3], 0.21f);
}

TEST(Common, InputGradientNonzeroAndShaped) {
  auto b = eval_batch(20);
  const Tensor g = input_gradient(*setup().model, b.x, b.y);
  EXPECT_EQ(g.shape(), b.x.shape());
  EXPECT_GT(sum_all(abs(g)), 0.0f);
}

TEST(Common, AttackModeGuardRestoresState) {
  auto& model = *setup().model;
  model.set_training(true);
  {
    AttackModeGuard guard(model);
    EXPECT_FALSE(model.training());
    for (auto& p : model.parameters()) EXPECT_FALSE(p.node()->requires_grad);
  }
  EXPECT_TRUE(model.training());
  for (auto& p : model.parameters()) EXPECT_TRUE(p.node()->requires_grad);
  model.set_training(false);
}

TEST(Common, AccuracyHelperMatchesManualCount) {
  auto b = eval_batch(30);
  const double acc = accuracy(*setup().model, b.x, b.y);
  const auto pred = predict(*setup().model, b.x);
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    correct += pred[i] == b.y[i] ? 1 : 0;
  }
  EXPECT_NEAR(acc, static_cast<double>(correct) / 30.0, 1e-9);
}

class LinfAttackSweep
    : public ::testing::TestWithParam<std::function<AttackPtr(AttackConfig)>> {};

TEST(FGSMTest, StaysInBallAndHurtsAccuracy) {
  auto b = eval_batch();
  AttackConfig cfg;
  FGSM fgsm(cfg);
  const Tensor adv = fgsm.perturb(*setup().model, b.x, b.y);
  expect_in_ball(adv, b.x, cfg.eps);
  const double clean = accuracy(*setup().model, b.x, b.y);
  const double attacked = accuracy(*setup().model, adv, b.y);
  EXPECT_LT(attacked, clean);
}

TEST(PGDTest, StaysInBallAndBeatsFGSM) {
  auto b = eval_batch();
  AttackConfig cfg;
  cfg.steps = 10;
  PGD pgd(cfg);
  const Tensor adv = pgd.perturb(*setup().model, b.x, b.y);
  expect_in_ball(adv, b.x, cfg.eps);
  FGSM fgsm(AttackConfig{});
  const Tensor adv1 = fgsm.perturb(*setup().model, b.x, b.y);
  EXPECT_LE(accuracy(*setup().model, adv, b.y),
            accuracy(*setup().model, adv1, b.y) + 0.05);
}

TEST(PGDTest, MoreStepsNoWeaker) {
  auto b = eval_batch();
  AttackConfig c1;
  c1.steps = 1;
  c1.random_start = false;
  AttackConfig c10 = c1;
  c10.steps = 10;
  PGD p1(c1), p10(c10);
  const double a1 = accuracy(*setup().model, p1.perturb(*setup().model, b.x, b.y), b.y);
  const double a10 = accuracy(*setup().model, p10.perturb(*setup().model, b.x, b.y), b.y);
  EXPECT_LE(a10, a1 + 0.05);
}

TEST(PGDTest, DeterministicGivenSeed) {
  auto b = eval_batch(20);
  AttackConfig cfg;
  cfg.seed = 77;
  PGD a(cfg), c(cfg);
  const Tensor adv_a = a.perturb(*setup().model, b.x, b.y);
  const Tensor adv_c = c.perturb(*setup().model, b.x, b.y);
  for (std::int64_t i = 0; i < adv_a.numel(); ++i) {
    EXPECT_FLOAT_EQ(adv_a[i], adv_c[i]);
  }
}

TEST(PGDTest, ZeroEpsIsNoOp) {
  auto b = eval_batch(10);
  AttackConfig cfg;
  cfg.eps = 0.0f;
  cfg.alpha = 0.0f;
  PGD pgd(cfg);
  const Tensor adv = pgd.perturb(*setup().model, b.x, b.y);
  for (std::int64_t i = 0; i < adv.numel(); ++i) {
    EXPECT_NEAR(adv[i], b.x[i], 1e-6);
  }
}

TEST(NIFGSMTest, StaysInBallAndAttacks) {
  auto b = eval_batch();
  AttackConfig cfg;
  cfg.steps = 10;
  NIFGSM ni(cfg);
  const Tensor adv = ni.perturb(*setup().model, b.x, b.y);
  expect_in_ball(adv, b.x, cfg.eps);
  EXPECT_LT(accuracy(*setup().model, adv, b.y),
            accuracy(*setup().model, b.x, b.y));
}

TEST(CWTest, ProducesMisclassificationWithSmallL2) {
  auto b = eval_batch(30);
  AttackConfig cfg;
  cfg.steps = 40;
  CW cw(cfg, /*c=*/5.0f);
  const Tensor adv = cw.perturb(*setup().model, b.x, b.y);
  // CW is an L2 attack: outputs must be valid images and lower accuracy.
  EXPECT_GE(min_all(adv), -1e-5f);
  EXPECT_LE(max_all(adv), 1.0f + 1e-5f);
  const double clean = accuracy(*setup().model, b.x, b.y);
  const double attacked = accuracy(*setup().model, adv, b.y);
  EXPECT_LT(attacked, clean);
  // Successful examples should not be wildly far from the originals.
  const std::int64_t img = b.x.numel() / b.x.dim(0);
  double mean_l2 = 0;
  for (std::int64_t i = 0; i < b.x.dim(0); ++i) {
    double l2 = 0;
    for (std::int64_t k = 0; k < img; ++k) {
      const double d = adv[i * img + k] - b.x[i * img + k];
      l2 += d * d;
    }
    mean_l2 += std::sqrt(l2);
  }
  mean_l2 /= b.x.dim(0);
  EXPECT_LT(mean_l2, 10.0);
}

TEST(FABTest, StaysInBallAndAttacks) {
  auto b = eval_batch();
  AttackConfig cfg;
  cfg.steps = 8;
  FAB fab(cfg);
  const Tensor adv = fab.perturb(*setup().model, b.x, b.y);
  expect_in_ball(adv, b.x, cfg.eps);
  EXPECT_LT(accuracy(*setup().model, adv, b.y),
            accuracy(*setup().model, b.x, b.y) + 1e-9);
}

TEST(AdaptiveTest, AttacksThroughIBObjective) {
  auto b = eval_batch();
  AttackConfig cfg;
  cfg.steps = 5;
  mi::IBObjectiveConfig ib;
  ib.alpha = 1.0f;
  ib.beta = 0.1f;
  AdaptivePGD ad(cfg, ib);
  const Tensor adv = ad.perturb(*setup().model, b.x, b.y);
  expect_in_ball(adv, b.x, cfg.eps);
  EXPECT_LT(accuracy(*setup().model, adv, b.y),
            accuracy(*setup().model, b.x, b.y));
}

TEST(Names, ReflectStepCounts) {
  AttackConfig c;
  c.steps = 10;
  EXPECT_EQ(PGD(c).name(), "PGD10");
  EXPECT_EQ(NIFGSM(c).name(), "NIFGSM10");
  EXPECT_EQ(CW(c).name(), "CW10");
  EXPECT_EQ(FAB(c).name(), "FAB10");
  EXPECT_EQ(FGSM(c).name(), "FGSM");
  EXPECT_EQ(AdaptivePGD(c, {}).name(), "PGD10-AD");
}

TEST(Evaluate, AdversarialLowerThanClean) {
  AttackConfig cfg;
  cfg.steps = 5;
  PGD pgd(cfg);
  const double clean =
      train::evaluate_clean(*setup().model, setup().data.test, 50);
  const double adv = train::evaluate_adversarial(*setup().model,
                                                 setup().data.test, pgd, 50, 100);
  EXPECT_LT(adv, clean);
}

TEST(Evaluate, PredictionsCountMatchesRequest) {
  AttackConfig cfg;
  cfg.steps = 2;
  PGD pgd(cfg);
  const auto preds = train::adversarial_predictions(
      *setup().model, setup().data.test, pgd, 50, 70);
  EXPECT_EQ(preds.size(), 70u);
}

}  // namespace
}  // namespace ibrar::attacks
