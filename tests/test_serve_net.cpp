// TCP front-end: wire framing round-trips (bit-exact floats), malformed /
// truncated / oversized frame handling, and end-to-end serving through a real
// socket — including pipelining and the multi-worker bit-identity contract.

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "models/registry.hpp"
#include "serve/model_registry.hpp"
#include "serve/net/client.hpp"
#include "serve/net/listener.hpp"
#include "serve/net/wire.hpp"
#include "serve/server.hpp"
#include "tensor/random.hpp"
#include "util/rng.hpp"

namespace ibrar {
namespace {

namespace net = serve::net;

constexpr std::int64_t kSize = 4;
constexpr std::int64_t kChannels = 3;
constexpr std::int64_t kClasses = 5;

models::TapClassifierPtr tiny_model(std::uint64_t seed) {
  models::ModelSpec spec;
  spec.name = "mlp";
  spec.num_classes = kClasses;
  spec.image_size = kSize;
  spec.in_channels = kChannels;
  Rng rng(seed);
  return models::make_model(spec, rng);
}

Tensor sample_input(std::uint64_t seed) {
  Rng rng(seed);
  return rand_uniform({kChannels, kSize, kSize}, rng, 0.0f, 1.0f);
}

/// Raw loopback connection for protocol-violation tests (the Client helper
/// refuses to send violating frames, so these must go around it).
int raw_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  return fd;
}

/// True when the server closed the connection (EOF; no reply bytes).
bool reads_eof(int fd) {
  std::uint8_t byte = 0;
  const ssize_t r = ::recv(fd, &byte, 1, 0);
  return r == 0;
}

// ---- wire framing -----------------------------------------------------------

TEST(Wire, SubmitFrameRoundTripsBitExactly) {
  net::SubmitFrame f;
  f.id = 0xdeadbeefcafe1234ull;
  f.client_id = 0x0123456789abcdefull;
  f.input = sample_input(7);
  const auto bytes = net::encode_submit(f);
  const auto back = net::decode_submit(bytes.data(), bytes.size());
  EXPECT_EQ(back.id, f.id);
  EXPECT_EQ(back.client_id, f.client_id);
  ASSERT_TRUE(back.input.same_shape(f.input));
  EXPECT_EQ(std::memcmp(back.input.data().data(), f.input.data().data(),
                        sizeof(float) *
                            static_cast<std::size_t>(f.input.numel())),
            0);
}

TEST(Wire, ReplyFrameRoundTripsEveryField) {
  net::ReplyFrame f;
  f.id = 42;
  f.status = net::WireStatus::kOk;
  f.model_version = 3;
  f.argmax = 4;
  f.queue_ns = 12345;
  f.compute_ns = 67890;
  f.batch_size = 8;
  f.trigger = 1;
  f.sampled = true;
  f.suspicion = 0.375f;
  f.score_epoch = 2;
  f.cached = true;
  f.retry_after_ms = 1234;
  f.logits = {0.5f, -1.25f, 3.0f, 0.0f, -0.0f};
  const auto bytes = net::encode_reply(f);
  const auto back = net::decode_reply(bytes.data(), bytes.size());
  EXPECT_EQ(back.id, f.id);
  EXPECT_EQ(back.status, f.status);
  EXPECT_EQ(back.model_version, f.model_version);
  EXPECT_EQ(back.argmax, f.argmax);
  EXPECT_EQ(back.queue_ns, f.queue_ns);
  EXPECT_EQ(back.compute_ns, f.compute_ns);
  EXPECT_EQ(back.batch_size, f.batch_size);
  EXPECT_EQ(back.trigger, f.trigger);
  EXPECT_EQ(back.sampled, f.sampled);
  EXPECT_EQ(back.score_epoch, f.score_epoch);
  EXPECT_EQ(back.cached, f.cached);
  EXPECT_EQ(back.retry_after_ms, f.retry_after_ms);
  ASSERT_EQ(back.logits.size(), f.logits.size());
  EXPECT_EQ(std::memcmp(back.logits.data(), f.logits.data(),
                        sizeof(float) * f.logits.size()),
            0);  // bit-exact, including the negative zero
  EXPECT_EQ(std::memcmp(&back.suspicion, &f.suspicion, sizeof(float)), 0);
}

TEST(Wire, StatusMappingMirrorsReplyStatus) {
  EXPECT_EQ(net::to_wire(serve::ReplyStatus::kOk), net::WireStatus::kOk);
  EXPECT_EQ(net::to_wire(serve::ReplyStatus::kRejectedQueueFull),
            net::WireStatus::kRejectedQueueFull);
  EXPECT_EQ(net::to_wire(serve::ReplyStatus::kRejectedShutdown),
            net::WireStatus::kRejectedShutdown);
  EXPECT_EQ(net::to_wire(serve::ReplyStatus::kRejectedStaleShape),
            net::WireStatus::kRejectedStaleShape);
  EXPECT_EQ(net::to_wire(serve::ReplyStatus::kBusyRetryAfter),
            net::WireStatus::kBusyRetryAfter);
}

TEST(Wire, TruncatedPayloadsThrowAtEveryPrefixLength) {
  net::SubmitFrame sf;
  sf.id = 9;
  sf.input = sample_input(1);
  const auto submit_bytes = net::encode_submit(sf);
  for (std::size_t n = 0; n < submit_bytes.size(); n += 7) {
    EXPECT_THROW(net::decode_submit(submit_bytes.data(), n),
                 std::runtime_error)
        << "prefix length " << n;
  }
  net::ReplyFrame rf;
  rf.logits = {1.0f, 2.0f};
  const auto reply_bytes = net::encode_reply(rf);
  for (std::size_t n = 0; n < reply_bytes.size(); n += 5) {
    EXPECT_THROW(net::decode_reply(reply_bytes.data(), n), std::runtime_error)
        << "prefix length " << n;
  }
}

TEST(Wire, TrailingBytesAndWrongTypeAreRejected) {
  net::SubmitFrame sf;
  sf.input = sample_input(2);
  auto bytes = net::encode_submit(sf);
  auto padded = bytes;
  padded.push_back(0);
  EXPECT_THROW(net::decode_submit(padded.data(), padded.size()),
               std::runtime_error);
  EXPECT_THROW(net::decode_reply(bytes.data(), bytes.size()),
               std::runtime_error);  // submit frame fed to the reply decoder
  bytes[0] = 99;                     // unknown frame type
  EXPECT_THROW(net::decode_submit(bytes.data(), bytes.size()),
               std::runtime_error);
}

// ---- end-to-end through a real socket ---------------------------------------

struct Frontend {
  serve::ModelRegistry reg;
  std::unique_ptr<serve::Server> server;
  std::unique_ptr<net::TcpFrontend> tcp;

  // Defaults come from the environment so CI can force the worker fan-out
  // on for this whole suite (IBRAR_SERVE_WORKERS=4 under ASan/UBSan).
  explicit Frontend(serve::ServeConfig cfg = serve::ServeConfig::from_env()) {
    reg.publish(tiny_model(1), {kChannels, kSize, kSize}, "v1");
    server = std::make_unique<serve::Server>(reg, cfg);
    tcp = std::make_unique<net::TcpFrontend>(*server);
  }
};

TEST(TcpFrontend, LogitsThroughTheSocketBitIdenticalToInProcess) {
  Frontend fe;
  const Tensor x = sample_input(11);
  const serve::Reply direct = fe.server->submit(x).get();
  net::Client client("127.0.0.1", fe.tcp->port());
  const auto wire = client.submit(x);
  EXPECT_TRUE(wire.ok());
  EXPECT_EQ(wire.model_version, 1u);
  EXPECT_EQ(wire.argmax, direct.argmax);
  ASSERT_EQ(static_cast<std::int64_t>(wire.logits.size()),
            direct.logits.numel());
  EXPECT_EQ(std::memcmp(wire.logits.data(), direct.logits.data().data(),
                        sizeof(float) * wire.logits.size()),
            0);
}

TEST(TcpFrontend, PipelinedRepliesComeBackInSubmissionOrder) {
  serve::ServeConfig cfg;
  cfg.max_batch = 4;
  cfg.deadline_us = 500;
  cfg.workers = 2;
  Frontend fe(cfg);
  net::Client client("127.0.0.1", fe.tcp->port());
  const int n = 24;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < n; ++i) {
    ids.push_back(client.send(sample_input(static_cast<std::uint64_t>(i))));
  }
  for (int i = 0; i < n; ++i) {
    const auto reply = client.recv();
    EXPECT_EQ(reply.id, ids[static_cast<std::size_t>(i)]);
    EXPECT_TRUE(reply.ok());
  }
}

TEST(TcpFrontend, MultiWorkerSocketServingMatchesSingleWorkerBits) {
  const int n = 16;
  std::vector<Tensor> inputs;
  for (int i = 0; i < n; ++i) {
    inputs.push_back(sample_input(700 + static_cast<std::uint64_t>(i)));
  }
  std::vector<std::vector<float>> reference(static_cast<std::size_t>(n));
  {
    Frontend fe;  // defaults: one worker, telemetry off
    net::Client client("127.0.0.1", fe.tcp->port());
    for (int i = 0; i < n; ++i) {
      reference[static_cast<std::size_t>(i)] =
          client.submit(inputs[static_cast<std::size_t>(i)]).logits;
    }
  }
  serve::ServeConfig cfg;
  cfg.max_batch = 4;
  cfg.deadline_us = 1000;
  cfg.workers = 4;
  cfg.telemetry.sample_every = 2;
  cfg.telemetry.window = 4;
  Frontend fe(cfg);
  net::Client client("127.0.0.1", fe.tcp->port());
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < n; ++i) {
    ids.push_back(client.send(inputs[static_cast<std::size_t>(i)]));
  }
  for (int i = 0; i < n; ++i) {
    const auto reply = client.recv();
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply.id, ids[static_cast<std::size_t>(i)]);
    const auto& ref = reference[static_cast<std::size_t>(i)];
    ASSERT_EQ(reply.logits.size(), ref.size());
    EXPECT_EQ(std::memcmp(reply.logits.data(), ref.data(),
                          sizeof(float) * ref.size()),
              0)
        << "socket logits differ for request " << i;
  }
}

TEST(TcpFrontend, BadShapeGetsBadRequestWithoutTeardown) {
  Frontend fe;
  net::Client client("127.0.0.1", fe.tcp->port());
  Rng rng(3);
  const auto bad =
      client.submit(rand_uniform({kChannels, kSize + 1, kSize + 1}, rng));
  EXPECT_EQ(bad.status, net::WireStatus::kBadRequest);
  // The connection survived: a well-shaped request on the SAME socket works.
  const auto good = client.submit(sample_input(5));
  EXPECT_TRUE(good.ok());
}

TEST(TcpFrontend, OversizedLengthPrefixDropsTheConnection) {
  Frontend fe;
  const int fd = raw_connect(fe.tcp->port());
  const std::uint32_t huge = net::kMaxFrameBytes + 1;
  ASSERT_EQ(::send(fd, &huge, sizeof huge, MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof huge));
  EXPECT_TRUE(reads_eof(fd));  // no reply, no crash: connection dropped
  ::close(fd);
  // The server itself is unharmed.
  net::Client client("127.0.0.1", fe.tcp->port());
  EXPECT_TRUE(client.submit(sample_input(8)).ok());
}

TEST(TcpFrontend, MalformedPayloadDropsTheConnection) {
  Frontend fe;
  const int fd = raw_connect(fe.tcp->port());
  // Well-framed garbage: length prefix is honest, payload type is junk.
  const std::uint32_t len = 16;
  std::uint8_t junk[16];
  std::memset(junk, 0xab, sizeof junk);
  ASSERT_EQ(::send(fd, &len, sizeof len, MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof len));
  ASSERT_EQ(::send(fd, junk, sizeof junk, MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof junk));
  EXPECT_TRUE(reads_eof(fd));
  ::close(fd);
  net::Client client("127.0.0.1", fe.tcp->port());
  EXPECT_TRUE(client.submit(sample_input(9)).ok());
}

// ---- fault injection: cache + admission through the socket ------------------

TEST(TcpFrontend, LeaderDisconnectMidFlightJoinerStillGetsTheReply) {
  // The leader's CONNECTION dies while its request is parked in batch
  // assembly; the joiner on a separate connection must still be served the
  // fan-out (the listener never cancels in-flight server work on reader EOF).
  serve::ServeConfig cfg;
  cfg.max_batch = 8;
  cfg.deadline_us = 300000;  // park the leader's batch for up to 300 ms
  cfg.workers = 1;
  cfg.cache_bytes = std::size_t{16} << 20;
  Frontend fe(cfg);
  const Tensor x = sample_input(21);
  auto leader =
      std::make_unique<net::Client>("127.0.0.1", fe.tcp->port(), 1);
  leader->send(x);
  // Give the leader's frame time to land in the cache as the in-flight entry.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  net::Client joiner("127.0.0.1", fe.tcp->port(), 2);
  const std::uint64_t jid = joiner.send(x);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  leader.reset();  // hang up mid-flight, before the batch deadline fires
  const auto reply = joiner.recv();
  EXPECT_EQ(reply.id, jid);
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply.cached);  // served by the leader's fan-out
  // Bit identity: an in-process resubmit hits the now-complete entry.
  const serve::Reply direct = fe.server->submit(x).get();
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(static_cast<std::int64_t>(reply.logits.size()),
            direct.logits.numel());
  EXPECT_EQ(std::memcmp(reply.logits.data(), direct.logits.data().data(),
                        sizeof(float) * reply.logits.size()),
            0);
  EXPECT_GE(fe.server->stats().cache_inflight_joins, 1u);
}

TEST(TcpFrontend, DuplicateClientIdSharesOneBucketAcrossConnections) {
  // Fairness is keyed by the client id IN THE FRAME, not by the connection:
  // a client reconnecting (or opening parallel sockets) cannot mint fresh
  // tokens by presenting the same id twice.
  serve::ServeConfig cfg;
  cfg.client_rate = 0.001;  // effectively no refill inside the test
  cfg.client_burst = 2;
  Frontend fe(cfg);
  net::Client a1("127.0.0.1", fe.tcp->port(), 7);
  EXPECT_TRUE(a1.submit(sample_input(31)).ok());
  EXPECT_TRUE(a1.submit(sample_input(32)).ok());
  net::Client a2("127.0.0.1", fe.tcp->port(), 7);  // same id, new socket
  const auto busy = a2.submit(sample_input(33));
  EXPECT_EQ(busy.status, net::WireStatus::kBusyRetryAfter);
  EXPECT_GE(busy.retry_after_ms, 1u);
  EXPECT_LE(busy.retry_after_ms, 5000u);
  net::Client b("127.0.0.1", fe.tcp->port(), 8);  // different id: fresh bucket
  EXPECT_TRUE(b.submit(sample_input(34)).ok());
}

TEST(TcpFrontend, BusyRetryAfterRoundTripsWithItsHint) {
  serve::ServeConfig cfg;
  cfg.client_rate = 0.001;
  cfg.client_burst = 1;
  Frontend fe(cfg);
  net::Client client("127.0.0.1", fe.tcp->port(), 9);
  EXPECT_TRUE(client.submit(sample_input(41)).ok());
  const auto busy = client.submit(sample_input(42));
  EXPECT_EQ(busy.status, net::WireStatus::kBusyRetryAfter);
  EXPECT_FALSE(busy.cached);
  EXPECT_TRUE(busy.logits.empty());
  EXPECT_GE(busy.retry_after_ms, 1u);
  EXPECT_LE(busy.retry_after_ms, 5000u);
  // honor_retry_after: the client retries (bounded sleeps) and, with no
  // refill coming, surfaces the final busy instead of hanging.
  net::Client retrier("127.0.0.1", fe.tcp->port(), 10);
  retrier.honor_retry_after(/*max_attempts=*/3, /*max_sleep_ms=*/2);
  EXPECT_TRUE(retrier.submit(sample_input(43)).ok());
  const auto exhausted = retrier.submit(sample_input(44));
  EXPECT_EQ(exhausted.status, net::WireStatus::kBusyRetryAfter);
  EXPECT_EQ(fe.server->stats().admission_throttled, 4u);  // 1 + 3 attempts
}

TEST(TcpFrontend, OversizedDimsInSubmitFrameDropTheConnection) {
  // An honest length prefix around a submit frame claiming a 2^20-wide image:
  // the decoder's dimension guard must tear the connection down before any
  // allocation happens.
  Frontend fe;
  const int fd = raw_connect(fe.tcp->port());
  std::vector<std::uint8_t> payload;
  auto put32 = [&payload](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      payload.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  auto put64 = [&payload](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      payload.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  payload.push_back(net::kFrameSubmit);
  put64(1);                 // request id
  put64(7);                 // client id
  put32(3);                 // C
  put32(1u << 20);          // H: beyond the 2^16 plausibility cap
  put32(4);                 // W
  const auto len = static_cast<std::uint32_t>(payload.size());
  ASSERT_EQ(::send(fd, &len, sizeof len, MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof len));
  ASSERT_EQ(::send(fd, payload.data(), payload.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(payload.size()));
  EXPECT_TRUE(reads_eof(fd));
  ::close(fd);
  net::Client client("127.0.0.1", fe.tcp->port());
  EXPECT_TRUE(client.submit(sample_input(12)).ok());
}

TEST(TcpFrontend, TruncatedFrameThenHangupIsHandled) {
  Frontend fe;
  const int fd = raw_connect(fe.tcp->port());
  // Claim 1000 payload bytes, deliver 10, hang up mid-frame.
  const std::uint32_t len = 1000;
  std::uint8_t partial[10] = {};
  ASSERT_EQ(::send(fd, &len, sizeof len, MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof len));
  ASSERT_EQ(::send(fd, partial, sizeof partial, MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof partial));
  ::close(fd);
  net::Client client("127.0.0.1", fe.tcp->port());
  EXPECT_TRUE(client.submit(sample_input(10)).ok());
}

}  // namespace
}  // namespace ibrar
