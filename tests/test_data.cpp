// Synthetic data generator: determinism, ranges, class balance/imbalance,
// shared-feature correlation structure, loader semantics, registry.

#include <gtest/gtest.h>

#include <cmath>

#include "data/loader.hpp"
#include "data/registry.hpp"
#include "tensor/ops.hpp"

namespace ibrar::data {
namespace {

double image_correlation(const Tensor& protos, std::int64_t a, std::int64_t b) {
  const std::int64_t img = protos.numel() / protos.dim(0);
  double dot_ab = 0, na = 0, nb = 0, ma = 0, mb = 0;
  for (std::int64_t k = 0; k < img; ++k) {
    ma += protos.data()[a * img + k];
    mb += protos.data()[b * img + k];
  }
  ma /= img;
  mb /= img;
  for (std::int64_t k = 0; k < img; ++k) {
    const double va = protos.data()[a * img + k] - ma;
    const double vb = protos.data()[b * img + k] - mb;
    dot_ab += va * vb;
    na += va * va;
    nb += vb * vb;
  }
  return dot_ab / std::sqrt(na * nb + 1e-12);
}

TEST(Synthetic, DeterministicInSeed) {
  auto cfg = cifar10_like(64, 32, 5);
  const auto a = generate(cfg);
  const auto b = generate(cfg);
  for (std::int64_t i = 0; i < a.train.images.numel(); ++i) {
    EXPECT_FLOAT_EQ(a.train.images[i], b.train.images[i]);
  }
  EXPECT_EQ(a.train.labels, b.train.labels);
}

TEST(Synthetic, DifferentSeedsDiffer) {
  const auto a = generate(cifar10_like(64, 32, 5));
  const auto b = generate(cifar10_like(64, 32, 6));
  double diff = 0;
  for (std::int64_t i = 0; i < a.train.images.numel(); ++i) {
    diff += std::fabs(a.train.images[i] - b.train.images[i]);
  }
  EXPECT_GT(diff, 1.0);
}

TEST(Synthetic, ImagesInUnitRange) {
  const auto d = generate(cifar10_like(128, 32, 7));
  EXPECT_GE(min_all(d.train.images), 0.0f);
  EXPECT_LE(max_all(d.train.images), 1.0f);
}

TEST(Synthetic, BalancedClassCounts) {
  const auto d = generate(cifar10_like(200, 100, 7));
  const auto counts = d.train.class_counts();
  for (const auto c : counts) EXPECT_EQ(c, 20);
}

TEST(Synthetic, SVHNImbalanceMatchesPaperPlateau) {
  const auto d = make_dataset("synth-svhn", 4000, 100, 13);
  const auto counts = d.train.class_counts();
  std::int64_t majority = 0;
  std::size_t arg = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] > majority) {
      majority = counts[i];
      arg = i;
    }
  }
  EXPECT_EQ(arg, 1u);  // digit '1' dominates, as in real SVHN
  const double prior = static_cast<double>(majority) / d.train.size();
  EXPECT_NEAR(prior, 0.196, 0.03);  // the 19.587% plateau of Fig. 4
}

TEST(Synthetic, SharedPairsAreMoreCorrelated) {
  const auto cfg = cifar10_like(32, 16, 11);
  const auto d = generate(cfg);
  // Planted pair (car=1, truck=9) must correlate more than a non-pair
  // average.
  const double paired = image_correlation(d.prototypes, 1, 9);
  double unpaired = 0;
  int n = 0;
  for (std::int64_t a = 0; a < 10; ++a) {
    for (std::int64_t b = a + 1; b < 10; ++b) {
      const bool is_pair = [&] {
        for (const auto& [pa, pb] : cfg.shared_pairs) {
          if ((pa == a && pb == b) || (pa == b && pb == a)) return true;
        }
        return false;
      }();
      if (!is_pair) {
        unpaired += image_correlation(d.prototypes, a, b);
        ++n;
      }
    }
  }
  unpaired /= n;
  EXPECT_GT(paired, unpaired + 0.15);
}

TEST(Synthetic, ClassNamesMatchCifar) {
  const auto d = make_dataset("synth-cifar10", 16, 16);
  ASSERT_EQ(d.train.class_names.size(), 10u);
  EXPECT_EQ(d.train.class_names[1], "car");
  EXPECT_EQ(d.train.class_names[9], "truck");
}

TEST(Synthetic, PrototypesCarrySignal) {
  // Same-class samples must be closer to their own prototype than to others'.
  const auto d = generate(cifar10_like(100, 20, 17));
  const std::int64_t img = d.prototypes.numel() / d.prototypes.dim(0);
  std::int64_t hits = 0;
  for (std::int64_t i = 0; i < 50; ++i) {
    double best = 1e30;
    std::int64_t best_c = -1;
    for (std::int64_t c = 0; c < 10; ++c) {
      double dist = 0;
      for (std::int64_t k = 0; k < img; ++k) {
        const double v =
            d.train.images.data()[i * img + k] - d.prototypes.data()[c * img + k];
        dist += v * v;
      }
      if (dist < best) {
        best = dist;
        best_c = c;
      }
    }
    hits += best_c == d.train.labels[static_cast<std::size_t>(i)] ? 1 : 0;
  }
  EXPECT_GE(hits, 35);  // nearest-prototype classifies most samples
}

TEST(DatasetOps, SubsetAndHead) {
  const auto d = make_dataset("synth-cifar10", 30, 10);
  const auto sub = d.train.subset({5, 2, 7});
  EXPECT_EQ(sub.size(), 3);
  EXPECT_EQ(sub.labels[0], d.train.labels[5]);
  EXPECT_EQ(sub.labels[2], d.train.labels[7]);
  const auto h = d.train.head(4);
  EXPECT_EQ(h.size(), 4);
  EXPECT_EQ(h.labels[3], d.train.labels[3]);
}

TEST(DatasetOps, MakeBatch) {
  const auto d = make_dataset("synth-cifar10", 20, 10);
  const auto b = make_batch(d.train, {0, 19});
  EXPECT_EQ(b.size(), 2);
  EXPECT_EQ(b.x.shape()[0], 2);
  EXPECT_EQ(b.y[1], d.train.labels[19]);
}

TEST(DatasetOps, MakeBatchRangeMatchesIndexForm) {
  const auto d = make_dataset("synth-cifar10", 20, 10);
  const auto ranged = make_batch(d.train, 3, 9);
  std::vector<std::int64_t> idx;
  for (std::int64_t i = 3; i < 9; ++i) idx.push_back(i);
  const auto gathered = make_batch(d.train, idx);
  ASSERT_EQ(ranged.x.shape(), gathered.x.shape());
  EXPECT_EQ(ranged.y, gathered.y);
  for (std::int64_t i = 0; i < ranged.x.numel(); ++i) {
    ASSERT_EQ(ranged.x[i], gathered.x[i]);
  }
}

TEST(DatasetOps, MakeBatchRangeValidates) {
  const auto d = make_dataset("synth-cifar10", 10, 5);
  EXPECT_THROW(make_batch(d.train, -1, 3), std::out_of_range);
  EXPECT_THROW(make_batch(d.train, 4, 2), std::out_of_range);
  EXPECT_THROW(make_batch(d.train, 0, 11), std::out_of_range);
  const auto empty = make_batch(d.train, 5, 5);
  EXPECT_EQ(empty.size(), 0);
}

TEST(Loader, CoversEveryExampleOnce) {
  const auto d = make_dataset("synth-cifar10", 53, 10);
  DataLoader loader(d.train, 10, /*shuffle=*/true, Rng(3));
  loader.begin_epoch();
  Batch b;
  std::vector<std::int64_t> seen_labels;
  std::int64_t total = 0;
  while (loader.next(b)) {
    total += b.size();
    EXPECT_LE(b.size(), 10);
  }
  EXPECT_EQ(total, 53);
  EXPECT_EQ(loader.batches_per_epoch(), 6);
}

TEST(Loader, ShuffleChangesOrderAcrossEpochs) {
  const auto d = make_dataset("synth-cifar10", 40, 10);
  DataLoader loader(d.train, 40, /*shuffle=*/true, Rng(4));
  Batch b1, b2;
  loader.begin_epoch();
  loader.next(b1);
  loader.begin_epoch();
  loader.next(b2);
  EXPECT_NE(b1.y, b2.y);  // 40! orderings; collision is negligible
}

TEST(Loader, NoShufflePreservesOrder) {
  const auto d = make_dataset("synth-cifar10", 12, 10);
  DataLoader loader(d.train, 5, /*shuffle=*/false, Rng(5));
  loader.begin_epoch();
  Batch b;
  loader.next(b);
  for (std::int64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(b.y[static_cast<std::size_t>(i)], d.train.labels[static_cast<std::size_t>(i)]);
  }
}

TEST(Registry, AllDatasetsGenerate) {
  for (const auto& name : dataset_names()) {
    const auto d = make_dataset(name, 20, 10);
    EXPECT_EQ(d.train.size(), 20) << name;
    EXPECT_EQ(d.test.size(), 10) << name;
    EXPECT_GT(d.train.num_classes, 0) << name;
  }
  EXPECT_THROW(make_dataset("imagenet", 10, 10), std::invalid_argument);
}

TEST(Registry, TinyImageNetHas20Classes) {
  const auto d = make_dataset("synth-tinyimagenet", 40, 20);
  EXPECT_EQ(d.train.num_classes, 20);
}

}  // namespace
}  // namespace ibrar::data
