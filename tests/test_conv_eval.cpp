// Fused inference conv path: bit-identity against the layer-by-layer eval
// pipeline (the contract in src/tensor/conv_eval.hpp), BN-fold exactness,
// lane-count invariance, model-level logit/tap equality for all three conv
// classifiers, the grad-enabled fallback, the IBRAR_EVAL_FUSED escape hatch,
// and the serve.snapshot_bytes gauge accounting of plan lifetimes.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "autograd/ops.hpp"
#include "autograd/var.hpp"
#include "models/registry.hpp"
#include "obs/metrics.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/conv_eval.hpp"
#include "tensor/random.hpp"
#include "util/rng.hpp"

namespace ibrar {
namespace {

constexpr float kEps = 1e-5f;

bool bits_equal(const Tensor& a, const Tensor& b) {
  return a.same_shape(b) &&
         std::memcmp(a.data().data(), b.data().data(),
                     sizeof(float) * static_cast<std::size_t>(a.numel())) == 0;
}

struct BnParams {
  Tensor gamma, beta, rm, rv;
};

BnParams make_bn(std::int64_t c, Rng& rng) {
  BnParams bn{randn({c}, rng), randn({c}, rng), randn({c}, rng),
              randn({c}, rng)};
  for (std::int64_t i = 0; i < c; ++i) bn.rv[i] = bn.rv[i] * bn.rv[i] + 0.25f;
  return bn;
}

/// relu(bn(conv(x) + bias) [+ skip]) through the layer-by-layer eval ops.
Tensor reference(const Tensor& x, const Tensor& w, const Tensor* bias,
                 const Conv2dSpec& spec, const BnParams* bn,
                 const Tensor* skip, bool relu) {
  ag::NoGradGuard ng;
  ag::Var h = ag::conv2d(ag::Var::constant(x), ag::Var::constant(w),
                         bias != nullptr ? ag::Var::constant(*bias) : ag::Var(),
                         spec);
  if (bn != nullptr) {
    h = ag::batch_norm2d_eval(h, ag::Var::constant(bn->gamma),
                              ag::Var::constant(bn->beta), bn->rm, bn->rv,
                              kEps);
  }
  if (skip != nullptr) h = ag::add(h, ag::Var::constant(*skip));
  if (relu) h = ag::relu(h);
  return h.value();
}

}  // namespace

TEST(FoldBatchNorm, ReproducesBatchNormEvalBitExactly) {
  Rng rng(11);
  const Tensor x = randn({3, 7, 5, 6}, rng);
  const BnParams bn = make_bn(7, rng);
  const FoldedBn fold =
      fold_batch_norm(bn.gamma, bn.beta, bn.rm, bn.rv, kEps);
  ASSERT_TRUE(fold.defined());

  ag::NoGradGuard ng;
  const ag::Var ref = ag::batch_norm2d_eval(
      ag::Var::constant(x), ag::Var::constant(bn.gamma),
      ag::Var::constant(bn.beta), bn.rm, bn.rv, kEps);
  EXPECT_TRUE(bits_equal(batch_norm_relu_eval(x, fold, false), ref.value()));
  EXPECT_TRUE(
      bits_equal(batch_norm_relu_eval(x, fold, true), ag::relu(ref).value()));
}

TEST(FoldBatchNorm, DefaultFoldIsUndefined) {
  EXPECT_FALSE(FoldedBn{}.defined());
}

TEST(MaxPoolEval, MatchesMaxPool2d) {
  Rng rng(12);
  const Tensor x = randn({2, 3, 8, 6}, rng);
  EXPECT_TRUE(bits_equal(maxpool2d_eval(x, 2, 2), maxpool2d(x, 2, 2).out));
}

TEST(ConvEvalPlan, BitIdenticalAcrossRaggedShapesAndBatches) {
  struct Case {
    const char* name;
    std::int64_t c, h, w, f;
    Conv2dSpec spec;
    bool bias;
  };
  // Non-square, stride-2, 1x1 stride-2 projection, kernel == input, plus a
  // deep-VGG shape whose spatial size (4) leaves NR=16 strips mostly empty
  // at batch 1 and full at batch >= 4.
  const std::vector<Case> cases = {
      {"square3x3", 5, 9, 9, 7, {3, 1, 1}, true},
      {"nonsquare", 4, 6, 10, 9, {3, 1, 1}, true},
      {"stride2", 6, 11, 7, 8, {3, 2, 1}, true},
      {"proj1x1s2", 8, 8, 8, 12, {1, 2, 0}, false},
      {"kernel_eq_input", 5, 4, 4, 6, {4, 1, 0}, false},
      {"deep_vgg", 16, 4, 4, 24, {3, 1, 1}, true},
  };
  const std::vector<std::int64_t> batches = {1, 2, 3, 5, 8, 32};
  for (const auto& tc : cases) {
    Rng rng(0x5eedu + static_cast<std::uint64_t>(tc.f));
    const Tensor w = randn({tc.f, tc.c, tc.spec.kernel, tc.spec.kernel}, rng);
    const Tensor bias = randn({tc.f}, rng);
    const BnParams bn = make_bn(tc.f, rng);
    const ConvEvalPlan plan(
        w, tc.bias ? &bias : nullptr, tc.spec,
        fold_batch_norm(bn.gamma, bn.beta, bn.rm, bn.rv, kEps), true);
    EXPECT_EQ(plan.in_channels(), tc.c);
    EXPECT_EQ(plan.out_channels(), tc.f);
    for (const auto n : batches) {
      Rng xrng(0x90u ^ static_cast<std::uint64_t>(n));
      const Tensor x = randn({n, tc.c, tc.h, tc.w}, xrng);
      const Tensor ref =
          reference(x, w, tc.bias ? &bias : nullptr, tc.spec, &bn, nullptr,
                    true);
      EXPECT_TRUE(bits_equal(ref, plan.run(x)))
          << tc.name << " batch=" << n;
    }
  }
}

TEST(ConvEvalPlan, ConvOnlyAndResidualSkipVariants) {
  Rng rng(21);
  const Conv2dSpec spec{3, 1, 1};
  const Tensor w = randn({10, 6, 3, 3}, rng);
  const Tensor x = randn({3, 6, 8, 8}, rng);
  const Tensor skip = randn({3, 10, 8, 8}, rng);
  const BnParams bn = make_bn(10, rng);

  // Bare conv (WRN pre-activation blocks use these: BN runs before the conv).
  const ConvEvalPlan bare(w, nullptr, spec, FoldedBn{}, false);
  EXPECT_TRUE(bits_equal(reference(x, w, nullptr, spec, nullptr, nullptr,
                                   false),
                         bare.run(x)));

  // Post-activation residual: relu(add(bn(conv(x)), skip)) fused into the
  // epilogue (resnet BasicBlock tail).
  const ConvEvalPlan res(w, nullptr, spec,
                         fold_batch_norm(bn.gamma, bn.beta, bn.rm, bn.rv,
                                         kEps),
                         true);
  EXPECT_TRUE(bits_equal(reference(x, w, nullptr, spec, &bn, &skip, true),
                         res.run(x, &skip)));
}

TEST(ConvEvalPlan, LaneCountDoesNotChangeBits) {
  Rng rng(31);
  const Conv2dSpec spec{3, 1, 1};
  const Tensor w = randn({12, 8, 3, 3}, rng);
  const Tensor x = randn({8, 8, 16, 16}, rng);
  const BnParams bn = make_bn(12, rng);
  const ConvEvalPlan plan(
      w, nullptr, spec, fold_batch_norm(bn.gamma, bn.beta, bn.rm, bn.rv, kEps),
      true);
  const std::int64_t lanes0 = runtime::num_threads();
  runtime::set_num_threads(1);
  const Tensor r1 = plan.run(x);
  runtime::set_num_threads(4);
  const Tensor r4 = plan.run(x);
  runtime::set_num_threads(lanes0);
  EXPECT_TRUE(bits_equal(r1, r4));
  EXPECT_TRUE(bits_equal(r1, plan.run(x)));
}

TEST(ConvEvalModels, FusedLogitsAndTapsMatchLayerByLayer) {
  for (const std::string name : {"vgg16", "resnet18", "wrn28"}) {
    models::ModelSpec spec;
    spec.name = name;
    Rng rng_a(77), rng_b(77);  // same seed => bit-identical weights
    auto reference_model = models::make_model(spec, rng_a);
    auto fused_model = models::make_model(spec, rng_b);
    reference_model->set_training(false);
    fused_model->set_training(false);
    EXPECT_FALSE(fused_model->fused_eval_ready());
    fused_model->prepare_fused_eval();
    ASSERT_TRUE(fused_model->fused_eval_ready()) << name;

    ag::NoGradGuard ng;
    for (const std::int64_t n : {1, 5}) {
      Rng xrng(3 + static_cast<std::uint64_t>(n));
      const ag::Var x = ag::Var::constant(
          randn({n, spec.in_channels, spec.image_size, spec.image_size},
                xrng));
      const auto ref = reference_model->eval_forward_with_taps(x);
      const auto fused = fused_model->eval_forward_with_taps(x);
      EXPECT_TRUE(bits_equal(ref.logits.value(), fused.logits.value()))
          << name << " logits batch=" << n;
      ASSERT_EQ(ref.taps.size(), fused.taps.size()) << name;
      for (std::size_t t = 0; t < ref.taps.size(); ++t) {
        EXPECT_TRUE(bits_equal(ref.taps[t].value(), fused.taps[t].value()))
            << name << " tap " << t << " batch=" << n;
      }
    }
  }
}

TEST(ConvEvalModels, GradEnabledFallsBackToDifferentiablePath) {
  models::ModelSpec spec;  // vgg16
  Rng rng(99);
  auto model = models::make_model(spec, rng);
  model->set_training(false);
  model->prepare_fused_eval();
  ASSERT_TRUE(model->fused_eval_ready());
  Rng xrng(5);
  const Tensor x = randn({2, spec.in_channels, spec.image_size,
                          spec.image_size}, xrng);

  // Gradients on (the attack loops' mode): the reference path must run so the
  // logits stay reachable-by-backward from the weights.
  ASSERT_TRUE(ag::grad_enabled());
  const auto traced = model->eval_forward_with_taps(ag::Var::constant(x));
  EXPECT_TRUE(traced.logits.requires_grad());

  // Gradients off (the serving path): the fused plans run, no graph is built,
  // and the values are bit-identical to the traced forward.
  ag::NoGradGuard ng;
  const auto fused = model->eval_forward_with_taps(ag::Var::constant(x));
  EXPECT_FALSE(fused.logits.requires_grad());
  EXPECT_TRUE(bits_equal(traced.logits.value(), fused.logits.value()));
}

TEST(ConvEvalModels, EnvKnobDisablesPlanConstruction) {
  ASSERT_EQ(setenv("IBRAR_EVAL_FUSED", "0", 1), 0);
  EXPECT_FALSE(fused_eval_enabled());
  models::ModelSpec spec;
  Rng rng(7);
  auto model = models::make_model(spec, rng);
  model->set_training(false);
  model->prepare_fused_eval();
  EXPECT_FALSE(model->fused_eval_ready());
  ASSERT_EQ(unsetenv("IBRAR_EVAL_FUSED"), 0);
  EXPECT_TRUE(fused_eval_enabled());
  // With the knob back off, the same model lowers fine.
  model->prepare_fused_eval();
  EXPECT_TRUE(model->fused_eval_ready());
}

TEST(ConvEvalPlan, GaugeAccountsPackedBytesAcrossMoveAndDestroy) {
  auto& gauge = obs::registry().gauge("serve.snapshot_bytes");
  const double base = gauge.value();
  Rng rng(41);
  const Tensor w = randn({8, 4, 3, 3}, rng);
  {
    ConvEvalPlan plan(w, nullptr, Conv2dSpec{3, 1, 1}, FoldedBn{}, false);
    const double bytes = static_cast<double>(plan.packed_bytes());
    EXPECT_GT(bytes, 0.0);
    EXPECT_EQ(gauge.value(), base + bytes);
    ConvEvalPlan moved = std::move(plan);
    // Ownership (and accounting) moved with the panels — no double count.
    EXPECT_EQ(gauge.value(), base + bytes);
    EXPECT_EQ(static_cast<double>(moved.packed_bytes()), bytes);
  }
  EXPECT_EQ(gauge.value(), base);
}

}  // namespace ibrar
