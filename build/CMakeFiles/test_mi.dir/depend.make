# Empty dependencies file for test_mi.
# This may be replaced when dependencies are built.
