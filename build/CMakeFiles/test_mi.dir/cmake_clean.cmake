file(REMOVE_RECURSE
  "CMakeFiles/test_mi.dir/tests/test_mi.cpp.o"
  "CMakeFiles/test_mi.dir/tests/test_mi.cpp.o.d"
  "test_mi"
  "test_mi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
