file(REMOVE_RECURSE
  "CMakeFiles/robust_layer_discovery.dir/examples/robust_layer_discovery.cpp.o"
  "CMakeFiles/robust_layer_discovery.dir/examples/robust_layer_discovery.cpp.o.d"
  "robust_layer_discovery"
  "robust_layer_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robust_layer_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
