# Empty dependencies file for robust_layer_discovery.
# This may be replaced when dependencies are built.
