file(REMOVE_RECURSE
  "libibrar.a"
)
