
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attacks/adaptive.cpp" "CMakeFiles/ibrar.dir/src/attacks/adaptive.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/attacks/adaptive.cpp.o.d"
  "/root/repo/src/attacks/attack.cpp" "CMakeFiles/ibrar.dir/src/attacks/attack.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/attacks/attack.cpp.o.d"
  "/root/repo/src/attacks/cw.cpp" "CMakeFiles/ibrar.dir/src/attacks/cw.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/attacks/cw.cpp.o.d"
  "/root/repo/src/attacks/fab.cpp" "CMakeFiles/ibrar.dir/src/attacks/fab.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/attacks/fab.cpp.o.d"
  "/root/repo/src/attacks/fgsm.cpp" "CMakeFiles/ibrar.dir/src/attacks/fgsm.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/attacks/fgsm.cpp.o.d"
  "/root/repo/src/attacks/mifgsm.cpp" "CMakeFiles/ibrar.dir/src/attacks/mifgsm.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/attacks/mifgsm.cpp.o.d"
  "/root/repo/src/attacks/nifgsm.cpp" "CMakeFiles/ibrar.dir/src/attacks/nifgsm.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/attacks/nifgsm.cpp.o.d"
  "/root/repo/src/attacks/pgd.cpp" "CMakeFiles/ibrar.dir/src/attacks/pgd.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/attacks/pgd.cpp.o.d"
  "/root/repo/src/attacks/square.cpp" "CMakeFiles/ibrar.dir/src/attacks/square.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/attacks/square.cpp.o.d"
  "/root/repo/src/autograd/gradcheck.cpp" "CMakeFiles/ibrar.dir/src/autograd/gradcheck.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/autograd/gradcheck.cpp.o.d"
  "/root/repo/src/autograd/ops_conv.cpp" "CMakeFiles/ibrar.dir/src/autograd/ops_conv.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/autograd/ops_conv.cpp.o.d"
  "/root/repo/src/autograd/ops_elementwise.cpp" "CMakeFiles/ibrar.dir/src/autograd/ops_elementwise.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/autograd/ops_elementwise.cpp.o.d"
  "/root/repo/src/autograd/ops_linalg.cpp" "CMakeFiles/ibrar.dir/src/autograd/ops_linalg.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/autograd/ops_linalg.cpp.o.d"
  "/root/repo/src/autograd/ops_loss.cpp" "CMakeFiles/ibrar.dir/src/autograd/ops_loss.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/autograd/ops_loss.cpp.o.d"
  "/root/repo/src/autograd/ops_norm.cpp" "CMakeFiles/ibrar.dir/src/autograd/ops_norm.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/autograd/ops_norm.cpp.o.d"
  "/root/repo/src/autograd/ops_reduce.cpp" "CMakeFiles/ibrar.dir/src/autograd/ops_reduce.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/autograd/ops_reduce.cpp.o.d"
  "/root/repo/src/autograd/ops_shape.cpp" "CMakeFiles/ibrar.dir/src/autograd/ops_shape.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/autograd/ops_shape.cpp.o.d"
  "/root/repo/src/autograd/var.cpp" "CMakeFiles/ibrar.dir/src/autograd/var.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/autograd/var.cpp.o.d"
  "/root/repo/src/core/feature_mask.cpp" "CMakeFiles/ibrar.dir/src/core/feature_mask.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/core/feature_mask.cpp.o.d"
  "/root/repo/src/core/ibrar.cpp" "CMakeFiles/ibrar.dir/src/core/ibrar.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/core/ibrar.cpp.o.d"
  "/root/repo/src/core/mi_loss.cpp" "CMakeFiles/ibrar.dir/src/core/mi_loss.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/core/mi_loss.cpp.o.d"
  "/root/repo/src/core/robust_layers.cpp" "CMakeFiles/ibrar.dir/src/core/robust_layers.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/core/robust_layers.cpp.o.d"
  "/root/repo/src/core/shared_features.cpp" "CMakeFiles/ibrar.dir/src/core/shared_features.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/core/shared_features.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "CMakeFiles/ibrar.dir/src/data/dataset.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/data/dataset.cpp.o.d"
  "/root/repo/src/data/loader.cpp" "CMakeFiles/ibrar.dir/src/data/loader.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/data/loader.cpp.o.d"
  "/root/repo/src/data/registry.cpp" "CMakeFiles/ibrar.dir/src/data/registry.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/data/registry.cpp.o.d"
  "/root/repo/src/data/synthetic.cpp" "CMakeFiles/ibrar.dir/src/data/synthetic.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/data/synthetic.cpp.o.d"
  "/root/repo/src/mi/binned_mi.cpp" "CMakeFiles/ibrar.dir/src/mi/binned_mi.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/mi/binned_mi.cpp.o.d"
  "/root/repo/src/mi/channel_score.cpp" "CMakeFiles/ibrar.dir/src/mi/channel_score.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/mi/channel_score.cpp.o.d"
  "/root/repo/src/mi/hsic.cpp" "CMakeFiles/ibrar.dir/src/mi/hsic.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/mi/hsic.cpp.o.d"
  "/root/repo/src/mi/kernels.cpp" "CMakeFiles/ibrar.dir/src/mi/kernels.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/mi/kernels.cpp.o.d"
  "/root/repo/src/mi/objective.cpp" "CMakeFiles/ibrar.dir/src/mi/objective.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/mi/objective.cpp.o.d"
  "/root/repo/src/mi/tsne.cpp" "CMakeFiles/ibrar.dir/src/mi/tsne.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/mi/tsne.cpp.o.d"
  "/root/repo/src/models/mlp.cpp" "CMakeFiles/ibrar.dir/src/models/mlp.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/models/mlp.cpp.o.d"
  "/root/repo/src/models/registry.cpp" "CMakeFiles/ibrar.dir/src/models/registry.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/models/registry.cpp.o.d"
  "/root/repo/src/models/resnet.cpp" "CMakeFiles/ibrar.dir/src/models/resnet.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/models/resnet.cpp.o.d"
  "/root/repo/src/models/vgg.cpp" "CMakeFiles/ibrar.dir/src/models/vgg.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/models/vgg.cpp.o.d"
  "/root/repo/src/models/wideresnet.cpp" "CMakeFiles/ibrar.dir/src/models/wideresnet.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/models/wideresnet.cpp.o.d"
  "/root/repo/src/nn/activation.cpp" "CMakeFiles/ibrar.dir/src/nn/activation.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/nn/activation.cpp.o.d"
  "/root/repo/src/nn/conv.cpp" "CMakeFiles/ibrar.dir/src/nn/conv.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/nn/conv.cpp.o.d"
  "/root/repo/src/nn/dropout.cpp" "CMakeFiles/ibrar.dir/src/nn/dropout.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/nn/dropout.cpp.o.d"
  "/root/repo/src/nn/init.cpp" "CMakeFiles/ibrar.dir/src/nn/init.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/nn/init.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "CMakeFiles/ibrar.dir/src/nn/linear.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/nn/linear.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "CMakeFiles/ibrar.dir/src/nn/module.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/nn/module.cpp.o.d"
  "/root/repo/src/nn/norm.cpp" "CMakeFiles/ibrar.dir/src/nn/norm.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/nn/norm.cpp.o.d"
  "/root/repo/src/nn/pool.cpp" "CMakeFiles/ibrar.dir/src/nn/pool.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/nn/pool.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "CMakeFiles/ibrar.dir/src/nn/sequential.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/nn/sequential.cpp.o.d"
  "/root/repo/src/runtime/thread_pool.cpp" "CMakeFiles/ibrar.dir/src/runtime/thread_pool.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/runtime/thread_pool.cpp.o.d"
  "/root/repo/src/tensor/im2col.cpp" "CMakeFiles/ibrar.dir/src/tensor/im2col.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/tensor/im2col.cpp.o.d"
  "/root/repo/src/tensor/matmul.cpp" "CMakeFiles/ibrar.dir/src/tensor/matmul.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/tensor/matmul.cpp.o.d"
  "/root/repo/src/tensor/ops.cpp" "CMakeFiles/ibrar.dir/src/tensor/ops.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/tensor/ops.cpp.o.d"
  "/root/repo/src/tensor/random.cpp" "CMakeFiles/ibrar.dir/src/tensor/random.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/tensor/random.cpp.o.d"
  "/root/repo/src/tensor/reduce.cpp" "CMakeFiles/ibrar.dir/src/tensor/reduce.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/tensor/reduce.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "CMakeFiles/ibrar.dir/src/tensor/tensor.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/tensor/tensor.cpp.o.d"
  "/root/repo/src/train/evaluate.cpp" "CMakeFiles/ibrar.dir/src/train/evaluate.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/train/evaluate.cpp.o.d"
  "/root/repo/src/train/hbar.cpp" "CMakeFiles/ibrar.dir/src/train/hbar.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/train/hbar.cpp.o.d"
  "/root/repo/src/train/mart.cpp" "CMakeFiles/ibrar.dir/src/train/mart.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/train/mart.cpp.o.d"
  "/root/repo/src/train/metrics.cpp" "CMakeFiles/ibrar.dir/src/train/metrics.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/train/metrics.cpp.o.d"
  "/root/repo/src/train/objectives.cpp" "CMakeFiles/ibrar.dir/src/train/objectives.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/train/objectives.cpp.o.d"
  "/root/repo/src/train/optimizer.cpp" "CMakeFiles/ibrar.dir/src/train/optimizer.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/train/optimizer.cpp.o.d"
  "/root/repo/src/train/scheduler.cpp" "CMakeFiles/ibrar.dir/src/train/scheduler.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/train/scheduler.cpp.o.d"
  "/root/repo/src/train/trades.cpp" "CMakeFiles/ibrar.dir/src/train/trades.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/train/trades.cpp.o.d"
  "/root/repo/src/train/trainer.cpp" "CMakeFiles/ibrar.dir/src/train/trainer.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/train/trainer.cpp.o.d"
  "/root/repo/src/train/vib.cpp" "CMakeFiles/ibrar.dir/src/train/vib.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/train/vib.cpp.o.d"
  "/root/repo/src/util/env.cpp" "CMakeFiles/ibrar.dir/src/util/env.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/util/env.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "CMakeFiles/ibrar.dir/src/util/logging.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/util/logging.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "CMakeFiles/ibrar.dir/src/util/rng.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/util/rng.cpp.o.d"
  "/root/repo/src/util/serialize.cpp" "CMakeFiles/ibrar.dir/src/util/serialize.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/util/serialize.cpp.o.d"
  "/root/repo/src/util/stopwatch.cpp" "CMakeFiles/ibrar.dir/src/util/stopwatch.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/util/stopwatch.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/ibrar.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/ibrar.dir/src/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
