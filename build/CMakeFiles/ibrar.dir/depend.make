# Empty dependencies file for ibrar.
# This may be replaced when dependencies are built.
