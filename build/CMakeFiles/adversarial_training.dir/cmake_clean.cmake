file(REMOVE_RECURSE
  "CMakeFiles/adversarial_training.dir/examples/adversarial_training.cpp.o"
  "CMakeFiles/adversarial_training.dir/examples/adversarial_training.cpp.o.d"
  "adversarial_training"
  "adversarial_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversarial_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
