# Empty dependencies file for adversarial_training.
# This may be replaced when dependencies are built.
