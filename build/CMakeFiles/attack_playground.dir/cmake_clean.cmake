file(REMOVE_RECURSE
  "CMakeFiles/attack_playground.dir/examples/attack_playground.cpp.o"
  "CMakeFiles/attack_playground.dir/examples/attack_playground.cpp.o.d"
  "attack_playground"
  "attack_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
