# Empty dependencies file for attack_playground.
# This may be replaced when dependencies are built.
