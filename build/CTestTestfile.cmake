# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_attacks "/root/repo/build/test_attacks")
set_tests_properties(test_attacks PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;43;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_autograd "/root/repo/build/test_autograd")
set_tests_properties(test_autograd PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;43;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;43;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_data "/root/repo/build/test_data")
set_tests_properties(test_data PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;43;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_extensions "/root/repo/build/test_extensions")
set_tests_properties(test_extensions PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;43;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;43;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_mi "/root/repo/build/test_mi")
set_tests_properties(test_mi PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;43;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_models "/root/repo/build/test_models")
set_tests_properties(test_models PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;43;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_nn "/root/repo/build/test_nn")
set_tests_properties(test_nn PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;43;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_runtime "/root/repo/build/test_runtime")
set_tests_properties(test_runtime PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;43;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_tensor "/root/repo/build/test_tensor")
set_tests_properties(test_tensor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;43;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_train "/root/repo/build/test_train")
set_tests_properties(test_train PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;43;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_util "/root/repo/build/test_util")
set_tests_properties(test_util PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;43;add_test;/root/repo/CMakeLists.txt;0;")
