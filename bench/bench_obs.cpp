// Observability overhead bench: the instruments must not perturb the patient.
//
// Rows recorded (BENCH_pr6.json / IBRAR_BENCH_OUT):
//   obs/counter_inc        ns per Counter::inc on the sharded hot path
//   obs/histogram_observe  ns per Histogram::observe (bucket + count + sum)
//   obs/span_record        ns per active Span (2 clock reads + ring append)
//   obs/profile_scope_off  ns per DISABLED ProfileScope — the permanent-hook
//                          cost every kernel pays; gated below
//   obs/gemm_profile_ab    gemm_packed wall time with profiling OFF vs ON,
//                          speedup_vs_naive = off/on ratio, bit_identical =
//                          memcmp of the two output buffers
//
// Gates (nonzero exit so CI can enforce them):
//   * gemm outputs with profiling on vs off are bit-identical — observation
//     never changes computation.
//   * (optimized, non-sanitized builds only) a disabled ProfileScope costs
//     < 100 ns. Measured
//     cost is typically ~1-3 ns; the slack absorbs noisy shared CI runners.
//     A gemm call is >= hundreds of microseconds, so even the gate bound is
//     <0.1% per call — "no measurable overhead" in bench_gemm terms.
//   * Sharded counters are exact: 4 threads x 200k increments must sum to
//     exactly 800000 (runs in every build flavour, including sanitizers).
//
//   ./bench_obs            full iteration counts
//   ./bench_obs --smoke    reduced counts — the bench_obs_smoke CTest run

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "reporter.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/gemm_packed.hpp"
#include "tensor/random.hpp"
#include "tensor/tensor.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace ibrar::bench {
namespace {

/// Mean ns/op of fn(iters) over `reps` timed runs (best-of to shed noise).
template <typename F>
double time_ns_per_op(F&& fn, std::int64_t iters, int reps = 5) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    fn(iters);
    best = std::min(best, sw.seconds() * 1e9 / static_cast<double>(iters));
  }
  return best;
}

void add_ns_row(JsonReporter& rep, Table& table, const char* kernel,
                double ns_per_op, std::int64_t iters) {
  BenchRecord rec;
  rec.kernel = kernel;
  rec.shape = std::to_string(iters) + " ops";
  rec.ns_per_op = ns_per_op;
  rep.add(rec);
  table.add_row({kernel, rec.shape, Table::num(ns_per_op, 2)});
}

bool counter_exactness() {
  obs::Counter c;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 200000;
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& t : ts) t.join();
  const std::uint64_t got = c.value();
  const std::uint64_t want = kThreads * kPerThread;
  if (got != want) {
    std::fprintf(stderr,
                 "[bench_obs] FAIL: sharded counter lost increments "
                 "(%llu != %llu)\n",
                 static_cast<unsigned long long>(got),
                 static_cast<unsigned long long>(want));
    return false;
  }
  return true;
}

}  // namespace
}  // namespace ibrar::bench

int main(int argc, char** argv) {
  using namespace ibrar;
  using namespace ibrar::bench;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::int64_t hot_iters = smoke ? 200000 : 4000000;
  const std::int64_t span_iters = smoke ? 50000 : 500000;
  const int gemm_reps = smoke ? 1 : 5;
  const std::int64_t gm = smoke ? 96 : 256, gk = smoke ? 96 : 256,
                     gn = smoke ? 96 : 256;

  JsonReporter rep(env::get_string("IBRAR_BENCH_OUT",
                                   smoke ? "BENCH_smoke_obs.json"
                                         : "BENCH_pr6.json"));
  Table table({"row", "shape", "ns_per_op"});
  bool ok = true;

  // -- exactness gate (cheap, every build flavour) --------------------------
  ok = counter_exactness() && ok;

  // -- hot-path costs -------------------------------------------------------
  obs::MetricsRegistry local;  // private registry: rows don't pollute serve.*
  obs::Counter& ctr = local.counter("bench.counter");
  obs::Histogram& hist = local.histogram("bench.hist");

  const double counter_ns = time_ns_per_op(
      [&ctr](std::int64_t n) {
        for (std::int64_t i = 0; i < n; ++i) ctr.inc();
      },
      hot_iters);
  add_ns_row(rep, table, "obs/counter_inc", counter_ns, hot_iters);

  const double hist_ns = time_ns_per_op(
      [&hist](std::int64_t n) {
        for (std::int64_t i = 0; i < n; ++i)
          hist.observe(static_cast<double>(i % 4096 + 1));
      },
      hot_iters);
  add_ns_row(rep, table, "obs/histogram_observe", hist_ns, hot_iters);

  // Active span cost: force sampling on, then restore. Rings overwrite
  // oldest-first so span_iters >> cap is fine.
  const std::int64_t saved_k = obs::trace_sample_every();
  obs::set_trace_sample_every(1);
  const double span_ns = time_ns_per_op(
      [](std::int64_t n) {
        for (std::int64_t i = 0; i < n; ++i) {
          obs::Span s("bench_span", true, static_cast<std::uint64_t>(i));
        }
      },
      span_iters);
  obs::set_trace_sample_every(saved_k);
  obs::clear_trace();
  add_ns_row(rep, table, "obs/span_record", span_ns, span_iters);

  // -- the permanent-hook gate: disabled ProfileScope -----------------------
  obs::set_profiling_enabled(false);
  obs::ProfileSite& site = obs::profile_site("bench/disabled_site");
  const double scope_off_ns = time_ns_per_op(
      [&site](std::int64_t n) {
        for (std::int64_t i = 0; i < n; ++i) {
          obs::ProfileScope scope(site);
        }
      },
      hot_iters);
  add_ns_row(rep, table, "obs/profile_scope_off", scope_off_ns, hot_iters);
// Enforce the timing gate only in optimized, non-sanitized builds — the CI
// sanitizer job runs this smoke too, where every scope pays redzone checks.
// (NDEBUG is unreliable here: the project overrides CMAKE_CXX_FLAGS_RELEASE.)
#if defined(__OPTIMIZE__) && !defined(__SANITIZE_ADDRESS__) && \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_UNDEFINED__)
  if (scope_off_ns >= 100.0) {
    std::fprintf(stderr,
                 "[bench_obs] FAIL: disabled ProfileScope costs %.1f ns/scope "
                 "(gate: < 100 ns)\n",
                 scope_off_ns);
    ok = false;
  }
#else
  std::fprintf(stderr,
               "[bench_obs] note: unoptimized/sanitizer build — "
               "profile_scope_off gate informational only (%.1f ns)\n",
               scope_off_ns);
#endif

  // -- gemm profiling OFF vs ON A/B: wall time + bit identity ---------------
  {
    runtime::set_num_threads(1);
    Rng rng(0x0b5e70b5u);
    const Tensor a = randn({gm, gk}, rng);
    const Tensor b = randn({gk, gn}, rng);
    Tensor c_off({gm, gn});
    Tensor c_on({gm, gn});

    obs::set_profiling_enabled(false);
    // Untimed warm-up so the off leg (timed first) isn't charged for cold
    // caches and first-touch page faults.
    gemm_packed(a.data().data(), GemmLayout::kRowMajor, b.data().data(),
                GemmLayout::kRowMajor, c_off.data().data(), gm, gk, gn);
    std::fill(c_off.data().begin(), c_off.data().end(), 0.0f);
    const double t_off = time_best_ms(
        [&] {
          std::fill(c_off.data().begin(), c_off.data().end(), 0.0f);
          gemm_packed(a.data().data(), GemmLayout::kRowMajor, b.data().data(),
                      GemmLayout::kRowMajor, c_off.data().data(), gm, gk, gn);
        },
        gemm_reps);

    obs::set_profiling_enabled(true);
    obs::reset_profile();
    const double t_on = time_best_ms(
        [&] {
          std::fill(c_on.data().begin(), c_on.data().end(), 0.0f);
          gemm_packed(a.data().data(), GemmLayout::kRowMajor, b.data().data(),
                      GemmLayout::kRowMajor, c_on.data().data(), gm, gk, gn);
        },
        gemm_reps);
    obs::set_profiling_enabled(false);

    const bool bits = tensor_bits_equal(c_off, c_on);
    if (!bits) {
      std::fprintf(stderr,
                   "[bench_obs] FAIL: gemm output differs with profiling on "
                   "— observation changed computation\n");
      ok = false;
    }

    BenchRecord rec;
    rec.kernel = "obs/gemm_profile_ab";
    char shape[64];
    std::snprintf(shape, sizeof(shape), "%lldx%lldx%lld",
                  static_cast<long long>(gm), static_cast<long long>(gk),
                  static_cast<long long>(gn));
    rec.shape = shape;
    rec.ns_per_op = t_on * 1e6;           // profiled-run wall ns
    rec.checksum = tensor_checksum(c_on);
    rec.speedup_vs_naive = t_on > 0.0 ? t_off / t_on : 0.0;  // off/on ratio
    rec.bit_identical = bits;
    rec.extra = {{"off_ms", t_off}, {"on_ms", t_on}};
    rep.add(rec);
    std::printf("gemm %s  profiling off %.3f ms  on %.3f ms  (off/on %.3fx)  "
                "bit_identical=%s\n",
                shape, t_off, t_on, rec.speedup_vs_naive, bits ? "yes" : "NO");
  }

  table.print();
  rep.write();
  if (!ok) {
    std::fprintf(stderr, "[bench_obs] GATE FAILURE\n");
    return 1;
  }
  std::printf("bench_obs: all gates passed\n");
  return 0;
}
