// Observability overhead bench: the instruments must not perturb the patient.
//
// Rows recorded (BENCH_pr10.json / IBRAR_BENCH_OUT):
//   obs/counter_inc        ns per Counter::inc on the sharded hot path
//   obs/histogram_observe  ns per Histogram::observe (bucket + count + sum)
//   obs/span_record        ns per active Span (2 clock reads + ring append)
//   obs/profile_scope_off  ns per DISABLED ProfileScope — the permanent-hook
//                          cost every kernel pays; gated below
//   obs/gemm_profile_ab    gemm_packed wall time with profiling OFF vs ON,
//                          speedup_vs_naive = off/on ratio, bit_identical =
//                          memcmp of the two output buffers
//   obs/ts_sample_now      ns per time-series sampler tick over a populated
//                          registry; extra.overhead_frac = tick cost as a
//                          fraction of the default 250 ms cadence (gated)
//   obs/drift_latency      scoring windows between a scripted clean -> PGD
//                          traffic shift and the drift flag flipping, for
//                          tumbling and EWMA re-score modes (gated <= 3)
//   obs/serve_telemetry_ab served logits with the full continuous-telemetry
//                          stack on (EWMA re-score + background sampler +
//                          live admin endpoint) vs everything off,
//                          bit_identical = memcmp across all replies
//
// Gates (nonzero exit so CI can enforce them):
//   * gemm outputs with profiling on vs off are bit-identical — observation
//     never changes computation.
//   * served logits with the PR-10 stack on vs off are bit-identical (every
//     build flavour).
//   * drift flips within 3 windows of the scripted shift (every flavour).
//   * (optimized, non-sanitized builds only) a disabled ProfileScope costs
//     < 100 ns. Measured
//     cost is typically ~1-3 ns; the slack absorbs noisy shared CI runners.
//     A gemm call is >= hundreds of microseconds, so even the gate bound is
//     <0.1% per call — "no measurable overhead" in bench_gemm terms.
//   * (optimized, non-sanitized builds only) one sampler tick costs < 1% of
//     the default 250 ms interval — the continuous-telemetry tier rides on
//     <1% of one core, leaving the serving threads alone.
//   * Sharded counters are exact: 4 threads x 200k increments must sum to
//     exactly 800000 (runs in every build flavour, including sanitizers).
//
//   ./bench_obs            full iteration counts
//   ./bench_obs --smoke    reduced counts — the bench_obs_smoke CTest run

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "models/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "reporter.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/model_registry.hpp"
#include "serve/net/admin.hpp"
#include "serve/server.hpp"
#include "serve/telemetry.hpp"
#include "tensor/gemm_packed.hpp"
#include "tensor/random.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace ibrar::bench {
namespace {

/// Mean ns/op of fn(iters) over `reps` timed runs (best-of to shed noise).
template <typename F>
double time_ns_per_op(F&& fn, std::int64_t iters, int reps = 5) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    fn(iters);
    best = std::min(best, sw.seconds() * 1e9 / static_cast<double>(iters));
  }
  return best;
}

void add_ns_row(JsonReporter& rep, Table& table, const char* kernel,
                double ns_per_op, std::int64_t iters) {
  BenchRecord rec;
  rec.kernel = kernel;
  rec.shape = std::to_string(iters) + " ops";
  rec.ns_per_op = ns_per_op;
  rep.add(rec);
  table.add_row({kernel, rec.shape, Table::num(ns_per_op, 2)});
}

bool counter_exactness() {
  obs::Counter c;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 200000;
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& t : ts) t.join();
  const std::uint64_t got = c.value();
  const std::uint64_t want = kThreads * kPerThread;
  if (got != want) {
    std::fprintf(stderr,
                 "[bench_obs] FAIL: sharded counter lost increments "
                 "(%llu != %llu)\n",
                 static_cast<unsigned long long>(got),
                 static_cast<unsigned long long>(want));
    return false;
  }
  return true;
}

// Synthetic last-conv tap rows for the drift-latency row (mirrors the
// telemetry A/B in tests/test_timeseries.cpp): channels 0..7 carry the
// label, 8..15 are near-silent on clean traffic and saturated on shifted.
constexpr std::int64_t kDriftChans = 16;
constexpr std::int64_t kDriftSpatial = 4;

std::vector<float> drift_row(int i, bool adv) {
  std::vector<float> row(
      static_cast<std::size_t>(kDriftChans * kDriftSpatial));
  const int y = i % 2;
  for (std::int64_t c = 0; c < kDriftChans; ++c) {
    float v;
    if (adv) {
      v = c < 8 ? 0.1f : 1.0f + 0.001f * static_cast<float>(i % 3);
    } else if (c < 8) {
      v = (c % 2 == y) ? 1.0f : 0.1f;
    } else {
      v = 0.05f + 0.001f * static_cast<float>((i + c) % 3);
    }
    for (std::int64_t s = 0; s < kDriftSpatial; ++s) {
      row[static_cast<std::size_t>(c * kDriftSpatial + s)] = v;
    }
  }
  return row;
}

/// Windows of shifted traffic until the drift flag flips (-1 = never, within
/// the budget).
int drift_windows_to_flip(bool ewma) {
  serve::TelemetryConfig cfg;
  cfg.sample_every = 1;
  cfg.window = 8;
  cfg.suspicious_fraction = 0.25f;
  cfg.ewma = ewma;
  serve::RobustnessMonitor mon(cfg);
  int idx = 0;
  for (int win = 0; win < 8; ++win) {  // clean warmup: arm the control bands
    for (std::int64_t s = 0; s < cfg.window; ++s, ++idx) {
      const auto row = drift_row(idx, false);
      mon.observe(row.data(), kDriftChans, kDriftSpatial, idx % 2, 2);
    }
  }
  for (int win = 0; win < 6; ++win) {  // shift
    for (std::int64_t s = 0; s < cfg.window; ++s, ++idx) {
      const auto row = drift_row(idx, true);
      mon.observe(row.data(), kDriftChans, kDriftSpatial, idx % 2, 2);
    }
    if (mon.drift_state() == serve::DriftDetector::kDrift) return win + 1;
  }
  return -1;
}

models::TapClassifierPtr bench_tiny_model(std::uint64_t seed) {
  models::ModelSpec spec;
  spec.name = "mlp";
  spec.num_classes = 5;
  spec.image_size = 4;
  spec.in_channels = 3;
  Rng rng(seed);
  return models::make_model(spec, rng);
}

}  // namespace
}  // namespace ibrar::bench

int main(int argc, char** argv) {
  using namespace ibrar;
  using namespace ibrar::bench;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::int64_t hot_iters = smoke ? 200000 : 4000000;
  const std::int64_t span_iters = smoke ? 50000 : 500000;
  const int gemm_reps = smoke ? 1 : 5;
  const std::int64_t gm = smoke ? 96 : 256, gk = smoke ? 96 : 256,
                     gn = smoke ? 96 : 256;

  JsonReporter rep(env::get_string("IBRAR_BENCH_OUT",
                                   smoke ? "BENCH_smoke_obs.json"
                                         : "BENCH_pr10.json"));
  Table table({"row", "shape", "ns_per_op"});
  bool ok = true;

  // -- exactness gate (cheap, every build flavour) --------------------------
  ok = counter_exactness() && ok;

  // -- hot-path costs -------------------------------------------------------
  obs::MetricsRegistry local;  // private registry: rows don't pollute serve.*
  obs::Counter& ctr = local.counter("bench.counter");
  obs::Histogram& hist = local.histogram("bench.hist");

  const double counter_ns = time_ns_per_op(
      [&ctr](std::int64_t n) {
        for (std::int64_t i = 0; i < n; ++i) ctr.inc();
      },
      hot_iters);
  add_ns_row(rep, table, "obs/counter_inc", counter_ns, hot_iters);

  const double hist_ns = time_ns_per_op(
      [&hist](std::int64_t n) {
        for (std::int64_t i = 0; i < n; ++i)
          hist.observe(static_cast<double>(i % 4096 + 1));
      },
      hot_iters);
  add_ns_row(rep, table, "obs/histogram_observe", hist_ns, hot_iters);

  // Active span cost: force sampling on, then restore. Rings overwrite
  // oldest-first so span_iters >> cap is fine.
  const std::int64_t saved_k = obs::trace_sample_every();
  obs::set_trace_sample_every(1);
  const double span_ns = time_ns_per_op(
      [](std::int64_t n) {
        for (std::int64_t i = 0; i < n; ++i) {
          obs::Span s("bench_span", true, static_cast<std::uint64_t>(i));
        }
      },
      span_iters);
  obs::set_trace_sample_every(saved_k);
  obs::clear_trace();
  add_ns_row(rep, table, "obs/span_record", span_ns, span_iters);

  // -- the permanent-hook gate: disabled ProfileScope -----------------------
  obs::set_profiling_enabled(false);
  obs::ProfileSite& site = obs::profile_site("bench/disabled_site");
  const double scope_off_ns = time_ns_per_op(
      [&site](std::int64_t n) {
        for (std::int64_t i = 0; i < n; ++i) {
          obs::ProfileScope scope(site);
        }
      },
      hot_iters);
  add_ns_row(rep, table, "obs/profile_scope_off", scope_off_ns, hot_iters);
// Enforce the timing gate only in optimized, non-sanitized builds — the CI
// sanitizer job runs this smoke too, where every scope pays redzone checks.
// (NDEBUG is unreliable here: the project overrides CMAKE_CXX_FLAGS_RELEASE.)
#if defined(__OPTIMIZE__) && !defined(__SANITIZE_ADDRESS__) && \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_UNDEFINED__)
  if (scope_off_ns >= 100.0) {
    std::fprintf(stderr,
                 "[bench_obs] FAIL: disabled ProfileScope costs %.1f ns/scope "
                 "(gate: < 100 ns)\n",
                 scope_off_ns);
    ok = false;
  }
#else
  std::fprintf(stderr,
               "[bench_obs] note: unoptimized/sanitizer build — "
               "profile_scope_off gate informational only (%.1f ns)\n",
               scope_off_ns);
#endif

  // -- gemm profiling OFF vs ON A/B: wall time + bit identity ---------------
  {
    runtime::set_num_threads(1);
    Rng rng(0x0b5e70b5u);
    const Tensor a = randn({gm, gk}, rng);
    const Tensor b = randn({gk, gn}, rng);
    Tensor c_off({gm, gn});
    Tensor c_on({gm, gn});

    obs::set_profiling_enabled(false);
    // Untimed warm-up so the off leg (timed first) isn't charged for cold
    // caches and first-touch page faults.
    gemm_packed(a.data().data(), GemmLayout::kRowMajor, b.data().data(),
                GemmLayout::kRowMajor, c_off.data().data(), gm, gk, gn);
    std::fill(c_off.data().begin(), c_off.data().end(), 0.0f);
    const double t_off = time_best_ms(
        [&] {
          std::fill(c_off.data().begin(), c_off.data().end(), 0.0f);
          gemm_packed(a.data().data(), GemmLayout::kRowMajor, b.data().data(),
                      GemmLayout::kRowMajor, c_off.data().data(), gm, gk, gn);
        },
        gemm_reps);

    obs::set_profiling_enabled(true);
    obs::reset_profile();
    const double t_on = time_best_ms(
        [&] {
          std::fill(c_on.data().begin(), c_on.data().end(), 0.0f);
          gemm_packed(a.data().data(), GemmLayout::kRowMajor, b.data().data(),
                      GemmLayout::kRowMajor, c_on.data().data(), gm, gk, gn);
        },
        gemm_reps);
    obs::set_profiling_enabled(false);

    const bool bits = tensor_bits_equal(c_off, c_on);
    if (!bits) {
      std::fprintf(stderr,
                   "[bench_obs] FAIL: gemm output differs with profiling on "
                   "— observation changed computation\n");
      ok = false;
    }

    BenchRecord rec;
    rec.kernel = "obs/gemm_profile_ab";
    char shape[64];
    std::snprintf(shape, sizeof(shape), "%lldx%lldx%lld",
                  static_cast<long long>(gm), static_cast<long long>(gk),
                  static_cast<long long>(gn));
    rec.shape = shape;
    rec.ns_per_op = t_on * 1e6;           // profiled-run wall ns
    rec.checksum = tensor_checksum(c_on);
    rec.speedup_vs_naive = t_on > 0.0 ? t_off / t_on : 0.0;  // off/on ratio
    rec.bit_identical = bits;
    rec.extra = {{"off_ms", t_off}, {"on_ms", t_on}};
    rep.add(rec);
    std::printf("gemm %s  profiling off %.3f ms  on %.3f ms  (off/on %.3fx)  "
                "bit_identical=%s\n",
                shape, t_off, t_on, rec.speedup_vs_naive, bits ? "yes" : "NO");
  }

  // -- time-series sampler tick: cost + implied-overhead gate ---------------
  {
    // Populate a realistic registry shape: a few dozen counters/gauges plus
    // latency histograms, like a serving process after warmup.
    obs::MetricsRegistry reg;
    for (int i = 0; i < 48; ++i) {
      reg.counter("bench.ts.c" + std::to_string(i)).inc(7);
      reg.gauge("bench.ts.g" + std::to_string(i)).set(static_cast<double>(i));
    }
    for (int i = 0; i < 8; ++i) {
      auto& h = reg.histogram("bench.ts.h" + std::to_string(i));
      for (int j = 1; j <= 512; ++j) h.observe(static_cast<double>(j));
    }
    obs::TimeSeriesConfig ts_cfg;
    ts_cfg.capacity = 512;
    obs::TimeSeriesStore store(ts_cfg);
    const std::int64_t tick_iters = smoke ? 50 : 500;
    const double tick_ns = time_ns_per_op(
        [&](std::int64_t n) {
          for (std::int64_t i = 0; i < n; ++i) {
            store.sample_now(reg, i);  // explicit tick: deterministic
          }
        },
        tick_iters, smoke ? 2 : 5);
    // Overhead fraction at the default 250 ms cadence ibrar_serve uses when
    // an admin port is up: one tick's cost amortized over one interval.
    const double overhead_frac = tick_ns / (250.0 * 1e6);

    BenchRecord rec;
    rec.kernel = "obs/ts_sample_now";
    rec.shape = std::to_string(store.series_count()) + " series";
    rec.ns_per_op = tick_ns;
    rec.extra = {{"overhead_frac", overhead_frac},
                 {"interval_ms", 250.0}};
    rep.add(rec);
    table.add_row({"obs/ts_sample_now", rec.shape, Table::num(tick_ns, 2)});
    std::printf(
        "ts sampler tick: %.0f ns over %zu series -> %.5f%% of a 250 ms "
        "interval\n",
        tick_ns, store.series_count(), overhead_frac * 100.0);
#if defined(__OPTIMIZE__) && !defined(__SANITIZE_ADDRESS__) && \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_UNDEFINED__)
    if (overhead_frac >= 0.01) {
      std::fprintf(stderr,
                   "[bench_obs] FAIL: sampler tick %.0f ns is %.2f%% of the "
                   "250 ms cadence (gate: < 1%%)\n",
                   tick_ns, overhead_frac * 100.0);
      ok = false;
    }
#else
    std::fprintf(stderr,
                 "[bench_obs] note: unoptimized/sanitizer build — sampler "
                 "overhead gate informational only (%.4f%%)\n",
                 overhead_frac * 100.0);
#endif
  }

  // -- drift latency: scripted clean -> PGD shift, windows until the flag ---
  {
    for (const bool ewma : {false, true}) {
      const int windows = drift_windows_to_flip(ewma);
      BenchRecord rec;
      rec.kernel = ewma ? "obs/drift_latency_ewma" : "obs/drift_latency";
      rec.shape = "w8 c16 shift";
      rec.ns_per_op = static_cast<double>(windows);  // windows, not ns
      rec.extra = {{"windows_to_flip", static_cast<double>(windows)}};
      rep.add(rec);
      table.add_row({rec.kernel, rec.shape,
                     windows < 0 ? "never" : Table::num(windows, 0)});
      std::printf("drift latency (%s re-score): flipped after %d window(s)\n",
                  ewma ? "EWMA" : "tumbling", windows);
      if (windows < 1 || windows > 3) {
        std::fprintf(stderr,
                     "[bench_obs] FAIL: drift flag took %d windows after the "
                     "shift (gate: 1..3, mode=%s)\n",
                     windows, ewma ? "ewma" : "tumbling");
        ok = false;
      }
    }
  }

  // -- serve A/B: full continuous-telemetry stack on vs off, bit identity ---
  {
    serve::ModelRegistry mreg;
    mreg.publish(bench_tiny_model(11), {3, 4, 4});
    serve::ServeConfig scfg;
    scfg.max_batch = 1;  // singleton batches -> deterministic batching
    scfg.deadline_us = 0;
    scfg.queue_capacity = 64;
    scfg.workers = 4;
    const int n_reqs = smoke ? 8 : 32;
    auto input = [](int i) {
      Rng rng(static_cast<std::uint64_t>(900 + i));
      return rand_uniform({3, 4, 4}, rng, 0.0f, 1.0f);
    };

    std::vector<Tensor> off_logits, on_logits;
    double t_off_ms = 0.0, t_on_ms = 0.0;
    {
      obs::set_trace_sample_every(0);
      obs::set_profiling_enabled(false);
      serve::Server server(mreg, scfg);
      Stopwatch sw;
      for (int i = 0; i < n_reqs; ++i) {
        off_logits.push_back(server.submit(input(i)).get().logits);
      }
      t_off_ms = sw.seconds() * 1e3;
    }
    {
      obs::set_trace_sample_every(1);
      obs::set_profiling_enabled(true);
      obs::register_default_serve_slos();
      obs::start_sampler(10);
      serve::net::AdminEndpoint admin;
      serve::ServeConfig scfg_on = scfg;
      scfg_on.telemetry.sample_every = 1;
      scfg_on.telemetry.ewma = true;
      serve::Server server(mreg, scfg_on);
      Stopwatch sw;
      for (int i = 0; i < n_reqs; ++i) {
        on_logits.push_back(server.submit(input(i)).get().logits);
      }
      t_on_ms = sw.seconds() * 1e3;
      admin.stop();
      obs::stop_sampler();
      obs::set_trace_sample_every(0);
      obs::set_profiling_enabled(false);
      obs::clear_trace();
      obs::reset_profile();
    }

    bool bits = true;
    for (int i = 0; i < n_reqs; ++i) {
      const Tensor& a = off_logits[static_cast<std::size_t>(i)];
      const Tensor& b = on_logits[static_cast<std::size_t>(i)];
      if (!a.same_shape(b) ||
          std::memcmp(a.data().data(), b.data().data(),
                      sizeof(float) * static_cast<std::size_t>(a.numel())) !=
              0) {
        bits = false;
        break;
      }
    }
    if (!bits) {
      std::fprintf(stderr,
                   "[bench_obs] FAIL: served logits differ with the "
                   "continuous-telemetry stack on — observation changed "
                   "computation\n");
      ok = false;
    }
    BenchRecord rec;
    rec.kernel = "obs/serve_telemetry_ab";
    rec.shape = std::to_string(n_reqs) + " reqs w4";
    rec.ns_per_op = t_on_ms * 1e6 / static_cast<double>(n_reqs);
    rec.bit_identical = bits;
    rec.extra = {{"off_ms", t_off_ms}, {"on_ms", t_on_ms}};
    rep.add(rec);
    std::printf(
        "serve stack A/B: %d reqs  off %.2f ms  on %.2f ms  "
        "bit_identical=%s\n",
        n_reqs, t_off_ms, t_on_ms, bits ? "yes" : "NO");
  }

  table.print();
  rep.write();
  if (!ok) {
    std::fprintf(stderr, "[bench_obs] GATE FAILURE\n");
    return 1;
  }
  std::printf("bench_obs: all gates passed\n");
  return 0;
}
