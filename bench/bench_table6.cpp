// Table 6 reproduction: adaptive white-box attack (paper Sec. A.2). The
// adversary runs PGD on the defender's own IB-RAR objective (Eq. 1) instead
// of plain CE, at 10 and 100 steps, against:
//   plain (IB-RAR)  -- IB-RAR without adversarial training
//   AT              -- PGD adversarial training
//   AT (IB-RAR)     -- both
//
// Expected shape (paper): the adaptive attack hurts plain IB-RAR more than
// standard PGD does, but the model stays above the CE baseline; for AT
// models the adaptive attack is NO stronger than standard PGD.

#include "attacks/adaptive.hpp"
#include "common.hpp"

using namespace ibrar;
using namespace ibrar::bench;

int main() {
  print_header("Table 6: adaptive white-box attack (VGG16, synth-cifar10)");
  const auto s = default_scale();
  const auto data = data::make_dataset("synth-cifar10", s.train_size,
                                       s.test_size);
  models::ModelSpec spec;
  spec.name = "vgg16";

  struct Row {
    const char* name;
    const char* base;
    bool ibrar;
    double ref[4];  // PGD10, AD-PGD10, PGD100, AD-PGD100
  };
  const std::vector<Row> rows = {
      {"plain (IB-RAR)", "plain", true, {15.38, 35.86, 22.64, 31.37}},
      {"AT", "PGD", false, {45.06, 42.26, 44.71, 42.01}},
      {"AT (IB-RAR)", "PGD", true, {45.97, 45.03, 45.60, 44.60}},
  };
  // Paper's Table 6 swaps the column meanings for row 1 (the adaptive attack
  // is WEAKER than plain PGD on plain IB-RAR's CE loss); refs above follow
  // the printed order: PGD / PGD-AD at 10 then 100 steps.

  const std::int64_t long_steps = env::scaled_int("IBRAR_ADAPTIVE_STEPS", 30, 100);

  Table table({"Method", "PGD10", "PGD10-AD", "PGD100", "PGD100-AD"});
  Stopwatch sw;
  for (const auto& row : rows) {
    auto model = train_method(row.base, row.ibrar, spec, data, s);
    const mi::IBObjectiveConfig ib = core::to_ib_config(default_mi(), *model);

    auto eval_at_steps = [&](std::int64_t steps, bool adaptive) {
      attacks::AttackConfig c;
      c.steps = steps;
      if (adaptive) {
        attacks::AdaptivePGD a(c, ib);
        return train::evaluate_adversarial(*model, data.test, a, s.batch,
                                           s.eval_samples);
      }
      attacks::PGD a(c);
      return train::evaluate_adversarial(*model, data.test, a, s.batch,
                                         s.eval_samples);
    };
    const double p10 = eval_at_steps(10, false);
    const double a10 = eval_at_steps(10, true);
    const double p100 = eval_at_steps(long_steps, false);
    const double a100 = eval_at_steps(long_steps, true);
    table.add_row({row.name, pct_vs(p10, row.ref[0]), pct_vs(a10, row.ref[1]),
                   pct_vs(p100, row.ref[2]), pct_vs(a100, row.ref[3])});
    std::fprintf(stderr, "[bench] table6 %s done (%.1fs)\n", row.name,
                 sw.reset());
  }
  table.print();
  std::printf("\n(PGD100 columns use %lld steps in quick profile)\n",
              static_cast<long long>(long_steps));
  return 0;
}
