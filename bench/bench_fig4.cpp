// Figure 4 reproduction: convergence on SVHN with VGG16.
//   lower-left : MART alone can get stuck at the majority-class plateau
//                (19.587% on real SVHN; our imbalanced synth-svhn has the
//                same ~19.6% majority prior)
//   upper-left : MART with a 1-epoch MI-loss warm start converges
//   upper-right: PGD-AT + IB-RAR (converges, faster)
//   lower-right: PGD-AT alone (converges, slower out of the plateau)
//
// The bench prints per-epoch natural and PGD accuracy traces for all four.
// The warm start is the analysis driver's TrainSpec::mi_warm_start_epochs
// (paper A.3); traces are recorded to BENCH_fig4.json.

#include "analysis/driver.hpp"
#include "common.hpp"

using namespace ibrar;
using namespace ibrar::bench;

namespace {

/// Train with an optional 1-epoch MI warm start, recording per-epoch stats.
std::vector<train::EpochStats> run(const models::ModelSpec& spec,
                                   const data::SyntheticData& data,
                                   const Scale& s, const std::string& base,
                                   bool ibrar, bool mi_warm_start) {
  attacks::AttackConfig pc;
  pc.steps = s.attack_steps;
  attacks::PGD eval_pgd(pc);
  auto tspec = train_spec(base, ibrar, s);
  if (mi_warm_start) tspec.mi_warm_start_epochs = 1;
  std::vector<train::EpochStats> history;
  analysis::train_model(spec, data, tspec, 42, &history, &data.test, &eval_pgd,
                        100);
  return history;
}

void print_trace(JsonReporter& reporter, const char* name,
                 const std::vector<train::EpochStats>& h) {
  std::printf("%s\n  epoch   :", name);
  for (const auto& s : h) std::printf(" %6lld", static_cast<long long>(s.epoch));
  std::printf("\n  natural :");
  for (const auto& s : h) std::printf(" %6.2f", 100 * s.test_acc);
  std::printf("\n  adv(PGD):");
  for (const auto& s : h) std::printf(" %6.2f", 100 * s.adv_acc);
  std::printf("\n\n");
  for (std::size_t e = 0; e < h.size(); ++e) {
    BenchRecord rec;
    rec.kernel = std::string("fig4/") + name;
    rec.shape = "epoch=" + std::to_string(e) + "/natural";
    rec.checksum = h[e].test_acc;
    rec.ns_per_op = h[e].seconds * 1e9;
    reporter.add(rec);
    rec.shape = "epoch=" + std::to_string(e) + "/pgd";
    rec.checksum = h[e].adv_acc;
    rec.ns_per_op = 0;
    reporter.add(rec);
  }
}

}  // namespace

int main() {
  print_header("Figure 4: convergence on SVHN by VGG16 (synth-svhn)");
  auto s = default_scale();
  // Convergence dynamics need a few more epochs than the accuracy tables.
  s.epochs = env::scaled_int("IBRAR_FIG4_EPOCHS", 6, 20);

  const auto data = data::make_dataset("synth-svhn", s.train_size, s.test_size);
  const auto counts = data.train.class_counts();
  std::int64_t majority = 0;
  for (const auto c : counts) majority = std::max(majority, c);
  std::printf("majority-class prior of synth-svhn train split: %.2f%% "
              "(paper plateau: 19.587%%)\n\n",
              100.0 * majority / data.train.size());

  models::ModelSpec spec;
  spec.name = "vgg16";

  JsonReporter reporter(env::get_string("IBRAR_BENCH_OUT", "BENCH_fig4.json"));
  print_trace(reporter, "MART (may sit at the majority plateau early)",
              run(spec, data, s, "MART", false, false));
  print_trace(reporter, "MART + 1-epoch MI warm start (paper: converges)",
              run(spec, data, s, "MART", false, true));
  print_trace(reporter, "PGD-AT + IB-RAR (paper: breaks the plateau fastest)",
              run(spec, data, s, "PGD", true, false));
  print_trace(reporter, "PGD-AT (paper: lingers at the plateau ~30 epochs)",
              run(spec, data, s, "PGD", false, false));
  reporter.write();
  return 0;
}
