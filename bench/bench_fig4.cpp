// Figure 4 reproduction: convergence on SVHN with VGG16.
//   lower-left : MART alone can get stuck at the majority-class plateau
//                (19.587% on real SVHN; our imbalanced synth-svhn has the
//                same ~19.6% majority prior)
//   upper-left : MART with a 1-epoch MI-loss warm start converges
//   upper-right: PGD-AT + IB-RAR (converges, faster)
//   lower-right: PGD-AT alone (converges, slower out of the plateau)
//
// The bench prints per-epoch natural and PGD accuracy traces for all four.

#include "common.hpp"

using namespace ibrar;
using namespace ibrar::bench;

namespace {

/// Train with an optional 1-epoch MI warm start, recording per-epoch stats.
std::vector<train::EpochStats> run(const models::ModelSpec& spec,
                                   const data::SyntheticData& data,
                                   const Scale& s, const std::string& base,
                                   bool ibrar, bool mi_warm_start) {
  Rng rng(42);
  auto model = models::make_model(spec, rng);
  attacks::AttackConfig pc;
  pc.steps = s.attack_steps;
  attacks::PGD eval_pgd(pc);

  std::vector<train::EpochStats> history;
  auto tc = train_config(s);
  if (mi_warm_start) {
    // Paper A.3: "we train the network with our MI loss method at the first
    // epoch to jump out of the loop".
    auto warm = std::make_shared<core::IBRARObjective>(nullptr, default_mi());
    auto warm_tc = tc;
    warm_tc.epochs = 1;
    train::Trainer warm_trainer(model, warm, warm_tc);
    auto h = warm_trainer.fit(data.train, &data.test, &eval_pgd, 100);
    history.insert(history.end(), h.begin(), h.end());
    tc.epochs -= 1;
  }
  train::ObjectivePtr obj;
  if (ibrar) {
    auto base_obj = make_base_objective(base, s, *model);
    obj = std::make_shared<core::IBRARObjective>(base_obj, default_mi());
  } else {
    obj = make_base_objective(base, s, *model);
  }
  train::Trainer trainer(model, obj, tc);
  if (ibrar) {
    trainer.epoch_hook = core::make_mask_hook(core::FeatureMaskConfig{},
                                              data.train);
  }
  auto h = trainer.fit(data.train, &data.test, &eval_pgd, 100);
  history.insert(history.end(), h.begin(), h.end());
  return history;
}

void print_trace(const char* name, const std::vector<train::EpochStats>& h) {
  std::printf("%s\n  epoch   :", name);
  for (const auto& s : h) std::printf(" %6lld", static_cast<long long>(s.epoch));
  std::printf("\n  natural :");
  for (const auto& s : h) std::printf(" %6.2f", 100 * s.test_acc);
  std::printf("\n  adv(PGD):");
  for (const auto& s : h) std::printf(" %6.2f", 100 * s.adv_acc);
  std::printf("\n\n");
}

}  // namespace

int main() {
  print_header("Figure 4: convergence on SVHN by VGG16 (synth-svhn)");
  auto s = default_scale();
  // Convergence dynamics need a few more epochs than the accuracy tables.
  s.epochs = env::scaled_int("IBRAR_FIG4_EPOCHS", 6, 20);

  const auto data = data::make_dataset("synth-svhn", s.train_size, s.test_size);
  const auto counts = data.train.class_counts();
  std::int64_t majority = 0;
  for (const auto c : counts) majority = std::max(majority, c);
  std::printf("majority-class prior of synth-svhn train split: %.2f%% "
              "(paper plateau: 19.587%%)\n\n",
              100.0 * majority / data.train.size());

  models::ModelSpec spec;
  spec.name = "vgg16";

  print_trace("MART (may sit at the majority plateau early)",
              run(spec, data, s, "MART", false, false));
  print_trace("MART + 1-epoch MI warm start (paper: converges)",
              run(spec, data, s, "MART", false, true));
  print_trace("PGD-AT + IB-RAR (paper: breaks the plateau fastest)",
              run(spec, data, s, "PGD", true, false));
  print_trace("PGD-AT (paper: lingers at the plateau ~30 epochs)",
              run(spec, data, s, "PGD", false, false));
  return 0;
}
