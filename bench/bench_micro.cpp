// Microbenchmarks (google-benchmark): the kernels that dominate the
// reproduction's wall-clock — GEMM, conv2d forward/backward via autograd,
// HSIC, full model forward, and one PGD attack step.
//
// Before the google-benchmark suite, main() prints a thread-scaling table:
// each kernel at 1 pool lane vs IBRAR_BENCH_THREADS (default
// hardware_concurrency) lanes, asserting the outputs are bit-identical.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <thread>

#include "reporter.hpp"

#include "autograd/ops.hpp"
#include "attacks/pgd.hpp"
#include "data/registry.hpp"
#include "mi/hsic.hpp"
#include "models/registry.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"
#include "util/env.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace ibrar;

static void BM_Matmul(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(1);
  const Tensor a = randn({n, n}, rng);
  const Tensor b = randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

static void BM_Conv2dForward(benchmark::State& state) {
  Rng rng(2);
  const Tensor x = randn({16, 8, 16, 16}, rng);
  const Tensor w = randn({16, 8, 3, 3}, rng, 0, 0.1f);
  const Conv2dSpec spec{3, 1, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv2d(x, w, nullptr, spec));
  }
}
BENCHMARK(BM_Conv2dForward);

static void BM_Conv2dBackward(benchmark::State& state) {
  Rng rng(3);
  const Tensor x = randn({16, 8, 16, 16}, rng);
  const Tensor w = randn({16, 8, 3, 3}, rng, 0, 0.1f);
  const Conv2dSpec spec{3, 1, 1};
  for (auto _ : state) {
    ag::Var xv = ag::Var::param(x);
    ag::Var wv = ag::Var::param(w);
    ag::Var loss = ag::mean(ag::square(ag::conv2d(xv, wv, ag::Var(), spec)));
    loss.backward();
    benchmark::DoNotOptimize(xv.grad());
  }
}
BENCHMARK(BM_Conv2dBackward);

static void BM_HSIC(benchmark::State& state) {
  const auto m = state.range(0);
  Rng rng(4);
  const Tensor x = randn({m, 64}, rng);
  const Tensor y = randn({m, 10}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mi::hsic_gaussian(x, y));
  }
}
BENCHMARK(BM_HSIC)->Arg(50)->Arg(100);

static void BM_HSICBackward(benchmark::State& state) {
  Rng rng(5);
  const Tensor x = randn({100, 64}, rng);
  const Tensor y = randn({100, 10}, rng);
  const ag::Var ky =
      ag::Var::constant(mi::gram_gaussian(y, mi::scaled_sigma(10)));
  for (auto _ : state) {
    ag::Var xv = ag::Var::param(x);
    ag::Var kx = mi::gram_gaussian(xv, mi::scaled_sigma(64));
    ag::Var h = mi::hsic(kx, ky);
    h.backward();
    benchmark::DoNotOptimize(xv.grad());
  }
}
BENCHMARK(BM_HSICBackward);

static void BM_VGGForward(benchmark::State& state) {
  Rng rng(6);
  models::ModelSpec spec;
  auto model = models::make_model(spec, rng);
  model->set_training(false);
  Rng drng(7);
  const Tensor x = rand_uniform({32, 3, 16, 16}, drng);
  ag::NoGradGuard ng;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->forward(ag::Var::constant(x)).value());
  }
}
BENCHMARK(BM_VGGForward);

static void BM_PGDStep(benchmark::State& state) {
  Rng rng(8);
  models::ModelSpec spec;
  auto model = models::make_model(spec, rng);
  model->set_training(false);
  Rng drng(9);
  const Tensor x = rand_uniform({32, 3, 16, 16}, drng);
  std::vector<std::int64_t> y(32, 0);
  attacks::AttackConfig cfg;
  cfg.steps = 1;
  cfg.random_start = false;
  attacks::PGD pgd(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pgd.perturb(*model, x, y));
  }
}
BENCHMARK(BM_PGDStep);

namespace {

/// One row of the scaling table: run `work` (returning a checksum tensor) at
/// 1 lane and at `threads` lanes, report the speedup and bit-equality — to
/// the console table and as structured records in the JSON perf log.
template <typename F>
void scaling_row(Table& table, bench::JsonReporter& rep, const char* name,
                 std::int64_t threads, F&& work) {
  runtime::set_num_threads(1);
  Tensor ref;
  const double t1 = bench::time_best_ms([&] { ref = work(); });
  runtime::set_num_threads(threads);
  Tensor par;
  const double tn = bench::time_best_ms([&] { par = work(); });
  const bool identical = bench::tensor_bits_equal(ref, par);
  char t1s[32], tns[32], sp[32];
  std::snprintf(t1s, sizeof(t1s), "%.2f", t1);
  std::snprintf(tns, sizeof(tns), "%.2f", tn);
  std::snprintf(sp, sizeof(sp), "%.2fx", tn > 0 ? t1 / tn : 0.0);
  table.add_row({name, t1s, tns, sp, identical ? "yes" : "NO"});

  bench::BenchRecord rec;
  rec.kernel = name;
  rec.shape = "scaling";
  rec.ns_per_op = t1 * 1e6;
  rec.threads = 1;
  rec.checksum = bench::tensor_checksum(ref);
  rep.add(rec);
  rec.ns_per_op = tn * 1e6;
  rec.threads = threads;
  // Checksum the parallel result separately: on a bit-identity regression the
  // two rows must show WHAT diverged, not just that it did.
  rec.checksum = bench::tensor_checksum(par);
  rec.bit_identical = identical;
  rep.add(rec);
}

void print_scaling_table() {
  const unsigned hc = std::thread::hardware_concurrency();
  const std::int64_t threads = env::get_int(
      "IBRAR_BENCH_THREADS", hc == 0 ? 4 : static_cast<long>(hc));
  std::printf("=== runtime thread scaling (1 vs %lld lanes) ===\n",
              static_cast<long long>(threads));

  Rng rng(42);
  const Tensor a = randn({384, 384}, rng);
  const Tensor b = randn({384, 384}, rng);
  const Tensor cx = randn({32, 8, 16, 16}, rng);
  const Tensor cw = randn({16, 8, 3, 3}, rng, 0, 0.1f);
  const Conv2dSpec spec{3, 1, 1};
  const Tensor hx = randn({200, 64}, rng);
  const Tensor hy = randn({200, 10}, rng);
  const Tensor ex = rand_uniform({1 << 20}, rng, -4.0f, 4.0f);

  Table table({"kernel", "t1 (ms)", "tN (ms)", "speedup", "bit-identical"});
  // Fixed path on purpose: sharing IBRAR_BENCH_OUT with bench_gemm would let
  // the two runs clobber each other's records.
  bench::JsonReporter reporter("BENCH_micro.json");
  scaling_row(table, reporter, "gemm 384^3", threads, [&] { return matmul(a, b); });
  scaling_row(table, reporter, "conv2d 32x8x16x16", threads,
              [&] { return conv2d(cx, cw, nullptr, spec); });
  scaling_row(table, reporter, "hsic m=200", threads, [&] {
    return Tensor::scalar(mi::hsic_gaussian(hx, hy));
  });
  scaling_row(table, reporter, "exp 1M", threads, [&] { return ibrar::exp(ex); });
  table.print();
  reporter.write();
  std::printf("\n");

  // Leave the pool at the benched width for the google-benchmark suite.
  runtime::set_num_threads(threads);
}

}  // namespace

int main(int argc, char** argv) {
  print_scaling_table();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
