// Microbenchmarks (google-benchmark): the kernels that dominate the
// reproduction's wall-clock — GEMM, conv2d forward/backward via autograd,
// HSIC, full model forward, and one PGD attack step.

#include <benchmark/benchmark.h>

#include "autograd/ops.hpp"
#include "attacks/pgd.hpp"
#include "data/registry.hpp"
#include "mi/hsic.hpp"
#include "models/registry.hpp"
#include "tensor/matmul.hpp"
#include "tensor/random.hpp"

using namespace ibrar;

static void BM_Matmul(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(1);
  const Tensor a = randn({n, n}, rng);
  const Tensor b = randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

static void BM_Conv2dForward(benchmark::State& state) {
  Rng rng(2);
  const Tensor x = randn({16, 8, 16, 16}, rng);
  const Tensor w = randn({16, 8, 3, 3}, rng, 0, 0.1f);
  const Conv2dSpec spec{3, 1, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv2d(x, w, nullptr, spec));
  }
}
BENCHMARK(BM_Conv2dForward);

static void BM_Conv2dBackward(benchmark::State& state) {
  Rng rng(3);
  const Tensor x = randn({16, 8, 16, 16}, rng);
  const Tensor w = randn({16, 8, 3, 3}, rng, 0, 0.1f);
  const Conv2dSpec spec{3, 1, 1};
  for (auto _ : state) {
    ag::Var xv = ag::Var::param(x);
    ag::Var wv = ag::Var::param(w);
    ag::Var loss = ag::mean(ag::square(ag::conv2d(xv, wv, ag::Var(), spec)));
    loss.backward();
    benchmark::DoNotOptimize(xv.grad());
  }
}
BENCHMARK(BM_Conv2dBackward);

static void BM_HSIC(benchmark::State& state) {
  const auto m = state.range(0);
  Rng rng(4);
  const Tensor x = randn({m, 64}, rng);
  const Tensor y = randn({m, 10}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mi::hsic_gaussian(x, y));
  }
}
BENCHMARK(BM_HSIC)->Arg(50)->Arg(100);

static void BM_HSICBackward(benchmark::State& state) {
  Rng rng(5);
  const Tensor x = randn({100, 64}, rng);
  const Tensor y = randn({100, 10}, rng);
  const ag::Var ky =
      ag::Var::constant(mi::gram_gaussian(y, mi::scaled_sigma(10)));
  for (auto _ : state) {
    ag::Var xv = ag::Var::param(x);
    ag::Var kx = mi::gram_gaussian(xv, mi::scaled_sigma(64));
    ag::Var h = mi::hsic(kx, ky);
    h.backward();
    benchmark::DoNotOptimize(xv.grad());
  }
}
BENCHMARK(BM_HSICBackward);

static void BM_VGGForward(benchmark::State& state) {
  Rng rng(6);
  models::ModelSpec spec;
  auto model = models::make_model(spec, rng);
  model->set_training(false);
  Rng drng(7);
  const Tensor x = rand_uniform({32, 3, 16, 16}, drng);
  ag::NoGradGuard ng;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->forward(ag::Var::constant(x)).value());
  }
}
BENCHMARK(BM_VGGForward);

static void BM_PGDStep(benchmark::State& state) {
  Rng rng(8);
  models::ModelSpec spec;
  auto model = models::make_model(spec, rng);
  model->set_training(false);
  Rng drng(9);
  const Tensor x = rand_uniform({32, 3, 16, 16}, drng);
  std::vector<std::int64_t> y(32, 0);
  attacks::AttackConfig cfg;
  cfg.steps = 1;
  cfg.random_start = false;
  attacks::PGD pgd(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pgd.perturb(*model, x, y));
  }
}
BENCHMARK(BM_PGDStep);

BENCHMARK_MAIN();
