#pragma once
// Shared harness for the table/figure reproduction benches.
//
// Every bench prints measured values side by side with the paper's reported
// numbers. Scales come from the IBRAR_PROFILE env switch (quick | paper) with
// per-knob overrides (IBRAR_TRAIN_SIZE, IBRAR_EPOCHS, ...); see src/util/env.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/driver.hpp"
#include "attacks/cw.hpp"
#include "attacks/fab.hpp"
#include "attacks/fgsm.hpp"
#include "attacks/nifgsm.hpp"
#include "attacks/pgd.hpp"
#include "core/ibrar.hpp"
#include "data/registry.hpp"
#include "models/registry.hpp"
#include "train/evaluate.hpp"
#include "train/hbar.hpp"
#include "train/mart.hpp"
#include "train/trades.hpp"
#include "train/vib.hpp"
// Re-exported like the attack/train headers above: any table/figure bench
// can emit BENCH_*.json perf records without its own include.
#include "reporter.hpp"
#include "util/env.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace ibrar::bench {

/// Experiment scale, profile-dependent.
struct Scale {
  std::int64_t train_size;
  std::int64_t test_size;
  std::int64_t epochs;
  std::int64_t batch;
  std::int64_t at_steps;       ///< inner-maximization steps for AT
  std::int64_t eval_samples;   ///< adversarial eval subset
  std::int64_t cw_steps;
  std::int64_t fab_steps;
  std::int64_t attack_steps;   ///< PGD / NIFGSM eval steps
};

inline Scale default_scale() {
  Scale s;
  s.train_size = env::scaled_int("IBRAR_TRAIN_SIZE", 800, 2000);
  s.test_size = env::scaled_int("IBRAR_TEST_SIZE", 300, 500);
  s.epochs = env::scaled_int("IBRAR_EPOCHS", 5, 12);
  s.batch = env::scaled_int("IBRAR_BATCH", 100, 100);
  s.at_steps = env::scaled_int("IBRAR_AT_STEPS", 4, 7);
  s.eval_samples = env::scaled_int("IBRAR_EVAL_SAMPLES", 150, 500);
  s.cw_steps = env::scaled_int("IBRAR_CW_STEPS", 20, 200);
  s.fab_steps = env::scaled_int("IBRAR_FAB_STEPS", 8, 20);
  s.attack_steps = env::scaled_int("IBRAR_ATTACK_STEPS", 10, 10);
  return s;
}

inline train::TrainConfig train_config(const Scale& s, std::uint64_t seed = 42) {
  train::TrainConfig tc;
  tc.epochs = s.epochs;
  tc.batch_size = s.batch;
  tc.seed = seed;
  tc.verbose = env::get_int("IBRAR_VERBOSE", 0) != 0;
  return tc;
}

inline attacks::AttackConfig inner_attack_config(const Scale& s) {
  attacks::AttackConfig cfg;
  cfg.steps = s.at_steps;
  return cfg;
}

/// Paper-default MI loss for a given architecture (alpha=1.0, beta=0.1 on the
/// robust layers; the paper's per-arch constants are calibrated for its HSIC
/// scale — ours is held at 1.0/0.1, which the Fig. 6 bench sweeps).
inline core::MILossConfig default_mi(core::LayerSelection sel =
                                         core::LayerSelection::kRobust) {
  core::MILossConfig mi;
  mi.alpha = static_cast<float>(env::get_double("IBRAR_ALPHA", 5.0));
  mi.beta = static_cast<float>(env::get_double("IBRAR_BETA", 1.0));
  mi.selection = sel;
  return mi;
}

/// Base objective by name: "CE" | "PGD" | "TRADES" | "MART" | "HBaR" | "VIB".
/// Thin wrapper over the analysis driver's factory (the objective wiring
/// lives in src/analysis; the Scale only supplies the inner attack budget).
inline train::ObjectivePtr make_base_objective(const std::string& name,
                                               const Scale& s,
                                               models::TapClassifier& model) {
  return analysis::make_base_objective(name, inner_attack_config(s), model);
}

/// Assemble an analysis::TrainSpec from bench Scale + method knobs.
inline analysis::TrainSpec train_spec(const std::string& base, bool ibrar,
                                      const Scale& s, std::uint64_t seed = 42,
                                      core::MILossConfig mi = default_mi()) {
  analysis::TrainSpec spec;
  spec.base = base;
  spec.ibrar = ibrar;
  spec.mi = std::move(mi);
  spec.inner = inner_attack_config(s);
  spec.train = train_config(s, seed);
  return spec;
}

/// Train one model: `base` objective, optionally wrapped with IB-RAR (MI loss
/// + per-epoch mask refresh). Returns the trained model in eval mode.
inline models::TapClassifierPtr train_method(
    const std::string& base, bool ibrar, const models::ModelSpec& spec,
    const data::SyntheticData& data, const Scale& s, std::uint64_t seed = 42,
    std::vector<train::EpochStats>* history = nullptr,
    core::MILossConfig mi = default_mi()) {
  return analysis::train_model(spec, data,
                               train_spec(base, ibrar, s, seed, std::move(mi)),
                               seed, history);
}

/// The paper's five evaluation attacks + clean accuracy.
struct AttackResults {
  double natural = 0, pgd = 0, cw = 0, fgsm = 0, fab = 0, nifgsm = 0;
};

inline AttackResults eval_all_attacks(models::TapClassifier& model,
                                      const data::Dataset& test,
                                      const Scale& s) {
  AttackResults r;
  r.natural = train::evaluate_clean(model, test, s.batch);
  {
    attacks::AttackConfig c;
    c.steps = s.attack_steps;
    attacks::PGD a(c);
    r.pgd = train::evaluate_adversarial(model, test, a, s.batch, s.eval_samples);
  }
  {
    attacks::AttackConfig c;
    c.steps = s.cw_steps;
    attacks::CW a(c);
    r.cw = train::evaluate_adversarial(model, test, a, s.batch, s.eval_samples);
  }
  {
    attacks::FGSM a(attacks::AttackConfig{});
    r.fgsm = train::evaluate_adversarial(model, test, a, s.batch, s.eval_samples);
  }
  {
    attacks::AttackConfig c;
    c.steps = s.fab_steps;
    attacks::FAB a(c);
    r.fab = train::evaluate_adversarial(model, test, a, s.batch, s.eval_samples);
  }
  {
    attacks::AttackConfig c;
    c.steps = s.attack_steps;
    attacks::NIFGSM a(c);
    r.nifgsm = train::evaluate_adversarial(model, test, a, s.batch,
                                           s.eval_samples);
  }
  return r;
}

/// Percent-formatted cell with the paper's reference value.
inline std::string pct_vs(double measured, double paper) {
  return Table::vs_paper(100.0 * measured, paper, 2);
}

inline void print_header(const std::string& what) {
  std::printf("=== %s ===\n", what.c_str());
  std::printf("profile=%s (IBRAR_PROFILE=paper for full scale); values are "
              "measured%% (paper%%)\n\n",
              env::profile() == env::Profile::kPaper ? "paper" : "quick");
}

/// One row of a Table 1/2-style benchmark: method name, IB-RAR flag, and the
/// paper's six reference percentages (Natural, PGD, CW, FGSM, FAB, NIFGSM).
struct PaperRow {
  const char* method;
  bool ibrar;
  double ref[6];
};

/// Train + attack-evaluate every method row on one dataset/model pair and
/// print the paper-vs-measured table. Returns the measured results per row.
inline std::vector<AttackResults> run_attack_table(
    const std::string& title, const std::string& dataset_name,
    const std::string& model_name, const std::vector<PaperRow>& rows,
    const Scale& s, std::uint64_t seed = 42) {
  const auto data = data::make_dataset(dataset_name, s.train_size, s.test_size);
  models::ModelSpec spec;
  spec.name = model_name;
  spec.num_classes = data.train.num_classes;

  Table table({"Method", "Natural", "PGD", "CW", "FGSM", "FAB", "NIFGSM"});
  std::vector<AttackResults> measured;
  Stopwatch sw;
  for (const auto& row : rows) {
    auto model = train_method(row.method, row.ibrar, spec, data, s, seed);
    const auto r = eval_all_attacks(*model, data.test, s);
    measured.push_back(r);
    const std::string name =
        std::string(row.method) + (row.ibrar ? " (IB-RAR)" : "");
    table.add_row({name, pct_vs(r.natural, row.ref[0]), pct_vs(r.pgd, row.ref[1]),
                   pct_vs(r.cw, row.ref[2]), pct_vs(r.fgsm, row.ref[3]),
                   pct_vs(r.fab, row.ref[4]), pct_vs(r.nifgsm, row.ref[5])});
    std::fprintf(stderr, "[bench] %s / %s done (%.1fs)\n", title.c_str(),
                 name.c_str(), sw.reset());
  }
  std::printf("-- %s --\n", title.c_str());
  table.print();
  std::printf("\n");
  return measured;
}

// ---- serving-load helpers (bench_serve + ibrar_serve) -----------------------

/// q-quantile (0 <= q <= 1) of a latency sample in milliseconds; sorts in
/// place (nearest-rank with rounding, the convention both serving drivers
/// report p50/p99 under).
inline double percentile(std::vector<double>& ms, double q) {
  if (ms.empty()) return 0.0;
  std::sort(ms.begin(), ms.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(ms.size() - 1) + 0.5);
  return ms[std::min(idx, ms.size() - 1)];
}

/// Per-sample (C, H, W) request tensors, staged once so serving load loops
/// measure the server rather than dataset slicing.
inline std::vector<Tensor> stage_rows(const data::Dataset& ds) {
  std::vector<Tensor> rows;
  rows.reserve(static_cast<std::size_t>(ds.size()));
  for (std::int64_t i = 0; i < ds.size(); ++i) {
    rows.push_back(data::make_batch(ds, i, i + 1)
                       .x.reshape({ds.channels(), ds.height(), ds.width()}));
  }
  return rows;
}

}  // namespace ibrar::bench
