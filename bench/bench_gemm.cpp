// GEMM A/B bench: seed ikj kernel vs the packed cache-blocked kernel.
//
// For each shape the bench times the seed kernel (the exact ikj loop the repo
// shipped with, zero-skip included) against gemm_packed at 1 thread, checks
// the outputs are bit-identical (same fma chain — see gemm_packed.hpp), then
// re-runs packed at IBRAR_BENCH_THREADS lanes and checks bit-identity with
// the 1-thread result. Every row lands in the JSON perf record
// (BENCH_pr2.json / IBRAR_BENCH_OUT).
//
//   ./bench_gemm            full shapes, best-of-5 timing
//   ./bench_gemm --smoke    tiny shapes, 1 rep — the CTest reporter sanity run
//
// Exit status is nonzero if either bit-identity check (packed vs seed, or
// 1 vs N lanes) fails, so CI can gate on it; the recorded checksums are the
// greppable trail, not the gate (bit identity subsumes checksum equality).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "reporter.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/gemm_packed.hpp"
#include "tensor/random.hpp"
#include "tensor/tensor.hpp"
#include "util/env.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace ibrar::bench {
namespace {

/// The seed repo's GEMM, verbatim (serial form): ikj with the zero-skip
/// shortcut. This is the baseline every speedup in BENCH_pr2.json is against.
void seed_gemm_ikj(const float* a, const float* b, float* c, std::int64_t m,
                   std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i) {
    float* ci = c + i * n;
    const float* ai = a + i * k;
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = ai[p];
      if (av == 0.0f) continue;
      const float* bp = b + p * n;
      for (std::int64_t j = 0; j < n; ++j) ci[j] += av * bp[j];
    }
  }
}

struct ShapeSpec {
  std::int64_t m, k, n;
  const char* note;
};

bool run_shape(JsonReporter& rep, Table& table, const ShapeSpec& s, int reps,
               std::int64_t bench_threads) {
  Rng rng(0x9e3779b9u ^ static_cast<std::uint64_t>(s.m * 131 + s.k * 17 + s.n));
  const Tensor a = randn({s.m, s.k}, rng);
  const Tensor b = randn({s.k, s.n}, rng);
  const double flops = 2.0 * static_cast<double>(s.m) * s.k * s.n;
  char shape[64];
  std::snprintf(shape, sizeof(shape), "%lldx%lldx%lld",
                static_cast<long long>(s.m), static_cast<long long>(s.k),
                static_cast<long long>(s.n));

  runtime::set_num_threads(1);
  Tensor c_seed({s.m, s.n});
  const double t_seed = time_best_ms(
      [&] {
        c_seed.fill(0.0f);
        seed_gemm_ikj(a.data().data(), b.data().data(), c_seed.data().data(),
                      s.m, s.k, s.n);
      },
      reps);

  Tensor c_packed({s.m, s.n});
  const double t_packed = time_best_ms(
      [&] {
        c_packed.fill(0.0f);
        gemm_packed(a.data().data(), GemmLayout::kRowMajor, b.data().data(),
                    GemmLayout::kRowMajor, c_packed.data().data(), s.m, s.k,
                    s.n);
      },
      reps);

  runtime::set_num_threads(bench_threads);
  Tensor c_mt({s.m, s.n});
  const double t_mt = time_best_ms(
      [&] {
        c_mt.fill(0.0f);
        gemm_packed(a.data().data(), GemmLayout::kRowMajor, b.data().data(),
                    GemmLayout::kRowMajor, c_mt.data().data(), s.m, s.k, s.n);
      },
      reps);
  runtime::set_num_threads(1);

  const bool match_seed = tensor_bits_equal(c_seed, c_packed);
  const bool match_mt = tensor_bits_equal(c_packed, c_mt);
  const double speedup = t_packed > 0 ? t_seed / t_packed : 0.0;

  BenchRecord seed_rec;
  seed_rec.kernel = "gemm_seed_ikj";
  seed_rec.shape = shape;
  seed_rec.ns_per_op = t_seed * 1e6;
  seed_rec.gflops = flops / (t_seed * 1e6);
  seed_rec.threads = 1;
  seed_rec.checksum = tensor_checksum(c_seed);
  rep.add(seed_rec);

  BenchRecord packed_rec = seed_rec;
  packed_rec.kernel = "gemm_packed";
  packed_rec.ns_per_op = t_packed * 1e6;
  packed_rec.gflops = flops / (t_packed * 1e6);
  packed_rec.checksum = tensor_checksum(c_packed);
  packed_rec.speedup_vs_naive = speedup;
  packed_rec.bit_identical = match_seed;
  rep.add(packed_rec);

  BenchRecord mt_rec = packed_rec;
  mt_rec.threads = bench_threads;
  mt_rec.ns_per_op = t_mt * 1e6;
  mt_rec.gflops = flops / (t_mt * 1e6);
  mt_rec.checksum = tensor_checksum(c_mt);
  mt_rec.speedup_vs_naive = t_mt > 0 ? t_seed / t_mt : 0.0;
  mt_rec.bit_identical = match_mt;
  rep.add(mt_rec);

  char seed_ms[32], packed_ms[32], sp[32], gf[32];
  std::snprintf(seed_ms, sizeof(seed_ms), "%.2f", t_seed);
  std::snprintf(packed_ms, sizeof(packed_ms), "%.2f", t_packed);
  std::snprintf(sp, sizeof(sp), "%.2fx", speedup);
  std::snprintf(gf, sizeof(gf), "%.2f", packed_rec.gflops);
  table.add_row({std::string(shape) + " (" + s.note + ")", seed_ms, packed_ms,
                 sp, gf, match_seed ? "yes" : "NO",
                 match_mt ? "yes" : "NO"});
  return match_seed && match_mt;
}

}  // namespace
}  // namespace ibrar::bench

int main(int argc, char** argv) {
  using namespace ibrar;
  using namespace ibrar::bench;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const unsigned hc = std::thread::hardware_concurrency();
  const std::int64_t bench_threads = env::get_int(
      "IBRAR_BENCH_THREADS", hc == 0 ? 4 : static_cast<long>(hc));
  const int reps = smoke ? 1 : 5;

  std::vector<ShapeSpec> shapes;
  if (smoke) {
    shapes = {{64, 64, 64, "smoke"}, {37, 300, 19, "smoke ragged"}};
  } else {
    shapes = {
        {256, 256, 256, "square"},
        {384, 384, 384, "square, k>KC"},
        {4096, 288, 64, "im2col conv3x3 c32 f64"},
        {250, 301, 70, "ragged"},
        {100, 48, 32, "mlp layer"},
    };
  }

  std::printf("=== GEMM A/B: seed ikj vs packed (1 thread), packed at %lld "
              "lanes ===\n",
              static_cast<long long>(bench_threads));
  Table table({"shape", "seed (ms)", "packed (ms)", "speedup", "GFLOP/s",
               "bits=seed", "bits 1=N"});
  // Smoke runs (the CTest target) write their own file so a stray ctest never
  // clobbers the curated BENCH_pr2.json / IBRAR_BENCH_OUT record.
  JsonReporter reporter(smoke ? "BENCH_smoke.json" : "");
  bool ok = true;
  for (const auto& s : shapes) {
    ok = run_shape(reporter, table, s, reps, bench_threads) && ok;
  }
  table.print();
  reporter.write();
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: bit-identity mismatch (packed vs seed, or 1 vs N "
                 "lanes)\n");
    return 1;
  }
  return 0;
}
