// Figure 2 reproduction: IB-based methods without adversarial training on
// CIFAR-10/VGG16 — CE, VIB, HBaR, IB-RAR(all), IB-RAR(rob) — evaluated under
// (a) PGD with 1..50 steps, (b) CW with 10..50 steps, (c) NIFGSM with 1..20
// steps, and (d) clean accuracy per training epoch.
//
// Expected shape (paper): IB-RAR(rob) > IB-RAR(all) > HBaR/VIB > CE on the
// attack panels; all methods close on clean accuracy with CE lowest.

#include "common.hpp"

using namespace ibrar;
using namespace ibrar::bench;

int main() {
  print_header("Figure 2: IB baselines without adversarial training (VGG16)");
  const auto s = default_scale();
  const auto data = data::make_dataset("synth-cifar10", s.train_size,
                                       s.test_size);
  models::ModelSpec spec;
  spec.name = "vgg16";

  struct Method {
    const char* name;
    const char* base;
    bool ibrar;
    core::LayerSelection sel;
    double clean_ref;  ///< paper's final clean accuracy
  };
  const std::vector<Method> methods = {
      {"CE", "CE", false, core::LayerSelection::kAll, 89.88},
      {"VIB", "VIB", false, core::LayerSelection::kAll, 90.52},
      {"HBaR", "HBaR", false, core::LayerSelection::kAll, 91.93},
      {"IB-RAR(all)", "plain", true, core::LayerSelection::kAll, 91.97},
      {"IB-RAR(rob)", "plain", true, core::LayerSelection::kRobust, 91.33},
  };

  const bool paper_profile = env::profile() == env::Profile::kPaper;
  const std::vector<std::int64_t> pgd_steps =
      paper_profile ? std::vector<std::int64_t>{1, 10, 20, 30, 40, 50}
                    : std::vector<std::int64_t>{1, 10, 30};
  const std::vector<std::int64_t> cw_steps =
      paper_profile ? std::vector<std::int64_t>{10, 20, 30, 40, 50}
                    : std::vector<std::int64_t>{10, 30};
  const std::vector<std::int64_t> ni_steps =
      paper_profile ? std::vector<std::int64_t>{1, 3, 5, 7, 9, 10, 20}
                    : std::vector<std::int64_t>{1, 5, 10};

  std::vector<models::TapClassifierPtr> trained;
  std::vector<std::vector<train::EpochStats>> histories;
  Stopwatch sw;
  for (const auto& m : methods) {
    std::vector<train::EpochStats> hist;
    // Per-epoch test accuracy gives panel (d); re-run fit with eval.
    Rng rng(42);
    auto model = models::make_model(spec, rng);
    train::ObjectivePtr obj;
    if (m.ibrar) {
      obj = std::make_shared<core::IBRARObjective>(nullptr, default_mi(m.sel));
    } else {
      obj = make_base_objective(m.base, s, *model);
    }
    train::Trainer trainer(model, obj, train_config(s));
    if (m.ibrar) {
      trainer.epoch_hook = core::make_mask_hook(core::FeatureMaskConfig{},
                                                data.train);
    }
    hist = trainer.fit(data.train, &data.test);
    trained.push_back(model);
    histories.push_back(std::move(hist));
    std::fprintf(stderr, "[bench] fig2 trained %s (%.1fs)\n", m.name, sw.reset());
  }

  auto sweep = [&](const char* title, const std::vector<std::int64_t>& steps,
                   auto make_attack) {
    std::vector<std::string> header = {"Method"};
    for (const auto st : steps) header.push_back(std::to_string(st));
    Table table(header);
    for (std::size_t mi_ = 0; mi_ < methods.size(); ++mi_) {
      std::vector<std::string> row = {methods[mi_].name};
      for (const auto st : steps) {
        auto atk = make_attack(st);
        const double acc = train::evaluate_adversarial(
            *trained[mi_], data.test, *atk, s.batch, s.eval_samples);
        row.push_back(Table::num(100 * acc, 2));
      }
      table.add_row(std::move(row));
      std::fprintf(stderr, "[bench] fig2 %s sweep %s done (%.1fs)\n", title,
                   methods[mi_].name, sw.reset());
    }
    std::printf("-- (%s) accuracy vs optimization steps --\n", title);
    table.print();
    std::printf("\n");
  };

  sweep("a: PGD", pgd_steps, [](std::int64_t st) {
    attacks::AttackConfig c;
    c.steps = st;
    return std::make_unique<attacks::PGD>(c);
  });
  sweep("b: CW", cw_steps, [](std::int64_t st) {
    attacks::AttackConfig c;
    c.steps = st;
    return std::make_unique<attacks::CW>(c);
  });
  sweep("c: NIFGSM", ni_steps, [](std::int64_t st) {
    attacks::AttackConfig c;
    c.steps = st;
    return std::make_unique<attacks::NIFGSM>(c);
  });

  // Panel (d): clean accuracy per epoch.
  std::printf("-- (d) clean test accuracy per epoch --\n");
  std::vector<std::string> header = {"Method"};
  for (std::int64_t e = 0; e < s.epochs; ++e) {
    header.push_back("ep" + std::to_string(e));
  }
  header.push_back("paper-final");
  Table table(header);
  for (std::size_t m = 0; m < methods.size(); ++m) {
    std::vector<std::string> row = {methods[m].name};
    for (const auto& st : histories[m]) {
      row.push_back(Table::num(100 * st.test_acc, 2));
    }
    row.push_back(Table::num(methods[m].clean_ref, 2));
    table.add_row(std::move(row));
  }
  table.print();
  return 0;
}
