// Figure 2 reproduction: IB-based methods without adversarial training on
// CIFAR-10/VGG16 — CE, VIB, HBaR, IB-RAR(all), IB-RAR(rob) — evaluated under
// (a) PGD with 1..50 steps, (b) CW with 10..50 steps, (c) NIFGSM with 1..20
// steps, and (d) clean accuracy per training epoch.
//
// Expected shape (paper): IB-RAR(rob) > IB-RAR(all) > HBaR/VIB > CE on the
// attack panels; all methods close on clean accuracy with CE lowest.
//
// Training and the step sweeps run through the analysis driver
// (analysis::train_model / analysis::attack_step_sweep); every sweep point
// and per-epoch accuracy is recorded to BENCH_fig2.json (ibrar-bench-v1,
// headline metric in `checksum`).

#include "analysis/driver.hpp"
#include "common.hpp"

using namespace ibrar;
using namespace ibrar::bench;

int main() {
  print_header("Figure 2: IB baselines without adversarial training (VGG16)");
  const auto s = default_scale();
  const auto data = data::make_dataset("synth-cifar10", s.train_size,
                                       s.test_size);
  models::ModelSpec spec;
  spec.name = "vgg16";

  struct Method {
    const char* name;
    const char* base;
    bool ibrar;
    core::LayerSelection sel;
    double clean_ref;  ///< paper's final clean accuracy
  };
  const std::vector<Method> methods = {
      {"CE", "CE", false, core::LayerSelection::kAll, 89.88},
      {"VIB", "VIB", false, core::LayerSelection::kAll, 90.52},
      {"HBaR", "HBaR", false, core::LayerSelection::kAll, 91.93},
      {"IB-RAR(all)", "plain", true, core::LayerSelection::kAll, 91.97},
      {"IB-RAR(rob)", "plain", true, core::LayerSelection::kRobust, 91.33},
  };

  const bool paper_profile = env::profile() == env::Profile::kPaper;
  const std::vector<std::int64_t> pgd_steps =
      paper_profile ? std::vector<std::int64_t>{1, 10, 20, 30, 40, 50}
                    : std::vector<std::int64_t>{1, 10, 30};
  const std::vector<std::int64_t> cw_steps =
      paper_profile ? std::vector<std::int64_t>{10, 20, 30, 40, 50}
                    : std::vector<std::int64_t>{10, 30};
  const std::vector<std::int64_t> ni_steps =
      paper_profile ? std::vector<std::int64_t>{1, 3, 5, 7, 9, 10, 20}
                    : std::vector<std::int64_t>{1, 5, 10};

  JsonReporter reporter(env::get_string("IBRAR_BENCH_OUT", "BENCH_fig2.json"));
  std::vector<models::TapClassifierPtr> trained;
  std::vector<std::vector<train::EpochStats>> histories;
  Stopwatch sw;
  for (const auto& m : methods) {
    core::MILossConfig mi = default_mi(m.sel);
    auto tspec = train_spec(m.base, m.ibrar, s, 42, mi);
    std::vector<train::EpochStats> hist;
    // Per-epoch test accuracy gives panel (d).
    auto model = analysis::train_model(spec, data, tspec, 42, &hist,
                                       &data.test);
    trained.push_back(model);
    histories.push_back(std::move(hist));
    std::fprintf(stderr, "[bench] fig2 trained %s (%.1fs)\n", m.name, sw.reset());
  }

  auto sweep = [&](const char* title, const char* attack,
                   const std::vector<std::int64_t>& steps) {
    std::vector<std::string> header = {"Method"};
    for (const auto st : steps) header.push_back(std::to_string(st));
    Table table(header);
    for (std::size_t mi_ = 0; mi_ < methods.size(); ++mi_) {
      const auto sw_result = analysis::attack_step_sweep(
          *trained[mi_], data.test, attack, steps, attacks::AttackConfig{},
          s.batch, s.eval_samples);
      std::vector<std::string> row = {methods[mi_].name};
      for (std::size_t k = 0; k < steps.size(); ++k) {
        row.push_back(Table::num(100 * sw_result.robust_acc[k], 2));
        BenchRecord rec;
        rec.kernel = std::string("fig2/") + attack + "/" + methods[mi_].name;
        rec.shape = "steps=" + std::to_string(steps[k]);
        rec.checksum = sw_result.robust_acc[k];
        rec.ns_per_op = sw_result.seconds[k] * 1e9;
        reporter.add(rec);
      }
      table.add_row(std::move(row));
      std::fprintf(stderr, "[bench] fig2 %s sweep %s done (%.1fs)\n", title,
                   methods[mi_].name, sw.reset());
    }
    std::printf("-- (%s) accuracy vs optimization steps --\n", title);
    table.print();
    std::printf("\n");
  };

  sweep("a: PGD", "pgd", pgd_steps);
  sweep("b: CW", "cw", cw_steps);
  sweep("c: NIFGSM", "nifgsm", ni_steps);

  // Panel (d): clean accuracy per epoch.
  std::printf("-- (d) clean test accuracy per epoch --\n");
  std::vector<std::string> header = {"Method"};
  for (std::int64_t e = 0; e < s.epochs; ++e) {
    header.push_back("ep" + std::to_string(e));
  }
  header.push_back("paper-final");
  Table table(header);
  for (std::size_t m = 0; m < methods.size(); ++m) {
    std::vector<std::string> row = {methods[m].name};
    for (const auto& st : histories[m]) {
      row.push_back(Table::num(100 * st.test_acc, 2));
      BenchRecord rec;
      rec.kernel = std::string("fig2/clean/") + methods[m].name;
      rec.shape = "epoch=" + std::to_string(st.epoch);
      rec.checksum = st.test_acc;
      reporter.add(rec);
    }
    row.push_back(Table::num(methods[m].clean_ref, 2));
    table.add_row(std::move(row));
  }
  table.print();
  reporter.write();
  return 0;
}
