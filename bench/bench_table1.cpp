// Table 1 reproduction: PGD / TRADES / MART adversarial training, each with
// and without IB-RAR, on CIFAR-10 (VGG16) and Tiny ImageNet (VGG16), under
// Natural / PGD / CW / FGSM / FAB / NIFGSM evaluation.
//
// Expected shape (paper): every "(IB-RAR)" row beats its baseline on most
// adversarial columns; clean accuracy improves for TRADES/MART.

#include "common.hpp"

using namespace ibrar;
using namespace ibrar::bench;

int main() {
  print_header("Table 1: adversarial training +/- IB-RAR (VGG16)");
  const auto s = default_scale();

  const std::vector<PaperRow> cifar_rows = {
      {"PGD", false, {75.02, 42.45, 37.80, 47.32, 41.03, 47.59}},
      {"PGD", true, {76.22, 45.09, 41.83, 50.53, 46.22, 51.93}},
      {"TRADES", false, {73.44, 43.92, 38.28, 47.94, 41.64, 48.41}},
      {"TRADES", true, {80.63, 44.13, 41.81, 51.45, 43.63, 51.69}},
      {"MART", false, {73.52, 44.64, 37.58, 48.73, 40.56, 48.95}},
      {"MART", true, {80.54, 44.34, 41.45, 52.19, 44.72, 51.93}},
  };
  run_attack_table("CIFAR-10 by VGG16 (synth-cifar10)", "synth-cifar10",
                   "vgg16", cifar_rows, s);

  const std::vector<PaperRow> tiny_rows = {
      {"PGD", false, {37.54, 17.73, 13.77, 19.46, 13.76, 22.14}},
      {"PGD", true, {40.25, 18.30, 14.08, 20.07, 14.29, 22.62}},
      {"TRADES", false, {36.80, 18.13, 13.73, 19.57, 14.01, 22.16}},
      {"TRADES", true, {39.10, 18.45, 14.19, 20.22, 14.49, 22.87}},
      {"MART", false, {34.94, 17.49, 13.06, 18.88, 13.68, 21.23}},
      {"MART", true, {36.68, 18.05, 13.36, 19.33, 13.81, 22.02}},
  };
  run_attack_table("Tiny ImageNet by VGG16 (synth-tinyimagenet)",
                   "synth-tinyimagenet", "vgg16", tiny_rows, s);
  return 0;
}
