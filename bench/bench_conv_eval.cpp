// bench_conv_eval — fused inference conv A/B vs the layer-by-layer reference.
//
// Two sections, both gated on exact bit identity (memcmp of every output
// buffer — any mismatch exits nonzero, which is what the bench_conv_eval_smoke
// CTest target enforces):
//
//   * layers: every vgg16-shaped trunk conv plus a set of ragged shapes
//     (non-square input, stride-2, 1x1 stride-2 projection, kernel == input)
//     through ConvEvalPlan (prepacked weights, implicit-im2col B panels,
//     fused bias+BN+ReLU epilogue) vs the reference eval pipeline
//     relu(batch_norm2d_eval(conv2d(x))) — swept over batch sizes, with the
//     fused path additionally re-run at 1 and 4 pool lanes and memcmp'd
//     against itself (the blocking/threading-invariance contract of
//     gemm_packed's ascending-p micro-kernel).
//   * models: two same-seed instances of each conv classifier (MiniVGG,
//     MiniResNet, MiniWRN) — one lowered via prepare_fused_eval(), one left
//     on the layer-by-layer path — compared logit-for-logit AND tap-for-tap
//     across batch sizes under NoGradGuard.
//
// The layer rows double as the per-layer eval breakdown: each vgg16 trunk
// conv gets its own fused/reference timing pair (ns_per_op is per conv call,
// gflops from the analytic 2*N*OH*OW*F*C*K*K flop count). When profiling is
// on (IBRAR_OBS_PROFILE=1) the per-site pack/kernel/epilogue split prints at
// exit via obs::print_profile_table.
//
// JSON rows (ibrar-bench-v1, default BENCH_pr8_conv.json / IBRAR_BENCH_OUT):
//   kernel "conv_eval/ref/<layer>" | "conv_eval/fused/<layer>" |
//   "conv_eval/model/<name>/{ref,fused}", shape "b<N>_<C>x<H>x<W>->F<F>k<K>
//   s<S>", speedup_vs_naive on fused rows = ref_ms / fused_ms,
//   bit_identical = the memcmp gate result, extra batch=<N>.
//
// Perf expectation (checked in full mode, WARN only — the hard gates are the
// bit gates): fused beats the reference on every vgg16-shaped layer at
// batch >= 4.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "autograd/ops.hpp"
#include "autograd/var.hpp"
#include "common.hpp"
#include "models/registry.hpp"
#include "obs/profile.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/conv_eval.hpp"
#include "tensor/random.hpp"

using namespace ibrar;
using namespace ibrar::bench;

namespace {

struct LayerCase {
  const char* name;
  std::int64_t c, h, w, f;
  Conv2dSpec spec;
  bool bias;
  bool vgg_shaped;  ///< participates in the batch>=4 perf expectation
};

/// One conv layer's worth of random-but-deterministic operands. running_var
/// is shifted positive so the BN fold's rsqrt stays well-conditioned.
struct LayerOperands {
  Tensor w, bias, gamma, beta, rm, rv;
};

LayerOperands make_operands(const LayerCase& lc, std::uint64_t salt) {
  Rng rng(0x51ed270bu ^ salt);
  LayerOperands ops;
  ops.w = randn({lc.f, lc.c, lc.spec.kernel, lc.spec.kernel}, rng);
  ops.bias = randn({lc.f}, rng);
  ops.gamma = randn({lc.f}, rng);
  ops.beta = randn({lc.f}, rng);
  ops.rm = randn({lc.f}, rng);
  ops.rv = randn({lc.f}, rng);
  for (std::int64_t i = 0; i < lc.f; ++i) {
    ops.rv[i] = ops.rv[i] * ops.rv[i] + 0.5f;
  }
  return ops;
}

constexpr float kEps = 1e-5f;

/// The layer-by-layer eval pipeline the fused plan must reproduce bit-exactly.
Tensor reference_layer(const Tensor& x, const LayerCase& lc,
                       const LayerOperands& ops) {
  ag::NoGradGuard ng;
  ag::Var h = ag::conv2d(ag::Var::constant(x), ag::Var::constant(ops.w),
                         lc.bias ? ag::Var::constant(ops.bias) : ag::Var(),
                         lc.spec);
  h = ag::batch_norm2d_eval(h, ag::Var::constant(ops.gamma),
                            ag::Var::constant(ops.beta), ops.rm, ops.rv, kEps);
  return ag::relu(h).value();
}

double conv_gflops(const LayerCase& lc, std::int64_t n, double ms) {
  const std::int64_t oh =
      (lc.h + 2 * lc.spec.pad - lc.spec.kernel) / lc.spec.stride + 1;
  const std::int64_t ow =
      (lc.w + 2 * lc.spec.pad - lc.spec.kernel) / lc.spec.stride + 1;
  const double flops = 2.0 * static_cast<double>(n * oh * ow) *
                       static_cast<double>(lc.f) *
                       static_cast<double>(lc.c * lc.spec.kernel *
                                           lc.spec.kernel);
  return ms > 0.0 ? flops / (ms * 1e6) : 0.0;
}

std::string layer_shape(const LayerCase& lc, std::int64_t n) {
  return "b" + std::to_string(n) + "_" + std::to_string(lc.c) + "x" +
         std::to_string(lc.h) + "x" + std::to_string(lc.w) + "->F" +
         std::to_string(lc.f) + "k" + std::to_string(lc.spec.kernel) + "s" +
         std::to_string(lc.spec.stride);
}

/// All taps plus logits memcmp-equal between two TapsOutputs.
bool taps_bits_equal(const models::TapsOutput& a, const models::TapsOutput& b) {
  if (a.taps.size() != b.taps.size()) return false;
  if (!tensor_bits_equal(a.logits.value(), b.logits.value())) return false;
  for (std::size_t i = 0; i < a.taps.size(); ++i) {
    if (!tensor_bits_equal(a.taps[i].value(), b.taps[i].value())) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  print_header(smoke ? "bench_conv_eval --smoke: bit-identity gates, tiny load"
                     : "bench_conv_eval: fused inference conv A/B");
  if (!fused_eval_enabled()) {
    std::printf("IBRAR_EVAL_FUSED=0 — nothing to A/B; skipping.\n");
    return 0;
  }

  JsonReporter reporter(env::get_string(
      "IBRAR_BENCH_OUT",
      smoke ? "BENCH_smoke_conv_eval.json" : "BENCH_pr8_conv.json"));

  // The vgg16 trunk at image 16 (channels 8/12/16/24/24, pools after blocks
  // 1-3), then the ragged shapes the blocked packing has to get right: spatial
  // rows that do not divide NR, stride-2 downsampling, a 1x1 stride-2
  // projection (resnet/wrn skip path, no bias), and kernel == input (the
  // degenerate single-column case).
  const std::vector<LayerCase> layers = {
      {"vgg.b1c0", 3, 16, 16, 8, {3, 1, 1}, true, true},
      {"vgg.b1c1", 8, 16, 16, 8, {3, 1, 1}, true, true},
      {"vgg.b2c0", 8, 8, 8, 12, {3, 1, 1}, true, true},
      {"vgg.b2c1", 12, 8, 8, 12, {3, 1, 1}, true, true},
      {"vgg.b3c0", 12, 4, 4, 16, {3, 1, 1}, true, true},
      {"vgg.b3c1", 16, 4, 4, 16, {3, 1, 1}, true, true},
      {"vgg.b4c0", 16, 2, 2, 24, {3, 1, 1}, true, true},
      {"vgg.b5c0", 24, 2, 2, 24, {3, 1, 1}, true, true},
      {"nonsquare", 8, 6, 10, 16, {3, 1, 1}, true, false},
      {"stride2", 8, 16, 16, 16, {3, 2, 1}, true, false},
      {"proj1x1s2", 16, 8, 8, 32, {1, 2, 0}, false, false},
      {"kfull", 8, 4, 4, 16, {4, 1, 0}, false, false},
  };
  const std::vector<std::int64_t> batches =
      smoke ? std::vector<std::int64_t>{1, 4, 8}
            : std::vector<std::int64_t>{1, 2, 4, 8, 16, 32};
  const int reps = smoke ? 1 : 5;
  const std::int64_t lanes0 = runtime::num_threads();

  int failures = 0;
  int perf_warnings = 0;

  std::printf("  %-10s %5s : %10s %10s %8s %8s  %s\n", "layer", "batch",
              "ref ms", "fused ms", "speedup", "GF/s", "bits");
  for (const auto& lc : layers) {
    const LayerOperands ops = make_operands(lc, static_cast<std::uint64_t>(
                                                    lc.c * 131 + lc.f));
    const ConvEvalPlan plan(ops.w, lc.bias ? &ops.bias : nullptr, lc.spec,
                            fold_batch_norm(ops.gamma, ops.beta, ops.rm,
                                            ops.rv, kEps),
                            /*relu=*/true);
    for (const auto n : batches) {
      Rng xrng(0xabcdef01u ^ static_cast<std::uint64_t>(n));
      const Tensor x = randn({n, lc.c, lc.h, lc.w}, xrng);
      const Tensor ref = reference_layer(x, lc, ops);
      const Tensor fused = plan.run(x);
      bool bits = tensor_bits_equal(ref, fused);

      // Lane-count invariance: the same call at 1 and 4 pool lanes must
      // reproduce the same bytes (the micro-kernel's ascending-p contract).
      runtime::set_num_threads(1);
      const Tensor fused1 = plan.run(x);
      runtime::set_num_threads(4);
      const Tensor fused4 = plan.run(x);
      runtime::set_num_threads(lanes0);
      bits = bits && tensor_bits_equal(fused, fused1) &&
             tensor_bits_equal(fused, fused4);

      const double ref_ms = time_best_ms([&] { reference_layer(x, lc, ops); },
                                         reps);
      const double fused_ms = time_best_ms([&] { plan.run(x); }, reps);
      const double speedup = fused_ms > 0.0 ? ref_ms / fused_ms : 0.0;
      const double gf = conv_gflops(lc, n, fused_ms);
      std::printf("  %-10s %5lld : %10.4f %10.4f %7.2fx %8.3f  %s\n", lc.name,
                  static_cast<long long>(n), ref_ms, fused_ms, speedup, gf,
                  bits ? "OK" : "MISMATCH");
      if (!bits) {
        std::fprintf(stderr, "FAIL: %s batch=%lld fused bits differ\n",
                     lc.name, static_cast<long long>(n));
        ++failures;
      }
      if (!smoke && lc.vgg_shaped && n >= 4 && fused_ms > ref_ms) {
        std::fprintf(stderr,
                     "WARN: %s batch=%lld fused %.4f ms slower than ref "
                     "%.4f ms\n",
                     lc.name, static_cast<long long>(n), fused_ms, ref_ms);
        ++perf_warnings;
      }

      const std::string shape = layer_shape(lc, n);
      BenchRecord rr;
      rr.kernel = std::string("conv_eval/ref/") + lc.name;
      rr.shape = shape;
      rr.ns_per_op = ref_ms * 1e6;
      rr.gflops = conv_gflops(lc, n, ref_ms);
      rr.threads = lanes0;
      rr.checksum = tensor_checksum(ref);
      rr.bit_identical = true;
      rr.extra = {{"batch", static_cast<double>(n)}};
      reporter.add(rr);
      BenchRecord fr = rr;
      fr.kernel = std::string("conv_eval/fused/") + lc.name;
      fr.ns_per_op = fused_ms * 1e6;
      fr.gflops = gf;
      fr.checksum = tensor_checksum(fused);
      fr.speedup_vs_naive = speedup;
      fr.bit_identical = bits;
      reporter.add(fr);
    }
  }

  // ---- full-model fused-vs-reference (logits AND taps) ---------------------
  // Same Rng seed => bit-identical weights, so the only difference between
  // the pair is the execution path. The reference instance never gets
  // prepare_fused_eval(), pinning it to the layer-by-layer eval.
  const std::vector<std::string> model_names =
      smoke ? std::vector<std::string>{"vgg16"}
            : std::vector<std::string>{"vgg16", "resnet18", "wrn28"};
  const std::vector<std::int64_t> model_batches =
      smoke ? std::vector<std::int64_t>{1, 8}
            : std::vector<std::int64_t>{1, 4, 8, 32};
  for (const auto& name : model_names) {
    models::ModelSpec spec;
    spec.name = name;
    Rng rng_ref(97), rng_fused(97);
    auto m_ref = models::make_model(spec, rng_ref);
    auto m_fused = models::make_model(spec, rng_fused);
    m_ref->set_training(false);
    m_fused->set_training(false);
    m_fused->prepare_fused_eval();
    if (!m_fused->fused_eval_ready()) {
      std::fprintf(stderr, "FAIL: %s fused plans not ready after prepare\n",
                   name.c_str());
      ++failures;
      continue;
    }
    ag::NoGradGuard ng;
    for (const auto n : model_batches) {
      Rng xrng(0x7f4a7c15u ^ static_cast<std::uint64_t>(n));
      const Tensor x = randn({n, spec.in_channels, spec.image_size,
                              spec.image_size}, xrng);
      const ag::Var xv = ag::Var::constant(x);
      const auto ref = m_ref->eval_forward_with_taps(xv);
      const auto fused = m_fused->eval_forward_with_taps(xv);
      const bool bits = taps_bits_equal(ref, fused);
      const double ref_ms =
          time_best_ms([&] { m_ref->eval_forward_with_taps(xv); }, reps);
      const double fused_ms =
          time_best_ms([&] { m_fused->eval_forward_with_taps(xv); }, reps);
      const double speedup = fused_ms > 0.0 ? ref_ms / fused_ms : 0.0;
      std::printf("  model %-8s batch %2lld : ref %8.3f ms  fused %8.3f ms  "
                  "speedup %5.2fx  logits+taps %s\n",
                  name.c_str(), static_cast<long long>(n), ref_ms, fused_ms,
                  speedup, bits ? "OK" : "MISMATCH");
      if (!bits) {
        std::fprintf(stderr,
                     "FAIL: %s batch=%lld fused logits/taps differ from "
                     "layer-by-layer\n",
                     name.c_str(), static_cast<long long>(n));
        ++failures;
      }
      const std::string shape = "b" + std::to_string(n) + "_" + name;
      BenchRecord rr;
      rr.kernel = "conv_eval/model/" + name + "/ref";
      rr.shape = shape;
      rr.ns_per_op = ref_ms * 1e6 / static_cast<double>(n);
      rr.threads = lanes0;
      rr.checksum = tensor_checksum(ref.logits.value());
      rr.bit_identical = true;
      rr.extra = {{"batch", static_cast<double>(n)}};
      reporter.add(rr);
      BenchRecord fr = rr;
      fr.kernel = "conv_eval/model/" + name + "/fused";
      fr.ns_per_op = fused_ms * 1e6 / static_cast<double>(n);
      fr.checksum = tensor_checksum(fused.logits.value());
      fr.speedup_vs_naive = speedup;
      fr.bit_identical = bits;
      reporter.add(fr);
    }
  }

  reporter.write();
  if (obs::profiling_enabled()) obs::print_profile_table(stdout);
  if (perf_warnings != 0) {
    std::fprintf(stderr,
                 "WARN: fused path slower than reference on %d vgg-shaped "
                 "layer/batch points (expected 0 at batch >= 4)\n",
                 perf_warnings);
  }
  if (failures != 0) {
    std::fprintf(stderr, "bench_conv_eval: %d gate failure(s)\n", failures);
    return 1;
  }
  std::printf("bench_conv_eval: all bit-identity gates passed\n");
  return 0;
}
