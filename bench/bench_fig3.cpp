// Figure 3 reproduction: t-SNE cluster structure of penultimate features for
// (a) plain CE, (b) IB-RAR, (c) TRADES, (d) TRADES (IB-RAR) on synth-cifar10.
//
// We cannot render scatter plots, so the bench reports the quantities the
// figure is used to argue: cluster separation (inter/intra distance ratio)
// and silhouette, in both raw feature space and the 2-D t-SNE embedding.
// Expected shape (paper): IB-RAR > plain and TRADES(IB-RAR) > TRADES on
// separation — the regularizer increases inter-class distances.

#include "common.hpp"
#include "mi/tsne.hpp"

using namespace ibrar;
using namespace ibrar::bench;

int main() {
  print_header("Figure 3: t-SNE cluster separation (VGG16, synth-cifar10)");
  const auto s = default_scale();
  const auto data = data::make_dataset("synth-cifar10", s.train_size,
                                       s.test_size);
  models::ModelSpec spec;
  spec.name = "vgg16";

  struct Method {
    const char* name;
    const char* base;
    bool ibrar;
  };
  const std::vector<Method> methods = {
      {"(a) Plain", "CE", false},
      {"(b) IB-RAR", "plain", true},
      {"(c) TRADES", "TRADES", false},
      {"(d) TRADES (IB-RAR)", "TRADES", true},
  };

  const std::int64_t n_embed = std::min<std::int64_t>(data.test.size(), 200);
  std::vector<std::int64_t> idx(static_cast<std::size_t>(n_embed));
  for (std::int64_t i = 0; i < n_embed; ++i) idx[static_cast<std::size_t>(i)] = i;
  const auto batch = data::make_batch(data.test, idx);

  Table table({"Method", "feat inter/intra", "feat silhouette",
               "tsne inter/intra", "tsne silhouette", "tsne KL proxy"});
  Stopwatch sw;
  for (const auto& m : methods) {
    auto model = train_method(m.base, m.ibrar, spec, data, s);
    // Penultimate representation (last tap).
    Tensor feats;
    {
      ag::NoGradGuard ng;
      model->set_training(false);
      auto out = model->forward_with_taps(ag::Var::constant(batch.x));
      const Tensor& t = out.taps.back().value();
      feats = t.reshape({t.dim(0), t.numel() / t.dim(0)});
    }
    const auto fm = mi::cluster_metrics(feats, batch.y);
    const Tensor embed = mi::tsne(feats);
    const auto em = mi::cluster_metrics(embed, batch.y);
    table.add_row({m.name, Table::num(fm.separation_ratio, 3),
                   Table::num(fm.silhouette, 3),
                   Table::num(em.separation_ratio, 3),
                   Table::num(em.silhouette, 3),
                   Table::num(em.mean_inter, 2)});
    std::fprintf(stderr, "[bench] fig3 %s done (%.1fs)\n", m.name, sw.reset());
  }
  table.print();
  std::printf("\nHigher separation/silhouette for the (IB-RAR) rows "
              "reproduces the figure's claim.\n");
  return 0;
}
