// Figure 3 reproduction: t-SNE cluster structure of penultimate features for
// (a) plain CE, (b) IB-RAR, (c) TRADES, (d) TRADES (IB-RAR) on synth-cifar10.
//
// We cannot render scatter plots, so the bench reports the quantities the
// figure is used to argue: cluster separation (inter/intra distance ratio)
// and silhouette, in both raw feature space and the 2-D t-SNE embedding.
// Expected shape (paper): IB-RAR > plain and TRADES(IB-RAR) > TRADES on
// separation — the regularizer increases inter-class distances.
//
// Capture and metrics run through the analysis driver (one tapped sweep via
// analysis::capture_taps, then analysis::cluster_report); each method's four
// metrics land in BENCH_fig3.json.

#include "analysis/capture.hpp"
#include "analysis/driver.hpp"
#include "common.hpp"

using namespace ibrar;
using namespace ibrar::bench;

int main() {
  print_header("Figure 3: t-SNE cluster separation (VGG16, synth-cifar10)");
  const auto s = default_scale();
  const auto data = data::make_dataset("synth-cifar10", s.train_size,
                                       s.test_size);
  models::ModelSpec spec;
  spec.name = "vgg16";

  struct Method {
    const char* name;
    const char* base;
    bool ibrar;
  };
  const std::vector<Method> methods = {
      {"(a) Plain", "CE", false},
      {"(b) IB-RAR", "plain", true},
      {"(c) TRADES", "TRADES", false},
      {"(d) TRADES (IB-RAR)", "TRADES", true},
  };

  const std::int64_t n_embed = std::min<std::int64_t>(data.test.size(), 200);

  JsonReporter reporter(env::get_string("IBRAR_BENCH_OUT", "BENCH_fig3.json"));
  Table table({"Method", "feat inter/intra", "feat silhouette",
               "tsne inter/intra", "tsne silhouette", "tsne KL proxy"});
  Stopwatch sw;
  for (const auto& m : methods) {
    auto model = train_method(m.base, m.ibrar, spec, data, s);
    // One tapped sweep; the penultimate representation is the last tap.
    const auto dump = analysis::capture_taps(*model, data.test, n_embed,
                                             s.batch);
    const auto rep = analysis::cluster_report(dump, dump.taps.size() - 1);
    table.add_row({m.name, Table::num(rep.feature.separation_ratio, 3),
                   Table::num(rep.feature.silhouette, 3),
                   Table::num(rep.embedding.separation_ratio, 3),
                   Table::num(rep.embedding.silhouette, 3),
                   Table::num(rep.embedding.mean_inter, 2)});
    const double secs = sw.reset();
    const struct {
      const char* key;
      double v;
    } metrics[] = {{"feat_separation", rep.feature.separation_ratio},
                   {"feat_silhouette", rep.feature.silhouette},
                   {"tsne_separation", rep.embedding.separation_ratio},
                   {"tsne_silhouette", rep.embedding.silhouette}};
    for (const auto& mt : metrics) {
      BenchRecord rec;
      rec.kernel = std::string("fig3/") + mt.key;
      rec.shape = m.name;
      rec.checksum = mt.v;
      rec.ns_per_op = secs * 1e9;
      reporter.add(rec);
    }
    std::fprintf(stderr, "[bench] fig3 %s done (%.1fs)\n", m.name, secs);
  }
  table.print();
  reporter.write();
  std::printf("\nHigher separation/silhouette for the (IB-RAR) rows "
              "reproduces the figure's claim.\n");
  return 0;
}
