// Figure 5 reproduction: the information plane of VGG16's 4th conv block
// during training, with the MI loss vs plain CE.
//
// Estimator note: the Shwartz-Ziv binning estimator (mi::binned_mi, kept and
// unit-tested in the library) saturates at log2(n) for representations this
// wide — every sample's binned code is unique — so the bench records the
// quantities the paper actually optimizes: HSIC(X, T4) and HSIC(Y, T4)
// (the Gaussian-kernel realization of I(X;T) / I(T;Y) used in Eq. 1).
//
// Expected shape (paper): with the MI loss, I(X;T) is driven down
// (compression) while I(T;Y) stays high; with CE only there is no
// compression phase.

#include "common.hpp"
#include "mi/objective.hpp"

using namespace ibrar;
using namespace ibrar::bench;

namespace {

struct IPTrace {
  std::vector<double> i_xt;
  std::vector<double> i_ty;
};

IPTrace run(const models::ModelSpec& spec, const data::SyntheticData& data,
            const Scale& s, bool mi_loss) {
  Rng rng(42);
  auto model = models::make_model(spec, rng);
  train::ObjectivePtr obj =
      mi_loss ? train::ObjectivePtr(
                    std::make_shared<core::IBRARObjective>(nullptr, default_mi()))
              : train::ObjectivePtr(std::make_shared<train::CEObjective>());
  train::Trainer trainer(model, obj, train_config(s));

  // A fixed probe batch keeps the estimator comparable across recordings.
  const std::int64_t n_probe = std::min<std::int64_t>(200, data.train.size());
  std::vector<std::int64_t> idx(static_cast<std::size_t>(n_probe));
  for (std::int64_t i = 0; i < n_probe; ++i) idx[static_cast<std::size_t>(i)] = i;
  const auto probe = data::make_batch(data.train, idx);

  IPTrace trace;
  const std::int64_t record_every = env::scaled_int("IBRAR_FIG5_EVERY", 2, 5);
  mi::IBObjectiveConfig ib_cfg;
  ib_cfg.layer_indices = {3};  // conv block 4 of VGG16 (the paper's layer)
  trainer.batch_hook = [&, ib_cfg](std::int64_t, std::int64_t batch_idx,
                                   models::TapClassifier& m,
                                   const data::Batch&) {
    if (batch_idx % record_every != 0) return;
    ag::NoGradGuard ng;
    m.set_training(false);
    auto out = m.forward_with_taps(ag::Var::constant(probe.x));
    std::vector<Tensor> taps;
    taps.reserve(out.taps.size());
    for (const auto& t : out.taps) taps.push_back(t.value());
    const auto [hx, hy] = mi::ib_objective_terms(probe.x, taps, probe.y,
                                                 m.num_classes(), ib_cfg);
    trace.i_xt.push_back(hx);
    trace.i_ty.push_back(hy);
    m.set_training(true);
  };
  trainer.fit(data.train);
  return trace;
}

void print_trace(const char* name, const IPTrace& t) {
  std::printf("%s (recorded %zu points, chronological; HSIC x 1e3)\n", name,
              t.i_xt.size());
  std::printf("  I(X;T4):");
  for (const auto v : t.i_xt) std::printf(" %6.3f", 1e3 * v);
  std::printf("\n  I(T4;Y):");
  for (const auto v : t.i_ty) std::printf(" %6.3f", 1e3 * v);
  std::printf("\n  compression I(X;T4) first->last: %.4f -> %.4f (x 1e3)\n\n",
              t.i_xt.empty() ? 0.0 : 1e3 * t.i_xt.front(),
              t.i_xt.empty() ? 0.0 : 1e3 * t.i_xt.back());
}

}  // namespace

int main() {
  print_header("Figure 5: information plane of conv block 4 (VGG16)");
  const auto s = default_scale();
  const auto data = data::make_dataset("synth-cifar10", s.train_size,
                                       s.test_size);
  models::ModelSpec spec;
  spec.name = "vgg16";

  print_trace("MI loss (Eq. 1)", run(spec, data, s, true));
  print_trace("Plain CE", run(spec, data, s, false));
  std::printf("Paper shape: the MI-loss run compresses I(X;T) while retaining "
              "I(T;Y); the CE run shows no compression.\n");
  return 0;
}
