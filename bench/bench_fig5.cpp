// Figure 5 reproduction: the information plane of VGG16's 4th conv block
// during training, with the MI loss vs plain CE.
//
// Estimator note: the Shwartz-Ziv binning estimator (mi::binned_mi, kept and
// unit-tested in the library) saturates at log2(n) for representations this
// wide — every sample's binned code is unique — so the bench records the
// quantities the paper actually optimizes: HSIC(X, T4) and HSIC(Y, T4)
// (the Gaussian-kernel realization of I(X;T) / I(T;Y) used in Eq. 1).
//
// Expected shape (paper): with the MI loss, I(X;T) is driven down
// (compression) while I(T;Y) stays high; with CE only there is no
// compression phase.
//
// The probe capture + HSIC estimation go through the analysis driver
// (capture_taps + info_plane on a fixed probe subset); traces are recorded
// to BENCH_fig5.json.

#include "analysis/capture.hpp"
#include "analysis/driver.hpp"
#include "common.hpp"

using namespace ibrar;
using namespace ibrar::bench;

namespace {

struct IPTrace {
  std::vector<double> i_xt;
  std::vector<double> i_ty;
};

IPTrace run(const models::ModelSpec& spec, const data::SyntheticData& data,
            const Scale& s, bool mi_loss) {
  Rng rng(42);
  auto model = models::make_model(spec, rng);
  train::ObjectivePtr obj =
      mi_loss ? train::ObjectivePtr(
                    std::make_shared<core::IBRARObjective>(nullptr, default_mi()))
              : train::ObjectivePtr(std::make_shared<train::CEObjective>());
  train::Trainer trainer(model, obj, train_config(s));

  // A fixed probe subset keeps the estimator comparable across recordings.
  const std::int64_t n_probe = std::min<std::int64_t>(200, data.train.size());
  const data::Dataset probe = data.train.head(n_probe);

  IPTrace trace;
  const std::int64_t record_every = env::scaled_int("IBRAR_FIG5_EVERY", 2, 5);
  trainer.batch_hook = [&](std::int64_t, std::int64_t batch_idx,
                           models::TapClassifier& m, const data::Batch&) {
    if (batch_idx % record_every != 0) return;
    // One tapped sweep of the probe — filtered to conv block 4 of VGG16 (the
    // paper's layer) so the hook copies a single tap, not all seven — then
    // the Eq. (1) HSIC pair. capture_taps saves/restores the training mode
    // around its eval-mode forwards.
    const auto dump = analysis::capture_taps(m, probe, n_probe, n_probe, {3});
    const auto plane = analysis::info_plane(dump, {0}, m.num_classes());
    trace.i_xt.push_back(plane.i_xt[0]);
    trace.i_ty.push_back(plane.i_ty[0]);
  };
  trainer.fit(data.train);
  return trace;
}

void print_trace(JsonReporter& reporter, const char* name, const IPTrace& t) {
  std::printf("%s (recorded %zu points, chronological; HSIC x 1e3)\n", name,
              t.i_xt.size());
  std::printf("  I(X;T4):");
  for (const auto v : t.i_xt) std::printf(" %6.3f", 1e3 * v);
  std::printf("\n  I(T4;Y):");
  for (const auto v : t.i_ty) std::printf(" %6.3f", 1e3 * v);
  std::printf("\n  compression I(X;T4) first->last: %.4f -> %.4f (x 1e3)\n\n",
              t.i_xt.empty() ? 0.0 : 1e3 * t.i_xt.front(),
              t.i_xt.empty() ? 0.0 : 1e3 * t.i_xt.back());
  for (std::size_t i = 0; i < t.i_xt.size(); ++i) {
    BenchRecord rec;
    rec.kernel = std::string("fig5/") + name;
    rec.shape = "point=" + std::to_string(i) + "/i_xt";
    rec.checksum = t.i_xt[i];
    reporter.add(rec);
    rec.shape = "point=" + std::to_string(i) + "/i_ty";
    rec.checksum = t.i_ty[i];
    reporter.add(rec);
  }
}

}  // namespace

int main() {
  print_header("Figure 5: information plane of conv block 4 (VGG16)");
  const auto s = default_scale();
  const auto data = data::make_dataset("synth-cifar10", s.train_size,
                                       s.test_size);
  models::ModelSpec spec;
  spec.name = "vgg16";

  JsonReporter reporter(env::get_string("IBRAR_BENCH_OUT", "BENCH_fig5.json"));
  print_trace(reporter, "MI loss (Eq. 1)", run(spec, data, s, true));
  print_trace(reporter, "Plain CE", run(spec, data, s, false));
  reporter.write();
  std::printf("Paper shape: the MI-loss run compresses I(X;T) while retaining "
              "I(T;Y); the CE run shows no compression.\n");
  return 0;
}
