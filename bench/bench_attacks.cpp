// Attack-engine A/B bench: active-set batch scheduling on vs off.
//
// Trains a partially-robust probe model (brief FGSM adversarial training on
// synthetic CIFAR-10, so a realistic fraction of examples falls to the first
// attack steps while the rest survive), then times each multi-step attack
// twice — full batches vs the engine's active-set compaction — and records
// per-attack ns/example in the ibrar-bench-v1 JSON schema (BENCH_pr3.json /
// IBRAR_BENCH_OUT; --smoke writes BENCH_smoke_attacks.json).
//
//   kernel   = attack spec, "+active_set" suffix for the compacted run
//   shape    = examples x C x H x W
//   checksum = robust accuracy (the invariant the scheduler must preserve)
//   speedup_vs_naive = full-batch seconds / active-set seconds
//   bit_identical    = robust accuracy unchanged by the scheduler
//
// Exit status is nonzero if any attack's robust accuracy changes with the
// active set on, so CI gates on the exactness contract; the speedup itself is
// machine-dependent and recorded rather than gated.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "attacks/registry.hpp"
#include "data/registry.hpp"
#include "models/registry.hpp"
#include "reporter.hpp"
#include "train/evaluate.hpp"
#include "train/objective.hpp"
#include "train/trainer.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

namespace ibrar::bench {
namespace {

struct AttackCase {
  std::string base_spec;  ///< without scheduling knobs
  const char* note;
};

/// Robust accuracy + wall time of one spec over the probe set.
struct RunResult {
  double acc = 0.0;
  double seconds = 0.0;
};

RunResult run_spec(models::TapClassifier& model, const data::Dataset& test,
                   const std::string& spec, std::int64_t batch,
                   std::int64_t samples) {
  const auto report = train::evaluate_robust(
      model, test, std::vector<std::string>{spec}, {batch, samples});
  RunResult r;
  r.acc = report.per_attack.front().robust_acc;
  r.seconds = report.per_attack.front().seconds;
  return r;
}

}  // namespace
}  // namespace ibrar::bench

int main(int argc, char** argv) {
  using namespace ibrar;
  using namespace ibrar::bench;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::int64_t samples = smoke ? 40 : 200;
  const std::int64_t batch = smoke ? 40 : 100;

  // Partially-robust probe: brief FGSM adversarial training hardens a
  // fraction of the examples so multi-step attacks retire the rest early —
  // the regime the active-set scheduler exists for.
  const auto data = data::make_dataset("synth-cifar10", smoke ? 200 : 400,
                                       samples);
  models::ModelSpec spec;
  spec.name = "mlp";
  Rng rng(17);
  auto model = models::make_model(spec, rng);
  {
    attacks::AttackConfig inner;
    inner.steps = 1;
    inner.alpha = inner.eps;
    train::TrainConfig tc;
    tc.epochs = smoke ? 2 : 6;
    tc.batch_size = 100;
    tc.track_train_acc = false;  // PR-3 knob: skip the per-batch extra forward
    train::Trainer(model, std::make_shared<train::PGDATObjective>(inner), tc)
        .fit(data.train);
  }

  std::vector<AttackCase> cases;
  // best=step everywhere so the full-batch runs return min-margin iterates —
  // the tracking mode under which active-set accuracy equality is exact by
  // construction (see README "Active set and determinism").
  if (smoke) {
    cases = {{"pgd:steps=5,best=step", "smoke"},
             {"fgsm:best=step->pgd:steps=5,best=step", "smoke composite"}};
  } else {
    cases = {
        {"pgd:steps=10,best=step", "PGD10"},
        {"pgd:steps=20,best=step", "PGD20"},
        {"pgd:steps=40,best=step", "PGD40"},
        {"pgd:steps=10,restarts=3,best=step", "PGD10 x3 restarts"},
        {"fgsm:best=step->pgd:steps=20,best=step", "composite fgsm->pgd"},
    };
  }

  char shape[64];
  std::snprintf(shape, sizeof(shape), "%lldx%lldx%lldx%lld",
                static_cast<long long>(samples),
                static_cast<long long>(data.test.channels()),
                static_cast<long long>(data.test.height()),
                static_cast<long long>(data.test.width()));

  std::printf("=== attack engine A/B: full batches vs active-set scheduling "
              "(%lld examples) ===\n",
              static_cast<long long>(samples));
  Table table({"attack", "full (ms)", "active (ms)", "speedup", "robust %",
               "acc same"});
  JsonReporter reporter(
      smoke ? "BENCH_smoke_attacks.json"
            : env::get_string("IBRAR_BENCH_OUT", "BENCH_pr3.json"));
  bool ok = true;
  for (const auto& c : cases) {
    // Composite stages inherit the scheduling knob per stage.
    std::string with_knob;
    std::size_t pos = 0;
    while (true) {
      const auto cut = c.base_spec.find("->", pos);
      const auto stage_end = cut == std::string::npos ? c.base_spec.size() : cut;
      const std::string stage = c.base_spec.substr(pos, stage_end - pos);
      with_knob += stage;
      with_knob += stage.find(':') == std::string::npos ? ":active_set=1"
                                                        : ",active_set=1";
      if (cut == std::string::npos) break;
      with_knob += "->";
      pos = cut + 2;
    }

    const auto full = run_spec(*model, data.test, c.base_spec, batch, samples);
    const auto active = run_spec(*model, data.test, with_knob, batch, samples);
    const bool acc_same = full.acc == active.acc;
    ok = ok && acc_same;
    const double speedup =
        active.seconds > 0 ? full.seconds / active.seconds : 0.0;

    BenchRecord full_rec;
    full_rec.kernel = c.base_spec;
    full_rec.shape = shape;
    full_rec.ns_per_op = samples > 0 ? full.seconds * 1e9 / samples : 0.0;
    full_rec.threads = 1;
    full_rec.checksum = full.acc;
    reporter.add(full_rec);

    BenchRecord active_rec = full_rec;
    active_rec.kernel = c.base_spec + "+active_set";
    active_rec.ns_per_op = samples > 0 ? active.seconds * 1e9 / samples : 0.0;
    active_rec.checksum = active.acc;
    active_rec.speedup_vs_naive = speedup;
    active_rec.bit_identical = acc_same;
    reporter.add(active_rec);

    char f_ms[32], a_ms[32], sp[32], acc[32];
    std::snprintf(f_ms, sizeof(f_ms), "%.1f", full.seconds * 1e3);
    std::snprintf(a_ms, sizeof(a_ms), "%.1f", active.seconds * 1e3);
    std::snprintf(sp, sizeof(sp), "%.2fx", speedup);
    std::snprintf(acc, sizeof(acc), "%.2f", 100 * active.acc);
    table.add_row({std::string(c.note), f_ms, a_ms, sp, acc,
                   acc_same ? "yes" : "NO"});
  }
  table.print();
  reporter.write();
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: active-set scheduling changed robust accuracy\n");
    return 1;
  }
  return 0;
}
