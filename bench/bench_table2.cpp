// Table 2 reproduction: the Table 1 protocol on CIFAR-10 with ResNet-18 and
// CIFAR-100 with WideResNet-28-10.

#include "common.hpp"

using namespace ibrar;
using namespace ibrar::bench;

int main() {
  print_header("Table 2: adversarial training +/- IB-RAR (ResNet-18 / WRN)");
  const auto s = default_scale();

  const std::vector<PaperRow> resnet_rows = {
      {"PGD", false, {75.05, 45.21, 74.09, 48.60, 42.26, 49.71}},
      {"PGD", true, {75.10, 45.55, 74.10, 48.83, 42.74, 50.03}},
      {"TRADES", false, {73.04, 45.91, 72.16, 48.51, 42.59, 49.92}},
      {"TRADES", true, {73.07, 46.13, 72.16, 48.85, 42.74, 50.09}},
      {"MART", false, {72.96, 46.17, 72.00, 49.19, 41.62, 50.34}},
      {"MART", true, {76.85, 48.92, 75.78, 52.52, 45.01, 54.72}},
  };
  run_attack_table("CIFAR-10 by ResNet-18 (synth-cifar10)", "synth-cifar10",
                   "resnet18", resnet_rows, s);

  const std::vector<PaperRow> wrn_rows = {
      {"PGD", false, {39.88, 9.74, 13.66, 16.85, 10.28, 14.53}},
      {"PGD", true, {37.68, 16.60, 15.98, 19.44, 14.85, 19.48}},
      {"TRADES", false, {39.38, 10.44, 14.69, 17.60, 10.42, 15.38}},
      {"TRADES", true, {36.41, 19.18, 16.67, 20.69, 16.61, 21.95}},
      {"MART", false, {39.91, 12.30, 14.29, 17.85, 11.73, 16.57}},
      {"MART", true, {40.65, 23.44, 17.96, 24.46, 19.24, 26.41}},
  };
  run_attack_table("CIFAR-100 by WRN-28-10 (synth-cifar100)", "synth-cifar100",
                   "wrn28", wrn_rows, s);
  return 0;
}
