// Figure 6 reproduction: sensitivity to the regularizer weights. Sweep beta
// (with alpha = 0.1 * beta, the paper's coupling) for
//   (a) PGD adversarial training of VGG16 on CIFAR-10, evaluated by
//       PGD / CW / FGSM;
//   (b) TRADES training of ResNet-18 on CIFAR-10, evaluated by
//       PGD / FAB / FGSM.
//
// Expected shape (paper): robustness has an interior optimum in beta; very
// large beta costs accuracy, beta = 0 loses the IB benefit.

#include "common.hpp"

using namespace ibrar;
using namespace ibrar::bench;

namespace {

void sweep(JsonReporter& reporter, const char* title,
           const std::string& model_name, const std::string& base,
           const std::vector<double>& betas, const data::SyntheticData& data,
           const Scale& s, const std::vector<const char*>& attack_names) {
  models::ModelSpec spec;
  spec.name = model_name;
  spec.num_classes = data.train.num_classes;

  std::vector<std::string> header = {"beta (alpha=4*beta)"};
  for (const auto* a : attack_names) header.push_back(a);
  Table table(header);
  Stopwatch sw;
  for (const auto beta : betas) {
    core::MILossConfig mi = default_mi();
    mi.beta = static_cast<float>(beta);
    // Paper couples alpha = 0.1*beta at its HSIC scale; our calibration
    // (see EXPERIMENTS.md) puts the useful regime at alpha = 4*beta.
    mi.alpha = static_cast<float>(
        env::get_double("IBRAR_FIG6_ALPHA_RATIO", 4.0) * beta);
    auto model = train_method(base, /*ibrar=*/true, spec, data, s, 42, nullptr,
                              mi);
    std::vector<std::string> row = {Table::num(beta, 3)};
    for (const auto* a : attack_names) {
      attacks::AttackConfig c;
      double acc = 0;
      if (std::string(a) == "PGD") {
        c.steps = s.attack_steps;
        attacks::PGD atk(c);
        acc = train::evaluate_adversarial(*model, data.test, atk, s.batch,
                                          s.eval_samples);
      } else if (std::string(a) == "CW") {
        c.steps = s.cw_steps;
        attacks::CW atk(c);
        acc = train::evaluate_adversarial(*model, data.test, atk, s.batch,
                                          s.eval_samples);
      } else if (std::string(a) == "FAB") {
        c.steps = s.fab_steps;
        attacks::FAB atk(c);
        acc = train::evaluate_adversarial(*model, data.test, atk, s.batch,
                                          s.eval_samples);
      } else {
        attacks::FGSM atk(c);
        acc = train::evaluate_adversarial(*model, data.test, atk, s.batch,
                                          s.eval_samples);
      }
      row.push_back(Table::num(100 * acc, 2));
      BenchRecord rec;
      rec.kernel = std::string("fig6/") + title + "/" + a;
      rec.shape = "beta=" + Table::num(beta, 3);
      rec.checksum = acc;
      reporter.add(rec);
    }
    table.add_row(std::move(row));
    std::fprintf(stderr, "[bench] fig6 %s beta=%.3f done (%.1fs)\n", title,
                 beta, sw.reset());
  }
  std::printf("-- %s --\n", title);
  table.print();
  std::printf("\n");
}

}  // namespace

int main() {
  print_header("Figure 6: alpha/beta sensitivity sweep");
  const auto s = default_scale();
  const auto data = data::make_dataset("synth-cifar10", s.train_size,
                                       s.test_size);

  const bool paper_profile = env::profile() == env::Profile::kPaper;
  const std::vector<double> betas =
      paper_profile
          ? std::vector<double>{4.0, 2.0, 1.0, 0.5, 0.3, 0.15, 0.1, 0.06, 0.02, 0.0}
          : std::vector<double>{2.0, 0.5, 0.1, 0.0};

  JsonReporter reporter(env::get_string("IBRAR_BENCH_OUT", "BENCH_fig6.json"));
  sweep(reporter, "(a) PGD-AT, VGG16, synth-cifar10", "vgg16", "PGD", betas,
        data, s, {"PGD", "CW", "FGSM"});
  sweep(reporter, "(b) TRADES, ResNet-18, synth-cifar10", "resnet18", "TRADES",
        betas, data, s, {"PGD", "FAB", "FGSM"});
  reporter.write();
  return 0;
}
