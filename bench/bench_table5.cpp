// Table 5 reproduction: adversarial confusion tendency. Generate PGD
// adversarial examples over the test set of the synthetic CIFAR-10 and count,
// per true class, the top-4 classes the (CE-trained) network predicts.
//
// Expected shape (paper): confusions are bidirectional between the similar
// class pairs the generator plants (car<->truck, cat<->dog, plane<->ship...),
// because shared features make those boundaries the cheapest to cross.

#include "common.hpp"
#include "train/metrics.hpp"

using namespace ibrar;
using namespace ibrar::bench;

int main() {
  print_header("Table 5: adversarial classification tendency (synth-cifar10)");
  auto s = default_scale();
  // This experiment needs per-class counts, so attack the whole test set.
  s.eval_samples = s.test_size;

  const auto data = data::make_dataset("synth-cifar10", s.train_size,
                                       s.test_size);
  models::ModelSpec spec;
  spec.name = "vgg16";
  auto model = train_method("CE", false, spec, data, s);

  attacks::AttackConfig pc;
  pc.steps = s.attack_steps;
  attacks::PGD pgd(pc);
  const auto pred = train::adversarial_predictions(*model, data.test, pgd,
                                                   s.batch, s.eval_samples);
  std::vector<std::int64_t> truth(data.test.labels.begin(),
                                  data.test.labels.begin() + pred.size());
  const auto counts =
      train::confusion_counts(pred, truth, data.test.num_classes);
  const auto top = train::top_confusions(counts, 4);

  // Paper's headline pairs to check for bidirectional confusion.
  std::printf("Paper's strongest pairs: car<->truck, cat<->dog, plane<->bird/"
              "ship (bidirectional tendency expected)\n\n");
  Table table({"Target class", "Top confusions (class-count)"});
  for (std::size_t t = 0; t < top.size(); ++t) {
    std::string row;
    for (const auto& [cls, cnt] : top[t]) {
      if (cnt == 0) continue;
      row += data.test.class_names[static_cast<std::size_t>(cls)] + "-" +
             std::to_string(cnt) + " ";
    }
    table.add_row({data.test.class_names[t], row});
  }
  table.print();

  // Quantify bidirectionality on the planted pairs.
  const std::vector<std::pair<std::int64_t, std::int64_t>> pairs = {
      {1, 9}, {3, 5}, {0, 8}};
  std::printf("\nPlanted-pair confusion counts (a->b / b->a):\n");
  for (const auto& [a, b] : pairs) {
    std::printf("  %s<->%s : %lld / %lld\n", data.test.class_names[a].c_str(),
                data.test.class_names[b].c_str(),
                static_cast<long long>(counts[a][b]),
                static_cast<long long>(counts[b][a]));
  }
  return 0;
}
