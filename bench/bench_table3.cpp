// Table 3 reproduction: per-layer IB probes on VGG16 / CIFAR-10 without
// adversarial training. One network is trained per hidden layer with the MI
// loss restricted to that layer; PGD accuracy identifies the robust layers.
// Then "All Layers" vs "Rob. Layers" IB-RAR models are compared.
//
// Expected shape (paper): robustness concentrates in the last conv block and
// the FC layers; Rob. Layers > All Layers > any single layer.

#include "common.hpp"
#include "core/robust_layers.hpp"

using namespace ibrar;
using namespace ibrar::bench;

int main() {
  print_header("Table 3: robust-layer discovery (VGG16, synth-cifar10)");
  const auto s = default_scale();
  const auto data = data::make_dataset("synth-cifar10", s.train_size, s.test_size);

  models::ModelSpec spec;
  spec.name = "vgg16";

  core::RobustLayerConfig cfg;
  cfg.train = train_config(s);
  cfg.eval_attack.steps = s.attack_steps;
  cfg.eval_samples = s.eval_samples;
  core::RobustLayerSelector selector(
      [&](Rng& rng) { return models::make_model(spec, rng); }, cfg);
  const auto report = selector.select(data.train, data.test);

  // Paper reference values (Table 3; adv acc / test acc under PGD).
  const std::vector<std::pair<double, double>> paper = {
      {0.04, 89.32}, {0.05, 90.17}, {0.02, 90.53}, {0.01, 89.66},
      {8.25, 89.58}, {9.85, 91.04}, {3.27, 90.97}};

  Table table({"Layer", "Adv. acc", "Test acc", "Robust?"});
  for (std::size_t i = 0; i < report.per_layer.size(); ++i) {
    const auto& r = report.per_layer[i];
    const double ref_adv = i < paper.size() ? paper[i].first : -1;
    const double ref_clean = i < paper.size() ? paper[i].second : -1;
    table.add_row({r.layer, pct_vs(r.adv_acc, ref_adv),
                   pct_vs(r.test_acc, ref_clean), r.robust ? "yes" : "no"});
  }

  // All-layers and robust-layers IB-RAR models (the table's last two rows).
  {
    auto all = train_method("plain", true, spec, data, s, 42, nullptr,
                            default_mi(core::LayerSelection::kAll));
    const auto r = eval_all_attacks(*all, data.test, s);
    table.add_row({"All Layers", pct_vs(r.pgd, 25.61), pct_vs(r.natural, 91.96),
                   "-"});
  }
  {
    core::MILossConfig mi = default_mi(core::LayerSelection::kExplicit);
    mi.layers = report.robust_layers;
    auto rob = train_method("plain", true, spec, data, s, 42, nullptr, mi);
    const auto r = eval_all_attacks(*rob, data.test, s);
    table.add_row({"Rob. Layers", pct_vs(r.pgd, 35.86), pct_vs(r.natural, 90.97),
                   "-"});
  }
  table.print();
  std::printf("\nDiscovered robust layers:");
  for (const auto& l : report.robust_layers) std::printf(" %s", l.c_str());
  std::printf("\n(paper: conv_block5, fc1, fc2)\n");
  return 0;
}
