// bench_serve — closed- and open-loop load generators for the serving stack.
//
// Closed loop: sweeps concurrent closed-loop clients x batch deadline over
// the dynamic micro-batching server and A/Bs it against batch=1 serial
// serving, then scales worker threads (workers = 1/2/4, telemetry ON — the
// combination the const-forward refactor made legal). Open loop: Poisson
// arrivals at a fixed offered rate through the TCP front-end (serve/net),
// the latency-under-load methodology closed-loop clients cannot provide
// (they self-throttle, hiding queueing delay). Hard gates:
//
//   * bit-identity: every request's logits through the batched server — any
//     worker count, telemetry on or off — are memcmp-equal to the batch=1
//     server's logits for the same input (the determinism contract of
//     serve/batcher.hpp and serve/model_registry.hpp). The batch=1 baseline
//     is a same-seed model published with prepack=false (the layer-by-layer
//     eval path), so this gate also pins the fused conv plans (tensor/
//     conv_eval) to the reference numerics end-to-end;
//   * backpressure contract: under a flood into a tiny queue, rejects carry
//     kBusyRetryAfter with a clamped retry-after hint (the legacy hint-less
//     kRejectedQueueFull never appears with busy_on_full on), every accepted
//     request is served, and accepted + rejected == offered;
//   * reply-cache contract: over a fixed-seed duplicate-heavy schedule the
//     cache-on server's logits are memcmp-equal per request to a cache-off
//     run of the same schedule, hits == duplicate count and misses ==
//     distinct count exactly, and (full mode) vgg16 at 90% duplicates is
//     >= 2x the cache-off throughput;
//   * open-loop accounting: every sent request gets exactly one reply
//     (served or rejected-with-status) through the socket; the saturation
//     row additionally requires every reject to be kBusyRetryAfter with a
//     usable hint.
//
// Any gate failing exits nonzero (this is the bench_serve_smoke CTest
// target in --smoke mode; --cache-smoke runs just the reply-cache sweep for
// the bench_serve_cache_smoke target). Argmax accuracy over a labeled test
// set is recorded for both modes; bit-identity makes them equal by
// construction, and the gate checks it anyway.
//
// JSON rows (ibrar-bench-v1, default BENCH_pr9.json / IBRAR_BENCH_OUT):
//   kernel "serve/serial|batched|workers|telemetry|openloop", shape
//   "clients=..,deadline_us=..,max_batch=..[,workers=..|offered_rps=..]",
//   ns_per_op = mean ns/request, gflops = analytic model FLOPs per request
//   divided by measured ns/request, checksum = p99 ms, speedup_vs_naive =
//   throughput vs the serial row, bit_identical = gate, plus latency
//   percentiles as extra fields p50_ms/p95_ms/p99_ms (client-observed,
//   timed section only; open-loop rows also carry offered_rps/achieved_rps).
//   Open-loop latencies additionally stream into the process-global
//   obs::registry() histogram serve.openloop.latency_ns.
//
// Every timed configuration is preceded by an untimed warm-up pass through
// the same server (first-touch page faults, pool spin-up, branch warm-up),
// so the recorded percentiles measure steady state rather than start-up.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "models/mlp.hpp"
#include "obs/metrics.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/model_registry.hpp"
#include "serve/net/client.hpp"
#include "serve/net/listener.hpp"
#include "serve/server.hpp"

using namespace ibrar;
using namespace ibrar::bench;

namespace {

struct LoadResult {
  double seconds = 0.0;
  double throughput = 0.0;   ///< requests / s
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double accuracy = 0.0;     ///< argmax == label over the served set
  std::uint64_t max_batch_observed = 0;
};

/// Drive `clients` closed-loop client threads over the staged rows: client c
/// owns requests c, c+clients, c+2*clients, ... and submits its next request
/// the moment the previous reply lands. Optionally collects each request's
/// logits into `logits_out` for the bit-identity gate. A `warmup`-request
/// untimed pass (same clients, same rows) runs first so the timed section
/// measures steady state.
LoadResult run_closed_loop(serve::Server& server, const data::Dataset& ds,
                           const std::vector<Tensor>& rows,
                           std::int64_t total_requests, std::int64_t clients,
                           std::vector<Tensor>* logits_out = nullptr,
                           std::int64_t warmup = 0) {
  const std::int64_t n = static_cast<std::int64_t>(rows.size());
  if (warmup > 0) {
    std::vector<std::thread> warm;
    warm.reserve(static_cast<std::size_t>(clients));
    for (std::int64_t c = 0; c < clients; ++c) {
      warm.emplace_back([&, c] {
        for (std::int64_t r = c; r < warmup; r += clients) {
          server.submit(rows[static_cast<std::size_t>(r % n)]).get();
        }
      });
    }
    for (auto& t : warm) t.join();
  }
  std::vector<std::vector<double>> lat(static_cast<std::size_t>(clients));
  std::vector<std::int64_t> correct(static_cast<std::size_t>(clients), 0);
  std::vector<std::uint64_t> served(static_cast<std::size_t>(clients), 0);
  if (logits_out != nullptr) {
    logits_out->assign(static_cast<std::size_t>(total_requests), Tensor());
  }

  Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (std::int64_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (std::int64_t r = c; r < total_requests; r += clients) {
        const std::int64_t row = r % n;
        Stopwatch sw;
        auto reply =
            server.submit(rows[static_cast<std::size_t>(row)]).get();
        lat[static_cast<std::size_t>(c)].push_back(sw.seconds() * 1e3);
        if (!reply.ok()) continue;  // rejects are counted by server stats
        ++served[static_cast<std::size_t>(c)];
        if (reply.argmax == ds.labels[static_cast<std::size_t>(row)]) {
          ++correct[static_cast<std::size_t>(c)];
        }
        if (logits_out != nullptr) {
          (*logits_out)[static_cast<std::size_t>(r)] = std::move(reply.logits);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  LoadResult res;
  res.seconds = wall.seconds();
  std::vector<double> all;
  std::uint64_t ok = 0;
  std::int64_t hits = 0;
  for (std::int64_t c = 0; c < clients; ++c) {
    const auto& l = lat[static_cast<std::size_t>(c)];
    all.insert(all.end(), l.begin(), l.end());
    ok += served[static_cast<std::size_t>(c)];
    hits += correct[static_cast<std::size_t>(c)];
  }
  res.throughput = static_cast<double>(total_requests) / res.seconds;
  res.p50_ms = percentile(all, 0.50);
  res.p95_ms = percentile(all, 0.95);
  res.p99_ms = percentile(all, 0.99);
  res.accuracy = ok > 0 ? static_cast<double>(hits) / static_cast<double>(ok)
                        : 0.0;
  res.max_batch_observed = server.stats().max_batch_observed;
  return res;
}

/// Analytic forward FLOPs for one request (one image), counting every
/// multiply-add in the conv/linear kernels as 2 flops. This is the numerator
/// that turns measured ns/request into real GFLOP/s for the serve/* rows
/// (the previous schema reported 0.000 there).
double flops_per_request(const std::string& label, const Shape& chw,
                         std::int64_t classes) {
  const double in =
      static_cast<double>(chw[0] * chw[1] * chw[2]);
  if (label == "mlp256") {
    return 2.0 * (in * 256.0 + 256.0 * 256.0 + 256.0 * classes);
  }
  // vgg16 (models/vgg.hpp defaults): 5 blocks x 2 convs of 3x3 pad-1, pool
  // after blocks 1-3, then flatten -> 64 -> 64 -> classes linears.
  const std::vector<std::int64_t> ch = {8, 12, 16, 24, 24};
  double fl = 0.0;
  double c = static_cast<double>(chw[0]);
  double s = static_cast<double>(chw[1]);
  for (std::size_t b = 0; b < ch.size(); ++b) {
    for (int conv = 0; conv < 2; ++conv) {
      fl += 2.0 * s * s * static_cast<double>(ch[b]) * c * 9.0;
      c = static_cast<double>(ch[b]);
    }
    if (b < 3) s /= 2.0;
  }
  fl += 2.0 * (c * s * s * 64.0 + 64.0 * 64.0 + 64.0 * classes);
  return fl;
}

void add_row(JsonReporter& rep, const std::string& kernel,
             const std::string& shape, const LoadResult& r, double speedup,
             bool bit_identical, double flops = 0.0) {
  BenchRecord rec;
  rec.kernel = kernel;
  rec.shape = shape;
  rec.ns_per_op = 1e9 / r.throughput;  // mean ns per request end-to-end
  // flops/request divided by ns/request is GFLOP/s of the whole pipeline.
  rec.gflops = rec.ns_per_op > 0.0 ? flops / rec.ns_per_op : 0.0;
  rec.threads = runtime::num_threads();
  rec.checksum = r.p99_ms;             // headline latency metric
  rec.speedup_vs_naive = speedup;
  rec.bit_identical = bit_identical;
  rec.extra = {{"p50_ms", r.p50_ms}, {"p95_ms", r.p95_ms},
               {"p99_ms", r.p99_ms}};
  rep.add(rec);
}

struct OpenLoopResult {
  double offered_rps = 0.0;   ///< target Poisson arrival rate
  double achieved_rps = 0.0;  ///< replies per wall second actually observed
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;     ///< all non-ok replies (busy included)
  std::uint64_t busy = 0;         ///< the kBusyRetryAfter subset of rejected
  std::uint64_t busy_hinted = 0;  ///< busy replies whose hint is in [1, 5000]
  bool accounted = false;  ///< every sent request got exactly one reply
};

/// Open-loop (Poisson) load through the TCP front-end: the sender fires
/// requests at exponential inter-arrival times REGARDLESS of how fast
/// replies come back — the defining property open-loop has and closed-loop
/// lacks (a closed-loop client stalls with the server, so measured latency
/// under saturation stays flat instead of exploding). A receiver thread
/// drains replies off the same pipelined connection and stamps per-request
/// latency by correlation id. Arrival times are pre-drawn from a fixed seed,
/// so two runs at the same rate offer identical traffic.
OpenLoopResult run_open_loop(std::uint16_t port, const std::vector<Tensor>& rows,
                             double offered_rps, std::int64_t total) {
  using clock = std::chrono::steady_clock;
  serve::net::Client client("127.0.0.1", port);
  const std::int64_t n = static_cast<std::int64_t>(rows.size());

  std::mt19937_64 rng(0x9e3779b97f4a7c15ull);
  std::exponential_distribution<double> gap(offered_rps);
  std::vector<double> arrival_s(static_cast<std::size_t>(total));
  double t = 0.0;
  for (auto& a : arrival_s) {
    t += gap(rng);
    a = t;
  }

  std::vector<clock::time_point> sent_at(static_cast<std::size_t>(total));
  OpenLoopResult res;
  res.offered_rps = offered_rps;
  res.sent = static_cast<std::uint64_t>(total);

  auto& h_latency = obs::registry().histogram("serve.openloop.latency_ns");
  std::vector<double> lat_ms;
  lat_ms.reserve(static_cast<std::size_t>(total));
  clock::time_point last_reply{};
  std::thread receiver([&] {
    for (std::int64_t i = 0; i < total; ++i) {
      const auto reply = client.recv();
      const auto now = clock::now();
      last_reply = now;
      if (reply.id >= static_cast<std::uint64_t>(total)) return;  // corrupt
      const double ns = static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              now - sent_at[static_cast<std::size_t>(reply.id)])
              .count());
      if (reply.ok()) {
        ++res.ok;
        lat_ms.push_back(ns / 1e6);
        h_latency.observe(ns);
      } else {
        ++res.rejected;
        if (reply.status == serve::net::WireStatus::kBusyRetryAfter) {
          ++res.busy;
          if (reply.retry_after_ms >= 1 && reply.retry_after_ms <= 5000) {
            ++res.busy_hinted;
          }
        }
      }
    }
  });

  const auto start = clock::now();
  for (std::int64_t i = 0; i < total; ++i) {
    const auto due =
        start + std::chrono::duration_cast<clock::duration>(
                    std::chrono::duration<double>(
                        arrival_s[static_cast<std::size_t>(i)]));
    std::this_thread::sleep_until(due);  // pace the offered load, not the RTT
    sent_at[static_cast<std::size_t>(i)] = clock::now();
    client.send(rows[static_cast<std::size_t>(i % n)]);
  }
  receiver.join();

  const double wall =
      std::chrono::duration<double>(last_reply - start).count();
  res.achieved_rps =
      wall > 0.0 ? static_cast<double>(res.ok + res.rejected) / wall : 0.0;
  res.p50_ms = percentile(lat_ms, 0.50);
  res.p95_ms = percentile(lat_ms, 0.95);
  res.p99_ms = percentile(lat_ms, 0.99);
  res.accounted = res.ok + res.rejected == res.sent;
  return res;
}

/// Fixed-seed duplicate-traffic schedule: entry i names the row index request
/// i submits. A fresh row is drawn while the pool lasts with probability
/// 1 - dup_fraction; otherwise a uniformly random ALREADY-USED row repeats.
/// The exact duplicate count (total - distinct) is therefore known up front,
/// and because the reply cache computes each distinct row exactly once (the
/// first occurrence leads, repeats hit the entry or join it in flight —
/// either way counted as hits), cache hits must equal it EXACTLY no matter
/// how client threads interleave.
std::vector<std::int64_t> make_dup_schedule(std::int64_t total,
                                            std::int64_t pool,
                                            double dup_fraction,
                                            std::uint64_t seed,
                                            std::int64_t* distinct_out) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::vector<std::int64_t> schedule;
  schedule.reserve(static_cast<std::size_t>(total));
  std::int64_t distinct = 0;
  for (std::int64_t i = 0; i < total; ++i) {
    const bool fresh =
        distinct == 0 || (distinct < pool && coin(rng) >= dup_fraction);
    if (fresh) {
      schedule.push_back(distinct++);
    } else {
      schedule.push_back(static_cast<std::int64_t>(
          rng() % static_cast<std::uint64_t>(distinct)));
    }
  }
  *distinct_out = distinct;
  return schedule;
}

/// Closed-loop clients over an explicit schedule (request r -> row
/// schedule[r]), collecting per-request logits for the cache bit gate. No
/// warm-up pass: warming would pre-populate the cache and corrupt the exact
/// hit/miss accounting, and the cache-off reference runs the identical cold
/// schedule so the throughput comparison stays symmetric.
LoadResult run_schedule_loop(serve::Server& server,
                             const std::vector<Tensor>& rows,
                             const std::vector<std::int64_t>& schedule,
                             std::int64_t clients,
                             std::vector<Tensor>& logits_out) {
  const auto total = static_cast<std::int64_t>(schedule.size());
  logits_out.assign(static_cast<std::size_t>(total), Tensor());
  Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (std::int64_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (std::int64_t r = c; r < total; r += clients) {
        const auto row =
            static_cast<std::size_t>(schedule[static_cast<std::size_t>(r)]);
        auto reply = server.submit(rows[row]).get();
        if (reply.ok()) {
          logits_out[static_cast<std::size_t>(r)] = std::move(reply.logits);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  LoadResult res;
  res.seconds = wall.seconds();
  res.throughput = static_cast<double>(total) / res.seconds;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool cache_smoke = false;  // reply-cache sweep only (bench_serve_cache_smoke)
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--cache-smoke") == 0) cache_smoke = true;
  }
  const bool tiny = smoke || cache_smoke;  // tiny shapes, mlp only
  const bool full_sections = !cache_smoke;
  print_header(cache_smoke
                   ? "bench_serve --cache-smoke: reply-cache gates only"
                   : (smoke ? "bench_serve --smoke: contract gates, tiny load"
                            : "bench_serve: micro-batching A/B + load sweep"));

  JsonReporter reporter(env::get_string(
      "IBRAR_BENCH_OUT", cache_smoke
                             ? "BENCH_smoke_serve_cache.json"
                             : (smoke ? "BENCH_smoke_serve.json"
                                      : "BENCH_pr9.json")));

  // Untrained-but-published weights are fine for a serving perf A/B; accuracy
  // equality between modes is what matters, not its absolute level. Smoke
  // keeps everything tiny so the CTest target runs in seconds.
  const std::int64_t test_size = tiny ? 64 : 256;
  const std::int64_t total = tiny ? 128 : 1024;
  const std::int64_t warmup = tiny ? 16 : 64;
  const auto data = data::make_dataset("synth-cifar10", /*train=*/8, test_size);
  const auto rows = stage_rows(data.test);
  const Shape chw = {data.test.channels(), data.test.height(),
                     data.test.width()};

  // Two models under test: the dense classifier tier (a 256-wide MLP head,
  // where micro-batching converts per-request weight streaming into cached
  // reuse — the canonical batching win) and the full MiniVGG conv stack
  // (compute-linear per row on one core, so batching buys mostly overhead
  // amortization there; both are reported so the record shows where the win
  // comes from).
  struct ModelUnderTest {
    std::string label;
    models::TapClassifierPtr model;      ///< published normally (fused eval)
    models::TapClassifierPtr reference;  ///< same seed, layer-by-layer path
  };
  // Each entry is a PAIR of same-seed instances (bit-identical weights): the
  // serving registry publishes one with the default snapshot-time prepack
  // (fused conv plans), while the serial-baseline registry publishes the
  // other with prepack=false, pinning it to the layer-by-layer eval. The
  // batched-vs-serial speedups below therefore include the fused-kernel win,
  // and the bit gates check fused-vs-reference on every single request.
  std::vector<ModelUnderTest> models_under_test;
  {
    Rng rng_a(42), rng_b(42);
    models::MLPConfig mcfg;
    mcfg.in_features = chw[0] * chw[1] * chw[2];
    mcfg.hidden = {256, 256};
    mcfg.num_classes = data.test.num_classes;
    models_under_test.push_back(
        {"mlp256", std::make_shared<models::MLP>(mcfg, rng_a),
         std::make_shared<models::MLP>(mcfg, rng_b)});
  }
  if (!tiny) {
    models::ModelSpec spec;
    spec.name = "vgg16";
    spec.num_classes = data.test.num_classes;
    spec.image_size = chw[1];
    spec.in_channels = chw[0];
    Rng rng_a(43), rng_b(43);
    models_under_test.push_back({"vgg16", models::make_model(spec, rng_a),
                                 models::make_model(spec, rng_b)});
  }

  struct SweepPoint {
    std::int64_t clients;
    std::int64_t max_batch;
    std::int64_t deadline_us;
  };
  const std::vector<SweepPoint> sweep =
      smoke ? std::vector<SweepPoint>{{4, 4, 2000}}
            : std::vector<SweepPoint>{{4, 4, 500},
                                      {4, 4, 2000},
                                      {8, 8, 2000},
                                      {16, 16, 2000},
                                      {32, 32, 4000}};

  int failures = 0;
  double headline_speedup = 0.0;
  serve::ModelRegistry telemetry_registry;  // reuses the first model

  for (auto& mut : models_under_test) {
    const double flops = flops_per_request(mut.label, chw,
                                           data.test.num_classes);
    serve::ModelRegistry registry;
    registry.publish(mut.model, chw, mut.label);
    serve::ModelRegistry ref_registry;  // layer-by-layer serial baseline
    ref_registry.publish(mut.reference, chw, mut.label + "-ref",
                         /*prepack=*/false);
    if (&mut == &models_under_test.front()) {
      telemetry_registry.publish(mut.model, chw, mut.label);
    }

    if (full_sections) {
    // ---- batch=1 serial baseline (reference eval path) ---------------------
    serve::ServeConfig serial_cfg;
    serial_cfg.max_batch = 1;
    serial_cfg.deadline_us = 0;
    serial_cfg.queue_capacity = 2048;
    std::vector<Tensor> serial_logits;
    LoadResult serial;
    {
      serve::Server server(ref_registry, serial_cfg);
      serial = run_closed_loop(server, data.test, rows, total, /*clients=*/1,
                               &serial_logits, warmup);
    }
    std::printf("  %-7s serial batch=1                             : %9.1f "
                "req/s  p50 %6.2f ms  p95 %6.2f ms  p99 %6.2f ms  acc %.3f\n",
                mut.label.c_str(), serial.throughput, serial.p50_ms,
                serial.p95_ms, serial.p99_ms, serial.accuracy);
    add_row(reporter, "serve/" + mut.label + "/serial", "clients=1,max_batch=1",
            serial, 1.0, true, flops);

    // ---- dynamic micro-batching sweep: clients x deadline ------------------
    for (const auto& pt : sweep) {
      serve::ServeConfig cfg;
      cfg.max_batch = pt.max_batch;
      cfg.deadline_us = pt.deadline_us;
      cfg.queue_capacity = 2048;
      std::vector<Tensor> logits;
      LoadResult r;
      {
        serve::Server server(registry, cfg);
        r = run_closed_loop(server, data.test, rows, total, pt.clients,
                            &logits, warmup);
      }
      // Bit-identity gate: every request must match the serial run exactly.
      bool bits_ok = logits.size() == serial_logits.size();
      for (std::size_t i = 0; bits_ok && i < logits.size(); ++i) {
        bits_ok = tensor_bits_equal(logits[i], serial_logits[i]);
      }
      const double speedup = r.throughput / serial.throughput;
      headline_speedup = std::max(headline_speedup, speedup);
      const std::string shape = "clients=" + std::to_string(pt.clients) +
                                ",max_batch=" + std::to_string(pt.max_batch) +
                                ",deadline_us=" +
                                std::to_string(pt.deadline_us);
      std::printf("  %-7s batched %-34s: %9.1f req/s  p50 %6.2f ms  p95 %6.2f "
                  "ms  p99 %6.2f ms  acc %.3f  maxB %2llu  speedup %5.2fx  "
                  "bits %s\n",
                  mut.label.c_str(), shape.c_str(), r.throughput, r.p50_ms,
                  r.p95_ms, r.p99_ms, r.accuracy,
                  static_cast<unsigned long long>(r.max_batch_observed),
                  speedup, bits_ok ? "OK" : "MISMATCH");
      add_row(reporter, "serve/" + mut.label + "/batched", shape, r, speedup,
              bits_ok, flops);
      if (!bits_ok) {
        std::fprintf(stderr, "FAIL: %s batched logits differ from batch=1 "
                     "(%s)\n", mut.label.c_str(), shape.c_str());
        ++failures;
      }
      if (r.accuracy != serial.accuracy) {
        std::fprintf(stderr,
                     "FAIL: %s batched accuracy %.4f != serial %.4f (%s)\n",
                     mut.label.c_str(), r.accuracy, serial.accuracy,
                     shape.c_str());
        ++failures;
      }
    }

    // ---- multi-worker scaling, telemetry ON --------------------------------
    // The combination the const-forward refactor legalized: several worker
    // threads share one immutable snapshot while the telemetry path runs
    // concurrent tap captures on it. The gate is the same as above — every
    // request's logits memcmp-equal to the batch=1 single-worker run.
    const std::vector<std::int64_t> worker_counts =
        smoke ? std::vector<std::int64_t>{2} : std::vector<std::int64_t>{1, 2, 4};
    for (const auto workers : worker_counts) {
      serve::ServeConfig cfg;
      cfg.max_batch = 8;
      cfg.deadline_us = 2000;
      cfg.queue_capacity = 2048;
      cfg.workers = workers;
      cfg.telemetry.sample_every = 8;
      cfg.telemetry.window = 16;
      std::vector<Tensor> logits;
      LoadResult r;
      {
        serve::Server server(registry, cfg);
        r = run_closed_loop(server, data.test, rows, total,
                            /*clients=*/smoke ? 8 : 16, &logits, warmup);
      }
      bool bits_ok = logits.size() == serial_logits.size();
      for (std::size_t i = 0; bits_ok && i < logits.size(); ++i) {
        bits_ok = tensor_bits_equal(logits[i], serial_logits[i]);
      }
      const double speedup = r.throughput / serial.throughput;
      const std::string shape =
          "workers=" + std::to_string(workers) +
          ",clients=" + std::to_string(smoke ? 8 : 16) +
          ",max_batch=8,deadline_us=2000,telemetry_every=8";
      std::printf("  %-7s workers=%lld telemetry on               : %9.1f "
                  "req/s  p50 %6.2f ms  p99 %6.2f ms  speedup %5.2fx  bits "
                  "%s\n",
                  mut.label.c_str(), static_cast<long long>(workers),
                  r.throughput, r.p50_ms, r.p99_ms, speedup,
                  bits_ok ? "OK" : "MISMATCH");
      add_row(reporter, "serve/" + mut.label + "/workers", shape, r, speedup,
              bits_ok, flops);
      if (!bits_ok) {
        std::fprintf(stderr,
                     "FAIL: %s workers=%lld telemetry-on logits differ from "
                     "batch=1 single-worker\n",
                     mut.label.c_str(), static_cast<long long>(workers));
        ++failures;
      }
    }
    }  // full_sections

    // ---- reply-cache duplicate-traffic sweep -------------------------------
    // The same fixed-seed schedule runs twice — cache off (the reference and
    // the speedup denominator), then cache on. Gates: per-request logits
    // memcmp-equal between the runs, hits exactly the schedule's duplicate
    // count, misses exactly its distinct count, and (full mode) vgg16 at 90%
    // duplicates at least 2x the cache-off throughput.
    {
      const std::int64_t dup_total = tiny ? 64 : 256;
      const std::int64_t pool =
          std::min(dup_total, static_cast<std::int64_t>(rows.size()));
      const std::int64_t dup_clients = 8;
      for (const double dup : {0.0, 0.5, 0.9}) {
        std::int64_t distinct = 0;
        const auto schedule = make_dup_schedule(
            dup_total, pool, dup, /*seed=*/0xcafef00d + mut.label.size(),
            &distinct);
        const std::int64_t duplicates = dup_total - distinct;

        serve::ServeConfig cfg;
        cfg.max_batch = 8;
        cfg.deadline_us = 500;
        cfg.queue_capacity = 2048;
        cfg.workers = 2;
        std::vector<Tensor> off_logits, on_logits;
        LoadResult off, on;
        {
          serve::Server server(registry, cfg);  // cache_bytes = 0: off
          off = run_schedule_loop(server, rows, schedule, dup_clients,
                                  off_logits);
        }
        serve::ServerStats cache_stats;
        {
          cfg.cache_bytes = std::size_t{64} << 20;
          serve::Server server(registry, cfg);
          on = run_schedule_loop(server, rows, schedule, dup_clients,
                                 on_logits);
          cache_stats = server.stats();
        }

        bool bits_ok = on_logits.size() == off_logits.size();
        for (std::size_t i = 0; bits_ok && i < on_logits.size(); ++i) {
          bits_ok = tensor_bits_equal(on_logits[i], off_logits[i]);
        }
        const bool counts_ok =
            cache_stats.cache_lookups ==
                static_cast<std::uint64_t>(dup_total) &&
            cache_stats.cache_hits ==
                static_cast<std::uint64_t>(duplicates) &&
            cache_stats.cache_misses ==
                static_cast<std::uint64_t>(distinct) &&
            cache_stats.served == static_cast<std::uint64_t>(distinct);
        const double speedup = on.throughput / off.throughput;
        std::printf("  %-7s cache dup=%.1f (%3lld distinct/%3lld)        : "
                    "%9.1f req/s off  %9.1f req/s on  speedup %5.2fx  hits "
                    "%llu  bits %s  counts %s\n",
                    mut.label.c_str(), dup, static_cast<long long>(distinct),
                    static_cast<long long>(dup_total), off.throughput,
                    on.throughput, speedup,
                    static_cast<unsigned long long>(cache_stats.cache_hits),
                    bits_ok ? "OK" : "MISMATCH",
                    counts_ok ? "OK" : "WRONG");
        BenchRecord rec;
        rec.kernel = "serve/" + mut.label + "/cache";
        rec.shape = "dup=" + std::to_string(dup) +
                    ",clients=" + std::to_string(dup_clients) +
                    ",max_batch=8,deadline_us=500,workers=2";
        rec.ns_per_op = 1e9 / on.throughput;
        rec.gflops = flops / rec.ns_per_op;
        rec.threads = runtime::num_threads();
        rec.checksum = static_cast<double>(cache_stats.cache_hits);
        rec.speedup_vs_naive = speedup;  // vs the cache-off run
        rec.bit_identical = bits_ok && counts_ok;
        rec.extra = {{"hits", static_cast<double>(cache_stats.cache_hits)},
                     {"misses", static_cast<double>(cache_stats.cache_misses)},
                     {"inflight_joins",
                      static_cast<double>(cache_stats.cache_inflight_joins)},
                     {"hit_rate", static_cast<double>(cache_stats.cache_hits) /
                                      static_cast<double>(dup_total)}};
        reporter.add(rec);
        if (!bits_ok) {
          std::fprintf(stderr,
                       "FAIL: %s cached logits differ from cache-off run "
                       "(dup=%.1f)\n", mut.label.c_str(), dup);
          ++failures;
        }
        if (!counts_ok) {
          std::fprintf(
              stderr,
              "FAIL: %s cache accounting wrong at dup=%.1f: lookups %llu "
              "(want %lld) hits %llu (want %lld) misses %llu (want %lld) "
              "served %llu (want %lld)\n",
              mut.label.c_str(), dup,
              static_cast<unsigned long long>(cache_stats.cache_lookups),
              static_cast<long long>(dup_total),
              static_cast<unsigned long long>(cache_stats.cache_hits),
              static_cast<long long>(duplicates),
              static_cast<unsigned long long>(cache_stats.cache_misses),
              static_cast<long long>(distinct),
              static_cast<unsigned long long>(cache_stats.served),
              static_cast<long long>(distinct));
          ++failures;
        }
        if (!tiny && mut.label == "vgg16" && dup == 0.9 && speedup < 2.0) {
          std::fprintf(stderr,
                       "FAIL: vgg16 at 90%% duplicates sped up only %.2fx "
                       "(gate: >= 2x over cache-off)\n", speedup);
          ++failures;
        }
      }
    }
  }

  // ---- telemetry overhead row ----------------------------------------------
  if (full_sections) {
    serve::ServeConfig cfg;
    cfg.max_batch = 8;
    cfg.deadline_us = 2000;
    cfg.queue_capacity = 2048;
    cfg.telemetry.sample_every = 8;
    cfg.telemetry.window = 16;
    serve::Server server(telemetry_registry, cfg);
    const auto r = run_closed_loop(server, data.test, rows, total,
                                   /*clients=*/8, nullptr, warmup);
    const auto stats = server.stats();
    std::printf("  telemetry every 8th : %9.1f req/s  p99 %6.2f ms  sampled "
                "%llu  epochs %llu\n",
                r.throughput, r.p99_ms,
                static_cast<unsigned long long>(stats.telemetry_samples),
                static_cast<unsigned long long>(server.monitor().score_epoch()));
    add_row(reporter, "serve/telemetry",
            "clients=8,max_batch=8,deadline_us=2000,every=8", r, 0.0, true,
            flops_per_request("mlp256", chw, data.test.num_classes));
    if (stats.telemetry_samples == 0) {
      std::fprintf(stderr, "FAIL: telemetry sampled nothing at every=8\n");
      ++failures;
    }
  }

  // ---- backpressure contract under flood -----------------------------------
  if (full_sections) {
    serve::ServeConfig cfg;
    cfg.max_batch = 4;
    cfg.deadline_us = 1000;
    cfg.queue_capacity = 8;
    serve::Server server(telemetry_registry, cfg);
    const std::int64_t flood = smoke ? 64 : 256;
    const Tensor& x = rows.front();
    std::vector<std::future<serve::Reply>> futures;
    futures.reserve(static_cast<std::size_t>(flood));
    for (std::int64_t i = 0; i < flood; ++i) {
      futures.push_back(server.submit(x));
    }
    // With busy_on_full (the default) every queue-full reject must arrive as
    // kBusyRetryAfter carrying a clamped hint; the legacy hint-less
    // kRejectedQueueFull must never appear.
    std::uint64_t ok = 0, busy = 0, legacy = 0, other = 0;
    bool hints_ok = true;
    for (auto& f : futures) {
      const auto r = f.get();
      if (r.status == serve::ReplyStatus::kOk) {
        ++ok;
      } else if (r.status == serve::ReplyStatus::kBusyRetryAfter) {
        ++busy;
        hints_ok = hints_ok && r.retry_after_ms >= 1 && r.retry_after_ms <= 5000;
      } else if (r.status == serve::ReplyStatus::kRejectedQueueFull) {
        ++legacy;
      } else {
        ++other;
      }
    }
    const auto stats = server.stats();
    const bool contract_ok = other == 0 && legacy == 0 && hints_ok &&
                             ok + busy == static_cast<std::uint64_t>(flood) &&
                             stats.accepted == ok &&
                             stats.rejected_full == busy &&
                             stats.admission_busy == busy && stats.served == ok;
    std::printf("  backpressure flood   : offered %lld  served %llu  busy "
                "%llu  contract %s\n",
                static_cast<long long>(flood),
                static_cast<unsigned long long>(ok),
                static_cast<unsigned long long>(busy),
                contract_ok ? "OK" : "VIOLATED");
    BenchRecord rec;
    rec.kernel = "serve/backpressure";
    rec.shape = "flood=" + std::to_string(flood) + ",queue_cap=8";
    rec.checksum = static_cast<double>(busy);
    rec.threads = runtime::num_threads();
    rec.bit_identical = contract_ok;
    reporter.add(rec);
    if (!contract_ok) {
      std::fprintf(stderr, "FAIL: backpressure contract violated\n");
      ++failures;
    }
  }

  // ---- open-loop Poisson load through the TCP front-end --------------------
  // Offered rates are fractions of the measured closed-loop capacity, so the
  // sweep lands at comparable utilization on any machine. The low-rate rows
  // read near-pure service latency; the high-rate row shows queueing delay —
  // the tail a closed-loop client can never expose.
  if (full_sections) {
    serve::ServeConfig cfg;
    cfg.max_batch = 8;
    cfg.deadline_us = 2000;
    cfg.queue_capacity = 2048;
    cfg.workers = smoke ? 2 : 4;
    cfg.telemetry.sample_every = 8;
    cfg.telemetry.window = 16;
    serve::Server server(telemetry_registry, cfg);
    serve::net::TcpFrontend frontend(server);
    // Closed-loop capacity probe on this exact server (also the warm-up).
    const auto probe = run_closed_loop(server, data.test, rows,
                                       smoke ? 64 : 256, /*clients=*/8);
    const std::vector<double> utilization =
        smoke ? std::vector<double>{0.3} : std::vector<double>{0.25, 0.5, 0.8};
    for (const auto u : utilization) {
      const double offered = std::max(u * probe.throughput, 50.0);
      const std::int64_t n_requests = smoke ? 64 : 512;
      const auto r = run_open_loop(frontend.port(), rows, offered, n_requests);
      std::printf("  openloop %4.0f%% cap  : offered %8.1f req/s  achieved "
                  "%8.1f  p50 %6.2f ms  p95 %6.2f ms  p99 %6.2f ms  ok %llu  "
                  "rej %llu  %s\n",
                  u * 100.0, r.offered_rps, r.achieved_rps, r.p50_ms, r.p95_ms,
                  r.p99_ms, static_cast<unsigned long long>(r.ok),
                  static_cast<unsigned long long>(r.rejected),
                  r.accounted ? "accounted" : "LOST REPLIES");
      BenchRecord rec;
      rec.kernel = "serve/openloop";
      rec.shape = "offered_rps=" + std::to_string(static_cast<long long>(
                      offered)) +
                  ",workers=" + std::to_string(cfg.workers) +
                  ",max_batch=8,deadline_us=2000";
      rec.ns_per_op = r.achieved_rps > 0.0 ? 1e9 / r.achieved_rps : 0.0;
      rec.gflops = rec.ns_per_op > 0.0
                       ? flops_per_request("mlp256", chw,
                                           data.test.num_classes) /
                             rec.ns_per_op
                       : 0.0;
      rec.threads = runtime::num_threads();
      rec.checksum = r.p99_ms;
      rec.bit_identical = r.accounted;
      rec.extra = {{"p50_ms", r.p50_ms},
                   {"p95_ms", r.p95_ms},
                   {"p99_ms", r.p99_ms},
                   {"offered_rps", r.offered_rps},
                   {"achieved_rps", r.achieved_rps}};
      reporter.add(rec);
      if (!r.accounted) {
        std::fprintf(stderr,
                     "FAIL: open-loop at %.1f req/s lost replies "
                     "(sent %llu, ok %llu, rejected %llu)\n",
                     offered, static_cast<unsigned long long>(r.sent),
                     static_cast<unsigned long long>(r.ok),
                     static_cast<unsigned long long>(r.rejected));
        ++failures;
      }
    }
    frontend.stop();
  }

  // ---- open-loop saturation: busy-retry-after must dominate overload -------
  // A deliberately small queue behind an offered rate several times measured
  // capacity: the overload answer the socket sees must be kBusyRetryAfter
  // with a usable hint on EVERY reject — the legacy hint-less status would
  // force clients back to blind exponential backoff.
  if (full_sections) {
    serve::ServeConfig cfg;
    cfg.max_batch = 4;
    cfg.deadline_us = 1000;
    cfg.queue_capacity = 32;
    serve::Server server(telemetry_registry, cfg);
    serve::net::TcpFrontend frontend(server);
    const auto probe = run_closed_loop(server, data.test, rows,
                                       smoke ? 64 : 256, /*clients=*/8);
    const double offered = std::max(3.0 * probe.throughput, 200.0);
    const std::int64_t n_requests = smoke ? 96 : 512;
    const auto r = run_open_loop(frontend.port(), rows, offered, n_requests);
    const bool saturated_ok = r.accounted && r.busy > 0 &&
                              r.busy == r.rejected &&
                              r.busy_hinted == r.busy;
    std::printf("  openloop saturation  : offered %8.1f req/s  ok %llu  busy "
                "%llu (hinted %llu)  %s\n",
                r.offered_rps, static_cast<unsigned long long>(r.ok),
                static_cast<unsigned long long>(r.busy),
                static_cast<unsigned long long>(r.busy_hinted),
                saturated_ok ? "OK" : "VIOLATED");
    BenchRecord rec;
    rec.kernel = "serve/openloop_saturation";
    rec.shape = "offered_rps=" +
                std::to_string(static_cast<long long>(offered)) +
                ",queue_cap=32,max_batch=4,deadline_us=1000";
    rec.ns_per_op = r.achieved_rps > 0.0 ? 1e9 / r.achieved_rps : 0.0;
    rec.threads = runtime::num_threads();
    rec.checksum = static_cast<double>(r.busy);
    rec.bit_identical = saturated_ok;
    rec.extra = {{"p99_ms", r.p99_ms},
                 {"offered_rps", r.offered_rps},
                 {"achieved_rps", r.achieved_rps},
                 {"busy", static_cast<double>(r.busy)},
                 {"busy_hinted", static_cast<double>(r.busy_hinted)}};
    reporter.add(rec);
    if (!saturated_ok) {
      std::fprintf(stderr,
                   "FAIL: open-loop saturation overload was not all "
                   "kBusyRetryAfter-with-hint (ok %llu, rejected %llu, busy "
                   "%llu, hinted %llu, accounted %d)\n",
                   static_cast<unsigned long long>(r.ok),
                   static_cast<unsigned long long>(r.rejected),
                   static_cast<unsigned long long>(r.busy),
                   static_cast<unsigned long long>(r.busy_hinted),
                   r.accounted ? 1 : 0);
      ++failures;
    }
    frontend.stop();
  }

  reporter.write();
  if (!tiny && headline_speedup < 3.0) {
    std::fprintf(stderr,
                 "WARN: best batched speedup %.2fx is below the 3x target\n",
                 headline_speedup);
  }
  if (failures != 0) {
    std::fprintf(stderr, "bench_serve: %d gate failure(s)\n", failures);
    return 1;
  }
  std::printf("bench_serve: all gates passed (best speedup %.2fx)\n",
              headline_speedup);
  return 0;
}
