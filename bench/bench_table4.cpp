// Table 4 reproduction (ablation): remove each ingredient of IB-RAR in turn
// on VGG16 and ResNet-18 over CIFAR-10 (no adversarial training):
//   (1) L_CE                      (plain baseline)
//   (2) L                         (MI loss only, Eq. 1)
//   (3) L_CE + alpha*sum I(X,T)   (compression only -> clean acc collapses)
//   (4) L_CE - beta*sum I(Y,T)    (relevance only -> marginal gains)
//   (5) L_CE + FC                 (mask without MI loss -> no gain)
//   (6) L + FC                    (full IB-RAR)

#include "common.hpp"

using namespace ibrar;
using namespace ibrar::bench;

namespace {

struct AblationRow {
  const char* name;
  float alpha;           ///< multiplier applied to default alpha
  float beta;
  bool mi_loss;          ///< include Eq. (1) at all
  bool mask;             ///< apply the Eq. (3) mask hook
  double ref[4];         ///< paper: Natural, PGD, NIFGSM, FGSM
};

models::TapClassifierPtr train_ablation(const AblationRow& row,
                                        const models::ModelSpec& spec,
                                        const data::SyntheticData& data,
                                        const Scale& s) {
  Rng rng(42);
  auto model = models::make_model(spec, rng);
  train::ObjectivePtr obj;
  if (row.mi_loss) {
    core::MILossConfig mi = default_mi();
    mi.alpha *= row.alpha;
    mi.beta *= row.beta;
    obj = std::make_shared<core::IBRARObjective>(nullptr, mi);
  } else {
    obj = std::make_shared<train::CEObjective>();
  }
  train::Trainer trainer(model, obj, train_config(s));
  if (row.mask) {
    trainer.epoch_hook = core::make_mask_hook(core::FeatureMaskConfig{},
                                              data.train);
  }
  trainer.fit(data.train);
  return model;
}

void run_ablation(const char* title, const std::string& model_name,
                  const std::vector<AblationRow>& rows, const Scale& s) {
  const auto data = data::make_dataset("synth-cifar10", s.train_size,
                                       s.test_size);
  models::ModelSpec spec;
  spec.name = model_name;

  Table table({"Loss", "Natural", "PGD", "NIFGSM", "FGSM"});
  Stopwatch sw;
  for (const auto& row : rows) {
    auto model = train_ablation(row, spec, data, s);
    const double natural = train::evaluate_clean(*model, data.test, s.batch);
    attacks::AttackConfig pc;
    pc.steps = s.attack_steps;
    attacks::PGD pgd(pc);
    attacks::NIFGSM ni(pc);
    attacks::FGSM fgsm(attacks::AttackConfig{});
    const double a_pgd = train::evaluate_adversarial(*model, data.test, pgd,
                                                     s.batch, s.eval_samples);
    const double a_ni = train::evaluate_adversarial(*model, data.test, ni,
                                                    s.batch, s.eval_samples);
    const double a_fg = train::evaluate_adversarial(*model, data.test, fgsm,
                                                    s.batch, s.eval_samples);
    table.add_row({row.name, pct_vs(natural, row.ref[0]),
                   pct_vs(a_pgd, row.ref[1]), pct_vs(a_ni, row.ref[2]),
                   pct_vs(a_fg, row.ref[3])});
    std::fprintf(stderr, "[bench] %s / %s done (%.1fs)\n", title, row.name,
                 sw.reset());
  }
  std::printf("-- %s --\n", title);
  table.print();
  std::printf("\n");
}

}  // namespace

int main() {
  print_header("Table 4: ablation study (synth-cifar10)");
  const auto s = default_scale();

  const std::vector<AblationRow> vgg_rows = {
      // Single-term rows use amplified weights so each term's isolated effect
      // is visible at our smaller HSIC magnitudes (see EXPERIMENTS.md).
      {"(1) L_CE", 0, 0, false, false, {89.99, 0.10, 0.18, 11.80}},
      {"(2) L", 1, 1, true, false, {92.03, 12.39, 13.90, 43.49}},
      {"(3) L_CE + a*I(X,T)", 50, 0, true, false, {41.69, 0.16, 0.20, 9.98}},
      {"(4) L_CE - b*I(Y,T)", 0, 10, true, false, {91.50, 0.06, 0.99, 31.66}},
      {"(5) L_CE + FC", 0, 0, false, true, {89.41, 0.16, 0.14, 12.89}},
      {"(6) L + FC (IB-RAR)", 1, 1, true, true, {91.50, 35.86, 37.44, 55.92}},
  };
  run_ablation("CIFAR-10 with VGG16", "vgg16", vgg_rows, s);

  const std::vector<AblationRow> resnet_rows = {
      {"(1) L_CE", 0, 0, false, false, {92.19, 0.00, 0.00, 5.22}},
      {"(2) L", 1, 1, true, false, {93.32, 3.85, 4.71, 40.46}},
      {"(3) L_CE + a*I(X,T)", 50, 0, true, false, {10.00, 10.00, 10.00, 10.00}},
      {"(4) L_CE - b*I(Y,T)", 0, 10, true, false, {92.75, 0.00, 0.00, 8.90}},
      {"(5) L_CE + FC", 0, 0, false, true, {92.41, 0.00, 0.01, 4.26}},
      {"(6) L + FC (IB-RAR)", 1, 1, true, true, {93.13, 5.37, 6.09, 39.34}},
  };
  run_ablation("CIFAR-10 with ResNet18", "resnet18", resnet_rows, s);
  return 0;
}
