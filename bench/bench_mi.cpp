// MI-core A/B bench: the seed estimators vs the blocked/fused pipeline.
//
// Baselines are the shapes the repo's MI path had before the rebuild:
//   * seed_gram_gaussian — the O(n^2 d) per-pair distance loop (no GEMM,
//     no symmetry), the textbook form the Gram construction started from;
//   * seed_hsic — explicit H = I - 11^T/m centering via two dense matmuls
//     (gemm_naive), exactly the old differentiable-path graph.
// Against them:
//   * mi::gram_gaussian — symmetric blocked GEMM (matmul_nt_sym) + fused
//     exp pass over the upper triangle;
//   * mi::hsic — fused centering from row/column/grand sums (no H, no
//     centered matrix).
//
// Gates (nonzero exit on failure, for CI and the bench_mi_smoke CTest run):
//   1. numerical parity: |blocked - seed| / |seed| <= 1e-4 on the end-to-end
//      Gram+HSIC value (or <= 1e-7 absolute for near-zero values);
//   2. determinism: Gram and HSIC at IBRAR_BENCH_THREADS lanes bit-identical
//      to the 1-lane run.
//
//   ./bench_mi            n=512, d=4096 (the acceptance shape), best-of-3
//   ./bench_mi --smoke    tiny shape, 1 rep — the CTest form
//
// Records land in BENCH_pr4.json (override with IBRAR_BENCH_OUT; smoke runs
// write BENCH_smoke_mi.json): `checksum` carries the Gram checksum / HSIC
// value, `speedup_vs_naive` the seed-vs-blocked ratio.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "mi/hsic.hpp"
#include "reporter.hpp"
#include "runtime/thread_pool.hpp"
#include "tensor/gemm_packed.hpp"
#include "tensor/random.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

namespace ibrar::bench {
namespace {

/// The seed Gram construction: one pass per pair over all d features.
/// Per-pair accumulation in double (the form the old pairwise loop's
/// float-GEMM identity was validated against). Serial on purpose.
Tensor seed_gram_gaussian(const Tensor& x, float sigma) {
  const auto n = x.dim(0);
  const auto d = x.dim(1);
  const float scale = -1.0f / (2.0f * sigma * sigma);
  const float* px = x.data().data();
  Tensor k({n, n});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double s = 0.0;
      const float* xi = px + i * d;
      const float* xj = px + j * d;
      for (std::int64_t t = 0; t < d; ++t) {
        const double diff = static_cast<double>(xi[t]) - xj[t];
        s += diff * diff;
      }
      k.at(i, j) = std::exp(static_cast<float>(s) * scale);
    }
  }
  return k;
}

/// The seed HSIC: materialize H, center with two dense matmuls, trace.
float seed_hsic(const Tensor& kx, const Tensor& ky) {
  const auto m = kx.dim(0);
  Tensor h = Tensor::eye(m);
  const float inv_m = 1.0f / static_cast<float>(m);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < m; ++j) h.at(i, j) -= inv_m;
  }
  Tensor hk({m, m}), hkh({m, m});
  gemm_naive(h.data().data(), GemmLayout::kRowMajor, kx.data().data(),
             GemmLayout::kRowMajor, hk.data().data(), m, m, m);
  gemm_naive(hk.data().data(), GemmLayout::kRowMajor, h.data().data(),
             GemmLayout::kRowMajor, hkh.data().data(), m, m, m);
  double tr = 0.0;
  for (std::int64_t i = 0; i < m * m; ++i) tr += static_cast<double>(hkh[i]) * ky[i];
  const double denom = static_cast<double>(m - 1) * static_cast<double>(m - 1);
  return static_cast<float>(tr / denom);
}

bool close(double a, double b, double rel, double abs_floor) {
  const double diff = std::fabs(a - b);
  return diff <= abs_floor || diff <= rel * std::max(std::fabs(a), std::fabs(b));
}

}  // namespace
}  // namespace ibrar::bench

int main(int argc, char** argv) {
  using namespace ibrar;
  using namespace ibrar::bench;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const unsigned hc = std::thread::hardware_concurrency();
  const std::int64_t bench_threads = env::get_int(
      "IBRAR_BENCH_THREADS", hc == 0 ? 4 : static_cast<long>(hc));
  const int reps = smoke ? 1 : 3;

  // The acceptance shape: n=512 samples, d=4096 features (a flattened conv
  // tap), y = a 64-wide projection of x so HSIC is solidly nonzero and the
  // relative-parity gate is meaningful.
  const std::int64_t n = smoke ? 64 : 512;
  const std::int64_t d = smoke ? 128 : 4096;
  const std::int64_t dy = smoke ? 16 : 64;
  Rng rng(0x1b2a4u);
  const Tensor x = randn({n, d}, rng);
  Tensor y({n, dy});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < dy; ++j) y.at(i, j) = x.at(i, j);
  }
  const float sx = mi::scaled_sigma(d);
  const float sy = mi::scaled_sigma(dy);
  char shape[64];
  std::snprintf(shape, sizeof(shape), "n=%lld,d=%lld",
                static_cast<long long>(n), static_cast<long long>(d));

  std::printf("=== MI core A/B: seed pairwise/explicit-H vs blocked/fused "
              "(1 thread), blocked at %lld lanes ===\n",
              static_cast<long long>(bench_threads));

  JsonReporter reporter(smoke ? "BENCH_smoke_mi.json"
                              : env::get_string("IBRAR_BENCH_OUT",
                                                "BENCH_pr4.json"));
  bool ok = true;

  // ---- seed pipeline, 1 thread ---------------------------------------------
  runtime::set_num_threads(1);
  Tensor kx_seed, ky_seed;
  float h_seed = 0.0f;
  const double t_seed = time_best_ms(
      [&] {
        kx_seed = seed_gram_gaussian(x, sx);
        ky_seed = seed_gram_gaussian(y, sy);
        h_seed = seed_hsic(kx_seed, ky_seed);
      },
      reps);

  // ---- blocked/fused pipeline, 1 thread ------------------------------------
  Tensor kx_1, ky_1;
  float h_1 = 0.0f;
  const double t_1 = time_best_ms(
      [&] {
        kx_1 = mi::gram_gaussian(x, sx);
        ky_1 = mi::gram_gaussian(y, sy);
        h_1 = mi::hsic(kx_1, ky_1);
      },
      reps);

  // ---- blocked/fused pipeline, N lanes --------------------------------------
  runtime::set_num_threads(bench_threads);
  Tensor kx_n, ky_n;
  float h_n = 0.0f;
  const double t_n = time_best_ms(
      [&] {
        kx_n = mi::gram_gaussian(x, sx);
        ky_n = mi::gram_gaussian(y, sy);
        h_n = mi::hsic(kx_n, ky_n);
      },
      reps);
  runtime::set_num_threads(1);

  // Gates.
  const bool parity =
      close(h_1, h_seed, 1e-4, 1e-7) &&
      close(tensor_checksum(kx_1), tensor_checksum(kx_seed),
            1e-4, 1e-6 * static_cast<double>(n) * static_cast<double>(n));
  const bool deterministic = tensor_bits_equal(kx_1, kx_n) &&
                             tensor_bits_equal(ky_1, ky_n) &&
                             std::memcmp(&h_1, &h_n, sizeof(float)) == 0;
  const double speedup = t_1 > 0 ? t_seed / t_1 : 0.0;

  Table table({"pipeline", "ms", "HSIC", "speedup", "parity<=1e-4",
               "bits 1=N"});
  char ms[32], hv[32], sp[32];
  std::snprintf(ms, sizeof(ms), "%.2f", t_seed);
  std::snprintf(hv, sizeof(hv), "%.6g", static_cast<double>(h_seed));
  table.add_row({"seed pairwise + explicit-H", ms, hv, "1.00x", "-", "-"});
  std::snprintf(ms, sizeof(ms), "%.2f", t_1);
  std::snprintf(hv, sizeof(hv), "%.6g", static_cast<double>(h_1));
  std::snprintf(sp, sizeof(sp), "%.2fx", speedup);
  table.add_row({"blocked gram + fused HSIC (1t)", ms, hv, sp,
                 parity ? "yes" : "NO", "-"});
  std::snprintf(ms, sizeof(ms), "%.2f", t_n);
  std::snprintf(hv, sizeof(hv), "%.6g", static_cast<double>(h_n));
  std::snprintf(sp, sizeof(sp), "%.2fx", t_n > 0 ? t_seed / t_n : 0.0);
  table.add_row({"blocked gram + fused HSIC (Nt)", ms, hv, sp, "-",
                 deterministic ? "yes" : "NO"});
  table.print();

  BenchRecord seed_rec;
  seed_rec.kernel = "mi_gram_hsic_seed";
  seed_rec.shape = shape;
  seed_rec.ns_per_op = t_seed * 1e6;
  seed_rec.threads = 1;
  seed_rec.checksum = h_seed;
  reporter.add(seed_rec);

  BenchRecord rec1 = seed_rec;
  rec1.kernel = "mi_gram_hsic_blocked";
  rec1.ns_per_op = t_1 * 1e6;
  rec1.checksum = h_1;
  rec1.speedup_vs_naive = speedup;
  rec1.bit_identical = parity;  // parity gate outcome (tolerance, not bits)
  reporter.add(rec1);

  BenchRecord recn = rec1;
  recn.threads = bench_threads;
  recn.ns_per_op = t_n * 1e6;
  recn.checksum = h_n;
  recn.speedup_vs_naive = t_n > 0 ? t_seed / t_n : 0.0;
  recn.bit_identical = deterministic;
  reporter.add(recn);

  BenchRecord gram_rec;
  gram_rec.kernel = "mi_gram_blocked";
  gram_rec.shape = shape;
  gram_rec.threads = 1;
  gram_rec.checksum = tensor_checksum(kx_1);
  gram_rec.bit_identical = tensor_bits_equal(kx_1, kx_n);
  reporter.add(gram_rec);

  reporter.write();

  if (!parity) {
    std::fprintf(stderr, "FAIL: parity gate (seed %.8g vs blocked %.8g)\n",
                 static_cast<double>(h_seed), static_cast<double>(h_1));
    ok = false;
  }
  if (!deterministic) {
    std::fprintf(stderr, "FAIL: 1-vs-%lld-lane determinism gate\n",
                 static_cast<long long>(bench_threads));
    ok = false;
  }
  if (!smoke && speedup < 5.0) {
    std::fprintf(stderr,
                 "FAIL: single-thread speedup %.2fx below the 5x floor\n",
                 speedup);
    ok = false;
  }
  return ok ? 0 : 1;
}
