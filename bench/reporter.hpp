#pragma once
// Structured perf-regression reporter.
//
// Benches append BenchRecord rows and write one JSON document per run
// (default BENCH_pr2.json, override with IBRAR_BENCH_OUT). The schema is flat
// on purpose — one record per (kernel, shape, threads) — so future sessions
// can diff trajectories with nothing fancier than python -m json.tool:
//
//   {"schema": "ibrar-bench-v1", "records": [
//     {"kernel": "gemm_packed", "shape": "256x256x256", "ns_per_op": ...,
//      "gflops": ..., "threads": 1, "checksum": ..., "speedup_vs_naive": ...},
//     ...]}
//
// Checksums are the full sum of the output buffer, printed with %.9g so
// numeric drift shows up as a JSON diff. (A single-ulp change in one element
// can still round away in the sum — the benches' bit_identical gates, which
// memcmp whole buffers, are the exact check; the checksum is the greppable
// trail.)

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/env.hpp"
#include "util/stopwatch.hpp"

namespace ibrar::bench {

/// Best-of-reps wall time of fn() in milliseconds.
template <typename F>
double time_best_ms(F&& fn, int reps = 3) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    fn();
    best = std::min(best, sw.seconds() * 1e3);
  }
  return best;
}

/// Full-buffer sum in double (the `checksum` field of a record).
inline double tensor_checksum(const Tensor& t) {
  double s = 0.0;
  for (std::int64_t i = 0; i < t.numel(); ++i) s += t[i];
  return s;
}

/// Exact bit equality (memcmp, so identical NaN payloads compare equal) —
/// the determinism gate behind every `bit_identical` field.
inline bool tensor_bits_equal(const Tensor& a, const Tensor& b) {
  return a.same_shape(b) &&
         std::memcmp(a.data().data(), b.data().data(),
                     sizeof(float) * static_cast<std::size_t>(a.numel())) == 0;
}

struct BenchRecord {
  std::string kernel;
  std::string shape;            ///< "MxKxN" or kernel-specific
  double ns_per_op = 0.0;
  double gflops = 0.0;
  std::int64_t threads = 1;
  double checksum = 0.0;
  double speedup_vs_naive = 0.0;  ///< 0 = not an A/B row
  bool bit_identical = true;      ///< vs the 1-thread / naive reference
  /// Additional named numeric fields appended to the JSON object (e.g. the
  /// serving benches' p50_ms/p95_ms/p99_ms latency percentiles). Additive
  /// over the ibrar-bench-v1 schema — absent keys mean "not recorded".
  std::vector<std::pair<std::string, double>> extra;
};

class JsonReporter {
 public:
  /// `path` empty = IBRAR_BENCH_OUT or "BENCH_pr2.json".
  explicit JsonReporter(std::string path = "")
      : path_(path.empty() ? env::get_string("IBRAR_BENCH_OUT", "BENCH_pr2.json")
                           : std::move(path)) {}

  void add(BenchRecord rec) { records_.push_back(std::move(rec)); }

  const std::vector<BenchRecord>& records() const { return records_; }

  /// Write the document; throws std::runtime_error on I/O failure.
  void write() const {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      throw std::runtime_error("JsonReporter: cannot open " + path_);
    }
    std::fprintf(f, "{\"schema\": \"ibrar-bench-v1\", \"records\": [");
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const BenchRecord& r = records_[i];
      std::fprintf(
          f,
          "%s\n  {\"kernel\": \"%s\", \"shape\": \"%s\", \"ns_per_op\": %s, "
          "\"gflops\": %s, \"threads\": %lld, \"checksum\": %s, "
          "\"speedup_vs_naive\": %s, \"bit_identical\": %s",
          i == 0 ? "" : ",", escape(r.kernel).c_str(), escape(r.shape).c_str(),
          num(r.ns_per_op, "%.1f").c_str(), num(r.gflops, "%.3f").c_str(),
          static_cast<long long>(r.threads), num(r.checksum, "%.9g").c_str(),
          num(r.speedup_vs_naive, "%.3f").c_str(),
          r.bit_identical ? "true" : "false");
      for (const auto& [key, value] : r.extra) {
        std::fprintf(f, ", \"%s\": %s", escape(key).c_str(),
                     num(value, "%.6g").c_str());
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n]}\n");
    if (std::fclose(f) != 0) {
      throw std::runtime_error("JsonReporter: write failed for " + path_);
    }
    std::fprintf(stderr, "[bench] wrote %zu records to %s\n", records_.size(),
                 path_.c_str());
  }

  const std::string& path() const { return path_; }

 private:
  /// JSON number, or null for non-finite values (a NaN checksum is exactly
  /// the regression this file exists to record — it must stay parseable).
  static std::string num(double v, const char* fmt) {
    if (!std::isfinite(v)) return "null";
    char buf[48];
    std::snprintf(buf, sizeof(buf), fmt, v);
    return buf;
  }

  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char ch : s) {
      if (ch == '"' || ch == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(ch) >= 0x20) out.push_back(ch);
    }
    return out;
  }

  std::string path_;
  std::vector<BenchRecord> records_;
};

}  // namespace ibrar::bench
