#!/usr/bin/env python3
"""Markdown link checker for the repo docs (CI: docs-link-check job).

Checks the given markdown files (default: the curated docs — README.md,
ROADMAP.md, CHANGES.md, ISSUE.md, docs/*.md; PAPERS.md/SNIPPETS.md are
retrieval dumps with PDF-extraction artifacts and are deliberately out of
scope). Extracts inline links and fails if a local target (file or
file#anchor) does not exist. External http(s)/mailto links are not fetched —
CI must not depend on network reachability.

Usage: tools/check_md_links.py [file.md ...]
"""
import glob

import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#+\s+(.*)$", re.MULTILINE)


def anchor_of(heading: str) -> str:
    a = heading.strip().lower()
    a = re.sub(r"[`*_(),./:'\"+?!&\[\]{}=—§·]", "", a)
    a = re.sub(r"\s+", "-", a)
    return a


def anchors_in(path: str) -> set:
    with open(path, encoding="utf-8") as f:
        text = f.read()
    return {anchor_of(h) for h in HEADING_RE.findall(text)}


def check_file(md: str) -> list:
    errors = []
    base = os.path.dirname(md)
    with open(md, encoding="utf-8") as f:
        text = f.read()
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path, _, frag = target.partition("#")
        resolved = os.path.normpath(os.path.join(base, path)) if path else md
        if not os.path.exists(resolved):
            errors.append(f"{md}: broken link -> {target}")
            continue
        if frag and resolved.endswith(".md"):
            if anchor_of(frag) not in anchors_in(resolved):
                errors.append(f"{md}: missing anchor -> {target}")
    return errors


def main(argv: list) -> int:
    files = argv[1:]
    if not files:
        files = [f for f in ("README.md", "ROADMAP.md", "CHANGES.md",
                             "ISSUE.md", "PAPER.md")
                 if os.path.exists(f)]
        files.extend(glob.glob("docs/*.md"))
    errors = []
    for md in sorted(files):
        errors.extend(check_file(md))
    for e in errors:
        print(e, file=sys.stderr)
    print(f"checked {len(files)} markdown files, "
          f"{len(errors)} broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
