#!/usr/bin/env python3
"""Validate the observability exports of an ibrar_serve run.

Usage: check_serve_stats.py STATS_JSONL [TRACE_JSON]
           [--prom SCRAPE ...] [--slo SLO_JSON]

STATS_JSONL is the --stats-every stream: one JSON object per line, each the
full metrics-registry snapshot ({"counters":{...},"gauges":{...},
"histograms":{...}}). Checks:
  * every line parses as JSON with the three sections;
  * core serving counters grow monotonically across lines;
  * the final (post-drain) snapshot has serve.accepted == serve.served > 0,
    at least one batch, and a serve.compute_ns histogram whose percentiles
    are ordered p50 <= p90 <= p99 <= max;
  * when the reply cache is live (serve.cache.budget_bytes > 0): cache
    counters are monotone, serve.cache.hits + serve.cache.misses ==
    serve.cache.lookups exactly, every snapshot keeps serve.cache.bytes <=
    serve.cache.budget_bytes, and the final (post-shutdown) snapshot has
    serve.cache.bytes == 0;
  * admission counters (serve.admission.busy / .throttled), when present,
    are monotone.

TRACE_JSON (optional) is the --trace chrome://tracing dump. Checks it is
valid JSON with a non-empty traceEvents list covering all six serving-stage
spans (admission, queue_wait, batch_assembly, compute, telemetry_rescore,
reply). A nonzero droppedSpans count is a WARNING (the export window
truncated), not a failure.

--prom SCRAPE (repeatable, in scrape order) are GET /metrics bodies from the
admin endpoint. Each must be well-formed Prometheus text exposition 0.0.4:
every line a comment or `name[{labels}] value` with names in
[a-zA-Z_:][a-zA-Z0-9_:]*, histogram `le` bucket edges strictly ascending with
non-decreasing cumulative counts and the mandatory +Inf bucket equal to
_count. Across consecutive scrapes, counters must be monotone and SLO state
gauges (obs_slo_*_state) must never de-escalate from breach (2) to
warning (1) — within an episode the only way down is a clean drop to ok (0).

--slo SLO_JSON is a GET /slo body: must parse, carry a non-empty "slos" list,
and every entry's state must be one of ok/warning/breach with state_value in
{0,1,2} and finite burn rates.

Exit status: 0 on success, 1 with a diagnostic on the first violation.
"""

import json
import math
import re
import sys

CORE_COUNTERS = ["serve.accepted", "serve.served", "serve.batches"]
CACHE_COUNTERS = [
    "serve.cache.lookups",
    "serve.cache.hits",
    "serve.cache.misses",
    "serve.cache.inflight_joins",
    "serve.cache.evictions",
    "serve.cache.invalidations",
]
ADMISSION_COUNTERS = ["serve.admission.busy", "serve.admission.throttled"]
STAGES = [
    "admission",
    "queue_wait",
    "batch_assembly",
    "compute",
    "telemetry_rescore",
    "reply",
]


def fail(msg):
    print(f"check_serve_stats: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_stats(path):
    with open(path, "r", encoding="utf-8") as f:
        lines = [ln for ln in f.read().splitlines() if ln.strip()]
    if not lines:
        fail(f"{path} is empty")

    snaps = []
    for i, ln in enumerate(lines, 1):
        try:
            snap = json.loads(ln)
        except json.JSONDecodeError as e:
            fail(f"{path}:{i} is not valid JSON: {e}")
        for section in ("counters", "gauges", "histograms"):
            if section not in snap:
                fail(f"{path}:{i} missing section {section!r}")
        snaps.append(snap)

    for name in CORE_COUNTERS:
        values = [s["counters"].get(name, 0) for s in snaps]
        if any(b < a for a, b in zip(values, values[1:])):
            fail(f"counter {name} is not monotone across snapshots: {values}")

    final = snaps[-1]["counters"]
    for name in CORE_COUNTERS:
        if name not in final:
            fail(f"final snapshot missing counter {name}")
    if final["serve.served"] <= 0:
        fail("no requests served")
    if final["serve.accepted"] != final["serve.served"]:
        fail(
            f"drained server should have accepted == served, got "
            f"{final['serve.accepted']} != {final['serve.served']}"
        )
    if final["serve.batches"] <= 0:
        fail("no batches recorded")

    for name in CACHE_COUNTERS + ADMISSION_COUNTERS:
        values = [s["counters"].get(name, 0) for s in snaps]
        if any(b < a for a, b in zip(values, values[1:])):
            fail(f"counter {name} is not monotone across snapshots: {values}")

    budget = snaps[-1]["gauges"].get("serve.cache.budget_bytes", 0)
    if budget > 0:
        lookups = final.get("serve.cache.lookups", 0)
        hits = final.get("serve.cache.hits", 0)
        misses = final.get("serve.cache.misses", 0)
        if hits + misses != lookups:
            fail(
                f"cache accounting broken: hits {hits} + misses {misses} "
                f"!= lookups {lookups}"
            )
        for i, s in enumerate(snaps, 1):
            resident = s["gauges"].get("serve.cache.bytes", 0)
            if resident > budget:
                fail(
                    f"snapshot {i}: serve.cache.bytes {resident} exceeds "
                    f"budget {budget}"
                )
        final_bytes = snaps[-1]["gauges"].get("serve.cache.bytes", 0)
        if final_bytes != 0:
            fail(
                f"post-shutdown snapshot still holds serve.cache.bytes "
                f"{final_bytes} (want 0)"
            )

    hists = snaps[-1]["histograms"]
    if "serve.compute_ns" not in hists:
        fail("final snapshot missing serve.compute_ns histogram")
    h = hists["serve.compute_ns"]
    if h["count"] <= 0:
        fail("serve.compute_ns histogram is empty")
    if not (h["p50"] <= h["p90"] <= h["p99"] <= h["max"]):
        fail(f"serve.compute_ns percentiles out of order: {h}")
    cache_note = ""
    if final.get("serve.cache.lookups", 0) > 0:
        cache_note = (
            f", cache {final['serve.cache.hits']}"
            f"/{final['serve.cache.lookups']} hits"
        )
    print(
        f"check_serve_stats: {len(snaps)} snapshots OK — "
        f"served {final['serve.served']} in {final['serve.batches']} batches, "
        f"compute p50 {h['p50'] / 1e6:.3f} ms / p99 {h['p99'] / 1e6:.3f} ms"
        f"{cache_note}"
    )


def check_trace(path):
    with open(path, "r", encoding="utf-8") as f:
        try:
            trace = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path} is not valid JSON: {e}")
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path} has no traceEvents")
    names = {e.get("name") for e in events}
    missing = [s for s in STAGES if s not in names]
    if missing:
        fail(f"{path} missing serving-stage spans: {missing}")
    dropped = trace.get("droppedSpans", 0)
    if dropped:
        print(
            f"check_serve_stats: WARNING: {path} dropped {dropped} spans "
            f"to ring wrap-around — the export window is truncated",
            file=sys.stderr,
        )
    print(f"check_serve_stats: trace OK — {len(events)} spans, all six stages")


PROM_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
PROM_LINE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$"
)


def parse_prom(path):
    """Parse one text-exposition scrape into (samples, histograms).

    samples: {name-with-labels: float}; histograms: {base: [(le, cum), ...]}.
    Fails on any malformed line.
    """
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    samples = {}
    hists = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip() or line.startswith("#"):
            continue
        m = PROM_LINE_RE.match(line)
        if not m:
            fail(f"{path}:{lineno} is not a valid exposition line: {line!r}")
        name, labels, raw = m.groups()
        try:
            value = float(raw)
        except ValueError:
            fail(f"{path}:{lineno} has a non-numeric value: {line!r}")
        samples[name + (labels or "")] = value
        if name.endswith("_bucket") and labels and 'le="' in labels:
            le = labels.split('le="', 1)[1].split('"', 1)[0]
            hists.setdefault(name[: -len("_bucket")], []).append((le, value))
    if not samples:
        fail(f"{path} contains no samples")
    return samples, hists


def check_prom(paths):
    prev = None
    for path in paths:
        samples, hists = parse_prom(path)
        for base, buckets in hists.items():
            edges = [le for le, _ in buckets if le != "+Inf"]
            cums = [c for le, c in buckets if le != "+Inf"]
            floats = [float(e) for e in edges]
            if floats != sorted(floats) or len(set(floats)) != len(floats):
                fail(f"{path}: {base} le edges not strictly ascending")
            if any(b < a for a, b in zip(cums, cums[1:])):
                fail(f"{path}: {base} cumulative bucket counts decreased")
            inf = [c for le, c in buckets if le == "+Inf"]
            if len(inf) != 1:
                fail(f"{path}: {base} must have exactly one +Inf bucket")
            count = samples.get(f"{base}_count")
            if count is None or inf[0] != count:
                fail(
                    f"{path}: {base} +Inf bucket {inf[0]} != _count {count}"
                )
        if prev is not None:
            prev_path, prev_samples = prev
            for key, old in prev_samples.items():
                new = samples.get(key)
                if new is None:
                    continue  # retired/compacted families may fold away
                # Counters: _total-less convention here — anything that is a
                # bucket/count/sum or a bare counter family must be monotone.
                # Gauges can move freely; restrict to known-cumulative shapes.
                if key.endswith(("_count", "_sum")) or "_bucket{" in key:
                    if new < old:
                        fail(
                            f"{path}: {key} went backwards vs {prev_path} "
                            f"({old} -> {new})"
                        )
                if key.startswith("obs_slo_") and key.endswith("_state"):
                    if old == 2 and new == 1:
                        fail(
                            f"{path}: SLO gauge {key} de-escalated breach -> "
                            f"warning vs {prev_path} (episodes are monotone; "
                            f"only a clean drop to ok may leave breach)"
                        )
        prev = (path, samples)
        print(
            f"check_serve_stats: prom scrape {path} OK — "
            f"{len(samples)} samples, {len(hists)} histograms"
        )


def check_slo(path):
    with open(path, "r", encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path} is not valid JSON: {e}")
    slos = doc.get("slos")
    if not isinstance(slos, list) or not slos:
        fail(f"{path} has no slos list")
    for s in slos:
        name = s.get("name", "<unnamed>")
        if s.get("state") not in ("ok", "warning", "breach"):
            fail(f"{path}: slo {name} has bad state {s.get('state')!r}")
        if s.get("state_value") not in (0, 1, 2):
            fail(f"{path}: slo {name} has bad state_value")
        for k in ("fast_burn_rate", "slow_burn_rate"):
            v = s.get(k)
            if not isinstance(v, (int, float)) or not math.isfinite(v) or v < 0:
                fail(f"{path}: slo {name} has bad {k}: {v!r}")
    print(f"check_serve_stats: slo OK — {len(slos)} monitors")


def main():
    args = sys.argv[1:]
    positional = []
    prom_paths = []
    slo_path = None
    i = 0
    while i < len(args):
        if args[i] == "--prom":
            i += 1
            if i >= len(args):
                fail("--prom needs a path")
            prom_paths.append(args[i])
        elif args[i] == "--slo":
            i += 1
            if i >= len(args):
                fail("--slo needs a path")
            slo_path = args[i]
        else:
            positional.append(args[i])
        i += 1
    if len(positional) < 1 or len(positional) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    check_stats(positional[0])
    if len(positional) == 2:
        check_trace(positional[1])
    if prom_paths:
        check_prom(prom_paths)
    if slo_path:
        check_slo(slo_path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
