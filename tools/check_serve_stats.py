#!/usr/bin/env python3
"""Validate the observability exports of an ibrar_serve run.

Usage: check_serve_stats.py STATS_JSONL [TRACE_JSON]

STATS_JSONL is the --stats-every stream: one JSON object per line, each the
full metrics-registry snapshot ({"counters":{...},"gauges":{...},
"histograms":{...}}). Checks:
  * every line parses as JSON with the three sections;
  * core serving counters grow monotonically across lines;
  * the final (post-drain) snapshot has serve.accepted == serve.served > 0,
    at least one batch, and a serve.compute_ns histogram whose percentiles
    are ordered p50 <= p90 <= p99 <= max;
  * when the reply cache is live (serve.cache.budget_bytes > 0): cache
    counters are monotone, serve.cache.hits + serve.cache.misses ==
    serve.cache.lookups exactly, every snapshot keeps serve.cache.bytes <=
    serve.cache.budget_bytes, and the final (post-shutdown) snapshot has
    serve.cache.bytes == 0;
  * admission counters (serve.admission.busy / .throttled), when present,
    are monotone.

TRACE_JSON (optional) is the --trace chrome://tracing dump. Checks it is
valid JSON with a non-empty traceEvents list covering all six serving-stage
spans (admission, queue_wait, batch_assembly, compute, telemetry_rescore,
reply).

Exit status: 0 on success, 1 with a diagnostic on the first violation.
"""

import json
import sys

CORE_COUNTERS = ["serve.accepted", "serve.served", "serve.batches"]
CACHE_COUNTERS = [
    "serve.cache.lookups",
    "serve.cache.hits",
    "serve.cache.misses",
    "serve.cache.inflight_joins",
    "serve.cache.evictions",
    "serve.cache.invalidations",
]
ADMISSION_COUNTERS = ["serve.admission.busy", "serve.admission.throttled"]
STAGES = [
    "admission",
    "queue_wait",
    "batch_assembly",
    "compute",
    "telemetry_rescore",
    "reply",
]


def fail(msg):
    print(f"check_serve_stats: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_stats(path):
    with open(path, "r", encoding="utf-8") as f:
        lines = [ln for ln in f.read().splitlines() if ln.strip()]
    if not lines:
        fail(f"{path} is empty")

    snaps = []
    for i, ln in enumerate(lines, 1):
        try:
            snap = json.loads(ln)
        except json.JSONDecodeError as e:
            fail(f"{path}:{i} is not valid JSON: {e}")
        for section in ("counters", "gauges", "histograms"):
            if section not in snap:
                fail(f"{path}:{i} missing section {section!r}")
        snaps.append(snap)

    for name in CORE_COUNTERS:
        values = [s["counters"].get(name, 0) for s in snaps]
        if any(b < a for a, b in zip(values, values[1:])):
            fail(f"counter {name} is not monotone across snapshots: {values}")

    final = snaps[-1]["counters"]
    for name in CORE_COUNTERS:
        if name not in final:
            fail(f"final snapshot missing counter {name}")
    if final["serve.served"] <= 0:
        fail("no requests served")
    if final["serve.accepted"] != final["serve.served"]:
        fail(
            f"drained server should have accepted == served, got "
            f"{final['serve.accepted']} != {final['serve.served']}"
        )
    if final["serve.batches"] <= 0:
        fail("no batches recorded")

    for name in CACHE_COUNTERS + ADMISSION_COUNTERS:
        values = [s["counters"].get(name, 0) for s in snaps]
        if any(b < a for a, b in zip(values, values[1:])):
            fail(f"counter {name} is not monotone across snapshots: {values}")

    budget = snaps[-1]["gauges"].get("serve.cache.budget_bytes", 0)
    if budget > 0:
        lookups = final.get("serve.cache.lookups", 0)
        hits = final.get("serve.cache.hits", 0)
        misses = final.get("serve.cache.misses", 0)
        if hits + misses != lookups:
            fail(
                f"cache accounting broken: hits {hits} + misses {misses} "
                f"!= lookups {lookups}"
            )
        for i, s in enumerate(snaps, 1):
            resident = s["gauges"].get("serve.cache.bytes", 0)
            if resident > budget:
                fail(
                    f"snapshot {i}: serve.cache.bytes {resident} exceeds "
                    f"budget {budget}"
                )
        final_bytes = snaps[-1]["gauges"].get("serve.cache.bytes", 0)
        if final_bytes != 0:
            fail(
                f"post-shutdown snapshot still holds serve.cache.bytes "
                f"{final_bytes} (want 0)"
            )

    hists = snaps[-1]["histograms"]
    if "serve.compute_ns" not in hists:
        fail("final snapshot missing serve.compute_ns histogram")
    h = hists["serve.compute_ns"]
    if h["count"] <= 0:
        fail("serve.compute_ns histogram is empty")
    if not (h["p50"] <= h["p90"] <= h["p99"] <= h["max"]):
        fail(f"serve.compute_ns percentiles out of order: {h}")
    cache_note = ""
    if final.get("serve.cache.lookups", 0) > 0:
        cache_note = (
            f", cache {final['serve.cache.hits']}"
            f"/{final['serve.cache.lookups']} hits"
        )
    print(
        f"check_serve_stats: {len(snaps)} snapshots OK — "
        f"served {final['serve.served']} in {final['serve.batches']} batches, "
        f"compute p50 {h['p50'] / 1e6:.3f} ms / p99 {h['p99'] / 1e6:.3f} ms"
        f"{cache_note}"
    )


def check_trace(path):
    with open(path, "r", encoding="utf-8") as f:
        try:
            trace = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path} is not valid JSON: {e}")
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path} has no traceEvents")
    names = {e.get("name") for e in events}
    missing = [s for s in STAGES if s not in names]
    if missing:
        fail(f"{path} missing serving-stage spans: {missing}")
    print(f"check_serve_stats: trace OK — {len(events)} spans, all six stages")


def main():
    if len(sys.argv) < 2 or len(sys.argv) > 3:
        print(__doc__, file=sys.stderr)
        return 2
    check_stats(sys.argv[1])
    if len(sys.argv) == 3:
        check_trace(sys.argv[2])
    return 0


if __name__ == "__main__":
    sys.exit(main())
