// ibrar_serve — always-on inference serving demo over the synthetic benchmarks.
//
// Trains one model (CE by default; IBRAR_EPOCHS scales it), publishes it into
// a versioned ModelRegistry, and drives closed-loop client threads through
// the micro-batching Server. Optionally:
//
//   * --adv F       replaces fraction F of the traffic with PGD-perturbed
//                   inputs, so the per-request robustness telemetry has
//                   something to flag — the summary splits mean suspicion by
//                   clean vs adversarial traffic (the paper's Eq. 3 channel
//                   signal, online);
//   * --swap        demonstrates hot reload: halfway through the run the
//                   current weights are checkpointed to disk and republished
//                   through publish_checkpoint (version 2) while clients keep
//                   submitting — replies report which version served them;
//   * --telemetry K sampling cadence (default 4; 0 disables);
//   * --stats-every N emits one JSON-lines metric snapshot (the full
//                   obs::registry() state: serve.* counters, gauges,
//                   histogram percentiles) every N ms to --stats-out
//                   (default serve_stats.jsonl), plus a final snapshot at
//                   shutdown — the stream tools/check_serve_stats.py
//                   validates in CI;
//   * --trace FILE  dumps the request-trace ring buffers as chrome://tracing
//                   JSON at exit (enables sampling at every 8th request if
//                   IBRAR_OBS_TRACE_SAMPLE didn't already);
//   * --listen PORT starts the TCP front-end (serve/net) on 127.0.0.1:PORT
//                   (0 picks an ephemeral port, printed at startup) and
//                   drives the demo traffic THROUGH the socket — one
//                   net::Client connection per client thread — instead of
//                   in-process futures, so the run exercises framing,
//                   pipelining, and the listener end to end;
//   * --cache-mb N  reply-cache byte budget in MiB (overrides
//                   IBRAR_SERVE_CACHE_MB; 0 disables). Each client thread
//                   submits under its own client id, and the summary reports
//                   hit/miss/join/eviction counts and the resident bytes;
//   * --client-rate R / --max-inflight-per-client N per-client admission
//                   control (overrides IBRAR_SERVE_CLIENT_RATE /
//                   IBRAR_SERVE_MAX_INFLIGHT); throttled requests come back
//                   kBusyRetryAfter with a retry hint and are counted in the
//                   summary as rejected;
//   * --admin-port P starts the read-only HTTP admin endpoint on
//                   127.0.0.1:P (0 = ephemeral): GET /metrics (Prometheus
//                   text exposition), /slo, /timeseries[?name=...],
//                   /registry, /profile — and implies the time-series
//                   sampler + default SLO monitors (250ms cadence unless
//                   IBRAR_OBS_TS_INTERVAL_MS says otherwise);
//   * --admin-linger MS holds the admin endpoint open for MS after the
//                   drain so an external scraper (CI) can read the final
//                   quiescent /metrics + /slo deterministically;
//   * --profile-out F writes obs::profile_to_json() to F at exit (implies
//                   IBRAR_OBS_PROFILE=1).
//
// Server shape comes from the standard env knobs: IBRAR_SERVE_MAX_BATCH,
// IBRAR_SERVE_DEADLINE_US, IBRAR_SERVE_QUEUE_CAP, IBRAR_SERVE_WORKERS,
// IBRAR_SERVE_CACHE_MB, IBRAR_SERVE_CLIENT_RATE, IBRAR_SERVE_CLIENT_BURST,
// IBRAR_SERVE_MAX_INFLIGHT; IBRAR_OBS_PROFILE=1 prints the per-kernel
// profile table at exit. Results are printed and recorded to an
// ibrar-bench-v1 JSON (--out, default SERVE.json).
//
//   ./ibrar_serve --model vgg16 --requests 2000 --clients 8 --adv 0.5
//                 --swap --stats-every 250 --trace serve_trace.json
//   IBRAR_SERVE_WORKERS=4 ./ibrar_serve --listen 0 --requests 2000

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "attacks/pgd.hpp"
#include "common.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "serve/net/admin.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/model_registry.hpp"
#include "serve/net/client.hpp"
#include "serve/net/listener.hpp"
#include "serve/server.hpp"

using namespace ibrar;
using namespace ibrar::bench;

namespace {

struct SuspicionStat {
  double sum = 0.0;
  std::int64_t n = 0;
  void add(float v) {
    sum += v;
    ++n;
  }
  double mean() const { return n > 0 ? sum / static_cast<double>(n) : -1.0; }
};

}  // namespace

int main(int argc, char** argv) {
  std::string dataset = "synth-cifar10";
  std::string model_name = "vgg16";
  std::string out_path = env::get_string("IBRAR_BENCH_OUT", "SERVE.json");
  std::int64_t requests = 1000;
  std::int64_t clients = 8;
  std::int64_t telemetry_every = 4;
  std::int64_t stats_every_ms = 0;
  std::string stats_out = "serve_stats.jsonl";
  std::string trace_path;
  double adv_fraction = 0.0;
  bool swap_mid_run = false;
  std::int64_t listen_port = -1;  // -1 = in-process futures (no socket)
  std::int64_t admin_port = -1;   // -1 = no admin endpoint
  std::int64_t admin_linger_ms = 0;  // hold admin open after drain (CI scrape)
  std::string profile_out;        // empty = no JSON profile dump
  std::int64_t cache_mb = -1;     // -1 = keep the IBRAR_SERVE_CACHE_MB default
  double client_rate = -1.0;      // -1 = keep IBRAR_SERVE_CLIENT_RATE
  std::int64_t max_inflight = -1; // -1 = keep IBRAR_SERVE_MAX_INFLIGHT
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--dataset") dataset = next();
    else if (arg == "--model") model_name = next();
    else if (arg == "--requests") requests = std::stoll(next());
    else if (arg == "--clients") clients = std::stoll(next());
    else if (arg == "--telemetry") telemetry_every = std::stoll(next());
    else if (arg == "--adv") adv_fraction = std::stod(next());
    else if (arg == "--swap") swap_mid_run = true;
    else if (arg == "--out") out_path = next();
    else if (arg == "--stats-every") stats_every_ms = std::stoll(next());
    else if (arg == "--stats-out") stats_out = next();
    else if (arg == "--trace") trace_path = next();
    else if (arg == "--listen") listen_port = std::stoll(next());
    else if (arg == "--admin-port") admin_port = std::stoll(next());
    else if (arg == "--admin-linger") admin_linger_ms = std::stoll(next());
    else if (arg == "--profile-out") profile_out = next();
    else if (arg == "--cache-mb") cache_mb = std::stoll(next());
    else if (arg == "--client-rate") client_rate = std::stod(next());
    else if (arg == "--max-inflight-per-client") max_inflight = std::stoll(next());
    else {
      std::fprintf(stderr,
                   "usage: ibrar_serve [--dataset D] [--model M] [--requests N]"
                   " [--clients C] [--telemetry K] [--adv FRACTION] [--swap]"
                   " [--out FILE] [--stats-every MS] [--stats-out FILE]"
                   " [--trace FILE] [--listen PORT] [--admin-port PORT]"
                   " [--admin-linger MS] [--profile-out FILE] [--cache-mb N]"
                   " [--client-rate R] [--max-inflight-per-client N]\n");
      return arg == "--help" ? 0 : 2;
    }
  }
  if (cache_mb >= 0 && cache_mb > (std::int64_t{1} << 20)) {
    std::fprintf(stderr, "--cache-mb %lld is implausibly large\n",
                 static_cast<long long>(cache_mb));
    return 2;
  }
  if (listen_port < -1 || listen_port > 65535) {
    std::fprintf(stderr, "--listen PORT must be in [0, 65535]\n");
    return 2;
  }
  if (admin_port < -1 || admin_port > 65535) {
    std::fprintf(stderr, "--admin-port PORT must be in [0, 65535]\n");
    return 2;
  }
  if (!trace_path.empty() && !obs::trace_enabled()) {
    obs::set_trace_sample_every(8);  // --trace implies sampling
  }
  if (!profile_out.empty() && !obs::profiling_enabled()) {
    obs::set_profiling_enabled(true);  // --profile-out implies profiling
  }

  print_header("ibrar_serve: micro-batching inference server demo");
  const auto s = default_scale();
  const auto data = data::make_dataset(dataset, s.train_size, s.test_size);
  models::ModelSpec spec;
  spec.name = model_name;
  spec.num_classes = data.train.num_classes;
  spec.image_size = data.test.height();
  spec.in_channels = data.test.channels();

  // ---- train + publish v1 ---------------------------------------------------
  Stopwatch sw;
  analysis::TrainSpec tspec;
  tspec.base = "CE";
  tspec.train = train_config(s);
  auto model = analysis::train_model(spec, data, tspec, 42);
  std::fprintf(stderr, "[serve] trained %s in %.1fs\n", model_name.c_str(),
               sw.reset());
  serve::ModelRegistry registry;
  const Shape chw = {data.test.channels(), data.test.height(),
                     data.test.width()};
  registry.publish(model, chw, model_name + "-v1");

  // ---- stage traffic: clean rows, a fraction adversarially perturbed --------
  const std::int64_t n = data.test.size();
  std::vector<Tensor> rows = stage_rows(data.test);
  std::vector<bool> is_adv(static_cast<std::size_t>(n), false);
  if (adv_fraction > 0.0) {
    attacks::AttackConfig acfg;
    acfg.steps = s.attack_steps;
    attacks::PGD pgd(acfg);
    const auto n_adv = static_cast<std::int64_t>(adv_fraction *
                                                 static_cast<double>(n));
    for (std::int64_t b = 0; b < n_adv; b += s.batch) {
      const std::int64_t e = std::min(n_adv, b + s.batch);
      const auto batch = data::make_batch(data.test, b, e);
      const Tensor x_adv = pgd.perturb(*model, batch.x, batch.y);
      const std::int64_t row_elems = chw[0] * chw[1] * chw[2];
      for (std::int64_t i = b; i < e; ++i) {
        Tensor r({chw[0], chw[1], chw[2]});
        std::memcpy(r.data().data(),
                    x_adv.data().data() + (i - b) * row_elems,
                    sizeof(float) * static_cast<std::size_t>(row_elems));
        rows[static_cast<std::size_t>(i)] = std::move(r);
        is_adv[static_cast<std::size_t>(i)] = true;
      }
    }
    std::fprintf(stderr, "[serve] perturbed %lld/%lld rows with PGD-%lld "
                 "(%.1fs)\n", static_cast<long long>(n_adv),
                 static_cast<long long>(n),
                 static_cast<long long>(s.attack_steps), sw.reset());
  }

  // ---- serve ---------------------------------------------------------------
  serve::ServeConfig cfg = serve::ServeConfig::from_env();
  cfg.telemetry.sample_every = telemetry_every;
  cfg.telemetry.window = 32;
  if (cache_mb >= 0) {
    cfg.cache_bytes = static_cast<std::size_t>(cache_mb) << 20;
  }
  if (client_rate >= 0.0) cfg.client_rate = client_rate;
  if (max_inflight >= 0) cfg.max_inflight_per_client = max_inflight;
  serve::Server server(registry, cfg);
  std::printf("serving %s v1: max_batch=%lld deadline=%lldus queue=%lld "
              "workers=%lld clients=%lld requests=%lld telemetry=every "
              "%lldth cache=%zuMiB rate=%.1f/s max_inflight=%lld\n",
              model_name.c_str(), static_cast<long long>(cfg.max_batch),
              static_cast<long long>(cfg.deadline_us),
              static_cast<long long>(cfg.queue_capacity),
              static_cast<long long>(cfg.workers),
              static_cast<long long>(clients),
              static_cast<long long>(requests),
              static_cast<long long>(telemetry_every),
              cfg.cache_bytes >> 20, cfg.client_rate,
              static_cast<long long>(cfg.max_inflight_per_client));
  std::unique_ptr<serve::net::TcpFrontend> frontend;
  if (listen_port >= 0) {
    serve::net::FrontendConfig fcfg;
    fcfg.port = static_cast<std::uint16_t>(listen_port);
    frontend = std::make_unique<serve::net::TcpFrontend>(server, fcfg);
    std::printf("listening on 127.0.0.1:%u — traffic goes through the socket "
                "(length-prefixed frames, serve/net/wire.hpp)\n",
                frontend->port());
  }
  std::unique_ptr<serve::net::AdminEndpoint> admin;
  if (admin_port >= 0) {
    serve::net::AdminConfig acfg;
    acfg.port = static_cast<std::uint16_t>(admin_port);
    admin = std::make_unique<serve::net::AdminEndpoint>(acfg);
    std::printf("admin endpoint on 127.0.0.1:%u — GET /metrics /slo "
                "/timeseries (read-only)\n",
                admin->port());
  }
  // Continuous telemetry: sample the registry into the time-series store and
  // evaluate the SLO monitors on a cadence. The env knob drives it; an admin
  // endpoint without one gets a 250ms default so its /timeseries and /slo
  // routes have data to show.
  std::int64_t ts_ms = obs::ts_interval_ms();
  if (ts_ms <= 0 && admin) ts_ms = 250;
  if (ts_ms > 0) {
    obs::register_default_serve_slos();
    obs::start_sampler(ts_ms);
    std::printf("time-series sampler: every %lldms into %zu-deep rings, "
                "%zu SLO monitors\n",
                static_cast<long long>(ts_ms),
                obs::timeseries().config().capacity, obs::slos().size());
  }

  // Periodic JSON-lines metric snapshots: one obs::registry() dump per line.
  // The emitter owns the file until it is joined; main appends the final
  // snapshot after shutdown so the last line always reflects the drained
  // server (>= 1 line even when the run finishes inside the first period).
  std::FILE* stats_f = nullptr;
  std::atomic<bool> stats_stop{false};
  std::thread stats_thread;
  if (stats_every_ms > 0) {
    stats_f = std::fopen(stats_out.c_str(), "w");
    if (stats_f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", stats_out.c_str());
      return 2;
    }
    stats_thread = std::thread([&] {
      while (!stats_stop.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(stats_every_ms));
        if (stats_stop.load()) break;
        const std::string line = obs::registry().snapshot().to_json();
        std::fprintf(stats_f, "%s\n", line.c_str());
        std::fflush(stats_f);
      }
    });
  }

  std::mutex agg_mu;
  SuspicionStat clean_susp, adv_susp;
  std::vector<std::uint64_t> version_counts(8, 0);
  std::atomic<std::int64_t> correct{0}, served{0}, rejected{0};
  std::vector<double> latencies_ms;
  latencies_ms.reserve(static_cast<std::size_t>(requests));

  std::atomic<std::int64_t> swap_at{swap_mid_run ? requests / 2 : -1};
  std::atomic<bool> swapped{false};
  const std::string ckpt_path = "ibrar_serve_hot_swap.ckpt";

  Stopwatch wall;
  std::vector<std::thread> threads;
  for (std::int64_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      // With --listen each client thread owns one socket connection, so the
      // run exercises the real wire path per client instead of futures.
      // Client thread c is client id c+1 everywhere (admission fairness is
      // keyed on it; id 0 is the anonymous default and shares one bucket).
      const auto my_id = static_cast<std::uint64_t>(c + 1);
      std::unique_ptr<serve::net::Client> net_client;
      if (frontend) {
        net_client = std::make_unique<serve::net::Client>(
            "127.0.0.1", frontend->port(), my_id);
      }
      for (std::int64_t r = c; r < requests; r += clients) {
        // Hot swap: the first client to cross the midpoint republishes the
        // current weights from a disk checkpoint as version 2, while every
        // other client keeps submitting against whatever version is live.
        if (swap_at.load() >= 0 && r >= swap_at.load() &&
            !swapped.exchange(true)) {
          nn::save_model(*model, ckpt_path);
          registry.publish_checkpoint(spec, ckpt_path, model_name + "-v2");
          std::fprintf(stderr, "[serve] hot-swapped to v2 at request %lld\n",
                       static_cast<long long>(r));
        }
        const std::int64_t row = r % n;
        bool ok = false;
        std::int64_t argmax = -1;
        std::uint64_t version = 0;
        bool sampled = false;
        float suspicion = -1.0f;
        Stopwatch lat;
        if (net_client) {
          const auto reply =
              net_client->submit(rows[static_cast<std::size_t>(row)]);
          ok = reply.ok();
          argmax = reply.argmax;
          version = reply.model_version;
          sampled = reply.sampled;
          suspicion = reply.suspicion;
        } else {
          const auto reply =
              server.submit(rows[static_cast<std::size_t>(row)], my_id).get();
          ok = reply.ok();
          argmax = reply.argmax;
          version = reply.model_version;
          sampled = reply.telemetry.sampled;
          suspicion = reply.telemetry.suspicion;
        }
        const double ms = lat.seconds() * 1e3;
        if (!ok) {
          rejected.fetch_add(1);
          continue;
        }
        served.fetch_add(1);
        if (argmax == data.test.labels[static_cast<std::size_t>(row)]) {
          correct.fetch_add(1);
        }
        std::lock_guard<std::mutex> lk(agg_mu);
        latencies_ms.push_back(ms);
        if (version < version_counts.size()) {
          ++version_counts[static_cast<std::size_t>(version)];
        }
        if (sampled && suspicion >= 0.0f) {
          (is_adv[static_cast<std::size_t>(row)] ? adv_susp : clean_susp)
              .add(suspicion);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = wall.seconds();
  if (frontend) frontend->stop();  // front-end first, then the server
  server.shutdown();
  if (swapped.load()) std::remove(ckpt_path.c_str());
  if (stats_f != nullptr) {
    stats_stop.store(true);
    stats_thread.join();
    const std::string line = obs::registry().snapshot().to_json();
    std::fprintf(stats_f, "%s\n", line.c_str());
    std::fclose(stats_f);
    std::fprintf(stderr, "[serve] metric snapshots -> %s\n",
                 stats_out.c_str());
  }
  if (obs::sampler_running()) {
    // One final quiescent tick so the stored series include the drained
    // end-state before the sampler thread goes away.
    obs::timeseries().sample_now(obs::registry());
    obs::slos().evaluate(obs::timeseries());
    obs::stop_sampler();
    std::fprintf(stderr,
                 "[serve] time-series: %zu series, %llu ticks, %llu dropped "
                 "samples\n",
                 obs::timeseries().series_count(),
                 static_cast<unsigned long long>(obs::timeseries().ticks()),
                 static_cast<unsigned long long>(
                     obs::timeseries().dropped_samples()));
  }
  if (admin && admin_linger_ms > 0) {
    // Hold the admin endpoint open on the drained end-state so an external
    // scraper (CI) can collect /metrics, /slo, /timeseries deterministically
    // — the serving window itself may be far shorter than a scrape cadence.
    std::fprintf(stderr, "[serve] admin endpoint lingering %lld ms\n",
                 static_cast<long long>(admin_linger_ms));
    std::this_thread::sleep_for(std::chrono::milliseconds(admin_linger_ms));
  }
  if (admin) admin->stop();
  if (!trace_path.empty()) {
    obs::dump_trace(trace_path);
    std::fprintf(stderr, "[serve] request trace (%zu spans) -> %s\n",
                 obs::trace_records().size(), trace_path.c_str());
  }
  if (obs::profiling_enabled()) obs::print_profile_table(stdout);
  if (!profile_out.empty()) {
    obs::dump_profile(profile_out);
    std::fprintf(stderr, "[serve] kernel profile JSON -> %s\n",
                 profile_out.c_str());
  }

  // ---- summary --------------------------------------------------------------
  auto pct = [&](double q) { return percentile(latencies_ms, q); };
  const auto stats = server.stats();
  const double throughput = static_cast<double>(requests) / seconds;
  std::printf("\n-- served %lld requests in %.2fs: %.1f req/s  p50 %.2fms  "
              "p99 %.2fms --\n",
              static_cast<long long>(served.load()), seconds, throughput,
              pct(0.5), pct(0.99));
  std::printf("   accuracy %.3f  rejected %lld  batches %llu (size %llu / "
              "deadline %llu / drain %llu)  max batch %llu\n",
              served.load() > 0
                  ? static_cast<double>(correct.load()) /
                        static_cast<double>(served.load())
                  : 0.0,
              static_cast<long long>(rejected.load()),
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.size_triggers),
              static_cast<unsigned long long>(stats.deadline_triggers),
              static_cast<unsigned long long>(stats.drain_triggers),
              static_cast<unsigned long long>(stats.max_batch_observed));
  if (server.cache().enabled()) {
    std::printf("   cache: %llu lookups, %llu hits (%llu in-flight joins), "
                "%llu misses, %llu evictions, %llu invalidations, %zu bytes "
                "resident\n",
                static_cast<unsigned long long>(stats.cache_lookups),
                static_cast<unsigned long long>(stats.cache_hits),
                static_cast<unsigned long long>(stats.cache_inflight_joins),
                static_cast<unsigned long long>(stats.cache_misses),
                static_cast<unsigned long long>(stats.cache_evictions),
                static_cast<unsigned long long>(stats.cache_invalidations),
                server.cache().bytes());
  }
  if (stats.admission_busy + stats.admission_throttled > 0) {
    std::printf("   admission: %llu busy-on-full, %llu per-client throttles "
                "(all kBusyRetryAfter with hints)\n",
                static_cast<unsigned long long>(stats.admission_busy),
                static_cast<unsigned long long>(stats.admission_throttled));
  }
  for (std::size_t v = 1; v < version_counts.size(); ++v) {
    if (version_counts[v] > 0) {
      std::printf("   model v%zu served %llu requests\n", v,
                  static_cast<unsigned long long>(version_counts[v]));
    }
  }
  if (telemetry_every > 0) {
    std::printf("   telemetry: %llu sampled, %llu scoring epochs, drift %s",
                static_cast<unsigned long long>(stats.telemetry_samples),
                static_cast<unsigned long long>(server.monitor().score_epoch()),
                server.monitor().drift_state() ==
                        serve::DriftDetector::kDrift
                    ? "DRIFT"
                    : "stable");
    if (clean_susp.n > 0) {
      std::printf(", mean suspicion clean %.3f (n=%lld)", clean_susp.mean(),
                  static_cast<long long>(clean_susp.n));
    }
    if (adv_susp.n > 0) {
      std::printf(", adversarial %.3f (n=%lld)", adv_susp.mean(),
                  static_cast<long long>(adv_susp.n));
    }
    std::printf("\n");
  }

  JsonReporter reporter(out_path);
  auto record = [&](const std::string& kernel, const std::string& shape,
                    double metric) {
    BenchRecord rec;
    rec.kernel = kernel;
    rec.shape = shape;
    rec.checksum = metric;
    rec.threads = runtime::num_threads();
    reporter.add(rec);
  };
  record("serve_cli/throughput_rps",
         "clients=" + std::to_string(clients) + ",model=" + model_name,
         throughput);
  record("serve_cli/p99_ms", "clients=" + std::to_string(clients), pct(0.99));
  record("serve_cli/accuracy", "served=" + std::to_string(served.load()),
         served.load() > 0 ? static_cast<double>(correct.load()) /
                                 static_cast<double>(served.load())
                           : 0.0);
  if (stats.cache_lookups > 0) {
    record("serve_cli/cache_hit_rate",
           "lookups=" + std::to_string(stats.cache_lookups),
           static_cast<double>(stats.cache_hits) /
               static_cast<double>(stats.cache_lookups));
  }
  if (clean_susp.n > 0) {
    record("serve_cli/suspicion_clean", "n=" + std::to_string(clean_susp.n),
           clean_susp.mean());
  }
  if (adv_susp.n > 0) {
    record("serve_cli/suspicion_adv", "n=" + std::to_string(adv_susp.n),
           adv_susp.mean());
  }
  reporter.write();
  return 0;
}
