// ibrar_analyze — the unified figure driver.
//
// Trains one method from one config, captures every tap once
// (analysis::capture_taps), and emits the quantities behind each paper
// figure from that single capture + one robust evaluation sweep:
//
//   Fig. 2  robust accuracy vs attack steps (PGD / CW / NIFGSM)
//   Fig. 3  t-SNE cluster separation of the penultimate tap
//   Fig. 4  per-epoch convergence trace (clean + PGD accuracy)
//   Fig. 5  information-plane coordinates per layer (streamed HSIC + binned MI)
//   Eq. 3   per-channel HSIC(f_c, Y) scores of the last conv tap
//
// Every artifact is also recorded to an ibrar-bench-v1 JSON document
// (--out, default ANALYZE.json): `kernel` names the artifact ("fig2/pgd"),
// `shape` the sweep point, `checksum` carries the headline metric, and
// `ns_per_op` the wall time.
//
//   ./ibrar_analyze --dataset synth-cifar10 --model vgg16 --base PGD --ibrar
//   ./ibrar_analyze --beta-sweep 2.0,0.5,0.1,0.0     # adds the Fig. 6 sweep
//
// Scales follow the same IBRAR_PROFILE / IBRAR_* env knobs as the benches.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/capture.hpp"
#include "analysis/driver.hpp"
#include "common.hpp"
#include "runtime/thread_pool.hpp"

using namespace ibrar;
using namespace ibrar::bench;

namespace {

std::vector<double> parse_doubles(const std::string& csv) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const auto comma = csv.find(',', pos);
    const auto end = comma == std::string::npos ? csv.size() : comma;
    out.push_back(std::stod(csv.substr(pos, end - pos)));
    pos = end + 1;
  }
  return out;
}

void record(JsonReporter& rep, const std::string& kernel,
            const std::string& shape, double metric, double seconds = 0.0) {
  BenchRecord r;
  r.kernel = kernel;
  r.shape = shape;
  r.checksum = metric;
  r.ns_per_op = seconds * 1e9;
  r.threads = runtime::num_threads();
  rep.add(r);
}

}  // namespace

int main(int argc, char** argv) {
  std::string dataset = "synth-cifar10";
  std::string model_name = "vgg16";
  std::string base = "CE";
  std::string out_path = env::get_string("IBRAR_BENCH_OUT", "ANALYZE.json");
  bool ibrar_on = false;
  std::vector<double> beta_sweep;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--dataset") dataset = next();
    else if (arg == "--model") model_name = next();
    else if (arg == "--base") base = next();
    else if (arg == "--ibrar") ibrar_on = true;
    else if (arg == "--out") out_path = next();
    else if (arg == "--beta-sweep") beta_sweep = parse_doubles(next());
    else {
      std::fprintf(stderr,
                   "usage: ibrar_analyze [--dataset D] [--model M] [--base "
                   "CE|PGD|TRADES|MART|HBaR|VIB] [--ibrar] [--out FILE] "
                   "[--beta-sweep b1,b2,...]\n");
      return arg == "--help" ? 0 : 2;
    }
  }

  print_header("ibrar_analyze: unified Fig. 2-6 artifact driver");
  const auto s = default_scale();
  const auto data = data::make_dataset(dataset, s.train_size, s.test_size);
  models::ModelSpec spec;
  spec.name = model_name;
  spec.num_classes = data.train.num_classes;

  JsonReporter reporter(out_path);
  Stopwatch total;

  // ---- train (history doubles as the Fig. 4 convergence trace) -------------
  analysis::TrainSpec tspec;
  tspec.base = base;
  tspec.ibrar = ibrar_on;
  tspec.mi = default_mi();
  tspec.inner = inner_attack_config(s);
  tspec.train = train_config(s);
  attacks::AttackConfig eval_cfg;
  eval_cfg.steps = s.attack_steps;
  attacks::PGD eval_pgd(eval_cfg);
  std::vector<train::EpochStats> history;
  Stopwatch sw;
  auto model = analysis::train_model(spec, data, tspec, 42, &history,
                                     &data.test, &eval_pgd, s.eval_samples);
  const std::string method = base + (ibrar_on ? "+IB-RAR" : "");
  std::fprintf(stderr, "[analyze] trained %s (%.1fs)\n", method.c_str(),
               sw.reset());

  std::printf("-- fig4: convergence of %s --\n  epoch   :", method.c_str());
  for (const auto& st : history)
    std::printf(" %6lld", static_cast<long long>(st.epoch));
  std::printf("\n  natural :");
  for (const auto& st : history) std::printf(" %6.2f", 100 * st.test_acc);
  std::printf("\n  adv(PGD):");
  for (const auto& st : history) std::printf(" %6.2f", 100 * st.adv_acc);
  std::printf("\n\n");
  for (const auto& st : history) {
    record(reporter, "fig4/" + method,
           "epoch=" + std::to_string(st.epoch) + "/natural", st.test_acc,
           st.seconds);
    record(reporter, "fig4/" + method,
           "epoch=" + std::to_string(st.epoch) + "/pgd", st.adv_acc);
  }

  // ---- capture taps once ----------------------------------------------------
  const std::int64_t n_capture =
      std::min<std::int64_t>(data.test.size(), s.eval_samples);
  const auto dump = analysis::capture_taps(*model, data.test, n_capture,
                                           s.batch);
  std::fprintf(stderr, "[analyze] captured %lld samples x %zu taps (%.1fs)\n",
               static_cast<long long>(dump.size()), dump.taps.size(),
               sw.reset());
  record(reporter, "capture/clean_acc", "n=" + std::to_string(dump.size()),
         dump.accuracy);

  // ---- fig2: robust accuracy vs steps ---------------------------------------
  const bool paper_profile = env::profile() == env::Profile::kPaper;
  struct SweepSpec {
    const char* attack;
    std::vector<std::int64_t> steps;
  };
  const std::vector<SweepSpec> sweeps = {
      {"pgd", paper_profile ? std::vector<std::int64_t>{1, 10, 20, 30, 40, 50}
                            : std::vector<std::int64_t>{1, 10, 30}},
      {"cw", paper_profile ? std::vector<std::int64_t>{10, 20, 30, 40, 50}
                           : std::vector<std::int64_t>{10, 30}},
      {"nifgsm", paper_profile ? std::vector<std::int64_t>{1, 3, 5, 7, 9, 10, 20}
                               : std::vector<std::int64_t>{1, 5, 10}},
  };
  for (const auto& sp : sweeps) {
    // The sweep overwrites cfg.steps per point, so no per-attack defaults.
    attacks::AttackConfig defaults;
    const auto sweep = analysis::attack_step_sweep(
        *model, data.test, sp.attack, sp.steps, defaults, s.batch,
        s.eval_samples);
    std::printf("-- fig2: %s accuracy vs steps --\n ", sp.attack);
    for (std::size_t i = 0; i < sweep.steps.size(); ++i) {
      std::printf(" %lld:%.2f%%", static_cast<long long>(sweep.steps[i]),
                  100 * sweep.robust_acc[i]);
      record(reporter, std::string("fig2/") + sp.attack,
             "steps=" + std::to_string(sweep.steps[i]), sweep.robust_acc[i],
             sweep.seconds[i]);
    }
    std::printf("\n");
    std::fprintf(stderr, "[analyze] fig2 %s sweep done (%.1fs)\n", sp.attack,
                 sw.reset());
  }
  std::printf("\n");

  // ---- fig3: cluster structure of the penultimate tap -----------------------
  {
    const std::size_t tap = dump.taps.size() - 1;
    const auto rep = analysis::cluster_report(dump, tap);
    std::printf("-- fig3: cluster separation of %s --\n"
                "  features: inter/intra %.3f, silhouette %.3f\n"
                "  t-SNE   : inter/intra %.3f, silhouette %.3f\n\n",
                dump.tap_names[tap].c_str(), rep.feature.separation_ratio,
                rep.feature.silhouette, rep.embedding.separation_ratio,
                rep.embedding.silhouette);
    record(reporter, "fig3/feature_separation", dump.tap_names[tap],
           rep.feature.separation_ratio);
    record(reporter, "fig3/feature_silhouette", dump.tap_names[tap],
           rep.feature.silhouette);
    record(reporter, "fig3/tsne_separation", dump.tap_names[tap],
           rep.embedding.separation_ratio, sw.seconds());
    record(reporter, "fig3/tsne_silhouette", dump.tap_names[tap],
           rep.embedding.silhouette);
    std::fprintf(stderr, "[analyze] fig3 done (%.1fs)\n", sw.reset());
  }

  // ---- fig5: information plane ----------------------------------------------
  {
    analysis::InfoPlaneConfig ip;
    ip.chunk = s.batch;  // streamed: full capture, one Gram per batch-chunk
    const auto plane = analysis::info_plane(dump, {}, model->num_classes(), ip);
    std::printf("-- fig5: information plane (chunked HSIC x 1e3) --\n");
    for (std::size_t i = 0; i < plane.layer.size(); ++i) {
      std::printf("  %-12s I(X;T)=%7.3f  I(T;Y)=%7.3f\n",
                  plane.layer[i].c_str(), 1e3 * plane.i_xt[i],
                  1e3 * plane.i_ty[i]);
      record(reporter, "fig5/i_xt", plane.layer[i], plane.i_xt[i]);
      record(reporter, "fig5/i_ty", plane.layer[i], plane.i_ty[i]);
    }
    std::printf("\n");
    std::fprintf(stderr, "[analyze] fig5 done (%.1fs)\n", sw.reset());
  }

  // ---- Eq. 3 channel scores --------------------------------------------------
  {
    const auto scores =
        analysis::last_conv_channel_scores(dump, *model, model->num_classes());
    float lo = scores[0], hi = scores[0], mean = 0.0f;
    for (const auto v : scores) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      mean += v;
    }
    mean /= static_cast<float>(scores.size());
    std::printf("-- eq3: channel scores (%zu channels) min/mean/max = "
                "%.4g / %.4g / %.4g --\n\n",
                scores.size(), lo, mean, hi);
    record(reporter, "eq3/channel_score_mean",
           "channels=" + std::to_string(scores.size()), mean, sw.reset());
  }

  // ---- robust suite (worst case over attacks) --------------------------------
  {
    const auto rob = train::evaluate_robust(
        *model, data.test,
        std::vector<std::string>{"pgd:steps=" + std::to_string(s.attack_steps) +
                                     ",active_set=1,best=step",
                                 "fgsm"},
        {s.batch, s.eval_samples, /*with_clean=*/true});
    std::printf("-- robust suite: clean %.2f%%", 100 * rob.clean_acc);
    record(reporter, "suite/clean", method, rob.clean_acc);
    for (const auto& a : rob.per_attack) {
      std::printf("  %s %.2f%%", a.name.c_str(), 100 * a.robust_acc);
      record(reporter, "suite/" + a.name, method, a.robust_acc,
             a.seconds);
    }
    std::printf("  worst-case %.2f%% --\n\n", 100 * rob.worst_case_acc);
    record(reporter, "suite/worst_case", method, rob.worst_case_acc);
    std::fprintf(stderr, "[analyze] robust suite done (%.1fs)\n", sw.reset());
  }

  // ---- fig6: optional beta sweep --------------------------------------------
  for (const auto beta : beta_sweep) {
    analysis::TrainSpec bspec = tspec;
    bspec.ibrar = true;
    bspec.mi.beta = static_cast<float>(beta);
    bspec.mi.alpha = static_cast<float>(
        env::get_double("IBRAR_FIG6_ALPHA_RATIO", 4.0) * beta);
    auto bmodel = analysis::train_model(spec, data, bspec, 42);
    attacks::AttackConfig c;
    c.steps = s.attack_steps;
    attacks::PGD atk(c);
    const double acc = train::evaluate_adversarial(*bmodel, data.test, atk,
                                                   s.batch, s.eval_samples);
    std::printf("-- fig6: beta=%.3f -> PGD %.2f%% --\n", beta, 100 * acc);
    record(reporter, "fig6/pgd", "beta=" + std::to_string(beta), acc,
           sw.reset());
  }

  reporter.write();
  std::printf("total %.1fs; artifacts in %s\n", total.seconds(),
              reporter.path().c_str());
  return 0;
}
