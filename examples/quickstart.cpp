// Quickstart: train a MiniVGG on the synthetic CIFAR-10 stand-in with the
// full IB-RAR recipe (MI loss on robust layers + feature-channel mask) and
// compare its PGD robustness against a plain CE-trained twin.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/ibrar.hpp"
#include "data/registry.hpp"
#include "models/registry.hpp"
#include "train/evaluate.hpp"
#include "util/stopwatch.hpp"

using namespace ibrar;

int main() {
  // 1. Data: procedural CIFAR-10-like images (see src/data/synthetic.hpp).
  const auto data = data::make_dataset("synth-cifar10", /*train=*/800,
                                       /*test=*/300);
  std::printf("dataset: %lld train / %lld test, %lld classes\n",
              static_cast<long long>(data.train.size()),
              static_cast<long long>(data.test.size()),
              static_cast<long long>(data.train.num_classes));

  train::TrainConfig tc;
  tc.epochs = 5;
  tc.batch_size = 100;
  tc.verbose = true;

  attacks::AttackConfig pgd_cfg;  // eps 8/255, alpha 2/255, 10 steps
  attacks::PGD pgd(pgd_cfg);

  Stopwatch sw;

  // 2. Baseline: plain cross-entropy.
  models::ModelSpec spec;  // vgg16, 10 classes, 16x16 RGB
  Rng rng_a(1);
  auto ce_model = models::make_model(spec, rng_a);
  {
    train::Trainer trainer(ce_model, std::make_shared<train::CEObjective>(), tc);
    trainer.fit(data.train);
  }
  std::printf("[%.1fs] CE model trained (%lld params)\n", sw.reset(),
              static_cast<long long>(ce_model->num_parameters()));

  // 3. IB-RAR: MI loss (Eq. 1) on the robust layers + Eq. (3) channel mask.
  Rng rng_b(1);
  auto ib_model = models::make_model(spec, rng_b);
  {
    core::MILossConfig mi;  // calibrated alpha/beta, robust layers
    auto objective = std::make_shared<core::IBRARObjective>(nullptr, mi);
    train::Trainer trainer(ib_model, objective, tc);
    trainer.epoch_hook = core::make_mask_hook(core::FeatureMaskConfig{},
                                              data.train);
    trainer.fit(data.train);
  }
  std::printf("[%.1fs] IB-RAR model trained\n", sw.reset());

  // 4. Evaluate both under clean data and PGD-10.
  const double ce_clean = train::evaluate_clean(*ce_model, data.test);
  const double ce_adv = train::evaluate_adversarial(*ce_model, data.test, pgd,
                                                    100, 200);
  std::printf("[%.1fs] CE      : clean %.2f%%  PGD10 %.2f%%\n", sw.reset(),
              100 * ce_clean, 100 * ce_adv);
  const double ib_clean = train::evaluate_clean(*ib_model, data.test);
  const double ib_adv = train::evaluate_adversarial(*ib_model, data.test, pgd,
                                                    100, 200);
  std::printf("[%.1fs] IB-RAR  : clean %.2f%%  PGD10 %.2f%%\n", sw.reset(),
              100 * ib_clean, 100 * ib_adv);
  std::printf("IB-RAR should retain noticeably more accuracy under attack.\n");
  return 0;
}
