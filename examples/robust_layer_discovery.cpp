// Robust-layer discovery example: runs the paper's Table 3 procedure on a
// MiniVGG — train one probe network per hidden layer with the IB loss on that
// single layer, measure PGD accuracy, and report which layers are "robust".
// Finishes by training an IB-RAR model restricted to the discovered layers.

#include <algorithm>
#include <cstdio>

#include "analysis/capture.hpp"
#include "analysis/driver.hpp"
#include "attacks/registry.hpp"
#include "core/ibrar.hpp"
#include "core/robust_layers.hpp"
#include "data/registry.hpp"
#include "models/registry.hpp"
#include "train/evaluate.hpp"
#include "util/table.hpp"

using namespace ibrar;

int main() {
  const auto data = data::make_dataset("synth-cifar10", 600, 250);
  models::ModelSpec spec;  // MiniVGG

  core::RobustLayerConfig cfg;
  cfg.train.epochs = 3;
  cfg.train.batch_size = 100;
  cfg.eval_attack.steps = 10;
  cfg.eval_samples = 150;

  core::RobustLayerSelector selector(
      [&](Rng& rng) { return models::make_model(spec, rng); }, cfg);
  const auto report = selector.select(data.train, data.test);

  Table table({"Layer", "Adv. acc %", "Test acc %", "Robust?"});
  for (const auto& r : report.per_layer) {
    table.add_row({r.layer, Table::num(100 * r.adv_acc, 2),
                   Table::num(100 * r.test_acc, 2), r.robust ? "yes" : "no"});
  }
  table.print();
  std::printf("CE baseline: adv %.2f%%, clean %.2f%%\n",
              100 * report.baseline_adv_acc, 100 * report.baseline_test_acc);
  std::printf("Robust layers:");
  for (const auto& l : report.robust_layers) std::printf(" %s", l.c_str());
  std::printf("  (paper found conv_block5, fc1, fc2 for VGG16)\n\n");

  // Train the final model on the discovered set.
  Rng rng(7);
  auto model = models::make_model(spec, rng);
  core::MILossConfig mi;
  mi.selection = core::LayerSelection::kExplicit;
  mi.layers = report.robust_layers;
  auto obj = std::make_shared<core::IBRARObjective>(nullptr, mi);
  train::TrainConfig tc = cfg.train;
  tc.epochs = 4;
  train::Trainer trainer(model, obj, tc);
  trainer.epoch_hook = core::make_mask_hook(core::FeatureMaskConfig{},
                                            data.train);
  trainer.fit(data.train);

  // Final report through the registry + one-pass robust driver: PGD with the
  // active-set scheduler (cost tracks the surviving examples) plus FGSM, and
  // the worst case across both.
  // Clean accuracy over the whole test set (comparable with the CE-baseline
  // figure above); the attack suite samples 150 examples like the probes did.
  const double clean = train::evaluate_clean(*model, data.test);
  const auto robust = train::evaluate_robust(
      *model, data.test,
      std::vector<std::string>{"pgd:steps=10,active_set=1,best=step", "fgsm"},
      {100, 150, /*with_clean=*/false});
  std::printf("IB-RAR(discovered layers): clean %.2f%%", 100 * clean);
  for (const auto& a : robust.per_attack) {
    std::printf("  %s %.2f%%", a.name.c_str(), 100 * a.robust_acc);
  }
  std::printf("  worst-case %.2f%%\n", 100 * robust.worst_case_acc);

  // Eq. (3) view of the trained model: one tapped capture, then per-channel
  // HSIC(f_c, Y) of the last conv block — the scores the feature mask drops
  // its bottom 5% by.
  const auto dump = analysis::capture_taps(*model, data.test, 150);
  const auto scores =
      analysis::last_conv_channel_scores(dump, *model, model->num_classes());
  auto sorted = scores;
  std::sort(sorted.begin(), sorted.end());
  std::printf("Eq. 3 channel scores over %zu channels: min %.4g, median %.4g, "
              "max %.4g (lowest 5%% are masked)\n",
              scores.size(), sorted.front(), sorted[sorted.size() / 2],
              sorted.back());
  return 0;
}
