// Attack playground: train a small model, then run every attack in the suite
// against it at a few step counts, printing accuracy and perturbation norms.
// A compact tour of the src/attacks API.

#include <cmath>
#include <cstdio>

#include "attacks/adaptive.hpp"
#include "attacks/cw.hpp"
#include "attacks/fab.hpp"
#include "attacks/fgsm.hpp"
#include "attacks/mifgsm.hpp"
#include "attacks/nifgsm.hpp"
#include "attacks/pgd.hpp"
#include "attacks/square.hpp"
#include "core/mi_loss.hpp"
#include "data/registry.hpp"
#include "models/registry.hpp"
#include "train/evaluate.hpp"
#include "train/trainer.hpp"
#include "util/table.hpp"

using namespace ibrar;

namespace {

struct NormStats {
  double linf = 0;
  double l2 = 0;
};

NormStats perturbation_norms(const Tensor& adv, const Tensor& x) {
  NormStats s;
  const auto n = adv.dim(0);
  const std::int64_t img = adv.numel() / n;
  for (std::int64_t i = 0; i < n; ++i) {
    double l2 = 0, linf = 0;
    for (std::int64_t k = 0; k < img; ++k) {
      const double d = std::fabs(adv[i * img + k] - x[i * img + k]);
      l2 += d * d;
      linf = std::max(linf, d);
    }
    s.l2 += std::sqrt(l2);
    s.linf = std::max(s.linf, linf);
  }
  s.l2 /= n;
  return s;
}

}  // namespace

int main() {
  const auto data = data::make_dataset("synth-cifar10", 600, 200);
  models::ModelSpec spec;
  Rng rng(1);
  auto model = models::make_model(spec, rng);
  {
    train::TrainConfig tc;
    tc.epochs = 4;
    tc.batch_size = 100;
    train::Trainer(model, std::make_shared<train::CEObjective>(), tc)
        .fit(data.train);
  }

  std::vector<std::int64_t> idx(100);
  for (std::int64_t i = 0; i < 100; ++i) idx[static_cast<std::size_t>(i)] = i;
  const auto batch = data::make_batch(data.test, idx);
  const double clean = attacks::accuracy(*model, batch.x, batch.y);
  std::printf("clean accuracy on the probe batch: %.2f%%\n\n", 100 * clean);

  Table table({"Attack", "Acc %", "mean L2", "max Linf", "eps budget"});
  auto run = [&](attacks::Attack& atk) {
    const Tensor adv = atk.perturb(*model, batch.x, batch.y);
    const double acc = attacks::accuracy(*model, adv, batch.y);
    const auto norms = perturbation_norms(adv, batch.x);
    table.add_row({atk.name(), Table::num(100 * acc, 2),
                   Table::num(norms.l2, 4), Table::num(norms.linf, 4),
                   Table::num(atk.config().eps, 4)});
  };

  attacks::AttackConfig cfg;  // eps 8/255
  attacks::FGSM fgsm(cfg);
  run(fgsm);
  for (const std::int64_t steps : {1L, 10L, 40L}) {
    attacks::AttackConfig c = cfg;
    c.steps = steps;
    attacks::PGD pgd(c);
    run(pgd);
  }
  {
    attacks::AttackConfig c = cfg;
    c.steps = 10;
    attacks::NIFGSM ni(c);
    run(ni);
    attacks::MIFGSM mi_fgsm(c);
    run(mi_fgsm);
    attacks::FAB fab(c);
    run(fab);
  }
  {
    // Black-box control: no gradients, random-search queries only.
    attacks::AttackConfig c = cfg;
    c.steps = 200;
    attacks::SquareAttack square(c);
    run(square);
  }
  {
    attacks::AttackConfig c = cfg;
    c.steps = 50;
    attacks::CW cw(c);
    run(cw);  // L2 attack: Linf column exceeds eps by design
  }
  {
    attacks::AttackConfig c = cfg;
    c.steps = 10;
    mi::IBObjectiveConfig ib;
    ib.layer_indices = {4, 5, 6};  // VGG robust layers
    attacks::AdaptivePGD adaptive(c, ib);
    run(adaptive);
  }
  table.print();
  std::printf("\nNote: CW is an L2 attack (Torchattacks convention), so its "
              "Linf exceeds the 8/255 budget the Linf attacks respect.\n");
  return 0;
}
