// Attack playground: train a small model, then run the whole registry suite
// against it via spec strings, printing accuracy and perturbation norms —
// plus a composite "fgsm→pgd→cw" pipeline through the RobustReport driver.
// A compact tour of the src/attacks engine + registry API.

#include <cmath>
#include <cstdio>

#include "attacks/registry.hpp"
#include "data/registry.hpp"
#include "models/registry.hpp"
#include "train/evaluate.hpp"
#include "train/trainer.hpp"
#include "util/table.hpp"

using namespace ibrar;

namespace {

struct NormStats {
  double linf = 0;
  double l2 = 0;
};

NormStats perturbation_norms(const Tensor& adv, const Tensor& x) {
  NormStats s;
  const auto n = adv.dim(0);
  const std::int64_t img = adv.numel() / n;
  for (std::int64_t i = 0; i < n; ++i) {
    double l2 = 0, linf = 0;
    for (std::int64_t k = 0; k < img; ++k) {
      const double d = std::fabs(adv[i * img + k] - x[i * img + k]);
      l2 += d * d;
      linf = std::max(linf, d);
    }
    s.l2 += std::sqrt(l2);
    s.linf = std::max(s.linf, linf);
  }
  s.l2 /= n;
  return s;
}

}  // namespace

int main() {
  const auto data = data::make_dataset("synth-cifar10", 600, 200);
  models::ModelSpec spec;
  Rng rng(1);
  auto model = models::make_model(spec, rng);
  {
    train::TrainConfig tc;
    tc.epochs = 4;
    tc.batch_size = 100;
    train::Trainer(model, std::make_shared<train::CEObjective>(), tc)
        .fit(data.train);
  }

  const auto batch = data::make_batch(data.test, 0, 100);
  const double clean = attacks::accuracy(*model, batch.x, batch.y);
  std::printf("clean accuracy on the probe batch: %.2f%%\n\n", 100 * clean);

  // The whole suite as registry specs — every attack is a string away.
  const char* specs[] = {
      "fgsm",
      "pgd:steps=1",
      "pgd:steps=10",
      "pgd:steps=40",
      "pgd:steps=10,active_set=1,best=step",  // engine's early-stop scheduler
      "nifgsm:steps=10",
      "mifgsm:steps=10",
      "fab:steps=10",
      "square:steps=200",  // black-box control: queries only, no gradients
      "cw:steps=50,c=5",
      "adaptive:steps=10,layers=4+5+6",  // defender's own VGG robust layers
  };

  Table table({"Spec", "Acc %", "mean L2", "max Linf", "eps budget"});
  for (const char* s : specs) {
    auto atk = attacks::parse_spec(s);
    const Tensor adv = atk->perturb(*model, batch.x, batch.y);
    const double acc = attacks::accuracy(*model, adv, batch.y);
    const auto norms = perturbation_norms(adv, batch.x);
    table.add_row({s, Table::num(100 * acc, 2), Table::num(norms.l2, 4),
                   Table::num(norms.linf, 4),
                   Table::num(atk->config().eps, 4)});
  }
  table.print();
  std::printf("\nNote: CW is an L2 attack (Torchattacks convention), so its "
              "Linf exceeds the 8/255 budget the Linf attacks respect.\n\n");

  // Composite pipeline through the one-pass robust report: cheap attacks
  // first, survivors forwarded to the expensive ones.
  const auto report = train::evaluate_robust(
      *model, data.test,
      std::vector<std::string>{"fgsm->pgd:restarts=3->cw:steps=30"},
      {100, 100});
  std::printf("composite \"fgsm->pgd:restarts=3->cw\" over %lld examples "
              "(clean %.2f%%):\n",
              static_cast<long long>(report.examples),
              100 * report.clean_acc);
  for (const auto& stage : report.per_attack.front().stages) {
    std::printf("  %-8s forwarded %3lld  newly fooled %3lld  cumulative "
                "robust %.2f%%\n",
                stage.name.c_str(), static_cast<long long>(stage.forwarded),
                static_cast<long long>(stage.fooled), 100 * stage.robust_acc);
  }
  std::printf("worst-case accuracy (clean ∧ every stage): %.2f%%\n",
              100 * report.worst_case_acc);
  return 0;
}
