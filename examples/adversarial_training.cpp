// Adversarial training example: PGD-AT, TRADES, and MART, each with and
// without IB-RAR, on the synthetic CIFAR-10 stand-in — a miniature of the
// paper's Table 1 protocol with a readable command-line interface.
//
// Usage:
//   ./adversarial_training [method] [epochs]
//   method in {pgd, trades, mart}, default pgd.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/ibrar.hpp"
#include "data/registry.hpp"
#include "models/registry.hpp"
#include "attacks/fgsm.hpp"
#include "train/evaluate.hpp"
#include "train/mart.hpp"
#include "train/trades.hpp"

using namespace ibrar;

namespace {

train::ObjectivePtr base_objective(const std::string& method,
                                   const attacks::AttackConfig& inner) {
  if (method == "trades") return std::make_shared<train::TRADESObjective>(inner);
  if (method == "mart") return std::make_shared<train::MARTObjective>(inner);
  return std::make_shared<train::PGDATObjective>(inner);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string method = argc > 1 ? argv[1] : "pgd";
  const std::int64_t epochs = argc > 2 ? std::atol(argv[2]) : 4;

  const auto data = data::make_dataset("synth-cifar10", 800, 300);
  models::ModelSpec spec;  // MiniVGG
  train::TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 100;
  tc.verbose = true;

  attacks::AttackConfig inner;
  inner.steps = 4;  // inner maximization steps during training

  std::printf("== %s adversarial training (%lld epochs) ==\n", method.c_str(),
              static_cast<long long>(epochs));

  // Baseline adversarial training.
  Rng r1(42);
  auto base_model = models::make_model(spec, r1);
  train::Trainer(base_model, base_objective(method, inner), tc)
      .fit(data.train);

  // Same, wrapped with IB-RAR (Eq. 2 MI loss + Eq. 3 channel mask).
  Rng r2(42);
  auto ib_model = models::make_model(spec, r2);
  {
    auto obj = std::make_shared<core::IBRARObjective>(
        base_objective(method, inner), core::MILossConfig{});
    train::Trainer trainer(ib_model, obj, tc);
    trainer.epoch_hook = core::make_mask_hook(core::FeatureMaskConfig{},
                                              data.train);
    trainer.fit(data.train);
  }

  // Evaluate both under a reduced version of the paper's attack battery.
  auto report = [&](const std::string& name, models::TapClassifier& m) {
    attacks::AttackConfig pc;
    pc.steps = 10;
    attacks::PGD pgd(pc);
    attacks::FGSM fgsm(attacks::AttackConfig{});
    const double natural = train::evaluate_clean(m, data.test);
    const double a_pgd = train::evaluate_adversarial(m, data.test, pgd, 100, 200);
    const double a_fgsm =
        train::evaluate_adversarial(m, data.test, fgsm, 100, 200);
    std::printf("%-18s natural %.2f%%  PGD10 %.2f%%  FGSM %.2f%%\n",
                name.c_str(), 100 * natural, 100 * a_pgd, 100 * a_fgsm);
  };
  report(method, *base_model);
  report(method + " (IB-RAR)", *ib_model);
  return 0;
}
