#pragma once
// Continuous telemetry tier 2: declarative SLO monitors with multi-window
// burn-rate evaluation (the Google SRE alerting recipe).
//
// An SloSpec states an objective ("at most 5% of requests rejected", "p99
// compute under 500ms") plus two evaluation windows. Each evaluation
// computes the *burn rate* — how fast the error budget is being consumed,
// where 1.0 means "exactly on budget" — over both windows from the
// time-series store:
//
//   kRatio      burn(w) = (bad_rate(w) / (bad_rate(w) + good_rate(w)))
//                         / objective
//   kValueBelow burn(w) = windowed_mean(series, w) / objective
//
// and drives a three-state machine:
//
//   breach  : fast burn >= fast_burn AND slow burn >= 1.0
//             (the page condition — burning hot now, and the long window
//             confirms it is not a blip)
//   warning : slow burn >= slow_burn (sustained slow burn — ticket, not page)
//   ok      : otherwise
//
// Within an episode the state is monotone: it can escalate warning -> breach
// but never de-escalates to warning — it holds until the monitor evaluates
// clean, then drops to ok (tools/check_serve_stats.py gates this on CI
// scrapes). Every monitor mirrors its state into the obs.slo.<name>.state
// gauge (0/1/2) and records a zero-duration structured event in the trace on
// each escalation ("slo.breach.<name>" / "slo.warning.<name>", correlation
// id = transition count), so breaches land in the same timeline as request
// spans.
//
// Evaluation is driven by the time-series sampler (obs::start_sampler) after
// each tick, or explicitly via slos().evaluate(...) — it reads only the
// store and touches no serving lock.

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"

namespace ibrar::obs {

enum class SloState { kOk = 0, kWarning = 1, kBreach = 2 };

const char* slo_state_name(SloState s);

struct SloSpec {
  enum class Kind {
    kRatio,       ///< bad-event fraction of traffic vs an objective ratio
    kValueBelow,  ///< a value series must stay below the objective
  };
  std::string name;  ///< gauge suffix: obs.slo.<name>.state
  Kind kind = Kind::kRatio;
  /// kRatio: counter series summed as the bad-event rate.
  /// kValueBelow: exactly one value series (e.g. "serve.compute_ns.p99").
  std::vector<std::string> bad_series;
  /// kRatio only: counter series for the GOOD events (bad fraction is
  /// bad / (bad + good), so e.g. serve.accepted works as the good side of a
  /// reject-rate SLO without a total counter existing anywhere).
  std::string good_series;
  /// Max bad fraction (kRatio) or value ceiling (kValueBelow).
  double objective = 0.01;
  std::int64_t fast_window_ns = 60LL * 1000 * 1000 * 1000;        ///< 1 min
  std::int64_t slow_window_ns = 10LL * 60 * 1000 * 1000 * 1000;   ///< 10 min
  double fast_burn = 4.0;  ///< fast-window threshold for the breach state
  double slow_burn = 1.0;  ///< slow-window threshold for the warning state
};

struct SloStatus {
  std::string name;
  SloState state = SloState::kOk;
  double fast_burn_rate = 0.0;
  double slow_burn_rate = 0.0;
  double objective = 0.0;
  std::uint64_t transitions = 0;   ///< state changes since construction
  std::int64_t last_eval_ns = 0;
};

class SloMonitor {
 public:
  explicit SloMonitor(SloSpec spec);

  /// Evaluate against the store at time t_ns (defaults to now); updates the
  /// state gauge, records an escalation event in the trace if the state
  /// rose, and returns the new state.
  SloState evaluate(const TimeSeriesStore& ts, std::int64_t t_ns = -1);

  SloStatus status() const;
  const SloSpec& spec() const { return spec_; }

 private:
  double burn(const TimeSeriesStore& ts, std::int64_t window_ns) const;

  SloSpec spec_;
  SloState state_ = SloState::kOk;
  double fast_rate_ = 0.0;
  double slow_rate_ = 0.0;
  std::uint64_t transitions_ = 0;
  std::int64_t last_eval_ns_ = 0;
  Gauge& g_state_;
  // Trace span names must outlive any dump; monitors live in the leaked SLO
  // registry, so member strings do.
  const std::string breach_event_;
  const std::string warning_event_;
};

/// Process-global monitor set, evaluated by the sampler thread.
class SloRegistry {
 public:
  /// Register a monitor; a spec whose name is already registered is ignored
  /// (idempotent defaults). The reference is stable for the process.
  SloMonitor& add(SloSpec spec);

  /// Evaluate every monitor (sampler tick / tests).
  void evaluate(const TimeSeriesStore& ts, std::int64_t t_ns = -1);

  std::vector<SloStatus> statuses() const;

  /// {"slos":[{name, state, state_value, fast_burn_rate, ...}]} — what the
  /// admin endpoint's GET /slo serves.
  std::string to_json() const;

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::deque<SloMonitor> monitors_;  // deque: references stable on growth
};

SloRegistry& slos();

/// Install the default serving SLOs (idempotent):
///   serve_compute_p99 — p99 of serve.compute_ns under 500ms
///   serve_reject_rate — rejections+busy+throttled under 5% of traffic
///   serve_cache_miss_rate — cache misses under 99% of lookups
void register_default_serve_slos();

}  // namespace ibrar::obs
