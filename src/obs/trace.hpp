#pragma once
// Request tracing: scoped spans into per-thread ring buffers, exportable as
// chrome://tracing JSON.
//
// A Span records {static name, begin_ns, end_ns, small thread id, correlation
// id} into the recording thread's ring buffer on destruction. Rings are
// fixed-capacity (IBRAR_OBS_TRACE_CAP records per thread, default 8192) and
// overwrite oldest-first, so tracing is O(1) per span and can stay on in a
// long-lived server — dump_trace() exports the most recent window.
//
// Sampling: the serving runtime traces every Kth admitted request, K from
// IBRAR_OBS_TRACE_SAMPLE (0 = tracing off, the default). A sampled request
// contributes the five-stage lifecycle admission -> queue_wait ->
// batch_assembly -> compute -> telemetry_rescore -> reply (telemetry_rescore
// only when the request was also picked by the telemetry sampler). Spans that
// are reconstructed after the fact (queue_wait is only known when the batch
// assembles) go through record_span with explicit timestamps — every
// timestamp is obs::now_ns(), so all spans share one time axis.
//
// dump_trace(path) writes Chrome Trace Event JSON: load it at
// chrome://tracing or https://ui.perfetto.dev. Correlation ids land in
// args.req so one request's spans can be followed across threads.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/clock.hpp"

namespace ibrar::obs {

struct SpanRecord {
  const char* name = nullptr;  ///< static-storage string (not owned)
  std::int64_t begin_ns = 0;
  std::int64_t end_ns = 0;
  std::uint32_t tid = 0;       ///< small per-thread id, stable per thread
  std::uint64_t corr = 0;      ///< correlation id (request index); 0 = none
};

/// K from IBRAR_OBS_TRACE_SAMPLE (cached on first call); 0 disables tracing.
std::int64_t trace_sample_every();
/// Programmatic override (tests / benches / CLI flags).
void set_trace_sample_every(std::int64_t k);

inline bool trace_enabled() { return trace_sample_every() > 0; }

/// Cadence gate over an admission-sequence index: true for 0, K, 2K, ...
inline bool trace_should_sample(std::uint64_t index) {
  const std::int64_t k = trace_sample_every();
  return k > 0 && index % static_cast<std::uint64_t>(k) == 0;
}

/// Append a completed span with explicit timestamps to the calling thread's
/// ring. `name` must have static storage duration.
void record_span(const char* name, std::int64_t begin_ns, std::int64_t end_ns,
                 std::uint64_t corr = 0);

/// RAII span: stamps begin at construction, records at destruction when
/// `active`. Inactive spans skip the clock reads entirely.
class Span {
 public:
  explicit Span(const char* name, bool active = trace_enabled(),
                std::uint64_t corr = 0)
      : name_(active ? name : nullptr),
        corr_(corr),
        begin_ns_(active ? now_ns() : 0) {}
  ~Span() {
    if (name_ != nullptr) record_span(name_, begin_ns_, now_ns(), corr_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  std::uint64_t corr_;
  std::int64_t begin_ns_;
};

/// Merged copy of every thread's ring, oldest-first per thread (no global
/// ordering guarantee; sort by begin_ns if you need one).
std::vector<SpanRecord> trace_records();

/// Spans overwritten by ring wrap-around since the last clear_trace().
std::uint64_t trace_dropped();

/// Empty all rings (test isolation / between benchmark phases).
void clear_trace();

/// Chrome Trace Event JSON ({"traceEvents":[...]}) of trace_records().
std::string trace_json();

/// Write trace_json() to `path`; throws std::runtime_error on I/O failure.
void dump_trace(const std::string& path);

}  // namespace ibrar::obs
