#pragma once
// Opt-in per-kernel profiling hooks: where did the nanoseconds go?
//
// A ProfileScope at a kernel's entry accumulates {calls, total ns} into a
// string-named ProfileSite when profiling is on (IBRAR_OBS_PROFILE=1, or
// set_profiling_enabled(true)). The contract that lets the hooks live in the
// hottest kernels permanently:
//
//  * Disabled (the default), a scope is one predictable branch on a cached
//    atomic flag — no clock read, no store. bench_obs gates that this costs
//    under ~5 ns per scope, i.e. unmeasurable at kernel granularity.
//  * Enabled, the cost is two clock reads plus two relaxed fetch_adds on the
//    thread's shard of the site.
//  * Observation never changes computation: the hooks touch no kernel data,
//    so outputs are bit-identical with profiling on or off
//    (tests/test_obs.cpp memcmps logits to enforce it).
//
// Sites are process-global and keyed by name; instrumented kernels resolve
// theirs once through a function-local static:
//
//   static obs::ProfileSite& site = obs::profile_site("tensor/gemm_packed");
//   obs::ProfileScope prof(site);
//
// profile_table() returns the aggregated per-kernel time table;
// print_profile_table() renders it (benches and ibrar_serve call it at exit
// when profiling is on).

#include <array>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"  // kMetricShards + detail::shard_slot

namespace ibrar::obs {

/// Cached IBRAR_OBS_PROFILE (read once); overridable below.
bool profiling_enabled();
void set_profiling_enabled(bool on);

/// Sharded accumulator for one instrumented kernel.
struct ProfileSite {
  explicit ProfileSite(std::string name_) : name(std::move(name_)) {}
  const std::string name;
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::int64_t> ns{0};
  };
  std::array<Shard, kMetricShards> shards{};

  void add(std::int64_t elapsed_ns) {
    auto& s = shards[static_cast<std::size_t>(detail::shard_slot())];
    s.calls.fetch_add(1, std::memory_order_relaxed);
    s.ns.fetch_add(elapsed_ns, std::memory_order_relaxed);
  }
};

/// Find-or-create the site for `name`; the reference is stable for the
/// process lifetime.
ProfileSite& profile_site(const char* name);

/// RAII timer attributing the enclosed scope to `site` when profiling is on.
class ProfileScope {
 public:
  explicit ProfileScope(ProfileSite& site)
      : site_(profiling_enabled() ? &site : nullptr),
        t0_(site_ != nullptr ? now_ns() : 0) {}
  ~ProfileScope() {
    if (site_ != nullptr) site_->add(now_ns() - t0_);
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  ProfileSite* site_;
  std::int64_t t0_;
};

struct ProfileEntry {
  std::string name;
  std::uint64_t calls = 0;
  std::int64_t total_ns = 0;
  double mean_ns() const {
    return calls > 0 ? static_cast<double>(total_ns) /
                           static_cast<double>(calls)
                     : 0.0;
  }
};

/// Aggregated table over all sites with at least one call, total_ns
/// descending.
std::vector<ProfileEntry> profile_table();

/// Zero every site's accumulators (between benchmark phases / tests).
void reset_profile();

/// Render profile_table() as an aligned text table ("(empty)" line when
/// nothing was recorded).
void print_profile_table(std::FILE* out);

/// profile_table() as one JSON object:
/// {"sites":[{"name":...,"calls":N,"total_ns":N,"mean_ns":X},...]} — the
/// machine-readable sibling of print_profile_table(), written by
/// `ibrar_serve --profile-out` and uploaded next to BENCH artifacts in CI.
std::string profile_to_json();

/// Write profile_to_json() to `path`; throws std::runtime_error on I/O
/// failure.
void dump_profile(const std::string& path);

}  // namespace ibrar::obs
