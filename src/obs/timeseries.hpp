#pragma once
// Continuous telemetry tier 1: time series over the metrics registry.
//
// obs::registry() answers "what are the counters NOW"; production monitoring
// needs "how fast is this counter moving" and "what was p99 five windows
// ago". TimeSeriesStore closes that gap: a background sampler (or an
// explicit sample_now() call — what the tests drive) takes one registry
// snapshot per tick and appends, per metric, into fixed-capacity rings:
//
//   counters    -> series "<name>"            (raw cumulative value)
//   gauges      -> series "<name>"            (last-write value)
//   histograms  -> series "<name>.count"      (cumulative observation count)
//                  series "<name>.p50"/".p99" (bucket-read percentiles)
//                  series "<name>.mean"
//
// Rings are O(1) append, oldest-first overwrite; every overwritten sample is
// counted in the obs.ts.dropped_samples registry counter — history loss is a
// number on a dashboard, never silent truncation. rate(name, window) reads a
// delta-rate off the ring (correct across the overwrite boundary: it uses
// whatever suffix of history survives), percentile_series(name, q) returns
// the percentile track a latency SLO watches.
//
// Locking contract (the PR-6 rule extended): the sampler must never take a
// lock a request path holds. Recording paths write pre-resolved metric
// handles lock-free; MetricsRegistry::snapshot() holds the registry mutex
// only to copy the pointer table (requests take that mutex only to resolve
// NEW names, never per record); the store's own mutex is shared by the
// sampler and query paths only — no serving code ever touches it.
//
// Knobs: IBRAR_OBS_TS_INTERVAL_MS (sampler cadence, 0 = off — the default),
// IBRAR_OBS_TS_CAP (samples retained per series, default 512).

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace ibrar::obs {

struct TsSample {
  std::int64_t t_ns = 0;  ///< obs::now_ns() at the sampling tick
  double value = 0.0;
};

struct TimeSeriesConfig {
  /// Samples retained per series (ring capacity; oldest overwritten).
  std::size_t capacity = 512;
  /// Defaults overridden by IBRAR_OBS_TS_CAP.
  static TimeSeriesConfig from_env();
};

class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(TimeSeriesConfig cfg = TimeSeriesConfig());
  ~TimeSeriesStore();
  TimeSeriesStore(const TimeSeriesStore&) = delete;
  TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;

  /// Take one registry snapshot and append every derived series, stamped
  /// `t_ns` (defaults to now). Returns the number of series touched. This is
  /// what the background sampler calls once per interval; tests call it
  /// directly for a deterministic tick.
  std::size_t sample_now(MetricsRegistry& reg, std::int64_t t_ns = -1);

  /// Append one point to an explicit series (the drift detector and tests
  /// feed synthetic tracks through this).
  void append(const std::string& series, std::int64_t t_ns, double value);

  /// Oldest-first copy of a series' surviving samples (empty if unknown).
  std::vector<TsSample> series(const std::string& name) const;

  /// Per-second delta rate of `name` over (up to) the trailing `window_ns`:
  /// (v_last - v_base) / (t_last - t_base) * 1e9, where base is the oldest
  /// surviving sample within the window. Counters wrap the ring without
  /// corrupting the rate — the base is always a real retained sample, so the
  /// delta is exact over the span actually used. Returns 0 with fewer than
  /// two samples in the window.
  double rate(const std::string& name, std::int64_t window_ns) const;

  /// Convenience for histogram percentile tracks: series("<name>.p50") /
  /// (".p99"), picked by q (only 0.5 and 0.99 tracks are sampled).
  std::vector<TsSample> percentile_series(const std::string& hist_name,
                                          double q) const;

  /// Last appended value of a series (0 when empty/unknown).
  double last(const std::string& name) const;

  /// Samples overwritten ring-wide since construction (also mirrored into
  /// the obs.ts.dropped_samples registry counter).
  std::uint64_t dropped_samples() const;

  /// Number of distinct series.
  std::size_t series_count() const;

  /// Sorted names of every series (the admin endpoint's listing).
  std::vector<std::string> series_names() const;

  /// Sampling ticks completed.
  std::uint64_t ticks() const;

  const TimeSeriesConfig& config() const { return cfg_; }

 private:
  struct Ring {
    std::vector<TsSample> buf;
    std::size_t next = 0;
    std::size_t filled = 0;
  };
  void append_locked(const std::string& series, std::int64_t t_ns,
                     double value);
  const Ring* find(const std::string& name) const;

  TimeSeriesConfig cfg_;
  mutable std::mutex mu_;
  std::map<std::string, Ring> rings_;
  std::uint64_t dropped_ = 0;
  std::uint64_t ticks_ = 0;
  Counter& c_dropped_;  ///< obs.ts.dropped_samples
};

/// The process-global store the admin endpoint and SLO monitors read.
TimeSeriesStore& timeseries();

/// Background sampler driving timeseries().sample_now(registry()) every
/// `interval_ms` (clamped to >= 10), then evaluating the SLO registry (see
/// obs/slo.hpp). start is idempotent (the first interval wins until stop);
/// stop joins the thread. interval_ms <= 0 is a no-op start.
void start_sampler(std::int64_t interval_ms);
void stop_sampler();
bool sampler_running();

/// IBRAR_OBS_TS_INTERVAL_MS (0 = sampler off). Read once, cached.
std::int64_t ts_interval_ms();

}  // namespace ibrar::obs
