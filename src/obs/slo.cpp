#include "obs/slo.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/clock.hpp"
#include "obs/trace.hpp"

namespace ibrar::obs {

const char* slo_state_name(SloState s) {
  switch (s) {
    case SloState::kOk:
      return "ok";
    case SloState::kWarning:
      return "warning";
    case SloState::kBreach:
      return "breach";
  }
  return "?";
}

SloMonitor::SloMonitor(SloSpec spec)
    : spec_(std::move(spec)),
      g_state_(registry().gauge("obs.slo." + spec_.name + ".state")),
      breach_event_("slo.breach." + spec_.name),
      warning_event_("slo.warning." + spec_.name) {
  spec_.objective = std::max(spec_.objective, 1e-12);
  spec_.fast_window_ns = std::max<std::int64_t>(spec_.fast_window_ns, 1);
  spec_.slow_window_ns =
      std::max(spec_.slow_window_ns, spec_.fast_window_ns);
  g_state_.set(0.0);
}

double SloMonitor::burn(const TimeSeriesStore& ts,
                        std::int64_t window_ns) const {
  if (spec_.kind == SloSpec::Kind::kValueBelow) {
    // Mean of the value series over the trailing window: smoother than the
    // last sample alone, and a series that has gone quiet keeps its last
    // known level instead of reading zero.
    if (spec_.bad_series.empty()) return 0.0;
    const auto samples = ts.series(spec_.bad_series[0]);
    if (samples.empty()) return 0.0;
    const std::int64_t horizon = samples.back().t_ns - window_ns;
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto& s : samples) {
      if (s.t_ns < horizon) continue;
      sum += s.value;
      ++n;
    }
    return n == 0 ? 0.0 : (sum / static_cast<double>(n)) / spec_.objective;
  }
  double bad = 0.0;
  for (const auto& name : spec_.bad_series) bad += ts.rate(name, window_ns);
  const double good = ts.rate(spec_.good_series, window_ns);
  const double total = bad + good;
  if (total <= 0.0) return 0.0;  // no traffic burns no budget
  return (bad / total) / spec_.objective;
}

SloState SloMonitor::evaluate(const TimeSeriesStore& ts, std::int64_t t_ns) {
  if (t_ns < 0) t_ns = now_ns();
  fast_rate_ = burn(ts, spec_.fast_window_ns);
  slow_rate_ = burn(ts, spec_.slow_window_ns);
  SloState computed = SloState::kOk;
  if (fast_rate_ >= spec_.fast_burn && slow_rate_ >= 1.0) {
    computed = SloState::kBreach;
  } else if (slow_rate_ >= spec_.slow_burn) {
    computed = SloState::kWarning;
  }
  // Episode monotonicity: escalate freely, de-escalate only to ok.
  SloState next = state_;
  if (computed == SloState::kOk) {
    next = SloState::kOk;
  } else if (static_cast<int>(computed) > static_cast<int>(state_)) {
    next = computed;
  }
  if (next != state_) {
    ++transitions_;
    if (static_cast<int>(next) > static_cast<int>(state_)) {
      // Structured escalation event: zero-duration span on the same time
      // axis as request spans, correlated by transition ordinal.
      record_span(next == SloState::kBreach ? breach_event_.c_str()
                                            : warning_event_.c_str(),
                  t_ns, t_ns, transitions_);
    }
    state_ = next;
  }
  last_eval_ns_ = t_ns;
  g_state_.set(static_cast<double>(static_cast<int>(state_)));
  return state_;
}

SloStatus SloMonitor::status() const {
  SloStatus st;
  st.name = spec_.name;
  st.state = state_;
  st.fast_burn_rate = fast_rate_;
  st.slow_burn_rate = slow_rate_;
  st.objective = spec_.objective;
  st.transitions = transitions_;
  st.last_eval_ns = last_eval_ns_;
  return st;
}

SloMonitor& SloRegistry::add(SloSpec spec) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& m : monitors_) {
    if (m.spec().name == spec.name) return m;
  }
  monitors_.emplace_back(std::move(spec));
  return monitors_.back();
}

void SloRegistry::evaluate(const TimeSeriesStore& ts, std::int64_t t_ns) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& m : monitors_) m.evaluate(ts, t_ns);
}

std::vector<SloStatus> SloRegistry::statuses() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<SloStatus> out;
  out.reserve(monitors_.size());
  for (const auto& m : monitors_) out.push_back(m.status());
  return out;
}

std::string SloRegistry::to_json() const {
  const auto sts = statuses();
  std::string out = "{\"slos\":[";
  char buf[160];
  for (std::size_t i = 0; i < sts.size(); ++i) {
    const SloStatus& s = sts[i];
    out += i == 0 ? "\n{\"name\":\"" : ",\n{\"name\":\"";
    out += s.name;
    std::snprintf(buf, sizeof buf,
                  "\",\"state\":\"%s\",\"state_value\":%d,"
                  "\"fast_burn_rate\":%.6g,\"slow_burn_rate\":%.6g,"
                  "\"objective\":%.6g,\"transitions\":%llu}",
                  slo_state_name(s.state), static_cast<int>(s.state),
                  s.fast_burn_rate, s.slow_burn_rate, s.objective,
                  static_cast<unsigned long long>(s.transitions));
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

std::size_t SloRegistry::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return monitors_.size();
}

SloRegistry& slos() {
  static SloRegistry* reg = new SloRegistry();  // leaked: see trace.cpp
  return *reg;
}

void register_default_serve_slos() {
  {
    SloSpec s;
    s.name = "serve_compute_p99";
    s.kind = SloSpec::Kind::kValueBelow;
    s.bad_series = {"serve.compute_ns.p99"};
    s.objective = 5e8;  // p99 batch compute under 500ms
    slos().add(std::move(s));
  }
  {
    SloSpec s;
    s.name = "serve_reject_rate";
    s.kind = SloSpec::Kind::kRatio;
    s.bad_series = {"serve.rejected_full", "serve.admission.busy",
                    "serve.admission.throttled"};
    s.good_series = "serve.accepted";
    s.objective = 0.05;  // at most 5% of traffic turned away
    slos().add(std::move(s));
  }
  {
    SloSpec s;
    s.name = "serve_cache_miss_rate";
    s.kind = SloSpec::Kind::kRatio;
    s.bad_series = {"serve.cache.misses"};
    s.good_series = "serve.cache.hits";
    // Deliberately loose: random CI traffic is nearly all misses; this SLO
    // exists to flag a cache that stopped hitting entirely in a deployment
    // that expects duplicates.
    s.objective = 0.99;
    slos().add(std::move(s));
  }
}

}  // namespace ibrar::obs
