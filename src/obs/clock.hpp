#pragma once
// The one monotonic clock helper for the whole stack.
//
// Every timing consumer — util::Stopwatch, obs::Span, the profiling hooks,
// the serving runtime's queue/compute stamps — reads this same steady-clock
// nanosecond counter, so timestamps from different subsystems are directly
// comparable (a Span's begin_ns and a Request's enqueue_ns live on the same
// axis, which is what lets the queue-wait span be reconstructed after the
// fact in serve_batch).

#include <chrono>
#include <cstdint>

namespace ibrar::obs {

/// Monotonic nanoseconds since an arbitrary epoch (steady_clock).
inline std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace ibrar::obs
