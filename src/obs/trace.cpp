#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/env.hpp"

namespace ibrar::obs {
namespace {

/// One thread's span storage: a fixed ring overwritten oldest-first. The
/// owning thread writes under the ring mutex (uncontended except while a
/// dump/clear walks the global list), so readers see complete records.
struct Ring {
  explicit Ring(std::size_t cap, std::uint32_t tid_) : tid(tid_) {
    buf.resize(std::max<std::size_t>(cap, 16));
  }
  std::mutex mu;
  std::vector<SpanRecord> buf;
  std::size_t next = 0;       ///< insertion cursor
  std::size_t filled = 0;     ///< records written, saturating at buf.size()
  std::uint64_t dropped = 0;  ///< overwritten records
  const std::uint32_t tid;
};

struct RingList {
  std::mutex mu;
  std::vector<std::shared_ptr<Ring>> rings;
  std::atomic<std::uint32_t> next_tid{1};
};

RingList& ring_list() {
  static RingList* list = new RingList();  // leaked: outlives exiting threads
  return *list;
}

std::size_t ring_capacity() {
  static const std::size_t cap = static_cast<std::size_t>(
      std::max<long>(16, env::get_int("IBRAR_OBS_TRACE_CAP", 8192)));
  return cap;
}

Ring& local_ring() {
  thread_local const std::shared_ptr<Ring> ring = [] {
    RingList& list = ring_list();
    std::lock_guard<std::mutex> lk(list.mu);
    auto r = std::make_shared<Ring>(
        ring_capacity(), list.next_tid.fetch_add(1, std::memory_order_relaxed));
    list.rings.push_back(r);
    return r;
  }();
  return *ring;
}

std::atomic<std::int64_t>& sample_every_flag() {
  static std::atomic<std::int64_t> k{
      env::get_int("IBRAR_OBS_TRACE_SAMPLE", 0)};
  return k;
}

/// Registry view of ring overwrites. Unlike the per-ring `dropped` fields
/// (reset by clear_trace), this is cumulative for the process, so dashboards
/// see span loss even after a dump/clear cycle.
Counter& dropped_spans_counter() {
  static Counter& c = registry().counter("obs.trace.dropped_spans");
  return c;
}

}  // namespace

std::int64_t trace_sample_every() {
  return sample_every_flag().load(std::memory_order_relaxed);
}

void set_trace_sample_every(std::int64_t k) {
  sample_every_flag().store(std::max<std::int64_t>(k, 0),
                            std::memory_order_relaxed);
}

void record_span(const char* name, std::int64_t begin_ns, std::int64_t end_ns,
                 std::uint64_t corr) {
  Ring& ring = local_ring();
  std::lock_guard<std::mutex> lk(ring.mu);
  SpanRecord& slot = ring.buf[ring.next];
  if (ring.filled == ring.buf.size()) {
    ++ring.dropped;
    dropped_spans_counter().inc();
  }
  slot.name = name;
  slot.begin_ns = begin_ns;
  slot.end_ns = end_ns;
  slot.tid = ring.tid;
  slot.corr = corr;
  ring.next = (ring.next + 1) % ring.buf.size();
  ring.filled = std::min(ring.filled + 1, ring.buf.size());
}

std::vector<SpanRecord> trace_records() {
  RingList& list = ring_list();
  std::lock_guard<std::mutex> lk(list.mu);
  std::vector<SpanRecord> out;
  for (const auto& ring : list.rings) {
    std::lock_guard<std::mutex> rk(ring->mu);
    // Oldest-first: the ring cursor points at the oldest slot once full.
    const std::size_t n = ring->filled;
    const std::size_t start =
        n == ring->buf.size() ? ring->next : 0;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(ring->buf[(start + i) % ring->buf.size()]);
    }
  }
  return out;
}

std::uint64_t trace_dropped() {
  RingList& list = ring_list();
  std::lock_guard<std::mutex> lk(list.mu);
  std::uint64_t total = 0;
  for (const auto& ring : list.rings) {
    std::lock_guard<std::mutex> rk(ring->mu);
    total += ring->dropped;
  }
  return total;
}

void clear_trace() {
  RingList& list = ring_list();
  std::lock_guard<std::mutex> lk(list.mu);
  for (const auto& ring : list.rings) {
    std::lock_guard<std::mutex> rk(ring->mu);
    ring->next = 0;
    ring->filled = 0;
    ring->dropped = 0;
  }
}

std::string trace_json() {
  auto records = trace_records();
  std::sort(records.begin(), records.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.begin_ns < b.begin_ns;
            });
  std::string out = "{\"traceEvents\":[";
  char buf[256];
  for (std::size_t i = 0; i < records.size(); ++i) {
    const SpanRecord& r = records[i];
    // Complete events ("ph":"X"): ts/dur in microseconds, fractional ns kept.
    std::snprintf(buf, sizeof buf,
                  "%s\n{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
                  "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"req\":%llu}}",
                  i == 0 ? "" : ",", r.name != nullptr ? r.name : "?", r.tid,
                  static_cast<double>(r.begin_ns) * 1e-3,
                  static_cast<double>(r.end_ns - r.begin_ns) * 1e-3,
                  static_cast<unsigned long long>(r.corr));
    out += buf;
  }
  // Span loss is part of the artifact: a tool reading the dump can tell the
  // window is incomplete without consulting the metrics registry.
  out += "\n],\"droppedSpans\":" + std::to_string(trace_dropped()) + "}\n";
  return out;
}

void dump_trace(const std::string& path) {
  const std::string json = trace_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("obs::dump_trace: cannot open " + path);
  }
  const bool ok =
      std::fwrite(json.data(), 1, json.size(), f) == json.size();
  if (std::fclose(f) != 0 || !ok) {
    throw std::runtime_error("obs::dump_trace: write failed for " + path);
  }
}

}  // namespace ibrar::obs
