#pragma once
// Process-global metrics: string-named counters, gauges, and log-bucketed
// latency histograms.
//
// Design for a hot serving path:
//  * Every metric is sharded across kMetricShards cache-line-padded slots;
//    a thread writes the slot picked by its (stable) thread-local shard id,
//    so the fast path of Counter::inc is one relaxed fetch_add on a line no
//    other core is hammering. Shards are merged on read.
//  * Histograms bucket values (nanoseconds, scores, batch sizes — any
//    positive double) logarithmically: 8 sub-buckets per power of two over
//    [2^-32, 2^40), so a percentile read off the bucket counts is exact to
//    within one bucket (<= 12.5% relative width). percentile() returns the
//    upper bound of the rank's bucket clamped to the observed max, so the
//    estimate always brackets the true order statistic from above.
//  * Handles returned by MetricsRegistry::counter()/gauge()/histogram() are
//    stable references for the registry's lifetime — resolve once, then the
//    recording path never touches the registry lock.
//
// Reads are wait-free sums of relaxed per-shard values: each metric's total
// is exact (every increment lands in exactly one shard), and a snapshot
// taken while writers are quiescent — the state every gate and test reads —
// is exact across metrics too. During concurrent writes, distinct metrics in
// one snapshot may be skewed by in-flight requests, but each value is always
// a real count that was true at some point (monotone, never torn).
//
// The process-global instance is obs::registry(); nothing stops a test from
// owning a private MetricsRegistry.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ibrar::obs {

inline constexpr int kMetricShards = 16;

/// Histogram bucket geometry: values span [2^kHistMinExp2, 2^kHistMaxExp2)
/// with kHistSubBuckets linear sub-buckets per power of two, plus an
/// underflow bucket (index 0, catches <= 2^kHistMinExp2 and non-finite) and
/// an overflow bucket (last index).
inline constexpr int kHistSubBuckets = 8;
inline constexpr int kHistMinExp2 = -32;
inline constexpr int kHistMaxExp2 = 40;
inline constexpr int kHistBuckets =
    (kHistMaxExp2 - kHistMinExp2) * kHistSubBuckets + 2;

namespace detail {

int next_shard_slot();  // monotone thread-id counter, defined in metrics.cpp

/// Stable per-thread shard index in [0, kMetricShards).
inline int shard_slot() {
  thread_local const int slot = next_shard_slot() % kMetricShards;
  return slot;
}

/// Bucket index for a value (see geometry above).
int hist_bucket(double v);
/// Inclusive lower / exclusive upper value bound of a bucket.
double hist_bucket_lower(int bucket);
double hist_bucket_upper(int bucket);

}  // namespace detail

/// Monotone event counter. inc() is a relaxed fetch_add on a per-thread
/// shard; value() sums the shards.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    shards_[static_cast<std::size_t>(detail::shard_slot())].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kMetricShards> shards_{};
};

/// Last-write-wins scalar, plus a monotone-max flavour for high-water marks.
class Gauge {
 public:
  void set(double v) {
    bits_.store(to_bits(v), std::memory_order_relaxed);
  }
  /// Add d (may be negative) to the current value (CAS loop). Used for
  /// resource gauges that track live totals, e.g. serve.snapshot_bytes.
  void add(double d) {
    std::uint64_t cur = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(cur, to_bits(from_bits(cur) + d),
                                        std::memory_order_relaxed)) {
    }
  }
  /// Raise to v if v is larger than the current value (CAS loop).
  void set_max(double v) {
    std::uint64_t cur = bits_.load(std::memory_order_relaxed);
    while (from_bits(cur) < v &&
           !bits_.compare_exchange_weak(cur, to_bits(v),
                                        std::memory_order_relaxed)) {
    }
  }
  double value() const {
    return from_bits(bits_.load(std::memory_order_relaxed));
  }

 private:
  static std::uint64_t to_bits(double v) {
    std::uint64_t b;
    static_assert(sizeof b == sizeof v);
    __builtin_memcpy(&b, &v, sizeof b);
    return b;
  }
  static double from_bits(std::uint64_t b) {
    double v;
    __builtin_memcpy(&v, &b, sizeof v);
    return v;
  }
  std::atomic<std::uint64_t> bits_{0};  // double 0.0
};

/// Read-side view of one histogram: merged bucket counts + count/sum/max.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double max = 0.0;
  std::array<std::uint64_t, kHistBuckets> buckets{};

  double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
  /// q in [0, 1]: upper bound of the bucket holding the rank-ceil(q*count)
  /// observation, clamped to the observed max (0 when empty). Always >= the
  /// true order statistic and <= 1.125x it (one sub-bucket of slack).
  double percentile(double q) const;
};

/// Log-bucketed distribution of positive doubles; see the geometry note in
/// the header comment. observe() is a handful of relaxed atomic ops on the
/// caller's shard.
class Histogram {
 public:
  void observe(double v) {
    auto& s = shards_[static_cast<std::size_t>(detail::shard_slot())];
    s.buckets[static_cast<std::size_t>(detail::hist_bucket(v))].fetch_add(
        1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t cur = s.max_bits.load(std::memory_order_relaxed);
    while (bits_to_double(cur) < v &&
           !s.max_bits.compare_exchange_weak(cur, double_to_bits(v),
                                             std::memory_order_relaxed)) {
    }
  }
  HistogramSnapshot snapshot() const;

 private:
  static std::uint64_t double_to_bits(double v) {
    std::uint64_t b;
    __builtin_memcpy(&b, &v, sizeof b);
    return b;
  }
  static double bits_to_double(std::uint64_t b) {
    double v;
    __builtin_memcpy(&v, &b, sizeof v);
    return v;
  }
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kHistBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<std::uint64_t> max_bits{0};
  };
  std::array<Shard, kMetricShards> shards_{};
};

/// Merged read of a whole registry (see MetricsRegistry::snapshot).
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// One JSON object on one line (no trailing newline): counters and gauges
  /// verbatim, histograms as {count, mean, max, p50, p90, p99, p999}. The
  /// shape ibrar_serve --stats-every emits and tools/check_serve_stats.py
  /// parses.
  std::string to_json() const;

  /// Prometheus text exposition (format version 0.0.4): counters as
  /// `# TYPE <name> counter`, gauges as gauge, histograms as the classic
  /// `_bucket{le="..."}` cumulative series plus `_sum`/`_count`. Metric names
  /// are sanitized (every character outside [a-zA-Z0-9_:] becomes '_');
  /// only non-empty buckets are emitted (sparse `le` series are valid
  /// exposition — cumulative counts at the emitted edges are still exact),
  /// always closed with the mandatory `le="+Inf"` bucket. This is what the
  /// admin endpoint's GET /metrics serves.
  std::string to_prometheus() const;
};

/// Name -> metric map. Creation takes a mutex; returned references are
/// stable until the registry dies, so callers resolve handles once.
///
/// snapshot() holds the map mutex only long enough to copy the shared_ptr
/// table, then reads every metric's shards unlocked — a sampler scraping the
/// registry on a cadence never blocks a recording path (recording is
/// lock-free on pre-resolved handles) and stalls name resolution only for
/// the pointer copy.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;

  /// Retire-and-fold: every counter whose name starts with `prefix` has its
  /// current value added to the counter named `fold_prefix` + the remaining
  /// suffix, then leaves the registry (snapshots and the Prometheus export
  /// stop listing it). This is the cardinality bound for per-instance
  /// families like serve.version.<v>.*: hot-swap N times and the registry
  /// holds the live version's counters plus one retired.* aggregate set,
  /// not N generations of dead names. Storage for retired counters is
  /// parked, not freed, so a stale `Counter&` handle held across the retire
  /// stays valid (its increments after the fold are dropped from the
  /// aggregate — retire when the family is quiescent). Returns the number of
  /// counters retired.
  std::size_t retire_counters(const std::string& prefix,
                              const std::string& fold_prefix);

  /// Number of live (non-retired) metrics, all kinds.
  std::size_t size() const;

  /// Drop every metric (handles become dangling — test isolation only).
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Counter>> counters_;
  std::map<std::string, std::shared_ptr<Gauge>> gauges_;
  std::map<std::string, std::shared_ptr<Histogram>> histograms_;
  /// Retired counters parked here so stale handles never dangle.
  std::vector<std::shared_ptr<Counter>> retired_;
};

/// The process-global registry every subsystem records into.
MetricsRegistry& registry();

}  // namespace ibrar::obs
