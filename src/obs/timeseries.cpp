#include "obs/timeseries.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>

#include "obs/clock.hpp"
#include "obs/slo.hpp"
#include "util/env.hpp"

namespace ibrar::obs {

TimeSeriesConfig TimeSeriesConfig::from_env() {
  TimeSeriesConfig cfg;
  const auto cap = env::get_int("IBRAR_OBS_TS_CAP", 512);
  cfg.capacity = static_cast<std::size_t>(std::max<std::int64_t>(2, cap));
  return cfg;
}

TimeSeriesStore::TimeSeriesStore(TimeSeriesConfig cfg)
    : cfg_(cfg), c_dropped_(registry().counter("obs.ts.dropped_samples")) {
  cfg_.capacity = std::max<std::size_t>(2, cfg_.capacity);
}

TimeSeriesStore::~TimeSeriesStore() = default;

void TimeSeriesStore::append_locked(const std::string& series,
                                    std::int64_t t_ns, double value) {
  Ring& r = rings_[series];
  if (r.buf.empty()) r.buf.resize(cfg_.capacity);
  if (r.filled == r.buf.size()) {
    ++dropped_;  // overwriting the oldest sample below
    c_dropped_.inc();
  } else {
    ++r.filled;
  }
  r.buf[r.next] = TsSample{t_ns, value};
  r.next = (r.next + 1) % r.buf.size();
}

void TimeSeriesStore::append(const std::string& series, std::int64_t t_ns,
                             double value) {
  std::lock_guard<std::mutex> lk(mu_);
  append_locked(series, t_ns, value);
}

std::size_t TimeSeriesStore::sample_now(MetricsRegistry& reg,
                                        std::int64_t t_ns) {
  // The registry snapshot happens before taking the store mutex: the only
  // lock shared with request paths (the registry name-resolution mutex) is
  // held by snapshot() just long enough to copy the pointer table.
  const MetricsSnapshot snap = reg.snapshot();
  if (t_ns < 0) t_ns = now_ns();
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t touched = 0;
  for (const auto& [name, v] : snap.counters) {
    append_locked(name, t_ns, static_cast<double>(v));
    ++touched;
  }
  for (const auto& [name, v] : snap.gauges) {
    append_locked(name, t_ns, v);
    ++touched;
  }
  for (const auto& [name, h] : snap.histograms) {
    append_locked(name + ".count", t_ns, static_cast<double>(h.count));
    append_locked(name + ".p50", t_ns, h.percentile(0.50));
    append_locked(name + ".p99", t_ns, h.percentile(0.99));
    append_locked(name + ".mean", t_ns, h.mean());
    touched += 4;
  }
  ++ticks_;
  return touched;
}

const TimeSeriesStore::Ring* TimeSeriesStore::find(
    const std::string& name) const {
  const auto it = rings_.find(name);
  return it == rings_.end() ? nullptr : &it->second;
}

std::vector<TsSample> TimeSeriesStore::series(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const Ring* r = find(name);
  std::vector<TsSample> out;
  if (r == nullptr || r->filled == 0) return out;
  out.reserve(r->filled);
  // Oldest sample sits at `next` once the ring has wrapped, at 0 before.
  const std::size_t cap = r->buf.size();
  const std::size_t start = r->filled == cap ? r->next : 0;
  for (std::size_t i = 0; i < r->filled; ++i) {
    out.push_back(r->buf[(start + i) % cap]);
  }
  return out;
}

double TimeSeriesStore::rate(const std::string& name,
                             std::int64_t window_ns) const {
  std::lock_guard<std::mutex> lk(mu_);
  const Ring* r = find(name);
  if (r == nullptr || r->filled < 2) return 0.0;
  const std::size_t cap = r->buf.size();
  const std::size_t start = r->filled == cap ? r->next : 0;
  const TsSample& last = r->buf[(start + r->filled - 1) % cap];
  // Base = oldest surviving sample still inside the window; after a ring
  // wraparound this is simply the oldest retained sample, so the rate stays
  // exact over the span actually covered.
  const std::int64_t horizon = last.t_ns - window_ns;
  const TsSample* base = nullptr;
  for (std::size_t i = 0; i + 1 < r->filled; ++i) {
    const TsSample& s = r->buf[(start + i) % cap];
    if (s.t_ns >= horizon) {
      base = &s;
      break;
    }
  }
  if (base == nullptr || last.t_ns <= base->t_ns) return 0.0;
  return (last.value - base->value) /
         static_cast<double>(last.t_ns - base->t_ns) * 1e9;
}

std::vector<TsSample> TimeSeriesStore::percentile_series(
    const std::string& hist_name, double q) const {
  return series(hist_name + (q >= 0.99 ? ".p99" : ".p50"));
}

double TimeSeriesStore::last(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const Ring* r = find(name);
  if (r == nullptr || r->filled == 0) return 0.0;
  const std::size_t cap = r->buf.size();
  return r->buf[(r->next + cap - 1) % cap].value;
}

std::uint64_t TimeSeriesStore::dropped_samples() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dropped_;
}

std::size_t TimeSeriesStore::series_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return rings_.size();
}

std::vector<std::string> TimeSeriesStore::series_names() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  out.reserve(rings_.size());
  for (const auto& [name, ring] : rings_) out.push_back(name);
  return out;  // std::map iteration order is already sorted
}

std::uint64_t TimeSeriesStore::ticks() const {
  std::lock_guard<std::mutex> lk(mu_);
  return ticks_;
}

TimeSeriesStore& timeseries() {
  static TimeSeriesStore instance(TimeSeriesConfig::from_env());
  return instance;
}

namespace {

struct Sampler {
  std::mutex mu;
  std::condition_variable cv;
  std::thread thread;
  bool running = false;
  bool stop = false;
};

Sampler& sampler() {
  static Sampler s;
  return s;
}

}  // namespace

void start_sampler(std::int64_t interval_ms) {
  if (interval_ms <= 0) return;
  interval_ms = std::max<std::int64_t>(10, interval_ms);
  Sampler& s = sampler();
  std::lock_guard<std::mutex> lk(s.mu);
  if (s.running) return;
  s.running = true;
  s.stop = false;
  s.thread = std::thread([interval_ms] {
    Sampler& sp = sampler();
    std::unique_lock<std::mutex> lk(sp.mu);
    while (!sp.stop) {
      lk.unlock();
      timeseries().sample_now(registry());
      slos().evaluate(timeseries());
      lk.lock();
      sp.cv.wait_for(lk, std::chrono::milliseconds(interval_ms),
                     [&sp] { return sp.stop; });
    }
  });
}

void stop_sampler() {
  Sampler& s = sampler();
  std::thread joinable;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    if (!s.running) return;
    s.stop = true;
    s.cv.notify_all();
    joinable = std::move(s.thread);
    s.running = false;
  }
  if (joinable.joinable()) joinable.join();
}

bool sampler_running() {
  Sampler& s = sampler();
  std::lock_guard<std::mutex> lk(s.mu);
  return s.running;
}

std::int64_t ts_interval_ms() {
  static const std::int64_t v = env::get_int("IBRAR_OBS_TS_INTERVAL_MS", 0);
  return v;
}

}  // namespace ibrar::obs
