#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ibrar::obs {

namespace detail {

int next_shard_slot() {
  static std::atomic<int> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

int hist_bucket(double v) {
  // Underflow catches non-positive, NaN, and anything below the first bucket
  // edge; the comparison is written so NaN falls through to `return 0`.
  if (!(v >= std::ldexp(1.0, kHistMinExp2))) return 0;
  if (v >= std::ldexp(1.0, kHistMaxExp2)) return kHistBuckets - 1;
  int e;
  const double f = std::frexp(v, &e);  // v = f * 2^e, f in [0.5, 1)
  const int sub = static_cast<int>((f - 0.5) * 2.0 * kHistSubBuckets);
  const int idx = 1 + (e - 1 - kHistMinExp2) * kHistSubBuckets +
                  std::min(sub, kHistSubBuckets - 1);
  return std::clamp(idx, 1, kHistBuckets - 2);
}

double hist_bucket_lower(int bucket) {
  if (bucket <= 0) return 0.0;
  if (bucket >= kHistBuckets - 1) return std::ldexp(1.0, kHistMaxExp2);
  const int oct = (bucket - 1) / kHistSubBuckets;
  const int sub = (bucket - 1) % kHistSubBuckets;
  return std::ldexp(0.5 + 0.5 * sub / kHistSubBuckets,
                    kHistMinExp2 + 1 + oct);
}

double hist_bucket_upper(int bucket) {
  if (bucket <= 0) return std::ldexp(1.0, kHistMinExp2);
  if (bucket >= kHistBuckets - 1) return std::ldexp(1.0, kHistMaxExp2 + 1);
  return hist_bucket_lower(bucket + 1);
}

}  // namespace detail

double HistogramSnapshot::percentile(double q) const {
  if (count == 0) return 0.0;
  const double qq = std::clamp(q, 0.0, 1.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(qq * static_cast<double>(count))));
  std::uint64_t cum = 0;
  for (int b = 0; b < kHistBuckets; ++b) {
    cum += buckets[static_cast<std::size_t>(b)];
    if (cum >= rank) {
      // Upper bucket edge clamped to the observed max: >= the true order
      // statistic, and never past the largest value actually seen.
      return std::min(detail::hist_bucket_upper(b), max);
    }
  }
  return max;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  for (const auto& s : shards_) {
    for (int b = 0; b < kHistBuckets; ++b) {
      out.buckets[static_cast<std::size_t>(b)] +=
          s.buckets[static_cast<std::size_t>(b)].load(
              std::memory_order_relaxed);
    }
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
    out.max = std::max(
        out.max, bits_to_double(s.max_bits.load(std::memory_order_relaxed)));
  }
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  MetricsSnapshot out;
  for (const auto& [name, c] : counters_) out.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) out.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    out.histograms[name] = h->snapshot();
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

namespace {

std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    out += (first ? "\"" : ",\"") + name + "\":" + std::to_string(v);
    first = false;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    out += (first ? "\"" : ",\"") + name + "\":" + json_num(v);
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += (first ? "\"" : ",\"") + name + "\":{\"count\":" +
           std::to_string(h.count) + ",\"mean\":" + json_num(h.mean()) +
           ",\"max\":" + json_num(h.max) +
           ",\"p50\":" + json_num(h.percentile(0.50)) +
           ",\"p90\":" + json_num(h.percentile(0.90)) +
           ",\"p99\":" + json_num(h.percentile(0.99)) +
           ",\"p999\":" + json_num(h.percentile(0.999)) + "}";
    first = false;
  }
  out += "}}";
  return out;
}

MetricsRegistry& registry() {
  static MetricsRegistry instance;
  return instance;
}

}  // namespace ibrar::obs
