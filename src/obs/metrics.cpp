#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

namespace ibrar::obs {

namespace detail {

int next_shard_slot() {
  static std::atomic<int> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

int hist_bucket(double v) {
  // Underflow catches non-positive, NaN, and anything below the first bucket
  // edge; the comparison is written so NaN falls through to `return 0`.
  if (!(v >= std::ldexp(1.0, kHistMinExp2))) return 0;
  if (v >= std::ldexp(1.0, kHistMaxExp2)) return kHistBuckets - 1;
  int e;
  const double f = std::frexp(v, &e);  // v = f * 2^e, f in [0.5, 1)
  const int sub = static_cast<int>((f - 0.5) * 2.0 * kHistSubBuckets);
  const int idx = 1 + (e - 1 - kHistMinExp2) * kHistSubBuckets +
                  std::min(sub, kHistSubBuckets - 1);
  return std::clamp(idx, 1, kHistBuckets - 2);
}

double hist_bucket_lower(int bucket) {
  if (bucket <= 0) return 0.0;
  if (bucket >= kHistBuckets - 1) return std::ldexp(1.0, kHistMaxExp2);
  const int oct = (bucket - 1) / kHistSubBuckets;
  const int sub = (bucket - 1) % kHistSubBuckets;
  return std::ldexp(0.5 + 0.5 * sub / kHistSubBuckets,
                    kHistMinExp2 + 1 + oct);
}

double hist_bucket_upper(int bucket) {
  if (bucket <= 0) return std::ldexp(1.0, kHistMinExp2);
  if (bucket >= kHistBuckets - 1) return std::ldexp(1.0, kHistMaxExp2 + 1);
  return hist_bucket_lower(bucket + 1);
}

}  // namespace detail

double HistogramSnapshot::percentile(double q) const {
  if (count == 0) return 0.0;
  const double qq = std::clamp(q, 0.0, 1.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(qq * static_cast<double>(count))));
  std::uint64_t cum = 0;
  for (int b = 0; b < kHistBuckets; ++b) {
    cum += buckets[static_cast<std::size_t>(b)];
    if (cum >= rank) {
      // Upper bucket edge clamped to the observed max: >= the true order
      // statistic, and never past the largest value actually seen.
      return std::min(detail::hist_bucket_upper(b), max);
    }
  }
  return max;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  for (const auto& s : shards_) {
    for (int b = 0; b < kHistBuckets; ++b) {
      out.buckets[static_cast<std::size_t>(b)] +=
          s.buckets[static_cast<std::size_t>(b)].load(
              std::memory_order_relaxed);
    }
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
    out.max = std::max(
        out.max, bits_to_double(s.max_bits.load(std::memory_order_relaxed)));
  }
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_shared<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_shared<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_shared<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  // Copy the pointer table under the lock, read the shards outside it: the
  // lock hold is proportional to the number of names, not the merge work,
  // so a background sampler cannot stall a thread resolving a new handle
  // for long (recording on resolved handles never takes this lock at all).
  std::vector<std::pair<std::string, std::shared_ptr<Counter>>> cs;
  std::vector<std::pair<std::string, std::shared_ptr<Gauge>>> gs;
  std::vector<std::pair<std::string, std::shared_ptr<Histogram>>> hs;
  {
    std::lock_guard<std::mutex> lk(mu_);
    cs.assign(counters_.begin(), counters_.end());
    gs.assign(gauges_.begin(), gauges_.end());
    hs.assign(histograms_.begin(), histograms_.end());
  }
  MetricsSnapshot out;
  for (const auto& [name, c] : cs) out.counters[name] = c->value();
  for (const auto& [name, g] : gs) out.gauges[name] = g->value();
  for (const auto& [name, h] : hs) out.histograms[name] = h->snapshot();
  return out;
}

std::size_t MetricsRegistry::retire_counters(const std::string& prefix,
                                             const std::string& fold_prefix) {
  if (prefix.empty()) return 0;
  if (fold_prefix.compare(0, prefix.size(), prefix) == 0) {
    // The fold targets would land back inside the retire range and be
    // re-folded forever.
    throw std::invalid_argument(
        "MetricsRegistry::retire_counters: fold_prefix must not start with "
        "prefix");
  }
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t retired = 0;
  for (auto it = counters_.lower_bound(prefix); it != counters_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    const std::string folded = fold_prefix + it->first.substr(prefix.size());
    auto& slot = counters_[folded];  // map inserts never invalidate `it`
    if (!slot) slot = std::make_shared<Counter>();
    slot->inc(it->second->value());
    retired_.push_back(std::move(it->second));
    it = counters_.erase(it);
    ++retired;
  }
  return retired;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  retired_.clear();
}

namespace {

std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    out += (first ? "\"" : ",\"") + name + "\":" + std::to_string(v);
    first = false;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    out += (first ? "\"" : ",\"") + name + "\":" + json_num(v);
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += (first ? "\"" : ",\"") + name + "\":{\"count\":" +
           std::to_string(h.count) + ",\"mean\":" + json_num(h.mean()) +
           ",\"max\":" + json_num(h.max) +
           ",\"p50\":" + json_num(h.percentile(0.50)) +
           ",\"p90\":" + json_num(h.percentile(0.90)) +
           ",\"p99\":" + json_num(h.percentile(0.99)) +
           ",\"p999\":" + json_num(h.percentile(0.999)) + "}";
    first = false;
  }
  out += "}}";
  return out;
}

namespace {

/// Prometheus metric-name sanitizer: [a-zA-Z0-9_:] pass through, everything
/// else (the registry's dots, mostly) becomes '_'. A leading digit gets a
/// '_' prefix to satisfy the exposition grammar.
std::string prom_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char ch : name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_' || ch == ':';
    out.push_back(ok ? ch : '_');
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, "_");
  return out;
}

/// Prometheus sample values: decimal doubles, +Inf/-Inf/NaN spellings.
std::string prom_num(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string MetricsSnapshot::to_prometheus() const {
  std::string out;
  for (const auto& [name, v] : counters) {
    const std::string n = prom_name(name);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, v] : gauges) {
    const std::string n = prom_name(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + prom_num(v) + "\n";
  }
  for (const auto& [name, h] : histograms) {
    const std::string n = prom_name(name);
    out += "# TYPE " + n + " histogram\n";
    // Sparse cumulative buckets: one le edge per non-empty bucket (upper
    // bound of our log-bucket geometry), closed with the mandatory +Inf.
    std::uint64_t cum = 0;
    for (int b = 0; b < kHistBuckets - 1; ++b) {  // overflow rides +Inf below
      const std::uint64_t c = h.buckets[static_cast<std::size_t>(b)];
      if (c == 0) continue;
      cum += c;
      out += n + "_bucket{le=\"" + prom_num(detail::hist_bucket_upper(b)) +
             "\"} " + std::to_string(cum) + "\n";
    }
    out += n + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += n + "_sum " + prom_num(h.sum) + "\n";
    out += n + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

MetricsRegistry& registry() {
  static MetricsRegistry instance;
  return instance;
}

}  // namespace ibrar::obs
