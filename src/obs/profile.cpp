#include "obs/profile.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <mutex>
#include <stdexcept>

#include "util/env.hpp"

namespace ibrar::obs {
namespace {

std::atomic<bool>& profiling_flag() {
  static std::atomic<bool> flag{env::get_int("IBRAR_OBS_PROFILE", 0) != 0};
  return flag;
}

struct SiteRegistry {
  std::mutex mu;
  std::deque<ProfileSite> sites;  // deque: references stay stable on growth
  std::map<std::string, ProfileSite*> by_name;
};

SiteRegistry& site_registry() {
  static SiteRegistry* reg = new SiteRegistry();  // leaked: see trace.cpp
  return *reg;
}

}  // namespace

bool profiling_enabled() {
  return profiling_flag().load(std::memory_order_relaxed);
}

void set_profiling_enabled(bool on) {
  profiling_flag().store(on, std::memory_order_relaxed);
}

ProfileSite& profile_site(const char* name) {
  SiteRegistry& reg = site_registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  auto it = reg.by_name.find(name);
  if (it != reg.by_name.end()) return *it->second;
  reg.sites.emplace_back(name);
  ProfileSite& site = reg.sites.back();
  reg.by_name.emplace(site.name, &site);
  return site;
}

std::vector<ProfileEntry> profile_table() {
  SiteRegistry& reg = site_registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  std::vector<ProfileEntry> out;
  for (const ProfileSite& site : reg.sites) {
    ProfileEntry e;
    e.name = site.name;
    for (const auto& s : site.shards) {
      e.calls += s.calls.load(std::memory_order_relaxed);
      e.total_ns += s.ns.load(std::memory_order_relaxed);
    }
    if (e.calls > 0) out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(),
            [](const ProfileEntry& a, const ProfileEntry& b) {
              return a.total_ns > b.total_ns;
            });
  return out;
}

void reset_profile() {
  SiteRegistry& reg = site_registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  for (ProfileSite& site : reg.sites) {
    for (auto& s : site.shards) {
      s.calls.store(0, std::memory_order_relaxed);
      s.ns.store(0, std::memory_order_relaxed);
    }
  }
}

void print_profile_table(std::FILE* out) {
  const auto table = profile_table();
  std::fprintf(out, "-- kernel profile (IBRAR_OBS_PROFILE) --\n");
  if (table.empty()) {
    std::fprintf(out, "  (empty)\n");
    return;
  }
  std::fprintf(out, "  %-32s %12s %14s %12s\n", "site", "calls", "total_ms",
               "mean_us");
  for (const auto& e : table) {
    std::fprintf(out, "  %-32s %12llu %14.3f %12.3f\n", e.name.c_str(),
                 static_cast<unsigned long long>(e.calls),
                 static_cast<double>(e.total_ns) * 1e-6, e.mean_ns() * 1e-3);
  }
}

std::string profile_to_json() {
  const auto table = profile_table();
  std::string out = "{\"sites\":[";
  char buf[96];
  for (std::size_t i = 0; i < table.size(); ++i) {
    const ProfileEntry& e = table[i];
    out += i == 0 ? "\n{\"name\":\"" : ",\n{\"name\":\"";
    out += e.name;  // site names are code literals: no JSON escaping needed
    std::snprintf(buf, sizeof buf,
                  "\",\"calls\":%llu,\"total_ns\":%lld,\"mean_ns\":%.3f}",
                  static_cast<unsigned long long>(e.calls),
                  static_cast<long long>(e.total_ns), e.mean_ns());
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

void dump_profile(const std::string& path) {
  const std::string json = profile_to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("obs::dump_profile: cannot open " + path);
  }
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  if (std::fclose(f) != 0 || !ok) {
    throw std::runtime_error("obs::dump_profile: write failed for " + path);
  }
}

}  // namespace ibrar::obs
