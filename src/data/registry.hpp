#pragma once
// Name-based dataset factory mirroring the paper's four benchmarks.

#include "data/synthetic.hpp"

namespace ibrar::data {

/// "synth-cifar10" | "synth-cifar100" | "synth-svhn" | "synth-tinyimagenet".
/// Throws std::invalid_argument for unknown names.
SyntheticData make_dataset(const std::string& name, std::int64_t train_size,
                           std::int64_t test_size, std::uint64_t seed = 7);

/// All registered dataset names.
std::vector<std::string> dataset_names();

}  // namespace ibrar::data
