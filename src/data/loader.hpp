#pragma once
// Minibatch iteration with optional shuffling.

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace ibrar::data {

/// Epoch-oriented batch provider. Call begin_epoch() then next() until it
/// returns false. Last partial batch is kept (not dropped).
class DataLoader {
 public:
  DataLoader(const Dataset& ds, std::int64_t batch_size, bool shuffle, Rng rng);

  void begin_epoch();

  /// Fill `out` with the next batch; false at end of epoch.
  bool next(Batch& out);

  std::int64_t batches_per_epoch() const;
  std::int64_t batch_size() const { return batch_size_; }

 private:
  const Dataset* ds_;
  std::int64_t batch_size_;
  bool shuffle_;
  Rng rng_;
  std::vector<std::int64_t> order_;
  std::int64_t cursor_ = 0;
};

}  // namespace ibrar::data
