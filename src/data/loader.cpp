#include "data/loader.hpp"

#include <stdexcept>

namespace ibrar::data {

DataLoader::DataLoader(const Dataset& ds, std::int64_t batch_size, bool shuffle,
                       Rng rng)
    : ds_(&ds), batch_size_(batch_size), shuffle_(shuffle), rng_(rng) {
  if (batch_size_ <= 0) throw std::invalid_argument("DataLoader: batch_size");
  order_.resize(static_cast<std::size_t>(ds.size()));
  for (std::int64_t i = 0; i < ds.size(); ++i) {
    order_[static_cast<std::size_t>(i)] = i;
  }
  begin_epoch();
}

void DataLoader::begin_epoch() {
  cursor_ = 0;
  if (shuffle_) rng_.shuffle(order_);
}

bool DataLoader::next(Batch& out) {
  const auto n = static_cast<std::int64_t>(order_.size());
  if (cursor_ >= n) return false;
  const auto end = std::min(cursor_ + batch_size_, n);
  if (!shuffle_) {
    // Unshuffled epochs walk the dataset in order: the contiguous-range
    // overload replaces the per-row gather with one block copy.
    out = make_batch(*ds_, cursor_, end);
  } else {
    std::vector<std::int64_t> idx(order_.begin() + cursor_,
                                  order_.begin() + end);
    // Batch assembly gathers image rows via take_rows, which splits the row
    // copies across the runtime thread pool for wide batches.
    out = make_batch(*ds_, idx);
  }
  cursor_ = end;
  return true;
}

std::int64_t DataLoader::batches_per_epoch() const {
  const auto n = static_cast<std::int64_t>(order_.size());
  return (n + batch_size_ - 1) / batch_size_;
}

}  // namespace ibrar::data
