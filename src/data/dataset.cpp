#include "data/dataset.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "tensor/ops.hpp"

namespace ibrar::data {

Dataset Dataset::subset(const std::vector<std::int64_t>& idx) const {
  Dataset out;
  out.images = take_rows(images, idx);
  out.labels.reserve(idx.size());
  for (const auto i : idx) {
    out.labels.push_back(labels.at(static_cast<std::size_t>(i)));
  }
  out.class_names = class_names;
  out.num_classes = num_classes;
  return out;
}

Dataset Dataset::head(std::int64_t n) const {
  n = std::min<std::int64_t>(n, size());
  std::vector<std::int64_t> idx(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) idx[static_cast<std::size_t>(i)] = i;
  return subset(idx);
}

std::vector<std::int64_t> Dataset::class_counts() const {
  std::vector<std::int64_t> counts(static_cast<std::size_t>(num_classes), 0);
  for (const auto y : labels) counts.at(static_cast<std::size_t>(y))++;
  return counts;
}

Batch make_batch(const Dataset& ds, const std::vector<std::int64_t>& idx) {
  Batch b;
  b.x = take_rows(ds.images, idx);
  b.y.reserve(idx.size());
  for (const auto i : idx) b.y.push_back(ds.labels.at(static_cast<std::size_t>(i)));
  return b;
}

Batch make_batch(const Dataset& ds, std::int64_t begin, std::int64_t end) {
  if (begin < 0 || end < begin || end > ds.size()) {
    throw std::out_of_range("make_batch: range [" + std::to_string(begin) +
                            ", " + std::to_string(end) + ") outside dataset of " +
                            std::to_string(ds.size()));
  }
  const std::int64_t rows = end - begin;
  const std::int64_t row_size =
      ds.size() > 0 ? ds.images.numel() / ds.size() : 0;
  Shape shape = ds.images.shape();
  shape[0] = rows;
  Batch b;
  b.x = Tensor(std::move(shape));
  std::copy_n(ds.images.data().begin() + begin * row_size, rows * row_size,
              b.x.data().begin());
  b.y.assign(ds.labels.begin() + begin, ds.labels.begin() + end);
  return b;
}

}  // namespace ibrar::data
