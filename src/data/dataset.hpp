#pragma once
// In-memory labeled image dataset (NCHW float images in [0,1]).

#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace ibrar::data {

struct Dataset {
  Tensor images;                        ///< (N, C, H, W), values in [0,1]
  std::vector<std::int64_t> labels;     ///< length N
  std::vector<std::string> class_names; ///< length num_classes
  std::int64_t num_classes = 0;

  std::int64_t size() const { return images.rank() == 4 ? images.dim(0) : 0; }
  std::int64_t channels() const { return images.dim(1); }
  std::int64_t height() const { return images.dim(2); }
  std::int64_t width() const { return images.dim(3); }

  /// Copy of the examples at `idx` (order preserved).
  Dataset subset(const std::vector<std::int64_t>& idx) const;

  /// First `n` examples.
  Dataset head(std::int64_t n) const;

  /// Per-class example counts.
  std::vector<std::int64_t> class_counts() const;
};

/// One minibatch: images plus integer labels.
struct Batch {
  Tensor x;                          ///< (B, C, H, W)
  std::vector<std::int64_t> y;       ///< length B
  std::int64_t size() const { return x.dim(0); }
};

/// Extract a batch by explicit indices.
Batch make_batch(const Dataset& ds, const std::vector<std::int64_t>& idx);

/// Extract the contiguous range [begin, end) as a batch — the common shape of
/// every sequential evaluation sweep; one block copy instead of a per-row
/// gather. Throws std::out_of_range on an invalid range.
Batch make_batch(const Dataset& ds, std::int64_t begin, std::int64_t end);

}  // namespace ibrar::data
