#pragma once
// Procedural image dataset generator — the offline stand-in for CIFAR-10/100,
// SVHN and Tiny ImageNet (see DESIGN.md, substitution table).
//
// Each class c gets a prototype image composed of:
//   * a ROBUST component: a smooth (low spatial frequency) random field unique
//     to the class, with large amplitude — survives Linf-bounded noise;
//   * a NON-ROBUST component: a high-frequency random field that is perfectly
//     class-correlated but has small amplitude — an eps-ball perturbation can
//     flip it, mirroring the non-robust features of Ilyas et al. that IB-RAR
//     compresses away;
//   * SHARED components: smooth fields added to *pairs* of similar classes
//     (car<->truck, cat<->dog, ...), reproducing the confusion structure the
//     paper reports in Table 5.
// A sample is prototype + Gaussian pixel noise + random circular shift +
// brightness jitter, clamped to [0,1].

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace ibrar::data {

struct SyntheticConfig {
  std::int64_t num_classes = 10;
  std::int64_t image_size = 16;
  std::int64_t channels = 3;
  std::int64_t train_size = 2000;
  std::int64_t test_size = 500;

  // Amplitudes are tuned so that an undefended classifier prefers the crisp
  // non-robust component (cheap to flip inside an 8/255 Linf ball) while the
  // robust component survives the attack — the regime of Ilyas et al. that
  // the paper's near-zero CE robustness reflects. The robust component's
  // per-sample amplitude jitter is what keeps it the *less* reliable signal
  // for plain ERM, so cross-entropy keeps leaning on the non-robust one even
  // at convergence.
  float robust_amplitude = 0.18f;     ///< low-frequency class signal
  float robust_jitter = 0.7f;         ///< per-sample scale in [1-j, 1] * A_r
  float nonrobust_amplitude = 0.08f;  ///< high-frequency class signal (~2*eps)
  float shared_amplitude = 0.14f;     ///< similar-pair shared signal
  float noise_std = 0.12f;            ///< i.i.d. pixel noise
  float brightness_jitter = 0.05f;
  std::int64_t max_shift = 1;         ///< circular shift in pixels

  /// Pairs of similar classes sharing a feature field (indices into classes).
  std::vector<std::pair<std::int64_t, std::int64_t>> shared_pairs;

  /// Class sampling weights (empty = uniform). SVHN-like sets are imbalanced.
  std::vector<double> class_weights;

  std::vector<std::string> class_names;  ///< optional; default "class<i>"

  std::uint64_t seed = 7;
};

/// Generated train/test split drawn from the same class prototypes.
struct SyntheticData {
  Dataset train;
  Dataset test;
  /// The clean prototypes per class (num_classes, C, H, W) — used by tests
  /// to verify correlation structure.
  Tensor prototypes;
};

/// Generate a dataset per `cfg`; deterministic in cfg.seed.
SyntheticData generate(const SyntheticConfig& cfg);

/// CIFAR-10-like config: 10 named classes with the paper's confusable pairs.
SyntheticConfig cifar10_like(std::int64_t train_size, std::int64_t test_size,
                             std::uint64_t seed = 7);

/// CIFAR-100-like (20 superclass-scale classes, more overlap).
SyntheticConfig cifar100_like(std::int64_t train_size, std::int64_t test_size,
                              std::uint64_t seed = 11);

/// SVHN-like: 10 digit classes, imbalanced priors (majority class ~19.6%,
/// matching the accuracy plateau in the paper's Fig. 4), heavy inter-class
/// similarity.
SyntheticConfig svhn_like(std::int64_t train_size, std::int64_t test_size,
                          std::uint64_t seed = 13);

/// Tiny-ImageNet-like: 20 classes, higher noise, weaker class signal.
SyntheticConfig tinyimagenet_like(std::int64_t train_size, std::int64_t test_size,
                                  std::uint64_t seed = 17);

}  // namespace ibrar::data
