#include "data/registry.hpp"

#include <stdexcept>

namespace ibrar::data {

SyntheticData make_dataset(const std::string& name, std::int64_t train_size,
                           std::int64_t test_size, std::uint64_t seed) {
  if (name == "synth-cifar10") {
    return generate(cifar10_like(train_size, test_size, seed));
  }
  if (name == "synth-cifar100") {
    return generate(cifar100_like(train_size, test_size, seed));
  }
  if (name == "synth-svhn") {
    return generate(svhn_like(train_size, test_size, seed));
  }
  if (name == "synth-tinyimagenet") {
    return generate(tinyimagenet_like(train_size, test_size, seed));
  }
  throw std::invalid_argument("make_dataset: unknown dataset " + name);
}

std::vector<std::string> dataset_names() {
  return {"synth-cifar10", "synth-cifar100", "synth-svhn", "synth-tinyimagenet"};
}

}  // namespace ibrar::data
