#include "data/synthetic.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace ibrar::data {
namespace {

constexpr float kPi = std::numbers::pi_v<float>;

/// Smooth random field: sum of `waves` random sinusoids with frequencies in
/// [f_lo, f_hi] cycles per image, unit-normalized amplitude.
Tensor random_field(std::int64_t channels, std::int64_t size, Rng& rng,
                    float f_lo, float f_hi, std::int64_t waves) {
  Tensor field({channels, size, size});
  for (std::int64_t c = 0; c < channels; ++c) {
    for (std::int64_t w = 0; w < waves; ++w) {
      const float fx = rng.uniform(f_lo, f_hi) * (rng.bernoulli(0.5) ? 1.f : -1.f);
      const float fy = rng.uniform(f_lo, f_hi) * (rng.bernoulli(0.5) ? 1.f : -1.f);
      const float phase = rng.uniform(0.0f, 2.0f * kPi);
      const float amp = rng.uniform(0.5f, 1.0f);
      for (std::int64_t y = 0; y < size; ++y) {
        for (std::int64_t x = 0; x < size; ++x) {
          const float ang = 2.0f * kPi *
                                (fx * static_cast<float>(x) +
                                 fy * static_cast<float>(y)) /
                                static_cast<float>(size) +
                            phase;
          field.at(c, y, x) += amp * std::sin(ang);
        }
      }
    }
  }
  // Normalize to unit RMS so amplitudes in the config are comparable.
  double ss = 0.0;
  for (const auto v : field.vec()) ss += double(v) * v;
  const float rms = static_cast<float>(std::sqrt(ss / field.numel()));
  if (rms > 0) {
    for (auto& v : field.vec()) v /= rms;
  }
  return field;
}

/// Circularly shift an image (C,H,W) by (dy, dx).
void shift_into(const Tensor& src, Tensor& dst, std::int64_t dy, std::int64_t dx) {
  const auto c = src.dim(0), h = src.dim(1), w = src.dim(2);
  for (std::int64_t ic = 0; ic < c; ++ic) {
    for (std::int64_t y = 0; y < h; ++y) {
      const std::int64_t sy = ((y - dy) % h + h) % h;
      for (std::int64_t x = 0; x < w; ++x) {
        const std::int64_t sx = ((x - dx) % w + w) % w;
        dst.at(ic, y, x) = src.at(ic, sy, sx);
      }
    }
  }
}

std::vector<std::int64_t> sample_labels(const SyntheticConfig& cfg,
                                        std::int64_t n, Rng& rng) {
  std::vector<std::int64_t> labels(static_cast<std::size_t>(n));
  if (cfg.class_weights.empty()) {
    // Balanced: round-robin then shuffle, so counts are exactly even.
    for (std::int64_t i = 0; i < n; ++i) {
      labels[static_cast<std::size_t>(i)] = i % cfg.num_classes;
    }
    rng.shuffle(labels);
  } else {
    if (static_cast<std::int64_t>(cfg.class_weights.size()) != cfg.num_classes) {
      throw std::invalid_argument("class_weights size mismatch");
    }
    double total = 0.0;
    for (const auto w : cfg.class_weights) total += w;
    for (auto& y : labels) {
      double u = rng.uniform(0.0f, 1.0f) * total;
      std::int64_t c = 0;
      while (c + 1 < cfg.num_classes && u > cfg.class_weights[static_cast<std::size_t>(c)]) {
        u -= cfg.class_weights[static_cast<std::size_t>(c)];
        ++c;
      }
      y = c;
    }
  }
  return labels;
}

/// `base` holds the crisp per-class content (non-robust + shared features);
/// `robust` the unit-normalized robust field, scaled per SAMPLE below so ERM
/// cannot rely on it as confidently as on the crisp component.
Dataset render_split(const SyntheticConfig& cfg, const Tensor& base,
                     const Tensor& robust, std::int64_t n, Rng& rng,
                     const std::vector<std::string>& names) {
  Dataset ds;
  ds.num_classes = cfg.num_classes;
  ds.class_names = names;
  ds.labels = sample_labels(cfg, n, rng);
  ds.images = Tensor({n, cfg.channels, cfg.image_size, cfg.image_size});

  const std::int64_t img_elems = cfg.channels * cfg.image_size * cfg.image_size;
  Tensor proto_view({cfg.channels, cfg.image_size, cfg.image_size});
  Tensor shifted(proto_view.shape());
  for (std::int64_t i = 0; i < n; ++i) {
    const auto y = ds.labels[static_cast<std::size_t>(i)];
    const float robust_scale =
        cfg.robust_amplitude *
        (1.0f - cfg.robust_jitter * rng.uniform(0.0f, 1.0f));
    const float* pb = base.data().data() + y * img_elems;
    const float* pr = robust.data().data() + y * img_elems;
    for (std::int64_t k = 0; k < img_elems; ++k) {
      proto_view.data()[static_cast<std::size_t>(k)] =
          pb[k] + robust_scale * pr[k];
    }
    const std::int64_t dy = rng.randint(-cfg.max_shift, cfg.max_shift);
    const std::int64_t dx = rng.randint(-cfg.max_shift, cfg.max_shift);
    shift_into(proto_view, shifted, dy, dx);
    const float bright = rng.uniform(-cfg.brightness_jitter, cfg.brightness_jitter);
    float* dst = ds.images.data().data() + i * img_elems;
    const float* src = shifted.data().data();
    for (std::int64_t k = 0; k < img_elems; ++k) {
      const float v = src[k] + bright + rng.normal(0.0f, cfg.noise_std);
      dst[k] = std::min(1.0f, std::max(0.0f, v));
    }
  }
  return ds;
}

}  // namespace

SyntheticData generate(const SyntheticConfig& cfg) {
  Rng rng(cfg.seed);
  const auto cN = cfg.num_classes;
  const auto sz = cfg.image_size;
  const auto ch = cfg.channels;

  std::vector<std::string> names = cfg.class_names;
  if (names.empty()) {
    for (std::int64_t c = 0; c < cN; ++c) names.push_back("class" + std::to_string(c));
  }

  // Per-pair shared fields first, so each similar pair has a common component.
  std::vector<Tensor> shared_fields;
  shared_fields.reserve(cfg.shared_pairs.size());
  for (std::size_t p = 0; p < cfg.shared_pairs.size(); ++p) {
    shared_fields.push_back(random_field(ch, sz, rng, 0.5f, 2.0f, 4));
  }

  // `base` carries the crisp content (non-robust + shared); `robust_fields`
  // the unit robust fields, mixed in per sample with amplitude jitter.
  Tensor base({cN, ch, sz, sz});
  Tensor robust_fields({cN, ch, sz, sz});
  const std::int64_t img_elems = ch * sz * sz;
  for (std::int64_t c = 0; c < cN; ++c) {
    Tensor robust = random_field(ch, sz, rng, 0.5f, 2.0f, 4);
    Tensor nonrobust = random_field(ch, sz, rng, 4.0f, 7.0f, 4);
    float* dst = base.data().data() + c * img_elems;
    float* rdst = robust_fields.data().data() + c * img_elems;
    const float* pr = robust.data().data();
    const float* pn = nonrobust.data().data();
    for (std::int64_t k = 0; k < img_elems; ++k) {
      dst[k] = 0.5f + cfg.nonrobust_amplitude * pn[k];
      rdst[k] = pr[k];
    }
    for (std::size_t p = 0; p < cfg.shared_pairs.size(); ++p) {
      const auto& [a, b] = cfg.shared_pairs[p];
      if (a == c || b == c) {
        const float* ps = shared_fields[p].data().data();
        for (std::int64_t k = 0; k < img_elems; ++k) {
          dst[k] += cfg.shared_amplitude * ps[k];
        }
      }
    }
  }

  SyntheticData out;
  // Exported prototypes = mean image (robust field at its mean amplitude).
  out.prototypes = base;
  {
    const float mean_scale =
        cfg.robust_amplitude * (1.0f - 0.5f * cfg.robust_jitter);
    for (std::int64_t k = 0; k < out.prototypes.numel(); ++k) {
      out.prototypes[k] += mean_scale * robust_fields[k];
    }
  }
  Rng train_rng = rng.fork(1);
  Rng test_rng = rng.fork(2);
  out.train = render_split(cfg, base, robust_fields, cfg.train_size, train_rng,
                           names);
  out.test = render_split(cfg, base, robust_fields, cfg.test_size, test_rng,
                          names);
  return out;
}

SyntheticConfig cifar10_like(std::int64_t train_size, std::int64_t test_size,
                             std::uint64_t seed) {
  SyntheticConfig cfg;
  cfg.num_classes = 10;
  cfg.train_size = train_size;
  cfg.test_size = test_size;
  cfg.seed = seed;
  cfg.class_names = {"plane", "car", "bird", "cat", "deer",
                     "dog", "frog", "horse", "ship", "truck"};
  // Confusable pairs chosen to match the tendencies in the paper's Table 5.
  cfg.shared_pairs = {{1, 9},   // car <-> truck
                      {3, 5},   // cat <-> dog
                      {2, 4},   // bird <-> deer
                      {0, 8},   // plane <-> ship
                      {4, 7},   // deer <-> horse
                      {3, 6}};  // cat <-> frog
  return cfg;
}

SyntheticConfig cifar100_like(std::int64_t train_size, std::int64_t test_size,
                              std::uint64_t seed) {
  SyntheticConfig cfg;
  cfg.num_classes = 20;  // superclass-scale stand-in for the 100 classes
  cfg.train_size = train_size;
  cfg.test_size = test_size;
  cfg.seed = seed;
  cfg.robust_amplitude = 0.26f;
  cfg.shared_amplitude = 0.24f;
  for (std::int64_t c = 0; c + 1 < cfg.num_classes; c += 2) {
    cfg.shared_pairs.emplace_back(c, c + 1);
  }
  return cfg;
}

SyntheticConfig svhn_like(std::int64_t train_size, std::int64_t test_size,
                          std::uint64_t seed) {
  SyntheticConfig cfg;
  cfg.num_classes = 10;
  cfg.train_size = train_size;
  cfg.test_size = test_size;
  cfg.seed = seed;
  cfg.class_names = {"0", "1", "2", "3", "4", "5", "6", "7", "8", "9"};
  // SVHN's digit distribution: '1' dominates at ~19.6% — this is the
  // accuracy plateau the paper reports for stuck MART training (Fig. 4).
  cfg.class_weights = {0.070, 0.196, 0.148, 0.120, 0.100,
                       0.092, 0.080, 0.076, 0.066, 0.052};
  // Digits share strokes heavily: chain of shared pairs.
  cfg.shared_pairs = {{1, 7}, {3, 8}, {0, 8}, {5, 6}, {4, 9}, {2, 3}};
  cfg.shared_amplitude = 0.30f;
  cfg.robust_amplitude = 0.22f;
  cfg.noise_std = 0.08f;
  return cfg;
}

SyntheticConfig tinyimagenet_like(std::int64_t train_size, std::int64_t test_size,
                                  std::uint64_t seed) {
  SyntheticConfig cfg;
  cfg.num_classes = 20;  // scaled stand-in for 200 classes
  cfg.train_size = train_size;
  cfg.test_size = test_size;
  cfg.seed = seed;
  cfg.robust_amplitude = 0.22f;
  cfg.shared_amplitude = 0.26f;
  cfg.noise_std = 0.10f;
  for (std::int64_t c = 0; c + 1 < cfg.num_classes; ++c) {
    if (c % 3 != 2) cfg.shared_pairs.emplace_back(c, c + 1);
  }
  return cfg;
}

}  // namespace ibrar::data
