#include "serve/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mi/channel_score.hpp"
#include "runtime/scratch_arena.hpp"

namespace ibrar::serve {

DriftDetector::DriftDetector() : DriftDetector(Config()) {}

DriftDetector::DriftDetector(Config cfg) : cfg_(cfg) {
  cfg_.decay = std::clamp(cfg_.decay, 0.0, 0.999);
  cfg_.band_sigma = std::max(cfg_.band_sigma, 0.1);
  cfg_.min_band = std::max(cfg_.min_band, 0.0);
  cfg_.warmup = std::max<std::int64_t>(cfg_.warmup, 1);
  cfg_.trip = std::max<std::int64_t>(cfg_.trip, 1);
}

double DriftDetector::stddev() const { return std::sqrt(std::max(var_, 0.0)); }

void DriftDetector::reset() {
  mean_ = 0.0;
  var_ = 0.0;
  n_ = 0;
  out_run_ = 0;
  state_ = kStable;
}

int DriftDetector::observe(double v) {
  ++n_;
  if (n_ == 1) {
    mean_ = v;
    var_ = 0.0;
    return state_;
  }
  const bool armed = n_ > cfg_.warmup;
  const double band =
      std::max(cfg_.band_sigma * stddev(), cfg_.min_band);
  if (armed && std::abs(v - mean_) > band) {
    // Out-of-band: count toward the trip, and keep the baseline frozen so a
    // persistent shift stays flagged instead of being learned as normal.
    ++out_run_;
    if (out_run_ >= cfg_.trip) state_ = kDrift;
    return state_;
  }
  out_run_ = 0;
  state_ = kStable;
  const double d = v - mean_;
  mean_ += (1.0 - cfg_.decay) * d;
  var_ = cfg_.decay * (var_ + (1.0 - cfg_.decay) * d * d);
  return state_;
}

RobustnessMonitor::RobustnessMonitor(TelemetryConfig cfg) : cfg_(cfg) {
  if (cfg_.sample_every < 0) {
    throw std::invalid_argument("RobustnessMonitor: sample_every must be >= 0");
  }
  cfg_.window = std::max<std::int64_t>(cfg_.window, 2);
  cfg_.suspicious_fraction =
      std::clamp(cfg_.suspicious_fraction, 0.01f, 0.99f);
  cfg_.ewma_decay = std::clamp(cfg_.ewma_decay, 0.0f, 0.99f);
}

RequestTelemetry RobustnessMonitor::observe(const float* tap_row,
                                            std::int64_t channels,
                                            std::int64_t spatial,
                                            std::int64_t pred,
                                            std::int64_t num_classes) {
  RequestTelemetry out;
  out.sampled = true;
  const std::int64_t width = channels * spatial;

  // Per-channel activation energy of THIS request, staged in the arena's
  // telemetry slot. The handle is distinct from the GEMM pack slots and the
  // sym-Gram tile, so the buffer stays valid across the nested channel-score
  // kernels the window refresh below runs on this same thread.
  float* energy = runtime::lane_arena().floats(
      runtime::Scratch::kServeTelemetry, static_cast<std::size_t>(channels));
  float total = 0.0f;
  for (std::int64_t c = 0; c < channels; ++c) {
    float acc = 0.0f;
    const float* row = tap_row + c * spatial;
    for (std::int64_t s = 0; s < spatial; ++s) acc += row[s] * row[s];
    energy[c] = acc;
    total += acc;
  }

  std::unique_lock<std::mutex> lk(mu_);
  if (channels_ == 0) {
    channels_ = channels;
    spatial_ = spatial;
    window_taps_.resize(
        static_cast<std::size_t>(cfg_.window) * static_cast<std::size_t>(width));
    window_preds_.resize(static_cast<std::size_t>(cfg_.window));
  } else if (channels != channels_ || spatial != spatial_) {
    // A hot-swap changed the tap geometry: restart the window for the new
    // architecture (old scores are meaningless for it).
    channels_ = channels;
    spatial_ = spatial;
    fill_ = 0;
    scores_.clear();
    suspicious_mask_ = Tensor({0});
    win_susp_sum_ = 0.0;
    win_susp_n_ = 0;
    drift_.reset();  // the suspicion baseline belonged to the old geometry
    window_taps_.assign(
        static_cast<std::size_t>(cfg_.window) * static_cast<std::size_t>(width),
        0.0f);
    window_preds_.assign(static_cast<std::size_t>(cfg_.window), 0);
  }

  std::copy_n(tap_row, width,
              window_taps_.data() + fill_ * width);
  window_preds_[static_cast<std::size_t>(fill_)] = pred;
  ++fill_;
  ++samples_;

  if (fill_ == cfg_.window) {
    // One drift observation per completed window: the mean suspicion of the
    // samples scored during it (none before the first epoch — no score
    // vector existed to read suspicion against).
    if (win_susp_n_ > 0) {
      drift_.observe(win_susp_sum_ / static_cast<double>(win_susp_n_));
      win_susp_sum_ = 0.0;
      win_susp_n_ = 0;
    }
    // Window full: refresh the Eq. (3) scores from the sampled taps, labeled
    // by the model's own predictions. The features view is (n, C, spatial, 1)
    // so conv taps keep their channel axis; NC taps pass spatial == 1.
    //
    // The re-score runs OUTSIDE mu_ on a double-buffered copy of the window:
    // channel_label_scores is the expensive part (per-channel HSIC over the
    // whole window), and holding the lock across it would stall every other
    // worker's sampled request for the full re-score. Copy the window out,
    // free the live window for new samples, compute unlocked, then
    // re-install under the lock.
    Tensor feats({cfg_.window, channels_, spatial_, 1});
    std::copy(window_taps_.begin(), window_taps_.end(), feats.data().begin());
    std::vector<std::int64_t> preds = window_preds_;
    const std::int64_t gen_channels = channels_;
    const std::int64_t gen_spatial = spatial_;
    fill_ = 0;
    lk.unlock();

    auto scores = mi::channel_label_scores(feats, preds, num_classes);
    auto mask = mi::mask_from_scores(scores, cfg_.suspicious_fraction);

    lk.lock();
    // Install only if the tap geometry is still the one this window was
    // sampled under: a concurrent hot-swap may have restarted the window for
    // a new architecture, and these scores would be meaningless for it.
    if (channels_ == gen_channels && spatial_ == gen_spatial) {
      if (cfg_.ewma && scores_.size() == scores.size()) {
        // Sliding re-score: blend into the previous epoch instead of
        // replacing it, then re-derive the suspicious set from the blended
        // scores (cheap: one O(C log C) partial sort under the lock).
        const float d = cfg_.ewma_decay;
        for (std::size_t i = 0; i < scores.size(); ++i) {
          scores[i] = d * scores_[i] + (1.0f - d) * scores[i];
        }
        mask = mi::mask_from_scores(scores, cfg_.suspicious_fraction);
      }
      scores_ = std::move(scores);
      suspicious_mask_ = std::move(mask);
      ++epoch_;
    }
  }

  if (!scores_.empty() &&
      suspicious_mask_.numel() == channels) {
    float suspicious_energy = 0.0f;
    for (std::int64_t c = 0; c < channels; ++c) {
      if (suspicious_mask_[c] == 0.0f) suspicious_energy += energy[c];
    }
    out.suspicion = total > 0.0f ? suspicious_energy / total : 0.0f;
    out.score_epoch = epoch_;
    win_susp_sum_ += static_cast<double>(out.suspicion);
    ++win_susp_n_;
  }
  return out;
}

std::uint64_t RobustnessMonitor::score_epoch() const {
  std::lock_guard<std::mutex> lk(mu_);
  return epoch_;
}

std::vector<float> RobustnessMonitor::channel_scores() const {
  std::lock_guard<std::mutex> lk(mu_);
  return scores_;
}

std::int64_t RobustnessMonitor::window_fill() const {
  std::lock_guard<std::mutex> lk(mu_);
  return fill_;
}

std::uint64_t RobustnessMonitor::samples() const {
  std::lock_guard<std::mutex> lk(mu_);
  return samples_;
}

int RobustnessMonitor::drift_state() const {
  std::lock_guard<std::mutex> lk(mu_);
  return drift_.state();
}

DriftDetector RobustnessMonitor::drift_snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return drift_;
}

}  // namespace ibrar::serve
