#pragma once
// Duplicate-request reply cache: sharded LRU + in-flight dedup for serving.
//
// Millions of users send duplicate traffic; recomputing a forward for every
// copy of the same input is the one cost no kernel tuning removes. This cache
// keys replies on (input-bytes hash, model version) — nfs-ganesha's
// nfs_dupreq duplicate-request cache is the direct model, including its
// "being processed" state:
//
//   * A lookup that finds a COMPLETE entry returns the stored reply (a hit).
//     By contract the hit's logits are memcmp-identical to a recompute: the
//     stored reply IS a recompute's reply (same snapshot version, and the
//     serving path is bit-deterministic at any batch/worker count), so
//     returning it verbatim cannot differ by even one bit. Gated in
//     tests/test_reply_cache.cpp and bench_serve.
//   * A lookup that finds an IN-FLIGHT entry joins it: the caller's promise
//     is parked on the entry and the eventual leader reply fans out to every
//     joiner — N concurrent identical requests ride ONE compute.
//   * A lookup that finds nothing installs an in-flight entry and names the
//     caller leader; the leader proceeds through admission + queue + compute
//     and must call exactly one of complete() (fan + store) or abort() (fan
//     the failure, store nothing).
//
// Safety against hash collisions: every entry stores its exact input bytes
// and a candidate must memcmp-match them before it may hit or join; a
// colliding different input degrades to an uncached compute (Outcome::kBypass
// — never a wrong answer).
//
// Capacity is bounded in BYTES (inputs dominate), LRU-evicted from the cold
// end; in-flight entries are pinned (evicting one would strand its joiners).
// A model hot-swap invalidates: on_version() drops complete entries of other
// versions and dooms in-flight ones (they still fan out — their joiners were
// promised a reply — but are not stored).
//
// Observability (obs::registry(), no ad-hoc stat structs):
//   serve.cache.lookups / hits / misses / inflight_joins / evictions /
//   invalidations counters (a join counts as a hit too, so
//   hits + misses == lookups exactly — tools/check_serve_stats.py asserts
//   it), the serve.cache.bytes gauge tracking live bytes (falls on eviction,
//   invalidation, and clear — same freshness contract PR 7 established for
//   serve.queue_depth; 0 after shutdown), and serve.cache.budget_bytes.
//
// Thread safety: every public method is safe from any thread. Promise
// fan-out happens outside the shard locks.

#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/reply.hpp"
#include "tensor/tensor.hpp"

namespace ibrar::serve {

struct ReplyCacheConfig {
  /// Byte budget across all shards; 0 disables the cache entirely.
  std::size_t capacity_bytes = 0;
  /// Shard count (rounded up to a power of two, min 1). More shards spread
  /// the per-shard mutexes under concurrent submit storms.
  std::size_t shards = 8;
};

class ReplyCache {
 public:
  enum class Outcome {
    kBypass = 0,  ///< cache disabled or hash collision — serve uncached
    kHit,         ///< complete entry found; Lookup::reply is the answer
    kJoined,      ///< in-flight entry found; the promise was parked on it
    kLeader,      ///< entry installed; caller computes, then complete()/abort()
  };

  struct Lookup {
    Outcome outcome = Outcome::kBypass;
    Reply reply;  ///< valid only for kHit
  };

  explicit ReplyCache(ReplyCacheConfig cfg);
  ~ReplyCache();
  ReplyCache(const ReplyCache&) = delete;
  ReplyCache& operator=(const ReplyCache&) = delete;

  bool enabled() const { return cfg_.capacity_bytes > 0; }

  /// FNV-1a 64 over the shape dims and raw float bytes of the input.
  static std::uint64_t hash_input(const Tensor& input);

  /// One admission-time lookup. On kJoined, `joiner` has been consumed (moved
  /// into the entry); on every other outcome it is untouched. `version` must
  /// be the snapshot version the caller would compute under.
  Lookup lookup_or_join(std::uint64_t hash, const Tensor& input,
                        std::uint64_t version, std::promise<Reply>& joiner);

  /// Leader completion: fan `reply` to every joiner (as cached copies when it
  /// is ok, plain failure copies otherwise) and store it for future hits —
  /// unless the reply failed, the entry was doomed by an invalidation, or the
  /// version is no longer current. The leader keeps `reply` for its own
  /// promise. No-op if the entry is gone (clear() raced a shutdown).
  void complete(std::uint64_t hash, std::uint64_t version, const Reply& reply);

  /// Leader abort (admission denied, queue full/closed): fan the failure to
  /// every joiner and drop the entry. No-op if the entry is gone.
  void abort(std::uint64_t hash, std::uint64_t version, const Reply& reply);

  /// Note the currently published model version; when it changed, drop every
  /// complete entry of another version and doom in-flight ones (invalidation
  /// on hot-swap). Cheap when the version is unchanged (one atomic load).
  void on_version(std::uint64_t version);

  /// Drop everything. Stranded joiners (possible when a submit races server
  /// shutdown) are failed with kRejectedShutdown rather than broken promises.
  void clear();

  std::size_t bytes() const { return bytes_.load(std::memory_order_relaxed); }
  std::size_t capacity_bytes() const { return cfg_.capacity_bytes; }
  std::size_t entries() const;

 private:
  /// Fixed accounting overhead per entry (list/map nodes, bookkeeping).
  static constexpr std::size_t kEntryOverheadBytes = 128;

  struct Entry {
    std::uint64_t key = 0;      ///< mixed (hash, version) map key
    std::uint64_t version = 0;
    Shape shape;
    std::vector<float> input;   ///< exact bytes, memcmp'd before any hit/join
    bool complete = false;
    bool doomed = false;        ///< invalidated while in flight; never store
    Reply reply;                ///< normalized cached reply (complete only)
    std::vector<std::promise<Reply>> joiners;  ///< parked while in flight
    std::size_t bytes = 0;      ///< this entry's accounted footprint
  };

  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  ///< front = hottest
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index;
  };

  static std::uint64_t mix_key(std::uint64_t hash, std::uint64_t version);
  Shard& shard_for(std::uint64_t key);
  static std::size_t entry_bytes(const Entry& e);
  /// Evict cold COMPLETE entries until bytes_ fits the budget. Shard lock
  /// must NOT be held (takes each shard's in turn).
  void evict_to_budget();
  void account(std::ptrdiff_t delta);

  ReplyCacheConfig cfg_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> bytes_{0};
  std::atomic<std::uint64_t> latest_version_{0};

  obs::Counter& c_lookups_;
  obs::Counter& c_hits_;
  obs::Counter& c_misses_;
  obs::Counter& c_joins_;
  obs::Counter& c_evictions_;
  obs::Counter& c_invalidations_;
  obs::Gauge& g_bytes_;
  obs::Gauge& g_budget_;
};

}  // namespace ibrar::serve
