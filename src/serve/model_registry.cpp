#include "serve/model_registry.hpp"

#include <stdexcept>

#include "nn/module.hpp"

namespace ibrar::serve {

std::uint64_t ModelRegistry::publish(models::TapClassifierPtr model,
                                     Shape input_shape, std::string tag,
                                     bool prepack) {
  if (!model) throw std::invalid_argument("ModelRegistry::publish: null model");
  if (input_shape.size() != 3) {
    throw std::invalid_argument(
        "ModelRegistry::publish: input_shape must be (C, H, W), got " +
        shape_str(input_shape));
  }
  model->set_training(false);
  // Snapshot-time weight prepack: the last mutation before the model goes
  // const. prepare_fused_eval is a no-op for dense models, already-prepared
  // models, and under IBRAR_EVAL_FUSED=0.
  if (prepack) model->prepare_fused_eval();
  auto snap = std::make_shared<ModelSnapshot>();
  snap->model = std::move(model);
  snap->version = next_version_.fetch_add(1, std::memory_order_relaxed);
  snap->tag = std::move(tag);
  snap->input_shape = std::move(input_shape);
  snap->num_classes = snap->model->num_classes();
  current_.store(std::shared_ptr<const ModelSnapshot>(std::move(snap)),
                 std::memory_order_release);
  return version();
}

std::uint64_t ModelRegistry::publish_checkpoint(const models::ModelSpec& spec,
                                                const std::string& path,
                                                std::string tag) {
  // Build + load happen entirely off to the side; the swap at the end is the
  // only point the serving path can observe. A throw here (missing file,
  // architecture mismatch) leaves the previous version serving.
  Rng rng(0);  // init weights are fully overwritten by the checkpoint
  auto model = models::make_model(spec, rng);
  nn::load_model(*model, path);
  return publish(std::move(model),
                 {spec.in_channels, spec.image_size, spec.image_size},
                 tag.empty() ? path : std::move(tag));
}

std::shared_ptr<const ModelSnapshot> ModelRegistry::current() const {
  return current_.load(std::memory_order_acquire);
}

std::uint64_t ModelRegistry::version() const {
  const auto snap = current();
  return snap ? snap->version : 0;
}

}  // namespace ibrar::serve
