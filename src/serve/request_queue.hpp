#pragma once
// Bounded MPMC admission queue: the front door of the serving runtime.
//
// Producers (client threads calling Server::submit) push under a mutex;
// consumers (one Batcher per serving worker — any number of them, all
// sharing this queue) pop with plain and deadline-bounded waits under the
// same mutex, so the queue is safely multi-producer AND multi-consumer.
// Admission control is non-blocking by design:
// a full queue rejects immediately (PushStatus::kFull) instead of stalling
// the caller — the server turns that into a reject-with-status reply, which
// is the backpressure contract load generators and upstreams can key off.
//
// Shutdown is graceful: close() stops admission but already-accepted
// requests remain poppable, so the consumer drains the queue to empty before
// pop reports kClosed. This mirrors the dispatcher skeleton of long-lived
// servers like nfs-ganesha and cups: reject at the door under overload,
// never drop work already admitted.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>

#include "serve/reply.hpp"
#include "tensor/tensor.hpp"

namespace ibrar::serve {

/// One queued inference request.
struct Request {
  Tensor input;                 ///< (C, H, W), layout fixed by the snapshot
  std::promise<Reply> promise;  ///< fulfilled by the worker (or at rejection)
  std::int64_t enqueue_ns = 0;  ///< steady-clock stamp at admission
  std::uint64_t index = 0;      ///< admission sequence number (telemetry cadence)
  std::uint64_t client_id = 0;  ///< wire-frame client id (admission fairness)
  /// Reply-cache leadership (see serve/reply_cache.hpp): this request
  /// installed the in-flight dedup entry at (cache_hash, cache_version) and
  /// owes the cache exactly one complete()/abort() when its reply resolves.
  bool cache_leader = false;
  std::uint64_t cache_hash = 0;
  std::uint64_t cache_version = 0;
};

enum class PushStatus {
  kAccepted = 0,
  kFull,    ///< at capacity; request NOT consumed
  kClosed,  ///< queue closed; request NOT consumed
};

enum class PopStatus {
  kItem = 0,
  kTimeout,  ///< deadline passed with no item (queue still open)
  kClosed,   ///< closed AND drained empty — the consumer can exit
};

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity);
  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Non-blocking admission. Moves from `r` ONLY when kAccepted is returned,
  /// so on rejection the caller still owns the promise and can fail it.
  /// On acceptance `r.index` is assigned here, under the queue lock, so
  /// indices form a gap-free admission sequence (rejected submissions never
  /// consume one — the telemetry cadence counts admitted traffic only).
  PushStatus push(Request& r);

  /// Block until an item arrives (kItem) or the queue is closed and empty
  /// (kClosed).
  PopStatus pop(Request& out);

  /// Like pop, but gives up at `deadline` (kTimeout). Used by the batcher's
  /// deadline trigger.
  PopStatus pop_until(Request& out,
                      std::chrono::steady_clock::time_point deadline);

  /// Stop admission; wakes all waiting poppers. Idempotent.
  void close();

  bool closed() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> items_;
  std::uint64_t admitted_ = 0;
  bool closed_ = false;
};

}  // namespace ibrar::serve
