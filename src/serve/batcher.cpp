#include "serve/batcher.hpp"

#include <algorithm>
#include <chrono>

#include "obs/clock.hpp"

namespace ibrar::serve {

Batcher::Batcher(RequestQueue& queue, std::int64_t max_batch,
                 std::int64_t deadline_us)
    : queue_(queue),
      max_batch_(std::max<std::int64_t>(max_batch, 1)),
      deadline_us_(std::max<std::int64_t>(deadline_us, 0)) {}

bool Batcher::next(MicroBatch& out) {
  out.requests.clear();
  Request first;
  if (queue_.pop(first) == PopStatus::kClosed) return false;
  out.assemble_begin_ns = obs::now_ns();
  out.requests.push_back(std::move(first));

  // The deadline is anchored on the FIRST request of the batch: a request
  // waits at most deadline_us for co-riders, however sparse the traffic.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(deadline_us_);
  out.trigger = BatchTrigger::kSize;
  while (out.size() < max_batch_) {
    Request r;
    const PopStatus st = queue_.pop_until(r, deadline);
    if (st == PopStatus::kItem) {
      out.requests.push_back(std::move(r));
    } else {
      out.trigger = st == PopStatus::kClosed ? BatchTrigger::kDrain
                                             : BatchTrigger::kDeadline;
      break;
    }
  }
  out.assemble_end_ns = obs::now_ns();
  return true;
}

}  // namespace ibrar::serve
