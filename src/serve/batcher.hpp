#pragma once
// Dynamic micro-batch assembly under a dual trigger.
//
// The batcher blocks for the first request, then keeps collecting until
// EITHER the batch reaches max_batch (size trigger — released immediately,
// no deadline wait) OR deadline_us have elapsed since that first pop
// (deadline trigger — bounded latency under trickle load). A closed queue
// flushes whatever has been collected at once (drain trigger), so shutdown
// never waits out a deadline.
//
// Determinism contract: batching is a pure scheduling decision. The model
// forward downstream is per-row stateless in eval mode (no cross-row ops;
// batch norm reads frozen running stats; dropout is identity) and every
// tensor kernel in the stack guarantees a per-element instruction sequence
// independent of the batch row count, so a request's logits are bit-identical
// whichever micro-batch it lands in — including a batch of one. bench_serve
// gates on exactly this.

#include <cstdint>
#include <vector>

#include "serve/request_queue.hpp"

namespace ibrar::serve {

/// One assembled micro-batch, ready for a single packed-GEMM forward.
/// assemble_begin/end_ns bracket the collection window (first pop -> release)
/// on the shared obs::now_ns() axis, so the server can emit batch_assembly
/// and queue_wait trace spans after the fact.
struct MicroBatch {
  std::vector<Request> requests;
  BatchTrigger trigger = BatchTrigger::kSize;
  std::int64_t assemble_begin_ns = 0;
  std::int64_t assemble_end_ns = 0;
  std::int64_t size() const {
    return static_cast<std::int64_t>(requests.size());
  }
};

class Batcher {
 public:
  /// max_batch is clamped to >= 1; deadline_us < 0 is treated as 0 (release
  /// as soon as the queue stops handing over items without waiting).
  Batcher(RequestQueue& queue, std::int64_t max_batch, std::int64_t deadline_us);

  /// Assemble the next micro-batch. Returns false when the queue is closed
  /// and fully drained — the worker's signal to exit.
  bool next(MicroBatch& out);

  std::int64_t max_batch() const { return max_batch_; }
  std::int64_t deadline_us() const { return deadline_us_; }

 private:
  RequestQueue& queue_;
  std::int64_t max_batch_;
  std::int64_t deadline_us_;
};

}  // namespace ibrar::serve
