#include "serve/admission.hpp"

#include <algorithm>
#include <cmath>

namespace ibrar::serve {
namespace {

constexpr std::uint32_t kMinRetryMs = 1;
constexpr std::uint32_t kMaxRetryMs = 5000;
/// Hint before any service-rate measurement exists (first batches of a cold
/// server): long enough to shed a thundering herd, short enough to not
/// strand a lone client.
constexpr std::uint32_t kColdRetryMs = 50;
/// EWMA weight for the newest inter-batch rate sample.
constexpr double kRateAlpha = 0.2;

std::uint32_t clamp_ms(double ms) {
  if (!(ms > 0.0)) return kMinRetryMs;
  return static_cast<std::uint32_t>(
      std::min<double>(kMaxRetryMs, std::max<double>(kMinRetryMs, ms)));
}

}  // namespace

AdmissionController::AdmissionController(AdmissionConfig cfg) : cfg_(cfg) {
  burst_ = cfg_.client_burst > 0.0 ? cfg_.client_burst
                                   : std::max(cfg_.client_rate, 1.0);
}

AdmissionController::Decision AdmissionController::try_admit(
    std::uint64_t client_id, std::int64_t now_ns) {
  Decision d;
  if (!enabled()) return d;
  std::lock_guard<std::mutex> lk(mu_);
  auto [it, fresh] = clients_.try_emplace(client_id);
  ClientState& st = it->second;
  if (fresh) {
    st.tokens = burst_;
    st.last_refill_ns = now_ns;
  }
  if (cfg_.max_inflight_per_client > 0 &&
      st.inflight >= cfg_.max_inflight_per_client) {
    d.admit = false;
    // The client's own backlog has to drain first; one admitted-request
    // service time is the natural pacing unit.
    const double rate = rate_rows_per_sec_;
    d.retry_after_ms =
        rate > 0.0 ? clamp_ms(1000.0 * static_cast<double>(st.inflight) / rate)
                   : kColdRetryMs;
    return d;
  }
  if (cfg_.client_rate > 0.0) {
    const double dt_s =
        static_cast<double>(now_ns - st.last_refill_ns) * 1e-9;
    st.tokens = std::min(burst_, st.tokens + dt_s * cfg_.client_rate);
    st.last_refill_ns = now_ns;
    if (st.tokens < 1.0) {
      d.admit = false;
      // Time until the bucket accrues the missing fraction of a token.
      d.retry_after_ms =
          clamp_ms(1000.0 * (1.0 - st.tokens) / cfg_.client_rate);
      return d;
    }
    st.tokens -= 1.0;
  }
  st.inflight += 1;
  return d;
}

void AdmissionController::release(std::uint64_t client_id) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lk(mu_);
  auto it = clients_.find(client_id);
  if (it != clients_.end() && it->second.inflight > 0) {
    it->second.inflight -= 1;
  }
}

void AdmissionController::note_batch(std::int64_t rows, std::int64_t now_ns) {
  std::lock_guard<std::mutex> lk(mu_);
  if (last_batch_ns_ != 0 && now_ns > last_batch_ns_) {
    const double inst =
        static_cast<double>(rows) /
        (static_cast<double>(now_ns - last_batch_ns_) * 1e-9);
    rate_rows_per_sec_ = rate_rows_per_sec_ > 0.0
                             ? kRateAlpha * inst +
                                   (1.0 - kRateAlpha) * rate_rows_per_sec_
                             : inst;
  }
  last_batch_ns_ = now_ns;
}

std::uint32_t AdmissionController::retry_after_ms(
    std::size_t queue_depth) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (rate_rows_per_sec_ <= 0.0) return kColdRetryMs;
  // "The backlog ahead of you (plus you) drains in about this long."
  return clamp_ms(1000.0 * static_cast<double>(queue_depth + 1) /
                  rate_rows_per_sec_);
}

double AdmissionController::service_rate() const {
  std::lock_guard<std::mutex> lk(mu_);
  return rate_rows_per_sec_;
}

}  // namespace ibrar::serve
