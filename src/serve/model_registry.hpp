#pragma once
// Versioned model registry: immutable snapshots behind an atomic swap.
//
// Serving must never lock the forward path against checkpoint reloads. The
// registry therefore holds the live model inside an immutable ModelSnapshot
// published through std::atomic<std::shared_ptr<...>>: workers load the
// pointer once per micro-batch (an atomic ref-count bump, no mutex held
// across the forward) and keep the snapshot alive for exactly as long as
// their in-flight batch needs it. publish() swaps in a new version while old
// versions finish serving the batches that already grabbed them — the
// classic read-copy-update shape of hot-swappable servers.
//
// Snapshots are immutable BY TYPE: publish() puts the model into eval mode
// once and then hands it over as shared_ptr<const TapClassifier>, so the only
// forward available to holders is the strictly-const eval path
// (eval_forward / eval_forward_with_taps — no mode flips, no RNG draws, no
// buffer writes). That is what makes one snapshot safe to share across any
// number of serving workers and concurrent telemetry captures. Hot reload
// from disk goes through publish_checkpoint, which rebuilds the architecture
// from a ModelSpec and loads util/serialize checkpoint bytes into it before
// the swap.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "models/registry.hpp"

namespace ibrar::serve {

/// One immutable published model version. The const element type means every
/// forward through a snapshot is the strictly-const eval path — enforced at
/// compile time, not by convention.
struct ModelSnapshot {
  std::shared_ptr<const models::TapClassifier> model;  ///< eval mode, immutable
  std::uint64_t version = 0;       ///< monotonically increasing from 1
  std::string tag;                 ///< human label ("v2-finetuned", path, ...)
  Shape input_shape;               ///< per-sample (C, H, W) the model expects
  std::int64_t num_classes = 0;

  /// Batched eval forward: (N, C, H, W) -> (N, num_classes) logits. Const
  /// through and through; safe to call from any number of threads at once.
  Tensor forward(const Tensor& x) const {
    return model->eval_forward(ag::Var::constant(x)).value();
  }
};

class ModelRegistry {
 public:
  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Publish `model` as the new current version. The model is switched to
  /// eval mode here; `input_shape` is the per-sample (C, H, W) layout used to
  /// validate submissions. Returns the assigned version number.
  ///
  /// Unless `prepack` is false (or IBRAR_EVAL_FUSED=0), the model's fused
  /// inference plans are built here — weights are packed into micro-kernel
  /// panels exactly once per published version, then shared read-only by
  /// every worker and micro-batch. The panel bytes are accounted in the
  /// `serve.snapshot_bytes` gauge and released when the last pinned snapshot
  /// of the version dies.
  std::uint64_t publish(models::TapClassifierPtr model, Shape input_shape,
                        std::string tag = "", bool prepack = true);

  /// Build `spec`'s architecture, load the util/serialize checkpoint at
  /// `path` into it (shapes must match), and publish it. Returns the new
  /// version; throws std::runtime_error on I/O or shape mismatch (the
  /// previous version keeps serving untouched).
  std::uint64_t publish_checkpoint(const models::ModelSpec& spec,
                                   const std::string& path,
                                   std::string tag = "");

  /// The current snapshot (nullptr before the first publish). Lock-free on
  /// the caller side: one atomic shared_ptr load.
  std::shared_ptr<const ModelSnapshot> current() const;

  /// Version of the current snapshot (0 before the first publish).
  std::uint64_t version() const;

 private:
  std::atomic<std::shared_ptr<const ModelSnapshot>> current_{nullptr};
  std::atomic<std::uint64_t> next_version_{1};
};

}  // namespace ibrar::serve
