#pragma once
// Admission control: per-client token-bucket fairness + retry-after hints.
//
// Reject-on-full treats every client the same and tells none of them when to
// come back. This controller upgrades the front door in the spirit of CUPS's
// server-error-busy retry protocol:
//
//   * Per-client token buckets (keyed on the wire frame's client id): each
//     client accrues cfg.client_rate tokens/sec up to a burst cap, one token
//     per admitted request. One chatty client exhausts ITS bucket and gets
//     kBusyRetryAfter while everyone else keeps flowing — fairness by
//     isolation, not by global throttling.
//   * An optional per-client in-flight cap (cfg.max_inflight_per_client),
//     released as replies resolve, bounding how much queue one client can
//     own at once.
//   * A computed retry-after hint: the server measures its service rate (an
//     EWMA over micro-batch completions) and converts the current queue
//     depth into "the backlog ahead of you drains in ~this long" — clamped
//     to [1 ms, 5 s]. Clients that honor it (net::Client's
//     honor-retry-after mode) convert overload from tail-latency chaos into
//     paced retries.
//
// The controller itself holds no obs handles: the Server records
// serve.admission.busy / serve.admission.throttled and the
// serve.admission.retry_after_ms histogram at the call sites, keeping one
// owner for counter semantics.
//
// Thread safety: all methods are safe from any thread (one small mutex; the
// admission path already serializes on the queue mutex right after).

#include <cstdint>
#include <mutex>
#include <unordered_map>

namespace ibrar::serve {

struct AdmissionConfig {
  /// Sustained per-client admission rate, requests/sec. 0 = unlimited.
  double client_rate = 0.0;
  /// Token bucket depth (burst allowance). <= 0 derives max(client_rate, 1).
  double client_burst = 0.0;
  /// Max requests one client may have in flight (admitted, not yet replied).
  /// 0 = unlimited.
  std::int64_t max_inflight_per_client = 0;
};

class AdmissionController {
 public:
  struct Decision {
    bool admit = true;
    /// When denied: suggested client back-off, ms, clamped to [1, 5000].
    std::uint32_t retry_after_ms = 0;
  };

  explicit AdmissionController(AdmissionConfig cfg);

  /// Whether any per-client policy is active. When false, try_admit always
  /// admits and release is a no-op — but note_batch/retry_after_ms still
  /// work, so queue-full busy replies carry a real hint regardless.
  bool enabled() const {
    return cfg_.client_rate > 0.0 || cfg_.max_inflight_per_client > 0;
  }

  /// Consume one token (and an in-flight slot) for `client_id`, or deny with
  /// a retry-after hint. `now_ns` is a steady-clock stamp.
  Decision try_admit(std::uint64_t client_id, std::int64_t now_ns);

  /// Release the in-flight slot taken by try_admit — call exactly once per
  /// admitted request when its reply resolves (served OR failed).
  void release(std::uint64_t client_id);

  /// Feed the service-rate EWMA: one micro-batch of `rows` completed at
  /// `now_ns`. Called by workers per batch.
  void note_batch(std::int64_t rows, std::int64_t now_ns);

  /// Backlog-drain estimate for a queue currently `queue_depth` deep, from
  /// the measured service rate (fallback before any batch completed), ms in
  /// [1, 5000].
  std::uint32_t retry_after_ms(std::size_t queue_depth) const;

  /// Measured service rate, rows/sec (0 before the first two batches).
  double service_rate() const;

  const AdmissionConfig& config() const { return cfg_; }

 private:
  struct ClientState {
    double tokens = 0.0;
    std::int64_t last_refill_ns = 0;
    std::int64_t inflight = 0;
  };

  AdmissionConfig cfg_;
  double burst_ = 0.0;
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, ClientState> clients_;
  double rate_rows_per_sec_ = 0.0;  ///< EWMA; guarded by mu_
  std::int64_t last_batch_ns_ = 0;
};

}  // namespace ibrar::serve
