#include "serve/request_queue.hpp"

#include <algorithm>

namespace ibrar::serve {

RequestQueue::RequestQueue(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

PushStatus RequestQueue::push(Request& r) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (closed_) return PushStatus::kClosed;
    if (items_.size() >= capacity_) return PushStatus::kFull;
    r.index = admitted_++;
    items_.push_back(std::move(r));
  }
  cv_.notify_one();
  return PushStatus::kAccepted;
}

PopStatus RequestQueue::pop(Request& out) {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return !items_.empty() || closed_; });
  if (items_.empty()) return PopStatus::kClosed;
  out = std::move(items_.front());
  items_.pop_front();
  return PopStatus::kItem;
}

PopStatus RequestQueue::pop_until(
    Request& out, std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lk(mu_);
  if (!cv_.wait_until(lk, deadline,
                      [&] { return !items_.empty() || closed_; })) {
    return PopStatus::kTimeout;
  }
  if (items_.empty()) return PopStatus::kClosed;
  out = std::move(items_.front());
  items_.pop_front();
  return PopStatus::kItem;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return closed_;
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return items_.size();
}

}  // namespace ibrar::serve
