#pragma once
// Per-request serving result types, shared by the queue, batcher, and server.
//
// A Reply is everything one submitted sample gets back: its logits row (by
// the determinism contract, bit-identical to a batch-of-1 forward of the same
// input through the same model version), the argmax class, which immutable
// model version served it, timing split into queue wait vs micro-batch
// compute, and — when the request was picked by the telemetry sampler — an
// online robustness reading derived from the paper's Eq. (3) channel scores.

#include <cstdint>

#include "tensor/tensor.hpp"

namespace ibrar::serve {

enum class ReplyStatus {
  kOk = 0,
  /// Legacy hard backpressure: admission queue at capacity, no retry hint.
  /// Only emitted when ServeConfig::busy_on_full is off.
  kRejectedQueueFull,
  kRejectedShutdown,    ///< server no longer accepting (draining or stopped)
  /// The request was admitted against an older model version whose input
  /// layout no longer matches the snapshot serving its batch (a hot-swap
  /// changed the expected (C, H, W) while the request sat queued).
  kRejectedStaleShape,
  /// Overloaded (queue full) or this client is over its fair share (token
  /// bucket / in-flight cap) — come back in Reply::retry_after_ms. The CUPS
  /// server-error-busy shape: the server says WHEN, not just no.
  kBusyRetryAfter,
};

/// Why the micro-batch this request rode in was released to the model.
enum class BatchTrigger {
  kSize = 0,  ///< batch reached max_batch
  kDeadline,  ///< deadline_us elapsed since the batch's first request
  kDrain,     ///< queue closed during assembly; flushed without waiting
};

/// Online robustness telemetry for one sampled request (see serve/telemetry).
struct RequestTelemetry {
  bool sampled = false;       ///< this request was picked by the Kth sampler
  /// Fraction of the last-conv activation energy carried by the currently
  /// low-scoring ("non-robust") channels, in [0, 1]; high values flag inputs
  /// leaning on channels with weak HSIC(f_c, Y) dependence — adversarially
  /// suspicious traffic. Negative until the first scoring window completes.
  float suspicion = -1.0f;
  /// Scoring-window generation the suspicion was computed against (0 = no
  /// score vector existed yet when this request was sampled).
  std::uint64_t score_epoch = 0;
};

struct Reply {
  ReplyStatus status = ReplyStatus::kOk;
  Tensor logits;                    ///< (num_classes); empty on rejection
  std::int64_t argmax = -1;         ///< predicted class; -1 on rejection
  std::uint64_t model_version = 0;  ///< registry version that served this row
  std::int64_t queue_ns = 0;        ///< admission -> micro-batch assembly
  std::int64_t compute_ns = 0;      ///< wall time of the micro-batch forward
  std::int64_t batch_size = 0;      ///< rows in the micro-batch served with
  BatchTrigger trigger = BatchTrigger::kSize;
  RequestTelemetry telemetry;
  /// Served from the duplicate-request reply cache (hit or in-flight join).
  /// Cached logits are memcmp-identical to a recompute by contract;
  /// queue_ns/compute_ns/batch_size read 0 — no compute was spent on this
  /// request.
  bool cached = false;
  /// With kBusyRetryAfter: suggested back-off before retrying, derived from
  /// queue depth / measured service rate (or the client's token deficit).
  std::uint32_t retry_after_ms = 0;

  bool ok() const { return status == ReplyStatus::kOk; }
};

}  // namespace ibrar::serve
