#pragma once
// Wire protocol for the TCP serving front-end: length-prefixed binary frames.
//
// Every frame on the socket is a u32 little-endian payload length followed by
// that many payload bytes. The payload's first byte is the frame type:
//
//   submit (type 1):  u8 type | u64 id | u64 client_id
//                     | u32 C | u32 H | u32 W | C*H*W f32 row-major pixels
//   reply  (type 2):  u8 type | u64 id | u8 status | u64 model_version
//                     | i64 argmax | i64 queue_ns | i64 compute_ns
//                     | i64 batch_size | u8 trigger | u8 sampled
//                     | f32 suspicion | u64 score_epoch | u8 cached
//                     | u32 retry_after_ms
//                     | u32 num_logits | num_logits f32 logits
//
// `client_id` names the principal for per-client admission fairness (token
// buckets, in-flight caps) — connections sharing a client id share one
// budget. `cached` marks replies served from the duplicate-request reply
// cache (logits still bit-identical to a recompute). `retry_after_ms`
// accompanies WireStatus::kBusyRetryAfter: the server's computed back-off
// hint, which Client's honor-retry-after mode sleeps on before resending.
//
// All integers and floats are little-endian; floats cross the wire as raw
// IEEE-754 bits, so the bit-identity contract (memcmp-identical logits) holds
// end to end through the socket. The `id` is a client-chosen correlation
// token echoed verbatim in the reply — the front-end pipelines many requests
// per connection and replies in submission order, but clients should still
// match on id rather than assume ordering across connections.
//
// Robustness rules (the cups/nfs-ganesha school: a hostile or buggy peer must
// not take the server down):
//  * A length prefix larger than kMaxFrameBytes is a protocol violation —
//    the reader treats it as EOF and the connection is dropped (no attempt
//    to allocate or resynchronize a corrupt stream).
//  * A truncated or malformed payload makes decode_* throw
//    std::runtime_error; the front-end turns that into connection teardown,
//    while a well-framed but semantically bad submit (shape the model cannot
//    take) gets a reply with WireStatus::kBadRequest instead.

#include <cstdint>
#include <vector>

#include "serve/reply.hpp"
#include "tensor/tensor.hpp"

namespace ibrar::serve::net {

/// Hard cap on one frame's payload (length prefix excluded). Generous for
/// image tensors (16 MiB ~ a 2048x2048x1 float image) yet small enough that
/// a corrupt length prefix cannot trigger a giant allocation.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 24;

inline constexpr std::uint8_t kFrameSubmit = 1;
inline constexpr std::uint8_t kFrameReply = 2;

/// Reply status on the wire: ReplyStatus values verbatim, plus kBadRequest
/// for requests the front-end refused before they reached the queue (e.g. a
/// shape the published model cannot take — Server::submit throws for those,
/// and the front-end answers instead of dying).
enum class WireStatus : std::uint8_t {
  kOk = 0,
  kRejectedQueueFull = 1,
  kRejectedShutdown = 2,
  kRejectedStaleShape = 3,
  kBadRequest = 4,
  kBusyRetryAfter = 5,  ///< overloaded/throttled; see ReplyFrame::retry_after_ms
};

WireStatus to_wire(ReplyStatus s);

/// One decoded submit frame: client correlation id, the client's admission
/// identity, and the (C, H, W) sample.
struct SubmitFrame {
  std::uint64_t id = 0;
  std::uint64_t client_id = 0;
  Tensor input{Shape{0}};
};

/// One decoded reply frame — Reply flattened for the wire, plus the echoed id.
struct ReplyFrame {
  std::uint64_t id = 0;
  WireStatus status = WireStatus::kOk;
  std::uint64_t model_version = 0;
  std::int64_t argmax = -1;
  std::int64_t queue_ns = 0;
  std::int64_t compute_ns = 0;
  std::int64_t batch_size = 0;
  std::uint8_t trigger = 0;       ///< BatchTrigger as u8
  bool sampled = false;           ///< telemetry.sampled
  float suspicion = -1.0f;        ///< telemetry.suspicion
  std::uint64_t score_epoch = 0;  ///< telemetry.score_epoch
  bool cached = false;            ///< served from the reply cache
  std::uint32_t retry_after_ms = 0;  ///< back-off hint with kBusyRetryAfter
  std::vector<float> logits;

  bool ok() const { return status == WireStatus::kOk; }
};

/// Build a reply frame from a server Reply (echoing `id`).
ReplyFrame make_reply_frame(std::uint64_t id, const Reply& reply);

// ---- payload encode / decode (no I/O; unit-testable in isolation) ----------

std::vector<std::uint8_t> encode_submit(const SubmitFrame& f);
std::vector<std::uint8_t> encode_reply(const ReplyFrame& f);

/// Throw std::runtime_error on a truncated, oversized, or malformed payload.
SubmitFrame decode_submit(const std::uint8_t* p, std::size_t n);
ReplyFrame decode_reply(const std::uint8_t* p, std::size_t n);

// ---- framed fd I/O ---------------------------------------------------------

/// Read one length-prefixed frame into `payload`. Returns false on clean EOF
/// before a prefix, on a peer that died mid-frame, or on a length prefix
/// violating kMaxFrameBytes — in every case the caller should drop the
/// connection; there is no resynchronizing a byte stream.
bool read_frame(int fd, std::vector<std::uint8_t>& payload);

/// Write `payload` as one length-prefixed frame. Returns false when the peer
/// is gone (EPIPE/ECONNRESET); never raises SIGPIPE.
bool write_frame(int fd, const std::uint8_t* payload, std::size_t n);
inline bool write_frame(int fd, const std::vector<std::uint8_t>& payload) {
  return write_frame(fd, payload.data(), payload.size());
}

}  // namespace ibrar::serve::net
