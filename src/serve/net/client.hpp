#pragma once
// Client helper for the TCP serving front-end: framing + correlation ids over
// one connection.
//
// Two usage shapes:
//  * submit(): one blocking round-trip — send a sample, wait for its reply.
//    The closed-loop shape CLI probes and tests want.
//  * send()/recv(): pipelined — keep many requests in flight on the one
//    connection. The front-end replies in submission order; recv() returns
//    the next reply with its echoed correlation id, so an open-loop load
//    generator can run a sender thread and a receiver thread concurrently
//    (send() and recv() touch disjoint socket directions and are safe to
//    call from two threads; neither is safe to call from two threads at
//    once).
//
// Any torn connection (server gone, protocol violation) surfaces as
// std::runtime_error — a load generator treats that as fatal, a CLI prints
// and exits.

#include <cstdint>
#include <string>
#include <vector>

#include "serve/net/wire.hpp"
#include "tensor/tensor.hpp"

namespace ibrar::serve::net {

class Client {
 public:
  /// Connect to host:port (TCP_NODELAY on). Throws std::runtime_error when
  /// the connection cannot be established. `client_id` is this client's
  /// admission identity, stamped into every submit frame — connections
  /// sharing an id share one server-side fairness budget.
  Client(const std::string& host, std::uint16_t port,
         std::uint64_t client_id = 0);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Pipelined send of one (C, H, W) sample; returns the correlation id the
  /// reply will echo. Throws on a torn connection.
  std::uint64_t send(const Tensor& input);

  /// Next reply off the socket (submission order). Throws on EOF or a
  /// malformed frame.
  ReplyFrame recv();

  /// One blocking round-trip (send + recv with no other requests in flight).
  /// In honor-retry-after mode a kBusyRetryAfter reply makes submit() sleep
  /// the server's hint and resend (fresh correlation id), up to the attempt
  /// budget — the CUPS retry discipline; the last busy reply is returned if
  /// the budget runs out.
  ReplyFrame submit(const Tensor& input);

  /// Enable/disable honoring kBusyRetryAfter in submit(). `max_attempts`
  /// counts total sends (so 1 disables retrying). Sleeps are capped at
  /// `max_sleep_ms` per retry to bound worst-case blocking.
  void honor_retry_after(int max_attempts, std::uint32_t max_sleep_ms = 1000);

  std::uint64_t client_id() const { return client_id_; }

 private:
  int fd_ = -1;
  std::uint64_t next_id_ = 0;
  std::uint64_t client_id_ = 0;
  int retry_attempts_ = 1;  ///< total submit() sends; 1 = no retries
  std::uint32_t retry_max_sleep_ms_ = 1000;
  std::vector<std::uint8_t> recv_buf_;
};

}  // namespace ibrar::serve::net
