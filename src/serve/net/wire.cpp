#include "serve/net/wire.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <sys/socket.h>
#include <unistd.h>

namespace ibrar::serve::net {
namespace {

// Little-endian put/get via memcpy. The stack targets little-endian hosts on
// both ends (loopback or same rack); a big-endian port would add byte swaps
// here and nowhere else.
template <typename T>
void put(std::vector<std::uint8_t>& buf, T v) {
  const std::size_t at = buf.size();
  buf.resize(at + sizeof(T));
  std::memcpy(buf.data() + at, &v, sizeof(T));
}

/// Cursor-checked reads: every get() validates the remaining byte count, so a
/// truncated frame is always a clean throw, never an overread.
struct Cursor {
  const std::uint8_t* p;
  std::size_t left;

  template <typename T>
  T get() {
    if (left < sizeof(T)) {
      throw std::runtime_error("wire: truncated frame");
    }
    T v;
    std::memcpy(&v, p, sizeof(T));
    p += sizeof(T);
    left -= sizeof(T);
    return v;
  }

  void get_floats(float* dst, std::size_t count) {
    const std::size_t bytes = count * sizeof(float);
    if (left < bytes) {
      throw std::runtime_error("wire: truncated frame");
    }
    std::memcpy(dst, p, bytes);
    p += bytes;
    left -= bytes;
  }
};

bool read_exact(int fd, std::uint8_t* dst, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, dst + got, n - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return false;  // EOF or hard error mid-read
  }
  return true;
}

bool write_all(int fd, const std::uint8_t* src, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a vanished peer must surface as EPIPE, not kill the
    // process with SIGPIPE.
    const ssize_t w = ::send(fd, src + sent, n - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

WireStatus to_wire(ReplyStatus s) {
  switch (s) {
    case ReplyStatus::kOk:
      return WireStatus::kOk;
    case ReplyStatus::kRejectedQueueFull:
      return WireStatus::kRejectedQueueFull;
    case ReplyStatus::kRejectedShutdown:
      return WireStatus::kRejectedShutdown;
    case ReplyStatus::kRejectedStaleShape:
      return WireStatus::kRejectedStaleShape;
    case ReplyStatus::kBusyRetryAfter:
      return WireStatus::kBusyRetryAfter;
  }
  return WireStatus::kBadRequest;  // unreachable with a valid enum
}

ReplyFrame make_reply_frame(std::uint64_t id, const Reply& reply) {
  ReplyFrame f;
  f.id = id;
  f.status = to_wire(reply.status);
  f.model_version = reply.model_version;
  f.argmax = reply.argmax;
  f.queue_ns = reply.queue_ns;
  f.compute_ns = reply.compute_ns;
  f.batch_size = reply.batch_size;
  f.trigger = static_cast<std::uint8_t>(reply.trigger);
  f.sampled = reply.telemetry.sampled;
  f.suspicion = reply.telemetry.suspicion;
  f.score_epoch = reply.telemetry.score_epoch;
  f.cached = reply.cached;
  f.retry_after_ms = reply.retry_after_ms;
  // rank() > 0 is the emptiness convention: a default Tensor is a rank-0
  // scalar with numel() == 1, and a failure reply must not ship that byte
  // pattern as a one-float logit vector.
  if (reply.logits.rank() > 0 && reply.logits.numel() > 0) {
    f.logits.assign(reply.logits.data().begin(), reply.logits.data().end());
  }
  return f;
}

std::vector<std::uint8_t> encode_submit(const SubmitFrame& f) {
  if (f.input.rank() != 3) {
    throw std::invalid_argument("encode_submit: input must be (C, H, W)");
  }
  std::vector<std::uint8_t> buf;
  buf.reserve(1 + 8 + 8 + 12 +
              sizeof(float) * static_cast<std::size_t>(f.input.numel()));
  put<std::uint8_t>(buf, kFrameSubmit);
  put<std::uint64_t>(buf, f.id);
  put<std::uint64_t>(buf, f.client_id);
  for (int d = 0; d < 3; ++d) {
    put<std::uint32_t>(buf, static_cast<std::uint32_t>(f.input.dim(d)));
  }
  const std::size_t at = buf.size();
  const std::size_t bytes =
      sizeof(float) * static_cast<std::size_t>(f.input.numel());
  buf.resize(at + bytes);
  std::memcpy(buf.data() + at, f.input.data().data(), bytes);
  if (buf.size() > kMaxFrameBytes) {
    throw std::runtime_error("encode_submit: frame exceeds kMaxFrameBytes");
  }
  return buf;
}

std::vector<std::uint8_t> encode_reply(const ReplyFrame& f) {
  std::vector<std::uint8_t> buf;
  buf.reserve(64 + sizeof(float) * f.logits.size());
  put<std::uint8_t>(buf, kFrameReply);
  put<std::uint64_t>(buf, f.id);
  put<std::uint8_t>(buf, static_cast<std::uint8_t>(f.status));
  put<std::uint64_t>(buf, f.model_version);
  put<std::int64_t>(buf, f.argmax);
  put<std::int64_t>(buf, f.queue_ns);
  put<std::int64_t>(buf, f.compute_ns);
  put<std::int64_t>(buf, f.batch_size);
  put<std::uint8_t>(buf, f.trigger);
  put<std::uint8_t>(buf, f.sampled ? 1 : 0);
  put<float>(buf, f.suspicion);
  put<std::uint64_t>(buf, f.score_epoch);
  put<std::uint8_t>(buf, f.cached ? 1 : 0);
  put<std::uint32_t>(buf, f.retry_after_ms);
  put<std::uint32_t>(buf, static_cast<std::uint32_t>(f.logits.size()));
  const std::size_t at = buf.size();
  buf.resize(at + sizeof(float) * f.logits.size());
  std::memcpy(buf.data() + at, f.logits.data(),
              sizeof(float) * f.logits.size());
  if (buf.size() > kMaxFrameBytes) {
    throw std::runtime_error("encode_reply: frame exceeds kMaxFrameBytes");
  }
  return buf;
}

SubmitFrame decode_submit(const std::uint8_t* p, std::size_t n) {
  Cursor c{p, n};
  if (c.get<std::uint8_t>() != kFrameSubmit) {
    throw std::runtime_error("decode_submit: not a submit frame");
  }
  SubmitFrame f;
  f.id = c.get<std::uint64_t>();
  f.client_id = c.get<std::uint64_t>();
  Shape shape(3);
  std::int64_t numel = 1;
  for (int d = 0; d < 3; ++d) {
    const auto v = c.get<std::uint32_t>();
    if (v == 0 || v > (1u << 16)) {
      throw std::runtime_error("decode_submit: implausible dimension");
    }
    shape[static_cast<std::size_t>(d)] = static_cast<std::int64_t>(v);
    numel *= shape[static_cast<std::size_t>(d)];
  }
  if (static_cast<std::size_t>(numel) * sizeof(float) > kMaxFrameBytes) {
    throw std::runtime_error("decode_submit: tensor exceeds frame cap");
  }
  f.input = Tensor(shape);
  c.get_floats(f.input.data().data(), static_cast<std::size_t>(numel));
  if (c.left != 0) {
    throw std::runtime_error("decode_submit: trailing bytes");
  }
  return f;
}

ReplyFrame decode_reply(const std::uint8_t* p, std::size_t n) {
  Cursor c{p, n};
  if (c.get<std::uint8_t>() != kFrameReply) {
    throw std::runtime_error("decode_reply: not a reply frame");
  }
  ReplyFrame f;
  f.id = c.get<std::uint64_t>();
  const auto status = c.get<std::uint8_t>();
  if (status > static_cast<std::uint8_t>(WireStatus::kBusyRetryAfter)) {
    throw std::runtime_error("decode_reply: unknown status");
  }
  f.status = static_cast<WireStatus>(status);
  f.model_version = c.get<std::uint64_t>();
  f.argmax = c.get<std::int64_t>();
  f.queue_ns = c.get<std::int64_t>();
  f.compute_ns = c.get<std::int64_t>();
  f.batch_size = c.get<std::int64_t>();
  f.trigger = c.get<std::uint8_t>();
  f.sampled = c.get<std::uint8_t>() != 0;
  f.suspicion = c.get<float>();
  f.score_epoch = c.get<std::uint64_t>();
  f.cached = c.get<std::uint8_t>() != 0;
  f.retry_after_ms = c.get<std::uint32_t>();
  const auto num_logits = c.get<std::uint32_t>();
  if (static_cast<std::size_t>(num_logits) * sizeof(float) > kMaxFrameBytes) {
    throw std::runtime_error("decode_reply: logits exceed frame cap");
  }
  f.logits.resize(num_logits);
  c.get_floats(f.logits.data(), num_logits);
  if (c.left != 0) {
    throw std::runtime_error("decode_reply: trailing bytes");
  }
  return f;
}

bool read_frame(int fd, std::vector<std::uint8_t>& payload) {
  std::uint8_t prefix[4];
  if (!read_exact(fd, prefix, sizeof prefix)) return false;
  std::uint32_t len;
  std::memcpy(&len, prefix, sizeof len);
  if (len == 0 || len > kMaxFrameBytes) {
    // A corrupt or hostile length prefix: there is no recovering the stream,
    // and trusting it would mean a len-sized allocation. Treat as EOF.
    return false;
  }
  payload.resize(len);
  return read_exact(fd, payload.data(), len);
}

bool write_frame(int fd, const std::uint8_t* payload, std::size_t n) {
  if (n == 0 || n > kMaxFrameBytes) return false;
  const std::uint32_t len = static_cast<std::uint32_t>(n);
  std::uint8_t prefix[4];
  std::memcpy(prefix, &len, sizeof len);
  if (!write_all(fd, prefix, sizeof prefix)) return false;
  return write_all(fd, payload, n);
}

}  // namespace ibrar::serve::net
