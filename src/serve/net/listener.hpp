#pragma once
// TCP front-end for the serving runtime: deep-backlog listener + pipelined
// per-connection framing onto Server::submit.
//
// The in-process Server speaks std::future; this front-end makes the same
// contract reachable over a socket. One acceptor thread blocks in accept()
// on a loopback listener with a deep backlog (default 128, the same
// listen-queue depth long-lived daemons like cupsd use — a connection burst
// should queue in the kernel, not get RSTs). Each accepted connection gets a
// reader thread and a writer thread:
//
//   reader: read_frame -> decode_submit -> Server::submit -> enqueue the
//           returned future (FIFO) for the writer. A submit the server
//           throws on (bad shape) becomes an immediate kBadRequest reply
//           instead of a teardown; a malformed or oversized frame tears the
//           connection down (the stream cannot be resynchronized).
//   writer: pop futures in submission order, block on each, encode the
//           reply, write the frame. Only the writer writes the socket and
//           only the reader reads it, so neither needs a lock on the fd.
//
// The reader/writer split is what makes the connection PIPELINED: a client
// can keep many requests in flight on one socket (the open-loop bench's
// whole point) while replies flow back in submission order. Admission
// control stays where it always was — the server's bounded queue; the
// front-end adds no second buffer beyond the pending-future deque, whose
// length is already capped by the queue capacity plus in-flight batches.
//
// stop() (or the destructor) closes the listener, wakes every connection,
// drains pending replies, and joins all threads. The front-end never owns
// the Server; stop the front-end first, then the server.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/server.hpp"

namespace ibrar::serve::net {

struct FrontendConfig {
  std::uint16_t port = 0;  ///< 0 = kernel-assigned; read back via port()
  int backlog = 128;       ///< listen(2) queue depth
};

class TcpFrontend {
 public:
  using Config = FrontendConfig;

  /// Bind 127.0.0.1:port, listen, and start accepting. Throws
  /// std::runtime_error when the socket cannot be set up.
  TcpFrontend(Server& server, Config cfg = Config());
  ~TcpFrontend();
  TcpFrontend(const TcpFrontend&) = delete;
  TcpFrontend& operator=(const TcpFrontend&) = delete;

  /// The bound port (the kernel's pick when Config::port was 0).
  std::uint16_t port() const { return port_; }

  /// Stop accepting, tear down every connection, join all threads.
  /// Idempotent.
  void stop();

 private:
  struct Connection;

  void accept_loop();
  void reader_loop(const std::shared_ptr<Connection>& conn);
  void writer_loop(const std::shared_ptr<Connection>& conn);

  Server& server_;
  Config cfg_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::mutex mu_;  // guards conns_ and threads_
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> threads_;
};

}  // namespace ibrar::serve::net
