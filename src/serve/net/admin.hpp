#pragma once
// HTTP admin endpoint: the observability layer's scrape surface.
//
// A minimal HTTP/1.0 responder on a loopback listener (`ibrar_serve
// --admin-port`), READ-ONLY BY CONTRACT: every route renders existing
// observability state — nothing here can mutate the server, the model
// registry, or any knob. Routes:
//
//   GET /metrics             obs::registry() snapshot in Prometheus text
//                            exposition format 0.0.4 (counters, gauges,
//                            histogram `le` buckets) — point a scraper here
//   GET /registry            the same snapshot as the one-line JSON shape
//                            ibrar_serve --stats-every prints
//   GET /slo                 obs::slos() states + burn rates as JSON
//   GET /timeseries          JSON list of every series name in the store
//   GET /timeseries?name=X   samples of series X as JSON
//   GET /profile             obs::profile_to_json()
//
// Implementation intentionally stays at HTTP/1.0 semantics: read one
// request, write one `Connection: close` response, close. No keep-alive, no
// chunking, no request body — a curl / Prometheus scrape is exactly one
// round trip, and the accept loop handles connections inline (admin traffic
// is a scraper on a cadence, not a request path; a slow admin client can
// delay the next scrape, never a serving request). The responder shares no
// lock with the serving path — every route reads through the same
// lock-minimal snapshot calls the in-process samplers use.
//
// render_admin_response() is the pure request-target -> HTTP-response
// function underneath; tests drive it directly without sockets.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

namespace ibrar::serve::net {

struct AdminConfig {
  std::uint16_t port = 0;  ///< 0 = kernel-assigned; read back via port()
  int backlog = 16;
};

/// Full HTTP/1.0 response (status line, headers, body) for a request
/// target such as "/metrics" or "/timeseries?name=serve.accepted".
/// Unknown targets get 404; the function never throws.
std::string render_admin_response(const std::string& target);

class AdminEndpoint {
 public:
  /// Bind 127.0.0.1:port, listen, serve. Throws std::runtime_error when the
  /// socket cannot be set up.
  explicit AdminEndpoint(AdminConfig cfg = AdminConfig());
  ~AdminEndpoint();
  AdminEndpoint(const AdminEndpoint&) = delete;
  AdminEndpoint& operator=(const AdminEndpoint&) = delete;

  /// The bound port (the kernel's pick when AdminConfig::port was 0).
  std::uint16_t port() const { return port_; }

  /// Close the listener and join the accept thread. Idempotent.
  void stop();

 private:
  void accept_loop();

  AdminConfig cfg_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
};

}  // namespace ibrar::serve::net
