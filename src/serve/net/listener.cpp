#include "serve/net/listener.hpp"

#include <condition_variable>
#include <cstring>
#include <deque>
#include <future>
#include <stdexcept>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/metrics.hpp"
#include "serve/net/wire.hpp"

namespace ibrar::serve::net {

/// One reply the writer owes the peer, in submission order. `bad` marks a
/// request the server refused at the door (no future exists for it).
struct PendingReply {
  std::uint64_t id = 0;
  bool bad = false;
  std::future<Reply> fut;
};

struct TcpFrontend::Connection {
  int fd = -1;
  std::mutex mu;
  std::condition_variable cv;
  std::deque<PendingReply> pending;
  bool reader_done = false;
};

TcpFrontend::TcpFrontend(Server& server, Config cfg)
    : server_(server), cfg_(cfg) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("TcpFrontend: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(cfg_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    ::close(listen_fd_);
    throw std::runtime_error("TcpFrontend: bind(127.0.0.1:" +
                             std::to_string(cfg_.port) + ") failed");
  }
  if (::listen(listen_fd_, cfg_.backlog) < 0) {
    ::close(listen_fd_);
    throw std::runtime_error("TcpFrontend: listen() failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  acceptor_ = std::thread([this] { accept_loop(); });
}

TcpFrontend::~TcpFrontend() { stop(); }

void TcpFrontend::stop() {
  if (stopping_.exchange(true)) return;
  // Closing the listener makes the blocked accept() return with an error.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (acceptor_.joinable()) acceptor_.join();

  std::vector<std::shared_ptr<Connection>> conns;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lk(mu_);
    conns.swap(conns_);
    threads.swap(threads_);
  }
  // Wake every blocked reader; writers drain their pending futures (the
  // server resolves them — with replies, or rejection statuses if it is
  // shutting down too) and then exit.
  for (const auto& c : conns) ::shutdown(c->fd, SHUT_RDWR);
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
  for (const auto& c : conns) ::close(c->fd);
}

void TcpFrontend::accept_loop() {
  auto& c_conns = obs::registry().counter("serve.net.connections");
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (stop) or unrecoverable
    }
    // One small frame per reply: latency wins over Nagle coalescing here.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    c_conns.inc();

    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      return;
    }
    conns_.push_back(conn);
    threads_.emplace_back([this, conn] { reader_loop(conn); });
    threads_.emplace_back([this, conn] { writer_loop(conn); });
  }
}

void TcpFrontend::reader_loop(const std::shared_ptr<Connection>& conn) {
  auto& c_frames = obs::registry().counter("serve.net.frames_in");
  auto& c_bad = obs::registry().counter("serve.net.bad_requests");
  std::vector<std::uint8_t> payload;
  while (read_frame(conn->fd, payload)) {
    PendingReply pr;
    try {
      SubmitFrame frame = decode_submit(payload.data(), payload.size());
      pr.id = frame.id;
      c_frames.inc();
      try {
        pr.fut = server_.submit(std::move(frame.input), frame.client_id);
      } catch (const std::invalid_argument&) {
        // Well-framed but unservable (shape mismatch): answer, don't die.
        pr.bad = true;
        c_bad.inc();
      }
    } catch (const std::exception&) {
      break;  // malformed frame: the stream is garbage from here on
    }
    {
      std::lock_guard<std::mutex> lk(conn->mu);
      conn->pending.push_back(std::move(pr));
    }
    conn->cv.notify_one();
  }
  {
    std::lock_guard<std::mutex> lk(conn->mu);
    conn->reader_done = true;
  }
  conn->cv.notify_one();
}

void TcpFrontend::writer_loop(const std::shared_ptr<Connection>& conn) {
  auto& c_frames = obs::registry().counter("serve.net.frames_out");
  for (;;) {
    PendingReply pr;
    {
      std::unique_lock<std::mutex> lk(conn->mu);
      conn->cv.wait(lk, [&conn] {
        return !conn->pending.empty() || conn->reader_done;
      });
      if (conn->pending.empty()) break;  // reader done and drained
      pr = std::move(conn->pending.front());
      conn->pending.pop_front();
    }
    ReplyFrame frame;
    if (pr.bad) {
      frame.id = pr.id;
      frame.status = WireStatus::kBadRequest;
    } else {
      // Blocking on the future IS the pacing: replies leave in submission
      // order, and the deque stays bounded by the server's admission queue.
      frame = make_reply_frame(pr.id, pr.fut.get());
    }
    if (!write_frame(conn->fd, encode_reply(frame))) break;
    c_frames.inc();
  }
  // Unblock the reader if it is still parked in read() (writer died first —
  // e.g. the peer closed its receive side). The fd itself is closed by
  // stop(), after both loops have exited.
  ::shutdown(conn->fd, SHUT_RDWR);
}

}  // namespace ibrar::serve::net
