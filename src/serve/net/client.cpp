#include "serve/net/client.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace ibrar::serve::net {

Client::Client(const std::string& host, std::uint16_t port,
               std::uint64_t client_id)
    : client_id_(client_id) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("net::Client: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    throw std::runtime_error("net::Client: bad host address " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd_);
    throw std::runtime_error("net::Client: connect(" + host + ":" +
                             std::to_string(port) + ") failed");
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::uint64_t Client::send(const Tensor& input) {
  SubmitFrame f;
  f.id = next_id_++;
  f.client_id = client_id_;
  f.input = input;
  if (!write_frame(fd_, encode_submit(f))) {
    throw std::runtime_error("net::Client: connection lost on send");
  }
  return f.id;
}

void Client::honor_retry_after(int max_attempts, std::uint32_t max_sleep_ms) {
  retry_attempts_ = max_attempts > 1 ? max_attempts : 1;
  retry_max_sleep_ms_ = max_sleep_ms;
}

ReplyFrame Client::recv() {
  if (!read_frame(fd_, recv_buf_)) {
    throw std::runtime_error("net::Client: connection closed by server");
  }
  return decode_reply(recv_buf_.data(), recv_buf_.size());
}

ReplyFrame Client::submit(const Tensor& input) {
  for (int attempt = 1;; ++attempt) {
    const std::uint64_t id = send(input);
    ReplyFrame f = recv();
    if (f.id != id) {
      throw std::runtime_error("net::Client: reply id mismatch");
    }
    if (f.status != WireStatus::kBusyRetryAfter ||
        attempt >= retry_attempts_) {
      return f;
    }
    // Busy with a hint and budget left: sleep what the server asked (capped)
    // and go again. A zero hint still backs off minimally to avoid a hot
    // retry spin.
    const std::uint32_t ms =
        std::max<std::uint32_t>(1, std::min(f.retry_after_ms,
                                            retry_max_sleep_ms_));
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
}

}  // namespace ibrar::serve::net
