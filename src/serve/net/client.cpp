#include "serve/net/client.hpp"

#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace ibrar::serve::net {

Client::Client(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("net::Client: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    throw std::runtime_error("net::Client: bad host address " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd_);
    throw std::runtime_error("net::Client: connect(" + host + ":" +
                             std::to_string(port) + ") failed");
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::uint64_t Client::send(const Tensor& input) {
  SubmitFrame f;
  f.id = next_id_++;
  f.input = input;
  if (!write_frame(fd_, encode_submit(f))) {
    throw std::runtime_error("net::Client: connection lost on send");
  }
  return f.id;
}

ReplyFrame Client::recv() {
  if (!read_frame(fd_, recv_buf_)) {
    throw std::runtime_error("net::Client: connection closed by server");
  }
  return decode_reply(recv_buf_.data(), recv_buf_.size());
}

ReplyFrame Client::submit(const Tensor& input) {
  const std::uint64_t id = send(input);
  ReplyFrame f = recv();
  if (f.id != id) {
    throw std::runtime_error("net::Client: reply id mismatch");
  }
  return f;
}

}  // namespace ibrar::serve::net
