#include "serve/net/admin.hpp"

#include <cerrno>
#include <cstdio>
#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"

namespace ibrar::serve::net {
namespace {

std::string http_response(int code, const char* reason,
                          const char* content_type, const std::string& body) {
  std::string out = "HTTP/1.0 " + std::to_string(code) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

std::string timeseries_json(const std::string& name) {
  const auto samples = obs::timeseries().series(name);
  std::string out = "{\"name\":\"" + name + "\",\"samples\":[";
  char buf[80];
  for (std::size_t i = 0; i < samples.size(); ++i) {
    std::snprintf(buf, sizeof buf, "%s{\"t_ns\":%lld,\"v\":%.9g}",
                  i == 0 ? "" : ",",
                  static_cast<long long>(samples[i].t_ns), samples[i].value);
    out += buf;
  }
  out += "],\"dropped_samples\":" +
         std::to_string(obs::timeseries().dropped_samples()) + "}\n";
  return out;
}

std::string timeseries_listing() {
  const auto names = obs::timeseries().series_names();
  std::string out = "{\"series\":[";
  for (std::size_t i = 0; i < names.size(); ++i) {
    out += (i == 0 ? "\"" : ",\"") + names[i] + "\"";
  }
  out += "],\"ticks\":" + std::to_string(obs::timeseries().ticks()) + "}\n";
  return out;
}

}  // namespace

std::string render_admin_response(const std::string& target) {
  try {
    if (target == "/metrics") {
      return http_response(200, "OK",
                           "text/plain; version=0.0.4; charset=utf-8",
                           obs::registry().snapshot().to_prometheus());
    }
    if (target == "/registry") {
      return http_response(200, "OK", "application/json",
                           obs::registry().snapshot().to_json() + "\n");
    }
    if (target == "/slo") {
      return http_response(200, "OK", "application/json",
                           obs::slos().to_json());
    }
    if (target == "/profile") {
      return http_response(200, "OK", "application/json",
                           obs::profile_to_json());
    }
    if (target == "/timeseries") {
      return http_response(200, "OK", "application/json",
                           timeseries_listing());
    }
    const std::string ts_prefix = "/timeseries?name=";
    if (target.compare(0, ts_prefix.size(), ts_prefix) == 0) {
      return http_response(200, "OK", "application/json",
                           timeseries_json(target.substr(ts_prefix.size())));
    }
    return http_response(404, "Not Found", "text/plain",
                         "unknown admin route: " + target + "\n");
  } catch (const std::exception& e) {
    return http_response(500, "Internal Server Error", "text/plain",
                         std::string(e.what()) + "\n");
  }
}

AdminEndpoint::AdminEndpoint(AdminConfig cfg) : cfg_(cfg) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("AdminEndpoint: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(cfg_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    ::close(listen_fd_);
    throw std::runtime_error("AdminEndpoint: bind(127.0.0.1:" +
                             std::to_string(cfg_.port) + ") failed");
  }
  if (::listen(listen_fd_, cfg_.backlog) < 0) {
    ::close(listen_fd_);
    throw std::runtime_error("AdminEndpoint: listen() failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  acceptor_ = std::thread([this] { accept_loop(); });
}

AdminEndpoint::~AdminEndpoint() { stop(); }

void AdminEndpoint::stop() {
  if (stopping_.exchange(true)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (acceptor_.joinable()) acceptor_.join();
}

void AdminEndpoint::accept_loop() {
  auto& c_requests = obs::registry().counter("obs.admin.requests");
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (stop) or unrecoverable
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    // Read until the end of the request head (or a small cap — admin
    // requests have no body, so anything bigger is garbage).
    std::string head;
    char buf[1024];
    while (head.size() < 8192 && head.find("\r\n\r\n") == std::string::npos &&
           head.find("\n\n") == std::string::npos) {
      const ssize_t n = ::read(fd, buf, sizeof buf);
      if (n <= 0) break;
      head.append(buf, static_cast<std::size_t>(n));
    }
    // Request line: METHOD SP TARGET SP VERSION. Only GET is served (the
    // endpoint is read-only by contract).
    std::string response;
    const auto sp1 = head.find(' ');
    const auto sp2 = sp1 == std::string::npos ? std::string::npos
                                              : head.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos ||
        head.compare(0, sp1, "GET") != 0) {
      response = http_response(405, "Method Not Allowed", "text/plain",
                               "admin endpoint is read-only: GET only\n");
    } else {
      c_requests.inc();
      response = render_admin_response(head.substr(sp1 + 1, sp2 - sp1 - 1));
    }
    std::size_t off = 0;
    while (off < response.size()) {
      const ssize_t n =
          ::write(fd, response.data() + off, response.size() - off);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
    ::close(fd);
  }
}

}  // namespace ibrar::serve::net
