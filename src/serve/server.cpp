#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "analysis/capture.hpp"
#include "autograd/var.hpp"
#include "tensor/reduce.hpp"
#include "util/env.hpp"

namespace ibrar::serve {
namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void bump_max(std::atomic<std::uint64_t>& target, std::uint64_t v) {
  std::uint64_t cur = target.load(std::memory_order_relaxed);
  while (cur < v &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

ServeConfig ServeConfig::from_env() {
  ServeConfig cfg;
  cfg.max_batch = env::get_int("IBRAR_SERVE_MAX_BATCH", 8);
  cfg.deadline_us = env::get_int("IBRAR_SERVE_DEADLINE_US", 2000);
  cfg.queue_capacity = env::get_int("IBRAR_SERVE_QUEUE_CAP", 256);
  return cfg;
}

Server::Server(ModelRegistry& registry, ServeConfig cfg)
    : registry_(registry),
      cfg_([&] {
        cfg.max_batch = std::max<std::int64_t>(cfg.max_batch, 1);
        cfg.deadline_us = std::max<std::int64_t>(cfg.deadline_us, 0);
        cfg.queue_capacity = std::max<std::int64_t>(cfg.queue_capacity, 1);
        cfg.workers = std::max<std::int64_t>(cfg.workers, 1);
        return cfg;
      }()),
      queue_(static_cast<std::size_t>(cfg_.queue_capacity)),
      monitor_(cfg_.telemetry) {
  if (!registry_.current()) {
    throw std::invalid_argument(
        "serve::Server: registry has no published model");
  }
  if (cfg_.workers > 1 && monitor_.enabled()) {
    // The telemetry capture path toggles the shared snapshot's train/eval
    // flag (analysis::capture_taps' mode guard), which races a concurrent
    // worker's forward. Until snapshots grow a const-forward path (see
    // ROADMAP), the combination is rejected rather than silently unsafe.
    throw std::invalid_argument(
        "serve::Server: telemetry requires workers == 1 (the capture path "
        "is not safe against concurrent forwards on the shared snapshot)");
  }
  workers_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (std::int64_t w = 0; w < cfg_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Server::~Server() { shutdown(); }

void Server::shutdown() {
  if (stopped_.exchange(true)) {
    return;  // a second caller must not re-join the workers
  }
  queue_.close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

std::future<Reply> Server::submit(Tensor input) {
  const auto snap = registry_.current();
  // Accept (C, H, W) or (1, C, H, W); anything else is a caller bug, not
  // load, so it throws instead of consuming queue capacity.
  Shape per_sample = input.shape();
  if (per_sample.size() == 4 && per_sample[0] == 1) {
    per_sample.erase(per_sample.begin());
    input = input.reshape(per_sample);
  }
  if (per_sample != snap->input_shape) {
    throw std::invalid_argument("serve::Server::submit: input shape " +
                                shape_str(input.shape()) +
                                " does not match the published model's " +
                                shape_str(snap->input_shape));
  }

  Request r;
  r.input = std::move(input);
  r.enqueue_ns = now_ns();
  // r.index is assigned by the queue on admission, so the telemetry cadence
  // is over accepted traffic (rejections never consume a sequence number).
  std::future<Reply> fut = r.promise.get_future();

  switch (queue_.push(r)) {
    case PushStatus::kAccepted:
      accepted_.fetch_add(1, std::memory_order_relaxed);
      break;
    case PushStatus::kFull: {
      rejected_full_.fetch_add(1, std::memory_order_relaxed);
      Reply reply;
      reply.status = ReplyStatus::kRejectedQueueFull;
      reply.model_version = snap->version;
      r.promise.set_value(std::move(reply));
      break;
    }
    case PushStatus::kClosed: {
      rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
      Reply reply;
      reply.status = ReplyStatus::kRejectedShutdown;
      reply.model_version = snap->version;
      r.promise.set_value(std::move(reply));
      break;
    }
  }
  return fut;
}

void Server::worker_loop() {
  // Serving never builds autograd graphs; the guard is thread_local, so each
  // worker sets its own.
  ag::NoGradGuard ng;
  Batcher batcher(queue_, cfg_.max_batch, cfg_.deadline_us);
  MicroBatch batch;
  while (batcher.next(batch)) {
    serve_batch(batch);
  }
}

void Server::serve_batch(MicroBatch& batch) {
  // The snapshot is pinned for exactly this batch: a concurrent publish swaps
  // the registry pointer but cannot unload the model under us.
  const auto snap = registry_.current();
  const auto& chw = snap->input_shape;

  // Requests were shape-validated at submit time against the snapshot live
  // THEN; a hot-swap to a different input layout can leave stale rows in the
  // queue. They must not reach the memcpy below (reading `row` floats from a
  // smaller tensor would run off its heap buffer), so they are failed here
  // with their own status and the batch proceeds with the matching rows.
  std::vector<Request> live;
  live.reserve(batch.requests.size());
  for (auto& req : batch.requests) {
    if (req.input.shape() == chw) {
      live.push_back(std::move(req));
    } else {
      Reply reply;
      reply.status = ReplyStatus::kRejectedStaleShape;
      reply.model_version = snap->version;
      rejected_stale_.fetch_add(1, std::memory_order_relaxed);
      req.promise.set_value(std::move(reply));
    }
  }
  if (live.empty()) return;
  const std::int64_t bsz = static_cast<std::int64_t>(live.size());
  const std::int64_t row = chw[0] * chw[1] * chw[2];

  const std::int64_t t0 = now_ns();
  Tensor x({bsz, chw[0], chw[1], chw[2]});
  for (std::int64_t i = 0; i < bsz; ++i) {
    std::memcpy(x.data().data() + i * row,
                live[static_cast<std::size_t>(i)].input.data().data(),
                sizeof(float) * static_cast<std::size_t>(row));
  }
  const Tensor logits = snap->model->forward(ag::Var::constant(x)).value();
  const std::int64_t compute_ns = now_ns() - t0;
  const auto preds = argmax_rows(logits);
  const std::int64_t nc = logits.dim(1);

  batches_.fetch_add(1, std::memory_order_relaxed);
  served_.fetch_add(static_cast<std::uint64_t>(bsz),
                    std::memory_order_relaxed);
  bump_max(max_batch_observed_, static_cast<std::uint64_t>(bsz));
  switch (batch.trigger) {
    case BatchTrigger::kSize:
      size_triggers_.fetch_add(1, std::memory_order_relaxed);
      break;
    case BatchTrigger::kDeadline:
      deadline_triggers_.fetch_add(1, std::memory_order_relaxed);
      break;
    case BatchTrigger::kDrain:
      drain_triggers_.fetch_add(1, std::memory_order_relaxed);
      break;
  }

  for (std::int64_t i = 0; i < bsz; ++i) {
    Request& req = live[static_cast<std::size_t>(i)];
    Reply reply;
    reply.status = ReplyStatus::kOk;
    reply.logits = Tensor({nc});
    std::memcpy(reply.logits.data().data(), logits.data().data() + i * nc,
                sizeof(float) * static_cast<std::size_t>(nc));
    reply.argmax = preds[static_cast<std::size_t>(i)];
    reply.model_version = snap->version;
    reply.queue_ns = t0 - req.enqueue_ns;
    reply.compute_ns = compute_ns;
    reply.batch_size = bsz;
    reply.trigger = batch.trigger;

    if (monitor_.should_sample(req.index)) {
      // Tap capture rides the shared analysis sweep on a one-row dataset:
      // one extra forward per Kth request, amortized away by the cadence.
      data::Dataset one;
      one.images = req.input.reshape({1, chw[0], chw[1], chw[2]});
      one.labels = {0};
      one.num_classes = snap->num_classes;
      const auto dump = analysis::capture_taps(
          *snap->model, one, /*max_samples=*/-1, /*batch=*/1,
          {snap->model->last_conv_tap_index()});
      const std::int64_t channels = snap->model->last_conv_channels();
      const std::int64_t width = dump.taps[0].dim(1);
      reply.telemetry =
          monitor_.observe(dump.taps[0].data().data(), channels,
                           width / channels, reply.argmax, snap->num_classes);
      telemetry_samples_.fetch_add(1, std::memory_order_relaxed);
    }
    req.promise.set_value(std::move(reply));
  }
}

ServerStats Server::stats() const {
  ServerStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected_full = rejected_full_.load(std::memory_order_relaxed);
  s.rejected_shutdown = rejected_shutdown_.load(std::memory_order_relaxed);
  s.rejected_stale = rejected_stale_.load(std::memory_order_relaxed);
  s.served = served_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.size_triggers = size_triggers_.load(std::memory_order_relaxed);
  s.deadline_triggers = deadline_triggers_.load(std::memory_order_relaxed);
  s.drain_triggers = drain_triggers_.load(std::memory_order_relaxed);
  s.max_batch_observed = max_batch_observed_.load(std::memory_order_relaxed);
  s.telemetry_samples = telemetry_samples_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace ibrar::serve
