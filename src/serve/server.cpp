#include "serve/server.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

#include "analysis/capture.hpp"
#include "autograd/var.hpp"
#include "obs/clock.hpp"
#include "obs/trace.hpp"
#include "tensor/reduce.hpp"
#include "util/env.hpp"

namespace ibrar::serve {
namespace {

using obs::now_ns;

void bump_max(std::atomic<std::uint64_t>& target, std::uint64_t v) {
  std::uint64_t cur = target.load(std::memory_order_relaxed);
  while (cur < v &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

ServeConfig ServeConfig::from_env() {
  ServeConfig cfg;
  cfg.max_batch = env::get_int("IBRAR_SERVE_MAX_BATCH", 8);
  cfg.deadline_us = env::get_int("IBRAR_SERVE_DEADLINE_US", 2000);
  cfg.queue_capacity = env::get_int("IBRAR_SERVE_QUEUE_CAP", 256);
  cfg.workers = env::get_int("IBRAR_SERVE_WORKERS", 1);
  // Deployment-facing default: the duplicate-request cache is ON. Safe to
  // default because hits are memcmp-identical to recomputes by contract.
  const long cache_mb =
      std::max(0L, env::get_int("IBRAR_SERVE_CACHE_MB", 32));
  cfg.cache_bytes = static_cast<std::size_t>(cache_mb) << 20;
  cfg.client_rate = env::get_double("IBRAR_SERVE_CLIENT_RATE", 0.0);
  cfg.client_burst = env::get_double("IBRAR_SERVE_CLIENT_BURST", 0.0);
  cfg.max_inflight_per_client = env::get_int("IBRAR_SERVE_MAX_INFLIGHT", 0);
  cfg.telemetry.ewma = env::get_int("IBRAR_SERVE_TELEMETRY_EWMA", 0) != 0;
  cfg.telemetry.ewma_decay = static_cast<float>(
      env::get_double("IBRAR_SERVE_TELEMETRY_EWMA_DECAY", 0.5));
  return cfg;
}

Server::Server(ModelRegistry& registry, ServeConfig cfg)
    : registry_(registry),
      cfg_([&] {
        cfg.max_batch = std::max<std::int64_t>(cfg.max_batch, 1);
        cfg.deadline_us = std::max<std::int64_t>(cfg.deadline_us, 0);
        cfg.queue_capacity = std::max<std::int64_t>(cfg.queue_capacity, 1);
        cfg.workers = std::max<std::int64_t>(cfg.workers, 1);
        return cfg;
      }()),
      queue_(static_cast<std::size_t>(cfg_.queue_capacity)),
      monitor_(cfg_.telemetry),
      cache_(ReplyCacheConfig{cfg_.cache_bytes, /*shards=*/8}),
      admission_(AdmissionConfig{cfg_.client_rate, cfg_.client_burst,
                                 cfg_.max_inflight_per_client}),
      c_accepted_(obs::registry().counter("serve.accepted")),
      c_rejected_full_(obs::registry().counter("serve.rejected_full")),
      c_rejected_shutdown_(obs::registry().counter("serve.rejected_shutdown")),
      c_rejected_stale_(obs::registry().counter("serve.rejected_stale")),
      c_served_(obs::registry().counter("serve.served")),
      c_batches_(obs::registry().counter("serve.batches")),
      c_size_triggers_(obs::registry().counter("serve.trigger.size")),
      c_deadline_triggers_(obs::registry().counter("serve.trigger.deadline")),
      c_drain_triggers_(obs::registry().counter("serve.trigger.drain")),
      c_telemetry_samples_(obs::registry().counter("serve.telemetry.samples")),
      c_admission_busy_(obs::registry().counter("serve.admission.busy")),
      c_admission_throttled_(
          obs::registry().counter("serve.admission.throttled")),
      h_retry_after_ms_(
          obs::registry().histogram("serve.admission.retry_after_ms")),
      g_queue_depth_(obs::registry().gauge("serve.queue_depth")),
      g_drift_state_(obs::registry().gauge("serve.telemetry.drift_state")),
      g_batch_max_(obs::registry().gauge("serve.batch_max")),
      h_queue_wait_ns_(obs::registry().histogram("serve.queue_wait_ns")),
      h_compute_ns_(obs::registry().histogram("serve.compute_ns")),
      h_batch_occupancy_(obs::registry().histogram("serve.batch_occupancy")),
      h_suspicion_(obs::registry().histogram("serve.suspicion")) {
  if (!registry_.current()) {
    throw std::invalid_argument(
        "serve::Server: registry has no published model");
  }
  // Any workers/telemetry combination is safe: snapshots are
  // shared_ptr<const TapClassifier>, so both the serving forward and the
  // telemetry tap capture can only take the strictly-const eval path.
  base_ = read_totals();
  workers_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (std::int64_t w = 0; w < cfg_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Server::~Server() { shutdown(); }

void Server::shutdown() {
  if (stopped_.exchange(true)) {
    return;  // a second caller must not re-join the workers
  }
  queue_.close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  // The workers have drained every accepted request; pin the gauge to the
  // true (empty) depth so dashboards never show a stale residue after stop.
  g_queue_depth_.set(0.0);
  // Same freshness contract for the cache: dropping every entry walks
  // serve.cache.bytes back down by exactly this server's contribution, so
  // the gauge reads 0 after shutdown (gated in test_reply_cache).
  cache_.clear();
}

void Server::fail_request(Request& r, Reply reply) {
  if (r.cache_leader) {
    // Joiners piled onto this request's in-flight entry get the same
    // rejection — they were dedup'd onto a compute that never happened.
    cache_.abort(r.cache_hash, r.cache_version, reply);
  }
  r.promise.set_value(std::move(reply));
}

std::future<Reply> Server::submit(Tensor input, std::uint64_t client_id) {
  const std::int64_t t_submit = now_ns();
  const auto snap = registry_.current();
  // Accept (C, H, W) or (1, C, H, W); anything else is a caller bug, not
  // load, so it throws instead of consuming queue capacity.
  Shape per_sample = input.shape();
  if (per_sample.size() == 4 && per_sample[0] == 1) {
    per_sample.erase(per_sample.begin());
    input = input.reshape(per_sample);
  }
  if (per_sample != snap->input_shape) {
    throw std::invalid_argument("serve::Server::submit: input shape " +
                                shape_str(input.shape()) +
                                " does not match the published model's " +
                                shape_str(snap->input_shape));
  }

  Request r;
  r.input = std::move(input);
  r.client_id = client_id;
  r.enqueue_ns = now_ns();
  // r.index is assigned by the queue on admission, so the telemetry and trace
  // cadences are over accepted traffic (rejections never consume a sequence
  // number).
  std::future<Reply> fut = r.promise.get_future();

  // Duplicate-request cache, BEFORE admission: hits and in-flight joins are
  // served without compute, so they consume no queue capacity and no
  // admission tokens. The nfs_dupreq flow — answer from the cache, join the
  // in-flight twin, or become the leader that computes for everyone.
  if (cache_.enabled()) {
    cache_.on_version(snap->version);
    const std::uint64_t h = ReplyCache::hash_input(r.input);
    auto lk = cache_.lookup_or_join(h, r.input, snap->version, r.promise);
    switch (lk.outcome) {
      case ReplyCache::Outcome::kHit:
        r.promise.set_value(std::move(lk.reply));
        return fut;
      case ReplyCache::Outcome::kJoined:
        return fut;  // the promise now rides the leader's compute
      case ReplyCache::Outcome::kLeader:
        r.cache_leader = true;
        r.cache_hash = h;
        r.cache_version = snap->version;
        break;
      case ReplyCache::Outcome::kBypass:
        break;
    }
  }

  // Per-client fairness: one client over its token rate or in-flight cap is
  // told when to come back; everyone else is untouched.
  if (admission_.enabled()) {
    const auto dec = admission_.try_admit(client_id, r.enqueue_ns);
    if (!dec.admit) {
      c_admission_throttled_.inc();
      h_retry_after_ms_.observe(static_cast<double>(dec.retry_after_ms));
      Reply reply;
      reply.status = ReplyStatus::kBusyRetryAfter;
      reply.retry_after_ms = dec.retry_after_ms;
      reply.model_version = snap->version;
      fail_request(r, std::move(reply));
      return fut;
    }
  }

  switch (queue_.push(r)) {
    case PushStatus::kAccepted:
      c_accepted_.inc();
      g_queue_depth_.set(static_cast<double>(queue_.size()));
      // Scalar members survive the queue's move-from, so the admitted index
      // is still readable here.
      if (obs::trace_should_sample(r.index)) {
        obs::record_span("admission", t_submit, now_ns(), r.index);
      }
      break;
    case PushStatus::kFull: {
      c_rejected_full_.inc();
      admission_.release(client_id);  // the in-flight slot was never used
      // Refresh the depth gauge on rejection too: under sustained overload
      // every push can be rejected, and the gauge would otherwise freeze at
      // whatever the last accepted push recorded.
      g_queue_depth_.set(static_cast<double>(queue_.size()));
      Reply reply;
      reply.model_version = snap->version;
      if (cfg_.busy_on_full) {
        // CUPS-style busy: say WHEN to come back — roughly how long the
        // backlog ahead takes to drain at the measured service rate.
        reply.status = ReplyStatus::kBusyRetryAfter;
        reply.retry_after_ms = admission_.retry_after_ms(queue_.size());
        c_admission_busy_.inc();
        h_retry_after_ms_.observe(static_cast<double>(reply.retry_after_ms));
      } else {
        reply.status = ReplyStatus::kRejectedQueueFull;
      }
      fail_request(r, std::move(reply));
      break;
    }
    case PushStatus::kClosed: {
      c_rejected_shutdown_.inc();
      admission_.release(client_id);
      g_queue_depth_.set(static_cast<double>(queue_.size()));
      Reply reply;
      reply.status = ReplyStatus::kRejectedShutdown;
      reply.model_version = snap->version;
      fail_request(r, std::move(reply));
      break;
    }
  }
  return fut;
}

void Server::worker_loop() {
  // Serving never builds autograd graphs; the guard is thread_local, so each
  // worker sets its own.
  ag::NoGradGuard ng;
  Batcher batcher(queue_, cfg_.max_batch, cfg_.deadline_us);
  MicroBatch batch;
  while (batcher.next(batch)) {
    serve_batch(batch);
  }
}

void Server::serve_batch(MicroBatch& batch) {
  // The snapshot is pinned for exactly this batch: a concurrent publish swaps
  // the registry pointer but cannot unload the model under us.
  const auto snap = registry_.current();
  const auto& chw = snap->input_shape;
  g_queue_depth_.set(static_cast<double>(queue_.size()));

  // Requests were shape-validated at submit time against the snapshot live
  // THEN; a hot-swap to a different input layout can leave stale rows in the
  // queue. They must not reach the memcpy below (reading `row` floats from a
  // smaller tensor would run off its heap buffer), so they are failed here
  // with their own status and the batch proceeds with the matching rows.
  std::vector<Request> live;
  live.reserve(batch.requests.size());
  for (auto& req : batch.requests) {
    if (req.input.shape() == chw) {
      live.push_back(std::move(req));
    } else {
      Reply reply;
      reply.status = ReplyStatus::kRejectedStaleShape;
      reply.model_version = snap->version;
      c_rejected_stale_.inc();
      if (req.cache_leader) {
        cache_.abort(req.cache_hash, req.cache_version, reply);
      }
      admission_.release(req.client_id);
      req.promise.set_value(std::move(reply));
    }
  }
  if (live.empty()) return;
  const std::int64_t bsz = static_cast<std::int64_t>(live.size());
  const std::int64_t row = chw[0] * chw[1] * chw[2];

  // One trace decision per batch: batch-level spans (batch_assembly,
  // compute) are emitted when any rider is sampled, correlated to the first
  // sampled rider's admission index.
  bool traced_batch = false;
  std::uint64_t trace_corr = 0;
  for (const auto& req : live) {
    if (obs::trace_should_sample(req.index)) {
      traced_batch = true;
      trace_corr = req.index;
      break;
    }
  }
  if (traced_batch) {
    obs::record_span("batch_assembly", batch.assemble_begin_ns,
                     batch.assemble_end_ns, trace_corr);
    for (const auto& req : live) {
      if (obs::trace_should_sample(req.index)) {
        obs::record_span("queue_wait", req.enqueue_ns, batch.assemble_end_ns,
                         req.index);
      }
    }
  }

  Tensor x({bsz, chw[0], chw[1], chw[2]});
  for (std::int64_t i = 0; i < bsz; ++i) {
    std::memcpy(x.data().data() + i * row,
                live[static_cast<std::size_t>(i)].input.data().data(),
                sizeof(float) * static_cast<std::size_t>(row));
  }
  const Tensor logits = snap->forward(x);
  const std::int64_t t1 = now_ns();
  // Stage boundaries tile exactly: queue_wait covers enqueue ->
  // assemble_end, compute covers assemble_end -> logits-ready (row staging
  // included). The SAME boundaries feed reply.queue_ns / reply.compute_ns,
  // the latency histograms, and the trace spans, so per-request timings and
  // spans always add up with no gap and no overlap (gated by the
  // QueueWaitAndComputeTileExactly test).
  const std::int64_t compute_ns = t1 - batch.assemble_end_ns;
  if (traced_batch) {
    obs::record_span("compute", batch.assemble_end_ns, t1, trace_corr);
  }
  // Feed the service-rate EWMA the busy retry-after hints are derived from.
  admission_.note_batch(bsz, t1);
  const auto preds = argmax_rows(logits);
  const std::int64_t nc = logits.dim(1);

  c_batches_.inc();
  c_served_.inc(static_cast<std::uint64_t>(bsz));
  h_compute_ns_.observe(static_cast<double>(compute_ns));
  h_batch_occupancy_.observe(static_cast<double>(bsz));
  bump_max(max_batch_observed_, static_cast<std::uint64_t>(bsz));
  g_batch_max_.set_max(static_cast<double>(bsz));
  switch (batch.trigger) {
    case BatchTrigger::kSize:
      c_size_triggers_.inc();
      break;
    case BatchTrigger::kDeadline:
      c_deadline_triggers_.inc();
      break;
    case BatchTrigger::kDrain:
      c_drain_triggers_.inc();
      break;
  }
  // Per-model-version attribution (counters created on first use; one
  // registry lookup per batch, amortized across its rows). Cardinality is
  // bounded across hot-swaps: the first worker to observe a new version (CAS
  // winner) folds the previous version's family into the
  // serve.version.retired.* aggregates, so the registry carries the live
  // generation plus one retired set, never N generations of dead names. A
  // straggler batch still pinned to the old snapshot may transiently
  // re-create its family; the next swap folds that too.
  {
    std::uint64_t prev = last_version_.load(std::memory_order_relaxed);
    if (prev != snap->version &&
        last_version_.compare_exchange_strong(prev, snap->version,
                                              std::memory_order_relaxed)) {
      if (prev != 0) {
        obs::registry().retire_counters(
            "serve.version." + std::to_string(prev) + ".",
            "serve.version.retired.");
      }
    }
    const std::string prefix =
        "serve.version." + std::to_string(snap->version);
    obs::registry().counter(prefix + ".requests")
        .inc(static_cast<std::uint64_t>(bsz));
    obs::registry().counter(prefix + ".compute_ns")
        .inc(static_cast<std::uint64_t>(compute_ns));
  }

  for (std::int64_t i = 0; i < bsz; ++i) {
    Request& req = live[static_cast<std::size_t>(i)];
    const bool traced_req = traced_batch && obs::trace_should_sample(req.index);
    Reply reply;
    reply.status = ReplyStatus::kOk;
    reply.logits = Tensor({nc});
    std::memcpy(reply.logits.data().data(), logits.data().data() + i * nc,
                sizeof(float) * static_cast<std::size_t>(nc));
    reply.argmax = preds[static_cast<std::size_t>(i)];
    reply.model_version = snap->version;
    reply.queue_ns = batch.assemble_end_ns - req.enqueue_ns;
    reply.compute_ns = compute_ns;
    reply.batch_size = bsz;
    reply.trigger = batch.trigger;
    h_queue_wait_ns_.observe(static_cast<double>(reply.queue_ns));

    if (monitor_.should_sample(req.index)) {
      obs::Span rescore_span("telemetry_rescore", traced_req, req.index);
      // Tap capture rides the shared analysis sweep on a one-row dataset:
      // one extra forward per Kth request, amortized away by the cadence.
      data::Dataset one;
      one.images = req.input.reshape({1, chw[0], chw[1], chw[2]});
      one.labels = {0};
      one.num_classes = snap->num_classes;
      const auto dump = analysis::capture_taps(
          *snap->model, one, /*max_samples=*/-1, /*batch=*/1,
          {snap->model->last_conv_tap_index()});
      const std::int64_t channels = snap->model->last_conv_channels();
      const std::int64_t width = dump.taps[0].dim(1);
      reply.telemetry =
          monitor_.observe(dump.taps[0].data().data(), channels,
                           width / channels, reply.argmax, snap->num_classes);
      c_telemetry_samples_.inc();
      if (reply.telemetry.suspicion >= 0.0f) {
        h_suspicion_.observe(static_cast<double>(reply.telemetry.suspicion));
      }
      // Mirror the control-band verdict where dashboards and SLOs can see
      // it. Sampled-path only, so the cost is one short monitor lock per
      // Kth request.
      g_drift_state_.set(static_cast<double>(monitor_.drift_state()));
    }
    // Cache completion BEFORE resolving the leader's own promise: fan the
    // reply to every in-flight joiner and store it for future hits (the
    // cache normalizes + copies; the leader keeps this Reply intact).
    if (req.cache_leader) {
      cache_.complete(req.cache_hash, req.cache_version, reply);
    }
    admission_.release(req.client_id);
    {
      obs::Span reply_span("reply", traced_req, req.index);
      req.promise.set_value(std::move(reply));
    }
  }
}

ServerStats Server::read_totals() const {
  ServerStats s;
  s.accepted = c_accepted_.value();
  s.rejected_full = c_rejected_full_.value();
  s.rejected_shutdown = c_rejected_shutdown_.value();
  s.rejected_stale = c_rejected_stale_.value();
  s.served = c_served_.value();
  s.batches = c_batches_.value();
  s.size_triggers = c_size_triggers_.value();
  s.deadline_triggers = c_deadline_triggers_.value();
  s.drain_triggers = c_drain_triggers_.value();
  s.telemetry_samples = c_telemetry_samples_.value();
  // Cache/admission counters: resolved by name — read_totals runs at
  // construction and inside stats(), never on the serving hot path.
  auto& reg = obs::registry();
  s.cache_lookups = reg.counter("serve.cache.lookups").value();
  s.cache_hits = reg.counter("serve.cache.hits").value();
  s.cache_misses = reg.counter("serve.cache.misses").value();
  s.cache_inflight_joins = reg.counter("serve.cache.inflight_joins").value();
  s.cache_evictions = reg.counter("serve.cache.evictions").value();
  s.cache_invalidations = reg.counter("serve.cache.invalidations").value();
  s.admission_busy = c_admission_busy_.value();
  s.admission_throttled = c_admission_throttled_.value();
  return s;
}

ServerStats Server::stats() const {
  ServerStats s = read_totals();
  s.accepted -= base_.accepted;
  s.rejected_full -= base_.rejected_full;
  s.rejected_shutdown -= base_.rejected_shutdown;
  s.rejected_stale -= base_.rejected_stale;
  s.served -= base_.served;
  s.batches -= base_.batches;
  s.size_triggers -= base_.size_triggers;
  s.deadline_triggers -= base_.deadline_triggers;
  s.drain_triggers -= base_.drain_triggers;
  s.telemetry_samples -= base_.telemetry_samples;
  s.cache_lookups -= base_.cache_lookups;
  s.cache_hits -= base_.cache_hits;
  s.cache_misses -= base_.cache_misses;
  s.cache_inflight_joins -= base_.cache_inflight_joins;
  s.cache_evictions -= base_.cache_evictions;
  s.cache_invalidations -= base_.cache_invalidations;
  s.admission_busy -= base_.admission_busy;
  s.admission_throttled -= base_.admission_throttled;
  s.max_batch_observed = max_batch_observed_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace ibrar::serve
