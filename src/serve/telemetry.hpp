#pragma once
// Per-request robustness telemetry: the paper's Eq. (3) channel signal, live.
//
// IB-RAR scores each last-conv channel by HSIC(f_c, Y) and treats the
// low-scoring ones as non-robust — the channels adversarial perturbations
// exploit. The serving runtime streams that same signal over live traffic:
// every Kth admitted request is sampled (its last-conv tap captured through
// analysis::capture_taps), the sampled taps accumulate into a tumbling
// scoring window, and each time the window fills the per-channel scores are
// recomputed with mi::channel_label_scores (against the model's own
// predictions — no ground truth exists at serving time; the parallel
// per-channel loop keeps this affordable on a live worker, and the re-score
// runs on a double-buffered copy of the window OUTSIDE the monitor mutex so
// concurrent workers keep observing while one recomputes). A sampled
// request's reply then carries a `suspicion` reading: the fraction of its
// activation energy living in the currently low-scoring channels. Clean
// traffic concentrates energy in robust channels; inputs pushed toward the
// non-robust ones read high.
//
// Sampling every Kth request bounds the overhead to (1 capture forward +
// O(C) energy sweep) / K requests, plus one windowed re-score per
// window*K requests.

#include <cstdint>
#include <mutex>
#include <vector>

#include "serve/reply.hpp"
#include "tensor/tensor.hpp"

namespace ibrar::serve {

struct TelemetryConfig {
  /// Sample every Kth admitted request; 0 disables telemetry entirely.
  std::int64_t sample_every = 0;
  /// Sampled taps per scoring window (window full -> channel scores refresh).
  std::int64_t window = 64;
  /// Bottom fraction of channels (by current score) counted as suspicious —
  /// mirrors the paper's Eq. (3) drop fraction.
  float suspicious_fraction = 0.25f;
  /// Sliding re-score (IBRAR_SERVE_TELEMETRY_EWMA): instead of REPLACING the
  /// channel scores each tumbling window, blend
  ///   scores = ewma_decay * previous + (1 - ewma_decay) * window
  /// so suspicion tracks drifting traffic without forgetting the clean
  /// baseline at every epoch boundary (ROADMAP item 4, PR-5 follow-up).
  bool ewma = false;
  /// Weight kept on the previous epoch's scores per completed window.
  float ewma_decay = 0.5f;
};

/// EWMA control-band change detector over a scalar series (here: the
/// per-window mean suspicion). Maintains exponentially-weighted mean and
/// variance of the in-band baseline; an observation farther than
/// band_sigma * stddev (floored at min_band) from the mean is out-of-band,
/// and `trip` consecutive out-of-band observations raise the drift state.
/// Out-of-band points are NOT absorbed into the baseline — a genuine
/// distribution shift keeps the detector latched instead of teaching it the
/// new normal. An in-band observation clears the state.
class DriftDetector {
 public:
  struct Config {
    double decay = 0.8;       ///< weight kept on the old mean/var per update
    double band_sigma = 4.0;  ///< band half-width in baseline stddevs
    double min_band = 0.05;   ///< absolute floor on the band half-width
    std::int64_t warmup = 4;  ///< observations absorbed before bands arm
    std::int64_t trip = 1;    ///< consecutive out-of-band points to flip
  };
  /// States for the serve.telemetry.drift_state gauge.
  static constexpr int kStable = 0;
  static constexpr int kDrift = 1;

  // Two constructors instead of one defaulted argument: `Config cfg =
  // Config()` would need the nested type complete inside its own enclosing
  // class, which the language disallows.
  DriftDetector();
  explicit DriftDetector(Config cfg);

  /// Feed one observation; returns the state after it.
  int observe(double v);

  int state() const { return state_; }
  double mean() const { return mean_; }
  double stddev() const;
  std::int64_t observations() const { return n_; }
  void reset();

 private:
  Config cfg_;
  double mean_ = 0.0;
  double var_ = 0.0;
  std::int64_t n_ = 0;
  std::int64_t out_run_ = 0;
  int state_ = kStable;
};

/// Thread-safe accumulator behind the server's telemetry path.
class RobustnessMonitor {
 public:
  explicit RobustnessMonitor(TelemetryConfig cfg);

  bool enabled() const { return cfg_.sample_every > 0; }

  /// Cadence gate: true for admission indices 0, K, 2K, ...
  bool should_sample(std::uint64_t request_index) const {
    return enabled() &&
           request_index % static_cast<std::uint64_t>(cfg_.sample_every) == 0;
  }

  /// Record one sampled request's last-conv tap — `tap_row` is the flattened
  /// (channels * spatial) activation — plus the model's predicted label.
  /// Returns the telemetry to attach to the reply: suspicion against the
  /// most recent score vector (negative before the first window completes)
  /// and the score epoch it was computed under. Refreshes the channel scores
  /// when this sample fills the window; the refresh itself runs outside the
  /// monitor lock (other threads' observe() calls proceed against the
  /// previous scores meanwhile), and the caller that filled the window
  /// returns telemetry stamped with the new epoch.
  RequestTelemetry observe(const float* tap_row, std::int64_t channels,
                           std::int64_t spatial, std::int64_t pred,
                           std::int64_t num_classes);

  /// Completed scoring windows so far (the `score_epoch` generation).
  std::uint64_t score_epoch() const;

  /// Copy of the current per-channel scores (empty before the first epoch).
  std::vector<float> channel_scores() const;

  /// Samples accumulated toward the next scoring window.
  std::int64_t window_fill() const;

  /// Total samples observed.
  std::uint64_t samples() const;

  /// Drift over the per-window mean suspicion series: each completed window
  /// feeds one observation to an EWMA control-band DriftDetector, so a
  /// clean -> adversarial traffic shift that inflates suspicion flips the
  /// state (mirrored into the serve.telemetry.drift_state gauge by the
  /// server). DriftDetector::kStable / kDrift.
  int drift_state() const;

  /// Copy of the detector (baseline mean/stddev, observation count) for
  /// tests and the admin endpoint.
  DriftDetector drift_snapshot() const;

  const TelemetryConfig& config() const { return cfg_; }

 private:
  TelemetryConfig cfg_;
  mutable std::mutex mu_;
  // Tumbling window of sampled taps, stored flat (window, channels * spatial)
  // with the predicted labels alongside; re-scored when fill_ wraps.
  std::vector<float> window_taps_;
  std::vector<std::int64_t> window_preds_;
  std::int64_t fill_ = 0;
  std::int64_t channels_ = 0;
  std::int64_t spatial_ = 0;
  std::uint64_t samples_ = 0;
  std::uint64_t epoch_ = 0;
  std::vector<float> scores_;          // last completed window's scores
  Tensor suspicious_mask_{Shape{0}};   // 0 = suspicious channel, 1 = robust
  // Suspicion accumulated over the current window, fed to drift_ as one
  // mean observation when the window completes.
  double win_susp_sum_ = 0.0;
  std::int64_t win_susp_n_ = 0;
  DriftDetector drift_;
};

}  // namespace ibrar::serve
