#include "serve/reply_cache.hpp"

#include <cstring>
#include <utility>

namespace ibrar::serve {
namespace {

/// A reply delivered from the cache (hit or join fan-out): the bit-identity
/// fields (logits, argmax, model_version) are the leader's verbatim; the
/// per-request bookkeeping is normalized — no queue was waited on and no
/// compute was spent on behalf of THIS request, and telemetry is a sampled
/// per-request observation that must not be replayed to other requests.
Reply cached_copy(const Reply& src) {
  Reply r = src;
  r.cached = true;
  r.queue_ns = 0;
  r.compute_ns = 0;
  r.batch_size = 0;
  r.trigger = BatchTrigger::kSize;
  r.retry_after_ms = 0;
  r.telemetry = RequestTelemetry{};
  return r;
}

/// A failed leader's status fanned to joiners: copy the failure, clear the
/// telemetry, and leave cached=false (nothing was served from the cache).
Reply failure_copy(const Reply& src) {
  Reply r = src;
  r.telemetry = RequestTelemetry{};
  return r;
}

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

ReplyCache::ReplyCache(ReplyCacheConfig cfg)
    : cfg_(cfg),
      c_lookups_(obs::registry().counter("serve.cache.lookups")),
      c_hits_(obs::registry().counter("serve.cache.hits")),
      c_misses_(obs::registry().counter("serve.cache.misses")),
      c_joins_(obs::registry().counter("serve.cache.inflight_joins")),
      c_evictions_(obs::registry().counter("serve.cache.evictions")),
      c_invalidations_(obs::registry().counter("serve.cache.invalidations")),
      g_bytes_(obs::registry().gauge("serve.cache.bytes")),
      g_budget_(obs::registry().gauge("serve.cache.budget_bytes")) {
  const std::size_t n =
      round_up_pow2(cfg_.shards == 0 ? std::size_t{1} : cfg_.shards);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (enabled()) {
    g_budget_.set(static_cast<double>(cfg_.capacity_bytes));
  }
}

ReplyCache::~ReplyCache() { clear(); }

std::uint64_t ReplyCache::hash_input(const Tensor& input) {
  // FNV-1a 64 over the dims then the raw IEEE-754 bytes. The exact bytes are
  // re-checked on every candidate hit, so the hash only has to spread keys.
  std::uint64_t h = 1469598103934665603ull;
  auto mix_bytes = [&h](const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  };
  for (std::size_t d = 0; d < input.shape().size(); ++d) {
    const std::int64_t dim = input.shape()[d];
    mix_bytes(&dim, sizeof dim);
  }
  mix_bytes(input.data().data(), sizeof(float) * input.data().size());
  return h;
}

std::uint64_t ReplyCache::mix_key(std::uint64_t hash, std::uint64_t version) {
  // splitmix64 finisher over (hash, version) so shard selection and map
  // bucketing both see well-spread bits.
  std::uint64_t z = hash ^ (version * 0x9E3779B97F4A7C15ull);
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ull;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBull;
  z ^= z >> 31;
  return z;
}

ReplyCache::Shard& ReplyCache::shard_for(std::uint64_t key) {
  return *shards_[key & (shards_.size() - 1)];
}

std::size_t ReplyCache::entry_bytes(const Entry& e) {
  std::size_t b = kEntryOverheadBytes + sizeof(float) * e.input.size();
  if (e.complete) b += sizeof(float) * static_cast<std::size_t>(
                           e.reply.logits.rank() > 0 ? e.reply.logits.numel()
                                                     : 0);
  return b;
}

void ReplyCache::account(std::ptrdiff_t delta) {
  if (delta >= 0) {
    bytes_.fetch_add(static_cast<std::size_t>(delta),
                     std::memory_order_relaxed);
  } else {
    bytes_.fetch_sub(static_cast<std::size_t>(-delta),
                     std::memory_order_relaxed);
  }
  g_bytes_.add(static_cast<double>(delta));
}

ReplyCache::Lookup ReplyCache::lookup_or_join(std::uint64_t hash,
                                              const Tensor& input,
                                              std::uint64_t version,
                                              std::promise<Reply>& joiner) {
  Lookup out;
  if (!enabled()) return out;
  c_lookups_.inc();
  const std::uint64_t key = mix_key(hash, version);
  Shard& sh = shard_for(key);
  bool installed = false;
  {
    std::lock_guard<std::mutex> lk(sh.mu);
    auto it = sh.index.find(key);
    if (it != sh.index.end()) {
      Entry& e = *it->second;
      const bool same =
          e.version == version && e.shape == input.shape() &&
          e.input.size() == input.data().size() &&
          std::memcmp(e.input.data(), input.data().data(),
                      sizeof(float) * e.input.size()) == 0;
      if (!same) {
        // A different input collided onto the same key: serve it uncached.
        // kBypass can never be a wrong answer; it is only a missed saving.
        c_misses_.inc();
        return out;
      }
      if (e.complete) {
        sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
        out.outcome = Outcome::kHit;
        out.reply = e.reply;  // already normalized at store time
        c_hits_.inc();
        return out;
      }
      // In flight: park the promise; the leader's complete()/abort() fans
      // out. A join IS a hit for the hits+misses==lookups invariant — the
      // request is served without its own compute.
      e.joiners.push_back(std::move(joiner));
      out.outcome = Outcome::kJoined;
      c_hits_.inc();
      c_joins_.inc();
      return out;
    }
    // Miss: install the nfs_dupreq-style "being processed" entry and name
    // the caller leader.
    Entry e;
    e.key = key;
    e.version = version;
    e.shape = input.shape();
    e.input.assign(input.data().begin(), input.data().end());
    e.bytes = entry_bytes(e);
    sh.lru.push_front(std::move(e));
    sh.index.emplace(key, sh.lru.begin());
    account(static_cast<std::ptrdiff_t>(sh.lru.front().bytes));
    installed = true;
  }
  c_misses_.inc();
  out.outcome = Outcome::kLeader;
  if (installed) evict_to_budget();
  return out;
}

void ReplyCache::complete(std::uint64_t hash, std::uint64_t version,
                          const Reply& reply) {
  if (!enabled()) return;
  const std::uint64_t key = mix_key(hash, version);
  Shard& sh = shard_for(key);
  std::vector<std::promise<Reply>> joiners;
  Reply stored;
  bool store = false;
  {
    std::lock_guard<std::mutex> lk(sh.mu);
    auto it = sh.index.find(key);
    if (it == sh.index.end()) return;  // cleared under us (shutdown race)
    Entry& e = *it->second;
    joiners = std::move(e.joiners);
    e.joiners.clear();
    store = reply.ok() && !e.doomed &&
            version == latest_version_.load(std::memory_order_relaxed);
    if (store) {
      const std::size_t before = e.bytes;
      e.complete = true;
      e.reply = cached_copy(reply);
      e.bytes = entry_bytes(e);
      account(static_cast<std::ptrdiff_t>(e.bytes) -
              static_cast<std::ptrdiff_t>(before));
      sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
      stored = e.reply;
    } else {
      account(-static_cast<std::ptrdiff_t>(e.bytes));
      sh.lru.erase(it->second);
      sh.index.erase(it);
    }
  }
  // Fan out OUTSIDE the shard lock: set_value wakes waiters synchronously.
  if (reply.ok()) {
    const Reply fan = store ? stored : cached_copy(reply);
    for (auto& p : joiners) p.set_value(fan);
  } else {
    for (auto& p : joiners) p.set_value(failure_copy(reply));
  }
  if (store) evict_to_budget();
}

void ReplyCache::abort(std::uint64_t hash, std::uint64_t version,
                       const Reply& reply) {
  if (!enabled()) return;
  const std::uint64_t key = mix_key(hash, version);
  Shard& sh = shard_for(key);
  std::vector<std::promise<Reply>> joiners;
  {
    std::lock_guard<std::mutex> lk(sh.mu);
    auto it = sh.index.find(key);
    if (it == sh.index.end()) return;
    Entry& e = *it->second;
    joiners = std::move(e.joiners);
    account(-static_cast<std::ptrdiff_t>(e.bytes));
    sh.lru.erase(it->second);
    sh.index.erase(it);
  }
  for (auto& p : joiners) p.set_value(failure_copy(reply));
}

void ReplyCache::on_version(std::uint64_t version) {
  if (!enabled()) return;
  if (latest_version_.load(std::memory_order_acquire) == version) return;
  latest_version_.store(version, std::memory_order_release);
  // Hot-swap invalidation: stale complete entries go now (their bytes fall
  // off the gauge immediately); stale in-flight entries are doomed — their
  // joiners were promised a reply, so they still fan out, but the result is
  // never stored.
  for (auto& shp : shards_) {
    Shard& sh = *shp;
    std::lock_guard<std::mutex> lk(sh.mu);
    for (auto it = sh.lru.begin(); it != sh.lru.end();) {
      if (it->version == version) {
        ++it;
        continue;
      }
      if (it->complete) {
        account(-static_cast<std::ptrdiff_t>(it->bytes));
        sh.index.erase(it->key);
        it = sh.lru.erase(it);
        c_invalidations_.inc();
      } else {
        if (!it->doomed) {
          it->doomed = true;
          c_invalidations_.inc();
        }
        ++it;
      }
    }
  }
}

void ReplyCache::clear() {
  std::vector<std::promise<Reply>> stranded;
  for (auto& shp : shards_) {
    Shard& sh = *shp;
    std::lock_guard<std::mutex> lk(sh.mu);
    for (auto& e : sh.lru) {
      account(-static_cast<std::ptrdiff_t>(e.bytes));
      for (auto& p : e.joiners) stranded.push_back(std::move(p));
    }
    sh.lru.clear();
    sh.index.clear();
  }
  // A submit racing shutdown can leave joiners whose leader will abort into
  // an empty cache; failing them here keeps the no-broken-promise contract.
  Reply r;
  r.status = ReplyStatus::kRejectedShutdown;
  for (auto& p : stranded) p.set_value(r);
}

std::size_t ReplyCache::entries() const {
  std::size_t n = 0;
  for (const auto& shp : shards_) {
    std::lock_guard<std::mutex> lk(shp->mu);
    n += shp->lru.size();
  }
  return n;
}

void ReplyCache::evict_to_budget() {
  // Evict cold COMPLETE entries (in-flight ones are pinned — evicting one
  // would strand its joiners) round-robin across shards until the byte
  // budget holds or nothing is evictable.
  while (bytes_.load(std::memory_order_relaxed) > cfg_.capacity_bytes) {
    bool evicted = false;
    for (auto& shp : shards_) {
      if (bytes_.load(std::memory_order_relaxed) <= cfg_.capacity_bytes) {
        return;
      }
      Shard& sh = *shp;
      std::lock_guard<std::mutex> lk(sh.mu);
      for (auto it = sh.lru.rbegin(); it != sh.lru.rend(); ++it) {
        if (!it->complete) continue;
        auto victim = std::prev(it.base());
        account(-static_cast<std::ptrdiff_t>(victim->bytes));
        sh.index.erase(victim->key);
        sh.lru.erase(victim);
        c_evictions_.inc();
        evicted = true;
        break;
      }
    }
    if (!evicted) return;  // everything left is in flight
  }
}

}  // namespace ibrar::serve
