#pragma once
// The inference serving façade: queue -> batcher -> workers -> futures.
//
// Server turns the run-to-completion library into an always-on runtime:
// clients submit single samples and get std::future<Reply>; a bounded MPMC
// queue applies admission control (reject-with-status under overload);
// cfg.workers worker threads each run their own dual-trigger Batcher over the
// shared queue, so micro-batches assemble and forward concurrently (the
// nfs-ganesha dispatcher/worker split); the versioned ModelRegistry supplies
// an immutable snapshot per batch, so checkpoints hot-swap under live traffic
// while in-flight batches finish on the version they grabbed. Every Kth
// request optionally flows through the robustness telemetry
// (serve/telemetry.hpp) — safe at any worker count because both the serving
// forward and the telemetry tap capture ride the snapshot's strictly-const
// eval path (no mode flips, no shared mutable state; see
// serve/model_registry.hpp). Bit-identity contract: a request's logits are
// memcmp-identical whichever worker or micro-batch serves it, telemetry on or
// off — gated in tests/test_serve.cpp and bench_serve.
//
// A TCP front-end for out-of-process clients lives in serve/net/ (deep-
// backlog listener, length-prefixed framing, client helper); it feeds this
// same queue through submit().
//
// Duplicate-request reply cache (serve/reply_cache.hpp): when
// cfg.cache_bytes > 0, submit() hashes the input bytes and looks up
// (hash, snapshot version) BEFORE admission — a hit answers instantly with
// logits memcmp-identical to a recompute, concurrent identical requests join
// one in-flight compute, and a hot-swap invalidates stale versions. Cache
// hits consume no queue capacity and no admission tokens (they cost no
// compute).
//
// Admission control (serve/admission.hpp): per-client token buckets and
// in-flight caps keyed on the client id (0 for in-process callers without
// one), plus busy-instead-of-reject — with cfg.busy_on_full (default on) a
// full queue answers kBusyRetryAfter carrying a retry-after hint computed
// from queue depth / measured service rate, instead of the hint-less
// kRejectedQueueFull.
//
// Observability (src/obs): the server records into the process-global
// obs::registry() — serve.* counters for admission/trigger/telemetry events,
// serve.cache.{lookups,hits,misses,inflight_joins,evictions,invalidations}
// with the serve.cache.bytes / serve.cache.budget_bytes gauges,
// serve.admission.{busy,throttled} with the serve.admission.retry_after_ms
// histogram, serve.queue_depth / serve.batch_max gauges, and latency
// histograms serve.queue_wait_ns / serve.compute_ns / serve.batch_occupancy /
// serve.suspicion (full name table in README). Per model version it bumps
// serve.version.<v>.requests and serve.version.<v>.compute_ns. When request
// tracing is on (IBRAR_OBS_TRACE_SAMPLE=K), every Kth admitted request emits
// the span chain admission -> queue_wait -> batch_assembly -> compute ->
// telemetry_rescore -> reply, exportable via obs::dump_trace(). Observation
// never changes computation: logits are bit-identical with every knob on or
// off.
//
// Environment knobs (defaults in ServeConfig::from_env):
//   IBRAR_SERVE_MAX_BATCH    micro-batch row cap            (default 8)
//   IBRAR_SERVE_DEADLINE_US  batch assembly deadline, us    (default 2000)
//   IBRAR_SERVE_QUEUE_CAP    admission queue capacity       (default 256)
//   IBRAR_SERVE_WORKERS      worker threads over the queue  (default 1)
//   IBRAR_SERVE_CACHE_MB     reply cache budget, MiB        (default 32; 0 off)
//   IBRAR_SERVE_CLIENT_RATE  per-client tokens/sec          (default 0 = off)
//   IBRAR_SERVE_CLIENT_BURST token bucket depth             (default derived)
//   IBRAR_SERVE_MAX_INFLIGHT per-client in-flight cap       (default 0 = off)
//   IBRAR_OBS_TRACE_SAMPLE   trace every Kth request        (default 0 = off)
//
// Shutdown is graceful: shutdown() (or the destructor) closes the queue, the
// workers drain every already-accepted request, then exit. Submissions after
// shutdown complete immediately with kRejectedShutdown.

#include <atomic>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/admission.hpp"
#include "serve/batcher.hpp"
#include "serve/model_registry.hpp"
#include "serve/reply_cache.hpp"
#include "serve/request_queue.hpp"
#include "serve/telemetry.hpp"

namespace ibrar::serve {

struct ServeConfig {
  std::int64_t max_batch = 8;
  std::int64_t deadline_us = 2000;
  std::int64_t queue_capacity = 256;
  /// Worker threads running batch forwards over the shared queue. One worker
  /// maximizes per-batch kernel parallelism (the thread pool inside the
  /// tensor kernels); more workers overlap batch assembly with compute and
  /// lift throughput when forwards are short or the pool is under-utilized.
  /// Safe with telemetry at any count — forwards are strictly const.
  std::int64_t workers = 1;
  TelemetryConfig telemetry;  ///< telemetry.sample_every == 0 -> off
  /// Reply-cache byte budget; 0 disables caching. The programmatic default
  /// is OFF (a library user opts in); from_env() defaults it ON at 32 MiB —
  /// the deployment-facing default, overridable with IBRAR_SERVE_CACHE_MB.
  std::size_t cache_bytes = 0;
  /// Per-client token-bucket rate, requests/sec; 0 = unlimited.
  double client_rate = 0.0;
  /// Token bucket depth; <= 0 derives max(client_rate, 1).
  double client_burst = 0.0;
  /// Per-client in-flight cap; 0 = unlimited.
  std::int64_t max_inflight_per_client = 0;
  /// Full queue answers kBusyRetryAfter + hint (default) instead of the
  /// legacy hint-less kRejectedQueueFull.
  bool busy_on_full = true;

  /// Defaults overridden by IBRAR_SERVE_MAX_BATCH / _DEADLINE_US /
  /// _QUEUE_CAP / _WORKERS / _CACHE_MB / _CLIENT_RATE / _CLIENT_BURST /
  /// _MAX_INFLIGHT.
  static ServeConfig from_env();
};

/// Per-server counter view. The underlying metrics live in the process-global
/// obs::registry() (names in server.hpp's header comment); this struct is the
/// compatibility shim — Server::stats() subtracts the construction-time
/// baseline, so each Server still reports its own traffic even though the
/// registry is cumulative across server instances. Each value is an exact
/// merged read of its counter; values across fields are mutually consistent
/// once the server is quiescent (drained or shut down).
struct ServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_full = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t rejected_stale = 0;  ///< queued before an input-shape hot-swap
  std::uint64_t served = 0;
  std::uint64_t batches = 0;
  std::uint64_t size_triggers = 0;
  std::uint64_t deadline_triggers = 0;
  std::uint64_t drain_triggers = 0;
  std::uint64_t max_batch_observed = 0;
  std::uint64_t telemetry_samples = 0;
  // Reply cache + admission control (PR 9). cache_hits includes
  // cache_inflight_joins; cache_hits + cache_misses == cache_lookups.
  std::uint64_t cache_lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_inflight_joins = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_invalidations = 0;
  std::uint64_t admission_busy = 0;       ///< queue-full busy replies
  std::uint64_t admission_throttled = 0;  ///< per-client denials
};

class Server {
 public:
  /// The registry must already have a published version; throws otherwise.
  Server(ModelRegistry& registry, ServeConfig cfg);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Submit one sample — (C, H, W) matching the current snapshot's input
  /// shape (a leading batch dim of 1 is accepted and squeezed). Returns a
  /// future that resolves to the reply; under backpressure or shutdown the
  /// future is already resolved with the rejection status. Throws
  /// std::invalid_argument for a shape the current model cannot take.
  /// `client_id` feeds per-client admission fairness (the TCP front-end
  /// passes the wire frame's id; in-process callers may share the default 0).
  std::future<Reply> submit(Tensor input, std::uint64_t client_id = 0);

  /// Stop admission, drain accepted requests, join workers. Idempotent.
  void shutdown();

  ServerStats stats() const;
  const ServeConfig& config() const { return cfg_; }
  RobustnessMonitor& monitor() { return monitor_; }
  ReplyCache& cache() { return cache_; }
  AdmissionController& admission() { return admission_; }

 private:
  void worker_loop();
  void serve_batch(MicroBatch& batch);
  /// Resolve a request rejected before the queue: aborts its cache
  /// leadership (fanning `reply` to any joiners) and fails its promise.
  void fail_request(Request& r, Reply reply);
  ServerStats read_totals() const;  ///< cumulative registry values

  ModelRegistry& registry_;
  ServeConfig cfg_;
  RequestQueue queue_;
  RobustnessMonitor monitor_;
  ReplyCache cache_;
  AdmissionController admission_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopped_{false};

  // Stable handles into obs::registry(), resolved once at construction so
  // the serving hot path never takes the registry lock.
  obs::Counter& c_accepted_;
  obs::Counter& c_rejected_full_;
  obs::Counter& c_rejected_shutdown_;
  obs::Counter& c_rejected_stale_;
  obs::Counter& c_served_;
  obs::Counter& c_batches_;
  obs::Counter& c_size_triggers_;
  obs::Counter& c_deadline_triggers_;
  obs::Counter& c_drain_triggers_;
  obs::Counter& c_telemetry_samples_;
  obs::Counter& c_admission_busy_;
  obs::Counter& c_admission_throttled_;
  obs::Histogram& h_retry_after_ms_;
  obs::Gauge& g_queue_depth_;
  obs::Gauge& g_drift_state_;
  obs::Gauge& g_batch_max_;
  obs::Histogram& h_queue_wait_ns_;
  obs::Histogram& h_compute_ns_;
  obs::Histogram& h_batch_occupancy_;
  obs::Histogram& h_suspicion_;

  /// Registry values at construction — the baseline stats() subtracts.
  ServerStats base_;
  /// Per-server high-water mark (a max cannot be delta'd out of the global
  /// gauge, so it is tracked locally and mirrored into serve.batch_max).
  std::atomic<std::uint64_t> max_batch_observed_{0};
  /// Last model version whose serve.version.<v>.* family is live; the CAS
  /// winner on a version change retires the previous family into
  /// serve.version.retired.* (0 = none seen yet).
  std::atomic<std::uint64_t> last_version_{0};
};

}  // namespace ibrar::serve
