#pragma once
// Streaming / minibatch MI estimation: analysis over the full test set
// without one giant Gram matrix.
//
// HSIC is O(chunk^2) memory and O(chunk^2 * d) compute per chunk. Each
// chunk's biased estimator targets the same population HSIC, so the
// sample-weighted average over chunks converges like a minibatch estimate —
// and a single chunk spanning the whole sample reproduces hsic_gaussian
// exactly (tests/test_mi_properties.cpp pins both facts).

#include <cstdint>

#include "mi/hsic.hpp"

namespace ibrar::mi {

/// Accumulates Gaussian-kernel HSIC over row chunks of two paired sample
/// streams (same chunk sizes on both sides).
class StreamingHsic {
 public:
  /// Bandwidths <= 0 fall back to scaled_sigma(feature dim) per side —
  /// constant across chunks, so chunking never changes the kernel.
  explicit StreamingHsic(float sigma_x = -1.0f, float sigma_y = -1.0f)
      : sigma_x_(sigma_x), sigma_y_(sigma_y) {}

  /// One chunk: x is (c, dx), y is (c, dy) with matching row counts.
  void add(const Tensor& x, const Tensor& y);

  /// Sample-weighted mean of the per-chunk HSIC values (0 before any chunk).
  double value() const { return samples_ > 0 ? weighted_ / samples_ : 0.0; }

  std::int64_t samples() const { return samples_; }
  std::int64_t chunks() const { return chunks_; }

 private:
  float sigma_x_;
  float sigma_y_;
  double weighted_ = 0.0;
  std::int64_t samples_ = 0;
  std::int64_t chunks_ = 0;
};

/// Convenience: chunked HSIC over full row matrices — feeds [0,chunk),
/// [chunk,2*chunk), ... through a StreamingHsic. chunk <= 0 or >= rows is
/// exactly hsic_gaussian.
double hsic_gaussian_chunked(const Tensor& x, const Tensor& y,
                             std::int64_t chunk, float sigma_x = -1.0f,
                             float sigma_y = -1.0f);

}  // namespace ibrar::mi
