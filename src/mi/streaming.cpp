#include "mi/streaming.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace ibrar::mi {
namespace {

/// Contiguous row slice [begin, end) of a 2-D tensor (one block copy).
Tensor row_slice(const Tensor& t, std::int64_t begin, std::int64_t end) {
  const auto d = t.dim(1);
  Tensor out({end - begin, d});
  std::memcpy(out.data().data(), t.data().data() + begin * d,
              sizeof(float) * static_cast<std::size_t>((end - begin) * d));
  return out;
}

}  // namespace

void StreamingHsic::add(const Tensor& x, const Tensor& y) {
  if (x.rank() != 2 || y.rank() != 2 || x.dim(0) != y.dim(0)) {
    throw std::invalid_argument(
        "StreamingHsic::add: chunks must be 2-D with matching row counts");
  }
  const auto c = x.dim(0);
  if (c < 2) {
    throw std::invalid_argument("StreamingHsic::add: chunk needs >= 2 rows");
  }
  const double h = hsic_gaussian(x, y, sigma_x_, sigma_y_);
  weighted_ += h * static_cast<double>(c);
  samples_ += c;
  ++chunks_;
}

double hsic_gaussian_chunked(const Tensor& x, const Tensor& y,
                             std::int64_t chunk, float sigma_x, float sigma_y) {
  if (x.rank() != 2 || y.rank() != 2 || x.dim(0) != y.dim(0)) {
    throw std::invalid_argument(
        "hsic_gaussian_chunked: inputs must be 2-D with matching row counts");
  }
  const auto n = x.dim(0);
  if (chunk <= 0 || chunk >= n) {
    return hsic_gaussian(x, y, sigma_x, sigma_y);
  }
  // Fixed bandwidths across chunks: per-chunk defaults would re-derive the
  // same scaled_sigma(d) anyway, but resolving them once makes that explicit.
  const float sx = sigma_x > 0 ? sigma_x : scaled_sigma(x.dim(1));
  const float sy = sigma_y > 0 ? sigma_y : scaled_sigma(y.dim(1));
  StreamingHsic acc(sx, sy);
  for (std::int64_t b = 0; b < n; b += chunk) {
    const std::int64_t e = std::min(n, b + chunk);
    if (e - b < 2) break;  // a trailing single row carries no pair information
    acc.add(row_slice(x, b, e), row_slice(y, b, e));
  }
  return acc.value();
}

}  // namespace ibrar::mi
