#include "mi/tsne.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "runtime/parallel_for.hpp"
#include "tensor/random.hpp"
#include "tensor/reduce.hpp"

namespace ibrar::mi {
namespace {

/// Row conditional probabilities p_{j|i} at the sigma achieving `perplexity`
/// (binary search on precision beta = 1/(2 sigma^2)).
void row_affinities(const Tensor& d2, std::int64_t i, double perplexity,
                    std::vector<double>& p_row) {
  const auto n = d2.dim(0);
  const double target = std::log(perplexity);
  double beta = 1.0, beta_lo = 0.0, beta_hi = 1e12;
  for (int iter = 0; iter < 50; ++iter) {
    double sum_p = 0.0, sum_dp = 0.0;
    for (std::int64_t j = 0; j < n; ++j) {
      if (j == i) {
        p_row[static_cast<std::size_t>(j)] = 0.0;
        continue;
      }
      const double pj = std::exp(-beta * d2.at(i, j));
      p_row[static_cast<std::size_t>(j)] = pj;
      sum_p += pj;
      sum_dp += pj * d2.at(i, j);
    }
    if (sum_p <= 0) {
      beta /= 2;
      continue;
    }
    const double h = std::log(sum_p) + beta * sum_dp / sum_p;  // entropy
    if (std::fabs(h - target) < 1e-5) break;
    if (h > target) {
      beta_lo = beta;
      beta = beta_hi > 1e11 ? beta * 2 : (beta + beta_hi) / 2;
    } else {
      beta_hi = beta;
      beta = (beta + beta_lo) / 2;
    }
  }
  double sum_p = 0.0;
  for (std::int64_t j = 0; j < n; ++j) sum_p += p_row[static_cast<std::size_t>(j)];
  if (sum_p > 0) {
    for (auto& v : p_row) v /= sum_p;
  }
}

}  // namespace

Tensor tsne(const Tensor& x, const TSNEConfig& cfg) {
  if (x.rank() != 2) throw std::invalid_argument("tsne: x must be 2-D");
  const auto n = x.dim(0);
  if (n < 5) throw std::invalid_argument("tsne: need at least 5 points");

  const Tensor d2 = pairwise_sq_dists(x);

  // Symmetrized joint affinities P. The per-row binary search is embarrassingly
  // parallel: each row block owns its scratch buffer and writes only its rows.
  std::vector<double> p(static_cast<std::size_t>(n * n), 0.0);
  {
    const double perp = std::min(cfg.perplexity, static_cast<double>(n - 1) / 3.0);
    runtime::parallel_for(
        0, n, runtime::grain_for(64 * n), [&](std::int64_t i0, std::int64_t i1) {
          std::vector<double> row(static_cast<std::size_t>(n));
          for (std::int64_t i = i0; i < i1; ++i) {
            row_affinities(d2, i, perp, row);
            for (std::int64_t j = 0; j < n; ++j) {
              p[static_cast<std::size_t>(i * n + j)] =
                  row[static_cast<std::size_t>(j)];
            }
          }
        });
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = i + 1; j < n; ++j) {
        const double s = (p[static_cast<std::size_t>(i * n + j)] +
                          p[static_cast<std::size_t>(j * n + i)]) /
                         (2.0 * n);
        p[static_cast<std::size_t>(i * n + j)] = std::max(s, 1e-12);
        p[static_cast<std::size_t>(j * n + i)] = std::max(s, 1e-12);
      }
      p[static_cast<std::size_t>(i * n + i)] = 1e-12;
    }
  }

  Rng rng(cfg.seed);
  Tensor y = randn({n, 2}, rng, 0.0f, 1e-2f);
  Tensor vel({n, 2});

  // Jacobi-style gradient descent: every iteration computes Q and all point
  // gradients from the same Y snapshot, then applies the updates. (The seed
  // loop updated points in place mid-sweep, Gauss-Seidel style, which cannot
  // be split across lanes; the snapshot form parallelizes and is
  // thread-count-deterministic — q_sum reduces over fixed-grain chunks in
  // ascending order, and each point's gradient reads only the snapshot.)
  std::vector<double> q(static_cast<std::size_t>(n * n));
  std::vector<double> grad(static_cast<std::size_t>(n * 2));
  const std::int64_t grain = runtime::grain_for(8 * n);
  for (std::int64_t iter = 0; iter < cfg.iterations; ++iter) {
    const double exag = iter < cfg.exaggeration_iters ? cfg.early_exaggeration : 1.0;

    // Student-t affinities Q (row-blocked; each block writes its own rows and
    // returns its partial sum, combined in ascending chunk order).
    const double q_sum = runtime::parallel_reduce(
        std::int64_t{0}, n, grain, 0.0,
        [&](std::int64_t i0, std::int64_t i1) {
          double acc = 0.0;
          for (std::int64_t i = i0; i < i1; ++i) {
            for (std::int64_t j = 0; j < n; ++j) {
              if (i == j) {
                q[static_cast<std::size_t>(i * n + j)] = 0.0;
                continue;
              }
              const double dy0 = y.at(i, 0) - y.at(j, 0);
              const double dy1 = y.at(i, 1) - y.at(j, 1);
              const double t = 1.0 / (1.0 + dy0 * dy0 + dy1 * dy1);
              q[static_cast<std::size_t>(i * n + j)] = t;
              acc += t;
            }
          }
          return acc;
        },
        [](double a, double b) { return a + b; });

    runtime::parallel_for(0, n, grain, [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) {
        double g0 = 0.0, g1 = 0.0;
        for (std::int64_t j = 0; j < n; ++j) {
          if (i == j) continue;
          const double t = q[static_cast<std::size_t>(i * n + j)];
          const double qij = std::max(t / q_sum, 1e-12);
          const double coeff =
              4.0 * (exag * p[static_cast<std::size_t>(i * n + j)] - qij) * t;
          g0 += coeff * (y.at(i, 0) - y.at(j, 0));
          g1 += coeff * (y.at(i, 1) - y.at(j, 1));
        }
        grad[static_cast<std::size_t>(2 * i)] = g0;
        grad[static_cast<std::size_t>(2 * i + 1)] = g1;
      }
    });

    runtime::parallel_for(0, n, grain, [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) {
        for (std::int64_t c = 0; c < 2; ++c) {
          float v = static_cast<float>(
              cfg.momentum * vel.at(i, c) -
              cfg.learning_rate * grad[static_cast<std::size_t>(2 * i + c)]);
          // Clamp per-step displacement: with early exaggeration the gradient
          // can momentarily explode and a single unbounded step destroys the
          // layout.
          const float step_cap = 25.0f;
          v = std::min(std::max(v, -step_cap), step_cap);
          vel.at(i, c) = v;
          y.at(i, c) += v;
        }
      }
    });
  }
  return y;
}

ClusterMetrics cluster_metrics(const Tensor& points,
                               const std::vector<std::int64_t>& labels) {
  if (points.rank() != 2) throw std::invalid_argument("cluster_metrics: 2-D");
  const auto n = points.dim(0);
  if (static_cast<std::int64_t>(labels.size()) != n) {
    throw std::invalid_argument("cluster_metrics: label count");
  }
  const Tensor d2 = pairwise_sq_dists(points);

  struct Partial {
    double intra_sum = 0.0, inter_sum = 0.0, sil_sum = 0.0;
    std::int64_t intra_n = 0, inter_n = 0;
  };
  const Partial acc = runtime::parallel_reduce(
      std::int64_t{0}, n, runtime::grain_for(8 * n), Partial{},
      [&](std::int64_t i0, std::int64_t i1) {
        Partial part;
        for (std::int64_t i = i0; i < i1; ++i) {
          double a_sum = 0.0, b_sum = 0.0;
          std::int64_t a_n = 0, b_n = 0;
          for (std::int64_t j = 0; j < n; ++j) {
            if (i == j) continue;
            const double d = std::sqrt(std::max(0.0f, d2.at(i, j)));
            if (labels[static_cast<std::size_t>(i)] ==
                labels[static_cast<std::size_t>(j)]) {
              a_sum += d;
              ++a_n;
            } else {
              b_sum += d;
              ++b_n;
            }
          }
          part.intra_sum += a_sum;
          part.intra_n += a_n;
          part.inter_sum += b_sum;
          part.inter_n += b_n;
          if (a_n > 0 && b_n > 0) {
            const double a = a_sum / a_n;
            const double b = b_sum / b_n;
            part.sil_sum += (b - a) / std::max(a, b);
          }
        }
        return part;
      },
      [](Partial a, Partial b) {
        a.intra_sum += b.intra_sum;
        a.inter_sum += b.inter_sum;
        a.sil_sum += b.sil_sum;
        a.intra_n += b.intra_n;
        a.inter_n += b.inter_n;
        return a;
      });

  ClusterMetrics m;
  m.mean_intra = acc.intra_n > 0 ? acc.intra_sum / acc.intra_n : 0.0;
  m.mean_inter = acc.inter_n > 0 ? acc.inter_sum / acc.inter_n : 0.0;
  m.separation_ratio = m.mean_intra > 1e-12 ? m.mean_inter / m.mean_intra : 0.0;
  m.silhouette = acc.sil_sum / static_cast<double>(n);
  return m;
}

}  // namespace ibrar::mi
