#pragma once
// Hilbert-Schmidt Independence Criterion (Gretton et al. 2005), the MI proxy
// the paper uses ("we use HSIC as an alternative plan for I(.)", Sec. 2.2).
//
// Biased estimator: HSIC(K, L) = tr(K H L H) / (m-1)^2 with H = I - 11^T/m.
//
// Both the plain and differentiable paths use fused centering: the trace and
// its gradient are assembled from row/column/grand sums of the Gram matrices
// (tr(K H L H) = <K, L> - rowsums/m - colsums/m + totals/m^2), so neither H
// nor a centered matrix is ever materialized and the O(m^3) centering matmuls
// of the textbook formulation reduce to O(m^2) sweeps.

#include "autograd/ops.hpp"
#include "mi/kernels.hpp"

namespace ibrar::mi {

/// HSIC from precomputed Gram matrices (plain, non-differentiable).
float hsic(const Tensor& kx, const Tensor& ky);

/// Differentiable HSIC from Gram matrix Vars.
ag::Var hsic(const ag::Var& kx, const ag::Var& ky);

/// Convenience: HSIC between row-sample matrices with Gaussian kernels.
/// Bandwidths default to the scaled-sigma rule used by HSIC-bottleneck work.
float hsic_gaussian(const Tensor& x, const Tensor& y, float sigma_x = -1.0f,
                    float sigma_y = -1.0f);

/// Normalized HSIC (CKA): HSIC(K,L)/sqrt(HSIC(K,K) HSIC(L,L)) in [0,1].
float cka(const Tensor& x, const Tensor& y);

}  // namespace ibrar::mi
