#include "mi/channel_score.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mi/hsic.hpp"
#include "runtime/parallel_for.hpp"
#include "tensor/ops.hpp"

namespace ibrar::mi {

std::vector<float> channel_label_scores(const Tensor& features,
                                        const std::vector<std::int64_t>& labels,
                                        std::int64_t num_classes) {
  if (features.rank() != 4 && features.rank() != 2) {
    throw std::invalid_argument("channel_label_scores: features must be NCHW or NC");
  }
  const auto n = features.dim(0);
  const auto c = features.dim(1);
  const std::int64_t spatial =
      features.rank() == 4 ? features.dim(2) * features.dim(3) : 1;

  // The label Gram is shared across channels; each channel then builds its
  // own Gram and HSIC score independently. That per-channel loop is
  // embarrassingly parallel, so it fans out over pool lanes: every lane owns
  // one gather buffer reused across the channels it draws, and the nested
  // kernels (median_sigma, gram_gaussian -> matmul_nt_sym -> gemm_packed)
  // run serially inline inside the region — the exact instruction sequence a
  // 1-lane run performs per channel — so scores are bit-identical at any
  // thread count. This is what keeps the serving telemetry's windowed
  // re-scoring affordable on a live worker.
  const Tensor y = one_hot(labels, num_classes);
  const Tensor ky = gram_gaussian(y, scaled_sigma(num_classes, 1.0f));

  std::vector<float> scores(static_cast<std::size_t>(c));
  const float* pf = features.data().data();
  runtime::parallel_for(0, c, 1, [&](std::int64_t c0, std::int64_t c1) {
    Tensor fc({n, spatial});
    for (std::int64_t ic = c0; ic < c1; ++ic) {
      for (std::int64_t i = 0; i < n; ++i) {
        std::copy_n(pf + (i * c + ic) * spatial, spatial,
                    fc.data().data() + i * spatial);
      }
      const float sigma = std::max(median_sigma(fc), 1e-3f);
      scores[static_cast<std::size_t>(ic)] = hsic(gram_gaussian(fc, sigma), ky);
    }
  });
  return scores;
}

Tensor mask_from_scores(const std::vector<float>& scores, float drop_fraction) {
  const auto c = static_cast<std::int64_t>(scores.size());
  Tensor mask({c}, 1.0f);
  if (drop_fraction <= 0.0f || c <= 1) return mask;

  auto drop = static_cast<std::int64_t>(
      std::llround(drop_fraction * static_cast<double>(c)));
  drop = std::max<std::int64_t>(drop, 1);
  drop = std::min(drop, c - 1);

  std::vector<std::int64_t> order(static_cast<std::size_t>(c));
  for (std::int64_t i = 0; i < c; ++i) order[static_cast<std::size_t>(i)] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::int64_t a, std::int64_t b) {
    return scores[static_cast<std::size_t>(a)] < scores[static_cast<std::size_t>(b)];
  });
  for (std::int64_t i = 0; i < drop; ++i) {
    mask[order[static_cast<std::size_t>(i)]] = 0.0f;
  }
  return mask;
}

}  // namespace ibrar::mi
