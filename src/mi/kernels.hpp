#pragma once
// Gaussian kernel Gram matrices — plain (Tensor) and differentiable (Var).

#include "autograd/ops.hpp"
#include "tensor/tensor.hpp"

namespace ibrar::mi {

/// Median heuristic bandwidth: sigma^2 = median(pairwise sq dists) / 2,
/// floored away from zero. Rows of `x` are samples.
///
/// When the number of pairs exceeds kMedianSigmaExactPairs the median is
/// estimated from a fixed seeded subsample of kMedianSigmaSamplePairs pairs
/// whose distances are computed directly (O(S*d) — no pairwise matrix is ever
/// materialized), so the per-channel bandwidth search inside
/// channel_label_scores drops from O(n^2*spatial) to O(S*spatial) per
/// channel. The subsample is deterministic (fixed seed, a function of n
/// only), so repeated calls on the same data give the same sigma.
float median_sigma(const Tensor& x);

/// The exact (pre-sampling) path: materializes all O(n^2) pairwise distances
/// and takes the true median. Kept as the reference the sampled estimate is
/// tolerance-tested against; median_sigma itself delegates here below the
/// pair threshold.
float median_sigma_exact(const Tensor& x);

/// Pair-count threshold up to which median_sigma is exact.
inline constexpr std::int64_t kMedianSigmaExactPairs = 8192;
/// Subsample size used above the threshold.
inline constexpr std::int64_t kMedianSigmaSamplePairs = 4096;

/// Bandwidth used by the HSIC-bottleneck line of work: sigma = mult*sqrt(d).
float scaled_sigma(std::int64_t feature_dim, float mult = 5.0f);

/// K_ij = exp(-||x_i - x_j||^2 / (2 sigma^2)), x is (m, d).
Tensor gram_gaussian(const Tensor& x, float sigma);

/// Differentiable version (gradient flows into x; sigma is a constant).
ag::Var gram_gaussian(const ag::Var& x, float sigma);

/// Linear kernel K = X X^T (differentiable); used for one-hot labels.
ag::Var gram_linear(const ag::Var& x);

}  // namespace ibrar::mi
