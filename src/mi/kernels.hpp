#pragma once
// Gaussian kernel Gram matrices — plain (Tensor) and differentiable (Var).

#include "autograd/ops.hpp"
#include "tensor/tensor.hpp"

namespace ibrar::mi {

/// Median heuristic bandwidth: sigma^2 = median(pairwise sq dists) / 2,
/// floored away from zero. Rows of `x` are samples.
float median_sigma(const Tensor& x);

/// Bandwidth used by the HSIC-bottleneck line of work: sigma = mult*sqrt(d).
float scaled_sigma(std::int64_t feature_dim, float mult = 5.0f);

/// K_ij = exp(-||x_i - x_j||^2 / (2 sigma^2)), x is (m, d).
Tensor gram_gaussian(const Tensor& x, float sigma);

/// Differentiable version (gradient flows into x; sigma is a constant).
ag::Var gram_gaussian(const ag::Var& x, float sigma);

/// Linear kernel K = X X^T (differentiable); used for one-hot labels.
ag::Var gram_linear(const ag::Var& x);

}  // namespace ibrar::mi
