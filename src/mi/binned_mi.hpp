#pragma once
// Binning-based mutual information estimator for the information-plane plot
// (paper Fig. 5), following Shwartz-Ziv & Tishby: activations are discretized
// into fixed bins; I(X;T) = H(T) (T is deterministic given X) and
// I(T;Y) = H(T) - H(T|Y), both in bits.

#include <vector>

#include "tensor/tensor.hpp"

namespace ibrar::mi {

struct IPPoint {
  double i_xt = 0.0;  ///< I(X;T) in bits (entropy of the binned code)
  double i_ty = 0.0;  ///< I(T;Y) in bits
};

/// Estimate the information-plane coordinates of a representation `t` (rows =
/// samples, flattened features) against integer labels, using `bins` uniform
/// bins spanning the empirical activation range.
IPPoint binned_mi(const Tensor& t, const std::vector<std::int64_t>& labels,
                  std::int64_t num_classes, std::int64_t bins = 30);

}  // namespace ibrar::mi
