#pragma once
// Binning-based mutual information estimator for the information-plane plot
// (paper Fig. 5), following Shwartz-Ziv & Tishby: activations are discretized
// into fixed bins; I(X;T) = H(T) (T is deterministic given X) and
// I(T;Y) = H(T) - H(T|Y), both in bits.
//
// The batch form scans once for the activation range and once to bin; the
// streaming form (StreamingBinnedMi) accumulates code counts chunk by chunk
// against a caller-pinned range, so the whole test set can be estimated from
// per-batch forward passes without concatenating activations. With the same
// range, chunked and batch results are identical (each sample's bin code
// depends only on its own values and the range).

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "tensor/tensor.hpp"

namespace ibrar::mi {

struct IPPoint {
  double i_xt = 0.0;  ///< I(X;T) in bits (entropy of the binned code)
  double i_ty = 0.0;  ///< I(T;Y) in bits
};

/// Chunk-by-chunk estimator with a pinned activation range [lo, hi].
class StreamingBinnedMi {
 public:
  StreamingBinnedMi(std::int64_t num_classes, std::int64_t bins, float lo,
                    float hi);

  /// One chunk of samples: t is (c, d), labels has length c.
  void add(const Tensor& t, const std::vector<std::int64_t>& labels);

  /// Information-plane coordinates of everything added so far.
  IPPoint value() const;

  std::int64_t samples() const { return total_; }

 private:
  std::int64_t num_classes_;
  std::int64_t bins_;
  float lo_;
  float range_;
  std::int64_t total_ = 0;
  std::unordered_map<std::uint64_t, std::int64_t> code_counts_;
  std::vector<std::unordered_map<std::uint64_t, std::int64_t>> per_class_;
  std::vector<std::int64_t> class_totals_;
};

/// Estimate the information-plane coordinates of a representation `t` (rows =
/// samples, flattened features) against integer labels, using `bins` uniform
/// bins spanning the empirical activation range.
IPPoint binned_mi(const Tensor& t, const std::vector<std::int64_t>& labels,
                  std::int64_t num_classes, std::int64_t bins = 30);

/// Range-pinned overload (the streaming core in one call): bins span [lo, hi]
/// instead of the empirical range.
IPPoint binned_mi(const Tensor& t, const std::vector<std::int64_t>& labels,
                  std::int64_t num_classes, std::int64_t bins, float lo,
                  float hi);

}  // namespace ibrar::mi
