#include "mi/binned_mi.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace ibrar::mi {
namespace {

double entropy_bits(const std::unordered_map<std::uint64_t, std::int64_t>& counts,
                    std::int64_t total) {
  double h = 0.0;
  for (const auto& [key, c] : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace

StreamingBinnedMi::StreamingBinnedMi(std::int64_t num_classes,
                                     std::int64_t bins, float lo, float hi)
    : num_classes_(num_classes),
      bins_(bins),
      lo_(lo),
      range_(std::max(hi - lo, 1e-9f)),
      per_class_(static_cast<std::size_t>(num_classes)),
      class_totals_(static_cast<std::size_t>(num_classes), 0) {
  if (num_classes < 1 || bins < 1) {
    throw std::invalid_argument("StreamingBinnedMi: need classes, bins >= 1");
  }
}

void StreamingBinnedMi::add(const Tensor& t,
                            const std::vector<std::int64_t>& labels) {
  if (t.rank() != 2) throw std::invalid_argument("StreamingBinnedMi: t must be 2-D");
  const auto n = t.dim(0);
  const auto d = t.dim(1);
  if (static_cast<std::int64_t>(labels.size()) != n) {
    throw std::invalid_argument("StreamingBinnedMi: label count mismatch");
  }
  // Validate the whole chunk before touching any accumulator state, so a bad
  // label cannot leave counts and total_ inconsistent for a caller that
  // catches the throw and keeps streaming.
  for (const auto y : labels) {
    if (y < 0 || y >= num_classes_) {
      throw std::out_of_range("StreamingBinnedMi: label out of range");
    }
  }
  for (std::int64_t i = 0; i < n; ++i) {
    // FNV-1a over the sample's bin indices: the code depends only on the
    // sample's own values and the pinned range, never on the chunking.
    std::uint64_t h = 1469598103934665603ull;
    for (std::int64_t j = 0; j < d; ++j) {
      const float v = t.at(i, j);
      auto b = static_cast<std::int64_t>((v - lo_) / range_ *
                                         static_cast<float>(bins_));
      b = std::min(std::max<std::int64_t>(b, 0), bins_ - 1);
      h ^= static_cast<std::uint64_t>(b + 1);
      h *= 1099511628211ull;
    }
    const auto y = labels[static_cast<std::size_t>(i)];
    code_counts_[h]++;
    per_class_[static_cast<std::size_t>(y)][h]++;
    class_totals_[static_cast<std::size_t>(y)]++;
  }
  total_ += n;
}

IPPoint StreamingBinnedMi::value() const {
  IPPoint p;
  if (total_ == 0) return p;
  p.i_xt = entropy_bits(code_counts_, total_);  // H(T); H(T|X)=0, T is deterministic
  double h_t_given_y = 0.0;
  for (std::int64_t y = 0; y < num_classes_; ++y) {
    const auto ny = class_totals_[static_cast<std::size_t>(y)];
    if (ny == 0) continue;
    const double py = static_cast<double>(ny) / static_cast<double>(total_);
    h_t_given_y += py * entropy_bits(per_class_[static_cast<std::size_t>(y)], ny);
  }
  p.i_ty = std::max(0.0, p.i_xt - h_t_given_y);
  return p;
}

IPPoint binned_mi(const Tensor& t, const std::vector<std::int64_t>& labels,
                  std::int64_t num_classes, std::int64_t bins, float lo,
                  float hi) {
  StreamingBinnedMi acc(num_classes, bins, lo, hi);
  acc.add(t, labels);
  return acc.value();
}

IPPoint binned_mi(const Tensor& t, const std::vector<std::int64_t>& labels,
                  std::int64_t num_classes, std::int64_t bins) {
  if (t.rank() != 2) throw std::invalid_argument("binned_mi: t must be 2-D");
  return binned_mi(t, labels, num_classes, bins, min_all(t), max_all(t));
}

}  // namespace ibrar::mi
