#include "mi/binned_mi.hpp"

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>

#include "tensor/ops.hpp"

namespace ibrar::mi {
namespace {

double entropy_bits(const std::unordered_map<std::uint64_t, std::int64_t>& counts,
                    std::int64_t total) {
  double h = 0.0;
  for (const auto& [key, c] : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace

IPPoint binned_mi(const Tensor& t, const std::vector<std::int64_t>& labels,
                  std::int64_t num_classes, std::int64_t bins) {
  if (t.rank() != 2) throw std::invalid_argument("binned_mi: t must be 2-D");
  const auto n = t.dim(0);
  const auto d = t.dim(1);
  if (static_cast<std::int64_t>(labels.size()) != n) {
    throw std::invalid_argument("binned_mi: label count mismatch");
  }

  const float lo = min_all(t);
  const float hi = max_all(t);
  const float range = std::max(hi - lo, 1e-9f);

  // Hash each sample's binned activation pattern (FNV-1a over bin indices).
  std::vector<std::uint64_t> codes(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    std::uint64_t h = 1469598103934665603ull;
    for (std::int64_t j = 0; j < d; ++j) {
      const float v = t.at(i, j);
      auto b = static_cast<std::int64_t>((v - lo) / range * static_cast<float>(bins));
      b = std::min(b, bins - 1);
      h ^= static_cast<std::uint64_t>(b + 1);
      h *= 1099511628211ull;
    }
    codes[static_cast<std::size_t>(i)] = h;
  }

  std::unordered_map<std::uint64_t, std::int64_t> code_counts;
  std::vector<std::unordered_map<std::uint64_t, std::int64_t>> per_class(
      static_cast<std::size_t>(num_classes));
  std::vector<std::int64_t> class_totals(static_cast<std::size_t>(num_classes), 0);
  for (std::int64_t i = 0; i < n; ++i) {
    code_counts[codes[static_cast<std::size_t>(i)]]++;
    const auto y = labels[static_cast<std::size_t>(i)];
    per_class.at(static_cast<std::size_t>(y))[codes[static_cast<std::size_t>(i)]]++;
    class_totals[static_cast<std::size_t>(y)]++;
  }

  IPPoint p;
  p.i_xt = entropy_bits(code_counts, n);  // H(T); H(T|X)=0 for deterministic T
  double h_t_given_y = 0.0;
  for (std::int64_t y = 0; y < num_classes; ++y) {
    const auto ny = class_totals[static_cast<std::size_t>(y)];
    if (ny == 0) continue;
    const double py = static_cast<double>(ny) / static_cast<double>(n);
    h_t_given_y += py * entropy_bits(per_class[static_cast<std::size_t>(y)], ny);
  }
  p.i_ty = std::max(0.0, p.i_xt - h_t_given_y);
  return p;
}

}  // namespace ibrar::mi
