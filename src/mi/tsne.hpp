#pragma once
// Exact O(n^2) t-SNE (van der Maaten & Hinton 2008) plus the cluster
// separation metrics the Fig. 3 reproduction reports. Small n (a few hundred
// feature vectors) keeps the quadratic cost trivial.

#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace ibrar::mi {

struct TSNEConfig {
  double perplexity = 20.0;
  std::int64_t iterations = 250;
  double learning_rate = 50.0;
  double momentum = 0.8;
  double early_exaggeration = 4.0;
  std::int64_t exaggeration_iters = 50;
  std::uint64_t seed = 3;
};

/// Embed rows of `x` (n, d) into (n, 2).
Tensor tsne(const Tensor& x, const TSNEConfig& cfg = {});

struct ClusterMetrics {
  double mean_intra = 0.0;       ///< mean distance to same-class points
  double mean_inter = 0.0;       ///< mean distance to other-class points
  double separation_ratio = 0.0; ///< inter / intra (higher = better separated)
  double silhouette = 0.0;       ///< mean silhouette coefficient in [-1, 1]
};

/// Separation statistics of an embedding (or raw features) under labels.
ClusterMetrics cluster_metrics(const Tensor& points,
                               const std::vector<std::int64_t>& labels);

}  // namespace ibrar::mi
