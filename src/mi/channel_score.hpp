#pragma once
// Per-channel dependence scores I(f_c, Y) for the Eq. (3) feature mask:
// each channel of the last conv output is scored by HSIC against the one-hot
// labels; the lowest-scoring fraction is masked out.

#include <vector>

#include "tensor/tensor.hpp"

namespace ibrar::mi {

/// HSIC(f_c, Y) per channel. `features` is (N, C, H, W) (or (N, C) for
/// fully-connected features); labels are integers in [0, num_classes).
std::vector<float> channel_label_scores(const Tensor& features,
                                        const std::vector<std::int64_t>& labels,
                                        std::int64_t num_classes);

/// Binary mask (C) keeping channels whose score is >= the drop_fraction
/// quantile. At least one channel is always dropped when drop_fraction > 0
/// (paper: "a small threshold to eliminate 5% of all feature channels"), and
/// at least one channel is always kept.
Tensor mask_from_scores(const std::vector<float>& scores, float drop_fraction);

}  // namespace ibrar::mi
