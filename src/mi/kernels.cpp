#include "mi/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "runtime/parallel_for.hpp"
#include "tensor/matmul.hpp"
#include "tensor/reduce.hpp"
#include "util/rng.hpp"

namespace ibrar::mi {

namespace {

/// sigma from a collection of squared distances (shared tail of both paths).
float sigma_from_sq_dists(std::vector<float>& vals) {
  if (vals.empty()) return 1.0f;
  std::nth_element(vals.begin(), vals.begin() + vals.size() / 2, vals.end());
  const float med = vals[vals.size() / 2];
  return std::sqrt(std::max(med / 2.0f, 1e-6f));
}

}  // namespace

float median_sigma_exact(const Tensor& x) {
  const Tensor d = pairwise_sq_dists(x);
  std::vector<float> vals;
  const auto m = d.dim(0);
  vals.reserve(static_cast<std::size_t>(m * (m - 1) / 2));
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = i + 1; j < m; ++j) vals.push_back(d.at(i, j));
  }
  return sigma_from_sq_dists(vals);
}

float median_sigma(const Tensor& x) {
  const auto m = x.dim(0);
  const std::int64_t pairs = m * (m - 1) / 2;
  if (pairs <= kMedianSigmaExactPairs) return median_sigma_exact(x);

  // Sampled median: draw a fixed-seed subsample of distinct-index pairs and
  // compute each squared distance directly from the rows — O(S*d) work and
  // O(S) memory, never the (m, m) matrix. The seed folds in m so the sample
  // is a pure function of the input shape: same data -> same sigma, and the
  // estimate is reproducible across runs and thread counts.
  const auto d = x.numel() / m;
  const float* px = x.data().data();
  Rng rng(0x5ed5u ^ static_cast<std::uint64_t>(m) * 0x9e3779b97f4a7c15ull);
  std::vector<float> vals;
  vals.reserve(static_cast<std::size_t>(kMedianSigmaSamplePairs));
  while (static_cast<std::int64_t>(vals.size()) < kMedianSigmaSamplePairs) {
    const std::int64_t i = rng.randint(0, m - 1);
    const std::int64_t j = rng.randint(0, m - 1);
    if (i == j) continue;
    const float* ri = px + i * d;
    const float* rj = px + j * d;
    float acc = 0.0f;
    for (std::int64_t t = 0; t < d; ++t) {
      const float diff = ri[t] - rj[t];
      acc += diff * diff;
    }
    vals.push_back(acc);
  }
  return sigma_from_sq_dists(vals);
}

float scaled_sigma(std::int64_t feature_dim, float mult) {
  return mult * std::sqrt(static_cast<float>(std::max<std::int64_t>(feature_dim, 1)));
}

Tensor gram_gaussian(const Tensor& x, float sigma) {
  // G = X X^T through the symmetric blocked GEMM (upper-triangle blocks into
  // arena tiles, mirrored), then one fused pass turns G into the kernel
  // matrix without materializing the distance matrix. The exp() calls
  // dominate Gram assembly for minibatch-sized m, so the fused pass also
  // exploits symmetry: each (i, j >= i) entry is evaluated once and mirrored,
  // halving the exp count of the dense sweep.
  const Tensor g = matmul_nt_sym(x);
  const auto m = g.dim(0);
  const float scale = -1.0f / (2.0f * sigma * sigma);
  Tensor k(g.shape());
  std::vector<float> diag(static_cast<std::size_t>(m));
  for (std::int64_t i = 0; i < m; ++i) diag[static_cast<std::size_t>(i)] = g.at(i, i);
  const float* pg = g.data().data();
  float* pk = k.data().data();
  // Work item u owns the row pair (u, m-1-u): the long tail of row u plus the
  // short tail of its mirror row sum to m+1 exp calls per item, so equal
  // contiguous chunks carry equal work (a plain row split would hand the
  // first lane ~2x the exp count of the last). Each row writes its own tail
  // (i, j >= i) plus column i of rows j > i; all row indices across items are
  // distinct, so writes stay race-free and every element's value is
  // independent of the partition.
  auto fill_row = [&](std::int64_t i) {
    const float ri = diag[static_cast<std::size_t>(i)];
    for (std::int64_t j = i; j < m; ++j) {
      const float d = std::max(
          ri + diag[static_cast<std::size_t>(j)] - 2.0f * pg[i * m + j], 0.0f);
      const float v = std::exp(d * scale);
      pk[i * m + j] = v;
      pk[j * m + i] = v;
    }
  };
  runtime::parallel_for(
      0, (m + 1) / 2, runtime::grain_for(16 * m),
      [&](std::int64_t u0, std::int64_t u1) {
        for (std::int64_t u = u0; u < u1; ++u) {
          fill_row(u);
          if (m - 1 - u != u) fill_row(m - 1 - u);
        }
      });
  return k;
}

ag::Var gram_gaussian(const ag::Var& x, float sigma) {
  // ||xi - xj||^2 = r_i + r_j - 2 x_i . x_j, assembled from differentiable ops
  // so the HSIC regularizer backpropagates into the activations.
  ag::Var rs = ag::sum_axis(ag::square(x), 1, /*keepdim=*/true);      // (m,1)
  ag::Var gram = ag::matmul(x, ag::transpose(x));                     // (m,m)
  ag::Var d = ag::sub(ag::add(rs, ag::transpose(rs)),
                      ag::mul_scalar(gram, 2.0f));
  return ag::exp(ag::mul_scalar(d, -1.0f / (2.0f * sigma * sigma)));
}

ag::Var gram_linear(const ag::Var& x) {
  return ag::matmul(x, ag::transpose(x));
}

}  // namespace ibrar::mi
