#include "mi/kernels.hpp"

#include <algorithm>
#include <cmath>

#include "runtime/parallel_for.hpp"
#include "tensor/reduce.hpp"

namespace ibrar::mi {

float median_sigma(const Tensor& x) {
  const Tensor d = pairwise_sq_dists(x);
  std::vector<float> vals;
  const auto m = d.dim(0);
  vals.reserve(static_cast<std::size_t>(m * (m - 1) / 2));
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = i + 1; j < m; ++j) vals.push_back(d.at(i, j));
  }
  if (vals.empty()) return 1.0f;
  std::nth_element(vals.begin(), vals.begin() + vals.size() / 2, vals.end());
  const float med = vals[vals.size() / 2];
  return std::sqrt(std::max(med / 2.0f, 1e-6f));
}

float scaled_sigma(std::int64_t feature_dim, float mult) {
  return mult * std::sqrt(static_cast<float>(std::max<std::int64_t>(feature_dim, 1)));
}

Tensor gram_gaussian(const Tensor& x, float sigma) {
  const Tensor d = pairwise_sq_dists(x);
  const float scale = -1.0f / (2.0f * sigma * sigma);
  Tensor k(d.shape());
  const auto pd = d.data();
  auto pk = k.data();
  // The m^2 exp() calls dominate Gram assembly for minibatch-sized m.
  runtime::parallel_for(
      0, static_cast<std::int64_t>(pd.size()), runtime::kElementwiseGrain / 8,
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          const auto u = static_cast<std::size_t>(i);
          pk[u] = std::exp(pd[u] * scale);
        }
      });
  return k;
}

ag::Var gram_gaussian(const ag::Var& x, float sigma) {
  // ||xi - xj||^2 = r_i + r_j - 2 x_i . x_j, assembled from differentiable ops
  // so the HSIC regularizer backpropagates into the activations.
  ag::Var rs = ag::sum_axis(ag::square(x), 1, /*keepdim=*/true);      // (m,1)
  ag::Var gram = ag::matmul(x, ag::transpose(x));                     // (m,m)
  ag::Var d = ag::sub(ag::add(rs, ag::transpose(rs)),
                      ag::mul_scalar(gram, 2.0f));
  return ag::exp(ag::mul_scalar(d, -1.0f / (2.0f * sigma * sigma)));
}

ag::Var gram_linear(const ag::Var& x) {
  return ag::matmul(x, ag::transpose(x));
}

}  // namespace ibrar::mi
