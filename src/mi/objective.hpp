#pragma once
// The IB regularizer of paper Eq. (1)/(2):
//   alpha * sum_l I(X, T_l)  -  beta * sum_l I(Y, T_l)
// with I(.) realized as Gaussian-kernel HSIC over a minibatch. Shared by the
// IB-RAR trainer (src/core) and the adaptive white-box attack (Sec. A.2),
// which maximizes the same quantity.

#include <vector>

#include "autograd/ops.hpp"
#include "mi/hsic.hpp"

namespace ibrar::mi {

struct IBObjectiveConfig {
  float alpha = 1.0f;                      ///< weight on sum_l I(X, T_l)
  float beta = 0.1f;                       ///< weight on sum_l I(Y, T_l)
  std::vector<std::size_t> layer_indices;  ///< taps to include (empty = all)
  float sigma_mult = 5.0f;                 ///< bandwidth rule for X and T
  float sigma_mult_y = 1.0f;               ///< bandwidth rule for labels
};

/// Differentiable Eq. (1) regularizer value for one minibatch.
/// `x` is the (possibly requires-grad) input batch; `taps` the hidden-layer
/// activations; `labels` the integer targets. Gradients flow into x and taps.
ag::Var ib_objective(const ag::Var& x, const std::vector<ag::Var>& taps,
                     const std::vector<std::int64_t>& labels,
                     std::int64_t num_classes, const IBObjectiveConfig& cfg);

/// The two sums separately (for logging / the Fig. 5 style diagnostics):
/// first = sum_l HSIC(X, T_l), second = sum_l HSIC(Y, T_l).
std::pair<float, float> ib_objective_terms(const Tensor& x,
                                           const std::vector<Tensor>& taps,
                                           const std::vector<std::int64_t>& labels,
                                           std::int64_t num_classes,
                                           const IBObjectiveConfig& cfg);

}  // namespace ibrar::mi
