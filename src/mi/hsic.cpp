#include "mi/hsic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "runtime/parallel_for.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"

namespace ibrar::mi {
namespace {

/// Center a Gram matrix: H K H with H = I - 11^T/m.
Tensor center(const Tensor& k) {
  const auto m = k.dim(0);
  // Row means, column means, grand mean: HKH = K - rowmean - colmean + grand.
  // Rows and columns sum independently (each in ascending index order) and
  // the grand total combines the row sums in index order, so the result is
  // the same for any pool size.
  Tensor out(k.shape());
  std::vector<double> row_mean(static_cast<std::size_t>(m), 0.0);
  std::vector<double> col_mean(static_cast<std::size_t>(m), 0.0);
  const std::int64_t grain = runtime::grain_for(m);
  runtime::parallel_for(0, m, grain, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      double s = 0.0;
      for (std::int64_t j = 0; j < m; ++j) s += k.at(i, j);
      row_mean[static_cast<std::size_t>(i)] = s;
    }
  });
  runtime::parallel_for(0, m, grain, [&](std::int64_t j0, std::int64_t j1) {
    for (std::int64_t j = j0; j < j1; ++j) {
      double s = 0.0;
      for (std::int64_t i = 0; i < m; ++i) s += k.at(i, j);
      col_mean[static_cast<std::size_t>(j)] = s;
    }
  });
  double grand = 0.0;
  for (const auto v : row_mean) grand += v;
  for (auto& v : row_mean) v /= m;
  for (auto& v : col_mean) v /= m;
  grand /= double(m) * m;
  runtime::parallel_for(0, m, grain, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      for (std::int64_t j = 0; j < m; ++j) {
        out.at(i, j) = static_cast<float>(k.at(i, j) -
                                          row_mean[static_cast<std::size_t>(i)] -
                                          col_mean[static_cast<std::size_t>(j)] +
                                          grand);
      }
    }
  });
  return out;
}

}  // namespace

float hsic(const Tensor& kx, const Tensor& ky) {
  if (kx.rank() != 2 || kx.dim(0) != kx.dim(1) || !(kx.shape() == ky.shape())) {
    throw std::invalid_argument("hsic: Gram matrices must be square and equal");
  }
  const auto m = kx.dim(0);
  if (m < 2) return 0.0f;
  const Tensor ck = center(kx);
  // tr(HKxH Ky) = sum_ij (HKxH)_ij (Ky)_ji; both symmetric -> elementwise dot.
  const float tr = dot(ck, ky);
  const float denom = static_cast<float>((m - 1)) * static_cast<float>(m - 1);
  return tr / denom;
}

ag::Var hsic(const ag::Var& kx, const ag::Var& ky) {
  const auto m = kx.shape()[0];
  if (m < 2) return ag::Var::constant(Tensor::scalar(0.0f));
  // H as an explicit constant matrix: small m (a minibatch) keeps this cheap.
  Tensor h = Tensor::eye(m);
  const float inv_m = 1.0f / static_cast<float>(m);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < m; ++j) h.at(i, j) -= inv_m;
  }
  ag::Var hv = ag::Var::constant(h);
  ag::Var centered = ag::matmul(ag::matmul(hv, kx), hv);
  ag::Var tr = ag::sum(ag::mul(centered, ky));
  const float denom = static_cast<float>((m - 1)) * static_cast<float>(m - 1);
  return ag::mul_scalar(tr, 1.0f / denom);
}

float hsic_gaussian(const Tensor& x, const Tensor& y, float sigma_x,
                    float sigma_y) {
  const float sx = sigma_x > 0 ? sigma_x : scaled_sigma(x.dim(1));
  const float sy = sigma_y > 0 ? sigma_y : scaled_sigma(y.dim(1));
  return hsic(gram_gaussian(x, sx), gram_gaussian(y, sy));
}

float cka(const Tensor& x, const Tensor& y) {
  const Tensor kx = gram_gaussian(x, scaled_sigma(x.dim(1)));
  const Tensor ky = gram_gaussian(y, scaled_sigma(y.dim(1)));
  const float hxy = hsic(kx, ky);
  const float hxx = hsic(kx, kx);
  const float hyy = hsic(ky, ky);
  const float denom = std::sqrt(std::max(hxx * hyy, 1e-20f));
  return hxy / denom;
}

}  // namespace ibrar::mi
