#include "mi/hsic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "runtime/parallel_for.hpp"

namespace ibrar::mi {
namespace {

/// Row sums, column sums, and the grand total of a square matrix — everything
/// H K H = K - rowmean - colmean + grand needs, without materializing the
/// centered matrix. Rows and columns each sum in ascending index order inside
/// fixed-grain chunks, so the result is the same at any pool size.
struct GramSums {
  std::vector<double> row;  ///< row[i]   = sum_j K(i, j)
  std::vector<double> col;  ///< col[j]   = sum_i K(i, j)
  double total = 0.0;       ///< sum_ij K(i, j)
};

GramSums gram_sums(const Tensor& k) {
  const auto m = k.dim(0);
  GramSums s;
  s.row.assign(static_cast<std::size_t>(m), 0.0);
  s.col.assign(static_cast<std::size_t>(m), 0.0);
  const float* pk = k.data().data();
  const std::int64_t grain = runtime::grain_for(m);
  runtime::parallel_for(0, m, grain, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      double acc = 0.0;
      const float* row = pk + i * m;
      for (std::int64_t j = 0; j < m; ++j) acc += row[j];
      s.row[static_cast<std::size_t>(i)] = acc;
    }
  });
  runtime::parallel_for(0, m, grain, [&](std::int64_t j0, std::int64_t j1) {
    for (std::int64_t j = j0; j < j1; ++j) {
      double acc = 0.0;
      for (std::int64_t i = 0; i < m; ++i) acc += pk[i * m + j];
      s.col[static_cast<std::size_t>(j)] = acc;
    }
  });
  for (const auto v : s.row) s.total += v;
  return s;
}

/// tr((H Kx H) Ky^T) = sum_ij (H Kx H)_ij Ky_ij, assembled from the sums:
///   sum_ij Kx_ij Ky_ij - (1/m) sum_i rowx_i rowy_i - (1/m) sum_j colx_j coly_j
///   + totalx * totaly / m^2.
/// No centered matrix is ever formed; the only O(m^2) work is the elementwise
/// dot, reduced over fixed-grain row chunks in ascending order.
double centered_trace(const Tensor& kx, const Tensor& ky, const GramSums& sx,
                      const GramSums& sy) {
  const auto m = kx.dim(0);
  const float* px = kx.data().data();
  const float* py = ky.data().data();
  const double dot = runtime::parallel_reduce(
      std::int64_t{0}, m, runtime::grain_for(m), 0.0,
      [&](std::int64_t i0, std::int64_t i1) {
        double acc = 0.0;
        for (std::int64_t u = i0 * m; u < i1 * m; ++u) {
          acc += static_cast<double>(px[u]) * static_cast<double>(py[u]);
        }
        return acc;
      },
      [](double a, double b) { return a + b; });
  double row_dot = 0.0, col_dot = 0.0;
  for (std::int64_t i = 0; i < m; ++i) {
    row_dot += sx.row[static_cast<std::size_t>(i)] * sy.row[static_cast<std::size_t>(i)];
    col_dot += sx.col[static_cast<std::size_t>(i)] * sy.col[static_cast<std::size_t>(i)];
  }
  const double dm = static_cast<double>(m);
  return dot - row_dot / dm - col_dot / dm + sx.total * sy.total / (dm * dm);
}

void check_grams(const Tensor& kx, const Tensor& ky) {
  if (kx.rank() != 2 || kx.dim(0) != kx.dim(1) || !(kx.shape() == ky.shape())) {
    throw std::invalid_argument("hsic: Gram matrices must be square and equal");
  }
}

/// g * (H A H) built directly from precomputed sums: the gradient of the
/// fused trace with respect to the *other* Gram matrix. O(m^2), no GEMM,
/// no H.
Tensor centered_scaled(const Tensor& a, const GramSums& s, float g) {
  const auto m = a.dim(0);
  const double dm = static_cast<double>(m);
  const double grand = s.total / (dm * dm);
  Tensor out(a.shape());
  const float* pa = a.data().data();
  float* po = out.data().data();
  runtime::parallel_for(
      0, m, runtime::grain_for(m), [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          const double ri = s.row[static_cast<std::size_t>(i)] / dm;
          for (std::int64_t j = 0; j < m; ++j) {
            po[i * m + j] = g * static_cast<float>(
                                    pa[i * m + j] -
                                    s.col[static_cast<std::size_t>(j)] / dm -
                                    ri + grand);
          }
        }
      });
  return out;
}

}  // namespace

float hsic(const Tensor& kx, const Tensor& ky) {
  check_grams(kx, ky);
  const auto m = kx.dim(0);
  if (m < 2) return 0.0f;
  const GramSums sx = gram_sums(kx);
  const GramSums sy = gram_sums(ky);
  const double denom = static_cast<double>(m - 1) * static_cast<double>(m - 1);
  return static_cast<float>(centered_trace(kx, ky, sx, sy) / denom);
}

ag::Var hsic(const ag::Var& kx, const ag::Var& ky) {
  check_grams(kx.value(), ky.value());
  const auto m = kx.shape()[0];
  if (m < 2) return ag::Var::constant(Tensor::scalar(0.0f));
  const float inv_denom =
      1.0f / (static_cast<float>(m - 1) * static_cast<float>(m - 1));
  // Fused forward (same path as the plain overload) with a closed-form
  // backward: d tr((H Kx H) Ky^T)/d Kx = H Ky H and symmetrically for Ky,
  // both assembled from row/column/grand sums — the explicit H matrix and the
  // two O(m^3) centering matmuls of the old graph are gone from both passes.
  GramSums sx = gram_sums(kx.value());
  GramSums sy = gram_sums(ky.value());
  const float tr = static_cast<float>(
      centered_trace(kx.value(), ky.value(), sx, sy) * inv_denom);
  // The closure keeps the forward's sums (2m doubles each) so backward never
  // re-sweeps the Gram matrices it already summed.
  return ag::make_op(
      Tensor::scalar(tr), {kx, ky},
      [inv_denom, sx = std::move(sx), sy = std::move(sy)](ag::Node& n) {
        const float g = n.grad.item() * inv_denom;
        if (n.parents[0]->requires_grad) {
          n.parents[0]->accumulate(centered_scaled(n.parents[1]->value, sy, g));
        }
        if (n.parents[1]->requires_grad) {
          n.parents[1]->accumulate(centered_scaled(n.parents[0]->value, sx, g));
        }
      });
}

float hsic_gaussian(const Tensor& x, const Tensor& y, float sigma_x,
                    float sigma_y) {
  const float sx = sigma_x > 0 ? sigma_x : scaled_sigma(x.dim(1));
  const float sy = sigma_y > 0 ? sigma_y : scaled_sigma(y.dim(1));
  return hsic(gram_gaussian(x, sx), gram_gaussian(y, sy));
}

float cka(const Tensor& x, const Tensor& y) {
  const Tensor kx = gram_gaussian(x, scaled_sigma(x.dim(1)));
  const Tensor ky = gram_gaussian(y, scaled_sigma(y.dim(1)));
  const float hxy = hsic(kx, ky);
  const float hxx = hsic(kx, kx);
  const float hyy = hsic(ky, ky);
  const float denom = std::sqrt(std::max(hxx * hyy, 1e-20f));
  return hxy / denom;
}

}  // namespace ibrar::mi
