#include "mi/objective.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace ibrar::mi {
namespace {

std::vector<std::size_t> resolve_layers(const IBObjectiveConfig& cfg,
                                        std::size_t num_taps) {
  if (cfg.layer_indices.empty()) {
    std::vector<std::size_t> all(num_taps);
    for (std::size_t i = 0; i < num_taps; ++i) all[i] = i;
    return all;
  }
  for (const auto i : cfg.layer_indices) {
    if (i >= num_taps) throw std::out_of_range("ib_objective: layer index");
  }
  return cfg.layer_indices;
}

}  // namespace

ag::Var ib_objective(const ag::Var& x, const std::vector<ag::Var>& taps,
                     const std::vector<std::int64_t>& labels,
                     std::int64_t num_classes, const IBObjectiveConfig& cfg) {
  const auto layers = resolve_layers(cfg, taps.size());

  const ag::Var x2 = ag::flatten2d(x);
  const ag::Var kx = gram_gaussian(x2, scaled_sigma(x2.shape()[1], cfg.sigma_mult));

  const Tensor y = one_hot(labels, num_classes);
  const ag::Var ky = ag::Var::constant(
      gram_gaussian(y, scaled_sigma(num_classes, cfg.sigma_mult_y)));

  ag::Var total = ag::Var::constant(Tensor::scalar(0.0f));
  for (const auto li : layers) {
    const ag::Var t2 = ag::flatten2d(taps[li]);
    const ag::Var kt =
        gram_gaussian(t2, scaled_sigma(t2.shape()[1], cfg.sigma_mult));
    if (cfg.alpha != 0.0f) {
      total = ag::add(total, ag::mul_scalar(hsic(kx, kt), cfg.alpha));
    }
    if (cfg.beta != 0.0f) {
      total = ag::sub(total, ag::mul_scalar(hsic(ky, kt), cfg.beta));
    }
  }
  return total;
}

std::pair<float, float> ib_objective_terms(const Tensor& x,
                                           const std::vector<Tensor>& taps,
                                           const std::vector<std::int64_t>& labels,
                                           std::int64_t num_classes,
                                           const IBObjectiveConfig& cfg) {
  const auto layers = resolve_layers(cfg, taps.size());
  const Tensor x2 = x.reshape({x.dim(0), x.numel() / x.dim(0)});
  const Tensor kx = gram_gaussian(x2, scaled_sigma(x2.dim(1), cfg.sigma_mult));
  const Tensor y = one_hot(labels, num_classes);
  const Tensor ky = gram_gaussian(y, scaled_sigma(num_classes, cfg.sigma_mult_y));

  float sx = 0.0f, sy = 0.0f;
  for (const auto li : layers) {
    const Tensor t2 = taps[li].reshape({taps[li].dim(0),
                                        taps[li].numel() / taps[li].dim(0)});
    const Tensor kt = gram_gaussian(t2, scaled_sigma(t2.dim(1), cfg.sigma_mult));
    sx += hsic(kx, kt);
    sy += hsic(ky, kt);
  }
  return {sx, sy};
}

}  // namespace ibrar::mi
