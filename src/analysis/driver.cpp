#include "analysis/driver.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "attacks/registry.hpp"
#include "mi/channel_score.hpp"
#include "mi/streaming.hpp"
#include "tensor/ops.hpp"
#include "train/hbar.hpp"
#include "train/mart.hpp"
#include "train/trades.hpp"
#include "train/vib.hpp"
#include "util/stopwatch.hpp"

namespace ibrar::analysis {

train::ObjectivePtr make_base_objective(const std::string& name,
                                        const attacks::AttackConfig& inner,
                                        models::TapClassifier& model) {
  if (name == "CE" || name == "plain") return std::make_shared<train::CEObjective>();
  if (name == "PGD") return std::make_shared<train::PGDATObjective>(inner);
  if (name == "TRADES") return std::make_shared<train::TRADESObjective>(inner);
  if (name == "MART") return std::make_shared<train::MARTObjective>(inner);
  if (name == "HBaR") return std::make_shared<train::HBaRObjective>();
  if (name == "VIB") return std::make_shared<train::VIBObjective>(model);
  throw std::invalid_argument(
      "unknown objective " + name +
      " (expected CE|plain|PGD|TRADES|MART|HBaR|VIB)");
}

models::TapClassifierPtr train_model(const models::ModelSpec& model_spec,
                                     const data::SyntheticData& data,
                                     const TrainSpec& spec, std::uint64_t seed,
                                     std::vector<train::EpochStats>* history,
                                     const data::Dataset* test,
                                     attacks::Attack* eval_attack,
                                     std::int64_t eval_adv_samples) {
  Rng rng(seed);
  auto model = models::make_model(model_spec, rng);
  std::vector<train::EpochStats> all_stats;
  auto tc = spec.train;

  if (spec.mi_warm_start_epochs > 0) {
    // Paper A.3: "we train the network with our MI loss method at the first
    // epoch to jump out of the loop".
    auto warm = std::make_shared<core::IBRARObjective>(nullptr, spec.mi);
    auto warm_tc = tc;
    warm_tc.epochs = std::min(spec.mi_warm_start_epochs, tc.epochs);
    train::Trainer warm_trainer(model, warm, warm_tc);
    auto h = warm_trainer.fit(data.train, test, eval_attack, eval_adv_samples);
    all_stats.insert(all_stats.end(), h.begin(), h.end());
    tc.epochs -= warm_tc.epochs;
  }

  if (tc.epochs > 0) {
    train::ObjectivePtr obj;
    // "plain" + IB-RAR means the MI loss alone carries the regularization
    // (the CE term reuses the tapped forward); any other base is wrapped.
    if (spec.ibrar && (spec.base == "plain" || spec.base == "CE")) {
      obj = std::make_shared<core::IBRARObjective>(nullptr, spec.mi);
    } else if (spec.ibrar) {
      obj = std::make_shared<core::IBRARObjective>(
          make_base_objective(spec.base, spec.inner, *model), spec.mi);
    } else {
      obj = make_base_objective(spec.base, spec.inner, *model);
    }
    train::Trainer trainer(model, obj, tc);
    if (spec.ibrar) {
      trainer.epoch_hook =
          core::make_mask_hook(core::FeatureMaskConfig{}, data.train);
    }
    auto h = trainer.fit(data.train, test, eval_attack, eval_adv_samples);
    all_stats.insert(all_stats.end(), h.begin(), h.end());
  }

  if (history != nullptr) *history = std::move(all_stats);
  model->set_training(false);
  return model;
}

StepSweep attack_step_sweep(models::TapClassifier& model,
                            const data::Dataset& ds, const std::string& attack,
                            const std::vector<std::int64_t>& steps,
                            const attacks::AttackConfig& defaults,
                            std::int64_t batch, std::int64_t max_samples) {
  StepSweep sweep;
  sweep.attack = attack;
  sweep.steps = steps;
  for (const auto st : steps) {
    attacks::AttackConfig cfg = defaults;
    cfg.steps = st;
    const auto atk = attacks::make(attack, cfg);
    Stopwatch sw;
    sweep.robust_acc.push_back(
        train::evaluate_adversarial(model, ds, *atk, batch, max_samples));
    sweep.seconds.push_back(sw.seconds());
  }
  return sweep;
}

ClusterReport cluster_report(const TapDump& dump, std::size_t tap_index,
                             const mi::TSNEConfig& cfg) {
  if (tap_index >= dump.taps.size()) {
    throw std::out_of_range("cluster_report: tap index");
  }
  ClusterReport rep;
  const Tensor& feats = dump.taps[tap_index];
  rep.feature = mi::cluster_metrics(feats, dump.labels);
  rep.embedding_points = mi::tsne(feats, cfg);
  rep.embedding = mi::cluster_metrics(rep.embedding_points, dump.labels);
  return rep;
}

namespace {

/// Contiguous row slice [begin, end) of a 2-D tensor (one block copy).
Tensor row_slice(const Tensor& t, std::int64_t begin, std::int64_t end) {
  const auto d = t.dim(1);
  Tensor out({end - begin, d});
  std::memcpy(out.data().data(), t.data().data() + begin * d,
              sizeof(float) * static_cast<std::size_t>((end - begin) * d));
  return out;
}

}  // namespace

InfoPlane info_plane(const TapDump& dump, std::vector<std::size_t> layers,
                     std::int64_t num_classes, const InfoPlaneConfig& cfg) {
  if (layers.empty()) {
    layers.resize(dump.taps.size());
    for (std::size_t i = 0; i < layers.size(); ++i) layers[i] = i;
  }
  for (const auto li : layers) {
    if (li >= dump.taps.size()) throw std::out_of_range("info_plane: layer index");
  }
  const Tensor y = one_hot(dump.labels, num_classes);
  const float sig_x = mi::scaled_sigma(dump.inputs.dim(1), cfg.sigma_mult);
  const float sig_y = mi::scaled_sigma(num_classes, cfg.sigma_mult_y);

  // Gram-level chunk loop: per chunk, build the X / Y / tap Grams once each
  // and reuse them across both HSIC pairs (the estimator-level convenience
  // wrappers would rebuild the tap Gram for I(X;T) and again for I(Y;T), and
  // the X Gram once per layer). Per-chunk HSICs average sample-weighted,
  // exactly like mi::StreamingHsic; chunk <= 0 is one chunk == the plain
  // batch estimator.
  const auto n = dump.size();
  const std::int64_t chunk = cfg.chunk > 0 && cfg.chunk < n ? cfg.chunk : n;
  InfoPlane plane;
  plane.layer.reserve(layers.size());
  for (const auto li : layers) plane.layer.push_back(dump.tap_names[li]);
  std::vector<double> wxt(layers.size(), 0.0), wty(layers.size(), 0.0);
  std::int64_t samples = 0;
  for (std::int64_t b = 0; b < n; b += chunk) {
    const std::int64_t e = std::min(n, b + chunk);
    if (e - b < 2) break;  // a trailing single row carries no pair information
    const double w = static_cast<double>(e - b);
    const Tensor kx = mi::gram_gaussian(row_slice(dump.inputs, b, e), sig_x);
    const Tensor ky = mi::gram_gaussian(row_slice(y, b, e), sig_y);
    for (std::size_t i = 0; i < layers.size(); ++i) {
      const Tensor& t = dump.taps[layers[i]];
      const Tensor kt = mi::gram_gaussian(
          row_slice(t, b, e), mi::scaled_sigma(t.dim(1), cfg.sigma_mult));
      wxt[i] += w * mi::hsic(kx, kt);
      wty[i] += w * mi::hsic(ky, kt);
    }
    samples += e - b;
  }
  for (std::size_t i = 0; i < layers.size(); ++i) {
    plane.i_xt.push_back(samples > 0 ? wxt[i] / samples : 0.0);
    plane.i_ty.push_back(samples > 0 ? wty[i] / samples : 0.0);
  }
  return plane;
}

std::vector<float> last_conv_channel_scores(const TapDump& dump,
                                            const models::TapClassifier& model,
                                            std::int64_t num_classes) {
  const std::size_t idx = model.last_conv_tap_index();
  // The model's tap index only addresses a full (unfiltered) capture.
  if (dump.tap_names != model.tap_names() || idx >= dump.taps.size()) {
    throw std::invalid_argument(
        "last_conv_channel_scores: dump must be a full capture of this model");
  }
  const Tensor feats = dump.taps[idx].reshape(dump.tap_shapes[idx]);
  return mi::channel_label_scores(feats, dump.labels, num_classes);
}

}  // namespace ibrar::analysis
