#pragma once
// One-pass activation capture: run a model over a dataset in batches (eval
// mode, no autograd) and collect every tap as a flattened (n, d_l) matrix
// plus inputs, logits, predictions, and labels. The figure benches
// (bench_fig2-6) and the ibrar_analyze CLI all used to hand-roll this loop;
// they now share this one, and the streaming MI estimators consume the dump
// chunk by chunk.

#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "models/classifier.hpp"

namespace ibrar::analysis {

/// Everything one tapped sweep over a dataset produces.
struct TapDump {
  std::vector<std::string> tap_names;   ///< copy of model.tap_names()
  std::vector<Tensor> taps;             ///< per tap: (n, d_l), row-flattened
  std::vector<Shape> tap_shapes;        ///< original shapes, dim 0 = n (so a
                                        ///< conv tap can be viewed as NCHW
                                        ///< again, e.g. for channel scoring)
  Tensor inputs;                        ///< (n, C*H*W) flattened inputs
  Tensor logits;                        ///< (n, num_classes)
  std::vector<std::int64_t> labels;     ///< length n
  std::vector<std::int64_t> preds;      ///< argmax over logits, length n
  double accuracy = 0.0;                ///< clean accuracy over the n rows

  std::int64_t size() const { return inputs.rank() == 2 ? inputs.dim(0) : 0; }
};

/// Capture taps for (at most `max_samples` of, <= 0 = all) `ds`, batched by
/// `batch`. The sweep rides the model's strictly-const eval forward
/// (TapClassifier::eval_forward_with_taps), so it always computes eval
/// semantics WITHOUT touching the model: no train/eval mode flip, no RNG
/// draws, no buffer writes. A training-time caller (e.g. the fig5 batch hook)
/// keeps its training flag untouched, and any number of captures can run
/// concurrently with each other and with serving forwards on one shared
/// model — the contract the multi-worker telemetry path relies on.
/// Deterministic: batches walk the dataset in order, so two captures of the
/// same model/dataset are bit-identical.
///
/// A non-empty `tap_indices` keeps only those taps (dump.tap_names/taps/
/// tap_shapes are then aligned to the selection, in the given order) — the
/// cheap form for callers like the Fig. 5 recording hook that probe one
/// layer per training batch and should not copy every tap.
TapDump capture_taps(const models::TapClassifier& model,
                     const data::Dataset& ds, std::int64_t max_samples = -1,
                     std::int64_t batch = 100,
                     const std::vector<std::size_t>& tap_indices = {});

}  // namespace ibrar::analysis
