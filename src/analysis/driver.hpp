#pragma once
// Unified analysis driver behind the paper's figure reproductions.
//
// One trained model + one captured TapDump is enough to emit every Fig. 2-6
// artifact: robust-accuracy step sweeps (Fig. 2), t-SNE cluster structure of
// a tap (Fig. 3), convergence traces (Fig. 4, from training history),
// information-plane HSIC coordinates per layer (Fig. 5, streamed in chunks),
// and the Eq. (3) channel scores. bench_fig2-6 and the ibrar_analyze CLI are
// thin compositions over these; bench/common.hpp's training helpers delegate
// here too, so the objective wiring lives in exactly one place.

#include <string>
#include <vector>

#include "analysis/capture.hpp"
#include "core/ibrar.hpp"
#include "data/synthetic.hpp"
#include "mi/tsne.hpp"
#include "models/registry.hpp"
#include "train/evaluate.hpp"
#include "train/trainer.hpp"

namespace ibrar::analysis {

// ---- training ---------------------------------------------------------------

/// Base objective by name: "CE" | "PGD" | "TRADES" | "MART" | "HBaR" | "VIB";
/// throws std::invalid_argument (listing the choices) for anything else.
train::ObjectivePtr make_base_objective(const std::string& name,
                                        const attacks::AttackConfig& inner,
                                        models::TapClassifier& model);

/// Everything that defines one training run of one method.
struct TrainSpec {
  std::string base = "CE";            ///< base objective name ("plain" == "CE")
  bool ibrar = false;                 ///< wrap with the IB-RAR MI loss + mask
  core::MILossConfig mi;              ///< used when ibrar
  attacks::AttackConfig inner;        ///< inner maximization for AT objectives
  train::TrainConfig train;
  /// Paper A.3 warm start: train this many initial epochs with the plain
  /// IB-RAR MI objective before switching to `base` (Fig. 4's "jump out of
  /// the majority-class loop"); 0 = off. Warm-start epochs count against
  /// train.epochs.
  std::int64_t mi_warm_start_epochs = 0;
};

/// Train one model per `spec`. When `test` is non-null per-epoch clean (and,
/// with `eval_attack`, adversarial) accuracy lands in `history` — the Fig. 4
/// convergence artifact. Returns the model in eval mode.
models::TapClassifierPtr train_model(
    const models::ModelSpec& model_spec, const data::SyntheticData& data,
    const TrainSpec& spec, std::uint64_t seed = 42,
    std::vector<train::EpochStats>* history = nullptr,
    const data::Dataset* test = nullptr, attacks::Attack* eval_attack = nullptr,
    std::int64_t eval_adv_samples = 200);

// ---- figure artifacts -------------------------------------------------------

/// Fig. 2 panel: robust accuracy as a function of attack optimization steps.
struct StepSweep {
  std::string attack;                 ///< registry name ("pgd", "cw", ...)
  std::vector<std::int64_t> steps;
  std::vector<double> robust_acc;     ///< one value per entry of `steps`
  std::vector<double> seconds;        ///< wall time per sweep point
};

StepSweep attack_step_sweep(models::TapClassifier& model,
                            const data::Dataset& ds, const std::string& attack,
                            const std::vector<std::int64_t>& steps,
                            const attacks::AttackConfig& defaults,
                            std::int64_t batch, std::int64_t max_samples);

/// Fig. 3: cluster structure of one captured tap, raw and t-SNE-embedded.
struct ClusterReport {
  mi::ClusterMetrics feature;         ///< in the raw flattened tap space
  mi::ClusterMetrics embedding;       ///< in the 2-D t-SNE embedding
  Tensor embedding_points;            ///< (n, 2)
};

ClusterReport cluster_report(const TapDump& dump, std::size_t tap_index,
                             const mi::TSNEConfig& cfg = {});

/// Fig. 5: HSIC information-plane coordinates per selected layer, estimated
/// by the streaming chunked estimator over the dump.
struct InfoPlaneConfig {
  std::int64_t chunk = 0;       ///< rows per HSIC chunk; <= 0 = one chunk
  float sigma_mult = 5.0f;      ///< bandwidth rule for X and T
  float sigma_mult_y = 1.0f;    ///< bandwidth rule for the one-hot labels
};

struct InfoPlane {
  std::vector<std::string> layer;
  std::vector<double> i_xt;     ///< HSIC(X, T_l)
  std::vector<double> i_ty;     ///< HSIC(Y, T_l)
};

InfoPlane info_plane(const TapDump& dump, std::vector<std::size_t> layers,
                     std::int64_t num_classes, const InfoPlaneConfig& cfg = {});

/// Eq. (3): per-channel HSIC(f_c, Y) scores of the last-conv tap.
std::vector<float> last_conv_channel_scores(const TapDump& dump,
                                            const models::TapClassifier& model,
                                            std::int64_t num_classes);

}  // namespace ibrar::analysis
