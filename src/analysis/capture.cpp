#include "analysis/capture.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "autograd/var.hpp"
#include "tensor/reduce.hpp"

namespace ibrar::analysis {
namespace {

/// Copy the rows of `src` (any rank, axis 0 = batch) into rows [row0, ...)
/// of the preallocated flat (n, d) matrix `dst`.
void copy_rows_flat(Tensor& dst, std::int64_t row0, const Tensor& src) {
  const auto rows = src.dim(0);
  const auto d = src.numel() / rows;
  if (dst.dim(1) != d) {
    throw std::runtime_error("capture_taps: tap width changed between batches");
  }
  std::memcpy(dst.data().data() + row0 * d, src.data().data(),
              sizeof(float) * static_cast<std::size_t>(rows * d));
}

}  // namespace

TapDump capture_taps(const models::TapClassifier& model,
                     const data::Dataset& ds, std::int64_t max_samples,
                     std::int64_t batch,
                     const std::vector<std::size_t>& tap_indices) {
  const std::int64_t n =
      max_samples > 0 ? std::min(max_samples, ds.size()) : ds.size();
  if (n <= 0) throw std::invalid_argument("capture_taps: empty dataset");
  if (batch <= 0) throw std::invalid_argument("capture_taps: batch must be > 0");

  const auto& all_names = model.tap_names();
  std::vector<std::size_t> selected = tap_indices;
  if (selected.empty()) {
    selected.resize(all_names.size());
    for (std::size_t i = 0; i < selected.size(); ++i) selected[i] = i;
  }
  for (const auto idx : selected) {
    if (idx >= all_names.size()) {
      throw std::out_of_range("capture_taps: tap index");
    }
  }

  TapDump dump;
  dump.tap_names.reserve(selected.size());
  for (const auto idx : selected) dump.tap_names.push_back(all_names[idx]);
  dump.labels.assign(ds.labels.begin(), ds.labels.begin() + n);
  dump.preds.resize(static_cast<std::size_t>(n));

  // The const eval forward computes eval semantics regardless of the model's
  // training flag — no mode guard needed, and nothing to restore on a throw.
  ag::NoGradGuard ng;
  std::int64_t correct = 0;
  for (std::int64_t b = 0; b < n; b += batch) {
    const std::int64_t e = std::min(n, b + batch);
    const auto chunk = data::make_batch(ds, b, e);
    auto out = model.eval_forward_with_taps(ag::Var::constant(chunk.x));
    if (out.taps.size() != all_names.size()) {
      throw std::runtime_error("capture_taps: tap count does not match tap_names");
    }
    if (b == 0) {
      // Widths are known only after the first forward; allocate everything.
      dump.inputs = Tensor({n, chunk.x.numel() / chunk.x.dim(0)});
      dump.logits = Tensor({n, out.logits.value().dim(1)});
      dump.taps.reserve(selected.size());
      for (const auto idx : selected) {
        const Tensor& t = out.taps[idx].value();
        dump.taps.emplace_back(Shape{n, t.numel() / t.dim(0)});
        Shape full = t.shape();
        full[0] = n;
        dump.tap_shapes.push_back(std::move(full));
      }
    }
    copy_rows_flat(dump.inputs, b, chunk.x);
    copy_rows_flat(dump.logits, b, out.logits.value());
    for (std::size_t t = 0; t < selected.size(); ++t) {
      copy_rows_flat(dump.taps[t], b, out.taps[selected[t]].value());
    }
    const auto preds = argmax_rows(out.logits.value());
    for (std::int64_t i = b; i < e; ++i) {
      dump.preds[static_cast<std::size_t>(i)] =
          preds[static_cast<std::size_t>(i - b)];
      if (preds[static_cast<std::size_t>(i - b)] ==
          dump.labels[static_cast<std::size_t>(i)]) {
        ++correct;
      }
    }
  }
  dump.accuracy = static_cast<double>(correct) / static_cast<double>(n);
  return dump;
}

}  // namespace ibrar::analysis
