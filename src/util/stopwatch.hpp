#pragma once
// Wall-clock stopwatch for progress reporting in trainers and benches.
//
// Built on obs::now_ns(), the stack's single monotonic clock — Stopwatch
// readings, obs::Span timestamps, and the serving runtime's queue/compute
// stamps all share one time axis.

#include "obs/clock.hpp"

namespace ibrar {

class Stopwatch {
 public:
  Stopwatch() : start_ns_(obs::now_ns()) {}

  /// Restart and return elapsed seconds since construction / last reset.
  double reset() {
    const std::int64_t now = obs::now_ns();
    const double s = static_cast<double>(now - start_ns_) * 1e-9;
    start_ns_ = now;
    return s;
  }

  /// Elapsed seconds without resetting.
  double seconds() const {
    return static_cast<double>(obs::now_ns() - start_ns_) * 1e-9;
  }

 private:
  std::int64_t start_ns_;
};

}  // namespace ibrar
