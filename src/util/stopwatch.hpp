#pragma once
// Wall-clock stopwatch for progress reporting in trainers and benches.

#include <chrono>

namespace ibrar {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Restart and return elapsed seconds since construction / last reset.
  double reset() {
    const auto now = clock::now();
    const double s = std::chrono::duration<double>(now - start_).count();
    start_ = now;
    return s;
  }

  /// Elapsed seconds without resetting.
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace ibrar
