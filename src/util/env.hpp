#pragma once
// Environment-variable configuration with typed defaults, plus the experiment
// profile switch shared by all benches.
//
// The default "quick" profile shrinks dataset sizes / epochs / attack steps so
// every bench finishes in seconds-to-minutes on one CPU core; the "paper"
// profile scales everything up for a closer (slower) reproduction. Individual
// knobs can still be overridden one by one (e.g. IBRAR_EPOCHS=20).

#include <string>

namespace ibrar::env {

/// String env var with fallback.
std::string get_string(const char* name, const std::string& fallback);

/// Integer env var with fallback (fallback on parse failure too).
long get_int(const char* name, long fallback);

/// Double env var with fallback.
double get_double(const char* name, double fallback);

/// Experiment scale profile, from IBRAR_PROFILE (quick | paper).
enum class Profile { kQuick, kPaper };

Profile profile();

/// Convenience: pick a value by profile, then apply an env override.
long scaled_int(const char* override_name, long quick, long paper);
double scaled_double(const char* override_name, double quick, double paper);

}  // namespace ibrar::env
