#pragma once
// Tiny binary serialization for model checkpoints.
//
// Format: magic "IBRR" + u32 version + u64 tensor count, then per tensor a
// u32 rank, i64 dims, and raw little-endian float payload. Endianness is not
// converted (checkpoints are machine-local artifacts of this repo's benches).

#include <cstdint>
#include <string>
#include <vector>

namespace ibrar::serialize {

struct NamedBlob {
  std::string name;
  std::vector<std::int64_t> shape;
  std::vector<float> data;
};

/// Write all blobs to `path`; throws std::runtime_error on I/O failure.
void save(const std::string& path, const std::vector<NamedBlob>& blobs);

/// Read blobs back; throws std::runtime_error on I/O or format failure.
std::vector<NamedBlob> load(const std::string& path);

}  // namespace ibrar::serialize
