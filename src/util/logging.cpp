#include "util/logging.hpp"

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

namespace ibrar::logging {
namespace {

Level parse_env_level() {
  const char* e = std::getenv("IBRAR_LOG");
  if (e == nullptr) return Level::kInfo;
  const std::string s(e);
  if (s == "trace") return Level::kTrace;
  if (s == "debug") return Level::kDebug;
  if (s == "info") return Level::kInfo;
  if (s == "warn") return Level::kWarn;
  if (s == "error") return Level::kError;
  if (s == "off") return Level::kOff;
  return Level::kInfo;
}

Level& mutable_level() {
  static Level lvl = parse_env_level();
  return lvl;
}

const char* tag(Level lvl) {
  switch (lvl) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

Level level() { return mutable_level(); }
void set_level(Level lvl) { mutable_level() = lvl; }

void emit(Level lvl, const std::string& msg) {
  if (lvl < level()) return;
  static std::mutex mu;
  const std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[%s] %s\n", tag(lvl), msg.c_str());
}

}  // namespace ibrar::logging
