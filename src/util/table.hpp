#pragma once
// Column-aligned ASCII table printing for the bench harness.
//
// Every bench prints the rows the paper reports, with paper reference values
// next to measured values, through this one formatter so outputs stay uniform
// and greppable.

#include <string>
#include <vector>

namespace ibrar {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; pads/truncates to the header width.
  void add_row(std::vector<std::string> cells);

  /// Render with column separators and a header rule.
  std::string to_string() const;

  /// Render directly to stdout.
  void print() const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return header_.size(); }

  /// Format helper: fixed-precision float cell.
  static std::string num(double v, int precision = 2);

  /// Format helper: "measured (paper ref)" cell.
  static std::string vs_paper(double measured, double paper, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ibrar
