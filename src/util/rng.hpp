#pragma once
// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in the library takes an explicit Rng& instead of
// using hidden global state, so a fixed seed reproduces a full experiment
// bit-for-bit on the same platform.

#include <cstdint>
#include <random>
#include <vector>

namespace ibrar {

/// Deterministic pseudo-random generator (mt19937_64 core) with the small set
/// of distributions the library needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x1b2a5u) : engine_(seed) {}

  /// Reseed in place; subsequent draws restart the deterministic stream.
  void seed(std::uint64_t s) { engine_.seed(s); }

  /// Uniform real in [lo, hi).
  float uniform(float lo = 0.0f, float hi = 1.0f) {
    std::uniform_real_distribution<float> d(lo, hi);
    return d(engine_);
  }

  /// Standard normal scaled to mean/stddev.
  float normal(float mean = 0.0f, float stddev = 1.0f) {
    std::normal_distribution<float> d(mean, stddev);
    return d(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t randint(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p) {
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  /// Fisher-Yates shuffle of an index vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(randint(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// A permutation of [0, n).
  std::vector<std::int64_t> permutation(std::int64_t n) {
    std::vector<std::int64_t> p(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) p[static_cast<std::size_t>(i)] = i;
    shuffle(p);
    return p;
  }

  /// Derive a child generator; children with distinct tags have independent
  /// streams even when the parent seed is shared.
  Rng fork(std::uint64_t tag) {
    return Rng(engine_() ^ (tag * 0x9e3779b97f4a7c15ull));
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ibrar
