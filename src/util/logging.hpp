#pragma once
// Minimal leveled logging to stderr.
//
// The benches and trainers log progress at Info; tests run at Warn by default
// so ctest output stays readable. Level is process-global and adjustable via
// the IBRAR_LOG environment variable (trace|debug|info|warn|error).

#include <sstream>
#include <string>

namespace ibrar::logging {

enum class Level { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Current global level (initialized once from IBRAR_LOG).
Level level();

/// Override the global level programmatically.
void set_level(Level lvl);

/// Emit one line at `lvl` (no-op when below the global level).
void emit(Level lvl, const std::string& msg);

namespace detail {
template <typename... Args>
std::string cat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void trace(Args&&... a) { emit(Level::kTrace, detail::cat(std::forward<Args>(a)...)); }
template <typename... Args>
void debug(Args&&... a) { emit(Level::kDebug, detail::cat(std::forward<Args>(a)...)); }
template <typename... Args>
void info(Args&&... a) { emit(Level::kInfo, detail::cat(std::forward<Args>(a)...)); }
template <typename... Args>
void warn(Args&&... a) { emit(Level::kWarn, detail::cat(std::forward<Args>(a)...)); }
template <typename... Args>
void error(Args&&... a) { emit(Level::kError, detail::cat(std::forward<Args>(a)...)); }

}  // namespace ibrar::logging
