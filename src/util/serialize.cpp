#include "util/serialize.hpp"

#include <cstdio>
#include <memory>
#include <stdexcept>

namespace ibrar::serialize {
namespace {

constexpr char kMagic[4] = {'I', 'B', 'R', 'R'};
constexpr std::uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const { if (f != nullptr) std::fclose(f); }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void write_bytes(std::FILE* f, const void* p, std::size_t n) {
  if (std::fwrite(p, 1, n, f) != n) {
    throw std::runtime_error("serialize: short write");
  }
}

void read_bytes(std::FILE* f, void* p, std::size_t n) {
  if (std::fread(p, 1, n, f) != n) {
    throw std::runtime_error("serialize: short read");
  }
}

template <typename T>
void write_pod(std::FILE* f, const T& v) { write_bytes(f, &v, sizeof(T)); }

template <typename T>
T read_pod(std::FILE* f) {
  T v{};
  read_bytes(f, &v, sizeof(T));
  return v;
}

void write_string(std::FILE* f, const std::string& s) {
  write_pod<std::uint32_t>(f, static_cast<std::uint32_t>(s.size()));
  write_bytes(f, s.data(), s.size());
}

std::string read_string(std::FILE* f) {
  const auto n = read_pod<std::uint32_t>(f);
  if (n > (1u << 20)) throw std::runtime_error("serialize: name too long");
  std::string s(n, '\0');
  read_bytes(f, s.data(), n);
  return s;
}

}  // namespace

void save(const std::string& path, const std::vector<NamedBlob>& blobs) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) throw std::runtime_error("serialize: cannot open " + path);
  write_bytes(f.get(), kMagic, sizeof(kMagic));
  write_pod(f.get(), kVersion);
  write_pod<std::uint64_t>(f.get(), blobs.size());
  for (const auto& b : blobs) {
    write_string(f.get(), b.name);
    write_pod<std::uint32_t>(f.get(), static_cast<std::uint32_t>(b.shape.size()));
    for (const auto d : b.shape) write_pod<std::int64_t>(f.get(), d);
    write_pod<std::uint64_t>(f.get(), b.data.size());
    write_bytes(f.get(), b.data.data(), b.data.size() * sizeof(float));
  }
}

std::vector<NamedBlob> load(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("serialize: cannot open " + path);
  char magic[4];
  read_bytes(f.get(), magic, sizeof(magic));
  if (std::string(magic, 4) != std::string(kMagic, 4)) {
    throw std::runtime_error("serialize: bad magic in " + path);
  }
  const auto version = read_pod<std::uint32_t>(f.get());
  if (version != kVersion) throw std::runtime_error("serialize: bad version");
  const auto count = read_pod<std::uint64_t>(f.get());
  std::vector<NamedBlob> blobs;
  blobs.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    NamedBlob b;
    b.name = read_string(f.get());
    const auto rank = read_pod<std::uint32_t>(f.get());
    if (rank > 8) throw std::runtime_error("serialize: rank too large");
    b.shape.resize(rank);
    for (auto& d : b.shape) d = read_pod<std::int64_t>(f.get());
    const auto numel = read_pod<std::uint64_t>(f.get());
    b.data.resize(numel);
    read_bytes(f.get(), b.data.data(), numel * sizeof(float));
    blobs.push_back(std::move(b));
  }
  return blobs;
}

}  // namespace ibrar::serialize
