#include "util/env.hpp"

#include <cstdlib>

namespace ibrar::env {

std::string get_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::string(v) : fallback;
}

long get_int(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const long out = std::strtol(v, &end, 10);
  return (end != nullptr && *end == '\0') ? out : fallback;
}

double get_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const double out = std::strtod(v, &end);
  return (end != nullptr && *end == '\0') ? out : fallback;
}

Profile profile() {
  return get_string("IBRAR_PROFILE", "quick") == "paper" ? Profile::kPaper
                                                         : Profile::kQuick;
}

long scaled_int(const char* override_name, long quick, long paper) {
  return get_int(override_name, profile() == Profile::kPaper ? paper : quick);
}

double scaled_double(const char* override_name, double quick, double paper) {
  return get_double(override_name, profile() == Profile::kPaper ? paper : quick);
}

}  // namespace ibrar::env
