#include "util/rng.hpp"

// Header-only today; the translation unit pins the library's ABI so future
// out-of-line additions do not reshuffle link lines.
namespace ibrar {}
