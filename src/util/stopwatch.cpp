#include "util/stopwatch.hpp"

namespace ibrar {}
