#pragma once
// Feature-channel mask (paper Eq. 3): score every channel of the last conv
// layer by its HSIC dependence on the labels over a scoring batch, drop the
// lowest 5%, and install the resulting binary mask into the model so it is
// applied on every subsequent forward (train and eval).

#include "data/dataset.hpp"
#include "models/classifier.hpp"

namespace ibrar::core {

struct FeatureMaskConfig {
  float drop_fraction = 0.05f;   ///< paper: eliminate 5% of channels
  std::int64_t scoring_samples = 200;  ///< batch used to estimate I(f_c, Y)
};

class FeatureMask {
 public:
  explicit FeatureMask(FeatureMaskConfig cfg = {}) : cfg_(cfg) {}

  /// Recompute channel scores on (a prefix of) `ds` and install the mask.
  /// Returns the scores (length C) for inspection.
  std::vector<float> update(models::TapClassifier& model,
                            const data::Dataset& ds);

  const FeatureMaskConfig& config() const { return cfg_; }

 private:
  FeatureMaskConfig cfg_;
};

/// One-shot helper: compute scores for the model's last conv tap on a batch.
std::vector<float> last_conv_channel_scores(models::TapClassifier& model,
                                            const data::Batch& batch);

}  // namespace ibrar::core
