#include "core/feature_mask.hpp"

#include "mi/channel_score.hpp"

namespace ibrar::core {

std::vector<float> last_conv_channel_scores(models::TapClassifier& model,
                                            const data::Batch& batch) {
  ag::NoGradGuard ng;
  const bool was = model.training();
  model.set_training(false);
  // Score the unmasked representation so previously-dropped channels can be
  // re-evaluated rather than frozen at score ~0.
  const Tensor saved_mask = model.channel_mask();
  model.clear_channel_mask();
  auto out = model.forward_with_taps(ag::Var::constant(batch.x));
  const Tensor feats = out.taps.at(model.last_conv_tap_index()).value();
  if (saved_mask.rank() == 1 && saved_mask.numel() > 0) {
    model.set_channel_mask(saved_mask);
  }
  model.set_training(was);
  return mi::channel_label_scores(feats, batch.y, model.num_classes());
}

std::vector<float> FeatureMask::update(models::TapClassifier& model,
                                       const data::Dataset& ds) {
  const auto n = std::min<std::int64_t>(cfg_.scoring_samples, ds.size());
  std::vector<std::int64_t> idx(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) idx[static_cast<std::size_t>(i)] = i;
  const auto batch = data::make_batch(ds, idx);
  const auto scores = last_conv_channel_scores(model, batch);
  model.set_channel_mask(mi::mask_from_scores(scores, cfg_.drop_fraction));
  return scores;
}

}  // namespace ibrar::core
