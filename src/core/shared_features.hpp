#pragma once
// Shared-feature distillation — the extension the paper sketches as future
// work (Sec. 3.3): "distilling shared features for every class since the
// shared features could help adversarial attack algorithms find small enough
// perturbations. Then according to distilled features, the network can learn
// well-generalized features but discard shared features."
//
// This module implements that pipeline on top of the tap interface:
//   1. estimate class similarity from penultimate-feature centroids;
//   2. score each last-conv channel by how strongly it fires for BOTH classes
//      of the most similar (most confusable) pairs — a "shared feature"
//      channel in the paper's sense;
//   3. derive a mask that discards the most-shared channels, composable with
//      the Eq. (3) relevance mask (elementwise AND).
// The trade-off knob the paper anticipates (discard shared vs. keep enough
// information) is the drop fraction.

#include "data/dataset.hpp"
#include "models/classifier.hpp"

namespace ibrar::core {

struct SharedFeatureReport {
  /// (num_classes, num_classes) cosine similarity of penultimate centroids.
  Tensor class_similarity;
  /// The class pairs ranked by similarity, most similar first (a < b).
  std::vector<std::pair<std::int64_t, std::int64_t>> ranked_pairs;
  /// Per last-conv channel: how much it fires jointly for the top pairs.
  std::vector<float> channel_shared_score;
};

struct SharedFeatureConfig {
  std::int64_t scoring_samples = 200;  ///< samples used for the estimates
  std::int64_t top_pairs = 3;          ///< pairs treated as "similar classes"
};

/// Estimate class similarity and per-channel shared-feature scores.
SharedFeatureReport analyze_shared_features(models::TapClassifier& model,
                                            const data::Dataset& ds,
                                            const SharedFeatureConfig& cfg = {});

/// Binary mask (C) discarding the `drop_fraction` most-shared channels
/// (at least one dropped when drop_fraction > 0, at least one kept).
Tensor shared_feature_mask(const SharedFeatureReport& report,
                           float drop_fraction);

/// Combine with another binary mask (e.g. the Eq. (3) relevance mask):
/// a channel survives only if both masks keep it, except that the result
/// always keeps at least one channel.
Tensor combine_masks(const Tensor& a, const Tensor& b);

}  // namespace ibrar::core
