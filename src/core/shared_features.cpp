#include "core/shared_features.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mi/channel_score.hpp"

namespace ibrar::core {
namespace {

/// Mean penultimate feature per class; rows are classes, zero row when a
/// class is absent from the scoring batch.
Tensor class_centroids(const Tensor& feats, const std::vector<std::int64_t>& y,
                       std::int64_t num_classes) {
  const auto d = feats.dim(1);
  Tensor centroids({num_classes, d});
  std::vector<std::int64_t> counts(static_cast<std::size_t>(num_classes), 0);
  for (std::int64_t i = 0; i < feats.dim(0); ++i) {
    const auto c = y[static_cast<std::size_t>(i)];
    counts[static_cast<std::size_t>(c)]++;
    for (std::int64_t k = 0; k < d; ++k) centroids.at(c, k) += feats.at(i, k);
  }
  for (std::int64_t c = 0; c < num_classes; ++c) {
    if (counts[static_cast<std::size_t>(c)] == 0) continue;
    const float inv = 1.0f / static_cast<float>(counts[static_cast<std::size_t>(c)]);
    for (std::int64_t k = 0; k < d; ++k) centroids.at(c, k) *= inv;
  }
  return centroids;
}

float cosine(const Tensor& m, std::int64_t a, std::int64_t b) {
  const auto d = m.dim(1);
  double dot = 0, na = 0, nb = 0;
  for (std::int64_t k = 0; k < d; ++k) {
    dot += double(m.at(a, k)) * m.at(b, k);
    na += double(m.at(a, k)) * m.at(a, k);
    nb += double(m.at(b, k)) * m.at(b, k);
  }
  const double denom = std::sqrt(na * nb);
  return denom > 1e-12 ? static_cast<float>(dot / denom) : 0.0f;
}

}  // namespace

SharedFeatureReport analyze_shared_features(models::TapClassifier& model,
                                            const data::Dataset& ds,
                                            const SharedFeatureConfig& cfg) {
  const auto n = std::min<std::int64_t>(cfg.scoring_samples, ds.size());
  std::vector<std::int64_t> idx(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) idx[static_cast<std::size_t>(i)] = i;
  const auto batch = data::make_batch(ds, idx);
  const auto num_classes = model.num_classes();

  // One tapped forward pass provides both representations.
  ag::NoGradGuard ng;
  const bool was = model.training();
  model.set_training(false);
  auto out = model.forward_with_taps(ag::Var::constant(batch.x));
  model.set_training(was);

  const Tensor& pen_raw = out.taps.back().value();
  const Tensor pen = pen_raw.reshape({pen_raw.dim(0),
                                      pen_raw.numel() / pen_raw.dim(0)});
  const Tensor& conv = out.taps.at(model.last_conv_tap_index()).value();

  SharedFeatureReport report;

  // 1. class similarity from penultimate centroids.
  const Tensor centroids = class_centroids(pen, batch.y, num_classes);
  report.class_similarity = Tensor({num_classes, num_classes});
  for (std::int64_t a = 0; a < num_classes; ++a) {
    for (std::int64_t b = 0; b < num_classes; ++b) {
      report.class_similarity.at(a, b) = cosine(centroids, a, b);
    }
  }
  for (std::int64_t a = 0; a < num_classes; ++a) {
    for (std::int64_t b = a + 1; b < num_classes; ++b) {
      report.ranked_pairs.emplace_back(a, b);
    }
  }
  std::stable_sort(report.ranked_pairs.begin(), report.ranked_pairs.end(),
                   [&](const auto& p, const auto& q) {
                     return report.class_similarity.at(p.first, p.second) >
                            report.class_similarity.at(q.first, q.second);
                   });

  // 2. per-channel shared score over the most similar pairs: a channel whose
  // mean activation is high for BOTH classes of a confusable pair carries a
  // shared feature.
  const auto c_channels = conv.dim(1);
  const std::int64_t spatial = conv.rank() == 4 ? conv.dim(2) * conv.dim(3) : 1;
  Tensor chan_mean({num_classes, c_channels});
  std::vector<std::int64_t> counts(static_cast<std::size_t>(num_classes), 0);
  for (std::int64_t i = 0; i < conv.dim(0); ++i) {
    const auto cls = batch.y[static_cast<std::size_t>(i)];
    counts[static_cast<std::size_t>(cls)]++;
    for (std::int64_t ch = 0; ch < c_channels; ++ch) {
      double s = 0;
      const float* plane = conv.data().data() + (i * c_channels + ch) * spatial;
      for (std::int64_t k = 0; k < spatial; ++k) s += plane[k];
      chan_mean.at(cls, ch) += static_cast<float>(s / spatial);
    }
  }
  for (std::int64_t cls = 0; cls < num_classes; ++cls) {
    if (counts[static_cast<std::size_t>(cls)] == 0) continue;
    for (std::int64_t ch = 0; ch < c_channels; ++ch) {
      chan_mean.at(cls, ch) /= static_cast<float>(counts[static_cast<std::size_t>(cls)]);
    }
  }
  report.channel_shared_score.assign(static_cast<std::size_t>(c_channels), 0.0f);
  const auto pairs_used = std::min<std::size_t>(
      static_cast<std::size_t>(cfg.top_pairs), report.ranked_pairs.size());
  for (std::size_t p = 0; p < pairs_used; ++p) {
    const auto& [a, b] = report.ranked_pairs[p];
    for (std::int64_t ch = 0; ch < c_channels; ++ch) {
      report.channel_shared_score[static_cast<std::size_t>(ch)] +=
          std::min(std::max(chan_mean.at(a, ch), 0.0f),
                   std::max(chan_mean.at(b, ch), 0.0f));
    }
  }
  return report;
}

Tensor shared_feature_mask(const SharedFeatureReport& report,
                           float drop_fraction) {
  // Highest shared score = dropped; reuse the Eq. (3) quantile machinery by
  // inverting the scores (it drops the lowest).
  std::vector<float> inverted;
  inverted.reserve(report.channel_shared_score.size());
  for (const auto s : report.channel_shared_score) inverted.push_back(-s);
  return mi::mask_from_scores(inverted, drop_fraction);
}

Tensor combine_masks(const Tensor& a, const Tensor& b) {
  if (!(a.shape() == b.shape()) || a.rank() != 1) {
    throw std::invalid_argument("combine_masks: masks must be matching 1-D");
  }
  Tensor out(a.shape());
  float kept = 0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    out[i] = (a[i] != 0.0f && b[i] != 0.0f) ? 1.0f : 0.0f;
    kept += out[i];
  }
  if (kept == 0.0f && out.numel() > 0) out[0] = 1.0f;
  return out;
}

}  // namespace ibrar::core
