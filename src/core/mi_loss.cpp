#include "core/mi_loss.hpp"

#include <algorithm>
#include <stdexcept>

#include "models/registry.hpp"

namespace ibrar::core {
namespace {

std::vector<std::size_t> indices_for_names(const std::vector<std::string>& names,
                                           models::TapClassifier& model) {
  const auto& taps = model.tap_names();
  std::vector<std::size_t> out;
  out.reserve(names.size());
  for (const auto& n : names) {
    const auto it = std::find(taps.begin(), taps.end(), n);
    if (it == taps.end()) {
      throw std::invalid_argument("mi_loss: unknown tap name " + n);
    }
    out.push_back(static_cast<std::size_t>(it - taps.begin()));
  }
  return out;
}

}  // namespace

std::vector<std::size_t> resolve_layer_indices(const MILossConfig& cfg,
                                               models::TapClassifier& model) {
  switch (cfg.selection) {
    case LayerSelection::kAll: {
      std::vector<std::size_t> all(model.tap_names().size());
      for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
      return all;
    }
    case LayerSelection::kExplicit:
      return indices_for_names(cfg.layers, model);
    case LayerSelection::kRobust: {
      // Use an explicit override when provided, else the per-architecture
      // default the paper reports (conv block 5 + fc1 + fc2 for VGG16).
      if (!cfg.layers.empty()) return indices_for_names(cfg.layers, model);
      // Identify the architecture by its tap names.
      const auto& taps = model.tap_names();
      std::vector<std::string> robust;
      if (std::find(taps.begin(), taps.end(), "conv_block5") != taps.end()) {
        robust = models::default_robust_layers("vgg16");
      } else if (std::find(taps.begin(), taps.end(), "stage4") != taps.end()) {
        robust = models::default_robust_layers("resnet18");
      } else if (std::find(taps.begin(), taps.end(), "group3") != taps.end()) {
        robust = models::default_robust_layers("wrn28");
      } else {
        robust = {taps.back()};
      }
      return indices_for_names(robust, model);
    }
  }
  throw std::logic_error("resolve_layer_indices: bad selection");
}

ag::Var mi_loss_term(const MILossConfig& cfg, models::TapClassifier& model,
                     const ag::Var& x, const std::vector<ag::Var>& taps,
                     const std::vector<std::int64_t>& labels) {
  return mi::ib_objective(x, taps, labels, model.num_classes(),
                          to_ib_config(cfg, model));
}

mi::IBObjectiveConfig to_ib_config(const MILossConfig& cfg,
                                   models::TapClassifier& model) {
  mi::IBObjectiveConfig out;
  out.alpha = cfg.alpha;
  out.beta = cfg.beta;
  out.layer_indices = resolve_layer_indices(cfg, model);
  out.sigma_mult = cfg.sigma_mult;
  out.sigma_mult_y = cfg.sigma_mult_y;
  return out;
}

}  // namespace ibrar::core
