#include "core/robust_layers.hpp"

#include "core/ibrar.hpp"
#include "train/evaluate.hpp"
#include "util/logging.hpp"

namespace ibrar::core {

RobustLayerReport RobustLayerSelector::select(const data::Dataset& train_set,
                                              const data::Dataset& test_set) {
  RobustLayerReport report;

  // Baseline: CE only.
  {
    Rng rng(cfg_.train.seed);
    auto model = factory_(rng);
    train::Trainer trainer(model, std::make_shared<train::CEObjective>(),
                           cfg_.train);
    trainer.fit(train_set);
    attacks::PGD pgd(cfg_.eval_attack);
    report.baseline_adv_acc = train::evaluate_adversarial(
        *model, test_set, pgd, cfg_.train.batch_size, cfg_.eval_samples);
    report.baseline_test_acc =
        train::evaluate_clean(*model, test_set, cfg_.train.batch_size);
    logging::info("robust-layers baseline: adv=", report.baseline_adv_acc,
              " clean=", report.baseline_test_acc);
  }

  // One probe network per tap, MI loss restricted to that tap.
  std::vector<std::string> tap_names;
  {
    Rng rng(cfg_.train.seed);
    tap_names = factory_(rng)->tap_names();
  }
  for (const auto& layer : tap_names) {
    Rng rng(cfg_.train.seed);
    auto model = factory_(rng);
    MILossConfig mi;
    mi.alpha = cfg_.alpha;
    mi.beta = cfg_.beta;
    mi.selection = LayerSelection::kExplicit;
    mi.layers = {layer};
    auto obj = std::make_shared<IBRARObjective>(nullptr, mi);
    train::Trainer trainer(model, obj, cfg_.train);
    trainer.fit(train_set);

    attacks::PGD pgd(cfg_.eval_attack);
    LayerProbeResult r;
    r.layer = layer;
    r.adv_acc = train::evaluate_adversarial(*model, test_set, pgd,
                                            cfg_.train.batch_size,
                                            cfg_.eval_samples);
    r.test_acc = train::evaluate_clean(*model, test_set, cfg_.train.batch_size);
    r.robust = r.adv_acc >= report.baseline_adv_acc + cfg_.margin;
    logging::info("robust-layers probe ", layer, ": adv=", r.adv_acc,
              " clean=", r.test_acc, r.robust ? "  [ROBUST]" : "");
    if (r.robust) report.robust_layers.push_back(layer);
    report.per_layer.push_back(std::move(r));
  }

  // Fallback: if nothing cleared the margin, take the best layer — the
  // downstream MILossConfig requires a non-empty set.
  if (report.robust_layers.empty() && !report.per_layer.empty()) {
    const auto best = std::max_element(
        report.per_layer.begin(), report.per_layer.end(),
        [](const auto& a, const auto& b) { return a.adv_acc < b.adv_acc; });
    report.robust_layers.push_back(best->layer);
  }
  return report;
}

}  // namespace ibrar::core
