#pragma once
// The IB-RAR MI loss (paper Eq. 1 / Eq. 2) with layer selection by tap name.
//
// L = L_base + alpha * sum_{l in S} I(X, T_l) - beta * sum_{l in S} I(Y, T_l)
// where S is either every hidden layer ("all"), the robust layers found by
// the Table 3 procedure ("rob"), or an explicit list, and I is HSIC.

#include <string>
#include <vector>

#include "mi/objective.hpp"
#include "models/classifier.hpp"

namespace ibrar::core {

enum class LayerSelection { kAll, kRobust, kExplicit };

struct MILossConfig {
  // Paper values for VGG16 are alpha=1.0, beta=0.1 at the HSIC magnitudes of
  // 32x32 CIFAR batches; our 16x16 synthetic substrate yields smaller HSIC
  // values, so the calibrated defaults below are proportionally larger (the
  // Fig. 6 bench sweeps this trade-off).
  float alpha = 5.0f;
  float beta = 1.0f;
  LayerSelection selection = LayerSelection::kRobust;
  std::vector<std::string> layers;  ///< used when selection == kExplicit
  float sigma_mult = 5.0f;
  float sigma_mult_y = 1.0f;
};

/// Resolve the configured layer subset into tap indices for `model`.
/// kRobust uses models::default_robust_layers (the paper's finding), unless a
/// selector has produced an explicit list.
std::vector<std::size_t> resolve_layer_indices(const MILossConfig& cfg,
                                               models::TapClassifier& model);

/// Build the differentiable Eq. (1) regularizer for one batch.
ag::Var mi_loss_term(const MILossConfig& cfg, models::TapClassifier& model,
                     const ag::Var& x, const std::vector<ag::Var>& taps,
                     const std::vector<std::int64_t>& labels);

/// Translate to the shared low-level config (used by the adaptive attack).
mi::IBObjectiveConfig to_ib_config(const MILossConfig& cfg,
                                   models::TapClassifier& model);

}  // namespace ibrar::core
