#pragma once
// IB-RAR facade: the paper's full method as a composable objective.
//
//   IBRARObjective = base objective (CE / PGD-AT / TRADES / MART)
//                  + MI loss (Eq. 1/2) on the selected layers of a CLEAN
//                    forward pass (Sec. 3.1.1: "we use clean examples to
//                    compute MI in Eq. (2)")
//                  + the feature-channel mask (Eq. 3), refreshed per epoch
//                    via make_mask_hook.
//
// Typical use:
//   auto base = std::make_shared<train::PGDATObjective>(inner_cfg);
//   auto obj  = std::make_shared<core::IBRARObjective>(base, mi_cfg);
//   train::Trainer t(model, obj, train_cfg);
//   t.epoch_hook = core::make_mask_hook(mask_cfg, train_set);
//   t.fit(train_set, &test_set);

#include "core/feature_mask.hpp"
#include "core/mi_loss.hpp"
#include "train/trainer.hpp"

namespace ibrar::core {

class IBRARObjective : public train::Objective {
 public:
  /// `base` may be null, meaning plain IB-RAR training on clean data (the
  /// CE term then reuses the same tapped forward pass as the MI term).
  IBRARObjective(train::ObjectivePtr base, MILossConfig mi_cfg)
      : base_(std::move(base)), mi_cfg_(std::move(mi_cfg)) {}

  std::string name() const override {
    return (base_ ? base_->name() : std::string("plain")) + " (IB-RAR)";
  }

  ag::Var compute(models::TapClassifier& model,
                  const data::Batch& batch) override;

  const MILossConfig& mi_config() const { return mi_cfg_; }

 private:
  train::ObjectivePtr base_;
  MILossConfig mi_cfg_;
};

/// Epoch hook refreshing the Eq. (3) mask from `scoring_set` after each
/// epoch. Skips epoch 0 so scores reflect an MI-regularized network (the
/// paper notes the mask is only meaningful on top of the MI loss).
std::function<void(std::int64_t, models::TapClassifier&)> make_mask_hook(
    FeatureMaskConfig cfg, const data::Dataset& scoring_set,
    std::int64_t first_epoch = 1);

}  // namespace ibrar::core
