#pragma once
// Robust-layer selection (paper Sec. 2.2 "Selection of Robust Layers" and
// Table 3): train one fresh network per hidden layer with the MI loss applied
// to that single layer, measure PGD accuracy, and call a layer robust when it
// clearly beats the CE-only baseline.

#include <functional>

#include "attacks/pgd.hpp"
#include "core/mi_loss.hpp"
#include "train/trainer.hpp"

namespace ibrar::core {

struct RobustLayerConfig {
  float alpha = 1.0f;
  float beta = 0.1f;
  train::TrainConfig train;                 ///< probe training schedule
  attacks::AttackConfig eval_attack;        ///< PGD used for the robustness probe
  std::int64_t eval_samples = 200;
  double margin = 0.02;  ///< "obviously higher" = baseline + margin
};

struct LayerProbeResult {
  std::string layer;
  double adv_acc = 0.0;
  double test_acc = 0.0;
  bool robust = false;
};

struct RobustLayerReport {
  std::vector<LayerProbeResult> per_layer;
  double baseline_adv_acc = 0.0;   ///< CE-only network under the same attack
  double baseline_test_acc = 0.0;
  std::vector<std::string> robust_layers;
};

class RobustLayerSelector {
 public:
  /// `factory` builds a fresh, identically-configured model per probe.
  RobustLayerSelector(std::function<models::TapClassifierPtr(Rng&)> factory,
                      RobustLayerConfig cfg)
      : factory_(std::move(factory)), cfg_(std::move(cfg)) {}

  /// Run the full probe sweep; deterministic given cfg.train.seed.
  RobustLayerReport select(const data::Dataset& train_set,
                           const data::Dataset& test_set);

 private:
  std::function<models::TapClassifierPtr(Rng&)> factory_;
  RobustLayerConfig cfg_;
};

}  // namespace ibrar::core
