#include "core/ibrar.hpp"

namespace ibrar::core {

ag::Var IBRARObjective::compute(models::TapClassifier& model,
                                const data::Batch& batch) {
  if (!base_) {
    // Plain IB-RAR: one tapped forward provides both the CE and MI terms.
    ag::Var input = ag::Var::constant(batch.x);
    auto out = model.forward_with_taps(input);
    ag::Var loss = ag::cross_entropy(out.logits, batch.y);
    return ag::add(loss,
                   mi_loss_term(mi_cfg_, model, input, out.taps, batch.y));
  }
  // Eq. (2): adversarial (or other) base loss + MI regularizer computed on
  // the clean inputs' intermediate representations.
  ag::Var base_loss = base_->compute(model, batch);
  ag::Var input = ag::Var::constant(batch.x);
  auto out = model.forward_with_taps(input);
  return ag::add(base_loss,
                 mi_loss_term(mi_cfg_, model, input, out.taps, batch.y));
}

std::function<void(std::int64_t, models::TapClassifier&)> make_mask_hook(
    FeatureMaskConfig cfg, const data::Dataset& scoring_set,
    std::int64_t first_epoch) {
  auto mask = std::make_shared<FeatureMask>(cfg);
  const data::Dataset* ds = &scoring_set;
  return [mask, ds, first_epoch](std::int64_t epoch,
                                 models::TapClassifier& model) {
    if (epoch + 1 >= first_epoch) mask->update(model, *ds);
  };
}

}  // namespace ibrar::core
