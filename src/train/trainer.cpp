#include "train/trainer.hpp"

#include "attacks/attack.hpp"
#include "train/evaluate.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"

namespace ibrar::train {

Trainer::Trainer(models::TapClassifierPtr model, ObjectivePtr objective,
                 TrainConfig cfg)
    : model_(std::move(model)), objective_(std::move(objective)), cfg_(cfg) {
  opt_ = std::make_unique<SGD>(
      model_->parameters(),
      SGD::Config{cfg_.lr, cfg_.momentum, cfg_.weight_decay});
}

std::vector<EpochStats> Trainer::fit(const data::Dataset& train,
                                     const data::Dataset* test,
                                     attacks::Attack* eval_attack,
                                     std::int64_t eval_adv_samples) {
  data::DataLoader loader(train, cfg_.batch_size, /*shuffle=*/true,
                          Rng(cfg_.seed));
  StepLR sched(*opt_, cfg_.lr_step, cfg_.lr_gamma);

  std::vector<EpochStats> history;
  for (std::int64_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    Stopwatch sw;
    model_->set_training(true);
    loader.begin_epoch();

    double loss_sum = 0.0;
    std::int64_t batches = 0;
    std::int64_t correct = 0, seen = 0;
    data::Batch batch;
    std::int64_t batch_idx = 0;
    while (loader.next(batch)) {
      ag::Var loss = objective_->compute(*model_, batch);
      // Adversarial objectives run inner attacks before the loss graph; any
      // stray gradient accumulation is discarded here.
      opt_->zero_grad();
      loss.backward();
      opt_->step();
      loss_sum += loss.value().item();
      ++batches;

      if (cfg_.track_train_acc) {
        // Track train accuracy on the fly (cheap forward reuse is not
        // possible for AT objectives, so sample a prediction pass).
        ag::NoGradGuard ng;
        model_->set_training(false);
        const auto pred = attacks::predict(*model_, batch.x);
        model_->set_training(true);
        for (std::size_t i = 0; i < pred.size(); ++i) {
          correct += pred[i] == batch.y[i] ? 1 : 0;
        }
        seen += batch.size();
      }
      if (batch_hook) batch_hook(epoch, batch_idx, *model_, batch);
      ++batch_idx;
    }
    sched.epoch_end();
    if (epoch_hook) epoch_hook(epoch, *model_);

    EpochStats s;
    s.epoch = epoch;
    s.mean_loss = batches > 0 ? loss_sum / batches : 0.0;
    s.train_acc = cfg_.track_train_acc
                      ? (seen > 0 ? static_cast<double>(correct) / seen : 0.0)
                      : -1.0;
    if (test != nullptr) {
      s.test_acc = evaluate_clean(*model_, *test, cfg_.batch_size);
      if (eval_attack != nullptr) {
        s.adv_acc = evaluate_adversarial(*model_, *test, *eval_attack,
                                         cfg_.batch_size, eval_adv_samples);
      }
    }
    s.seconds = sw.seconds();
    history.push_back(s);
    if (cfg_.verbose) {
      logging::info(objective_->name(), " epoch ", epoch, " loss=", s.mean_loss,
                " train_acc=", s.train_acc, " test_acc=", s.test_acc,
                " adv_acc=", s.adv_acc, " (", s.seconds, "s)");
    }
  }
  model_->set_training(false);
  return history;
}

}  // namespace ibrar::train
