#pragma once
// SGD with momentum and decoupled-from-nothing classic L2 weight decay —
// the paper's optimizer (SGD, weight decay 1e-2).

#include <vector>

#include "autograd/var.hpp"

namespace ibrar::train {

class SGD {
 public:
  struct Config {
    float lr = 0.01f;
    float momentum = 0.9f;
    float weight_decay = 1e-2f;
  };

  SGD(std::vector<ag::Var> params, Config cfg);

  /// Apply one update from the accumulated gradients.
  void step();

  /// Clear every parameter gradient.
  void zero_grad();

  float lr() const { return cfg_.lr; }
  void set_lr(float lr) { cfg_.lr = lr; }

 private:
  std::vector<ag::Var> params_;
  std::vector<Tensor> velocity_;
  Config cfg_;
};

/// StepLR: multiply lr by gamma every `step_size` epochs (paper: 20 / 0.2).
class StepLR {
 public:
  StepLR(SGD& opt, std::int64_t step_size = 20, float gamma = 0.2f)
      : opt_(&opt), step_size_(step_size), gamma_(gamma) {}

  /// Call once per finished epoch.
  void epoch_end() {
    ++epoch_;
    if (step_size_ > 0 && epoch_ % step_size_ == 0) {
      opt_->set_lr(opt_->lr() * gamma_);
    }
  }

  std::int64_t epoch() const { return epoch_; }

 private:
  SGD* opt_;
  std::int64_t step_size_;
  float gamma_;
  std::int64_t epoch_ = 0;
};

}  // namespace ibrar::train
