#pragma once
// Classification metrics shared by the evaluation loop and the benches.

#include <vector>

#include "tensor/tensor.hpp"

namespace ibrar::train {

/// Fraction of matching entries.
double accuracy_from_predictions(const std::vector<std::int64_t>& pred,
                                 const std::vector<std::int64_t>& truth);

/// counts[t][p] = number of samples with true class t predicted as p.
std::vector<std::vector<std::int64_t>> confusion_counts(
    const std::vector<std::int64_t>& pred, const std::vector<std::int64_t>& truth,
    std::int64_t num_classes);

/// The top-k *wrong* predicted classes per true class (paper Table 5 rows):
/// returns for each true class a list of (predicted class, count) sorted by
/// count descending, excluding the diagonal.
std::vector<std::vector<std::pair<std::int64_t, std::int64_t>>> top_confusions(
    const std::vector<std::vector<std::int64_t>>& counts, std::int64_t k);

}  // namespace ibrar::train
