#pragma once
// Training objectives: pluggable loss builders for the Trainer.
//
// Each objective sees the model and a minibatch and returns the scalar loss
// Var whose backward() produces parameter gradients. Adversarial-training
// objectives run their inner maximization here (the trainer zeroes parameter
// grads after objective construction, so attack-time gradient pollution is a
// non-issue even without the AttackModeGuard's pausing).

#include <memory>
#include <string>

#include "attacks/pgd.hpp"
#include "data/dataset.hpp"
#include "models/classifier.hpp"

namespace ibrar::train {

class Objective {
 public:
  virtual ~Objective() = default;
  virtual std::string name() const = 0;

  /// Build the loss graph for one batch (model is in training mode).
  virtual ag::Var compute(models::TapClassifier& model,
                          const data::Batch& batch) = 0;
};

using ObjectivePtr = std::shared_ptr<Objective>;

/// Plain cross-entropy on clean inputs ("CE only" baseline).
class CEObjective : public Objective {
 public:
  std::string name() const override { return "CE"; }
  ag::Var compute(models::TapClassifier& model, const data::Batch& batch) override;
};

/// Madry-style PGD adversarial training: CE on PGD examples of the batch.
class PGDATObjective : public Objective {
 public:
  explicit PGDATObjective(attacks::AttackConfig inner)
      : attack_(std::make_unique<attacks::PGD>(inner)) {}
  std::string name() const override { return "PGD-AT"; }
  ag::Var compute(models::TapClassifier& model, const data::Batch& batch) override;

  attacks::PGD& inner_attack() { return *attack_; }

 private:
  std::unique_ptr<attacks::PGD> attack_;
};

}  // namespace ibrar::train
