#pragma once
// VIB baseline (Alemi et al. 2017) in its deterministic-mean approximation:
// the model injects Gaussian reparameterization noise on the penultimate
// representation (TapClassifier::set_penultimate_noise), and this objective
// adds the KL(q(z|x) || N(0, I)) rate penalty, which for a unit-variance
// encoder reduces to 0.5 * E||mu||^2 (constants dropped). See DESIGN.md.

#include "train/objective.hpp"

namespace ibrar::train {

class VIBObjective : public Objective {
 public:
  /// beta: rate weight; noise_std: encoder stochasticity (set on the model).
  VIBObjective(models::TapClassifier& model, float beta = 1e-3f,
               float noise_std = 0.1f)
      : beta_(beta) {
    model.set_penultimate_noise(noise_std);
  }
  std::string name() const override { return "VIB"; }
  ag::Var compute(models::TapClassifier& model, const data::Batch& batch) override;

 private:
  float beta_;
};

}  // namespace ibrar::train
