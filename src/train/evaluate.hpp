#pragma once
// Batched robust evaluation over datasets.
//
// One driver — evaluate_robust() — runs the clean pass and an arbitrary
// attack suite over the dataset in a single batched sweep and returns a
// RobustReport: clean accuracy, per-attack robust accuracy and timing, the
// per-example worst-case mask across the whole suite, and (for composite
// specs like "fgsm→pgd→cw") per-stage statistics. The legacy scalar helpers
// below are thin wrappers over the same driver.

#include <string>

#include "attacks/attack.hpp"
#include "data/dataset.hpp"

namespace ibrar::train {

/// Robust accuracy of one suite entry; `stages` is non-empty when the entry
/// is a CompositeAttack (cumulative accuracy after each stage).
struct AttackResult {
  std::string name;
  double robust_acc = 0.0;
  double seconds = 0.0;          ///< total perturb+predict wall time
  double ns_per_example = 0.0;
  struct Stage {
    std::string name;
    std::int64_t forwarded = 0;  ///< examples entering the stage
    std::int64_t fooled = 0;     ///< newly misclassified by the stage
    double robust_acc = 0.0;     ///< cumulative accuracy after the stage
  };
  std::vector<Stage> stages;
};

/// One-pass robust evaluation summary.
struct RobustReport {
  std::int64_t examples = 0;
  double clean_acc = 0.0;  ///< -1 when the clean pass was skipped
  std::vector<AttackResult> per_attack;
  /// Per example: correctly classified clean AND under every attack.
  std::vector<std::uint8_t> worst_case_correct;
  double worst_case_acc = 0.0;
  double seconds = 0.0;
};

struct RobustEvalConfig {
  std::int64_t batch_size = 100;
  std::int64_t max_samples = -1;  ///< <= 0 = whole dataset
  /// Run the clean prediction pass (clean_acc + its contribution to the
  /// worst-case mask). The evaluate_adversarial wrapper turns it off so
  /// per-epoch training evals don't pay a discarded forward pass.
  bool with_clean = true;
};

/// Run the suite over (at most max_samples of) `ds` in one batched sweep.
RobustReport evaluate_robust(models::TapClassifier& model,
                             const data::Dataset& ds,
                             const std::vector<attacks::Attack*>& suite,
                             const RobustEvalConfig& cfg = {});

/// Spec-string convenience: each entry goes through attacks::parse_spec
/// (composites allowed), with `defaults` seeding every stage.
RobustReport evaluate_robust(models::TapClassifier& model,
                             const data::Dataset& ds,
                             const std::vector<std::string>& specs,
                             const RobustEvalConfig& cfg = {},
                             const attacks::AttackConfig& defaults = {});

/// Top-1 accuracy on clean examples.
double evaluate_clean(models::TapClassifier& model, const data::Dataset& ds,
                      std::int64_t batch_size = 100);

/// Top-1 accuracy on adversarial examples produced by `attack`; at most
/// `max_samples` examples are attacked (<=0 = all).
double evaluate_adversarial(models::TapClassifier& model, const data::Dataset& ds,
                            attacks::Attack& attack, std::int64_t batch_size = 100,
                            std::int64_t max_samples = -1);

/// Predictions on adversarial examples (for Table 5 confusion analysis).
std::vector<std::int64_t> adversarial_predictions(
    models::TapClassifier& model, const data::Dataset& ds,
    attacks::Attack& attack, std::int64_t batch_size = 100,
    std::int64_t max_samples = -1);

}  // namespace ibrar::train
