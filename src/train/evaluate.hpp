#pragma once
// Batched clean / adversarial evaluation over datasets.

#include "attacks/attack.hpp"
#include "data/dataset.hpp"

namespace ibrar::train {

/// Top-1 accuracy on clean examples.
double evaluate_clean(models::TapClassifier& model, const data::Dataset& ds,
                      std::int64_t batch_size = 100);

/// Top-1 accuracy on adversarial examples produced by `attack`; at most
/// `max_samples` examples are attacked (<=0 = all).
double evaluate_adversarial(models::TapClassifier& model, const data::Dataset& ds,
                            attacks::Attack& attack, std::int64_t batch_size = 100,
                            std::int64_t max_samples = -1);

/// Predictions on adversarial examples (for Table 5 confusion analysis).
std::vector<std::int64_t> adversarial_predictions(
    models::TapClassifier& model, const data::Dataset& ds,
    attacks::Attack& attack, std::int64_t batch_size = 100,
    std::int64_t max_samples = -1);

}  // namespace ibrar::train
