#include "train/evaluate.hpp"

#include "train/metrics.hpp"

namespace ibrar::train {
namespace {

std::int64_t clamp_samples(const data::Dataset& ds, std::int64_t max_samples) {
  return max_samples <= 0 ? ds.size() : std::min(max_samples, ds.size());
}

}  // namespace

double evaluate_clean(models::TapClassifier& model, const data::Dataset& ds,
                      std::int64_t batch_size) {
  std::int64_t correct = 0;
  for (std::int64_t start = 0; start < ds.size(); start += batch_size) {
    const auto end = std::min(start + batch_size, ds.size());
    std::vector<std::int64_t> idx;
    idx.reserve(static_cast<std::size_t>(end - start));
    for (std::int64_t i = start; i < end; ++i) idx.push_back(i);
    const auto batch = data::make_batch(ds, idx);
    const auto pred = attacks::predict(model, batch.x);
    for (std::size_t i = 0; i < pred.size(); ++i) {
      correct += pred[i] == batch.y[i] ? 1 : 0;
    }
  }
  return ds.size() > 0 ? static_cast<double>(correct) / ds.size() : 0.0;
}

double evaluate_adversarial(models::TapClassifier& model, const data::Dataset& ds,
                            attacks::Attack& attack, std::int64_t batch_size,
                            std::int64_t max_samples) {
  const auto n = clamp_samples(ds, max_samples);
  std::int64_t correct = 0;
  for (std::int64_t start = 0; start < n; start += batch_size) {
    const auto end = std::min(start + batch_size, n);
    std::vector<std::int64_t> idx;
    for (std::int64_t i = start; i < end; ++i) idx.push_back(i);
    const auto batch = data::make_batch(ds, idx);
    const Tensor adv = attack.perturb(model, batch.x, batch.y);
    const auto pred = attacks::predict(model, adv);
    for (std::size_t i = 0; i < pred.size(); ++i) {
      correct += pred[i] == batch.y[i] ? 1 : 0;
    }
  }
  return n > 0 ? static_cast<double>(correct) / n : 0.0;
}

std::vector<std::int64_t> adversarial_predictions(
    models::TapClassifier& model, const data::Dataset& ds,
    attacks::Attack& attack, std::int64_t batch_size, std::int64_t max_samples) {
  const auto n = clamp_samples(ds, max_samples);
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::int64_t start = 0; start < n; start += batch_size) {
    const auto end = std::min(start + batch_size, n);
    std::vector<std::int64_t> idx;
    for (std::int64_t i = start; i < end; ++i) idx.push_back(i);
    const auto batch = data::make_batch(ds, idx);
    const Tensor adv = attack.perturb(model, batch.x, batch.y);
    const auto pred = attacks::predict(model, adv);
    out.insert(out.end(), pred.begin(), pred.end());
  }
  return out;
}

}  // namespace ibrar::train
