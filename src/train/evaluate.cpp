#include "train/evaluate.hpp"

#include <algorithm>

#include "attacks/registry.hpp"
#include "util/stopwatch.hpp"

namespace ibrar::train {
namespace {

std::int64_t clamp_samples(const data::Dataset& ds, std::int64_t max_samples) {
  return max_samples <= 0 ? ds.size() : std::min(max_samples, ds.size());
}

}  // namespace

RobustReport evaluate_robust(models::TapClassifier& model,
                             const data::Dataset& ds,
                             const std::vector<attacks::Attack*>& suite,
                             const RobustEvalConfig& cfg) {
  Stopwatch total_sw;
  RobustReport report;
  report.examples = clamp_samples(ds, cfg.max_samples);
  report.worst_case_correct.assign(
      static_cast<std::size_t>(report.examples), 1);
  report.per_attack.resize(suite.size());
  for (std::size_t a = 0; a < suite.size(); ++a) {
    report.per_attack[a].name = suite[a]->name();
  }

  std::int64_t clean_correct = 0;
  std::vector<std::int64_t> attack_correct(suite.size(), 0);

  for (std::int64_t start = 0; start < report.examples;
       start += cfg.batch_size) {
    const auto end = std::min(start + cfg.batch_size, report.examples);
    const auto batch = data::make_batch(ds, start, end);

    if (cfg.with_clean) {
      const auto clean_pred = attacks::predict(model, batch.x);
      for (std::size_t i = 0; i < clean_pred.size(); ++i) {
        const bool ok = clean_pred[i] == batch.y[i];
        clean_correct += ok ? 1 : 0;
        if (!ok) {
          report.worst_case_correct[static_cast<std::size_t>(start) + i] = 0;
        }
      }
    }

    for (std::size_t a = 0; a < suite.size(); ++a) {
      AttackResult& res = report.per_attack[a];
      Stopwatch sw;
      const Tensor adv = suite[a]->perturb(model, batch.x, batch.y);
      const auto* comp =
          dynamic_cast<const attacks::CompositeAttack*>(suite[a]);
      std::vector<std::uint8_t> ok_mask(static_cast<std::size_t>(batch.size()));
      if (comp != nullptr) {
        // The composite already predicted every stage output to build its
        // survivor mask; reuse it instead of re-forwarding the batch.
        for (std::size_t i = 0; i < ok_mask.size(); ++i) {
          ok_mask[i] = comp->last_success()[i] ? 0 : 1;
        }
      } else {
        const auto pred = attacks::predict(model, adv);
        for (std::size_t i = 0; i < pred.size(); ++i) {
          ok_mask[i] = pred[i] == batch.y[i] ? 1 : 0;
        }
      }
      res.seconds += sw.seconds();
      for (std::size_t i = 0; i < ok_mask.size(); ++i) {
        attack_correct[a] += ok_mask[i] ? 1 : 0;
        if (!ok_mask[i]) {
          report.worst_case_correct[static_cast<std::size_t>(start) + i] = 0;
        }
      }
      if (comp != nullptr) {
        const auto& trace = comp->last_trace();
        if (res.stages.size() != trace.size()) res.stages.resize(trace.size());
        for (std::size_t s = 0; s < trace.size(); ++s) {
          res.stages[s].name = trace[s].name;
          res.stages[s].forwarded += trace[s].forwarded;
          res.stages[s].fooled += trace[s].fooled;
        }
      }
    }
  }

  const auto n = report.examples;
  report.clean_acc =
      !cfg.with_clean
          ? -1.0
          : (n > 0 ? static_cast<double>(clean_correct) / static_cast<double>(n)
                   : 0.0);
  std::int64_t worst = 0;
  for (const auto ok : report.worst_case_correct) worst += ok ? 1 : 0;
  report.worst_case_acc =
      n > 0 ? static_cast<double>(worst) / static_cast<double>(n) : 0.0;
  for (std::size_t a = 0; a < suite.size(); ++a) {
    AttackResult& res = report.per_attack[a];
    res.robust_acc =
        n > 0 ? static_cast<double>(attack_correct[a]) / static_cast<double>(n)
              : 0.0;
    res.ns_per_example = n > 0 ? res.seconds * 1e9 / static_cast<double>(n) : 0.0;
    // Composite stages: cumulative accuracy = survivors of stages 0..s.
    std::int64_t fooled_so_far = 0;
    for (auto& st : res.stages) {
      fooled_so_far += st.fooled;
      st.robust_acc =
          n > 0 ? static_cast<double>(n - fooled_so_far) / static_cast<double>(n)
                : 0.0;
    }
  }
  report.seconds = total_sw.seconds();
  return report;
}

RobustReport evaluate_robust(models::TapClassifier& model,
                             const data::Dataset& ds,
                             const std::vector<std::string>& specs,
                             const RobustEvalConfig& cfg,
                             const attacks::AttackConfig& defaults) {
  std::vector<attacks::AttackPtr> owned;
  owned.reserve(specs.size());
  std::vector<attacks::Attack*> suite;
  suite.reserve(specs.size());
  for (const auto& s : specs) {
    owned.push_back(attacks::parse_spec(s, defaults));
    suite.push_back(owned.back().get());
  }
  return evaluate_robust(model, ds, suite, cfg);
}

double evaluate_clean(models::TapClassifier& model, const data::Dataset& ds,
                      std::int64_t batch_size) {
  return evaluate_robust(model, ds, std::vector<attacks::Attack*>{},
                         {batch_size, -1})
      .clean_acc;
}

double evaluate_adversarial(models::TapClassifier& model, const data::Dataset& ds,
                            attacks::Attack& attack, std::int64_t batch_size,
                            std::int64_t max_samples) {
  std::vector<attacks::Attack*> suite{&attack};
  const auto report = evaluate_robust(
      model, ds, suite, {batch_size, max_samples, /*with_clean=*/false});
  return report.per_attack.empty() ? 0.0 : report.per_attack.front().robust_acc;
}

std::vector<std::int64_t> adversarial_predictions(
    models::TapClassifier& model, const data::Dataset& ds,
    attacks::Attack& attack, std::int64_t batch_size, std::int64_t max_samples) {
  const auto n = clamp_samples(ds, max_samples);
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::int64_t start = 0; start < n; start += batch_size) {
    const auto end = std::min(start + batch_size, n);
    const auto batch = data::make_batch(ds, start, end);
    const Tensor adv = attack.perturb(model, batch.x, batch.y);
    const auto pred = attacks::predict(model, adv);
    out.insert(out.end(), pred.begin(), pred.end());
  }
  return out;
}

}  // namespace ibrar::train
