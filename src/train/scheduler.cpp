#include "train/optimizer.hpp"

// StepLR is header-only; this TU anchors the target's source list.
namespace ibrar::train {}
