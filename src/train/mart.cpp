#include "train/mart.hpp"

#include "attacks/engine.hpp"
#include "tensor/ops.hpp"
#include "tensor/reduce.hpp"

namespace ibrar::train {

ag::Var MARTObjective::compute(models::TapClassifier& model,
                               const data::Batch& batch) {
  const Tensor adv = attack_->perturb(model, batch.x, batch.y);
  const auto n = batch.size();

  ag::Var logits_adv = model.forward(ag::Var::constant(adv));
  ag::Var p_adv = ag::softmax(logits_adv);

  // BCE part: -log p_y(x') - log(1 - max_{k != y} p_k(x')).
  ag::Var ce = ag::cross_entropy(logits_adv, batch.y);
  const auto wrong = attacks::engine::best_wrong_class(p_adv.value(), batch.y);
  ag::Var p_wrong = ag::gather_cols(p_adv, wrong);  // (n,1)
  ag::Var margin = ag::neg(ag::mean(
      ag::log(ag::add_scalar(ag::neg(p_wrong), 1.0f + 1e-6f))));
  ag::Var bce = ag::add(ce, margin);

  // Misclassification-aware KL term: weight by (1 - p_y(x)) with the clean
  // probabilities treated as constants (as in the reference implementation).
  ag::Var logits_clean = model.forward(ag::Var::constant(batch.x));
  ag::Var p_clean = ag::softmax(logits_clean);
  Tensor weight({n, 1});
  {
    const Tensor& pc = p_clean.value();
    for (std::int64_t i = 0; i < n; ++i) {
      weight.at(i, 0) = 1.0f - pc.at(i, batch.y[static_cast<std::size_t>(i)]);
    }
  }
  // Per-sample KL(p_clean || p_adv), weighted then averaged.
  ag::Var log_p_adv = ag::log_softmax(logits_adv);
  ag::Var per_elem = ag::mul(ag::detach(p_clean),
                             ag::sub(ag::log(ag::detach(p_clean)), log_p_adv));
  ag::Var per_sample = ag::sum_axis(per_elem, 1, /*keepdim=*/true);  // (n,1)
  ag::Var weighted = ag::mean(ag::mul(per_sample, ag::Var::constant(weight)));

  return ag::add(bce, ag::mul_scalar(weighted, lambda_));
}

}  // namespace ibrar::train
