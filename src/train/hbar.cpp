#include "train/hbar.hpp"

namespace ibrar::train {

ag::Var HBaRObjective::compute(models::TapClassifier& model,
                               const data::Batch& batch) {
  ag::Var input = ag::Var::constant(batch.x);
  auto out = model.forward_with_taps(input);
  ag::Var loss = ag::cross_entropy(out.logits, batch.y);
  return ag::add(loss, mi::ib_objective(input, out.taps, batch.y,
                                        model.num_classes(), cfg_));
}

}  // namespace ibrar::train
