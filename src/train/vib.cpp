#include "train/vib.hpp"

namespace ibrar::train {

ag::Var VIBObjective::compute(models::TapClassifier& model,
                              const data::Batch& batch) {
  auto out = model.forward_with_taps(ag::Var::constant(batch.x));
  ag::Var loss = ag::cross_entropy(out.logits, batch.y);
  // Rate term on the stochastic encoding z (the last tap, which carries the
  // injected reparameterization noise): 0.5 * mean ||z||^2.
  const ag::Var& z = out.taps.back();
  ag::Var rate = ag::mul_scalar(ag::mean(ag::sum_axis(ag::square(z), 1)), 0.5f);
  return ag::add(loss, ag::mul_scalar(rate, beta_));
}

}  // namespace ibrar::train
