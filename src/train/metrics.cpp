#include "train/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace ibrar::train {

double accuracy_from_predictions(const std::vector<std::int64_t>& pred,
                                 const std::vector<std::int64_t>& truth) {
  if (pred.size() != truth.size()) {
    throw std::invalid_argument("accuracy: size mismatch");
  }
  if (pred.empty()) return 0.0;
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == truth[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(pred.size());
}

std::vector<std::vector<std::int64_t>> confusion_counts(
    const std::vector<std::int64_t>& pred, const std::vector<std::int64_t>& truth,
    std::int64_t num_classes) {
  std::vector<std::vector<std::int64_t>> counts(
      static_cast<std::size_t>(num_classes),
      std::vector<std::int64_t>(static_cast<std::size_t>(num_classes), 0));
  for (std::size_t i = 0; i < pred.size(); ++i) {
    counts.at(static_cast<std::size_t>(truth[i]))
        .at(static_cast<std::size_t>(pred[i]))++;
  }
  return counts;
}

std::vector<std::vector<std::pair<std::int64_t, std::int64_t>>> top_confusions(
    const std::vector<std::vector<std::int64_t>>& counts, std::int64_t k) {
  std::vector<std::vector<std::pair<std::int64_t, std::int64_t>>> out;
  out.reserve(counts.size());
  for (std::size_t t = 0; t < counts.size(); ++t) {
    std::vector<std::pair<std::int64_t, std::int64_t>> row;
    for (std::size_t p = 0; p < counts[t].size(); ++p) {
      if (p == t) continue;
      row.emplace_back(static_cast<std::int64_t>(p), counts[t][p]);
    }
    std::stable_sort(row.begin(), row.end(),
                     [](const auto& a, const auto& b) { return a.second > b.second; });
    if (static_cast<std::int64_t>(row.size()) > k) {
      row.resize(static_cast<std::size_t>(k));
    }
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace ibrar::train
