#pragma once
// HBaR baseline (Wang et al. 2021, "Revisiting HSIC bottleneck for adversarial
// robustness"): CE plus the HSIC bottleneck over ALL hidden layers —
// structurally the same regularizer as IB-RAR's Eq. (1) but with every layer
// and no feature mask (the two deltas IB-RAR adds on top).

#include "mi/objective.hpp"
#include "train/objective.hpp"

namespace ibrar::train {

class HBaRObjective : public Objective {
 public:
  explicit HBaRObjective(float lambda_x = 1.0f, float lambda_y = 0.1f) {
    cfg_.alpha = lambda_x;
    cfg_.beta = lambda_y;
    // empty layer_indices = all taps
  }
  std::string name() const override { return "HBaR"; }
  ag::Var compute(models::TapClassifier& model, const data::Batch& batch) override;

 private:
  mi::IBObjectiveConfig cfg_;
};

}  // namespace ibrar::train
