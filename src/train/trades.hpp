#pragma once
// TRADES (Zhang et al. 2019): CE on clean inputs plus beta * KL between the
// clean and adversarial predictive distributions, with the adversarial point
// found by maximizing that KL inside the eps-ball.

#include "train/objective.hpp"

namespace ibrar::train {

class TRADESObjective : public Objective {
 public:
  TRADESObjective(attacks::AttackConfig inner, float beta = 6.0f)
      : inner_(inner), beta_(beta), rng_(inner.seed ^ 0x7d5u) {}
  std::string name() const override { return "TRADES"; }
  ag::Var compute(models::TapClassifier& model, const data::Batch& batch) override;

  /// Inner maximization: engine-composed PGD on KL(p_clean || p(x')) with
  /// Gaussian init. Public so the parity suite can pin it against the
  /// reference loop; labels are only consulted by the engine's optional
  /// margin-tracking/active-set paths.
  Tensor kl_pgd(models::TapClassifier& model, const Tensor& x,
                const std::vector<std::int64_t>& y, const Tensor& p_clean);

 private:
  attacks::AttackConfig inner_;
  float beta_;
  Rng rng_;
};

}  // namespace ibrar::train
