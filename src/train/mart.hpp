#pragma once
// MART (Wang et al. 2020): misclassification-aware adversarial training.
// Outer loss = BCE(p(x'), y) + lambda * KL(p(x) || p(x')) * (1 - p_y(x)),
// where BCE adds a margin term -log(1 - max_{k != y} p_k(x')) to CE, and the
// weighting emphasizes examples the clean model already gets wrong.

#include "attacks/registry.hpp"
#include "train/objective.hpp"

namespace ibrar::train {

class MARTObjective : public Objective {
 public:
  /// The inner maximization is any registry attack (default engine-backed
  /// PGD, matching the reference implementation).
  MARTObjective(attacks::AttackConfig inner, float lambda = 5.0f,
                const std::string& inner_attack = "pgd")
      : attack_(attacks::make(inner_attack, inner)), lambda_(lambda) {}
  std::string name() const override { return "MART"; }
  ag::Var compute(models::TapClassifier& model, const data::Batch& batch) override;

 private:
  attacks::AttackPtr attack_;
  float lambda_;
};

}  // namespace ibrar::train
