#include "train/trades.hpp"

#include "attacks/engine.hpp"
#include "tensor/reduce.hpp"

namespace ibrar::train {

Tensor TRADESObjective::kl_pgd(models::TapClassifier& model, const Tensor& x,
                               const std::vector<std::int64_t>& y,
                               const Tensor& p_clean) {
  // The inner maximization is an engine composition: Gaussian init (TRADES
  // initializes with small noise rather than uniform), KL-vs-clean loss,
  // sign steps in the eps-ball. rng_ persists across batches so a fixed seed
  // reproduces the whole training run.
  namespace eng = attacks::engine;
  eng::Spec spec;
  spec.init = eng::Init::kGaussian;
  spec.init_sigma = 1e-3f;
  spec.loss = eng::kl_vs_clean_loss(p_clean);
  spec.step = eng::Step::kSign;
  return eng::run(model, x, y, inner_, spec, rng_);
}

ag::Var TRADESObjective::compute(models::TapClassifier& model,
                                 const data::Batch& batch) {
  // Clean distribution for the inner maximization (fixed target).
  Tensor p_clean;
  {
    ag::NoGradGuard ng;
    const bool was = model.training();
    model.set_training(false);
    p_clean = softmax_rows(model.forward(ag::Var::constant(batch.x)).value());
    model.set_training(was);
  }
  const Tensor adv = kl_pgd(model, batch.x, batch.y, p_clean);

  // Outer loss: CE(clean) + beta * KL(p(clean) || p(adv)); gradients flow
  // through both forward passes.
  ag::Var logits_clean = model.forward(ag::Var::constant(batch.x));
  ag::Var loss_nat = ag::cross_entropy(logits_clean, batch.y);
  ag::Var p_clean_var = ag::softmax(logits_clean);
  ag::Var log_p_adv = ag::log_softmax(model.forward(ag::Var::constant(adv)));
  ag::Var robust = ag::kl_div(p_clean_var, log_p_adv);
  return ag::add(loss_nat, ag::mul_scalar(robust, beta_));
}

}  // namespace ibrar::train
