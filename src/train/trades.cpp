#include "train/trades.hpp"

#include "tensor/ops.hpp"
#include "tensor/random.hpp"
#include "tensor/reduce.hpp"

namespace ibrar::train {

Tensor TRADESObjective::kl_pgd(models::TapClassifier& model, const Tensor& x,
                               const Tensor& p_clean) {
  attacks::AttackModeGuard guard(model);
  Tensor adv = x;
  // TRADES initializes with small Gaussian noise rather than uniform.
  {
    Tensor noise = randn(x.shape(), rng_, 0.0f, 1e-3f);
    adv = add(adv, noise);
    attacks::project_linf(adv, x, inner_.eps, inner_.clip_lo, inner_.clip_hi);
  }
  const ag::Var p_const = ag::Var::constant(p_clean);
  for (std::int64_t s = 0; s < inner_.steps; ++s) {
    ag::Var input = ag::Var::param(adv);
    ag::Var kl = ag::kl_div(p_const, ag::log_softmax(model.forward(input)));
    kl.backward();
    adv = add(adv, mul_scalar(sign(input.grad()), inner_.alpha));
    attacks::project_linf(adv, x, inner_.eps, inner_.clip_lo, inner_.clip_hi);
  }
  return adv;
}

ag::Var TRADESObjective::compute(models::TapClassifier& model,
                                 const data::Batch& batch) {
  // Clean distribution for the inner maximization (fixed target).
  Tensor p_clean;
  {
    ag::NoGradGuard ng;
    const bool was = model.training();
    model.set_training(false);
    p_clean = softmax_rows(model.forward(ag::Var::constant(batch.x)).value());
    model.set_training(was);
  }
  const Tensor adv = kl_pgd(model, batch.x, p_clean);

  // Outer loss: CE(clean) + beta * KL(p(clean) || p(adv)); gradients flow
  // through both forward passes.
  ag::Var logits_clean = model.forward(ag::Var::constant(batch.x));
  ag::Var loss_nat = ag::cross_entropy(logits_clean, batch.y);
  ag::Var p_clean_var = ag::softmax(logits_clean);
  ag::Var log_p_adv = ag::log_softmax(model.forward(ag::Var::constant(adv)));
  ag::Var robust = ag::kl_div(p_clean_var, log_p_adv);
  return ag::add(loss_nat, ag::mul_scalar(robust, beta_));
}

}  // namespace ibrar::train
