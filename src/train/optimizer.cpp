#include "train/optimizer.hpp"

namespace ibrar::train {

SGD::SGD(std::vector<ag::Var> params, Config cfg)
    : params_(std::move(params)), cfg_(cfg) {
  velocity_.reserve(params_.size());
  for (const auto& p : params_) velocity_.emplace_back(p.value().shape());
}

void SGD::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    const Tensor& g = p.grad();
    Tensor& v = velocity_[i];
    Tensor& w = p.mutable_value();
    const auto n = w.numel();
    for (std::int64_t k = 0; k < n; ++k) {
      const float grad = g[k] + cfg_.weight_decay * w[k];
      v[k] = cfg_.momentum * v[k] + grad;
      w[k] -= cfg_.lr * v[k];
    }
  }
}

void SGD::zero_grad() {
  for (auto& p : params_) p.zero_grad();
}

}  // namespace ibrar::train
