#pragma once
// The epoch/batch training loop with pluggable objective, StepLR schedule,
// per-epoch hooks (IB-RAR uses one to refresh the feature mask) and optional
// per-epoch evaluation for convergence curves (paper Fig. 4).

#include <functional>
#include <optional>

#include "data/loader.hpp"
#include "train/objective.hpp"
#include "train/optimizer.hpp"

namespace ibrar::train {

struct TrainConfig {
  std::int64_t epochs = 10;
  std::int64_t batch_size = 100;
  float lr = 0.01f;          // paper hyperparameters
  float momentum = 0.9f;
  float weight_decay = 1e-2f;
  std::int64_t lr_step = 20;
  float lr_gamma = 0.2f;
  std::uint64_t seed = 42;
  bool verbose = false;
  /// Per-batch train accuracy needs one extra eval-mode forward per batch;
  /// adversarial-training runs can switch it off to skip that inference.
  bool track_train_acc = true;
};

struct EpochStats {
  std::int64_t epoch = 0;
  double mean_loss = 0.0;
  double train_acc = 0.0;   ///< accuracy on training batches (post-hoc
                            ///< logits); -1 when track_train_acc is off
  double test_acc = -1.0;   ///< -1 when no eval requested
  double adv_acc = -1.0;
  double seconds = 0.0;
};

class Trainer {
 public:
  Trainer(models::TapClassifierPtr model, ObjectivePtr objective,
          TrainConfig cfg);

  /// Run the full schedule; returns one stats row per epoch. When `test` is
  /// non-null, clean test accuracy is recorded each epoch; when `eval_attack`
  /// is also set, adversarial accuracy on (a subset of) the test set too.
  std::vector<EpochStats> fit(const data::Dataset& train,
                              const data::Dataset* test = nullptr,
                              attacks::Attack* eval_attack = nullptr,
                              std::int64_t eval_adv_samples = 200);

  /// Called after every epoch (mask refresh, recorders, ...).
  std::function<void(std::int64_t epoch, models::TapClassifier&)> epoch_hook;

  /// Called on every batch AFTER the optimizer step (information-plane
  /// recording for Fig. 5).
  std::function<void(std::int64_t epoch, std::int64_t batch,
                     models::TapClassifier&, const data::Batch&)> batch_hook;

  models::TapClassifier& model() { return *model_; }
  SGD& optimizer() { return *opt_; }

 private:
  models::TapClassifierPtr model_;
  ObjectivePtr objective_;
  TrainConfig cfg_;
  std::unique_ptr<SGD> opt_;
};

}  // namespace ibrar::train
