#include "train/objective.hpp"

namespace ibrar::train {

ag::Var CEObjective::compute(models::TapClassifier& model,
                             const data::Batch& batch) {
  return ag::cross_entropy(model.forward(ag::Var::constant(batch.x)), batch.y);
}

ag::Var PGDATObjective::compute(models::TapClassifier& model,
                                const data::Batch& batch) {
  const Tensor adv = attack_->perturb(model, batch.x, batch.y);
  return ag::cross_entropy(model.forward(ag::Var::constant(adv)), batch.y);
}

}  // namespace ibrar::train
