#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "runtime/parallel_for.hpp"

namespace ibrar {
namespace {

// Iterate a broadcast binary op with stride arithmetic. Fast path when both
// shapes match; otherwise walk the output in row-major order mapping each
// coordinate back into a and b with zero-stride on broadcast axes. Both paths
// split the flat output range across the runtime pool; every element is a
// pure function of its coordinate, so chunking never changes the bits.
template <typename F>
Tensor broadcast_apply(const Tensor& a, const Tensor& b, F&& f) {
  if (a.same_shape(b)) {
    Tensor out(a.shape());
    const auto pa = a.data();
    const auto pb = b.data();
    auto po = out.data();
    runtime::parallel_for(
        0, static_cast<std::int64_t>(pa.size()), runtime::kElementwiseGrain,
        [&](std::int64_t i0, std::int64_t i1) {
          for (std::int64_t i = i0; i < i1; ++i) {
            const auto u = static_cast<std::size_t>(i);
            po[u] = f(pa[u], pb[u]);
          }
        });
    return out;
  }

  const Shape out_shape = broadcast_shape(a.shape(), b.shape());
  Tensor out(out_shape);
  const std::size_t rank = out_shape.size();

  // Align shapes to out rank with leading 1s, then compute effective strides
  // (0 where the input dimension is 1).
  auto aligned_strides = [&](const Tensor& t) {
    std::vector<std::int64_t> strides(rank, 0);
    const auto& ts = t.shape();
    const auto native = row_major_strides(ts);
    const std::size_t off = rank - ts.size();
    for (std::size_t i = 0; i < ts.size(); ++i) {
      strides[off + i] = ts[i] == 1 ? 0 : native[i];
    }
    return strides;
  };
  const auto sa = aligned_strides(a);
  const auto sb = aligned_strides(b);

  const auto pa = a.data();
  const auto pb = b.data();
  auto po = out.data();
  const std::int64_t n = out.numel();
  runtime::parallel_for(0, n, runtime::kElementwiseGrain,
                        [&](std::int64_t f0, std::int64_t f1) {
    // Seed the odometer and both input offsets at flat index f0.
    std::vector<std::int64_t> coord(rank, 0);
    std::int64_t ia = 0;
    std::int64_t ib = 0;
    std::int64_t tmp = f0;
    for (std::int64_t d = static_cast<std::int64_t>(rank) - 1; d >= 0; --d) {
      const auto du = static_cast<std::size_t>(d);
      coord[du] = tmp % out_shape[du];
      tmp /= out_shape[du];
      ia += coord[du] * sa[du];
      ib += coord[du] * sb[du];
    }
    for (std::int64_t flat = f0; flat < f1; ++flat) {
      po[static_cast<std::size_t>(flat)] =
          f(pa[static_cast<std::size_t>(ia)], pb[static_cast<std::size_t>(ib)]);
      // Increment the multi-index (odometer) and the two input offsets.
      for (std::int64_t d = static_cast<std::int64_t>(rank) - 1; d >= 0; --d) {
        const auto du = static_cast<std::size_t>(d);
        coord[du] += 1;
        ia += sa[du];
        ib += sb[du];
        if (coord[du] < out_shape[du]) break;
        ia -= sa[du] * out_shape[du];
        ib -= sb[du] * out_shape[du];
        coord[du] = 0;
      }
    }
  });
  return out;
}

}  // namespace

Tensor binary_op(const Tensor& a, const Tensor& b,
                 const std::function<float(float, float)>& f) {
  return broadcast_apply(a, b, f);
}

Tensor add(const Tensor& a, const Tensor& b) {
  return broadcast_apply(a, b, [](float x, float y) { return x + y; });
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return broadcast_apply(a, b, [](float x, float y) { return x - y; });
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return broadcast_apply(a, b, [](float x, float y) { return x * y; });
}
Tensor div(const Tensor& a, const Tensor& b) {
  return broadcast_apply(a, b, [](float x, float y) { return x / y; });
}
Tensor maximum(const Tensor& a, const Tensor& b) {
  return broadcast_apply(a, b, [](float x, float y) { return std::max(x, y); });
}
Tensor minimum(const Tensor& a, const Tensor& b) {
  return broadcast_apply(a, b, [](float x, float y) { return std::min(x, y); });
}
Tensor greater(const Tensor& a, const Tensor& b) {
  return broadcast_apply(a, b, [](float x, float y) { return x > y ? 1.0f : 0.0f; });
}
Tensor equal_mask(const Tensor& a, const Tensor& b) {
  return broadcast_apply(a, b, [](float x, float y) { return x == y ? 1.0f : 0.0f; });
}

Tensor unary_op(const Tensor& a, const std::function<float(float)>& f) {
  Tensor out(a.shape());
  const auto pa = a.data();
  auto po = out.data();
  runtime::parallel_for(
      0, static_cast<std::int64_t>(pa.size()), runtime::kElementwiseGrain,
      [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          const auto u = static_cast<std::size_t>(i);
          po[u] = f(pa[u]);
        }
      });
  return out;
}

Tensor add_scalar(const Tensor& a, float s) {
  return unary_op(a, [s](float x) { return x + s; });
}
Tensor mul_scalar(const Tensor& a, float s) {
  return unary_op(a, [s](float x) { return x * s; });
}
Tensor neg(const Tensor& a) { return unary_op(a, [](float x) { return -x; }); }
Tensor exp(const Tensor& a) {
  return unary_op(a, [](float x) { return std::exp(x); });
}
Tensor log(const Tensor& a) {
  return unary_op(a, [](float x) { return std::log(std::max(x, 1e-38f)); });
}
Tensor sqrt(const Tensor& a) {
  return unary_op(a, [](float x) { return std::sqrt(x); });
}
Tensor abs(const Tensor& a) {
  return unary_op(a, [](float x) { return std::fabs(x); });
}
Tensor sign(const Tensor& a) {
  return unary_op(a, [](float x) { return x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f : 0.0f); });
}
Tensor relu(const Tensor& a) {
  return unary_op(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}
Tensor tanh(const Tensor& a) {
  return unary_op(a, [](float x) { return std::tanh(x); });
}
Tensor sigmoid(const Tensor& a) {
  return unary_op(a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}
Tensor square(const Tensor& a) {
  return unary_op(a, [](float x) { return x * x; });
}
Tensor clamp(const Tensor& a, float lo, float hi) {
  return unary_op(a, [lo, hi](float x) { return std::min(std::max(x, lo), hi); });
}
Tensor pow_scalar(const Tensor& a, float p) {
  return unary_op(a, [p](float x) { return std::pow(x, p); });
}

Tensor transpose2d(const Tensor& a) {
  if (a.rank() != 2) throw std::invalid_argument("transpose2d: rank != 2");
  const auto m = a.dim(0);
  const auto n = a.dim(1);
  Tensor out({n, m});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) out.at(j, i) = a.at(i, j);
  }
  return out;
}

Tensor concat_rows(const std::vector<Tensor>& parts) {
  if (parts.empty()) throw std::invalid_argument("concat_rows: empty");
  Shape shape = parts.front().shape();
  if (shape.empty()) throw std::invalid_argument("concat_rows: scalar part");
  std::int64_t rows = 0;
  for (const auto& p : parts) {
    Shape tail_a(shape.begin() + 1, shape.end());
    Shape tail_b(p.shape().begin() + 1, p.shape().end());
    if (p.rank() != static_cast<std::int64_t>(shape.size()) || tail_a != tail_b) {
      throw std::invalid_argument("concat_rows: trailing shape mismatch");
    }
    rows += p.dim(0);
  }
  shape[0] = rows;
  Tensor out(shape);
  std::size_t off = 0;
  for (const auto& p : parts) {
    std::copy(p.data().begin(), p.data().end(), out.data().begin() + off);
    off += p.data().size();
  }
  return out;
}

Tensor take_rows(const Tensor& a, const std::vector<std::int64_t>& idx) {
  if (a.rank() < 1) throw std::invalid_argument("take_rows: scalar");
  // 0-row sources are legal (empty batches); any index into one throws below.
  const std::int64_t row_size = a.dim(0) > 0 ? a.numel() / a.dim(0) : 0;
  Shape shape = a.shape();
  shape[0] = static_cast<std::int64_t>(idx.size());
  Tensor out(shape);
  // Batch assembly hot path (DataLoader::next): rows copy independently.
  const std::int64_t grain = runtime::grain_for(row_size);
  runtime::parallel_for(
      0, static_cast<std::int64_t>(idx.size()), grain,
      [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r) {
          const auto src = idx[static_cast<std::size_t>(r)];
          if (src < 0 || src >= a.dim(0)) throw std::out_of_range("take_rows index");
          std::copy_n(a.data().begin() + src * row_size, row_size,
                      out.data().begin() + r * row_size);
        }
      });
  return out;
}

void put_rows(Tensor& dst, const std::vector<std::int64_t>& idx,
              const Tensor& src) {
  if (dst.rank() < 1 || src.rank() < 1) {
    throw std::invalid_argument("put_rows: scalar");
  }
  if (src.dim(0) != static_cast<std::int64_t>(idx.size())) {
    throw std::invalid_argument("put_rows: src rows != index count");
  }
  if (idx.empty()) return;  // also covers legal 0-row destinations
  const std::int64_t row_size = dst.dim(0) > 0 ? dst.numel() / dst.dim(0) : 0;
  if (row_size == 0 || src.numel() / src.dim(0) != row_size) {
    throw std::invalid_argument("put_rows: trailing shape mismatch");
  }
  // Active-set scatter-back hot path: rows land independently, so the copies
  // fan out across the pool like take_rows' gathers.
  runtime::parallel_for(
      0, static_cast<std::int64_t>(idx.size()), runtime::grain_for(row_size),
      [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r) {
          const auto dstrow = idx[static_cast<std::size_t>(r)];
          if (dstrow < 0 || dstrow >= dst.dim(0)) {
            throw std::out_of_range("put_rows index");
          }
          std::copy_n(src.data().begin() + r * row_size, row_size,
                      dst.data().begin() + dstrow * row_size);
        }
      });
}

Tensor one_hot(const std::vector<std::int64_t>& labels, std::int64_t num_classes) {
  Tensor out({static_cast<std::int64_t>(labels.size()), num_classes});
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] < 0 || labels[i] >= num_classes) {
      throw std::out_of_range("one_hot label");
    }
    out.at(static_cast<std::int64_t>(i), labels[i]) = 1.0f;
  }
  return out;
}

Tensor broadcast_to(const Tensor& a, const Shape& target) {
  return add(a, Tensor(target));  // add with zeros performs the broadcast copy
}

Tensor reduce_to_shape(const Tensor& g, const Shape& target) {
  if (g.shape() == target) return g;
  const std::size_t out_rank = target.size();
  const std::size_t g_rank = g.shape().size();
  if (out_rank > g_rank) {
    throw std::invalid_argument("reduce_to_shape: target rank exceeds source");
  }
  Tensor out(target);
  const auto g_shape = g.shape();
  const auto g_strides = row_major_strides(g_shape);
  // Target strides aligned to g's rank; 0 stride where target dim is 1 or absent.
  std::vector<std::int64_t> t_strides(g_rank, 0);
  const auto native = row_major_strides(target);
  const std::size_t off = g_rank - out_rank;
  for (std::size_t i = 0; i < out_rank; ++i) {
    t_strides[off + i] = target[i] == 1 ? 0 : native[i];
  }

  std::vector<std::int64_t> coord(g_rank, 0);
  std::int64_t it = 0;
  const auto pg = g.data();
  auto po = out.data();
  const std::int64_t n = g.numel();
  for (std::int64_t flat = 0; flat < n; ++flat) {
    po[static_cast<std::size_t>(it)] += pg[static_cast<std::size_t>(flat)];
    for (std::int64_t d = static_cast<std::int64_t>(g_rank) - 1; d >= 0; --d) {
      const auto du = static_cast<std::size_t>(d);
      coord[du] += 1;
      it += t_strides[du];
      if (coord[du] < g_shape[du]) break;
      it -= t_strides[du] * g_shape[du];
      coord[du] = 0;
    }
  }
  return out;
}

float sum_all(const Tensor& a) {
  const auto pa = a.data();
  // Grain-sized chunks with in-order combination: the grouping of the double
  // accumulation depends only on the grain, never on the thread count.
  const double s = runtime::parallel_reduce(
      0, static_cast<std::int64_t>(pa.size()), runtime::kElementwiseGrain, 0.0,
      [&](std::int64_t i0, std::int64_t i1) {
        double part = 0.0;
        for (std::int64_t i = i0; i < i1; ++i) part += pa[static_cast<std::size_t>(i)];
        return part;
      },
      [](double acc, double part) { return acc + part; });
  return static_cast<float>(s);
}

float mean_all(const Tensor& a) {
  return a.numel() == 0 ? 0.0f : sum_all(a) / static_cast<float>(a.numel());
}

float max_all(const Tensor& a) {
  const auto pa = a.data();
  return runtime::parallel_reduce(
      0, static_cast<std::int64_t>(pa.size()), runtime::kElementwiseGrain,
      -std::numeric_limits<float>::infinity(),
      [&](std::int64_t i0, std::int64_t i1) {
        float part = -std::numeric_limits<float>::infinity();
        for (std::int64_t i = i0; i < i1; ++i) {
          part = std::max(part, pa[static_cast<std::size_t>(i)]);
        }
        return part;
      },
      [](float acc, float part) { return std::max(acc, part); });
}

float min_all(const Tensor& a) {
  const auto pa = a.data();
  return runtime::parallel_reduce(
      0, static_cast<std::int64_t>(pa.size()), runtime::kElementwiseGrain,
      std::numeric_limits<float>::infinity(),
      [&](std::int64_t i0, std::int64_t i1) {
        float part = std::numeric_limits<float>::infinity();
        for (std::int64_t i = i0; i < i1; ++i) {
          part = std::min(part, pa[static_cast<std::size_t>(i)]);
        }
        return part;
      },
      [](float acc, float part) { return std::min(acc, part); });
}

float dot(const Tensor& a, const Tensor& b) {
  if (a.numel() != b.numel()) throw std::invalid_argument("dot: size mismatch");
  const auto pa = a.data();
  const auto pb = b.data();
  const double s = runtime::parallel_reduce(
      0, static_cast<std::int64_t>(pa.size()), runtime::kElementwiseGrain, 0.0,
      [&](std::int64_t i0, std::int64_t i1) {
        double part = 0.0;
        for (std::int64_t i = i0; i < i1; ++i) {
          const auto u = static_cast<std::size_t>(i);
          part += double(pa[u]) * double(pb[u]);
        }
        return part;
      },
      [](double acc, double part) { return acc + part; });
  return static_cast<float>(s);
}

float l2_norm(const Tensor& a) { return std::sqrt(std::max(0.0f, dot(a, a))); }

float linf_norm(const Tensor& a) {
  const auto pa = a.data();
  return runtime::parallel_reduce(
      0, static_cast<std::int64_t>(pa.size()), runtime::kElementwiseGrain, 0.0f,
      [&](std::int64_t i0, std::int64_t i1) {
        float part = 0.0f;
        for (std::int64_t i = i0; i < i1; ++i) {
          part = std::max(part, std::fabs(pa[static_cast<std::size_t>(i)]));
        }
        return part;
      },
      [](float acc, float part) { return std::max(acc, part); });
}

}  // namespace ibrar
