#include "tensor/im2col.hpp"

#include <limits>
#include <stdexcept>

#include "obs/profile.hpp"
#include "runtime/parallel_for.hpp"
#include "tensor/matmul.hpp"

namespace ibrar {

std::int64_t conv_out_dim(std::int64_t in, std::int64_t kernel, std::int64_t stride,
                          std::int64_t pad) {
  return (in + 2 * pad - kernel) / stride + 1;
}

Tensor im2col(const Tensor& x, const Conv2dSpec& spec) {
  static obs::ProfileSite& prof = obs::profile_site("tensor/im2col");
  obs::ProfileScope prof_scope(prof);
  if (x.rank() != 4) throw std::invalid_argument("im2col: x must be NCHW");
  const auto n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const auto k = spec.kernel;
  const auto oh = conv_out_dim(h, k, spec.stride, spec.pad);
  const auto ow = conv_out_dim(w, k, spec.stride, spec.pad);
  Tensor cols({n * oh * ow, c * k * k});
  const float* px = x.data().data();
  float* pc = cols.data().data();
  const std::int64_t row_len = c * k * k;
  // Every output row is an independent gather; split the flat
  // (image, oy, ox) row index across the pool.
  const std::int64_t grain = runtime::grain_for(row_len);
  runtime::parallel_for(0, n * oh * ow, grain, [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const std::int64_t in_n = r / (oh * ow);
      const std::int64_t oy = (r / ow) % oh;
      const std::int64_t ox = r % ow;
      float* row = pc + r * row_len;
      const std::int64_t iy0 = oy * spec.stride - spec.pad;
      const std::int64_t ix0 = ox * spec.stride - spec.pad;
      for (std::int64_t ic = 0; ic < c; ++ic) {
        const float* plane = px + (in_n * c + ic) * h * w;
        for (std::int64_t ky = 0; ky < k; ++ky) {
          const std::int64_t iy = iy0 + ky;
          for (std::int64_t kx = 0; kx < k; ++kx) {
            const std::int64_t ix = ix0 + kx;
            const bool in_bounds = iy >= 0 && iy < h && ix >= 0 && ix < w;
            *row++ = in_bounds ? plane[iy * w + ix] : 0.0f;
          }
        }
      }
    }
  });
  return cols;
}

Tensor col2im(const Tensor& cols, const Shape& x_shape, const Conv2dSpec& spec) {
  if (x_shape.size() != 4) throw std::invalid_argument("col2im: x_shape must be NCHW");
  const auto n = x_shape[0], c = x_shape[1], h = x_shape[2], w = x_shape[3];
  const auto k = spec.kernel;
  const auto oh = conv_out_dim(h, k, spec.stride, spec.pad);
  const auto ow = conv_out_dim(w, k, spec.stride, spec.pad);
  Tensor x(x_shape);
  const float* pc = cols.data().data();
  float* px = x.data().data();
  const std::int64_t row_len = c * k * k;
  // Columns scatter-add into their source image only, so images parallelize
  // cleanly; within one image the accumulation order matches the serial loop.
  runtime::parallel_for(0, n, 1, [&](std::int64_t n0, std::int64_t n1) {
  for (std::int64_t in_n = n0; in_n < n1; ++in_n) {
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        const float* row = pc + ((in_n * oh + oy) * ow + ox) * row_len;
        const std::int64_t iy0 = oy * spec.stride - spec.pad;
        const std::int64_t ix0 = ox * spec.stride - spec.pad;
        for (std::int64_t ic = 0; ic < c; ++ic) {
          float* plane = px + (in_n * c + ic) * h * w;
          for (std::int64_t ky = 0; ky < k; ++ky) {
            const std::int64_t iy = iy0 + ky;
            for (std::int64_t kx = 0; kx < k; ++kx) {
              const std::int64_t ix = ix0 + kx;
              const float v = *row++;
              if (iy >= 0 && iy < h && ix >= 0 && ix < w) plane[iy * w + ix] += v;
            }
          }
        }
      }
    }
  }
  });
  return x;
}

Tensor conv2d(const Tensor& x, const Tensor& w, const Tensor* bias,
              const Conv2dSpec& spec) {
  static obs::ProfileSite& prof = obs::profile_site("tensor/conv2d");
  obs::ProfileScope prof_scope(prof);
  if (x.rank() != 4 || w.rank() != 4) {
    throw std::invalid_argument("conv2d: x and w must be rank 4");
  }
  if (x.dim(1) != w.dim(1)) throw std::invalid_argument("conv2d: channel mismatch");
  const auto n = x.dim(0);
  const auto f = w.dim(0);
  const auto oh = conv_out_dim(x.dim(2), spec.kernel, spec.stride, spec.pad);
  const auto ow = conv_out_dim(x.dim(3), spec.kernel, spec.stride, spec.pad);

  const Tensor cols = im2col(x, spec);                    // (N*OH*OW, CKK)
  const Tensor wmat = w.reshape({f, w.numel() / f});      // (F, CKK)
  Tensor prod = matmul_nt(cols, wmat);                    // (N*OH*OW, F)

  // Transpose the (spatial, filter) layout into NCHW.
  Tensor out({n, f, oh, ow});
  const float* pp = prod.data().data();
  float* po = out.data().data();
  const std::int64_t spatial = oh * ow;
  if (bias != nullptr && bias->numel() != f) {
    throw std::invalid_argument("conv2d: bias size");
  }
  const float* pb = bias != nullptr ? bias->data().data() : nullptr;
  runtime::parallel_for(0, n, 1, [&](std::int64_t n0, std::int64_t n1) {
    for (std::int64_t in_n = n0; in_n < n1; ++in_n) {
      for (std::int64_t s = 0; s < spatial; ++s) {
        const float* row = pp + (in_n * spatial + s) * f;
        for (std::int64_t of = 0; of < f; ++of) {
          po[(in_n * f + of) * spatial + s] = row[of];
        }
      }
      if (pb != nullptr) {
        for (std::int64_t of = 0; of < f; ++of) {
          float* plane = po + (in_n * f + of) * spatial;
          const float b = pb[of];
          for (std::int64_t s = 0; s < spatial; ++s) plane[s] += b;
        }
      }
    }
  });
  return out;
}

PoolResult maxpool2d(const Tensor& x, std::int64_t kernel, std::int64_t stride) {
  if (x.rank() != 4) throw std::invalid_argument("maxpool2d: x must be NCHW");
  const auto n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const auto oh = (h - kernel) / stride + 1;
  const auto ow = (w - kernel) / stride + 1;
  PoolResult r{Tensor({n, c, oh, ow}), {}};
  r.argmax.resize(static_cast<std::size_t>(n * c * oh * ow));
  const float* px = x.data().data();
  float* po = r.out.data().data();
  // One (image, channel) plane per unit of work; each writes its own slice of
  // out/argmax.
  const std::int64_t out_spatial = oh * ow;
  const std::int64_t grain = runtime::grain_for(out_spatial * kernel * kernel);
  runtime::parallel_for(0, n * c, grain, [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t plane_idx = p0; plane_idx < p1; ++plane_idx) {
      const float* plane = px + plane_idx * h * w;
      const std::int64_t plane_off = plane_idx * h * w;
      std::size_t oi = static_cast<std::size_t>(plane_idx * out_spatial);
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_idx = 0;
          for (std::int64_t ky = 0; ky < kernel; ++ky) {
            for (std::int64_t kx = 0; kx < kernel; ++kx) {
              const std::int64_t iy = oy * stride + ky;
              const std::int64_t ix = ox * stride + kx;
              const float v = plane[iy * w + ix];
              if (v > best) {
                best = v;
                best_idx = iy * w + ix;
              }
            }
          }
          po[oi] = best;
          r.argmax[oi] = plane_off + best_idx;
          ++oi;
        }
      }
    }
  });
  return r;
}

Tensor maxpool2d_backward(const Tensor& grad_out, const Shape& x_shape,
                          const std::vector<std::int64_t>& argmax) {
  Tensor gx(x_shape);
  const auto pg = grad_out.data();
  auto px = gx.data();
  for (std::size_t i = 0; i < argmax.size(); ++i) {
    px[static_cast<std::size_t>(argmax[i])] += pg[i];
  }
  return gx;
}

Tensor global_avg_pool(const Tensor& x) {
  if (x.rank() != 4) throw std::invalid_argument("global_avg_pool: NCHW only");
  const auto n = x.dim(0), c = x.dim(1);
  const auto spatial = x.dim(2) * x.dim(3);
  Tensor out({n, c});
  const float* px = x.data().data();
  float* po = out.data().data();
  const std::int64_t grain = runtime::grain_for(spatial);
  runtime::parallel_for(0, n * c, grain, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      double s = 0.0;
      const float* plane = px + i * spatial;
      for (std::int64_t k = 0; k < spatial; ++k) s += plane[k];
      po[i] = static_cast<float>(s / static_cast<double>(spatial));
    }
  });
  return out;
}

Tensor global_avg_pool_backward(const Tensor& grad_out, const Shape& x_shape) {
  Tensor gx(x_shape);
  const auto n = x_shape[0], c = x_shape[1];
  const auto spatial = x_shape[2] * x_shape[3];
  const float* pg = grad_out.data().data();
  float* px = gx.data().data();
  const float inv = 1.0f / static_cast<float>(spatial);
  const std::int64_t grain = runtime::grain_for(spatial);
  runtime::parallel_for(0, n * c, grain, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float g = pg[i] * inv;
      float* plane = px + i * spatial;
      for (std::int64_t k = 0; k < spatial; ++k) plane[k] = g;
    }
  });
  return gx;
}

}  // namespace ibrar
