#pragma once
// Random tensor constructors (all take an explicit Rng for determinism).

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace ibrar {

/// I.i.d. standard normal entries scaled by stddev around mean.
Tensor randn(Shape shape, Rng& rng, float mean = 0.0f, float stddev = 1.0f);

/// I.i.d. uniform entries in [lo, hi).
Tensor rand_uniform(Shape shape, Rng& rng, float lo = 0.0f, float hi = 1.0f);

/// Entries are -1 or +1 with equal probability (used for Linf init noise).
Tensor rand_sign(Shape shape, Rng& rng);

}  // namespace ibrar
