#pragma once
// Dense row-major float32 tensor with value semantics.
//
// This is the numerical substrate for the whole library: a small, predictable
// N-d array (rank <= 4 is what the models use) with NumPy-style broadcasting
// implemented in ops.hpp. Data is owned by value (std::vector<float>), so
// copies are deep and moves are cheap; the autograd layer adds sharing on top.

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace ibrar {

using Shape = std::vector<std::int64_t>;

/// Number of elements implied by a shape (empty shape = scalar = 1 element).
std::int64_t shape_numel(const Shape& shape);

/// Human-readable "[2, 3, 4]".
std::string shape_str(const Shape& shape);

/// Dense row-major float tensor.
class Tensor {
 public:
  /// Empty (rank-0, one element, value 0): behaves as a scalar.
  Tensor();

  /// Zero-initialized tensor of `shape`.
  explicit Tensor(Shape shape);

  /// Tensor of `shape` filled with `fill`.
  Tensor(Shape shape, float fill);

  /// Tensor wrapping existing data (size must match shape).
  Tensor(Shape shape, std::vector<float> data);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }
  static Tensor full(Shape shape, float v) { return Tensor(std::move(shape), v); }
  static Tensor scalar(float v) { return Tensor({}, {v}); }

  /// 1-D tensor from values.
  static Tensor from_vector(std::vector<float> v);

  /// Identity-like matrix (n x n).
  static Tensor eye(std::int64_t n);

  /// Evenly spaced values [start, start + step*n).
  static Tensor arange(std::int64_t n, float start = 0.0f, float step = 1.0f);

  const Shape& shape() const { return shape_; }
  std::int64_t rank() const { return static_cast<std::int64_t>(shape_.size()); }
  std::int64_t dim(std::int64_t i) const;
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  std::span<float> data() { return std::span<float>(data_); }
  std::span<const float> data() const { return std::span<const float>(data_); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](std::int64_t i) const { return data_[static_cast<std::size_t>(i)]; }

  /// Multi-index access (rank must match argument count).
  float& at(std::int64_t i);
  float at(std::int64_t i) const;
  float& at(std::int64_t i, std::int64_t j);
  float at(std::int64_t i, std::int64_t j) const;
  float& at(std::int64_t i, std::int64_t j, std::int64_t k);
  float at(std::int64_t i, std::int64_t j, std::int64_t k) const;
  float& at(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l);
  float at(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l) const;

  /// Scalar value of a one-element tensor.
  float item() const;

  /// Same data, new shape (numel must match).
  Tensor reshape(Shape new_shape) const;

  /// Row-major strides of this tensor's shape.
  std::vector<std::int64_t> strides() const;

  /// Fill in place.
  void fill(float v);

  /// True if every element is finite.
  bool all_finite() const;

  /// Compact preview string for logging/debugging.
  std::string to_string(std::int64_t max_elems = 16) const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

/// Row-major strides of `shape`.
std::vector<std::int64_t> row_major_strides(const Shape& shape);

/// NumPy broadcast result shape; throws std::invalid_argument on mismatch.
Shape broadcast_shape(const Shape& a, const Shape& b);

}  // namespace ibrar
