#include "tensor/tensor.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace ibrar {

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (const auto d : shape) {
    if (d < 0) throw std::invalid_argument("negative dimension");
    n *= d;
  }
  return n;
}

std::string shape_str(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i != 0) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor() : shape_{}, data_(1, 0.0f) {}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_numel(shape_)), 0.0f) {}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_numel(shape_)), fill) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (shape_numel(shape_) != static_cast<std::int64_t>(data_.size())) {
    throw std::invalid_argument("Tensor: data size " +
                                std::to_string(data_.size()) +
                                " does not match shape " + shape_str(shape_));
  }
}

Tensor Tensor::from_vector(std::vector<float> v) {
  const auto n = static_cast<std::int64_t>(v.size());
  return Tensor({n}, std::move(v));
}

Tensor Tensor::eye(std::int64_t n) {
  Tensor t({n, n});
  for (std::int64_t i = 0; i < n; ++i) t.at(i, i) = 1.0f;
  return t;
}

Tensor Tensor::arange(std::int64_t n, float start, float step) {
  Tensor t({n});
  for (std::int64_t i = 0; i < n; ++i) t[i] = start + step * static_cast<float>(i);
  return t;
}

std::int64_t Tensor::dim(std::int64_t i) const {
  if (i < 0) i += rank();
  if (i < 0 || i >= rank()) throw std::out_of_range("Tensor::dim index");
  return shape_[static_cast<std::size_t>(i)];
}

float& Tensor::at(std::int64_t i) {
  assert(rank() == 1);
  return data_[static_cast<std::size_t>(i)];
}
float Tensor::at(std::int64_t i) const {
  assert(rank() == 1);
  return data_[static_cast<std::size_t>(i)];
}
float& Tensor::at(std::int64_t i, std::int64_t j) {
  assert(rank() == 2);
  return data_[static_cast<std::size_t>(i * shape_[1] + j)];
}
float Tensor::at(std::int64_t i, std::int64_t j) const {
  assert(rank() == 2);
  return data_[static_cast<std::size_t>(i * shape_[1] + j)];
}
float& Tensor::at(std::int64_t i, std::int64_t j, std::int64_t k) {
  assert(rank() == 3);
  return data_[static_cast<std::size_t>((i * shape_[1] + j) * shape_[2] + k)];
}
float Tensor::at(std::int64_t i, std::int64_t j, std::int64_t k) const {
  assert(rank() == 3);
  return data_[static_cast<std::size_t>((i * shape_[1] + j) * shape_[2] + k)];
}
float& Tensor::at(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l) {
  assert(rank() == 4);
  return data_[static_cast<std::size_t>(((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l)];
}
float Tensor::at(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l) const {
  assert(rank() == 4);
  return data_[static_cast<std::size_t>(((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l)];
}

float Tensor::item() const {
  if (numel() != 1) {
    throw std::logic_error("Tensor::item on tensor with numel=" +
                           std::to_string(numel()));
  }
  return data_[0];
}

Tensor Tensor::reshape(Shape new_shape) const {
  // Support a single -1 wildcard dimension.
  std::int64_t wildcard = -1;
  std::int64_t known = 1;
  for (std::size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      if (wildcard != -1) throw std::invalid_argument("reshape: two wildcards");
      wildcard = static_cast<std::int64_t>(i);
    } else {
      known *= new_shape[i];
    }
  }
  if (wildcard >= 0) {
    if (known == 0 || numel() % known != 0) {
      throw std::invalid_argument("reshape: wildcard does not divide");
    }
    new_shape[static_cast<std::size_t>(wildcard)] = numel() / known;
  }
  if (shape_numel(new_shape) != numel()) {
    throw std::invalid_argument("reshape: numel mismatch " + shape_str(shape_) +
                                " -> " + shape_str(new_shape));
  }
  return Tensor(std::move(new_shape), data_);
}

std::vector<std::int64_t> Tensor::strides() const {
  return row_major_strides(shape_);
}

void Tensor::fill(float v) {
  for (auto& x : data_) x = v;
}

bool Tensor::all_finite() const {
  for (const auto x : data_) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

std::string Tensor::to_string(std::int64_t max_elems) const {
  std::ostringstream os;
  os << "Tensor" << shape_str(shape_) << " {";
  const auto n = std::min<std::int64_t>(numel(), max_elems);
  for (std::int64_t i = 0; i < n; ++i) {
    if (i != 0) os << ", ";
    os << data_[static_cast<std::size_t>(i)];
  }
  if (numel() > n) os << ", ...";
  os << '}';
  return os.str();
}

std::vector<std::int64_t> row_major_strides(const Shape& shape) {
  std::vector<std::int64_t> s(shape.size(), 1);
  for (std::int64_t i = static_cast<std::int64_t>(shape.size()) - 2; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] =
        s[static_cast<std::size_t>(i + 1)] * shape[static_cast<std::size_t>(i + 1)];
  }
  return s;
}

Shape broadcast_shape(const Shape& a, const Shape& b) {
  const std::size_t rank = std::max(a.size(), b.size());
  Shape out(rank);
  for (std::size_t i = 0; i < rank; ++i) {
    const std::int64_t da = i < rank - a.size() ? 1 : a[i - (rank - a.size())];
    const std::int64_t db = i < rank - b.size() ? 1 : b[i - (rank - b.size())];
    if (da != db && da != 1 && db != 1) {
      throw std::invalid_argument("broadcast: incompatible shapes " +
                                  shape_str(a) + " and " + shape_str(b));
    }
    out[i] = std::max(da, db);
  }
  return out;
}

}  // namespace ibrar
