#include "tensor/reduce.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "runtime/parallel_for.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"

namespace ibrar {

Tensor sum(const Tensor& a) { return Tensor::scalar(sum_all(a)); }
Tensor mean(const Tensor& a) { return Tensor::scalar(mean_all(a)); }

Tensor sum_axis(const Tensor& a, std::int64_t axis, bool keepdim) {
  if (axis < 0) axis += a.rank();
  if (axis < 0 || axis >= a.rank()) throw std::invalid_argument("sum_axis: axis");
  const auto& shape = a.shape();
  std::int64_t outer = 1, inner = 1;
  for (std::int64_t i = 0; i < axis; ++i) outer *= shape[static_cast<std::size_t>(i)];
  for (std::int64_t i = axis + 1; i < a.rank(); ++i) inner *= shape[static_cast<std::size_t>(i)];
  const std::int64_t mid = shape[static_cast<std::size_t>(axis)];

  Shape out_shape;
  for (std::int64_t i = 0; i < a.rank(); ++i) {
    if (i == axis) {
      if (keepdim) out_shape.push_back(1);
    } else {
      out_shape.push_back(shape[static_cast<std::size_t>(i)]);
    }
  }
  Tensor out(out_shape);
  const float* pa = a.data().data();
  float* po = out.data().data();
  for (std::int64_t o = 0; o < outer; ++o) {
    for (std::int64_t m = 0; m < mid; ++m) {
      const float* src = pa + (o * mid + m) * inner;
      float* dst = po + o * inner;
      for (std::int64_t i = 0; i < inner; ++i) dst[i] += src[i];
    }
  }
  return out;
}

Tensor mean_axis(const Tensor& a, std::int64_t axis, bool keepdim) {
  if (axis < 0) axis += a.rank();
  const auto denom = static_cast<float>(a.dim(axis));
  return mul_scalar(sum_axis(a, axis, keepdim), 1.0f / denom);
}

Tensor rowmax(const Tensor& a) {
  if (a.rank() != 2) throw std::invalid_argument("rowmax: rank != 2");
  const auto m = a.dim(0), n = a.dim(1);
  Tensor out({m});
  for (std::int64_t i = 0; i < m; ++i) {
    float best = -std::numeric_limits<float>::infinity();
    for (std::int64_t j = 0; j < n; ++j) best = std::max(best, a.at(i, j));
    out[i] = best;
  }
  return out;
}

std::vector<std::int64_t> argmax_rows(const Tensor& a) {
  if (a.rank() != 2) throw std::invalid_argument("argmax_rows: rank != 2");
  const auto m = a.dim(0), n = a.dim(1);
  std::vector<std::int64_t> out(static_cast<std::size_t>(m));
  for (std::int64_t i = 0; i < m; ++i) {
    std::int64_t bi = 0;
    float best = a.at(i, 0);
    for (std::int64_t j = 1; j < n; ++j) {
      if (a.at(i, j) > best) {
        best = a.at(i, j);
        bi = j;
      }
    }
    out[static_cast<std::size_t>(i)] = bi;
  }
  return out;
}

Tensor softmax_rows(const Tensor& a) {
  if (a.rank() != 2) throw std::invalid_argument("softmax_rows: rank != 2");
  const auto m = a.dim(0), n = a.dim(1);
  Tensor out(a.shape());
  const std::int64_t grain = runtime::grain_for(n);
  runtime::parallel_for(0, m, grain, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      float mx = -std::numeric_limits<float>::infinity();
      for (std::int64_t j = 0; j < n; ++j) mx = std::max(mx, a.at(i, j));
      double denom = 0.0;
      for (std::int64_t j = 0; j < n; ++j) {
        const float e = std::exp(a.at(i, j) - mx);
        out.at(i, j) = e;
        denom += e;
      }
      const float inv = static_cast<float>(1.0 / denom);
      for (std::int64_t j = 0; j < n; ++j) out.at(i, j) *= inv;
    }
  });
  return out;
}

Tensor log_softmax_rows(const Tensor& a) {
  if (a.rank() != 2) throw std::invalid_argument("log_softmax_rows: rank != 2");
  const auto m = a.dim(0), n = a.dim(1);
  Tensor out(a.shape());
  const std::int64_t grain = runtime::grain_for(n);
  runtime::parallel_for(0, m, grain, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      float mx = -std::numeric_limits<float>::infinity();
      for (std::int64_t j = 0; j < n; ++j) mx = std::max(mx, a.at(i, j));
      double denom = 0.0;
      for (std::int64_t j = 0; j < n; ++j) denom += std::exp(a.at(i, j) - mx);
      const float lse = mx + static_cast<float>(std::log(denom));
      for (std::int64_t j = 0; j < n; ++j) out.at(i, j) = a.at(i, j) - lse;
    }
  });
  return out;
}

Tensor row_sq_norm(const Tensor& a) {
  if (a.rank() != 2) throw std::invalid_argument("row_sq_norm: rank != 2");
  const auto m = a.dim(0), n = a.dim(1);
  Tensor out({m, 1});
  const std::int64_t grain = runtime::grain_for(n);
  runtime::parallel_for(0, m, grain, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      double s = 0.0;
      for (std::int64_t j = 0; j < n; ++j) {
        const double v = a.at(i, j);
        s += v * v;
      }
      out.at(i, 0) = static_cast<float>(s);
    }
  });
  return out;
}

Tensor pairwise_sq_dists(const Tensor& a) {
  if (a.rank() != 2) throw std::invalid_argument("pairwise_sq_dists: rank != 2");
  const auto m = a.dim(0);
  // ||xi - xj||^2 = G_ii + G_jj - 2 G_ij with G = X X^T from the symmetric
  // blocked driver (half the GEMM FLOPs, bit-identical to matmul_nt(a, a)).
  const Tensor gram = matmul_nt_sym(a);  // (m, m)
  Tensor out({m, m});
  const std::int64_t grain = runtime::grain_for(m);
  runtime::parallel_for(0, m, grain, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      for (std::int64_t j = 0; j < m; ++j) {
        const float d = gram.at(i, i) + gram.at(j, j) - 2.0f * gram.at(i, j);
        out.at(i, j) = std::max(d, 0.0f);
      }
    }
  });
  return out;
}

}  // namespace ibrar
