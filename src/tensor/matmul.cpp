#include "tensor/matmul.hpp"

#include <stdexcept>

namespace ibrar {

void gemm_accumulate(const float* a, const float* b, float* c, std::int64_t m,
                     std::int64_t k, std::int64_t n) {
  // ikj ordering: the inner loop runs over contiguous rows of B and C, which
  // GCC/Clang vectorize well; a[i*k+p] is a scalar across the inner loop.
  for (std::int64_t i = 0; i < m; ++i) {
    float* ci = c + i * n;
    const float* ai = a + i * k;
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = ai[p];
      if (av == 0.0f) continue;  // im2col matrices are often sparse post-ReLU
      const float* bp = b + p * n;
      for (std::int64_t j = 0; j < n; ++j) ci[j] += av * bp[j];
    }
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(0)) {
    throw std::invalid_argument("matmul: bad shapes " + shape_str(a.shape()) +
                                " x " + shape_str(b.shape()));
  }
  const auto m = a.dim(0);
  const auto k = a.dim(1);
  const auto n = b.dim(1);
  Tensor c({m, n});
  gemm_accumulate(a.data().data(), b.data().data(), c.data().data(), m, k, n);
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(0) != b.dim(0)) {
    throw std::invalid_argument("matmul_tn: bad shapes");
  }
  const auto k = a.dim(0);  // shared dim
  const auto m = a.dim(1);
  const auto n = b.dim(1);
  Tensor c({m, n});
  // C[i,j] = sum_p A[p,i] B[p,j]; accumulate rank-1 updates row by row so the
  // inner loop stays contiguous in B and C.
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  for (std::int64_t p = 0; p < k; ++p) {
    const float* ap = pa + p * m;
    const float* bp = pb + p * n;
    for (std::int64_t i = 0; i < m; ++i) {
      const float av = ap[i];
      if (av == 0.0f) continue;
      float* ci = pc + i * n;
      for (std::int64_t j = 0; j < n; ++j) ci[j] += av * bp[j];
    }
  }
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(1)) {
    throw std::invalid_argument("matmul_nt: bad shapes");
  }
  const auto m = a.dim(0);
  const auto k = a.dim(1);
  const auto n = b.dim(0);
  Tensor c({m, n});
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  // C[i,j] = dot(A_row_i, B_row_j): both rows contiguous.
  for (std::int64_t i = 0; i < m; ++i) {
    const float* ai = pa + i * k;
    float* ci = pc + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* bj = pb + j * k;
      float s = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) s += ai[p] * bj[p];
      ci[j] = s;
    }
  }
  return c;
}

}  // namespace ibrar
