#include "tensor/matmul.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "obs/profile.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/scratch_arena.hpp"
#include "tensor/gemm_packed.hpp"

namespace ibrar {

void gemm_accumulate(const float* a, const float* b, float* c, std::int64_t m,
                     std::int64_t k, std::int64_t n) {
  gemm_packed(a, GemmLayout::kRowMajor, b, GemmLayout::kRowMajor, c, m, k, n);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(0)) {
    throw std::invalid_argument("matmul: bad shapes " + shape_str(a.shape()) +
                                " x " + shape_str(b.shape()));
  }
  const auto m = a.dim(0);
  const auto k = a.dim(1);
  const auto n = b.dim(1);
  Tensor c({m, n});
  gemm_packed(a.data().data(), GemmLayout::kRowMajor, b.data().data(),
              GemmLayout::kRowMajor, c.data().data(), m, k, n);
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(0) != b.dim(0)) {
    throw std::invalid_argument("matmul_tn: bad shapes " + shape_str(a.shape()) +
                                " x " + shape_str(b.shape()));
  }
  const auto k = a.dim(0);  // shared dim
  const auto m = a.dim(1);
  const auto n = b.dim(1);
  Tensor c({m, n});
  // C = A^T B: the packed kernel reads A through its transposed layout, so no
  // transpose is ever materialized.
  gemm_packed(a.data().data(), GemmLayout::kTransposed, b.data().data(),
              GemmLayout::kRowMajor, c.data().data(), m, k, n);
  return c;
}

namespace {

/// Row-block edge for matmul_nt_sym: big enough that each per-block GEMM
/// amortizes panel packing, small enough that the upper-triangle block list
/// splits across pool lanes even at modest m.
constexpr std::int64_t kSymBlock = 128;

}  // namespace

Tensor matmul_nt_sym(const Tensor& a) {
  static obs::ProfileSite& prof = obs::profile_site("tensor/matmul_nt_sym");
  obs::ProfileScope prof_scope(prof);
  if (a.rank() != 2) {
    throw std::invalid_argument("matmul_nt_sym: bad shape " +
                                shape_str(a.shape()));
  }
  const auto m = a.dim(0);
  const auto k = a.dim(1);
  Tensor c({m, m});
  if (m == 0) return c;
  const std::int64_t nb = (m + kSymBlock - 1) / kSymBlock;
  const std::int64_t pairs = nb * (nb + 1) / 2;
  const float* pa = a.data().data();
  float* pc = c.data().data();
  // Upper-triangle block pairs (bi <= bj), enumerated row-block major. Each
  // pair is an independent GEMM into a per-lane arena tile (slot 2 — the
  // packed kernel underneath owns slots 0/1), copied out and mirrored. Every
  // C element is produced exactly once by the same instruction sequence
  // regardless of which lane draws the pair, so results are bit-identical at
  // any thread count.
  runtime::parallel_for(0, pairs, 1, [&](std::int64_t p0, std::int64_t p1) {
    runtime::ScratchArena& arena = runtime::lane_arena();
    for (std::int64_t p = p0; p < p1; ++p) {
      std::int64_t bi = 0, rem = p;
      while (rem >= nb - bi) {
        rem -= nb - bi;
        ++bi;
      }
      const std::int64_t bj = bi + rem;
      const std::int64_t i0 = bi * kSymBlock;
      const std::int64_t j0 = bj * kSymBlock;
      const std::int64_t bh = std::min(kSymBlock, m - i0);
      const std::int64_t bw = std::min(kSymBlock, m - j0);
      float* tile =
          arena.floats(runtime::Scratch::kSymGramTile,
                       static_cast<std::size_t>(bh) *
                           static_cast<std::size_t>(bw));
      std::memset(tile, 0, sizeof(float) * static_cast<std::size_t>(bh * bw));
      gemm_packed(pa + i0 * k, GemmLayout::kRowMajor, pa + j0 * k,
                  GemmLayout::kTransposed, tile, bh, k, bw);
      if (bi == bj) {
        // Diagonal block: keep the upper wedge, mirror it below.
        for (std::int64_t r = 0; r < bh; ++r) {
          const std::int64_t i = i0 + r;
          for (std::int64_t q = r; q < bw; ++q) {
            const float v = tile[r * bw + q];
            pc[i * m + j0 + q] = v;
            pc[(j0 + q) * m + i] = v;
          }
        }
      } else {
        for (std::int64_t r = 0; r < bh; ++r) {
          const std::int64_t i = i0 + r;
          std::memcpy(pc + i * m + j0, tile + r * bw,
                      sizeof(float) * static_cast<std::size_t>(bw));
          for (std::int64_t q = 0; q < bw; ++q) {
            pc[(j0 + q) * m + i] = tile[r * bw + q];
          }
        }
      }
    }
  });
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  if (a.rank() != 2 || b.rank() != 2 || a.dim(1) != b.dim(1)) {
    throw std::invalid_argument("matmul_nt: bad shapes " + shape_str(a.shape()) +
                                " x " + shape_str(b.shape()));
  }
  const auto m = a.dim(0);
  const auto k = a.dim(1);
  const auto n = b.dim(0);
  Tensor c({m, n});
  gemm_packed(a.data().data(), GemmLayout::kRowMajor, b.data().data(),
              GemmLayout::kTransposed, c.data().data(), m, k, n);
  return c;
}

}  // namespace ibrar
